package spin

// Native benchmarks for every table and figure in the paper's evaluation.
// Each benchmark mirrors one experiment; `go test -bench=. -benchmem`
// reports nanoseconds on the host machine, confirming the paper's *shapes*
// (linear scaling in handlers, the inline/no-inline gap, the
// single-handler bypass, O(n^2) installation) on modern hardware. The
// calibrated virtual-time reproductions, in the paper's microseconds, come
// from `go run ./cmd/spinbench` and `go run ./cmd/spindoc`, both built on
// internal/bench and internal/x11.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"spin/internal/bench"
	"spin/internal/codegen"
	"spin/internal/dispatch"
	"spin/internal/rtti"
	"spin/internal/vtime"
	"spin/internal/x11"
)

var benchMod = rtti.NewModule("RootBench")

func benchSig(args int) rtti.Signature {
	ts := make([]rtti.Type, args)
	for i := range ts {
		ts[i] = rtti.Word
	}
	return rtti.Sig(nil, ts...)
}

func benchArgs(n int) []any {
	av := make([]any, n)
	for i := range av {
		av[i] = uint64(i)
	}
	return av
}

// buildEvent assembles a Table 1 configuration: `handlers` handlers, each
// with one guard, inline or out-of-line, on an unmetered dispatcher.
func buildEvent(b *testing.B, args, handlers int, inline bool, opts ...dispatch.Option) *dispatch.Event {
	b.Helper()
	d := dispatch.New(append(opts, dispatch.WithCodegenOptions(codegen.Options{DisableBypass: true}))...)
	ev, err := d.DefineEvent("Bench.Event", benchSig(args))
	if err != nil {
		b.Fatal(err)
	}
	var cell atomic.Uint64
	for i := 0; i < handlers; i++ {
		var h dispatch.Handler
		var g dispatch.Guard
		if inline {
			g = dispatch.Guard{Pred: codegen.GlobalEq(&cell, 0)}
			h = dispatch.Handler{
				Proc:   &rtti.Proc{Name: "H", Module: benchMod, Sig: benchSig(args)},
				Inline: codegen.Nop(),
			}
		} else {
			g = dispatch.Guard{
				Proc: &rtti.Proc{Name: "G", Module: benchMod, Functional: true,
					Sig: rtti.Sig(rtti.Bool, benchSig(args).Args...)},
				Fn: func(any, []any) bool { return cell.Load() == 0 },
			}
			h = dispatch.Handler{
				Proc: &rtti.Proc{Name: "H", Module: benchMod, Sig: benchSig(args)},
				Fn:   func(any, []any) any { return nil },
			}
		}
		if _, err := ev.Install(h, dispatch.WithGuard(g)); err != nil {
			b.Fatal(err)
		}
	}
	return ev
}

// BenchmarkTable1ProcedureCall is Table 1's baseline column: an event with
// only its intrinsic handler dispatches as a direct call.
func BenchmarkTable1ProcedureCall(b *testing.B) {
	for _, args := range []int{0, 1, 5} {
		b.Run(fmt.Sprintf("args=%d", args), func(b *testing.B) {
			d := dispatch.New()
			ev, err := d.DefineEvent("Bench.Proc", benchSig(args),
				dispatch.WithIntrinsic(dispatch.Handler{
					Proc: &rtti.Proc{Name: "P", Module: benchMod, Sig: benchSig(args)},
					Fn:   func(any, []any) any { return nil },
				}))
			if err != nil {
				b.Fatal(err)
			}
			av := benchArgs(args)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Raise(av...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1Dispatch sweeps the Table 1 grid natively: arguments x
// handlers x inline/no-inline.
func BenchmarkTable1Dispatch(b *testing.B) {
	for _, args := range []int{0, 1, 5} {
		for _, handlers := range []int{1, 5, 10, 50} {
			for _, inline := range []bool{false, true} {
				mode := "noinline"
				if inline {
					mode = "inline"
				}
				b.Run(fmt.Sprintf("args=%d/handlers=%d/%s", args, handlers, mode), func(b *testing.B) {
					ev := buildEvent(b, args, handlers, inline)
					av := benchArgs(args)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := ev.Raise(av...); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkInstall is §3.1 "Installation overhead": each installation
// regenerates the event's dispatch plan, so cost grows with the number of
// handlers already present.
func BenchmarkInstall(b *testing.B) {
	for _, present := range []int{0, 10, 100} {
		b.Run(fmt.Sprintf("present=%d", present), func(b *testing.B) {
			d := dispatch.New()
			ev, err := d.DefineEvent("Bench.Install", benchSig(0))
			if err != nil {
				b.Fatal(err)
			}
			h := dispatch.Handler{
				Proc: &rtti.Proc{Name: "H", Module: benchMod, Sig: benchSig(0)},
				Fn:   func(any, []any) any { return nil },
			}
			for i := 0; i < present; i++ {
				if _, err := ev.Install(h); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bd, err := ev.Install(h)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				_ = ev.Uninstall(bd)
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAsyncRaise is the §3.1 asynchronous-event measurement: the
// latency the raiser observes for a detached raise.
func BenchmarkAsyncRaise(b *testing.B) {
	for _, args := range []int{0, 5} {
		b.Run(fmt.Sprintf("args=%d", args), func(b *testing.B) {
			done := make(chan struct{}, 4096)
			d := dispatch.New(dispatch.WithSpawner(func(fn func()) {
				fn()
				done <- struct{}{}
			}))
			ev, err := d.DefineEvent("Bench.Async", benchSig(args))
			if err != nil {
				b.Fatal(err)
			}
			_, err = ev.Install(dispatch.Handler{
				Proc: &rtti.Proc{Name: "H", Module: benchMod, Sig: benchSig(args)},
				Fn:   func(any, []any) any { return nil },
			})
			if err != nil {
				b.Fatal(err)
			}
			av := benchArgs(args)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ev.RaiseAsync(av...); err != nil {
					b.Fatal(err)
				}
				<-done
			}
		})
	}
}

// BenchmarkSyscallPath is the §3.1 microbenchmark pair: a null system call
// bound directly versus dispatched through the Table 3 handler population
// (three handlers, two guards).
func BenchmarkSyscallPath(b *testing.B) {
	nullImpl := func(any, []any) any { return nil }
	b.Run("direct", func(b *testing.B) {
		d := dispatch.New()
		ev, _ := d.DefineEvent("Bench.Sys", benchSig(2), dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "S", Module: benchMod, Sig: benchSig(2)},
			Fn:   nullImpl,
		}))
		av := benchArgs(2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = ev.Raise(av...)
		}
	})
	b.Run("evented", func(b *testing.B) {
		d := dispatch.New()
		ev, _ := d.DefineEvent("Bench.Sys", benchSig(2))
		admit := dispatch.Guard{
			Proc: &rtti.Proc{Name: "GA", Module: benchMod, Functional: true,
				Sig: rtti.Sig(rtti.Bool, benchSig(2).Args...)},
			Fn: func(any, []any) bool { return true },
		}
		reject := dispatch.Guard{
			Proc: &rtti.Proc{Name: "GR", Module: benchMod, Functional: true,
				Sig: rtti.Sig(rtti.Bool, benchSig(2).Args...)},
			Fn: func(any, []any) bool { return false },
		}
		h := dispatch.Handler{Proc: &rtti.Proc{Name: "S", Module: benchMod, Sig: benchSig(2)}, Fn: nullImpl}
		_, _ = ev.Install(h, dispatch.WithGuard(admit))
		_, _ = ev.Install(h, dispatch.WithGuard(reject))
		_, _ = ev.Install(h)
		av := benchArgs(2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = ev.Raise(av...)
		}
	})
}

// BenchmarkTable2UDPRoundtrip runs the two-machine UDP echo in virtual
// time once per iteration; the reported ns/op is harness (simulation)
// cost, while the virtual roundtrip is reported as a custom metric in the
// paper's microseconds.
func BenchmarkTable2UDPRoundtrip(b *testing.B) {
	for _, guards := range []int{1, 5, 10, 50} {
		b.Run(fmt.Sprintf("guards=%d", guards), func(b *testing.B) {
			var lastRT vtime.Duration
			for i := 0; i < b.N; i++ {
				rt, err := bench.Table2Roundtrip(guards)
				if err != nil {
					b.Fatal(err)
				}
				lastRT = rt
			}
			b.ReportMetric(vtime.InMicros(lastRT), "virtual-us/rtt")
		})
	}
}

// BenchmarkTable3Preview runs the full document-preview workload (Table 3
// and the §3.2 breakdown) once per iteration.
func BenchmarkTable3Preview(b *testing.B) {
	var total vtime.Duration
	for i := 0; i < b.N; i++ {
		r, err := x11.Run(x11.Params{})
		if err != nil {
			b.Fatal(err)
		}
		total = r.Total
	}
	b.ReportMetric(float64(total)/1e9, "virtual-s/preview")
}

// BenchmarkAblationNoBypass quantifies the single-handler bypass (DESIGN.md
// decision 1): the same intrinsic-only event raised with the bypass
// enabled and disabled.
func BenchmarkAblationNoBypass(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "bypass"
		if disable {
			name = "no-bypass"
		}
		b.Run(name, func(b *testing.B) {
			d := dispatch.New(dispatch.WithCodegenOptions(codegen.Options{DisableBypass: disable}))
			ev, _ := d.DefineEvent("Bench.P", benchSig(0), dispatch.WithIntrinsic(dispatch.Handler{
				Proc: &rtti.Proc{Name: "P", Module: benchMod, Sig: benchSig(0)},
				Fn:   func(any, []any) any { return nil },
			}))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _ = ev.Raise()
			}
		})
	}
}

// BenchmarkAblationPeephole quantifies plan simplification (DESIGN.md
// decision 2's peephole half): fifty constant-true guards either elided at
// compile time or evaluated on every raise.
func BenchmarkAblationPeephole(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "peephole"
		if disable {
			name = "no-peephole"
		}
		b.Run(name, func(b *testing.B) {
			d := dispatch.New(dispatch.WithCodegenOptions(codegen.Options{
				DisableBypass: true, DisablePeephole: disable,
			}))
			ev, _ := d.DefineEvent("Bench.P", benchSig(0))
			for i := 0; i < 50; i++ {
				_, _ = ev.Install(dispatch.Handler{
					Proc:   &rtti.Proc{Name: "H", Module: benchMod, Sig: benchSig(0)},
					Inline: codegen.Nop(),
				}, dispatch.WithGuard(dispatch.Guard{Pred: codegen.And(codegen.True(), codegen.True())}))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _ = ev.Raise()
			}
		})
	}
}

// BenchmarkAblationLockedDispatch quantifies the atomic plan swap
// (DESIGN.md decision 3) indirectly: raises on the lock-free dispatcher
// under concurrent installation churn must not collapse.
func BenchmarkAblationLockedDispatch(b *testing.B) {
	d := dispatch.New()
	ev, _ := d.DefineEvent("Bench.P", benchSig(0), dispatch.WithIntrinsic(dispatch.Handler{
		Proc: &rtti.Proc{Name: "P", Module: benchMod, Sig: benchSig(0)},
		Fn:   func(any, []any) any { return nil },
	}))
	stop := make(chan struct{})
	go func() {
		h := dispatch.Handler{
			Proc: &rtti.Proc{Name: "H", Module: benchMod, Sig: benchSig(0)},
			Fn:   func(any, []any) any { return nil },
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			bd, err := ev.Install(h)
			if err == nil {
				_ = ev.Uninstall(bd)
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Raise(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
}

// BenchmarkGuardEvaluation compares the two guard implementations the
// generator supports: an inline predicate versus an out-of-line call.
func BenchmarkGuardEvaluation(b *testing.B) {
	b.Run("inline-pred", func(b *testing.B) {
		ev := buildEvent(b, 1, 10, true)
		av := benchArgs(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = ev.Raise(av...)
		}
	})
	b.Run("outofline-fn", func(b *testing.B) {
		ev := buildEvent(b, 1, 10, false)
		av := benchArgs(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = ev.Raise(av...)
		}
	})
}

// BenchmarkTypedOverhead measures the generic facade's cost over the
// untyped core.
func BenchmarkTypedOverhead(b *testing.B) {
	b.Run("typed", func(b *testing.B) {
		d := NewDispatcher()
		ev, _ := NewEvent2[uint64, uint64](d, "T.P")
		_, _ = ev.Install("H", benchMod, func(a, c uint64) {})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = ev.Raise(1, 2)
		}
	})
	b.Run("untyped", func(b *testing.B) {
		d := NewDispatcher()
		ev, _ := d.DefineEvent("T.P", benchSig(2))
		_, _ = ev.Install(dispatch.Handler{
			Proc: &rtti.Proc{Name: "H", Module: benchMod, Sig: benchSig(2)},
			Fn:   func(any, []any) any { return nil },
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = ev.Raise(uint64(1), uint64(2))
		}
	})
}

// BenchmarkRaiseParallel measures multicore raise throughput on one hot
// event — the fast-path target of the zero-allocation work: cached env,
// striped statistics counters, and no per-raise heap traffic. Run with
// -cpu 1,2,4,8 to see scaling; the pre-optimization baseline (per-raise
// env allocation plus shared atomic counters) is recorded in
// BENCH_dispatch.json.
func BenchmarkRaiseParallel(b *testing.B) {
	b.Run("bypass", func(b *testing.B) {
		for _, args := range []int{0, 2} {
			b.Run(fmt.Sprintf("args=%d", args), func(b *testing.B) {
				d := dispatch.New()
				ev, err := d.DefineEvent("Bench.Par", benchSig(args),
					dispatch.WithIntrinsic(dispatch.Handler{
						Proc: &rtti.Proc{Name: "P", Module: benchMod, Sig: benchSig(args)},
						Fn:   func(any, []any) any { return nil },
					}))
				if err != nil {
					b.Fatal(err)
				}
				av := benchArgs(args)
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if _, err := ev.Raise(av...); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	})
	b.Run("inline-plan", func(b *testing.B) {
		ev := buildEvent(b, 1, 5, true)
		av := benchArgs(1)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := ev.Raise(av...); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("typed-arity", func(b *testing.B) {
		d := NewDispatcher()
		ev, err := NewEvent2[uint64, uint64](d, "Bench.ParTyped")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ev.Install("H", benchMod, func(a, c uint64) {}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				// Word arguments below 256 box allocation-free, so this
				// exercises the pooled arity frame end to end.
				if err := ev.Raise(1, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}
