package spin

import (
	"errors"
	"testing"

	"spin/internal/dispatch"
)

var testMod = NewModule("SpinTest")

func TestTypedEvent2ProcedureFeel(t *testing.T) {
	d := NewDispatcher()
	ev, err := NewEvent2[uint64, string](d, "M.P")
	if err != nil {
		t.Fatal(err)
	}
	var gotW uint64
	var gotS string
	if _, err := ev.Install("M.H", testMod, func(w uint64, s string) {
		gotW, gotS = w, s
	}); err != nil {
		t.Fatal(err)
	}
	if err := ev.Raise(42, "hello"); err != nil {
		t.Fatal(err)
	}
	if gotW != 42 || gotS != "hello" {
		t.Fatalf("handler saw (%d, %q)", gotW, gotS)
	}
	// The derived signature maps uint64 -> WORD, string -> TEXT.
	sig := ev.Underlying().Signature()
	if sig.Args[0] != Word || sig.Args[1] != Text {
		t.Fatalf("derived signature = %v", sig)
	}
}

func TestTypedGuard(t *testing.T) {
	d := NewDispatcher()
	ev, _ := NewEvent1[uint64](d, "Trap.Syscall")
	fired := 0
	g := ev.Guard("IsMach", testMod, func(n uint64) bool { return n < 100 })
	if _, err := ev.Install("Mach.H", testMod, func(n uint64) { fired++ }, WithGuard(g)); err != nil {
		t.Fatal(err)
	}
	_ = ev.Raise(50)
	if err := ev.Raise(500); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("unguarded raise err = %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
}

func TestTypedFuncEvent(t *testing.T) {
	d := NewDispatcher()
	ev, err := NewFuncEvent2[uint64, uint64, bool](d, "VM.PageFault")
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Underlying().SetResultHandler(func(acc, r any, i int) any {
		a, _ := acc.(bool)
		b, _ := r.(bool)
		return a || b
	}); err != nil {
		t.Fatal(err)
	}
	_, _ = ev.Install("P1", testMod, func(space, addr uint64) bool { return false })
	_, _ = ev.Install("P2", testMod, func(space, addr uint64) bool { return addr < 0x1000 })
	ok, err := ev.Raise(1, 0x500)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	ok, err = ev.Raise(1, 0x2000)
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestTypedEvent0And3(t *testing.T) {
	d := NewDispatcher()
	e0, err := NewEvent0(d, "M.Tick")
	if err != nil {
		t.Fatal(err)
	}
	ticks := 0
	_, _ = e0.Install("H", testMod, func() { ticks++ })
	_ = e0.Raise()
	if ticks != 1 {
		t.Fatal("Event0 broken")
	}
	e3, err := NewEvent3[uint64, string, bool](d, "M.Three")
	if err != nil {
		t.Fatal(err)
	}
	var sum string
	g := e3.Guard("G", testMod, func(n uint64, s string, b bool) bool { return b })
	_, _ = e3.Install("H3", testMod, func(n uint64, s string, b bool) { sum = s }, WithGuard(g))
	_ = e3.Raise(1, "yes", true)
	if err := e3.Raise(1, "no", false); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v", err)
	}
	if sum != "yes" {
		t.Fatalf("sum = %q", sum)
	}
}

func TestTypedFuncEvent0And1(t *testing.T) {
	d := NewDispatcher()
	f0, err := NewFuncEvent0[uint64](d, "M.Get")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = f0.Install("H", testMod, func() uint64 { return 7 })
	v, err := f0.Raise()
	if err != nil || v != 7 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	f1, err := NewFuncEvent1[string, uint64](d, "M.Len")
	if err != nil {
		t.Fatal(err)
	}
	g := f1.Guard("NonEmpty", testMod, func(s string) bool { return s != "" })
	_, _ = f1.Install("H", testMod, func(s string) uint64 { return uint64(len(s)) }, WithGuard(g))
	n, err := f1.Raise("four")
	if err != nil || n != 4 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if _, err := f1.Raise(""); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v", err)
	}
}

func TestUntypedAndTypedInterop(t *testing.T) {
	// A typed event is just a view over the untyped one: untyped
	// handlers and typed handlers coexist on the same event.
	d := NewDispatcher()
	ev, _ := NewEvent1[uint64](d, "M.P")
	typedFired, untypedFired := 0, 0
	_, _ = ev.Install("T", testMod, func(uint64) { typedFired++ })
	raw := ev.Underlying()
	_, err := raw.Install(Handler{
		Proc: &Proc{Name: "U", Module: testMod, Sig: raw.Signature()},
		Fn:   func(clo any, args []any) any { untypedFired++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = ev.Raise(1)
	if typedFired != 1 || untypedFired != 1 {
		t.Fatalf("typed=%d untyped=%d", typedFired, untypedFired)
	}
}

func TestPredicateGuardsThroughFacade(t *testing.T) {
	d := NewDispatcher()
	ev, _ := NewEvent1[uint64](d, "Udp.PacketArrived")
	fired := 0
	_, err := ev.Install("Sock", testMod, func(uint64) { fired++ },
		WithGuard(Guard{Pred: PredArgEq(0, 80)}))
	if err != nil {
		t.Fatal(err)
	}
	_ = ev.Raise(80)
	_ = ev.Raise(443)
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	// Composite predicates.
	p := PredAnd(PredNot(PredFalse()), PredOr(PredArgLt(0, 10), PredArgNe(0, 99)))
	if !p.Eval([]any{uint64(5)}) {
		t.Fatal("composite predicate broken")
	}
}

func TestBootThroughFacade(t *testing.T) {
	m, err := Boot(MachineConfig{Name: "facade", Metered: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dispatcher == nil || m.Sched == nil {
		t.Fatal("machine incomplete")
	}
	if _, ok := m.Dispatcher.Lookup("Strand.Run"); !ok {
		t.Fatal("core events missing")
	}
}

func TestOrderingThroughFacade(t *testing.T) {
	d := NewDispatcher()
	ev, _ := NewEvent0(d, "M.P")
	var tr []string
	_, _ = ev.Install("A", testMod, func() { tr = append(tr, "a") })
	_, _ = ev.Install("B", testMod, func() { tr = append(tr, "b") }, First())
	_ = ev.Raise()
	if len(tr) != 2 || tr[0] != "b" {
		t.Fatalf("trace = %v", tr)
	}
}

func TestSigHelper(t *testing.T) {
	s := Sig(Bool, Word, Text)
	if s.Arity() != 2 || !s.HasResult() {
		t.Fatal("Sig helper broken")
	}
	if Micros(1) != 1000 {
		t.Fatal("Micros broken")
	}
}

func TestBodyConstructorsThroughFacade(t *testing.T) {
	d := NewDispatcher()
	ev, _ := d.DefineEvent("M.P", Sig(Word))
	_, err := ev.Install(Handler{
		Proc:   &Proc{Name: "H", Module: testMod, Sig: Sig(Word)},
		Inline: BodyReturnConst(uint64(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ev.Raise()
	if err != nil || res != uint64(7) {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if BodyNop() == nil || BodyReturnArg(0) == nil {
		t.Fatal("body constructors broken")
	}
}

func TestTypedRaiseAsync(t *testing.T) {
	d := NewDispatcher(syncFacadeSpawner())
	ev, _ := NewEvent1[uint64](d, "M.P")
	got := uint64(0)
	_, _ = ev.Install("H", testMod, func(v uint64) { got = v })
	if err := ev.RaiseAsync(9); err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("got = %d", got)
	}
	ev2, _ := NewEvent2[uint64, uint64](d, "M.P2")
	got2 := uint64(0)
	_, _ = ev2.Install("H", testMod, func(a, b uint64) { got2 = a + b })
	if err := ev2.RaiseAsync(3, 4); err != nil {
		t.Fatal(err)
	}
	if got2 != 7 {
		t.Fatalf("got2 = %d", got2)
	}
}

func syncFacadeSpawner() dispatchOption {
	return dispatch.WithSpawner(func(fn func()) { fn() })
}

type dispatchOption = dispatch.Option

func TestFacadeErrorsAndTypes(t *testing.T) {
	if ErrNoHandler == nil || ErrAmbiguousResult == nil || ErrNotAuthority == nil ||
		ErrDenied == nil || ErrAsyncByRef == nil || ErrLinkDenied == nil {
		t.Fatal("error re-exports missing")
	}
	if Word == nil || Bool == nil || Text == nil || RefAny == nil {
		t.Fatal("type singletons missing")
	}
	if NewInterface("I", testMod) == nil {
		t.Fatal("NewInterface broken")
	}
}

func TestFuncEventUnderlyings(t *testing.T) {
	d := NewDispatcher()
	f0, _ := NewFuncEvent0[uint64](d, "F0")
	f1, _ := NewFuncEvent1[uint64, uint64](d, "F1")
	f2, _ := NewFuncEvent2[uint64, uint64, bool](d, "F2")
	e0, _ := NewEvent0(d, "E0")
	e3, _ := NewEvent3[uint64, uint64, uint64](d, "E3")
	for _, u := range []*Event{f0.Underlying(), f1.Underlying(), f2.Underlying(),
		e0.Underlying(), e3.Underlying()} {
		if u == nil {
			t.Fatal("nil underlying")
		}
	}
}
