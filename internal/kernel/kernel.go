// Package kernel assembles the SPIN kernel core for one simulated machine.
//
// The paper's kernel "defines only a few low-level services, such as device
// access, dynamic linking, and events. All other services ... are provided
// as extensions which are dynamically bound into the kernel as needed"
// (§1.1). Boot accordingly wires up exactly the low-level substrates — the
// virtual clock and CPU meter, the event dispatcher, the dynamic linker,
// the trap module, the strand scheduler, and the VM service — and exports
// their interfaces through the linker so extensions can be loaded against
// them with the two-phase link-then-register protocol of §2.
package kernel

import (
	"spin/internal/codegen"
	"spin/internal/dispatch"
	"spin/internal/fault"
	"spin/internal/journal"
	"spin/internal/linker"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/shard"
	"spin/internal/trace"
	"spin/internal/trap"
	"spin/internal/vm"
	"spin/internal/vtime"
)

// Module is the kernel core's module descriptor.
var Module = rtti.NewModule("Kernel", "Core", "MachineTrap", "Strand", "VM")

// Config selects how a machine boots.
type Config struct {
	// Name identifies the machine in multi-machine simulations.
	Name string
	// Metered attaches a virtual clock, an Alpha-calibrated CPU meter,
	// and a discrete-event simulator. Unmetered machines run in real
	// time with goroutine-backed asynchrony.
	Metered bool
	// Model overrides the cost model (nil selects AlphaModel) when
	// Metered is set; ablation benchmarks perturb single constants.
	Model *vtime.Model
	// Codegen overrides the dispatch code generator's optimization
	// switches, for ablations.
	Codegen codegen.Options
	// PurityChecks enables the dispatcher's FUNCTIONAL-guard monitor and
	// dynamic raise-argument typechecking.
	PurityChecks bool
	// Trace, when non-nil, enables dispatch tracing machine-wide: every
	// event defined on the machine's dispatcher records sampled raises
	// into the tracer's span ring (see internal/trace).
	Trace *trace.Tracer
	// FaultPolicy, when non-nil, enables fault enforcement machine-wide:
	// handler panics and deadline overruns are charged against the
	// policy's budgets and offending bindings are quarantined out of
	// their events' dispatch plans (see internal/fault). Nil leaves the
	// dispatcher in record-only mode.
	FaultPolicy *fault.Policy
	// Admission, when non-nil, enables overload control machine-wide:
	// asynchronous raises and handler invocations pass through bounded
	// admission queues drained by a size-capped worker pool, and the
	// degradation controller (when levels are configured) disables
	// optional bindings by priority class as load crosses thresholds
	// (see internal/admit).
	Admission *dispatch.AdmissionConfig
	// Journal, when non-nil, attaches a durable lifecycle journal
	// machine-wide: every handler lifecycle transition (install,
	// uninstall, quarantine, readmission, degradation, quota change) is
	// recorded in tamper-evident sealed batches, plus 1-in-N sampled
	// raises (see internal/journal). ReplayJournal reconstructs the
	// dispatcher state from a previous boot's journal.
	Journal *journal.Journal
	// Shards, when greater than 1, attaches a sharded routing plane
	// (internal/shard): shard 0 is the machine's own dispatcher and
	// shards 1..N-1 are additional dispatchers built with the same
	// metering, codegen, fault, and admission configuration — each its
	// own serialization and fault domain. The journal, when configured,
	// stays on shard 0 only: per-shard journals need per-shard streams,
	// which callers wire through shard.Config directly. Events defined
	// through Machine.Router are consistent-hashed across the shards.
	Shards int
	// ShareWith, when non-nil, makes this machine share the given
	// machine's virtual clock and simulator — required for multi-machine
	// experiments (the Table 2 UDP roundtrip runs two machines on one
	// discrete-event timeline). Each machine still gets its own CPU
	// meter. Implies Metered.
	ShareWith *Machine
}

// Machine is one booted kernel instance.
type Machine struct {
	Name string

	Clock      *vtime.Clock
	CPU        *vtime.CPU
	Sim        *vtime.Simulator
	Dispatcher *dispatch.Dispatcher
	// Router is the sharded routing plane, non-nil when Config.Shards > 1;
	// its shard 0 is Dispatcher.
	Router *shard.Router
	Nexus  *linker.Nexus
	Sched      *sched.Scheduler
	Trap       *trap.Trap
	VM         *vm.VM
}

// Boot creates a machine: substrates are constructed bottom-up and the
// kernel domain is registered with the linker, exporting the core
// interfaces extensions link against.
func Boot(cfg Config) (*Machine, error) {
	m := &Machine{Name: cfg.Name}

	var dopts []dispatch.Option
	if cfg.Metered || cfg.ShareWith != nil {
		model := cfg.Model
		if model == nil {
			model = vtime.AlphaModel()
		}
		if cfg.ShareWith != nil {
			m.Clock = cfg.ShareWith.Clock
			m.Sim = cfg.ShareWith.Sim
			m.CPU = vtime.NewCPU(m.Clock, model)
		} else {
			m.Clock = &vtime.Clock{}
			m.CPU = vtime.NewCPU(m.Clock, model)
			m.Sim = vtime.NewSimulator(m.Clock)
			m.Sim.AccountIdleTo(m.CPU)
		}
		dopts = append(dopts, dispatch.WithCPU(m.CPU), dispatch.WithSimulator(m.Sim))
	}
	dopts = append(dopts, dispatch.WithCodegenOptions(cfg.Codegen))
	if cfg.PurityChecks {
		dopts = append(dopts, dispatch.WithPurityChecking())
	}
	if cfg.Trace != nil {
		dopts = append(dopts, dispatch.WithTracer(cfg.Trace))
	}
	if cfg.FaultPolicy != nil {
		dopts = append(dopts, dispatch.WithFaultPolicy(*cfg.FaultPolicy))
	}
	if cfg.Admission != nil {
		dopts = append(dopts, dispatch.WithAdmission(*cfg.Admission))
	}
	// Extra shards replicate every dispatcher option except the journal:
	// one journal stream cannot serve two dispatchers (each seals its own
	// record sequence), so only shard 0 journals unless the caller builds
	// the plane through shard.Config with per-shard streams.
	shardOpts := append([]dispatch.Option(nil), dopts...)
	if cfg.Journal != nil {
		dopts = append(dopts, dispatch.WithJournal(cfg.Journal))
	}
	m.Dispatcher = dispatch.New(dopts...)
	if cfg.Shards > 1 {
		var err error
		m.Router, err = shard.NewRouter(shard.Config{
			Shards: cfg.Shards,
			NewShard: func(id int) *dispatch.Dispatcher {
				if id == 0 {
					return m.Dispatcher
				}
				return dispatch.New(shardOpts...)
			},
		})
		if err != nil {
			return nil, err
		}
	}
	m.Nexus = linker.NewNexus()

	var err error
	if m.Trap, err = trap.New(m.Dispatcher, m.CPU); err != nil {
		return nil, err
	}
	if m.Sched, err = sched.New(m.Dispatcher, m.CPU, m.Sim); err != nil {
		return nil, err
	}
	if m.VM, err = vm.New(m.Dispatcher, m.CPU); err != nil {
		return nil, err
	}

	// Export the kernel interfaces. Extensions resolve events and
	// services from these, never from package-level state.
	core := linker.NewInterface("Core", Module).
		Define("Dispatcher", m.Dispatcher).
		Define("CPU", m.CPU).
		Define("Machine", m)
	if m.Router != nil {
		core = core.Define("Router", m.Router)
	}
	trapIface := linker.NewInterface("MachineTrap", trap.Module).
		Define("Syscall", m.Trap.Syscall).
		Define("Trap", m.Trap)
	strandIface := linker.NewInterface("Strand", sched.Module).
		Define("Run", m.Sched.RunEvent).
		Define("Scheduler", m.Sched)
	vmIface := linker.NewInterface("VM", vm.Module).
		Define("PageFault", m.VM.PageFault).
		Define("PageInRequest", m.VM.PageInRequest).
		Define("VM", m.VM)

	_, err = m.Nexus.Load(&linker.Image{
		Name:    "kernel",
		Module:  Module,
		Exports: []*linker.Interface{core, trapIface, strandIface, vmIface},
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// LoadExtension incorporates an extension image: dynamic linking against
// exported interfaces, then the image initializer's handler registrations.
func (m *Machine) LoadExtension(img *linker.Image) (*linker.Domain, error) {
	return m.Nexus.Load(img)
}

// QuarantineDomain fault-quarantines a loaded extension domain: the linker
// denies new linkage against its interfaces, the dispatcher denies its
// module new handler installations, and every binding it installed is
// compiled out of its event's dispatch plan. Returns the number of
// bindings quarantined.
func (m *Machine) QuarantineDomain(name string) (int, error) {
	dom, err := m.Nexus.Domain(name)
	if err != nil {
		return 0, err
	}
	if _, err := m.Nexus.Quarantine(name); err != nil {
		return 0, err
	}
	return m.Dispatcher.QuarantineModule(dom.Module()), nil
}

// ReadmitDomain lifts a domain quarantine: linkage and installation rights
// return and the domain's bindings are compiled back into their events'
// plans. Returns the number of bindings readmitted.
func (m *Machine) ReadmitDomain(name string) (int, error) {
	dom, err := m.Nexus.Domain(name)
	if err != nil {
		return 0, err
	}
	if _, err := m.Nexus.Readmit(name); err != nil {
		return 0, err
	}
	return m.Dispatcher.ReadmitModule(dom.Module()), nil
}

// ReplayJournal reconstructs the dispatcher's binding, quarantine,
// quota, and degradation state from a previous boot's journal: the
// sealed records are re-driven, in order, through the dispatcher's
// normal install path. Call it after Boot and after defining the events
// and loading the extensions whose handlers the resolver maps names back
// to. Only the sealed (fsynced, chain-verified) prefix is applied; a
// crash's unsealed tail is reported in the summary but never trusted.
func (m *Machine) ReplayJournal(data []byte, resolve dispatch.JournalResolve) (journal.Summary, error) {
	_, sum, err := m.Dispatcher.ReplayJournal(data, resolve)
	return sum, err
}

// Run drives the machine's simulator until quiescence (metered machines
// only). The limit bounds runaway simulations; 0 means unbounded.
func (m *Machine) Run(limit int) {
	if m.Sim != nil {
		m.Sim.Run(limit)
	} else {
		m.Sched.RunToCompletion(limit)
	}
}

// Elapsed reports the machine's virtual uptime.
func (m *Machine) Elapsed() vtime.Duration {
	if m.Clock == nil {
		return 0
	}
	return vtime.Duration(m.Clock.Now())
}
