package kernel

import (
	"errors"
	"fmt"
	"testing"

	"spin/internal/dispatch"
	"spin/internal/fault"
	"spin/internal/linker"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/trap"
	"spin/internal/vtime"
)

func TestBootUnmetered(t *testing.T) {
	m, err := Boot(Config{Name: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if m.CPU != nil || m.Sim != nil {
		t.Fatal("unmetered boot attached a meter")
	}
	if m.Dispatcher == nil || m.Sched == nil || m.Trap == nil || m.VM == nil {
		t.Fatal("substrate missing")
	}
	if m.Elapsed() != 0 {
		t.Fatal("unmetered machine has uptime")
	}
	// The core events exist.
	for _, name := range []string{"MachineTrap.Syscall", "Strand.Run", "VM.PageFault", "VM.PageInRequest"} {
		if _, ok := m.Dispatcher.Lookup(name); !ok {
			t.Errorf("event %s not defined at boot", name)
		}
	}
}

func TestBootMetered(t *testing.T) {
	m, err := Boot(Config{Name: "sim", Metered: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.CPU == nil || m.Sim == nil || m.Clock == nil {
		t.Fatal("metered boot missing meter")
	}
	// Boot itself costs virtual time (the VM's default/result handler
	// installations regenerate plans); charges accumulate on top.
	before := m.Elapsed()
	m.CPU.Charge(vtime.CallDirect)
	if m.Elapsed()-before != vtime.Micros(0.10) {
		t.Fatalf("charge delta = %v", m.Elapsed()-before)
	}
}

func TestKernelExportsLinkable(t *testing.T) {
	m, err := Boot(Config{Metered: true})
	if err != nil {
		t.Fatal(err)
	}
	dom, err := m.Nexus.Domain("kernel")
	if err != nil {
		t.Fatal(err)
	}
	exports := dom.Exports()
	want := map[string]bool{"Core": true, "MachineTrap": true, "Strand": true, "VM": true}
	for _, e := range exports {
		delete(want, e)
	}
	if len(want) != 0 {
		t.Fatalf("missing exports: %v (got %v)", want, exports)
	}
}

// TestExtensionLifecycle loads an extension through the two-phase protocol:
// link against MachineTrap, install a syscall handler in the initializer,
// then observe a syscall dispatched to it.
func TestExtensionLifecycle(t *testing.T) {
	m, err := Boot(Config{Metered: true})
	if err != nil {
		t.Fatal(err)
	}
	emu := rtti.NewModule("MiniEmu")
	calls := 0
	img := &linker.Image{
		Name:    "mini-emu",
		Module:  emu,
		Imports: []string{"MachineTrap"},
		Init: func(ctx *linker.Context) error {
			sym, err := ctx.Interface("MachineTrap").Lookup("Syscall")
			if err != nil {
				return err
			}
			ev := sym.(*dispatch.Event)
			_, err = ev.Install(dispatch.Handler{
				Proc: &rtti.Proc{Name: "MiniEmu.Syscall", Module: emu, Sig: trap.SyscallSig},
				Fn: func(clo any, args []any) any {
					calls++
					args[1].(*trap.SavedState).Handled = true
					return nil
				},
			})
			return err
		},
	}
	if _, err := m.LoadExtension(img); err != nil {
		t.Fatal(err)
	}
	st := m.Sched.Spawn("app", 1, func(*sched.Strand) sched.Status { return sched.Done })
	ms := &trap.SavedState{V0: 1}
	if err := m.Trap.RaiseSyscall(st, ms); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || !ms.Handled {
		t.Fatalf("calls=%d handled=%v", calls, ms.Handled)
	}
}

func TestLinkDenialBlocksExtension(t *testing.T) {
	m, err := Boot(Config{})
	if err != nil {
		t.Fatal(err)
	}
	dom, _ := m.Nexus.Domain("kernel")
	evil := rtti.NewModule("Evil")
	if err := dom.SetAuthorizer(func(req *rtti.Module, iface *linker.Interface) bool {
		return req != evil
	}, Module); err != nil {
		t.Fatal(err)
	}
	_, err = m.LoadExtension(&linker.Image{
		Name: "evil", Module: evil, Imports: []string{"MachineTrap"},
	})
	if !errors.Is(err, linker.ErrLinkDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestMachineRunDrainsSimulator(t *testing.T) {
	m, err := Boot(Config{Metered: true})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	m.Sched.Spawn("w", 0, func(st *sched.Strand) sched.Status {
		steps++
		if steps == 3 {
			return sched.Done
		}
		return sched.Yield
	})
	m.Run(0)
	if steps != 3 {
		t.Fatalf("steps = %d", steps)
	}
	if m.Elapsed() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestBootWithPurityChecks(t *testing.T) {
	m, err := Boot(Config{PurityChecks: true})
	if err != nil {
		t.Fatal(err)
	}
	// A mutating guard must be caught.
	ev, err := m.Dispatcher.DefineEvent("T.E", rtti.Sig(nil, rtti.Word))
	if err != nil {
		t.Fatal(err)
	}
	mod := rtti.NewModule("T")
	_, err = ev.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "T.H", Module: mod, Sig: rtti.Sig(nil, rtti.Word)},
		Fn:   func(any, []any) any { return nil },
	}, dispatch.WithGuard(dispatch.Guard{
		Proc: &rtti.Proc{Name: "T.G", Module: mod, Sig: rtti.Sig(rtti.Bool, rtti.Word), Functional: true},
		Fn:   func(clo any, args []any) bool { args[0] = 0; return true },
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Raise(uint64(1)); !errors.Is(err, dispatch.ErrGuardMutatedArgs) {
		t.Fatalf("err = %v", err)
	}
}

func TestBootWithCustomModel(t *testing.T) {
	model := vtime.NewModel(map[vtime.Kind]vtime.Duration{
		vtime.CallDirect: vtime.Micros(1),
	})
	m, err := Boot(Config{Metered: true, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Elapsed()
	m.CPU.Charge(vtime.CallDirect)
	if m.Elapsed()-before != vtime.Micros(1) {
		t.Fatalf("custom model not applied: %v", m.Elapsed()-before)
	}
}

func TestUnmeteredRunUsesScheduler(t *testing.T) {
	m, err := Boot(Config{})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	m.Sched.Spawn("w", 0, func(st *sched.Strand) sched.Status {
		steps++
		if steps == 2 {
			return sched.Done
		}
		return sched.Yield
	})
	m.Run(0)
	if steps != 2 {
		t.Fatalf("steps = %d", steps)
	}
}

func TestShareWithInheritsClockAndSim(t *testing.T) {
	a, err := Boot(Config{Metered: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Boot(Config{ShareWith: a})
	if err != nil {
		t.Fatal(err)
	}
	if b.Clock != a.Clock || b.Sim != a.Sim {
		t.Fatal("shared machine has its own timeline")
	}
	if b.CPU == a.CPU {
		t.Fatal("shared machine must keep its own meter")
	}
	b.CPU.Charge(vtime.CallDirect)
	if a.Clock.Now() == 0 {
		t.Fatal("charge did not advance the shared clock")
	}
	if a.CPU.Total(vtime.AccountKernel) != 0 {
		t.Fatal("charge leaked into the other machine's meter")
	}
}

func TestQuarantineDomainEndToEnd(t *testing.T) {
	pol := fault.DefaultPolicy()
	m, err := Boot(Config{Name: "fq", FaultPolicy: &pol})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Dispatcher.FaultLedger().Policy().Enforcing() {
		t.Fatal("FaultPolicy not wired into the dispatcher")
	}

	// An extension that resolves the dispatcher through the Core
	// interface and installs a handler on a kernel-defined event.
	ev, err := m.Dispatcher.DefineEvent("FQ.Ping", rtti.Sig(nil, rtti.Word))
	if err != nil {
		t.Fatal(err)
	}
	extMod := rtti.NewModule("FaultyExt")
	fired := 0
	img := &linker.Image{
		Name: "faulty", Module: extMod,
		Imports: []string{"Core"},
		Init: func(ctx *linker.Context) error {
			proc := &rtti.Proc{Name: "FaultyExt.OnPing", Module: extMod,
				Sig: rtti.Sig(nil, rtti.Word)}
			_, err := ev.Install(dispatch.Handler{Proc: proc,
				Fn: func(any, []any) any { fired++; return nil }})
			return err
		},
	}
	if _, err := m.LoadExtension(img); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Raise(uint64(7)); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("extension handler fired %d times, want 1", fired)
	}

	// Quarantine the domain: its binding leaves the plan, new linkage
	// and installs are denied.
	n, err := m.QuarantineDomain("faulty")
	if err != nil || n != 1 {
		t.Fatalf("QuarantineDomain = %d, %v; want 1 binding", n, err)
	}
	if !m.Nexus.Quarantined("faulty") || !m.Dispatcher.ModuleQuarantined(extMod) {
		t.Fatal("quarantine not visible on both linker and dispatcher")
	}
	if _, err := ev.Raise(uint64(7)); err != nil && !errors.Is(err, dispatch.ErrNoHandler) {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("quarantined handler still fired (%d)", fired)
	}

	// Readmission restores linkage and dispatch.
	if n, err := m.ReadmitDomain("faulty"); err != nil || n != 1 {
		t.Fatalf("ReadmitDomain = %d, %v; want 1 binding", n, err)
	}
	if _, err := ev.Raise(uint64(7)); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("readmitted handler did not fire (%d)", fired)
	}

	if _, err := m.QuarantineDomain("ghost"); !errors.Is(err, linker.ErrDomainUnknown) {
		t.Fatalf("unknown domain err = %v", err)
	}
}

// TestBootWithShards: Config.Shards attaches the routing plane with the
// machine's own dispatcher as shard 0; events defined through the router
// land on their ring owners and dispatch normally, and the plane is
// exported through the Core interface.
func TestBootWithShards(t *testing.T) {
	m, err := Boot(Config{Name: "sharded", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Router == nil {
		t.Fatal("Shards: 4 did not attach a router")
	}
	if m.Router.Shards() != 4 {
		t.Fatalf("router has %d shards, want 4", m.Router.Shards())
	}
	if m.Router.Shard(0).Dispatcher() != m.Dispatcher {
		t.Fatal("shard 0 is not the machine's dispatcher")
	}
	mod := rtti.NewModule("ShardExt")
	fired := 0
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("ShardExt.Evt.%d", i)
		e, err := m.Router.DefineEvent(name, rtti.Sig(nil, rtti.Word))
		if err != nil {
			t.Fatal(err)
		}
		if e.Shard().ID() != m.Router.Owner(name) {
			t.Fatalf("%s pinned off-ring", name)
		}
		if _, err := e.Install(dispatch.Handler{
			Proc: &rtti.Proc{Name: "ShardExt.H", Module: mod, Sig: rtti.Sig(nil, rtti.Word)},
			Fn:   func(any, []any) any { fired++; return nil },
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Raise1(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 8 {
		t.Fatalf("fired %d, want 8", fired)
	}
	if m.Router.Moves() != 0 {
		t.Fatal("boot performed moves")
	}
	// Unsharded boots stay router-free.
	plain, err := Boot(Config{Name: "plain"})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Router != nil {
		t.Fatal("Shards: 0 attached a router")
	}
}
