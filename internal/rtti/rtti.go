// Package rtti reproduces the slice of the Modula-3 runtime type
// information that the SPIN dispatcher depends on (paper §2.4, §2.5, §3).
//
// In SPIN, events are Modula-3 procedure signatures; the dispatcher uses
// compiler-generated type information to typecheck handlers and guards at
// installation time, to verify the FUNCTIONAL (side-effect free) and
// EPHEMERAL (terminable) attributes, and to establish authority over an
// event through module descriptors obtainable only inside the defining
// module (the THIS_MODULE() primitive of [Hsieh et al. 96]).
//
// Go has no Modula-3 compiler in the loop, so this package substitutes
// explicitly declared descriptors: modules construct their own *Module and
// *Proc values and the dispatcher checks them exactly where SPIN checks the
// compiler's metadata. The public spin package layers Go generics on top,
// restoring compile-time signature checking for typed event wrappers.
package rtti

import (
	"errors"
	"fmt"
	"strings"
)

// Type describes a value type in an event signature. The type system is
// deliberately small: word-sized scalars, booleans, strings, and reference
// types with single inheritance (enough to model Modula-3's REFANY and
// subtype rule for closures, paper §2.4: "the type of the associated
// closure must be a subtype of that reference type").
type Type interface {
	// String returns the type's name for diagnostics.
	String() string
	// AssignableFrom reports whether a value of type u may be passed
	// where this type is expected (reflexive; for reference types it
	// additionally accepts subtypes).
	AssignableFrom(u Type) bool
}

type baseType struct{ name string }

func (b *baseType) String() string { return b.name }

func (b *baseType) AssignableFrom(u Type) bool { return Type(b) == u }

// Predeclared scalar types.
var (
	// Word is a machine word (integers, ports, addresses, register
	// values).
	Word Type = &baseType{"WORD"}
	// Bool is the boolean type; every guard must return it.
	Bool Type = &baseType{"BOOLEAN"}
	// Text is an immutable string (Modula-3 TEXT).
	Text Type = &baseType{"TEXT"}
	// Float is a floating-point scalar.
	Float Type = &baseType{"FLOAT"}
)

// RefType is a reference type with an optional supertype. REFANY is the
// root of the reference hierarchy.
type RefType struct {
	name  string
	super *RefType
}

// RefAny is the root reference type (Modula-3 REFANY): every reference
// type is assignable to it.
var RefAny = &RefType{name: "REFANY"}

// NewRef declares a reference type with the given supertype; a nil super
// means the type derives directly from REFANY.
func NewRef(name string, super *RefType) *RefType {
	if super == nil {
		super = RefAny
	}
	return &RefType{name: name, super: super}
}

// Super returns the declared supertype (nil only for REFANY itself).
func (r *RefType) Super() *RefType { return r.super }

func (r *RefType) String() string { return r.name }

// AssignableFrom implements the subtype rule: u must be r or a transitive
// subtype of r. REFANY itself accepts every type: in this Go adaptation it
// plays the role of Go's any, so scalars boxed into closures are admitted
// where Modula-3 would have auto-wrapped them in a REF cell.
func (r *RefType) AssignableFrom(u Type) bool {
	if r == RefAny {
		return u != nil
	}
	ur, ok := u.(*RefType)
	if !ok {
		return false
	}
	for t := ur; t != nil; t = t.super {
		if t == r {
			return true
		}
	}
	return false
}

// Signature is a procedure signature: the shape shared by an event, its
// handlers, and (modulo the boolean result) its guards. ByRef marks
// parameters a filter handler takes by reference (paper §2.3 "Passing
// arguments"); for events and plain handlers every parameter is by value.
type Signature struct {
	Args   []Type
	ByRef  []bool // nil, or len(Args) entries
	Result Type   // nil for proper procedures (no return value)
}

// Sig builds a by-value signature. Result may be nil.
func Sig(result Type, args ...Type) Signature {
	return Signature{Args: args, Result: result}
}

// Arity returns the number of parameters.
func (s Signature) Arity() int { return len(s.Args) }

// HasResult reports whether the signature returns a value.
func (s Signature) HasResult() bool { return s.Result != nil }

// HasByRef reports whether any parameter is taken by reference.
func (s Signature) HasByRef() bool {
	for _, r := range s.ByRef {
		if r {
			return true
		}
	}
	return false
}

// Validate checks internal consistency (ByRef length) and that no type is
// nil.
func (s Signature) Validate() error {
	if s.ByRef != nil && len(s.ByRef) != len(s.Args) {
		return fmt.Errorf("rtti: ByRef has %d entries for %d args", len(s.ByRef), len(s.Args))
	}
	for i, a := range s.Args {
		if a == nil {
			return fmt.Errorf("rtti: nil type for argument %d", i)
		}
	}
	return nil
}

// EqualTypes reports whether two signatures have identical argument and
// result types, ignoring ByRef marks (the paper allows a filter to differ
// from the event only in by-reference marking).
func (s Signature) EqualTypes(t Signature) bool {
	if len(s.Args) != len(t.Args) {
		return false
	}
	for i := range s.Args {
		if s.Args[i] != t.Args[i] {
			return false
		}
	}
	return s.Result == t.Result
}

// String renders the signature in a Modula-3-flavoured form, e.g.
// "(WORD, REFANY): BOOLEAN".
func (s Signature) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, a := range s.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		if i < len(s.ByRef) && s.ByRef[i] {
			sb.WriteString("VAR ")
		}
		sb.WriteString(a.String())
	}
	sb.WriteByte(')')
	if s.Result != nil {
		sb.WriteString(": ")
		sb.WriteString(s.Result.String())
	}
	return sb.String()
}

// Module is a compilation-unit descriptor. In SPIN a module can obtain its
// own descriptor via THIS_MODULE() and nothing else can forge it; the
// dispatcher compares descriptor identity to decide authority (paper §2.5).
// Here identity is pointer identity of the *Module value: a package that
// keeps its *Module unexported is, to the rest of the program, the only
// code that can present it.
type Module struct {
	name string
	// interfaces lists the interface names this module exports; the
	// linker consults it during symbol resolution.
	interfaces []string
	// asyncQuota bounds the number of asynchronous handlers the module may
	// have installed at once (0 = unlimited). Declared on the descriptor —
	// rather than dispatcher-wide — so a module's admission footprint is
	// part of its published identity, the way its interfaces are.
	asyncQuota int
}

// NewModule declares a module descriptor. The name is for diagnostics
// only; authority checks use pointer identity, never the name.
func NewModule(name string, interfaces ...string) *Module {
	return &Module{name: name, interfaces: interfaces}
}

// Name returns the module's diagnostic name.
func (m *Module) Name() string {
	if m == nil {
		return "<anonymous>"
	}
	return m.name
}

// WithAsyncQuota declares the module's asynchronous-handler admission
// quota and returns the module for chaining at declaration time.
func (m *Module) WithAsyncQuota(n int) *Module {
	m.asyncQuota = n
	return m
}

// AsyncQuota returns the module's declared asynchronous-handler quota
// (0 = unlimited).
func (m *Module) AsyncQuota() int {
	if m == nil {
		return 0
	}
	return m.asyncQuota
}

// Interfaces returns the names of interfaces the module exports.
func (m *Module) Interfaces() []string {
	if m == nil {
		return nil
	}
	return append([]string(nil), m.interfaces...)
}

func (m *Module) String() string { return "MODULE " + m.Name() }

// Proc describes a procedure: its defining module, signature, and the
// language attributes the dispatcher enforces.
type Proc struct {
	// Name is the procedure's qualified name, e.g.
	// "MachEmulator.Syscall".
	Name string
	// Module is the defining compilation unit; nil means the procedure
	// is anonymous (a Go closure), which is acceptable everywhere except
	// where authority must be demonstrated.
	Module *Module
	// Sig is the procedure's signature.
	Sig Signature
	// Functional asserts the procedure is side-effect free (Modula-3
	// FUNCTIONAL, verified there by the compiler). Guards must carry it.
	Functional bool
	// Ephemeral asserts the procedure invites early termination
	// (Modula-3 EPHEMERAL). Only ephemeral handlers may be terminated.
	Ephemeral bool
}

// Errors returned by descriptor validation.
var (
	ErrNilProc     = errors.New("rtti: nil procedure descriptor")
	ErrBadSig      = errors.New("rtti: invalid signature")
	ErrNotBoolRet  = errors.New("rtti: guard must return BOOLEAN")
	ErrNotFunc     = errors.New("rtti: guard must be declared FUNCTIONAL")
	ErrNotEphem    = errors.New("rtti: handler is not declared EPHEMERAL")
	ErrNoAuthority = errors.New("rtti: module descriptor does not define this procedure")
)

// Validate checks the descriptor's signature.
func (p *Proc) Validate() error {
	if p == nil {
		return ErrNilProc
	}
	if err := p.Sig.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSig, err)
	}
	return nil
}

// CheckGuard verifies that p is usable as a guard for an event with
// signature event and the given closure type (nil when the guard takes no
// closure): FUNCTIONAL, boolean result, and argument types equal to the
// event's, optionally preceded by a closure parameter.
func (p *Proc) CheckGuard(event Signature, closure Type) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if !p.Functional {
		return fmt.Errorf("%w: %s", ErrNotFunc, p.Name)
	}
	if p.Sig.Result != Bool {
		return fmt.Errorf("%w: %s has result %v", ErrNotBoolRet, p.Name, p.Sig.Result)
	}
	want := event.Args
	got := p.Sig.Args
	if closure != nil {
		if len(got) == 0 {
			return fmt.Errorf("%w: guard %s installed with a closure must take a closure parameter", ErrBadSig, p.Name)
		}
		if !got[0].AssignableFrom(closure) {
			return fmt.Errorf("%w: guard %s closure parameter %v cannot accept %v", ErrBadSig, p.Name, got[0], closure)
		}
		got = got[1:]
	}
	if len(got) != len(want) {
		return fmt.Errorf("%w: guard %s has %d event args, event has %d", ErrBadSig, p.Name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%w: guard %s arg %d is %v, event expects %v", ErrBadSig, p.Name, i, got[i], want[i])
		}
	}
	return nil
}

// CheckHandler verifies that p is usable as a handler for an event with
// signature event and the given closure type: argument and result types
// equal to the event's, optionally preceded by a closure parameter whose
// type the closure's type is a subtype of. Filters may additionally mark
// parameters by reference; marks are permitted but types must match.
func (p *Proc) CheckHandler(event Signature, closure Type) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Sig.Result != event.Result {
		return fmt.Errorf("%w: handler %s result %v, event result %v", ErrBadSig, p.Name, p.Sig.Result, event.Result)
	}
	got := p.Sig.Args
	if closure != nil {
		if len(got) == 0 {
			return fmt.Errorf("%w: handler %s installed with a closure must take a closure parameter", ErrBadSig, p.Name)
		}
		if !got[0].AssignableFrom(closure) {
			return fmt.Errorf("%w: handler %s closure parameter %v cannot accept %v", ErrBadSig, p.Name, got[0], closure)
		}
		got = got[1:]
	}
	if len(got) != len(event.Args) {
		return fmt.Errorf("%w: handler %s has %d event args, event has %d", ErrBadSig, p.Name, len(got), len(event.Args))
	}
	for i := range event.Args {
		if got[i] != event.Args[i] {
			return fmt.Errorf("%w: handler %s arg %d is %v, event expects %v", ErrBadSig, p.Name, i, got[i], event.Args[i])
		}
	}
	return nil
}

// TypeOf maps a runtime Go value onto the rtti type lattice, for the
// dynamic checks the dispatcher performs on closures and raise arguments.
// Typed references are described by Described values; plain Go values map
// to the scalar types; everything else is REFANY.
func TypeOf(v any) Type {
	switch v := v.(type) {
	case nil:
		return RefAny
	case bool:
		return Bool
	case string:
		return Text
	case int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64, uintptr:
		return Word
	case float32, float64:
		return Float
	case Described:
		return v.RTTIType()
	default:
		return RefAny
	}
}

// Described is implemented by reference values that know their rtti type;
// substrate object types (strands, address spaces, sockets) implement it so
// closure subtype checks work on live values.
type Described interface {
	RTTIType() Type
}
