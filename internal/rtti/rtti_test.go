package rtti

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestBaseTypeAssignability(t *testing.T) {
	if !Word.AssignableFrom(Word) {
		t.Error("Word must accept Word")
	}
	if Word.AssignableFrom(Bool) {
		t.Error("Word must not accept Bool")
	}
	if Bool.AssignableFrom(Text) {
		t.Error("Bool must not accept Text")
	}
}

func TestRefSubtyping(t *testing.T) {
	animal := NewRef("Animal", nil)
	dog := NewRef("Dog", animal)
	cat := NewRef("Cat", animal)
	poodle := NewRef("Poodle", dog)

	if !RefAny.AssignableFrom(poodle) {
		t.Error("REFANY must accept any reference type")
	}
	if !animal.AssignableFrom(dog) || !animal.AssignableFrom(poodle) {
		t.Error("supertype must accept transitive subtypes")
	}
	if dog.AssignableFrom(cat) {
		t.Error("sibling types must not be assignable")
	}
	if dog.AssignableFrom(animal) {
		t.Error("subtype must not accept its supertype")
	}
	if poodle.Super() != dog {
		t.Error("Super() broken")
	}
	if animal.Super() != RefAny {
		t.Error("nil super must default to REFANY")
	}
	// In this adaptation REFANY doubles as Go's any: it accepts scalars
	// too, since closures may carry boxed words or strings.
	if !RefAny.AssignableFrom(Word) || !RefAny.AssignableFrom(Text) {
		t.Error("REFANY must accept boxed scalar types")
	}
	if RefAny.AssignableFrom(nil) {
		t.Error("REFANY must reject a nil type")
	}
}

func TestSignatureString(t *testing.T) {
	s := Sig(Bool, Word, Text)
	if got := s.String(); got != "(WORD, TEXT): BOOLEAN" {
		t.Errorf("String = %q", got)
	}
	s2 := Signature{Args: []Type{Word}, ByRef: []bool{true}}
	if got := s2.String(); got != "(VAR WORD)" {
		t.Errorf("String = %q", got)
	}
	s3 := Sig(nil)
	if got := s3.String(); got != "()" {
		t.Errorf("String = %q", got)
	}
}

func TestSignatureValidate(t *testing.T) {
	good := Sig(nil, Word, Word)
	if err := good.Validate(); err != nil {
		t.Errorf("valid signature rejected: %v", err)
	}
	bad := Signature{Args: []Type{Word}, ByRef: []bool{true, false}}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched ByRef accepted")
	}
	nilArg := Signature{Args: []Type{nil}}
	if err := nilArg.Validate(); err == nil {
		t.Error("nil arg type accepted")
	}
}

func TestSignatureEqualTypes(t *testing.T) {
	a := Sig(Bool, Word, Text)
	b := Sig(Bool, Word, Text)
	if !a.EqualTypes(b) {
		t.Error("identical signatures not equal")
	}
	byref := Signature{Args: []Type{Word, Text}, ByRef: []bool{true, false}, Result: Bool}
	if !a.EqualTypes(byref) {
		t.Error("ByRef marks must not affect type equality")
	}
	if a.EqualTypes(Sig(Bool, Word)) {
		t.Error("different arity equal")
	}
	if a.EqualTypes(Sig(nil, Word, Text)) {
		t.Error("different result equal")
	}
}

func TestSignatureProps(t *testing.T) {
	s := Signature{Args: []Type{Word, Word}, ByRef: []bool{false, true}, Result: Word}
	if s.Arity() != 2 || !s.HasResult() || !s.HasByRef() {
		t.Error("signature property accessors broken")
	}
	v := Sig(nil, Word)
	if v.HasResult() || v.HasByRef() {
		t.Error("by-value void signature misreported")
	}
}

func TestModuleIdentity(t *testing.T) {
	a := NewModule("MachineTrap", "MachineTrap")
	b := NewModule("MachineTrap", "MachineTrap")
	if a == b {
		t.Error("distinct module descriptors compare equal")
	}
	if a.Name() != "MachineTrap" {
		t.Errorf("Name = %q", a.Name())
	}
	if got := a.Interfaces(); len(got) != 1 || got[0] != "MachineTrap" {
		t.Errorf("Interfaces = %v", got)
	}
	var nilMod *Module
	if nilMod.Name() != "<anonymous>" || nilMod.Interfaces() != nil {
		t.Error("nil module accessors broken")
	}
	if !strings.Contains(a.String(), "MachineTrap") {
		t.Errorf("String = %q", a.String())
	}
}

func TestModuleInterfacesCopied(t *testing.T) {
	m := NewModule("M", "I1", "I2")
	got := m.Interfaces()
	got[0] = "hacked"
	if m.Interfaces()[0] != "I1" {
		t.Error("Interfaces() exposed internal slice")
	}
}

func mkEvent() Signature { return Sig(nil, Word, Word) }

func TestCheckGuardHappyPath(t *testing.T) {
	g := &Proc{Name: "G", Sig: Sig(Bool, Word, Word), Functional: true}
	if err := g.CheckGuard(mkEvent(), nil); err != nil {
		t.Errorf("valid guard rejected: %v", err)
	}
}

func TestCheckGuardRules(t *testing.T) {
	ev := mkEvent()
	cases := []struct {
		name string
		p    *Proc
		clo  Type
		want error
	}{
		{"not functional", &Proc{Name: "G", Sig: Sig(Bool, Word, Word)}, nil, ErrNotFunc},
		{"non-bool result", &Proc{Name: "G", Sig: Sig(Word, Word, Word), Functional: true}, nil, ErrNotBoolRet},
		{"void result", &Proc{Name: "G", Sig: Sig(nil, Word, Word), Functional: true}, nil, ErrNotBoolRet},
		{"wrong arity", &Proc{Name: "G", Sig: Sig(Bool, Word), Functional: true}, nil, ErrBadSig},
		{"wrong arg type", &Proc{Name: "G", Sig: Sig(Bool, Word, Text), Functional: true}, nil, ErrBadSig},
		{"closure but no param", &Proc{Name: "G", Sig: Sig(Bool), Functional: true}, RefAny, ErrBadSig},
		{"nil proc", nil, nil, ErrNilProc},
	}
	for _, c := range cases {
		err := c.p.CheckGuard(ev, c.clo)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestCheckGuardWithClosure(t *testing.T) {
	space := NewRef("AddressSpace", nil)
	g := &Proc{
		Name:       "ImposedSyscallGuard",
		Sig:        Signature{Args: []Type{space, Word, Word}, Result: Bool},
		Functional: true,
	}
	if err := g.CheckGuard(mkEvent(), space); err != nil {
		t.Errorf("closure guard rejected: %v", err)
	}
	// A closure of an unrelated type must be rejected.
	port := NewRef("Port", nil)
	if err := g.CheckGuard(mkEvent(), port); err == nil {
		t.Error("unrelated closure type accepted")
	}
	// A subtype closure must be accepted (paper: closure type must be a
	// subtype of the parameter's reference type).
	kidSpace := NewRef("KernelSpace", space)
	if err := g.CheckGuard(mkEvent(), kidSpace); err != nil {
		t.Errorf("subtype closure rejected: %v", err)
	}
}

func TestCheckHandlerHappyPath(t *testing.T) {
	h := &Proc{Name: "H", Sig: Sig(nil, Word, Word)}
	if err := h.CheckHandler(mkEvent(), nil); err != nil {
		t.Errorf("valid handler rejected: %v", err)
	}
}

func TestCheckHandlerRules(t *testing.T) {
	ev := Sig(Bool, Word)
	cases := []struct {
		name string
		p    *Proc
		clo  Type
		ok   bool
	}{
		{"exact match", &Proc{Name: "H", Sig: Sig(Bool, Word)}, nil, true},
		{"wrong result", &Proc{Name: "H", Sig: Sig(Word, Word)}, nil, false},
		{"missing result", &Proc{Name: "H", Sig: Sig(nil, Word)}, nil, false},
		{"wrong arity", &Proc{Name: "H", Sig: Sig(Bool)}, nil, false},
		{"wrong arg", &Proc{Name: "H", Sig: Sig(Bool, Text)}, nil, false},
		{"with closure", &Proc{Name: "H", Sig: Signature{Args: []Type{RefAny, Word}, Result: Bool}}, RefAny, true},
		{"closure missing param", &Proc{Name: "H", Sig: Sig(Bool, Word)}, RefAny, false},
	}
	for _, c := range cases {
		err := c.p.CheckHandler(ev, c.clo)
		if (err == nil) != c.ok {
			t.Errorf("%s: err = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestCheckHandlerByRefFilterAllowed(t *testing.T) {
	// Paper §2.4: a filter is allowed to take some parameters by
	// reference; the types must still match.
	ev := mkEvent()
	filter := &Proc{
		Name: "F",
		Sig:  Signature{Args: []Type{Word, Word}, ByRef: []bool{true, false}},
	}
	if err := filter.CheckHandler(ev, nil); err != nil {
		t.Errorf("by-ref filter rejected: %v", err)
	}
}

type described struct{ t Type }

func (d described) RTTIType() Type { return d.t }

func TestTypeOf(t *testing.T) {
	space := NewRef("Space", nil)
	cases := []struct {
		v    any
		want Type
	}{
		{nil, RefAny},
		{true, Bool},
		{"x", Text},
		{42, Word},
		{uint64(1), Word},
		{int8(-1), Word},
		{3.14, Float},
		{float32(1), Float},
		{described{space}, Type(space)},
		{struct{}{}, RefAny},
	}
	for _, c := range cases {
		if got := TypeOf(c.v); got != c.want {
			t.Errorf("TypeOf(%#v) = %v, want %v", c.v, got, c.want)
		}
	}
}

// Property: assignability along randomly generated subtype chains is
// reflexive and transitive downward, never upward.
func TestSubtypeChainProperty(t *testing.T) {
	f := func(depth uint8) bool {
		n := int(depth%20) + 2
		chain := make([]*RefType, n)
		chain[0] = NewRef("T0", nil)
		for i := 1; i < n; i++ {
			chain[i] = NewRef("T", chain[i-1])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				got := chain[i].AssignableFrom(chain[j])
				want := j >= i // deeper (j) is a subtype of shallower (i)
				if got != want {
					return false
				}
			}
			if !RefAny.AssignableFrom(chain[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestProcValidate(t *testing.T) {
	var p *Proc
	if err := p.Validate(); !errors.Is(err, ErrNilProc) {
		t.Error("nil proc must fail validation")
	}
	bad := &Proc{Name: "B", Sig: Signature{Args: []Type{Word}, ByRef: []bool{true, true}}}
	if err := bad.Validate(); !errors.Is(err, ErrBadSig) {
		t.Error("bad signature must fail validation")
	}
}
