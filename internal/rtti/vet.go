package rtti

// This file exports the install-site metadata the spinvet static verifier
// (internal/analysis/spinvet, cmd/spinvet) keys its checks off. In SPIN the
// Modula-3 compiler *verified* the FUNCTIONAL and EPHEMERAL attributes
// before the dispatcher ever saw a descriptor (paper §2.4); this repo's
// descriptors are self-declared, so the attribute bits are only as honest
// as the extension that wrote them. spinvet restores the compile-time leg
// of that contract: it proves (or refutes) the declared attributes at the
// source level, before installation can happen at runtime.
//
// The table lives here — next to the descriptors it polices — so that an
// API change to the dispatch surface and the verifier's view of that
// surface are reviewed in one place. The analyzer loads this package and
// reads the table through its exported API; nothing at runtime consults it.

// VetRole classifies how an API position consumes a function value, which
// decides the static obligation spinvet enforces on it.
type VetRole int

const (
	// VetGuardFn marks a position whose function is a guard predicate: it
	// must be provably side-effect free (the FUNCTIONAL obligation).
	VetGuardFn VetRole = iota
	// VetHandlerFn marks a plain handler implementation: no purity
	// obligation, but it participates in declaration-consistency checks.
	VetHandlerFn
	// VetCtxHandlerFn marks a cancellation-aware handler implementation:
	// it must be context-cooperative (the EPHEMERAL obligation) — every
	// loop reachable in its body checks ctx.Err()/ctx.Done(), and blocking
	// operations are guarded by the invocation context.
	VetCtxHandlerFn
)

func (r VetRole) String() string {
	switch r {
	case VetGuardFn:
		return "guard"
	case VetHandlerFn:
		return "handler"
	case VetCtxHandlerFn:
		return "ctx-handler"
	}
	return "unknown"
}

// VetSite is one static position in the public API where a function value
// acquires a dispatcher obligation. Two shapes exist:
//
//   - composite-literal sites: Path names a struct type and Field the
//     function-valued field (Arg is -1);
//   - call sites: Path names a function or method (generic instantiation
//     brackets stripped, pointer receivers normalized to "(*T).M") and Arg
//     the zero-based argument index carrying the function.
type VetSite struct {
	// Path is the fully qualified type, function, or method path, e.g.
	// "spin/internal/dispatch.Guard" or "spin.(*Event1).Guard".
	Path string
	// Field is the struct field name for composite-literal sites ("" for
	// call sites).
	Field string
	// Arg is the argument index for call sites (-1 for literal sites).
	Arg int
	// Role is the obligation attached to the function at this position.
	Role VetRole
}

// VetSites returns the install-site table for the current API surface.
//
// Beyond these fixed positions, spinvet applies one structural rule that
// cannot be expressed as a path: any function whose result type includes
// dispatch.Guard is a guard *constructor*, and every function-typed
// parameter it takes is itself a guard position (so netstack.HeaderGuard's
// pred, and any future wrapper like it, inherit the FUNCTIONAL obligation
// at their call sites).
func VetSites() []VetSite {
	lit := func(path, field string, role VetRole) VetSite {
		return VetSite{Path: path, Field: field, Arg: -1, Role: role}
	}
	call := func(path string, arg int, role VetRole) VetSite {
		return VetSite{Path: path, Arg: arg, Role: role}
	}
	sites := []VetSite{
		// The untyped core: Guard and Handler literals, wherever they are
		// built (WithGuard, ImposeGuard, guard constructors, tables).
		lit("spin/internal/dispatch.Guard", "Fn", VetGuardFn),
		lit("spin/internal/dispatch.Handler", "Fn", VetHandlerFn),
		lit("spin/internal/dispatch.Handler", "CtxFn", VetCtxHandlerFn),
	}
	// The typed wrappers: Guard builders take the predicate as their third
	// argument, InstallCtx takes the cancellation-aware handler as its
	// third argument, Install takes the plain handler there too.
	for _, recv := range []string{"Event1", "Event2", "Event3", "FuncEvent1", "FuncEvent2"} {
		sites = append(sites, call("spin.(*"+recv+").Guard", 2, VetGuardFn))
	}
	for _, recv := range []string{"Event0", "Event1", "Event2", "Event3", "FuncEvent0", "FuncEvent1", "FuncEvent2"} {
		sites = append(sites, call("spin.(*"+recv+").Install", 2, VetHandlerFn))
	}
	for _, recv := range []string{"Event0", "Event1", "Event2"} {
		sites = append(sites, call("spin.(*"+recv+").InstallCtx", 2, VetCtxHandlerFn))
	}
	return sites
}
