package netwire

import (
	"errors"
	"testing"

	"spin/internal/vtime"
)

func newLink() (*Link, *vtime.Simulator, *vtime.Clock) {
	var clock vtime.Clock
	sim := vtime.NewSimulator(&clock)
	return NewLink(sim, 0, 0), sim, &clock
}

func TestAttachAndDeliver(t *testing.T) {
	l, sim, _ := newLink()
	a, err := l.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	var got *Frame
	b.SetReceiver(func(f *Frame) { got = f })
	if err := a.Send(&Frame{Dst: "b", EtherType: TypeIP, Size: 100, Payload: "pkt"}); err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("delivery was synchronous")
	}
	sim.Run(0)
	if got == nil || got.Payload != "pkt" || got.Src != "a" {
		t.Fatalf("frame = %+v", got)
	}
	if a.TxFrames != 1 || b.RxFrames != 1 || l.Frames != 1 {
		t.Fatal("counters wrong")
	}
}

func TestSerializationDelayAt10Mbps(t *testing.T) {
	l, _, _ := newLink()
	// A minimum frame: 46+38 = 84 bytes = 672 bits -> 67.2us at 10Mb/s.
	d := l.SerializationDelay(8)
	if us := vtime.InMicros(d); us < 67.1 || us > 67.3 {
		t.Fatalf("min frame = %.2fus, want ~67.2", us)
	}
	// A full MTU frame: 1538 bytes -> 1230.4us.
	d = l.SerializationDelay(MTU)
	if us := vtime.InMicros(d); us < 1230 || us > 1231 {
		t.Fatalf("MTU frame = %.2fus", us)
	}
}

func TestDeliveryTiming(t *testing.T) {
	l, sim, clock := newLink()
	a, _ := l.Attach("a")
	b, _ := l.Attach("b")
	var deliveredAt vtime.Time
	b.SetReceiver(func(f *Frame) { deliveredAt = clock.Now() })
	_ = a.Send(&Frame{Dst: "b", Size: 8})
	sim.Run(0)
	want := l.SerializationDelay(8) + DefaultLatency
	if vtime.Duration(deliveredAt) != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	l, sim, _ := newLink()
	a, _ := l.Attach("a")
	_ = a.Send(&Frame{Dst: "ghost", Size: 8})
	sim.Run(0)
	if l.Dropped != 1 || l.Frames != 0 {
		t.Fatalf("dropped=%d frames=%d", l.Dropped, l.Frames)
	}
}

func TestReceiverlessNICDrops(t *testing.T) {
	l, sim, _ := newLink()
	a, _ := l.Attach("a")
	_, _ = l.Attach("b") // no receiver installed
	_ = a.Send(&Frame{Dst: "b", Size: 8})
	sim.Run(0)
	if l.Dropped != 1 {
		t.Fatalf("dropped = %d", l.Dropped)
	}
}

func TestDuplicateAttach(t *testing.T) {
	l, _, _ := newLink()
	_, _ = l.Attach("a")
	if _, err := l.Attach("a"); !errors.Is(err, ErrDuplicateNI) {
		t.Fatalf("err = %v", err)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	l, _, _ := newLink()
	a, _ := l.Attach("a")
	if err := a.Send(&Frame{Dst: "b", Size: MTU + 1}); !errors.Is(err, ErrTooBig) {
		t.Fatalf("err = %v", err)
	}
}

func TestFIFODeliveryOrder(t *testing.T) {
	l, sim, _ := newLink()
	a, _ := l.Attach("a")
	b, _ := l.Attach("b")
	var order []int
	b.SetReceiver(func(f *Frame) { order = append(order, f.Payload.(int)) })
	for i := 0; i < 5; i++ {
		_ = a.Send(&Frame{Dst: "b", Size: 8, Payload: i})
	}
	sim.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestCustomBandwidthAndLatency(t *testing.T) {
	var clock vtime.Clock
	sim := vtime.NewSimulator(&clock)
	l := NewLink(sim, 100_000_000, vtime.Micros(1))
	// 84 bytes at 100Mb/s = 6.72us.
	if us := vtime.InMicros(l.SerializationDelay(8)); us < 6.7 || us > 6.8 {
		t.Fatalf("delay = %.2fus", us)
	}
}
