package netwire

import (
	"testing"

	"spin/internal/vtime"
)

// corruptiblePayload is a test payload opting into byte-level corruption.
type corruptiblePayload struct {
	data []byte
}

func (c *corruptiblePayload) CorruptedCopy(r uint64) any {
	cp := append([]byte(nil), c.data...)
	if len(cp) > 0 {
		cp[r%uint64(len(cp))] ^= 1 << ((r >> 32) % 8)
	}
	return &corruptiblePayload{data: cp}
}

func sendN(a *NIC, dst string, n int) {
	for i := 0; i < n; i++ {
		_ = a.Send(&Frame{Dst: dst, Size: 100, Payload: i})
	}
}

func TestInjectDropRate(t *testing.T) {
	l, sim, _ := newLink()
	a, _ := l.Attach("a")
	b, _ := l.Attach("b")
	got := 0
	b.SetReceiver(func(f *Frame) { got++ })
	l.InjectFaults(FaultPlan{Seed: 42, Drop: 0.3})
	const n = 1000
	sendN(a, "b", n)
	sim.Run(0)
	st := l.FaultStats()
	if got+int(st.Drops) != n {
		t.Fatalf("delivered %d + dropped %d != %d", got, st.Drops, n)
	}
	if st.Drops < n/5 || st.Drops > n/2 {
		t.Fatalf("drops = %d, want ~%d", st.Drops, 3*n/10)
	}
}

func TestInjectionIsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) (delivered []int, st FaultStats) {
		l, sim, _ := newLink()
		a, _ := l.Attach("a")
		b, _ := l.Attach("b")
		b.SetReceiver(func(f *Frame) { delivered = append(delivered, f.Payload.(int)) })
		l.InjectFaults(FaultPlan{Seed: seed, Drop: 0.2, Duplicate: 0.1, Reorder: 0.1})
		sendN(a, "b", 200)
		sim.Run(0)
		return delivered, l.FaultStats()
	}
	d1, s1 := run(7)
	d2, s2 := run(7)
	if len(d1) != len(d2) || s1 != s2 {
		t.Fatalf("same seed diverged: %d/%d frames, %+v vs %+v", len(d1), len(d2), s1, s2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("same seed, different order at %d: %d vs %d", i, d1[i], d2[i])
		}
	}
	d3, _ := run(8)
	same := len(d1) == len(d3)
	if same {
		for i := range d1 {
			if d1[i] != d3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestInjectDuplicateDeliversTwice(t *testing.T) {
	l, sim, _ := newLink()
	a, _ := l.Attach("a")
	b, _ := l.Attach("b")
	got := 0
	b.SetReceiver(func(f *Frame) { got++ })
	l.InjectFaults(FaultPlan{Seed: 1, Duplicate: 1.0})
	sendN(a, "b", 10)
	sim.Run(0)
	if got != 20 {
		t.Fatalf("delivered %d, want 20", got)
	}
	if st := l.FaultStats(); st.Duplicates != 10 {
		t.Fatalf("dups = %d", st.Duplicates)
	}
}

func TestInjectReorderLetsSuccessorOvertake(t *testing.T) {
	l, sim, _ := newLink()
	a, _ := l.Attach("a")
	b, _ := l.Attach("b")
	var order []int
	b.SetReceiver(func(f *Frame) { order = append(order, f.Payload.(int)) })
	// Reorder exactly the first frame: rate 1 for one send, then clear.
	l.InjectFaults(FaultPlan{Seed: 3, Reorder: 1.0})
	_ = a.Send(&Frame{Dst: "b", Size: 100, Payload: 0})
	l.ClearFaults()
	_ = a.Send(&Frame{Dst: "b", Size: 100, Payload: 1})
	sim.Run(0)
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("order = %v, want [1 0]", order)
	}
}

func TestInjectCorruptFlipsPayloadCopy(t *testing.T) {
	l, sim, _ := newLink()
	a, _ := l.Attach("a")
	b, _ := l.Attach("b")
	orig := &corruptiblePayload{data: []byte{1, 2, 3, 4}}
	var got *corruptiblePayload
	b.SetReceiver(func(f *Frame) { got = f.Payload.(*corruptiblePayload) })
	l.InjectFaults(FaultPlan{Seed: 5, Corrupt: 1.0})
	_ = a.Send(&Frame{Dst: "b", Size: 100, Payload: orig})
	sim.Run(0)
	if got == nil {
		t.Fatal("frame lost")
	}
	if got == orig {
		t.Fatal("corruption mutated the sender's payload object")
	}
	diff := 0
	for i := range orig.data {
		if got.data[i] != orig.data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupted copy differs in %d bytes, want 1", diff)
	}
	if orig.data[0] != 1 || orig.data[1] != 2 {
		t.Fatal("sender's payload mutated")
	}
}

func TestInjectCorruptOpaquePayloadDrops(t *testing.T) {
	l, sim, _ := newLink()
	a, _ := l.Attach("a")
	b, _ := l.Attach("b")
	got := 0
	b.SetReceiver(func(f *Frame) { got++ })
	l.InjectFaults(FaultPlan{Seed: 5, Corrupt: 1.0})
	_ = a.Send(&Frame{Dst: "b", Size: 100, Payload: "opaque"})
	sim.Run(0)
	if got != 0 {
		t.Fatalf("opaque corrupted frame delivered (%d)", got)
	}
	if st := l.FaultStats(); st.Corrupts != 1 {
		t.Fatalf("corrupts = %d", st.Corrupts)
	}
}

func TestPartitionBlackholesBothDirectionsAndHeals(t *testing.T) {
	l, sim, _ := newLink()
	a, _ := l.Attach("a")
	b, _ := l.Attach("b")
	gotA, gotB := 0, 0
	a.SetReceiver(func(f *Frame) { gotA++ })
	b.SetReceiver(func(f *Frame) { gotB++ })
	l.Partition("a", "b")
	if !l.Partitioned("b", "a") {
		t.Fatal("partition not symmetric")
	}
	_ = a.Send(&Frame{Dst: "b", Size: 8})
	_ = b.Send(&Frame{Dst: "a", Size: 8})
	sim.Run(0)
	if gotA != 0 || gotB != 0 {
		t.Fatalf("partitioned traffic delivered: a=%d b=%d", gotA, gotB)
	}
	if st := l.FaultStats(); st.PartitionDrops != 2 {
		t.Fatalf("partition drops = %d", st.PartitionDrops)
	}
	l.Heal("b", "a")
	_ = a.Send(&Frame{Dst: "b", Size: 8})
	sim.Run(0)
	if gotB != 1 {
		t.Fatalf("healed traffic lost: b=%d", gotB)
	}
}

func TestPartitionChecksAtDeliveryInstant(t *testing.T) {
	// A frame already in flight when the cut happens still arrives; a
	// frame sent during the cut is lost even if the link heals before its
	// delivery instant would have passed. (The verdict is taken exactly
	// once, at delivery time.)
	l, sim, clock := newLink()
	a, _ := l.Attach("a")
	b, _ := l.Attach("b")
	got := 0
	b.SetReceiver(func(f *Frame) { got++ })
	_ = a.Send(&Frame{Dst: "b", Size: 8}) // in flight before the cut
	sim.At(clock.Now().Add(vtime.Duration(1)), func() { l.Partition("a", "b") })
	sim.Run(0)
	if got != 1 {
		t.Fatalf("in-flight frame lost across a later cut: got=%d", got)
	}
}

func TestClearFaultsKeepsPartitions(t *testing.T) {
	l, _, _ := newLink()
	l.InjectFaults(FaultPlan{Seed: 1, Drop: 0.5})
	l.Partition("a", "b")
	l.ClearFaults()
	if !l.Partitioned("a", "b") {
		t.Fatal("ClearFaults healed the partition")
	}
}
