// Package netwire simulates the 10 Mb/s Ethernet that connected the
// paper's pair of AXP 3000/400 machines (§3.2 "Networking").
//
// A Link carries frames between attached NICs in virtual time: each send
// pays the frame's serialization delay at the link bandwidth plus a fixed
// media latency, then the destination NIC's receive callback fires as a
// discrete event. The receive callback is the "network interrupt handler"
// hook the network stack installs.
package netwire

import (
	"errors"
	"fmt"

	"spin/internal/vtime"
)

// Ethernet framing constants (bytes on the wire around the payload):
// preamble+SFD 8, MAC header 14, FCS 4, interframe gap 12, minimum payload
// 46.
const (
	frameOverhead = 8 + 14 + 4 + 12
	minPayload    = 46
	// MTU is the maximum Ethernet payload.
	MTU = 1500
	// DefaultBandwidth is 10 Mb/s, the paper's Ethernet.
	DefaultBandwidth = 10_000_000
	// DefaultLatency is the fixed media plus transceiver latency per
	// frame.
	DefaultLatency = vtime.Duration(5 * 1000) // 5us
)

// EtherType values used by the stack.
const (
	TypeIP  uint16 = 0x0800
	TypeARP uint16 = 0x0806
)

// Broadcast is the link-layer broadcast address: a frame sent to it is
// delivered to every attached NIC except the sender.
const Broadcast = "ff:ff:ff:ff:ff:ff"

// Frame is one Ethernet frame. Payload is an opaque reference: the sending
// stack passes its parsed packet representation and the receiving stack
// re-parses, charging the protocol-processing costs explicitly.
type Frame struct {
	Src, Dst  string
	EtherType uint16
	// Size is the payload size in bytes, used for serialization timing.
	Size int
	// Payload carries the packet across the simulated wire.
	Payload any
}

// Errors.
var (
	ErrNoSuchNIC   = errors.New("netwire: no NIC with that address")
	ErrDuplicateNI = errors.New("netwire: address already attached")
	ErrTooBig      = errors.New("netwire: frame exceeds MTU")
)

// Link is a shared broadcast segment.
type Link struct {
	sim       *vtime.Simulator
	bandwidth int64 // bits per second
	latency   vtime.Duration
	nics      map[string]*NIC
	// faults, when non-nil, is the deterministic fault injector (see
	// faults.go). The lossless default never allocates it.
	faults *faultState
	// Frames counts frames delivered.
	Frames int64
	// Dropped counts frames addressed to unattached NICs.
	Dropped int64
}

// NewLink builds a link on the simulator. bandwidth 0 selects
// DefaultBandwidth; latency 0 selects DefaultLatency.
func NewLink(sim *vtime.Simulator, bandwidth int64, latency vtime.Duration) *Link {
	if bandwidth == 0 {
		bandwidth = DefaultBandwidth
	}
	if latency == 0 {
		latency = DefaultLatency
	}
	return &Link{sim: sim, bandwidth: bandwidth, latency: latency, nics: make(map[string]*NIC)}
}

// SerializationDelay reports the time to clock a frame with the given
// payload size onto the wire.
func (l *Link) SerializationDelay(payloadSize int) vtime.Duration {
	if payloadSize < minPayload {
		payloadSize = minPayload
	}
	bits := int64(payloadSize+frameOverhead) * 8
	return vtime.Duration(bits * int64(1_000_000_000) / l.bandwidth)
}

// Attach adds a NIC with the given MAC-like address.
func (l *Link) Attach(addr string) (*NIC, error) {
	if _, dup := l.nics[addr]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateNI, addr)
	}
	n := &NIC{link: l, addr: addr}
	l.nics[addr] = n
	return n, nil
}

// NIC is a network interface attached to a link.
type NIC struct {
	link *Link
	addr string
	recv func(f *Frame)
	// recvB, when set, takes precedence over recv: frames arriving at the
	// same virtual instant are delivered as one train (see
	// SetBatchReceiver).
	recvB      func(fs []*Frame)
	rxTrain    []*Frame
	flushArmed bool
	// txBusyUntil serializes transmissions: a frame cannot start
	// clocking out until the previous one has left the interface, so
	// small frames never overtake large ones queued ahead of them.
	txBusyUntil vtime.Time
	// TxFrames and RxFrames count traffic through this interface.
	TxFrames int64
	RxFrames int64
}

// Addr returns the NIC's address.
func (n *NIC) Addr() string { return n.addr }

// SetReceiver installs the receive-interrupt callback. The stack charges
// its own interrupt cost inside the callback.
func (n *NIC) SetReceiver(fn func(f *Frame)) { n.recv = fn }

// SetBatchReceiver installs a train-coalescing receive callback: all
// frames delivered to this NIC at the same virtual instant arrive in one
// call, in wire order. This models interrupt coalescing on a busy
// receiver — back-to-back frames queued behind one another on the wire
// land in a single RX train — and is the producer feeding the
// dispatcher's batched raise ingress. When set, it takes precedence over
// SetReceiver.
func (n *NIC) SetBatchReceiver(fn func(fs []*Frame)) { n.recvB = fn }

// deliver hands one received frame to the NIC's callback: directly for a
// plain receiver, or appended to the pending RX train for a batch
// receiver, with the train flush scheduled behind every delivery already
// queued at this instant (the simulator runs same-instant events FIFO).
func (n *NIC) deliver(f *Frame) {
	if n.recvB == nil {
		n.recv(f)
		return
	}
	n.rxTrain = append(n.rxTrain, f)
	if !n.flushArmed {
		n.flushArmed = true
		n.link.sim.At(n.link.sim.Clock().Now(), n.flushTrain)
	}
}

// flushTrain delivers the accumulated RX train. The buffer is detached
// before the callback runs: handlers may send, and a later delivery
// re-arms a fresh train.
func (n *NIC) flushTrain() {
	n.flushArmed = false
	train := n.rxTrain
	n.rxTrain = nil
	n.recvB(train)
	if n.rxTrain == nil {
		// No re-entrant delivery claimed a new train; recycle the buffer.
		n.rxTrain = train[:0]
	}
}

// hasReceiver reports whether a delivery would reach a callback.
func (n *NIC) hasReceiver() bool { return n.recv != nil || n.recvB != nil }

// Send transmits a frame. Delivery is scheduled after the serialization
// delay plus link latency; a frame to an unknown address is dropped
// silently after consuming wire time, as on a real segment.
func (n *NIC) Send(f *Frame) error {
	if f.Size > MTU {
		return fmt.Errorf("%w: %d bytes", ErrTooBig, f.Size)
	}
	f.Src = n.addr
	n.TxFrames++
	now := n.link.sim.Clock().Now()
	start := now
	if n.txBusyUntil > start {
		start = n.txBusyUntil
	}
	end := start.Add(n.link.SerializationDelay(f.Size))
	n.txBusyUntil = end
	deliverAt := end.Add(n.link.latency)

	// Fault injection: verdicts — including partition membership — are
	// drawn at send time, so the schedule depends only on the seed, the
	// traffic sequence, and the partition set at the instant of
	// transmission. Frames already in flight when a cut happens still
	// arrive, and frames sent during a cut stay lost even if it heals
	// before their delivery instant.
	out := f
	var blocked map[string]bool
	if fs := n.link.faults; fs != nil {
		if len(fs.parts) > 0 {
			if f.Dst != Broadcast {
				if fs.parts[pairKey(n.addr, f.Dst)] {
					fs.stats.PartitionDrops++
					return nil
				}
			} else {
				for addr := range n.link.nics {
					if fs.parts[pairKey(n.addr, addr)] {
						if blocked == nil {
							blocked = make(map[string]bool)
						}
						blocked[addr] = true
					}
				}
			}
		}
		v := fs.draw()
		if v.drop {
			return nil // consumed wire time, vanished in flight
		}
		if v.corrupt {
			c, ok := f.Payload.(Corruptible)
			if !ok {
				// The receiver's FCS check would reject the mangled
				// frame: corruption of an opaque payload is a drop.
				return nil
			}
			g := *f
			g.Payload = c.CorruptedCopy(v.entropy)
			out = &g
		}
		if v.reorder {
			deliverAt = deliverAt.Add(fs.reorderDelay())
		}
		if v.dup {
			// The copy trails the original by one serialization delay, as
			// a spurious retransmission would.
			dupAt := deliverAt.Add(n.link.SerializationDelay(f.Size))
			dupFrame := out
			n.link.sim.At(dupAt, func() { n.dispatchFrame(dupFrame, blocked) })
		}
	}
	n.link.sim.At(deliverAt, func() { n.dispatchFrame(out, blocked) })
	return nil
}

// dispatchFrame performs the delivery half of Send at the scheduled
// instant. blocked is the set of peers partitioned from the sender at
// transmission time (broadcast only; unicast partitions are filtered in
// Send before the frame is scheduled).
func (n *NIC) dispatchFrame(f *Frame, blocked map[string]bool) {
	l := n.link
	if f.Dst == Broadcast {
		delivered := false
		for _, peer := range l.nics {
			if peer == n || !peer.hasReceiver() {
				continue
			}
			if blocked[peer.addr] {
				l.faults.stats.PartitionDrops++
				continue
			}
			l.Frames++
			peer.RxFrames++
			peer.deliver(f)
			delivered = true
		}
		if !delivered {
			l.Dropped++
		}
		return
	}
	peer, ok := l.nics[f.Dst]
	if !ok || !peer.hasReceiver() {
		l.Dropped++
		return
	}
	l.Frames++
	peer.RxFrames++
	peer.deliver(f)
}
