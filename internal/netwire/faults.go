package netwire

import (
	"spin/internal/vtime"
)

// Deterministic, seedable wire-fault injection. The calibrated link is
// lossless by default; a FaultPlan makes it drop, duplicate, delay, or
// corrupt frames, and Partition blackholes traffic between NIC pairs.
// Every decision is drawn from a splitmix64 stream owned by the link, so a
// given (seed, traffic) pair replays the exact same fault schedule in
// virtual time — the property the remote-raise partition drill and the
// retry/dedup proofs depend on.

// DefaultReorderDelay is the extra in-flight delay a reordered frame pays
// when the plan does not specify one: long enough for a back-to-back
// successor frame to overtake it.
const DefaultReorderDelay = vtime.Duration(500 * 1000) // 500us

// FaultPlan configures per-frame fault probabilities. Rates are
// probabilities in [0, 1], evaluated independently per frame in this
// order: drop, corrupt, duplicate, reorder (a dropped frame draws no
// further verdicts). The zero plan injects nothing.
type FaultPlan struct {
	// Seed initializes the link's fault RNG stream. Re-injecting a plan
	// (even an identical one) reseeds the stream.
	Seed uint64
	// Drop is the probability a frame vanishes in flight (after consuming
	// wire time, as a real collision or CRC-rejected frame would).
	Drop float64
	// Corrupt is the probability a frame is delivered with flipped payload
	// bytes. Payloads opt in via Corruptible; a non-Corruptible payload is
	// dropped instead (the corruption is then indistinguishable from loss,
	// which is what a receiving NIC's FCS check would do anyway).
	Corrupt float64
	// Duplicate is the probability a frame is delivered twice, the copy
	// arriving one serialization delay after the original (a retransmitted
	// frame whose original was not actually lost).
	Duplicate float64
	// Reorder is the probability a frame is held back by ReorderDelay so
	// that later frames overtake it.
	Reorder float64
	// ReorderDelay is the hold-back applied to reordered frames; zero
	// selects DefaultReorderDelay.
	ReorderDelay vtime.Duration
}

// active reports whether the plan can inject anything.
func (p FaultPlan) active() bool {
	return p.Drop > 0 || p.Corrupt > 0 || p.Duplicate > 0 || p.Reorder > 0
}

// Corruptible lets a frame payload opt into byte-level corruption: the
// injector asks for a corrupted *copy* (the sender's object must never be
// mutated — it may still be referenced by a retransmit path). r is a word
// of deterministic entropy selecting which byte/bit to flip.
type Corruptible interface {
	CorruptedCopy(r uint64) any
}

// FaultStats counts injected faults on a link.
type FaultStats struct {
	// Drops, Corrupts, Duplicates, Reorders count frames affected by each
	// randomized verdict. A corrupt verdict on a non-Corruptible payload
	// counts under Corrupts (and is dropped).
	Drops      int64
	Corrupts   int64
	Duplicates int64
	Reorders   int64
	// PartitionDrops counts frames blackholed by an active partition,
	// evaluated at send time so healing releases only traffic sent after
	// the heal.
	PartitionDrops int64
}

// faultState is the link's injector: plan, RNG cursor, partition set.
type faultState struct {
	plan  FaultPlan
	rng   uint64
	parts map[[2]string]bool
	stats FaultStats
}

// splitmix64 advances the state and returns the next word of the stream.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// hit draws one Bernoulli verdict at rate from the word r (53 uniform
// bits, the float64 mantissa width).
func hit(r uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	return float64(r>>11)/float64(1<<53) < rate
}

// InjectFaults installs (or replaces) the link's fault plan and reseeds
// the RNG stream. Partitions are independent of the plan and survive
// re-injection.
func (l *Link) InjectFaults(plan FaultPlan) {
	l.ensureFaults()
	l.faults.plan = plan
	l.faults.rng = plan.Seed
}

// ClearFaults removes the randomized fault plan. Partitions stay until
// healed.
func (l *Link) ClearFaults() {
	if l.faults != nil {
		l.faults.plan = FaultPlan{}
	}
}

// FaultStats returns a snapshot of the injected-fault counters.
func (l *Link) FaultStats() FaultStats {
	if l.faults == nil {
		return FaultStats{}
	}
	return l.faults.stats
}

// Partition blackholes all traffic between the two NIC addresses, in both
// directions, from this virtual instant on. Frames already in flight when
// the partition starts still arrive (the cut severs the cable, not the
// photons past it). Broadcast delivery skips partitioned pairs the same
// way.
func (l *Link) Partition(a, b string) {
	l.ensureFaults()
	l.faults.parts[pairKey(a, b)] = true
}

// Heal removes the partition between two NIC addresses.
func (l *Link) Heal(a, b string) {
	if l.faults != nil {
		delete(l.faults.parts, pairKey(a, b))
	}
}

// Partitioned reports whether traffic between the two addresses is
// currently blackholed.
func (l *Link) Partitioned(a, b string) bool {
	return l.faults != nil && l.faults.parts[pairKey(a, b)]
}

func (l *Link) ensureFaults() {
	if l.faults == nil {
		l.faults = &faultState{parts: make(map[[2]string]bool)}
	}
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// verdict is the per-frame fault decision, drawn once at send time so the
// schedule depends only on the seed and the traffic sequence, never on
// delivery interleaving.
type verdict struct {
	drop    bool
	corrupt bool
	dup     bool
	reorder bool
	entropy uint64 // corruption byte/bit selector
}

// draw consumes RNG words for one frame. Each verdict consumes a word
// only when its rate is non-zero, so enabling one fault mode never shifts
// the schedule another mode would have drawn on its own; a dropped frame
// draws no further verdicts.
func (f *faultState) draw() verdict {
	var v verdict
	p := f.plan
	if !p.active() {
		return v
	}
	if p.Drop > 0 && hit(splitmix64(&f.rng), p.Drop) {
		v.drop = true
		f.stats.Drops++
		return v
	}
	if p.Corrupt > 0 && hit(splitmix64(&f.rng), p.Corrupt) {
		v.corrupt = true
		v.entropy = splitmix64(&f.rng)
		f.stats.Corrupts++
	}
	if p.Duplicate > 0 && hit(splitmix64(&f.rng), p.Duplicate) {
		v.dup = true
		f.stats.Duplicates++
	}
	if p.Reorder > 0 && hit(splitmix64(&f.rng), p.Reorder) {
		v.reorder = true
		f.stats.Reorders++
	}
	return v
}

// reorderDelay returns the configured hold-back for reordered frames.
func (f *faultState) reorderDelay() vtime.Duration {
	if f.plan.ReorderDelay > 0 {
		return f.plan.ReorderDelay
	}
	return DefaultReorderDelay
}
