package remote

import (
	"errors"

	"spin/internal/dispatch"
	"spin/internal/netstack"
	"spin/internal/sched"
)

// The receiver half of the transport: a Receiver listens on a netstack
// TCP port, reassembles wire frames from each connection's byte stream,
// deduplicates raises per sender identity, dispatches them into the local
// dispatcher, and acks the structured outcome. A connection whose stream
// fails CRC is aborted outright — framing cannot resynchronize past a
// damaged length prefix, and the sender's retry machinery (same tokens,
// fresh connection) is the recovery path the dedup window makes safe.

// ReceiverConfig assembles a Receiver from one machine's substrates.
type ReceiverConfig struct {
	Stack      *netstack.Stack
	Sched      *sched.Scheduler
	Dispatcher *dispatch.Dispatcher
	// Port is the listening TCP port.
	Port uint16
	// EventPrefix is prepended to wire event names before dispatcher
	// lookup (the two-machine rigs namespace machine B's events "B:").
	EventPrefix string
	// WindowSize is the per-sender dedup window; 0 selects
	// DefaultWindowSize.
	WindowSize int
}

// ReceiverStats counts the receiver's verdicts.
type ReceiverStats struct {
	// Conns counts accepted connections over the receiver's lifetime.
	Conns int64
	// Raises counts MsgRaise frames decoded (before dedup).
	Raises int64
	// Applied counts raises dispatched (Fresh tokens).
	Applied int64
	// Fired totals handlers fired by applied raises.
	Fired int64
	// Deduped counts duplicate tokens acked without re-dispatch.
	Deduped int64
	// Stale counts tokens below a window floor, refused.
	Stale int64
	// Unknown counts raises naming undefined events.
	Unknown int64
	// Heartbeats counts probes answered.
	Heartbeats int64
	// CorruptConns counts connections aborted on CRC damage.
	CorruptConns int64
}

// Receiver serves remote raises on one machine.
type Receiver struct {
	cfg      ReceiverConfig
	listener *netstack.TCPListener
	// windows holds one dedup window per sender identity. Keyed by the
	// wire Sender field, not by connection: a sender that redials after a
	// partition re-attaches to its existing window, which is what makes
	// retried tokens judgeable across connection epochs.
	windows map[string]*Window
	stats   ReceiverStats
}

// Serve starts listening and accepting. The accept loop and per-connection
// readers are strands on the machine's scheduler.
func Serve(cfg ReceiverConfig) (*Receiver, error) {
	l, err := cfg.Stack.ListenTCP(cfg.Port)
	if err != nil {
		return nil, err
	}
	r := &Receiver{cfg: cfg, listener: l, windows: make(map[string]*Window)}
	cfg.Sched.Spawn("remote-accept", 1, func(st *sched.Strand) sched.Status {
		for {
			c, ok := l.Accept()
			if !ok {
				break
			}
			r.stats.Conns++
			r.serveConn(c)
		}
		l.AwaitConn(st)
		return sched.Block
	})
	return r, nil
}

// Stats snapshots the receiver's counters.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// Window returns the dedup window for a sender (nil before its first
// raise), for tests and the drill report.
func (r *Receiver) Window(sender string) *Window { return r.windows[sender] }

// serveConn spawns the reader strand for one accepted connection.
func (r *Receiver) serveConn(c *netstack.TCPConn) {
	var buf []byte
	r.cfg.Sched.Spawn("remote-rx", 1, func(st *sched.Strand) sched.Status {
		for {
			d, ok := c.Recv()
			if !ok {
				break
			}
			buf = append(buf, d...)
		}
		for len(buf) > 0 {
			m, n, err := DecodeMessage(buf)
			if errors.Is(err, ErrTruncated) {
				break // incomplete frame: wait for more stream
			}
			if err != nil {
				// CRC damage or an unknown kind: the stream is
				// unrecoverable. Abort; the sender redials and retries
				// against the surviving dedup window.
				r.stats.CorruptConns++
				c.Abort()
				return sched.Done
			}
			buf = buf[n:]
			r.handle(c, &m)
		}
		if c.Closed() || c.EOF() {
			return sched.Done
		}
		c.AwaitData(st)
		return sched.Block
	})
}

// handle processes one decoded message and writes the reply, if any.
func (r *Receiver) handle(c *netstack.TCPConn, m *Message) {
	switch m.Kind {
	case MsgHeartbeat:
		r.stats.Heartbeats++
		r.reply(c, &Message{Kind: MsgHeartbeatAck, Token: m.Token})
	case MsgRaise:
		r.stats.Raises++
		ack := r.applyRaise(m)
		ack.Token = m.Token
		r.reply(c, ack)
	}
}

// applyRaise runs the dedup-then-dispatch pipeline for one raise.
func (r *Receiver) applyRaise(m *Message) *Message {
	w := r.windows[m.Sender]
	if w == nil {
		w = NewWindow(r.cfg.WindowSize)
		r.windows[m.Sender] = w
	}
	switch w.Admit(m.Token) {
	case Duplicate:
		// Already applied: success without effects — the at-most-once
		// guarantee under retry.
		r.stats.Deduped++
		return &Message{Kind: MsgAck, Status: StatusDup}
	case Stale:
		// Below the window floor: possibly seen, never safe to re-apply.
		r.stats.Stale++
		return &Message{Kind: MsgAck, Status: StatusRejected}
	}

	ev, ok := r.cfg.Dispatcher.Lookup(r.cfg.EventPrefix + m.Event)
	if !ok {
		r.stats.Unknown++
		return &Message{Kind: MsgAck, Status: StatusUnknown}
	}
	rep, err := ev.RaiseReport(m.Args...)
	if err != nil {
		return &Message{Kind: MsgAck, Status: StatusRejected}
	}
	r.stats.Applied++
	r.stats.Fired += int64(rep.Fired)
	switch {
	case rep.Ambiguous:
		return &Message{Kind: MsgAck, Status: StatusAmbiguous, Fired: int64(rep.Fired)}
	case rep.Fired == 0 && !rep.UsedDefault && !rep.Async:
		return &Message{Kind: MsgAck, Status: StatusNoHandler}
	default:
		return &Message{Kind: MsgAck, Status: StatusApplied, Fired: int64(rep.Fired)}
	}
}

func (r *Receiver) reply(c *netstack.TCPConn, m *Message) {
	frame, err := AppendMessage(nil, m)
	if err != nil {
		return // ack fields are always encodable; unreachable
	}
	_ = c.Send(frame)
}
