// Package remote carries event raises across the simulated wire: a Raise
// on machine A fires handlers on machine B over the repo's own netstack
// TCP and the calibrated 10 Mb/s Ethernet. The paper's dynamic binding
// model stops at the machine boundary; this package extends it with the
// failure-domain semantics a lossy wire demands — per-raise deadlines,
// idempotent retry with receiver-side deduplication (at-most-once
// effects), per-peer circuit breaking charged to the fault ledger, and
// degradation to local fallbacks under partition (DESIGN.md decision 18).
package remote

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Wire framing mirrors the journal's record discipline exactly:
//
//	kind:1 | payloadLen:uvarint | payload | crc32c:4 (little-endian)
//
// with a self-describing TLV payload — key uvarint (id<<1 | wire), wire 0
// a uvarint value, wire 1 a length-prefixed byte string; zero fields
// omitted, signed values zigzag-folded, unknown fields skipped. The CRC
// covers kind, length, and payload, so one flipped byte anywhere in a
// frame is detected before it can reach the dispatcher (the corruption
// sweep in wire_test.go proves every single-byte flip is caught or yields
// a clean truncation).

// MsgKind discriminates wire messages.
type MsgKind uint8

const (
	// MsgRaise asks the receiver to fire an event. It carries the sender's
	// identity, an idempotency token, the event name, the remaining
	// deadline budget, and the serialized argument train.
	MsgRaise MsgKind = iota + 1
	// MsgAck reports the outcome of a raise back to the sender.
	MsgAck
	// MsgHeartbeat probes peer health; Token is a nonce echoed in the ack.
	MsgHeartbeat
	// MsgHeartbeatAck answers a heartbeat.
	MsgHeartbeatAck
)

//spinvet:pure
func (k MsgKind) String() string {
	switch k {
	case MsgRaise:
		return "raise"
	case MsgAck:
		return "ack"
	case MsgHeartbeat:
		return "heartbeat"
	case MsgHeartbeatAck:
		return "heartbeat-ack"
	}
	return "msg(?)"
}

// Status is the receiver's verdict on a raise, carried in MsgAck.
type Status uint8

const (
	// StatusApplied: the raise was dispatched; Fired carries the handler
	// count.
	StatusApplied Status = iota + 1
	// StatusNoHandler: the event exists but dispatch found no handler and
	// no default.
	StatusNoHandler
	// StatusAmbiguous: a synchronous raise fired multiple result-bearing
	// handlers; the result is unusable but the effects happened.
	StatusAmbiguous
	// StatusRejected: the receiver refused the raise (admission shed).
	StatusRejected
	// StatusDup: the token was already applied; the effects are NOT
	// repeated. The sender treats this as success (the earlier attempt
	// landed).
	StatusDup
	// StatusUnknown: the event name is not defined on the receiver.
	StatusUnknown
)

//spinvet:pure
func (s Status) String() string {
	switch s {
	case StatusApplied:
		return "applied"
	case StatusNoHandler:
		return "no-handler"
	case StatusAmbiguous:
		return "ambiguous"
	case StatusRejected:
		return "rejected"
	case StatusDup:
		return "dup"
	case StatusUnknown:
		return "unknown-event"
	}
	return "status(?)"
}

// Message is one wire message; the field set is the superset across kinds.
type Message struct {
	Kind MsgKind
	// Sender identifies the sending peer. Dedup windows are keyed by it,
	// not by connection, so at-most-once survives redials.
	Sender string
	// Token is the raise's idempotency token (or the heartbeat nonce).
	Token uint64
	// Event is the target event name (MsgRaise).
	Event string
	// DeadlineNS is the sender's remaining per-raise budget in
	// nanoseconds, advisory for receiver-side shedding.
	DeadlineNS int64
	// Status and Fired report the outcome (MsgAck).
	Status Status
	Fired  int64
	// Args is the argument train. Only wire-encodable values survive the
	// trip: nil, uint64, int64, int, bool, string, []byte.
	Args []any
}

// Payload field identifiers.
const (
	fieldSender   = 1 // string
	fieldToken    = 2 // uvarint
	fieldEvent    = 3 // string
	fieldDeadline = 4 // zigzag uvarint
	fieldStatus   = 5 // uvarint
	fieldFired    = 6 // zigzag uvarint
	fieldArgs     = 7 // bytes (nested arg train)
)

// Argument tags inside the nested train.
const (
	argNil   = 0
	argWord  = 1 // uint64, uvarint
	argInt   = 2 // int64/int, zigzag uvarint
	argStr   = 3
	argBytes = 4
	argFalse = 5
	argTrue  = 6
)

// Errors.
var (
	// ErrTruncated reports a frame cut off by the end of input — for a
	// stream decoder this means "wait for more bytes".
	ErrTruncated = fmt.Errorf("remote: truncated frame")
	// ErrCorrupt reports a frame whose CRC does not match its bytes. A
	// stream decoder cannot resynchronize past it; the connection must be
	// torn down.
	ErrCorrupt = fmt.Errorf("remote: frame CRC mismatch")
	// ErrBadKind reports an out-of-range message kind byte.
	ErrBadKind = fmt.Errorf("remote: unknown message kind")
	// ErrBadArg reports an argument value that cannot cross the wire.
	ErrBadArg = fmt.Errorf("remote: argument type not wire-encodable")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func putUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func putField(dst []byte, id int, v uint64) []byte {
	if v == 0 {
		return dst
	}
	dst = putUvarint(dst, uint64(id)<<1)
	return putUvarint(dst, v)
}

func putStringField(dst []byte, id int, s string) []byte {
	if s == "" {
		return dst
	}
	dst = putUvarint(dst, uint64(id)<<1|1)
	dst = putUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func putBytesField(dst []byte, id int, b []byte) []byte {
	if len(b) == 0 {
		return dst
	}
	dst = putUvarint(dst, uint64(id)<<1|1)
	dst = putUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

//spinvet:pure
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

//spinvet:pure
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendArgs encodes the argument train: count, then tag+value per arg.
func appendArgs(dst []byte, args []any) ([]byte, error) {
	dst = putUvarint(dst, uint64(len(args)))
	for _, a := range args {
		switch v := a.(type) {
		case nil:
			dst = putUvarint(dst, argNil)
		case uint64:
			dst = putUvarint(dst, argWord)
			dst = putUvarint(dst, v)
		case int64:
			dst = putUvarint(dst, argInt)
			dst = putUvarint(dst, zigzag(v))
		case int:
			dst = putUvarint(dst, argInt)
			dst = putUvarint(dst, zigzag(int64(v)))
		case bool:
			if v {
				dst = putUvarint(dst, argTrue)
			} else {
				dst = putUvarint(dst, argFalse)
			}
		case string:
			dst = putUvarint(dst, argStr)
			dst = putUvarint(dst, uint64(len(v)))
			dst = append(dst, v...)
		case []byte:
			dst = putUvarint(dst, argBytes)
			dst = putUvarint(dst, uint64(len(v)))
			dst = append(dst, v...)
		default:
			return nil, fmt.Errorf("%w: %T", ErrBadArg, a)
		}
	}
	return dst, nil
}

// decodeArgs decodes an argument train produced by appendArgs.
func decodeArgs(p []byte) ([]any, error) {
	count, n := binary.Uvarint(p)
	if n <= 0 || count > uint64(len(p)) {
		return nil, ErrCorrupt
	}
	p = p[n:]
	args := make([]any, 0, count)
	for i := uint64(0); i < count; i++ {
		tag, tn := binary.Uvarint(p)
		if tn <= 0 {
			return nil, ErrCorrupt
		}
		p = p[tn:]
		switch tag {
		case argNil:
			args = append(args, nil)
		case argFalse:
			args = append(args, false)
		case argTrue:
			args = append(args, true)
		case argWord, argInt:
			v, vn := binary.Uvarint(p)
			if vn <= 0 {
				return nil, ErrCorrupt
			}
			p = p[vn:]
			if tag == argWord {
				args = append(args, v)
			} else {
				args = append(args, unzigzag(v))
			}
		case argStr, argBytes:
			slen, sn := binary.Uvarint(p)
			if sn <= 0 || slen > uint64(len(p)-sn) {
				return nil, ErrCorrupt
			}
			val := p[sn : sn+int(slen)]
			p = p[sn+int(slen):]
			if tag == argStr {
				args = append(args, string(val))
			} else {
				args = append(args, append([]byte(nil), val...))
			}
		default:
			return nil, ErrCorrupt
		}
	}
	return args, nil
}

// AppendMessage encodes m as one framed message onto dst. It fails only
// for non-encodable argument values.
func AppendMessage(dst []byte, m *Message) ([]byte, error) {
	var payload [256]byte
	p := payload[:0]
	p = putStringField(p, fieldSender, m.Sender)
	p = putField(p, fieldToken, m.Token)
	p = putStringField(p, fieldEvent, m.Event)
	p = putField(p, fieldDeadline, zigzag(m.DeadlineNS))
	p = putField(p, fieldStatus, uint64(m.Status))
	p = putField(p, fieldFired, zigzag(m.Fired))
	if len(m.Args) > 0 {
		var train [192]byte
		tr, err := appendArgs(train[:0], m.Args)
		if err != nil {
			return nil, err
		}
		p = putBytesField(p, fieldArgs, tr)
	}

	start := len(dst)
	dst = append(dst, byte(m.Kind))
	dst = putUvarint(dst, uint64(len(p)))
	dst = append(dst, p...)
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, crc), nil
}

// DecodeMessage decodes one frame from the front of buf, returning the
// message and the number of bytes consumed. ErrTruncated means the buffer
// holds an incomplete frame (wait for more stream bytes); ErrCorrupt and
// ErrBadKind mean the stream is damaged beyond resynchronization.
func DecodeMessage(buf []byte) (Message, int, error) {
	var m Message
	if len(buf) < 1 {
		return m, 0, ErrTruncated
	}
	kind := MsgKind(buf[0])
	if kind == 0 || kind > MsgHeartbeatAck {
		return m, 0, fmt.Errorf("%w: %d", ErrBadKind, buf[0])
	}
	plen, n := binary.Uvarint(buf[1:])
	if n <= 0 {
		return m, 0, ErrTruncated
	}
	head := 1 + n
	if plen > uint64(len(buf)-head) {
		return m, 0, ErrTruncated
	}
	frameLen := head + int(plen)
	if len(buf) < frameLen+4 {
		return m, 0, ErrTruncated
	}
	want := binary.LittleEndian.Uint32(buf[frameLen:])
	if crc32.Checksum(buf[:frameLen], crcTable) != want {
		return m, 0, ErrCorrupt
	}
	m.Kind = kind
	p := buf[head:frameLen]
	for len(p) > 0 {
		key, kn := binary.Uvarint(p)
		if kn <= 0 {
			return m, 0, ErrCorrupt
		}
		p = p[kn:]
		if key&1 == 1 { // length-prefixed bytes
			slen, sn := binary.Uvarint(p)
			if sn <= 0 || slen > uint64(len(p)-sn) {
				return m, 0, ErrCorrupt
			}
			val := p[sn : sn+int(slen)]
			p = p[sn+int(slen):]
			switch key >> 1 {
			case fieldSender:
				m.Sender = string(val)
			case fieldEvent:
				m.Event = string(val)
			case fieldArgs:
				args, err := decodeArgs(val)
				if err != nil {
					return m, 0, err
				}
				m.Args = args
			}
			continue
		}
		v, vn := binary.Uvarint(p)
		if vn <= 0 {
			return m, 0, ErrCorrupt
		}
		p = p[vn:]
		switch key >> 1 {
		case fieldToken:
			m.Token = v
		case fieldDeadline:
			m.DeadlineNS = unzigzag(v)
		case fieldStatus:
			m.Status = Status(v)
		case fieldFired:
			m.Fired = unzigzag(v)
		}
	}
	return m, frameLen + 4, nil
}
