package remote

import (
	"errors"
	"sync/atomic"
	"testing"

	"spin/internal/admit"
	"spin/internal/dispatch"
	"spin/internal/fault"
	"spin/internal/kernel"
	"spin/internal/netstack"
	"spin/internal/netwire"
	"spin/internal/rtti"
	"spin/internal/trace"
	"spin/internal/vtime"
)

// rig is the two-machine drill bench: machine A raises across the wire
// into machine B's dispatcher.
type rig struct {
	a, b   *kernel.Machine
	sa, sb *Rigs
	link   *netwire.Link
	recv   *Receiver
	// hits counts B-side handler firings; sum accumulates the Word arg so
	// effect duplication (not just call duplication) is observable.
	hits atomic.Int64
	sum  atomic.Uint64
}

// Rigs bundles a machine's stack for the test harness.
type Rigs struct{ stack *netstack.Stack }

const rigPort = 9000

func twoMachines(t *testing.T) *rig {
	t.Helper()
	a, err := kernel.Boot(kernel.Config{Name: "a", Metered: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := kernel.Boot(kernel.Config{Name: "b", ShareWith: a})
	if err != nil {
		t.Fatal(err)
	}
	link := netwire.NewLink(a.Sim, 0, 0)
	nicA, err := link.Attach("mac-a")
	if err != nil {
		t.Fatal(err)
	}
	nicB, err := link.Attach("mac-b")
	if err != nil {
		t.Fatal(err)
	}
	arp := map[string]string{"10.0.0.1": "mac-a", "10.0.0.2": "mac-b"}
	sa, err := netstack.New(netstack.Config{Dispatcher: a.Dispatcher, CPU: a.CPU,
		Sched: a.Sched, NIC: nicA, IP: "10.0.0.1", ARP: arp})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := netstack.New(netstack.Config{Dispatcher: b.Dispatcher, CPU: b.CPU,
		Sched: b.Sched, NIC: nicB, IP: "10.0.0.2", ARP: arp, Prefix: "B:"})
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{a: a, b: b, sa: &Rigs{sa}, sb: &Rigs{sb}, link: link}

	// B exports the drill event the wire raises land on.
	sig := rtti.Signature{Args: []rtti.Type{rtti.Word}}
	_, err = b.Dispatcher.DefineEvent("B:Remote.Ping", sig,
		dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Remote.Ping", Sig: sig},
			Fn: func(clo any, args []any) any {
				r.hits.Add(1)
				r.sum.Add(args[0].(uint64))
				return nil
			},
		}))
	if err != nil {
		t.Fatal(err)
	}
	r.recv, err = Serve(ReceiverConfig{Stack: sb, Sched: b.Sched,
		Dispatcher: b.Dispatcher, Port: rigPort, EventPrefix: "B:"})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// peer builds machine A's sending endpoint with test-friendly timing.
func (r *rig) peer(mut func(*PeerConfig)) *Peer {
	cfg := PeerConfig{
		Name: "b", Self: "machine-a", Addr: "10.0.0.2", Port: rigPort,
		Stack: r.sa.stack, Sched: r.a.Sched, Clock: r.a.Clock,
	}
	if mut != nil {
		mut(&cfg)
	}
	return NewPeer(cfg)
}

func ms(n int) vtime.Duration { return vtime.Duration(n) * 1000 * 1000 }

// run drives the shared simulator for about d of virtual time.
func (r *rig) run(t *testing.T, d vtime.Duration) {
	t.Helper()
	r.a.Sim.RunUntil(r.a.Clock.Now().Add(d))
}

func TestRemoteRaiseDeliversAndAcks(t *testing.T) {
	r := twoMachines(t)
	p := r.peer(nil)
	var status Status
	err := p.RaiseCall(Binding{Event: "Remote.Ping"},
		func(s Status, err error) { status = s }, uint64(7))
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, ms(50))
	if r.hits.Load() != 1 || r.sum.Load() != 7 {
		t.Fatalf("handler hits=%d sum=%d, want 1/7", r.hits.Load(), r.sum.Load())
	}
	if status != StatusApplied {
		t.Fatalf("ack status = %v, want applied", status)
	}
	st := p.Stats()
	if st.Delivered != 1 || st.TimedOut != 0 || st.Shed != 0 {
		t.Fatalf("peer stats = %+v", st)
	}
	rs := r.recv.Stats()
	if rs.Raises != 1 || rs.Applied != 1 || rs.Fired != 1 {
		t.Fatalf("receiver stats = %+v", rs)
	}
	l := p.Ledger()
	if l.Submitted != 1 || l.Completed != 1 || l.Depth != 0 {
		t.Fatalf("ledger = %+v", l)
	}
}

func TestRemoteUnknownEventAndNoHandlerStatuses(t *testing.T) {
	r := twoMachines(t)
	// An announcement event with no handlers bound.
	sig := rtti.Signature{Args: []rtti.Type{rtti.Word}}
	if _, err := r.b.Dispatcher.DefineEvent("B:Remote.Empty", sig); err != nil {
		t.Fatal(err)
	}
	p := r.peer(nil)
	var got []Status
	keep := func(s Status, err error) { got = append(got, s) }
	_ = p.RaiseCall(Binding{Event: "Remote.NoSuch"}, keep, uint64(1))
	_ = p.RaiseCall(Binding{Event: "Remote.Empty"}, keep, uint64(1))
	r.run(t, ms(50))
	if len(got) != 2 || got[0] != StatusUnknown || got[1] != StatusNoHandler {
		t.Fatalf("statuses = %v, want [unknown nohandler]", got)
	}
	if rs := r.recv.Stats(); rs.Unknown != 1 {
		t.Fatalf("receiver unknown = %d", rs.Unknown)
	}
}

// TestRemoteRetryUnderDropDeliversExactlyOnce is the at-most-once pillar:
// a seeded lossy wire drops raises, acks, and handshake segments; the
// peer's idempotent retries push every accepted raise through, and the
// receiver's dedup window guarantees no raise fires its handlers twice.
func TestRemoteRetryUnderDropDeliversExactlyOnce(t *testing.T) {
	r := twoMachines(t)
	r.link.InjectFaults(netwire.FaultPlan{Seed: 42, Drop: 0.25})
	p := r.peer(func(c *PeerConfig) {
		c.Deadline = ms(400)
		c.MaxAttempts = 10
		// The lossy-wire drill measures retry/dedup, not circuit breaking:
		// keep the breaker out of the way.
		c.Breaker = BreakerConfig{TripBudget: 1000}
	})
	const n = 20
	var want uint64
	for i := 1; i <= n; i++ {
		if err := p.Raise("Remote.Ping", uint64(i)); err != nil {
			t.Fatalf("raise %d: %v", i, err)
		}
		want += uint64(i)
		r.run(t, ms(30))
	}
	r.run(t, ms(600))

	st := p.Stats()
	if st.Delivered+st.Deduped != n {
		t.Fatalf("delivered=%d deduped=%d timedout=%d shed=%d, want %d settled ok",
			st.Delivered, st.Deduped, st.TimedOut, st.Shed, n)
	}
	// Exactly once: every accepted raise fired its handler exactly one
	// time, and the sum proves no arg applied twice.
	if r.hits.Load() != n || r.sum.Load() != want {
		t.Fatalf("handler hits=%d sum=%d, want %d/%d", r.hits.Load(), r.sum.Load(), n, want)
	}
	rs := r.recv.Stats()
	if rs.Applied != n {
		t.Fatalf("receiver applied = %d, want %d", rs.Applied, n)
	}
	// The lossy wire must actually have forced recovery work, or the test
	// proves nothing.
	fs := r.link.FaultStats()
	if fs.Drops == 0 {
		t.Fatal("fault plan dropped nothing; seed or rate broken")
	}
	if l := p.Ledger(); l.Retried == 0 {
		t.Fatalf("no retries under 25%% drop: ledger = %+v", l)
	}
	if w := r.recv.Window("machine-a"); w == nil || w.Admitted != n {
		t.Fatalf("dedup window admitted = %v, want %d", w, n)
	}
}

// TestRemoteBreakerOpensWithinTripBudgetAndHalfOpensOnHeal walks the
// breaker around its full cycle: partition → consecutive deadline
// failures trip it open within TripBudget raises → open sheds instantly →
// cooldown half-opens → a healed probe closes it.
func TestRemoteBreakerOpensWithinTripBudgetAndHalfOpensOnHeal(t *testing.T) {
	r := twoMachines(t)
	faults := fault.NewLedger(fault.Policy{})
	tracer := trace.New(trace.Config{Capacity: 64})
	p := r.peer(func(c *PeerConfig) {
		c.Deadline = ms(30)
		c.MaxAttempts = 2
		c.Breaker = BreakerConfig{TripBudget: 3, Cooldown: ms(100)}
		c.Faults = faults
		c.Tracer = tracer
	})
	r.link.Partition("mac-a", "mac-b")

	// Trip budget is 3 consecutive failures; each raise times out
	// terminally (2 attempts), charging one failure.
	for i := 0; i < 3; i++ {
		if err := p.Raise("Remote.Ping", uint64(1)); err != nil {
			t.Fatalf("raise %d rejected before trip: %v", i, err)
		}
		r.run(t, ms(60))
	}
	if got := p.Breaker().State(); got != BreakerOpen {
		t.Fatalf("breaker = %v after trip budget, want open", got)
	}
	// Open circuit: raises shed locally without touching the wire.
	if err := p.Raise("Remote.Ping", uint64(1)); !errors.Is(err, ErrPeerOpen) {
		t.Fatalf("raise on open circuit: err = %v", err)
	}
	st := p.Stats()
	if st.TimedOut != 3 || st.Shed != 1 {
		t.Fatalf("stats = %+v, want 3 timeouts and 1 shed", st)
	}
	// Shed visibility: the admission ledger accounts every rejection.
	if l := p.Ledger(); l.Submitted != 4 || l.Shed != 4 || l.Completed != 0 {
		t.Fatalf("ledger = %+v", l)
	}
	// The trip charged the peer's failure domain in the fault ledger.
	recs := faults.Records()
	if len(recs) != 1 || recs[0].Kind != fault.KindRemote || recs[0].Handler != "b" {
		t.Fatalf("fault ledger = %+v", recs)
	}

	// Heal, wait out the cooldown: the breaker half-opens lazily.
	r.link.Heal("mac-a", "mac-b")
	r.run(t, ms(120))
	if got := p.Breaker().State(); got != BreakerHalfOpen {
		t.Fatalf("breaker = %v after cooldown, want half-open", got)
	}
	// The probe raise goes through and closes the circuit.
	if err := p.Raise("Remote.Ping", uint64(9)); err != nil {
		t.Fatalf("probe raise: %v", err)
	}
	r.run(t, ms(100))
	if got := p.Breaker().State(); got != BreakerClosed {
		t.Fatalf("breaker = %v after probe success, want closed", got)
	}
	if st := p.Stats(); st.Delivered != 1 {
		t.Fatalf("probe not delivered: %+v", st)
	}
	// The tracer saw both transitions as breaker spans.
	var trips, closes int
	for _, sp := range tracer.Snapshot() {
		if sp.Kind != trace.KindBreaker {
			continue
		}
		switch int(sp.Detail & 0xFF) {
		case int(BreakerOpen):
			trips++
		case int(BreakerClosed):
			closes++
		}
	}
	if trips != 1 || closes != 1 {
		t.Fatalf("breaker spans: trips=%d closes=%d, want 1/1", trips, closes)
	}
}

// TestRemotePartitionDegradesAndReroutes is the partition-tolerance
// pillar: heartbeat misses declare the partition, the breaker force-opens,
// the degrader steps to the partitioned level, and bound raises re-route
// to their local fallbacks (or shed when essential-only).
func TestRemotePartitionDegradesAndReroutes(t *testing.T) {
	r := twoMachines(t)
	// Ladder entries are levels 1..n (level 0 is the implicit normal), so
	// index 0 is LevelTripped and index 1 is LevelPartitioned.
	deg := admit.NewDegrader([]admit.Level{
		{Name: "tripped", MinPriority: 3},
		{Name: "partitioned", MinPriority: 1},
	}, 1)
	p := r.peer(func(c *PeerConfig) {
		c.Deadline = ms(30)
		c.MaxAttempts = 2
		c.HeartbeatEvery = ms(10)
		c.HeartbeatMisses = 2
		c.Breaker = BreakerConfig{TripBudget: 100, Cooldown: ms(50)}
		c.Degrader = deg
	})
	// A local fallback event on machine A for optional work.
	var local atomic.Int64
	sig := rtti.Signature{Args: []rtti.Type{rtti.Word}}
	fb, err := r.a.Dispatcher.DefineEvent("Local.PingFallback", sig,
		dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Local.PingFallback", Sig: sig},
			Fn:   func(clo any, args []any) any { local.Add(1); return nil },
		}))
	if err != nil {
		t.Fatal(err)
	}

	// Healthy traffic starts the heartbeat chain and proves the route.
	if err := p.Raise("Remote.Ping", uint64(1)); err != nil {
		t.Fatal(err)
	}
	r.run(t, ms(25))
	if p.Stats().Delivered != 1 {
		t.Fatalf("warmup not delivered: %+v", p.Stats())
	}

	// Cut the wire. Two missed probes (10ms apart) declare the partition.
	r.link.Partition("mac-a", "mac-b")
	r.run(t, ms(60))
	if got := p.Breaker().State(); got != BreakerOpen {
		t.Fatalf("breaker = %v after heartbeat misses, want forced open", got)
	}
	if deg.Level() != LevelPartitioned {
		t.Fatalf("degrader level = %d (%s), want partitioned",
			deg.Level(), deg.LevelName(deg.Level()))
	}
	// Optional binding re-routes to its fallback; unbound optional sheds.
	if err := p.RaiseBound(Binding{Event: "Remote.Ping", Priority: 2, Fallback: fb},
		uint64(5)); err != nil {
		t.Fatalf("fallback reroute: %v", err)
	}
	if err := p.RaiseBound(Binding{Event: "Remote.Ping", Priority: 2},
		uint64(6)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("unbound optional raise: err = %v, want ErrDegraded", err)
	}
	if local.Load() != 1 {
		t.Fatalf("fallback fired %d times, want 1", local.Load())
	}
	st := p.Stats()
	if st.Rerouted != 1 || st.Shed != 1 {
		t.Fatalf("stats = %+v, want 1 rerouted + 1 shed", st)
	}
	if st.HeartbeatMisses < 2 {
		t.Fatalf("heartbeat misses = %d, want >= 2", st.HeartbeatMisses)
	}

	// Heal. The next answered probe clears the partition; after cooldown
	// the half-open breaker closes on the following probe ack, and the
	// degrader steps back to normal.
	r.link.Heal("mac-a", "mac-b")
	r.run(t, ms(200))
	if got := p.Breaker().State(); got != BreakerClosed {
		t.Fatalf("breaker = %v after heal, want closed", got)
	}
	if deg.Level() != LevelNormal {
		t.Fatalf("degrader level = %d after heal, want normal", deg.Level())
	}
	// Remote traffic flows again.
	if err := p.Raise("Remote.Ping", uint64(3)); err != nil {
		t.Fatal(err)
	}
	r.run(t, ms(50))
	if got := p.Stats().Delivered; got != 2 {
		t.Fatalf("delivered = %d after heal, want 2", got)
	}
	p.Close()
	r.run(t, ms(100))
}

// TestRemoteCompiledInLocalBypassRaiseZeroAlloc is the cost gate: with the
// remote subsystem compiled in, serving, and a peer constructed, a purely
// local single-intrinsic bypass raise still completes in zero heap
// allocations — remoteness costs nothing until an event actually crosses
// the wire.
func TestRemoteCompiledInLocalBypassRaiseZeroAlloc(t *testing.T) {
	r := twoMachines(t)
	p := r.peer(nil)
	_ = p // constructed but unused: the gate is about presence, not traffic
	sig := rtti.Signature{Args: []rtti.Type{rtti.Word, rtti.Word}}
	var cell atomic.Uint64
	ev, err := r.a.Dispatcher.DefineEvent("Local.Fast", sig,
		dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Local.Fast", Sig: sig},
			Fn: func(clo any, args []any) any {
				cell.Store(args[0].(uint64) + args[1].(uint64))
				return nil
			},
		}))
	if err != nil {
		t.Fatal(err)
	}
	av := []any{uint64(1), uint64(2)}
	if n := testing.AllocsPerRun(1000, func() { _, _ = ev.Raise(av...) }); n != 0 {
		t.Errorf("local Raise(av...) allocates %v/op with remote compiled in, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { _, _ = ev.Raise2(uint64(1), uint64(2)) }); n != 0 {
		t.Errorf("local Raise2 allocates %v/op with remote compiled in, want 0", n)
	}
}
