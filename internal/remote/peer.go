package remote

import (
	"errors"
	"fmt"

	"spin/internal/admit"
	"spin/internal/dispatch"
	"spin/internal/fault"
	"spin/internal/netstack"
	"spin/internal/sched"
	"spin/internal/trace"
	"spin/internal/vtime"
)

// The sender half of the transport: a Peer owns one remote machine's
// failure domain. Raises flow through the circuit breaker, onto a TCP
// connection the peer dials (and redials) itself, with a per-raise
// deadline and jittered-exponential retransmission driven by
// sched.Scheduler.After. Every terminal outcome is accounted in an
// admission-style ledger; breaker trips charge the fault ledger, emit
// trace spans, and move the machine's degradation level so bound raises
// re-route to local fallbacks or shed instead of queueing into a
// partition.

// Degradation levels the peer forces on its Degrader ladder.
const (
	// LevelNormal: breaker closed, remote traffic flows.
	LevelNormal = 0
	// LevelTripped: breaker open on deadline/connection failures.
	LevelTripped = 1
	// LevelPartitioned: heartbeat misses exhausted — the peer is declared
	// unreachable.
	LevelPartitioned = 2
)

// Errors.
var (
	// ErrPeerOpen reports a raise rejected locally because the breaker is
	// open (and no fallback was bound).
	ErrPeerOpen = errors.New("remote: peer circuit open")
	// ErrDegraded reports a raise shed because the degradation level
	// disabled its priority class.
	ErrDegraded = errors.New("remote: raise shed by degradation level")
)

// PeerConfig assembles a Peer from one machine's substrates.
type PeerConfig struct {
	// Name labels the peer in traces and the fault ledger.
	Name string
	// Self is the sender identity stamped on every raise; the receiver
	// keys its dedup window by it, so it must be stable across redials.
	Self string
	// Addr and Port locate the peer's Receiver.
	Addr string
	Port uint16

	Stack *netstack.Stack
	Sched *sched.Scheduler
	Clock *vtime.Clock

	// Deadline is the per-raise budget from first transmission to
	// terminal verdict; 0 selects 20ms (~40 calibrated round trips).
	Deadline vtime.Duration
	// MaxAttempts bounds transmissions per raise (first send plus
	// retries); 0 selects 4.
	MaxAttempts int
	// Retry shapes the backoff between attempts (admit.Policy's
	// RetryBackoff/RetryFactor/MaxRetryBackoff fields); the delay doubles
	// as the per-attempt ack timeout.
	Retry admit.Policy
	// Breaker tunes the circuit; see BreakerConfig.
	Breaker BreakerConfig
	// Seed drives retry jitter deterministically.
	Seed uint64

	// HeartbeatEvery probes peer health on this period; 0 disables
	// heartbeats (and partition detection).
	HeartbeatEvery vtime.Duration
	// HeartbeatMisses is the consecutive unanswered probes that declare a
	// partition; 0 selects 3.
	HeartbeatMisses int

	// Faults, Tracer, Degrader are the failure-domain integrations; each
	// is optional.
	Faults   *fault.Ledger
	Tracer   *trace.Tracer
	Degrader *admit.Degrader
}

// Binding routes an event to the peer with degradation semantics: when
// the breaker is open or the degradation level disables the binding's
// priority class, the raise re-routes to the local Fallback event (if
// any) instead of the wire.
type Binding struct {
	// Event is the wire event name.
	Event string
	// Priority is the degradation class: 0 essential (never shed by
	// level), higher more optional.
	Priority int
	// Fallback, when set, handles the raise locally when the remote path
	// is unavailable.
	Fallback *dispatch.Event
}

// PeerStats counts the sender's terminal outcomes.
type PeerStats struct {
	// Delivered counts raises acked StatusApplied/NoHandler/Ambiguous.
	Delivered int64
	// Deduped counts raises acked StatusDup: a retry landed after the
	// original — delivered exactly once despite both transmissions.
	Deduped int64
	// RejectedRemote counts raises the receiver refused (admission or
	// stale token).
	RejectedRemote int64
	// TimedOut counts raises that exhausted deadline or attempts.
	TimedOut int64
	// Shed counts raises rejected locally (breaker open or degradation)
	// with no fallback.
	Shed int64
	// Rerouted counts raises handled by a local fallback.
	Rerouted int64
	// Redials counts connection (re)establishment attempts.
	Redials int64
	// HeartbeatsSent and HeartbeatMisses count the health probe traffic.
	HeartbeatsSent  int64
	HeartbeatMisses int64
}

// splitmix64 advances a deterministic jitter stream for retry backoff
// (same generator the wire fault injector uses, separate state).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// pendingRaise tracks one in-flight raise between first send and verdict.
type pendingRaise struct {
	token      uint64
	frame      []byte // encoded once; retries resend the same bytes
	attempt    int
	epoch      int // connection generation the last attempt was sent on
	deadlineAt vtime.Time
	binding    Binding
	args       []any
	done       func(Status, error)
}

// Peer is the sending endpoint for one remote machine.
type Peer struct {
	cfg     PeerConfig
	breaker *Breaker
	rng     uint64

	conn    *netstack.TCPConn
	epoch   int      // increments per dial; stale-conn detection for retries
	txq     [][]byte // frames queued while the handshake is in flight
	pending map[uint64]*pendingRaise
	token   uint64

	hbToken       uint64
	hbOutstanding bool
	hbMisses      int
	partitioned   bool
	stopped       bool

	stats PeerStats
	// ledger mirrors the admission-queue accounting contract so shed
	// remote raises are visible the same way shed local submissions are.
	ledger admit.QueueStats
}

// NewPeer builds the sending endpoint. Heartbeats (when configured) start
// on the first Raise.
func NewPeer(cfg PeerConfig) *Peer {
	if cfg.Deadline <= 0 {
		cfg.Deadline = vtime.Duration(20 * 1000 * 1000) // 20ms
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.HeartbeatMisses <= 0 {
		cfg.HeartbeatMisses = 3
	}
	p := &Peer{cfg: cfg, rng: cfg.Seed, pending: make(map[uint64]*pendingRaise)}
	p.breaker = NewBreaker(cfg.Breaker, cfg.Clock)
	p.breaker.OnTransition = p.onBreaker
	return p
}

// Stats snapshots the peer's outcome counters.
func (p *Peer) Stats() PeerStats { return p.stats }

// Ledger snapshots the peer's admission-style accounting: Submitted =
// Completed + Shed + Depth once traffic drains, exactly the queue
// contract, so operator tooling reads remote shedding the way it reads
// local overload.
func (p *Peer) Ledger() admit.QueueStats {
	l := p.ledger
	l.Depth = len(p.pending)
	return l
}

// Breaker exposes the circuit for tests and the drill report.
func (p *Peer) Breaker() *Breaker { return p.breaker }

// Close stops heartbeats and aborts the connection. Pending raises still
// run out their deadlines.
func (p *Peer) Close() {
	p.stopped = true
	if p.conn != nil {
		p.conn.Abort()
		p.conn = nil
	}
}

// Raise sends event across the wire with no binding semantics: breaker
// rejection is an immediate ErrPeerOpen.
func (p *Peer) Raise(event string, args ...any) error {
	return p.RaiseBound(Binding{Event: event}, args...)
}

// RaiseBound sends a bound raise. The verdict is asynchronous (the wire
// is); the returned error covers only immediate local rejections —
// breaker-open or degradation-shed with no fallback — and fallback
// dispatch errors.
func (p *Peer) RaiseBound(b Binding, args ...any) error {
	return p.raise(b, nil, args)
}

// RaiseCall is RaiseBound with a verdict callback: done runs exactly once
// with the terminal status (StatusApplied, StatusDup, ... or 0 with an
// error for local rejection and timeout).
func (p *Peer) RaiseCall(b Binding, done func(Status, error), args ...any) error {
	return p.raise(b, done, args)
}

func (p *Peer) raise(b Binding, done func(Status, error), args []any) error {
	p.ledger.Submitted++
	if p.stopped {
		return p.rejectLocal(b, done, args, ErrPeerOpen)
	}
	// Degradation first: a disabled priority class never reaches the
	// breaker (essential classes — priority 0 — always do).
	if d := p.cfg.Degrader; d != nil && b.Priority > 0 {
		if min := d.MinPriority(); min > 0 && b.Priority >= min {
			return p.rejectLocal(b, done, args, ErrDegraded)
		}
	}
	if !p.breaker.Allow() {
		return p.rejectLocal(b, done, args, ErrPeerOpen)
	}
	p.startHeartbeats()

	p.token++
	pr := &pendingRaise{
		token:      p.token,
		attempt:    1,
		deadlineAt: p.cfg.Clock.Now().Add(p.cfg.Deadline),
		binding:    b,
		args:       args,
		done:       done,
	}
	frame, err := AppendMessage(nil, &Message{
		Kind:       MsgRaise,
		Sender:     p.cfg.Self,
		Token:      pr.token,
		Event:      b.Event,
		DeadlineNS: int64(p.cfg.Deadline),
		Args:       args,
	})
	if err != nil {
		p.ledger.Shed++
		return err // unencodable args never leave the machine
	}
	pr.frame = frame
	p.pending[pr.token] = pr
	p.sendAttempt(pr)
	return nil
}

// rejectLocal settles a raise without touching the wire: fallback if
// bound, shed otherwise.
func (p *Peer) rejectLocal(b Binding, done func(Status, error), args []any, cause error) error {
	p.ledger.Shed++
	if b.Fallback != nil {
		p.stats.Rerouted++
		_, err := b.Fallback.Raise(args...)
		if done != nil {
			done(0, cause)
		}
		return err
	}
	p.stats.Shed++
	if done != nil {
		done(0, cause)
	}
	return cause
}

// sendAttempt transmits (or queues) one attempt and arms its ack timer.
func (p *Peer) sendAttempt(pr *pendingRaise) {
	p.send(pr.frame)
	pr.epoch = p.epoch
	attempt := pr.attempt
	timeout := vtime.Duration(p.cfg.Retry.Backoff(attempt, splitmix64(&p.rng)).Nanoseconds())
	_ = p.cfg.Sched.After(timeout, func() { p.onTimeout(pr, attempt) })
}

// onTimeout fires when an attempt's ack window closes. A stale timer (the
// raise settled, or a newer attempt superseded this one) is a no-op.
func (p *Peer) onTimeout(pr *pendingRaise, attempt int) {
	if p.pending[pr.token] != pr || pr.attempt != attempt {
		return
	}
	if pr.attempt >= p.cfg.MaxAttempts || p.cfg.Clock.Now() >= pr.deadlineAt ||
		p.stopped || !p.breaker.Allow() {
		// Terminal: out of budget, or the breaker no longer admits
		// retries for this raise. One raise charges one breaker failure
		// regardless of how many attempts it burned, so the trip budget
		// reads in raises, not transmissions.
		delete(p.pending, pr.token)
		p.breaker.Failure()
		p.stats.TimedOut++
		p.ledger.Shed++
		if pr.binding.Fallback != nil {
			p.stats.Rerouted++
			_, _ = pr.binding.Fallback.Raise(pr.args...)
		}
		if pr.done != nil {
			pr.done(0, fmt.Errorf("remote: raise %d to %s timed out after %d attempts",
				pr.token, p.cfg.Name, pr.attempt))
		}
		return
	}
	// The simulated TCP neither retransmits nor resequences: one lost
	// segment in either direction wedges that stream forever (later
	// segments arrive out of order and are dropped). An unacked attempt is
	// therefore evidence the connection is unusable, not just slow — abort
	// it so the retry rides a fresh stream. The epoch guard keeps a slow
	// timer from killing a connection dialed after its attempt went out.
	if p.conn != nil && pr.epoch == p.epoch {
		p.conn.Abort()
		p.conn = nil
	}
	pr.attempt++
	p.ledger.Retried++
	p.sendAttempt(pr)
}

// handleAck settles the pending raise an ack names.
func (p *Peer) handleAck(m *Message) {
	pr := p.pending[m.Token]
	if pr == nil {
		return // duplicate ack, or the raise already timed out
	}
	delete(p.pending, m.Token)
	p.ledger.Completed++
	p.breaker.Success()
	switch m.Status {
	case StatusDup:
		p.stats.Deduped++
	case StatusRejected, StatusUnknown:
		p.stats.RejectedRemote++
	default:
		p.stats.Delivered++
	}
	if pr.done != nil {
		pr.done(m.Status, nil)
	}
}

// send transmits a frame on the peer connection, dialing if necessary;
// frames sent mid-handshake queue and flush on establishment.
func (p *Peer) send(frame []byte) {
	p.ensureConn()
	c := p.conn
	if c == nil {
		return // undialable now; the attempt timer retries
	}
	if !c.Established() {
		p.txq = append(p.txq, frame)
		return
	}
	_ = c.Send(frame)
}

// ensureConn dials the peer if there is no live connection.
func (p *Peer) ensureConn() {
	if p.conn != nil && !p.conn.Closed() {
		return
	}
	p.conn = nil
	p.txq = p.txq[:0]
	c, err := p.cfg.Stack.DialTCP(p.cfg.Addr, p.cfg.Port)
	if err != nil {
		return
	}
	p.stats.Redials++
	p.epoch++
	p.conn = c
	p.spawnConnStrand(c)
}

// spawnConnStrand runs one connection's lifecycle: wait for the
// handshake, flush queued frames, then read acks until teardown. The
// netstack reaps aborted/reset/timed-out connections and wakes this
// strand, so a dead peer retires it instead of leaking it.
func (p *Peer) spawnConnStrand(c *netstack.TCPConn) {
	var buf []byte
	p.cfg.Sched.Spawn("remote-peer-"+p.cfg.Name, 1, func(st *sched.Strand) sched.Status {
		if !c.Established() && !c.Closed() {
			c.AwaitEstablished(st)
			return sched.Block
		}
		if c.Established() && p.conn == c && len(p.txq) > 0 {
			for _, f := range p.txq {
				_ = c.Send(f)
			}
			p.txq = p.txq[:0]
		}
		for {
			d, ok := c.Recv()
			if !ok {
				break
			}
			buf = append(buf, d...)
		}
		for len(buf) > 0 {
			m, n, err := DecodeMessage(buf)
			if errors.Is(err, ErrTruncated) {
				break
			}
			if err != nil {
				c.Abort() // CRC damage: redial on the next attempt
				if p.conn == c {
					p.conn = nil
				}
				return sched.Done
			}
			buf = buf[n:]
			switch m.Kind {
			case MsgAck:
				p.handleAck(&m)
			case MsgHeartbeatAck:
				p.handleHeartbeatAck(&m)
			}
		}
		if c.Closed() || c.EOF() {
			if p.conn == c {
				p.conn = nil
			}
			return sched.Done
		}
		c.AwaitData(st)
		return sched.Block
	})
}

// startHeartbeats arms the periodic health probe once.
func (p *Peer) startHeartbeats() {
	if p.cfg.HeartbeatEvery <= 0 || p.hbToken > 0 || p.stopped {
		return
	}
	p.hbToken = 1
	_ = p.cfg.Sched.After(p.cfg.HeartbeatEvery, p.heartbeatTick)
}

// heartbeatTick sends one probe, charges a miss if the previous one went
// unanswered, and declares a partition when the miss budget exhausts.
func (p *Peer) heartbeatTick() {
	if p.stopped {
		return
	}
	if p.hbOutstanding {
		p.hbMisses++
		p.stats.HeartbeatMisses++
		// A missed probe means the stream (or the peer) is gone; abort so
		// the next probe redials instead of riding a wedged connection.
		if p.conn != nil {
			p.conn.Abort()
			p.conn = nil
		}
		if p.hbMisses >= p.cfg.HeartbeatMisses && !p.partitioned {
			p.partitioned = true
			p.breaker.ForceOpen()
		}
	} else {
		p.hbMisses = 0
	}
	p.hbToken++
	frame, _ := AppendMessage(nil, &Message{Kind: MsgHeartbeat, Sender: p.cfg.Self, Token: p.hbToken})
	p.hbOutstanding = true
	p.stats.HeartbeatsSent++
	p.send(frame)
	_ = p.cfg.Sched.After(p.cfg.HeartbeatEvery, p.heartbeatTick)
}

// handleHeartbeatAck clears the outstanding probe; an answered probe
// while half-open is the heal signal that closes the breaker.
func (p *Peer) handleHeartbeatAck(m *Message) {
	if m.Token != p.hbToken {
		return // an old probe racing in; only the newest clears the miss run
	}
	p.hbOutstanding = false
	p.hbMisses = 0
	if p.partitioned {
		p.partitioned = false
	}
	if p.breaker.State() == BreakerHalfOpen {
		p.breaker.Success()
	}
}

// onBreaker is the transition hook: trace span, fault-ledger charge, and
// degradation-level force.
func (p *Peer) onBreaker(from, to BreakerState) {
	if t := p.cfg.Tracer; t != nil {
		t.Breaker(p.cfg.Name, int(from), int(to))
	}
	switch to {
	case BreakerOpen:
		level := LevelTripped
		reason := "trip"
		if p.partitioned {
			level = LevelPartitioned
			reason = "partition"
		}
		if l := p.cfg.Faults; l != nil {
			l.Note(fault.Record{
				Kind:    fault.KindRemote,
				Origin:  fault.OriginHandler,
				Event:   reason,
				Handler: p.cfg.Name,
				Module:  "remote",
			})
		}
		p.forceLevel(level)
	case BreakerClosed:
		p.forceLevel(LevelNormal)
	}
}

func (p *Peer) forceLevel(level int) {
	d := p.cfg.Degrader
	if d == nil {
		return
	}
	from, to, changed := d.Force(level)
	if changed && p.cfg.Tracer != nil {
		p.cfg.Tracer.Degrade(from, to, "remote:"+p.cfg.Name)
	}
}
