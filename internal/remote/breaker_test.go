package remote

import (
	"testing"

	"spin/internal/vtime"
)

func newBreaker(cfg BreakerConfig) (*Breaker, *vtime.Clock) {
	clock := &vtime.Clock{}
	return NewBreaker(cfg, clock), clock
}

func TestBreakerTripsAtBudget(t *testing.T) {
	b, _ := newBreaker(BreakerConfig{TripBudget: 3})
	var transitions [][2]BreakerState
	b.OnTransition = func(from, to BreakerState) {
		transitions = append(transitions, [2]BreakerState{from, to})
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("tripped below budget")
	}
	b.Failure() // third consecutive: trip
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("did not trip at budget")
	}
	if b.Trips != 1 {
		t.Fatalf("trips = %d", b.Trips)
	}
	if len(transitions) != 1 || transitions[0] != [2]BreakerState{BreakerClosed, BreakerOpen} {
		t.Fatalf("transitions = %v", transitions)
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b, _ := newBreaker(BreakerConfig{TripBudget: 3})
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("failure run survived an intervening success")
	}
}

func TestBreakerHalfOpensAfterCooldownAndClosesOnProbeSuccess(t *testing.T) {
	b, clock := newBreaker(BreakerConfig{TripBudget: 1, Cooldown: 100})
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("not open")
	}
	clock.Advance(99)
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("half-opened early")
	}
	clock.Advance(1)
	if b.State() != BreakerHalfOpen {
		t.Fatal("did not half-open at cooldown")
	}
	// One probe admitted, further traffic rejected while it is in flight.
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	if b.Allow() {
		t.Fatal("second probe admitted with HalfOpenProbes=1")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("probe success did not close")
	}
}

func TestBreakerReopensOnProbeFailure(t *testing.T) {
	b, clock := newBreaker(BreakerConfig{TripBudget: 1, Cooldown: 100})
	b.Failure()
	clock.Advance(100)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("probe failure did not re-open")
	}
	if b.Trips != 2 {
		t.Fatalf("trips = %d", b.Trips)
	}
	// The cooldown restarts from the re-trip.
	clock.Advance(99)
	if b.State() != BreakerOpen {
		t.Fatal("cooldown did not restart")
	}
	clock.Advance(1)
	if b.State() != BreakerHalfOpen {
		t.Fatal("no second half-open")
	}
}

func TestBreakerForceOpen(t *testing.T) {
	b, _ := newBreaker(BreakerConfig{})
	b.ForceOpen()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("ForceOpen did not trip")
	}
	b.ForceOpen() // idempotent while open
	if b.Trips != 1 {
		t.Fatalf("trips = %d", b.Trips)
	}
}
