package remote

import "testing"

func TestDedupFreshThenDuplicate(t *testing.T) {
	w := NewWindow(16)
	if v := w.Admit(1); v != Fresh {
		t.Fatalf("first sighting = %v", v)
	}
	if v := w.Admit(1); v != Duplicate {
		t.Fatalf("second sighting = %v", v)
	}
	if w.Admitted != 1 || w.Duplicates != 1 {
		t.Fatalf("counters: %+v", *w)
	}
}

func TestDedupOutOfOrderWithinWindow(t *testing.T) {
	w := NewWindow(16)
	// Tokens land out of order (retries racing originals): each must be
	// admitted exactly once regardless of arrival order.
	order := []uint64{3, 1, 2, 5, 4, 3, 1, 5}
	want := []Verdict{Fresh, Fresh, Fresh, Fresh, Fresh, Duplicate, Duplicate, Duplicate}
	for i, tok := range order {
		if v := w.Admit(tok); v != want[i] {
			t.Fatalf("Admit(%d) [#%d] = %v, want %v", tok, i, v, want[i])
		}
	}
}

func TestDedupBelowFloorIsStale(t *testing.T) {
	w := NewWindow(8)
	if v := w.Admit(100); v != Fresh {
		t.Fatalf("high water = %v", v)
	}
	// Window floor is high-size: tokens at or below 92 are unjudgeable.
	if v := w.Admit(92); v != Stale {
		t.Fatalf("floor token = %v", v)
	}
	if v := w.Admit(1); v != Stale {
		t.Fatalf("ancient token = %v", v)
	}
	// Just above the floor is still judgeable — and fresh, since the slide
	// cleared its slot.
	if v := w.Admit(93); v != Fresh {
		t.Fatalf("in-window token = %v", v)
	}
	if w.Stales != 2 {
		t.Fatalf("stales = %d", w.Stales)
	}
}

func TestDedupSlideClearsSkippedSlots(t *testing.T) {
	// The bitmap is a ring: without clearing on slide, token t would
	// alias token t-size and report Duplicate for a never-seen token.
	size := 8
	w := NewWindow(size)
	if w.Admit(2) != Fresh {
		t.Fatal("seed")
	}
	// Slide far enough that 2's slot is reused by 2+8=10.
	if w.Admit(9) != Fresh {
		t.Fatal("advance")
	}
	if v := w.Admit(10); v != Fresh {
		t.Fatalf("aliased slot reported %v for a never-seen token", v)
	}
}

func TestDedupLargeJumpZeroesWindow(t *testing.T) {
	w := NewWindow(8)
	for tok := uint64(1); tok <= 8; tok++ {
		if w.Admit(tok) != Fresh {
			t.Fatalf("seed %d", tok)
		}
	}
	// Jump past a full window width: every old slot must clear.
	if w.Admit(1000) != Fresh {
		t.Fatal("jump")
	}
	for tok := uint64(993); tok < 1000; tok++ {
		if v := w.Admit(tok); v != Fresh {
			t.Fatalf("Admit(%d) after jump = %v", tok, v)
		}
	}
}

func TestDedupTokenZeroReserved(t *testing.T) {
	w := NewWindow(8)
	if v := w.Admit(0); v != Stale {
		t.Fatalf("token 0 = %v", v)
	}
}

func TestDedupDefaultSize(t *testing.T) {
	w := NewWindow(0)
	if w.size != DefaultWindowSize {
		t.Fatalf("size = %d", w.size)
	}
	if w.Admit(5) != Fresh || w.Admit(5) != Duplicate {
		t.Fatal("default-size window broken")
	}
}
