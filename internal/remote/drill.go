package remote

import (
	"fmt"
	"sync/atomic"

	"spin/internal/admit"
	"spin/internal/dispatch"
	"spin/internal/fault"
	"spin/internal/kernel"
	"spin/internal/netstack"
	"spin/internal/netwire"
	"spin/internal/rtti"
	"spin/internal/trace"
	"spin/internal/vtime"
)

// The two-machine partition drill: one deterministic scenario exercising
// the full failure-domain story — clean-wire latency (remote vs local
// crossover), a lossy phase proving idempotent retry + dedup, and a
// partition phase walking the breaker through trip, heartbeat-declared
// partition, degradation, heal, half-open, and close. cmd/spinremote
// formats the report; spinbench -table remote prints the same figures as
// a table. Everything runs in virtual time, so every number is
// reproducible byte-for-byte from the seed.

// DrillReport is the measured outcome of one RunDrill.
type DrillReport struct {
	// Clean phase: virtual-time latency.
	CleanRaises  int
	CleanRTTUs   float64 // mean remote raise→ack round trip, µs
	LocalRaiseUs float64 // mean local metered raise, µs
	CrossoverX   float64 // CleanRTTUs / LocalRaiseUs
	// Lossy phase: delivery accounting under seeded drop.
	LossyRaises    int
	LossyDropRate  float64
	LossyDelivered int64
	LossyDeduped   int64
	LossyRetried   int64
	LossyTimedOut  int64
	LossyShed      int64
	WireDrops      int64 // frames the fault plan actually dropped
	// Exactly-once proof: handler firings on B during the lossy phase
	// must equal accepted raises.
	LossyApplied int64
	LossyFired   int64
	// Partition phase: breaker + degradation accounting.
	PartitionShed     int64
	PartitionRerouted int64
	HeartbeatMisses   int64
	BreakerTrips      int64
	Transitions       []string // breaker transitions in order, "closed->open" style
	HealedDelivered   int64    // raises delivered after the heal
}

// drillRig is the two-machine bench: A raises across the wire into B.
type drillRig struct {
	a, b   *kernel.Machine
	sa, sb *netstack.Stack
	link   *netwire.Link
	recv   *Receiver
	hits   atomic.Int64
}

const drillPort = 9000

func newDrillRig() (*drillRig, error) {
	a, err := kernel.Boot(kernel.Config{Name: "a", Metered: true})
	if err != nil {
		return nil, err
	}
	b, err := kernel.Boot(kernel.Config{Name: "b", ShareWith: a})
	if err != nil {
		return nil, err
	}
	link := netwire.NewLink(a.Sim, 0, 0)
	nicA, err := link.Attach("mac-a")
	if err != nil {
		return nil, err
	}
	nicB, err := link.Attach("mac-b")
	if err != nil {
		return nil, err
	}
	arp := map[string]string{"10.0.0.1": "mac-a", "10.0.0.2": "mac-b"}
	sa, err := netstack.New(netstack.Config{Dispatcher: a.Dispatcher, CPU: a.CPU,
		Sched: a.Sched, NIC: nicA, IP: "10.0.0.1", ARP: arp})
	if err != nil {
		return nil, err
	}
	sb, err := netstack.New(netstack.Config{Dispatcher: b.Dispatcher, CPU: b.CPU,
		Sched: b.Sched, NIC: nicB, IP: "10.0.0.2", ARP: arp, Prefix: "B:"})
	if err != nil {
		return nil, err
	}
	r := &drillRig{a: a, b: b, sa: sa, sb: sb, link: link}
	sig := rtti.Signature{Args: []rtti.Type{rtti.Word}}
	_, err = b.Dispatcher.DefineEvent("B:Remote.Ping", sig,
		dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Remote.Ping", Sig: sig},
			Fn:   func(clo any, args []any) any { r.hits.Add(1); return nil },
		}))
	if err != nil {
		return nil, err
	}
	r.recv, err = Serve(ReceiverConfig{Stack: sb, Sched: b.Sched,
		Dispatcher: b.Dispatcher, Port: drillPort, EventPrefix: "B:"})
	if err != nil {
		return nil, err
	}
	return r, nil
}

func (r *drillRig) runFor(d vtime.Duration) {
	r.a.Sim.RunUntil(r.a.Clock.Now().Add(d))
}

func drillMs(n int) vtime.Duration { return vtime.Duration(n) * 1000 * 1000 }

// RunDrill executes the three-phase drill with the given fault seed and
// returns the report. Deterministic: same seed, same report.
func RunDrill(seed uint64) (*DrillReport, error) {
	rig, err := newDrillRig()
	if err != nil {
		return nil, err
	}
	rep := &DrillReport{}

	// ---- Phase 1: clean wire. Remote RTT vs local raise cost. ----
	p := NewPeer(PeerConfig{
		Name: "b", Self: "machine-a", Addr: "10.0.0.2", Port: drillPort,
		Stack: rig.sa, Sched: rig.a.Sched, Clock: rig.a.Clock,
	})
	const cleanN = 32
	rep.CleanRaises = cleanN
	var rttTotal vtime.Duration
	for i := 0; i < cleanN; i++ {
		start := rig.a.Clock.Now()
		acked := false
		err := p.RaiseCall(Binding{Event: "Remote.Ping"}, func(s Status, err error) {
			rttTotal += rig.a.Clock.Now().Sub(start)
			acked = true
		}, uint64(i))
		if err != nil {
			return nil, fmt.Errorf("clean raise %d: %w", i, err)
		}
		rig.runFor(drillMs(30))
		if !acked {
			return nil, fmt.Errorf("clean raise %d: no ack within 30ms", i)
		}
	}
	rep.CleanRTTUs = float64(rttTotal) / float64(cleanN) / 1e3

	// The local comparator: the same event shape dispatched on A without
	// the wire.
	sig := rtti.Signature{Args: []rtti.Type{rtti.Word}}
	local, err := rig.a.Dispatcher.DefineEvent("Local.Ping", sig,
		dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Local.Ping", Sig: sig},
			Fn:   func(clo any, args []any) any { return nil },
		}))
	if err != nil {
		return nil, err
	}
	const localN = 1000
	lstart := rig.a.Clock.Now()
	for i := 0; i < localN; i++ {
		if _, err := local.Raise1(uint64(i)); err != nil {
			return nil, err
		}
	}
	rep.LocalRaiseUs = float64(rig.a.Clock.Now().Sub(lstart)) / float64(localN) / 1e3
	if rep.LocalRaiseUs > 0 {
		rep.CrossoverX = rep.CleanRTTUs / rep.LocalRaiseUs
	}

	// ---- Phase 2: lossy wire. Retry + dedup deliver exactly once. ----
	rig.link.InjectFaults(netwire.FaultPlan{Seed: seed, Drop: 0.10})
	appliedBefore := rig.recv.Stats().Applied
	firedBefore := rig.recv.Stats().Fired
	statsBefore := p.Stats()
	ledgerBefore := p.Ledger()
	const lossyN = 64
	rep.LossyRaises = lossyN
	rep.LossyDropRate = 0.10
	for i := 0; i < lossyN; i++ {
		_ = p.Raise("Remote.Ping", uint64(i))
		rig.runFor(drillMs(10))
	}
	rig.runFor(drillMs(600)) // drain retries through their deadlines
	st := p.Stats()
	rep.LossyDelivered = st.Delivered - statsBefore.Delivered
	rep.LossyDeduped = st.Deduped - statsBefore.Deduped
	rep.LossyTimedOut = st.TimedOut - statsBefore.TimedOut
	rep.LossyShed = st.Shed - statsBefore.Shed
	rep.LossyRetried = p.Ledger().Retried - ledgerBefore.Retried
	rep.LossyApplied = rig.recv.Stats().Applied - appliedBefore
	rep.LossyFired = rig.recv.Stats().Fired - firedBefore
	rep.WireDrops = rig.link.FaultStats().Drops
	rig.link.ClearFaults()
	p.Close()
	rig.runFor(drillMs(100))

	// ---- Phase 3: partition. Heartbeats declare it, the breaker opens,
	// bound raises degrade to fallbacks, the heal half-opens then closes. ----
	deg := admit.NewDegrader([]admit.Level{
		{Name: "tripped", MinPriority: 3},
		{Name: "partitioned", MinPriority: 1},
	}, 1)
	tracer := trace.New(trace.Config{Capacity: 128})
	faults := fault.NewLedger(fault.Policy{})
	p2 := NewPeer(PeerConfig{
		Name: "b", Self: "machine-a2", Addr: "10.0.0.2", Port: drillPort,
		Stack: rig.sa, Sched: rig.a.Sched, Clock: rig.a.Clock,
		Deadline: drillMs(30), MaxAttempts: 2,
		HeartbeatEvery: drillMs(10), HeartbeatMisses: 2,
		Breaker:  BreakerConfig{TripBudget: 100, Cooldown: drillMs(50)},
		Degrader: deg, Tracer: tracer, Faults: faults,
	})
	var localHits atomic.Int64
	fb, err := rig.a.Dispatcher.DefineEvent("Local.PingFallback", sig,
		dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Local.PingFallback", Sig: sig},
			Fn:   func(clo any, args []any) any { localHits.Add(1); return nil },
		}))
	if err != nil {
		return nil, err
	}
	if err := p2.Raise("Remote.Ping", uint64(0)); err != nil { // warm the route
		return nil, err
	}
	rig.runFor(drillMs(25))
	rig.link.Partition("mac-a", "mac-b")
	rig.runFor(drillMs(60)) // two missed probes declare the partition
	// Optional traffic during the partition: bound raises re-route, the
	// unbound ones shed — all visible in the admission ledger.
	for i := 0; i < 4; i++ {
		_ = p2.RaiseBound(Binding{Event: "Remote.Ping", Priority: 2, Fallback: fb}, uint64(i))
		_ = p2.RaiseBound(Binding{Event: "Remote.Ping", Priority: 2}, uint64(i))
	}
	rig.link.Heal("mac-a", "mac-b")
	rig.runFor(drillMs(200)) // probes heal the breaker through half-open
	healedBefore := p2.Stats().Delivered
	_ = p2.Raise("Remote.Ping", uint64(9))
	rig.runFor(drillMs(50))

	st2 := p2.Stats()
	rep.PartitionShed = st2.Shed
	rep.PartitionRerouted = st2.Rerouted
	rep.HeartbeatMisses = st2.HeartbeatMisses
	rep.BreakerTrips = p2.Breaker().Trips
	rep.HealedDelivered = st2.Delivered - healedBefore
	for _, sp := range tracer.Snapshot() {
		if sp.Kind != trace.KindBreaker {
			continue
		}
		from := BreakerState(sp.Detail >> 8 & 0xFF)
		to := BreakerState(sp.Detail & 0xFF)
		rep.Transitions = append(rep.Transitions, from.String()+"->"+to.String())
	}
	p2.Close()
	rig.runFor(drillMs(100))
	return rep, nil
}

// BenchRig is the benchsmoke harness: the drill rig with the remote
// subsystem resident and warmed by real wire traffic, exposing machine
// A's dispatcher so a purely local event can be measured alongside it.
type BenchRig struct {
	// Local is machine A's dispatcher — the one sharing a machine with
	// the peer and the served wire.
	Local *dispatch.Dispatcher
	rig   *drillRig
	peer  *Peer
}

// NewBenchRig boots the two-machine rig, serves a receiver on B, raises a
// few events across the wire from A, and returns with everything still
// resident.
func NewBenchRig() (*BenchRig, error) {
	rig, err := newDrillRig()
	if err != nil {
		return nil, err
	}
	p := NewPeer(PeerConfig{
		Name: "b", Self: "bench-a", Addr: "10.0.0.2", Port: drillPort,
		Stack: rig.sa, Sched: rig.a.Sched, Clock: rig.a.Clock,
	})
	for i := 0; i < 8; i++ {
		if err := p.Raise("Remote.Ping", uint64(i)); err != nil {
			return nil, err
		}
		rig.runFor(drillMs(10))
	}
	if p.Stats().Delivered != 8 {
		return nil, fmt.Errorf("bench rig warmup: delivered %d of 8", p.Stats().Delivered)
	}
	return &BenchRig{Local: rig.a.Dispatcher, rig: rig, peer: p}, nil
}

// Peer returns the warmed peer carrying raises from A to B; the shard
// router's RemoteShard adapter routes a remote shard's raises through it.
func (r *BenchRig) Peer() *Peer { return r.peer }

// RemoteDispatcher returns machine B's dispatcher — the control plane of a
// shard placed behind the wire. Defines and installs go here directly (the
// simulation's stand-in for the linker loading extensions on B), raises go
// through the peer.
func (r *BenchRig) RemoteDispatcher() *dispatch.Dispatcher { return r.rig.b.Dispatcher }

// RemotePrefix returns the receiver's event-name prefix: wire raises carry
// bare names, machine B namespaces the corresponding events with it.
func (r *BenchRig) RemotePrefix() string { return "B:" }

// RunFor advances the shared simulation by d, draining in-flight wire
// traffic.
func (r *BenchRig) RunFor(d vtime.Duration) { r.rig.runFor(d) }

// Hits reports firings of the drill's B:Remote.Ping intrinsic handler.
func (r *BenchRig) Hits() int64 { return r.rig.hits.Load() }
