package remote

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func fullRaise() Message {
	return Message{
		Kind:       MsgRaise,
		Sender:     "machine-a",
		Token:      0xDEADBEEFCAFE,
		Event:      "Svc.Work",
		DeadlineNS: 5_000_000,
		Args: []any{
			uint64(42), int64(-7), 3, "payload", []byte{1, 2, 3},
			true, false, nil,
		},
	}
}

func TestWireRoundTrip(t *testing.T) {
	cases := []Message{
		fullRaise(),
		{Kind: MsgAck, Token: 9, Status: StatusApplied, Fired: 3},
		{Kind: MsgAck, Token: 10, Status: StatusDup},
		{Kind: MsgHeartbeat, Token: 77},
		{Kind: MsgHeartbeatAck, Token: 77},
		{Kind: MsgRaise, Event: "E.Zero"}, // near-empty payload
	}
	for _, want := range cases {
		frame, err := AppendMessage(nil, &want)
		if err != nil {
			t.Fatalf("AppendMessage(%s): %v", want.Kind, err)
		}
		got, n, err := DecodeMessage(frame)
		if err != nil {
			t.Fatalf("DecodeMessage(%s): %v", want.Kind, err)
		}
		if n != len(frame) {
			t.Fatalf("consumed %d of %d bytes", n, len(frame))
		}
		if got.Kind != want.Kind || got.Sender != want.Sender ||
			got.Token != want.Token || got.Event != want.Event ||
			got.DeadlineNS != want.DeadlineNS || got.Status != want.Status ||
			got.Fired != want.Fired {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
		// The arg train must survive with types intact; int normalizes to
		// int64 (the wire has one signed integer width).
		wantArgs := want.Args
		if wantArgs != nil {
			norm := make([]any, len(wantArgs))
			for i, a := range wantArgs {
				if v, ok := a.(int); ok {
					norm[i] = int64(v)
				} else {
					norm[i] = a
				}
			}
			wantArgs = norm
		}
		if !reflect.DeepEqual(got.Args, wantArgs) {
			t.Fatalf("args mismatch:\n got %#v\nwant %#v", got.Args, wantArgs)
		}
	}
}

func TestWireArgsByteSliceIsCopied(t *testing.T) {
	src := []byte{1, 2, 3}
	m := Message{Kind: MsgRaise, Event: "E", Args: []any{src}}
	frame, _ := AppendMessage(nil, &m)
	got, _, err := DecodeMessage(frame)
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-6] ^= 0xFF // scribble on the frame buffer
	if !bytes.Equal(got.Args[0].([]byte), src) {
		t.Fatal("decoded []byte aliases the frame buffer")
	}
}

func TestWireRejectsUnencodableArg(t *testing.T) {
	m := Message{Kind: MsgRaise, Event: "E", Args: []any{struct{}{}}}
	if _, err := AppendMessage(nil, &m); !errors.Is(err, ErrBadArg) {
		t.Fatalf("err = %v", err)
	}
}

func TestWireStreamDecodesBackToBackFrames(t *testing.T) {
	// The TCP reader sees a byte stream: frames must decode one after
	// another from a single buffer, and a trailing partial frame must
	// report ErrTruncated (wait for more), not corruption.
	var buf []byte
	msgs := []Message{fullRaise(), {Kind: MsgAck, Token: 1, Status: StatusApplied, Fired: 1}, {Kind: MsgHeartbeat, Token: 2}}
	for i := range msgs {
		var err error
		buf, err = AppendMessage(buf, &msgs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	whole := len(buf)
	buf = append(buf, 0x01, 0x7F) // start of a fourth frame, cut off
	for i := range msgs {
		got, n, err := DecodeMessage(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Kind != msgs[i].Kind || got.Token != msgs[i].Token {
			t.Fatalf("frame %d decoded as %+v", i, got)
		}
		buf = buf[n:]
	}
	if _, _, err := DecodeMessage(buf); !errors.Is(err, ErrTruncated) {
		t.Fatalf("partial tail: err = %v", err)
	}
	_ = whole
}

// Every single-byte flip anywhere in a frame must be detected — decoded
// never as a clean message. Mirrors make journalcheck's tamper sweep.
func TestWireDetectsEveryByteFlip(t *testing.T) {
	m := fullRaise()
	frame, err := AppendMessage(nil, &m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x5a
		if _, _, err := DecodeMessage(mut); err == nil {
			t.Fatalf("flip at byte %d decoded cleanly", i)
		}
	}
}

// Exhaustive variant: all eight single-bit flips of every byte.
func TestWireDetectsEveryBitFlip(t *testing.T) {
	m := fullRaise()
	frame, err := AppendMessage(nil, &m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 1 << bit
			if _, _, err := DecodeMessage(mut); err == nil {
				t.Fatalf("bit %d of byte %d flipped, decoded cleanly", bit, i)
			}
		}
	}
}

func TestWireTruncationDetected(t *testing.T) {
	m := fullRaise()
	frame, err := AppendMessage(nil, &m)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(frame); n++ {
		if _, _, err := DecodeMessage(frame[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", n, len(frame))
		}
	}
}

func TestWireBadKindRejected(t *testing.T) {
	if _, _, err := DecodeMessage([]byte{0x00, 0x00}); !errors.Is(err, ErrBadKind) {
		t.Fatalf("kind 0: err = %v", err)
	}
	if _, _, err := DecodeMessage([]byte{0x7F, 0x00}); !errors.Is(err, ErrBadKind) {
		t.Fatalf("kind 127: err = %v", err)
	}
}
