package remote

import "spin/internal/vtime"

// Per-peer circuit breaking. The breaker sits between the sender's retry
// loop and the wire: while Closed it passes raises through; TripBudget
// consecutive failures open it, and while Open every raise is rejected
// locally (shed or re-routed to a fallback) without touching the wire.
// After Cooldown of virtual time the breaker half-opens and admits a
// bounded number of probe raises; one success closes it, one failure
// re-opens it for another cooldown. Transitions are reported through
// OnTransition so the peer can charge them to the fault ledger, emit
// trace spans, and move the admission degrader.

// BreakerState enumerates the circuit states.
type BreakerState int

const (
	// BreakerClosed: healthy, traffic flows.
	BreakerClosed BreakerState = iota
	// BreakerOpen: tripped, all traffic rejected until the cooldown ends.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed, probe traffic admitted.
	BreakerHalfOpen
)

//spinvet:pure
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "breaker(?)"
}

// BreakerConfig tunes a Breaker. Zero values select the defaults.
type BreakerConfig struct {
	// TripBudget is the number of consecutive failures that opens the
	// breaker (default 3).
	TripBudget int
	// Cooldown is the virtual-time hold in Open before half-opening
	// (default 50ms — about a hundred calibrated round trips).
	Cooldown vtime.Duration
	// HalfOpenProbes is how many in-flight probes HalfOpen admits before
	// rejecting further traffic until a verdict lands (default 1).
	HalfOpenProbes int
}

// DefaultCooldown is the Open hold before a half-open probe.
const DefaultCooldown = vtime.Duration(50 * 1000 * 1000) // 50ms

// Breaker is one peer's circuit. It is driven entirely by its owner's
// calls (Allow / Success / Failure) plus a virtual clock for the cooldown;
// it owns no timers, so an idle open breaker costs nothing.
type Breaker struct {
	cfg   BreakerConfig
	clock *vtime.Clock
	state BreakerState
	// consecFails counts failures since the last success (Closed).
	consecFails int
	// openedAt stamps the trip, starting the cooldown.
	openedAt vtime.Time
	// probes counts in-flight half-open probes.
	probes int
	// Trips counts Closed/HalfOpen→Open transitions over the breaker's
	// lifetime.
	Trips int64
	// OnTransition, when set, observes every state change.
	OnTransition func(from, to BreakerState)
}

// NewBreaker builds a breaker on the clock.
func NewBreaker(cfg BreakerConfig, clock *vtime.Clock) *Breaker {
	if cfg.TripBudget <= 0 {
		cfg.TripBudget = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 1
	}
	return &Breaker{cfg: cfg, clock: clock}
}

// State reports the current state, promoting Open to HalfOpen if the
// cooldown has elapsed.
func (b *Breaker) State() BreakerState {
	if b.state == BreakerOpen && b.clock.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.transition(BreakerHalfOpen)
		b.probes = 0
	}
	return b.state
}

// Allow reports whether a raise may go to the wire now. In HalfOpen it
// admits up to HalfOpenProbes in-flight probes.
func (b *Breaker) Allow() bool {
	switch b.State() {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return true
		}
		return false
	default:
		return false
	}
}

// Success records a delivered raise (or heartbeat ack): a half-open probe
// success closes the breaker; in Closed it clears the failure run.
func (b *Breaker) Success() {
	switch b.state {
	case BreakerHalfOpen:
		b.transition(BreakerClosed)
	}
	b.consecFails = 0
	b.probes = 0
}

// Failure records a raise that exhausted its deadline or lost its
// connection. TripBudget consecutive failures in Closed — or any failure
// in HalfOpen — opens the breaker.
func (b *Breaker) Failure() {
	switch b.State() {
	case BreakerHalfOpen:
		b.trip()
	case BreakerClosed:
		b.consecFails++
		if b.consecFails >= b.cfg.TripBudget {
			b.trip()
		}
	}
}

// ForceOpen trips the breaker immediately (partition detected via
// heartbeat loss), regardless of the failure run.
func (b *Breaker) ForceOpen() {
	if b.State() != BreakerOpen {
		b.trip()
	}
}

func (b *Breaker) trip() {
	b.openedAt = b.clock.Now()
	b.consecFails = 0
	b.probes = 0
	b.Trips++
	b.transition(BreakerOpen)
}

func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.OnTransition != nil {
		b.OnTransition(from, to)
	}
}
