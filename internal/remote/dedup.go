package remote

// Receiver-side deduplication: the at-most-once half of the exactly-once
// story. Senders stamp every raise with a monotonically increasing
// idempotency token and retry freely; the receiver keeps one Window per
// sender identity (not per connection, so redials cannot reset it) and
// admits each token at most once. The window is a sliding bitmap over the
// last Size tokens below the high-water mark — wide enough to cover the
// deepest plausible reorder (retries × in-flight pipeline; see DESIGN.md
// decision 18 for the sizing argument) — and anything at or below the
// window floor is conservatively refused as Stale: possibly seen, never
// safe to re-apply.

// Verdict classifies a token's admission.
type Verdict int

const (
	// Fresh: first sighting; apply the effects.
	Fresh Verdict = iota
	// Duplicate: already applied; ack success, do NOT re-apply.
	Duplicate
	// Stale: below the window floor; refuse (indistinguishable from a
	// duplicate, and at-most-once forbids guessing).
	Stale
)

//spinvet:pure
func (v Verdict) String() string {
	switch v {
	case Fresh:
		return "fresh"
	case Duplicate:
		return "duplicate"
	case Stale:
		return "stale"
	}
	return "verdict(?)"
}

// DefaultWindowSize covers far more reordering than the transport can
// produce: tokens arrive over one ordered TCP stream per epoch, so only
// cross-redial races and duplicated frames land out of order.
const DefaultWindowSize = 1024

// Window is one sender's dedup state: a high-water token plus a bitmap
// over the Size tokens below it.
type Window struct {
	size uint64
	// high is the largest token admitted so far.
	high uint64
	// bits[i%size] records whether token i was seen, valid for tokens in
	// (high-size, high].
	bits []uint64
	// Admitted, Duplicates, Stales count verdicts for the drill report.
	Admitted   int64
	Duplicates int64
	Stales     int64
}

// NewWindow builds a dedup window over the last size tokens; size 0
// selects DefaultWindowSize. Token 0 is reserved (never admitted) so the
// zero high-water mark means "nothing seen".
func NewWindow(size int) *Window {
	if size <= 0 {
		size = DefaultWindowSize
	}
	return &Window{size: uint64(size), bits: make([]uint64, (size+63)/64)}
}

func (w *Window) get(tok uint64) bool {
	i := tok % w.size
	return w.bits[i/64]&(1<<(i%64)) != 0
}

func (w *Window) set(tok uint64, on bool) {
	i := tok % w.size
	if on {
		w.bits[i/64] |= 1 << (i % 64)
	} else {
		w.bits[i/64] &^= 1 << (i % 64)
	}
}

// Admit judges one token and records it. Only Fresh tokens may have their
// effects applied.
func (w *Window) Admit(tok uint64) Verdict {
	if tok == 0 || tok+w.size <= w.high {
		w.Stales++
		return Stale
	}
	if tok > w.high {
		// Advance the high-water mark, clearing the bitmap slots the
		// window slides past (tokens skipped by loss stay unseen).
		if tok-w.high >= w.size {
			clear(w.bits)
		} else {
			for t := w.high + 1; t < tok; t++ {
				w.set(t, false)
			}
		}
		w.set(tok, true)
		w.high = tok
		w.Admitted++
		return Fresh
	}
	if w.get(tok) {
		w.Duplicates++
		return Duplicate
	}
	w.set(tok, true)
	w.Admitted++
	return Fresh
}
