// Package vm is the virtual memory substrate. It reproduces the paper's
// VM examples: the VM.PageFault event whose boolean results are merged
// with a logical-OR result handler, the trusted default paging service
// installed as the event's default handler (§2.3 "Handling results"), and
// asynchronous page-in requests (§2.6).
//
// Extensions replace or augment paging policy by installing guarded
// handlers on VM.PageFault — the paper's example guards on whether the
// faulting address falls in the extension's data segment, which maps
// directly onto inlinable ArgLt/ArgEq predicates here.
package vm

import (
	"errors"
	"fmt"

	"spin/internal/codegen"
	"spin/internal/dispatch"
	"spin/internal/rtti"
	"spin/internal/vtime"
)

// PageSize is the machine page size (Alpha: 8 KB).
const PageSize = 8192

// Module is the VM module descriptor, authority over the VM events.
var Module = rtti.NewModule("VM", "VM")

// ErrInaccessible reports a fault on a page no handler could supply: "if
// the page is inaccessible, the VM system crashes the application".
var ErrInaccessible = errors.New("vm: page inaccessible")

// VM is the virtual memory service for one machine.
type VM struct {
	cpu *vtime.CPU

	// PageFault is VM.PageFault(space-id, fault-address): BOOLEAN — the
	// result indicates whether the page is now accessible. Multiple
	// pagers' results merge with logical OR.
	PageFault *dispatch.Event
	// PageInRequest is the asynchronous page-in event: raising it
	// returns immediately while a pager maps the page in the background.
	PageInRequest *dispatch.Event

	spaces map[uint64]*AddressSpace
	nextID uint64
	// DefaultPagerFaults counts faults resolved by the trusted default
	// paging service.
	DefaultPagerFaults int64
}

// New defines the VM events on d and installs the default paging service.
func New(d *dispatch.Dispatcher, cpu *vtime.CPU) (*VM, error) {
	v := &VM{cpu: cpu, spaces: make(map[uint64]*AddressSpace)}

	faultSig := rtti.Sig(rtti.Bool, rtti.Word, rtti.Word)
	pf, err := d.DefineEvent("VM.PageFault", faultSig, dispatch.WithOwner(Module))
	if err != nil {
		return nil, err
	}
	v.PageFault = pf

	// The result handler for this event returns the logical-or of all
	// the handler results (§2.3).
	if err := pf.SetResultHandler(func(acc, r any, i int) any {
		a, _ := acc.(bool)
		b, _ := r.(bool)
		return a || b
	}); err != nil {
		return nil, err
	}
	// The default handler relies on a trusted default paging service
	// provided by VM: map a zero page and report the page accessible.
	err = pf.SetDefaultHandler(dispatch.Handler{
		Proc: &rtti.Proc{Name: "VM.DefaultPager", Module: Module, Sig: faultSig},
		Fn: func(closure any, args []any) any {
			space, addr := args[0].(uint64), args[1].(uint64)
			if sp := v.spaces[space]; sp != nil {
				v.cpu.ChargeTo(vtime.AccountKernel, vtime.FSOp)
				sp.mapPage(addr)
				v.DefaultPagerFaults++
				return true
			}
			return false
		},
	})
	if err != nil {
		return nil, err
	}

	inSig := rtti.Sig(nil, rtti.Word, rtti.Word)
	pi, err := d.DefineEvent("VM.PageInRequest", inSig,
		dispatch.AsAsync(),
		dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "VM.PageInRequest", Module: Module, Sig: inSig},
			Fn: func(closure any, args []any) any {
				space, addr := args[0].(uint64), args[1].(uint64)
				if sp := v.spaces[space]; sp != nil {
					cpu.ChargeTo(vtime.AccountKernel, vtime.PageFaultEntry)
					sp.mapPage(addr)
				}
				return nil
			},
		}))
	if err != nil {
		return nil, err
	}
	v.PageInRequest = pi
	return v, nil
}

// SpaceType is the rtti reference type for address spaces.
var SpaceType = rtti.NewRef("VM.AddressSpace", nil)

// AddressSpace is a per-task virtual address space: a sparse page map.
type AddressSpace struct {
	id    uint64
	vm    *VM
	pages map[uint64]bool
	// Faults counts page faults taken by this space.
	Faults int64
}

// RTTIType implements rtti.Described.
func (s *AddressSpace) RTTIType() rtti.Type { return SpaceType }

// NewSpace creates an address space.
func (v *VM) NewSpace() *AddressSpace {
	v.nextID++
	sp := &AddressSpace{id: v.nextID, vm: v, pages: make(map[uint64]bool)}
	v.spaces[sp.id] = sp
	return sp
}

// Space returns an address space by id.
func (v *VM) Space(id uint64) (*AddressSpace, bool) {
	sp, ok := v.spaces[id]
	return sp, ok
}

// ID returns the space identifier (the first VM.PageFault argument).
func (s *AddressSpace) ID() uint64 { return s.id }

// Mapped reports whether the page containing addr is mapped.
func (s *AddressSpace) Mapped(addr uint64) bool { return s.pages[addr/PageSize] }

// MappedPages reports the number of mapped pages.
func (s *AddressSpace) MappedPages() int { return len(s.pages) }

func (s *AddressSpace) mapPage(addr uint64) { s.pages[addr/PageSize] = true }

// Unmap removes the page containing addr.
func (s *AddressSpace) Unmap(addr uint64) { delete(s.pages, addr/PageSize) }

// Touch accesses addr. A fault on an unmapped page raises VM.PageFault; if
// the merged handler result is false the access fails with
// ErrInaccessible.
func (s *AddressSpace) Touch(addr uint64) error {
	if s.Mapped(addr) {
		return nil
	}
	s.Faults++
	s.vm.cpu.Charge(vtime.PageFaultEntry)
	res, err := s.vm.PageFault.Raise(s.id, addr)
	if err != nil {
		return err
	}
	if ok, _ := res.(bool); !ok {
		return fmt.Errorf("%w: space %d addr %#x", ErrInaccessible, s.id, addr)
	}
	if !s.Mapped(addr) {
		// A handler claimed accessibility but did not map the page;
		// treat the claim as authoritative and map it now, as the
		// paper's VM trusts its pagers' results.
		s.mapPage(addr)
	}
	return nil
}

// RequestPageIn asynchronously requests that the page containing addr be
// mapped; the caller does not wait (§2.6: "our virtual memory system uses
// asynchronous events for page-in requests").
func (s *AddressSpace) RequestPageIn(addr uint64) error {
	return s.vm.PageInRequest.RaiseAsync(s.id, addr)
}

// SegmentGuard builds an inlinable guard predicate accepting faults whose
// address lies in [lo, hi) for the given space — the paper's "an extension
// that is interested in handling page fault events for its data segment
// can define a guard that checks whether the faulting address is in that
// segment".
func SegmentGuard(space *AddressSpace, lo, hi uint64) dispatch.Guard {
	return dispatch.Guard{Pred: codegen.And(
		codegen.ArgEq(0, space.id),
		codegen.And(
			codegen.Not(codegen.ArgLt(1, lo)),
			codegen.ArgLt(1, hi),
		),
	)}
}
