package vm

import (
	"errors"
	"testing"

	"spin/internal/dispatch"
	"spin/internal/rtti"
	"spin/internal/vtime"
)

func newRig(t *testing.T) (*dispatch.Dispatcher, *VM, *vtime.Simulator, *vtime.CPU) {
	t.Helper()
	var clock vtime.Clock
	cpu := vtime.NewCPU(&clock, vtime.AlphaModel())
	sim := vtime.NewSimulator(&clock)
	d := dispatch.New(dispatch.WithCPU(cpu), dispatch.WithSimulator(sim))
	v, err := New(d, cpu)
	if err != nil {
		t.Fatal(err)
	}
	return d, v, sim, cpu
}

var pagerModule = rtti.NewModule("MyPager")

func pagerHandler(fn dispatch.HandlerFn) dispatch.Handler {
	return dispatch.Handler{
		Proc: &rtti.Proc{Name: "MyPager.Fault", Module: pagerModule,
			Sig: rtti.Sig(rtti.Bool, rtti.Word, rtti.Word)},
		Fn: fn,
	}
}

func TestDefaultPagerMapsPages(t *testing.T) {
	_, v, _, _ := newRig(t)
	sp := v.NewSpace()
	if sp.Mapped(0x4000) {
		t.Fatal("fresh space has mapped pages")
	}
	if err := sp.Touch(0x4000); err != nil {
		t.Fatal(err)
	}
	if !sp.Mapped(0x4000) || sp.Faults != 1 || v.DefaultPagerFaults != 1 {
		t.Fatalf("mapped=%v faults=%d default=%d", sp.Mapped(0x4000), sp.Faults, v.DefaultPagerFaults)
	}
	// Second touch hits the mapped page: no fault.
	if err := sp.Touch(0x4001); err != nil {
		t.Fatal(err)
	}
	if sp.Faults != 1 {
		t.Fatalf("faults = %d", sp.Faults)
	}
}

func TestPageGranularity(t *testing.T) {
	_, v, _, _ := newRig(t)
	sp := v.NewSpace()
	_ = sp.Touch(0)
	if !sp.Mapped(PageSize - 1) {
		t.Fatal("same page not mapped")
	}
	if sp.Mapped(PageSize) {
		t.Fatal("next page spuriously mapped")
	}
	if sp.MappedPages() != 1 {
		t.Fatalf("pages = %d", sp.MappedPages())
	}
	sp.Unmap(0)
	if sp.Mapped(0) {
		t.Fatal("unmap failed")
	}
}

func TestCustomPagerWithSegmentGuard(t *testing.T) {
	// §2.1: an extension handling page faults for its data segment
	// guards on the faulting address being inside that segment.
	_, v, _, _ := newRig(t)
	sp := v.NewSpace()
	other := v.NewSpace()
	const lo, hi = 0x10000, 0x20000
	custom := 0
	_, err := v.PageFault.Install(pagerHandler(func(clo any, args []any) any {
		custom++
		if s, ok := v.Space(args[0].(uint64)); ok {
			s.mapPage(args[1].(uint64))
		}
		return true
	}), dispatch.WithGuard(SegmentGuard(sp, lo, hi)))
	if err != nil {
		t.Fatal(err)
	}

	// Fault inside the segment: custom pager handles it, default stays
	// idle (it is a default handler, not a regular one).
	if err := sp.Touch(0x10100); err != nil {
		t.Fatal(err)
	}
	if custom != 1 || v.DefaultPagerFaults != 0 {
		t.Fatalf("custom=%d default=%d", custom, v.DefaultPagerFaults)
	}
	// Fault outside the segment: default pager.
	if err := sp.Touch(0x50000); err != nil {
		t.Fatal(err)
	}
	if custom != 1 || v.DefaultPagerFaults != 1 {
		t.Fatalf("custom=%d default=%d", custom, v.DefaultPagerFaults)
	}
	// Fault in the other space, same range: guard rejects, default pager.
	if err := other.Touch(0x10100); err != nil {
		t.Fatal(err)
	}
	if custom != 1 || v.DefaultPagerFaults != 2 {
		t.Fatalf("custom=%d default=%d", custom, v.DefaultPagerFaults)
	}
}

func TestLogicalOrResultHandler(t *testing.T) {
	// Multiple pagers: one says false, another true — OR yields true.
	_, v, _, _ := newRig(t)
	sp := v.NewSpace()
	_, _ = v.PageFault.Install(pagerHandler(func(any, []any) any { return false }))
	_, _ = v.PageFault.Install(pagerHandler(func(clo any, args []any) any { return true }))
	if err := sp.Touch(0x9000); err != nil {
		t.Fatal(err)
	}
	if !sp.Mapped(0x9000) {
		t.Fatal("authoritative true result did not map the page")
	}
}

func TestInaccessiblePageCrashesApplication(t *testing.T) {
	// All pagers reject (and with a regular handler installed, the
	// default does not run): the VM system crashes the application.
	_, v, _, _ := newRig(t)
	sp := v.NewSpace()
	_, _ = v.PageFault.Install(pagerHandler(func(any, []any) any { return false }))
	err := sp.Touch(0xdead0000)
	if !errors.Is(err, ErrInaccessible) {
		t.Fatalf("err = %v", err)
	}
	if sp.Mapped(0xdead0000) {
		t.Fatal("inaccessible page got mapped")
	}
}

func TestAsyncPageIn(t *testing.T) {
	_, v, sim, _ := newRig(t)
	sp := v.NewSpace()
	if err := sp.RequestPageIn(0x8000); err != nil {
		t.Fatal(err)
	}
	// The raiser proceeded; the page maps once the simulator runs the
	// detached thread.
	if sp.Mapped(0x8000) {
		t.Fatal("page-in completed synchronously")
	}
	sim.Run(0)
	if !sp.Mapped(0x8000) {
		t.Fatal("async page-in never completed")
	}
	if sp.Faults != 0 {
		t.Fatal("page-in counted as a fault")
	}
}

func TestPageFaultChargesEntryCost(t *testing.T) {
	_, v, _, cpu := newRig(t)
	sp := v.NewSpace()
	before := cpu.Now()
	_ = sp.Touch(0x1000)
	us := vtime.InMicros(cpu.Now().Sub(before))
	// PageFaultEntry (8us) + the default pager's mapping work (FSOp,
	// 4us) + dispatch overhead.
	if us < 12 || us > 14 {
		t.Fatalf("fault cost = %.2fus", us)
	}
}

func TestSpaceLookup(t *testing.T) {
	_, v, _, _ := newRig(t)
	sp := v.NewSpace()
	got, ok := v.Space(sp.ID())
	if !ok || got != sp {
		t.Fatal("Space lookup broken")
	}
	if _, ok := v.Space(999); ok {
		t.Fatal("phantom space")
	}
	if sp.RTTIType() != SpaceType {
		t.Fatal("RTTIType wrong")
	}
}

func TestTouchOnForeignSpaceIDFails(t *testing.T) {
	// The default pager returns false for an unknown space id, so the
	// touch fails rather than mapping into nowhere.
	d, v, _, _ := newRig(t)
	_ = d
	ghost := &AddressSpace{id: 424242, vm: v, pages: map[uint64]bool{}}
	if err := ghost.Touch(0x1000); !errors.Is(err, ErrInaccessible) {
		t.Fatalf("err = %v", err)
	}
}
