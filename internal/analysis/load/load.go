// Package load is a standard-library-only package loader for the spinvet
// static verifier: the moral equivalent of golang.org/x/tools/go/packages,
// built from `go list`, go/parser, and go/types so the verifier runs in
// hermetic environments where x/tools is unavailable.
//
// Module packages are parsed and type-checked from source — the analyzer
// needs their function bodies for interprocedural purity proofs — while
// dependencies outside the module (the standard library) are imported from
// compiler export data produced by `go list -export`. Because every module
// package is checked against the *types.Package its dependents import,
// type objects are identical across the whole program, which is what lets
// the analyzer key cross-package facts by *types.Func.
package load

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the import path.
	PkgPath string
	// Dir is the package directory.
	Dir string
	// Files are the parsed source files (no test files).
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's results for Files.
	Info *types.Info
	// Errors collects non-fatal type errors encountered while checking
	// this package (the analyzer skips packages that fail to check).
	Errors []error
	// DepOnly marks packages pulled in only as dependencies of the
	// requested patterns; drivers typically analyze these for facts but
	// report diagnostics only for matched packages.
	DepOnly bool
}

// Program is a load result: the module's packages in dependency order plus
// the shared file set and importer state needed to check extra sources
// (the analyzer's test corpus) against the same program.
type Program struct {
	// Fset is the shared file set for every parsed file.
	Fset *token.FileSet
	// Packages lists the module packages in topological (dependencies
	// first) order.
	Packages []*Package
	// ModulePath is the main module's path.
	ModulePath string

	byPath  map[string]*Package
	exports map[string]string
	gcImp   types.ImporterFrom
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	Module     *struct {
		Path string
		Main bool
	}
	Error   *struct{ Err string }
	DepOnly bool
}

// Load lists patterns (plus -deps) in dir, compiles export data, parses
// every main-module package from source, and type-checks the lot in
// dependency order.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Cgo files would need the C toolchain in the loop; the module is pure
	// Go, and with CGO_ENABLED=0 the standard library resolves to its pure
	// Go variants, keeping export data complete.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = string(ee.Stderr)
		}
		return nil, fmt.Errorf("load: go list: %s", strings.TrimSpace(msg))
	}

	prog := &Program{
		Fset:    token.NewFileSet(),
		byPath:  make(map[string]*Package),
		exports: make(map[string]string),
	}
	var mods []*listPkg
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if p.Error != nil && !p.Standard {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			prog.exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.Main {
			if prog.ModulePath == "" {
				prog.ModulePath = p.Module.Path
			}
			cp := p
			mods = append(mods, &cp)
		}
	}
	if prog.ModulePath == "" {
		return nil, fmt.Errorf("load: no main-module packages matched %v", patterns)
	}
	prog.gcImp = importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := prog.exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	}).(types.ImporterFrom)

	for _, lp := range topoSort(mods) {
		pkg, err := prog.checkFromSource(lp)
		if err != nil {
			return nil, err
		}
		prog.byPath[lp.ImportPath] = pkg
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// Package returns the loaded module package with the given import path
// (nil if the path was not part of the load).
func (prog *Program) Package(path string) *Package { return prog.byPath[path] }

// topoSort orders module packages dependencies-first. `go list -deps`
// already emits an order close to this, but the contract is unspecified,
// so sort explicitly (module-internal edges only; ties by path for
// determinism).
func topoSort(pkgs []*listPkg) []*listPkg {
	byPath := make(map[string]*listPkg, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	var order []*listPkg
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *listPkg)
	visit = func(p *listPkg) {
		if state[p.ImportPath] != 0 {
			return
		}
		state[p.ImportPath] = 1
		deps := append([]string(nil), p.Imports...)
		sort.Strings(deps)
		for _, imp := range deps {
			if d := byPath[imp]; d != nil {
				visit(d)
			}
		}
		state[p.ImportPath] = 2
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return order
}

// checkFromSource parses and type-checks one module package.
func (prog *Program) checkFromSource(lp *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(prog.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, f)
	}
	pkg := &Package{PkgPath: lp.ImportPath, Dir: lp.Dir, Files: files, DepOnly: lp.DepOnly}
	tpkg, info, errs := prog.check(lp.ImportPath, files)
	pkg.Types, pkg.Info, pkg.Errors = tpkg, info, errs
	return pkg, nil
}

// CheckExtra type-checks files parsed against prog's file set as a
// synthetic package (the analyzer's golden corpus lives outside the module
// in testdata, where go list cannot see it). Imports resolve to the loaded
// module packages first, then to export data.
func (prog *Program) CheckExtra(path string, files []*ast.File) *Package {
	tpkg, info, errs := prog.check(path, files)
	return &Package{PkgPath: path, Files: files, Types: tpkg, Info: info, Errors: errs}
}

// check runs the type checker over files with the program's combined
// importer.
func (prog *Program) check(path string, files []*ast.File) (*types.Package, *types.Info, []error) {
	var errs []error
	conf := types.Config{
		Importer: (*progImporter)(prog),
		Error:    func(err error) { errs = append(errs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tpkg, _ := conf.Check(path, prog.Fset, files, info)
	return tpkg, info, errs
}

// progImporter resolves module-internal imports to the source-checked
// packages and everything else to export data.
type progImporter Program

func (pi *progImporter) Import(path string) (*types.Package, error) {
	return pi.ImportFrom(path, "", 0)
}

func (pi *progImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := pi.byPath[path]; ok {
		if p.Types == nil {
			return nil, fmt.Errorf("load: import cycle or failed dependency %q", path)
		}
		return p.Types, nil
	}
	return pi.gcImp.ImportFrom(path, dir, mode)
}
