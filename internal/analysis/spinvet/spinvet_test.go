package spinvet_test

import (
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"spin/internal/analysis/load"
	"spin/internal/analysis/spinvet"
)

// The module is loaded once per test binary: the corpus type-checks
// against the same program so interprocedural facts flow between corpus
// code and the real dispatch/rtti packages.
var (
	progOnce sync.Once
	prog     *load.Program
	progErr  error
)

func program(t *testing.T) *load.Program {
	t.Helper()
	progOnce.Do(func() {
		prog, progErr = load.Load("../../..", "./...")
	})
	if progErr != nil {
		t.Fatalf("loading module: %v", progErr)
	}
	return prog
}

// TestTreeClean is the enforcement test: the repository's own tree must
// produce zero diagnostics (make lint runs the same check via the
// driver).
func TestTreeClean(t *testing.T) {
	p := program(t)
	var report []*load.Package
	for _, pkg := range p.Packages {
		if pkg.DepOnly {
			continue
		}
		if len(pkg.Errors) > 0 {
			t.Fatalf("%s failed to type-check: %v", pkg.PkgPath, pkg.Errors[0])
		}
		report = append(report, pkg)
	}
	if len(report) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, d := range spinvet.Check(p, report) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestCorpus runs the suite over the golden corpus and matches the
// diagnostics against the inline `// want` expectations, analysistest
// style: every want must be satisfied by a diagnostic on its line, and
// every diagnostic must be claimed by a want.
func TestCorpus(t *testing.T) {
	p := program(t)
	paths, err := filepath.Glob(filepath.Join("testdata", "src", "corpus", "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(p.Fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	pkg := p.CheckExtra("corpus", files)
	for _, err := range pkg.Errors {
		t.Errorf("corpus type error: %v", err)
	}
	if t.Failed() {
		t.FailNow()
	}

	diags := spinvet.Check(p, []*load.Package{pkg})

	wants := readWants(t, paths)
	matched := make([]bool, len(diags))
	for _, w := range wants {
		ok := false
		for i, d := range diags {
			if matched[i] {
				continue
			}
			if filepath.Base(d.Pos.Filename) == w.file && d.Pos.Line == w.line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}

	// The acceptance bar: the corpus demonstrates at least five distinct
	// diagnostic messages across all three analyzers.
	distinct := make(map[string]bool)
	byAnalyzer := make(map[string]bool)
	for _, d := range diags {
		distinct[d.Message] = true
		byAnalyzer[d.Analyzer] = true
	}
	if len(distinct) < 5 {
		t.Errorf("corpus demonstrates %d distinct diagnostics, want >= 5", len(distinct))
	}
	for _, a := range spinvet.Analyzers() {
		if !byAnalyzer[a.Name] {
			t.Errorf("corpus has no %s diagnostic", a.Name)
		}
	}
}

// want is one expectation: a regex that must match a diagnostic on the
// given line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantPat = regexp.MustCompile("// want (`.+)$")
var wantArg = regexp.MustCompile("`([^`]*)`")

// readWants scans corpus sources for `// want `regex“ comments
// (backquoted; several per line allowed).
func readWants(t *testing.T, paths []string) []want {
	t.Helper()
	var out []want
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantPat.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			args := wantArg.FindAllStringSubmatch(m[1], -1)
			if len(args) == 0 {
				t.Fatalf("%s:%d: malformed want comment (expected backquoted regexes): %s", path, i+1, line)
			}
			for _, a := range args {
				re, err := regexp.Compile(a[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex: %v", path, i+1, err)
				}
				out = append(out, want{file: filepath.Base(path), line: i + 1, re: re})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}
