package spinvet

import "go/types"

// The standard-library purity allowlist. Module code is proven from
// source; the standard library is imported from export data (no bodies),
// so functions used inside guards must be vouched for here. The list is
// deliberately small and value-oriented: whole packages that only compute
// over their inputs, plus a few formatting/atomic-read functions that are
// observationally pure for a guard (allocation is permitted; mutation of
// pre-existing state is not).

// allowPkgs are packages whose every exported function and method is
// side-effect free.
var allowPkgs = map[string]bool{
	"strings":      true,
	"bytes":        true,
	"unicode":      true,
	"unicode/utf8": true,
	"math":         true,
	"math/bits":    true,
	"strconv":      true,
	"sort":         false, // sorts in place — explicitly not pure
	// errors is deliberately absent: errors.As writes through its target
	// pointer, so the read-only functions are vouched individually below.
}

// allowFuncs are individually vouched functions, by full path.
var allowFuncs = map[string]bool{
	"fmt.Sprintf":  true,
	"fmt.Sprint":   true,
	"fmt.Sprintln": true,
	"fmt.Errorf":   true,

	// The read-only subset of errors. errors.As is excluded: it writes
	// through its second argument, which may be pre-existing state.
	"errors.New":    true,
	"errors.Is":     true,
	"errors.Unwrap": true,
	"errors.Join":   true,

	// Atomic loads read shared state without mutating it; guards are
	// allowed to observe the world, just not to change it.
	"sync/atomic.LoadInt32":   true,
	"sync/atomic.LoadInt64":   true,
	"sync/atomic.LoadUint32":  true,
	"sync/atomic.LoadUint64":  true,
	"sync/atomic.LoadPointer": true,

	// Atomic-typed value loads (methods).
	"(*sync/atomic.Bool).Load":    true,
	"(*sync/atomic.Int32).Load":   true,
	"(*sync/atomic.Int64).Load":   true,
	"(*sync/atomic.Uint32).Load":  true,
	"(*sync/atomic.Uint64).Load":  true,
	"(*sync/atomic.Pointer).Load": true,
	"(*sync/atomic.Value).Load":   true,

	"time.Now":               true,
	"(time.Time).After":      true,
	"(time.Time).Before":     true,
	"(time.Time).Sub":        true,
	"(time.Time).UnixNano":   true,
	"(time.Duration).String": true,
}

// allowPure reports whether fn is vouched pure by the standard-library
// allowlist.
func allowPure(fn *types.Func) bool {
	fn = fn.Origin()
	if allowFuncs[funcPath(fn)] {
		return true
	}
	pkg := fn.Pkg()
	if pkg == nil {
		// Error.Error and friends from the universe scope: not allowlisted.
		return false
	}
	if allowPkgs[pkg.Path()] {
		// Exclude Builder/Reader-style mutating methods even in allowed
		// packages: only value receivers and plain functions qualify.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
				return false
			}
		}
		return true
	}
	return false
}
