package spinvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"spin/internal/analysis/load"
)

// checkEphemeral enforces context-cooperation on one handler site: every
// loop must check ctx.Err()/ctx.Done() (or hand the context to a call),
// and blocking operations — time.Sleep, bare channel operations, net
// reads — must be guarded by the invocation context. A handler under the
// obligation that takes no context at all is reported at its first loop
// or blocking operation, since nothing in it can observe cancellation.
func (c *checker) checkEphemeral(s *site) {
	if s.fn == nil {
		return
	}
	lit, fn := c.resolveFuncExpr(s.pkg, s.fn, s.encl)
	var body *ast.BlockStmt
	var ftype *ast.FuncType
	pkg := s.pkg
	switch {
	case lit != nil:
		body, ftype = lit.Body, lit.Type
	case fn != nil:
		di := c.decls[fn]
		if di == nil || di.decl.Body == nil {
			return // no source to check; runtime watchdog still applies
		}
		body, ftype = di.decl.Body, di.decl.Type
		pkg = di.pkg
	default:
		return
	}

	name := s.name
	if name == "" {
		name = "handler"
	} else {
		name = "handler " + name
	}

	ctxVars := contextParams(pkg, ftype)
	e := &ephWalk{c: c, pkg: pkg, ctx: ctxVars, site: s, name: name}
	if len(ctxVars) == 0 {
		// No context parameter: the handler cannot observe cancellation.
		// Report the first construct the watchdog would have to interrupt.
		if pos, what := firstUncooperative(pkg, body); pos.IsValid() {
			c.report(EphemeralAnalyzer, pos,
				"%s is %s but takes no context.Context: this %s cannot observe cancellation (accept a ctx via CtxFn/InstallCtx and check ctx.Err()/ctx.Done())",
				name, s.ephemeralReason, what)
		}
		return
	}
	e.walk(body)
}

// ephWalk carries the cooperative-cancellation analysis over one handler
// body.
type ephWalk struct {
	c    *checker
	pkg  *load.Package
	ctx  map[types.Object]bool
	site *site
	name string
	// selDepth tracks enclosing select statements that include a
	// <-ctx.Done() case; channel operations under one are guarded.
	doneSelect int
}

func (e *ephWalk) walk(n ast.Node) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.ForStmt:
			if !e.containsCtxCheck(v) {
				e.c.report(EphemeralAnalyzer, v.Pos(),
					"%s is %s but this loop never checks ctx.Err()/ctx.Done(): the deadline watchdog cannot terminate it",
					e.name, e.site.ephemeralReason)
			}
		case *ast.RangeStmt:
			if t := typeOf(e.pkg, v.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Chan, *types.Signature:
					// Unbounded iteration sources; slices/maps/ints
					// terminate on their own.
					if !e.containsCtxCheck(v) {
						e.c.report(EphemeralAnalyzer, v.Pos(),
							"%s is %s but this range over an unbounded source never checks ctx.Err()/ctx.Done()",
							e.name, e.site.ephemeralReason)
					}
				}
			}
		case *ast.SelectStmt:
			if e.selectHasDoneCase(v) {
				e.doneSelect++
				for _, clause := range v.Body.List {
					e.walk(clause)
				}
				e.doneSelect--
				return false
			}
			// A select with a default case cannot block.
			for _, clause := range v.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					return true
				}
			}
			e.c.report(EphemeralAnalyzer, v.Pos(),
				"%s is %s but this select has no <-ctx.Done() case: it can block past the deadline",
				e.name, e.site.ephemeralReason)
		case *ast.SendStmt:
			if e.doneSelect == 0 && !e.inCommClause(n, v) {
				e.c.report(EphemeralAnalyzer, v.Pos(),
					"%s is %s but this channel send is not guarded by the invocation context (select on it together with <-ctx.Done())",
					e.name, e.site.ephemeralReason)
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && e.doneSelect == 0 && !e.isDoneRecv(v) && !e.inCommClause(n, v) {
				e.c.report(EphemeralAnalyzer, v.Pos(),
					"%s is %s but this channel receive is not guarded by the invocation context (select on it together with <-ctx.Done())",
					e.name, e.site.ephemeralReason)
			}
		case *ast.CallExpr:
			e.checkBlockingCall(v)
		}
		return true
	})
}

// inCommClause reports whether op is the communication operation of a
// select case somewhere under root (those are re-walked explicitly with
// doneSelect tracking, so the generic pass must not double-report them).
func (e *ephWalk) inCommClause(root ast.Node, op ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if cc, ok := n.(*ast.CommClause); ok && cc.Comm != nil {
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				if m == op {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// checkBlockingCall reports known unbounded blocking calls not guarded by
// the context: time.Sleep and net reads/accepts.
func (e *ephWalk) checkBlockingCall(call *ast.CallExpr) {
	fn, path := e.c.calleeOf(e.pkg, call)
	if path == "" {
		return
	}
	if path == "time.Sleep" {
		e.c.report(EphemeralAnalyzer, call.Pos(),
			"%s is %s but calls time.Sleep, which ignores cancellation (use a timer in a select with <-ctx.Done())",
			e.name, e.site.ephemeralReason)
		return
	}
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "net" {
		switch fn.Name() {
		case "Read", "ReadFrom", "ReadFromUDP", "ReadMsgUDP", "Accept", "AcceptTCP", "AcceptUnix":
			e.c.report(EphemeralAnalyzer, call.Pos(),
				"%s is %s but %s can block indefinitely (set a deadline from ctx before the call)",
				e.name, e.site.ephemeralReason, path)
		}
	}
}

// containsCtxCheck reports whether the node contains a use of the context
// that lets cancellation in: ctx.Err()/ctx.Done()/ctx.Deadline(), or any
// call taking the context as an argument (handing it onward counts).
func (e *ephWalk) containsCtxCheck(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && e.isCtxExpr(sel.X) {
			// ctx.Value is deliberately absent: it never observes
			// cancellation, so a loop whose only context use is Value
			// is still unterminable by the watchdog.
			switch sel.Sel.Name {
			case "Err", "Done", "Deadline":
				found = true
				return false
			}
		}
		for _, arg := range call.Args {
			if e.isCtxExpr(arg) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// selectHasDoneCase reports whether a select includes a case receiving
// from ctx.Done().
func (e *ephWalk) selectHasDoneCase(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		var recv ast.Expr
		switch stmt := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = stmt.X
		case *ast.AssignStmt:
			if len(stmt.Rhs) == 1 {
				recv = stmt.Rhs[0]
			}
		}
		if u, ok := ast.Unparen(recv).(*ast.UnaryExpr); ok && u.Op == token.ARROW && e.isDoneCall(u.X) {
			return true
		}
	}
	return false
}

// isDoneRecv reports whether the receive expression is <-ctx.Done()
// itself (which is a cancellation check, not an unguarded block).
func (e *ephWalk) isDoneRecv(u *ast.UnaryExpr) bool {
	return e.isDoneCall(u.X)
}

// isDoneCall reports whether the expression is a call of Done() on the
// invocation context.
func (e *ephWalk) isDoneCall(x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return e.isCtxExpr(sel.X)
}

// isCtxExpr reports whether the expression's static type is
// context.Context (any context value counts — a derived context is as
// good as the parameter).
func (e *ephWalk) isCtxExpr(x ast.Expr) bool {
	t := typeOf(e.pkg, x)
	return t != nil && namedPath(t) == "context.Context"
}

// contextParams collects the declared parameters of type context.Context.
func contextParams(pkg *load.Package, ftype *ast.FuncType) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if ftype == nil || ftype.Params == nil {
		return out
	}
	for _, field := range ftype.Params.List {
		if t := typeOf(pkg, field.Type); t != nil && namedPath(t) == "context.Context" {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// firstUncooperative finds the first loop or blocking construct in a body
// with no context access at all, for the "takes no context" diagnostic.
func firstUncooperative(pkg *load.Package, body *ast.BlockStmt) (token.Pos, string) {
	var pos token.Pos
	var what string
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch v := n.(type) {
		case *ast.ForStmt:
			pos, what = v.Pos(), "loop"
		case *ast.RangeStmt:
			if t := typeOf(pkg, v.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					pos, what = v.Pos(), "range over a channel"
				}
			}
		case *ast.SendStmt:
			pos, what = v.Pos(), "channel send"
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				pos, what = v.Pos(), "channel receive"
			}
		case *ast.SelectStmt:
			for _, clause := range v.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					return true // has default: non-blocking
				}
			}
			pos, what = v.Pos(), "select"
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" && sel.Sel.Name == "Sleep" {
					if _, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
						pos, what = v.Pos(), "time.Sleep call"
					}
				}
			}
		}
		return !pos.IsValid()
	})
	if !pos.IsValid() {
		return token.NoPos, ""
	}
	return pos, what
}
