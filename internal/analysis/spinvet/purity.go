package spinvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"spin/internal/analysis/load"
)

// violation is the first impurity found in a function body.
type violation struct {
	pos    token.Pos
	reason string
}

// purityFact is the memoized interprocedural summary for one function —
// the in-process equivalent of an x/tools analysis fact exported across
// packages.
type purityFact struct {
	pure   bool
	reason string // why impure (empty when pure)
	pos    token.Pos
}

// funcFact computes (or returns the memoized) purity summary for fn.
// Cycles resolve optimistically: a function on the in-progress stack is
// assumed pure for the recursive query, which is sound because every body
// in the cycle is still fully walked in its own frame, so any real
// violation is reported from the frame that contains it.
func (c *checker) funcFact(fn *types.Func) *purityFact {
	fn = fn.Origin()
	if f, ok := c.facts[fn]; ok {
		return f
	}
	if c.pureAnnotated[fn] || allowPure(fn) {
		f := &purityFact{pure: true}
		c.facts[fn] = f
		return f
	}
	di := c.decls[fn]
	if di == nil {
		f := &purityFact{pure: false, reason: "has no analyzable source"}
		c.facts[fn] = f
		return f
	}
	if di.decl.Body == nil {
		f := &purityFact{pure: false, reason: "is declared without a Go body", pos: di.decl.Pos()}
		c.facts[fn] = f
		return f
	}
	if c.inProgress[fn] {
		return &purityFact{pure: true} // optimistic; not memoized
	}
	c.inProgress[fn] = true
	v := c.analyzeBody(di.decl, di.decl.Body, di.pkg, nil)
	delete(c.inProgress, fn)
	f := &purityFact{pure: v == nil}
	if v != nil {
		f.reason = v.reason
		f.pos = v.pos
	}
	c.facts[fn] = f
	return f
}

// exprPurity analyzes the function behind a guard-position expression.
// assumed marks parameters (of an enclosing guard constructor) whose calls
// are taken as pure because the constructor's own call sites prove them.
func (c *checker) exprPurity(pkg *load.Package, e ast.Expr, encl *ast.FuncDecl, assumed map[*types.Var]bool) *violation {
	lit, fn := c.resolveFuncExpr(pkg, e, encl)
	switch {
	case lit != nil:
		return c.analyzeBody(lit, lit.Body, pkg, assumed)
	case fn != nil:
		if f := c.funcFact(fn); !f.pure {
			pos := f.pos
			if !pos.IsValid() {
				pos = e.Pos()
			}
			return &violation{pos: pos, reason: fn.Name() + " " + f.reason}
		}
		return nil
	default:
		return &violation{pos: e.Pos(), reason: "is an opaque function value the analyzer cannot resolve"}
	}
}

// analyzeBody walks one function body (scope delimits what counts as
// local) and returns the first impurity, or nil if the body is provably
// side-effect free.
func (c *checker) analyzeBody(scope ast.Node, body *ast.BlockStmt, pkg *load.Package, assumed map[*types.Var]bool) *violation {
	w := &purityWalk{c: c, pkg: pkg, scope: scope, assumed: assumed, alloc: make(map[types.Object]bool)}
	w.collectAllocs(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if w.v != nil {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			// A nested literal only matters if it is called or escapes;
			// its body is still part of what the guard can execute, so
			// walk it under the same scope (its definitions are within
			// scope's range and count as local).
			return true
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range x.Lhs {
				if v := w.checkWrite(lhs); v != nil {
					w.v = v
					return false
				}
			}
		case *ast.IncDecStmt:
			if v := w.checkWrite(x.X); v != nil {
				w.v = v
				return false
			}
		case *ast.SendStmt:
			w.v = &violation{pos: x.Pos(), reason: "sends on a channel"}
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.v = &violation{pos: x.Pos(), reason: "receives from a channel"}
				return false
			}
		case *ast.GoStmt:
			w.v = &violation{pos: x.Pos(), reason: "starts a goroutine"}
			return false
		case *ast.DeferStmt:
			w.v = &violation{pos: x.Pos(), reason: "defers a call (side effect on unwind)"}
			return false
		case *ast.SelectStmt:
			w.v = &violation{pos: x.Pos(), reason: "selects on channel operations"}
			return false
		case *ast.RangeStmt:
			if t := typeOf(pkg, x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					w.v = &violation{pos: x.Pos(), reason: "ranges over a channel"}
					return false
				}
			}
			if x.Tok == token.ASSIGN {
				// for k, v = range ...: the clause writes its targets.
				for _, lhs := range []ast.Expr{x.Key, x.Value} {
					if lhs == nil {
						continue
					}
					if v := w.checkWrite(lhs); v != nil {
						w.v = v
						return false
					}
				}
			}
		case *ast.CallExpr:
			if v := w.checkCall(x); v != nil {
				w.v = v
				return false
			}
		}
		return true
	})
	return w.v
}

// purityWalk carries the per-body analysis state.
type purityWalk struct {
	c       *checker
	pkg     *load.Package
	scope   ast.Node
	assumed map[*types.Var]bool
	// alloc records local variables bound to fresh allocations (composite
	// literals, &lit, new, make): writes through them cannot reach state
	// that existed before the guard ran.
	alloc map[types.Object]bool
	v     *violation
}

// collectAllocs pre-scans the body for locals whose every binding is a
// fresh allocation. The scan is flow-insensitive, so the exemption holds
// only if no binding anywhere in the body — definition, plain assignment,
// rebinding through a mixed short declaration, or a range clause — could
// make the name alias pre-existing state.
func (w *purityWalk) collectAllocs(body *ast.BlockStmt) {
	killed := make(map[types.Object]bool)
	// bind records one binding of id: a fresh allocation keeps the
	// exemption alive, anything else kills it for good.
	bind := func(id *ast.Ident, rhs ast.Expr) {
		if id.Name == "_" {
			return
		}
		obj := w.pkg.Info.Defs[id]
		if obj == nil {
			// Rebinding: plain assignment, or a mixed short declaration
			// that reuses an existing name.
			obj = w.pkg.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if rhs != nil && isAllocExpr(w.pkg, rhs) {
			w.alloc[obj] = true
		} else {
			killed[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				// Multi-value bindings are never allocations.
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						bind(id, nil)
					}
				}
				return true
			}
			for i, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					bind(id, x.Rhs[i])
				}
			}
		case *ast.RangeStmt:
			// Range clauses bind views into the ranged container.
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if id, ok := e.(*ast.Ident); ok {
					bind(id, nil)
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) == len(x.Values) {
				for i, name := range x.Names {
					bind(name, x.Values[i])
				}
			} else if len(x.Values) == 0 {
				// var x T — the zero value is fresh only when T holds no
				// references: a zero-valued pointer component could later
				// be pointed at pre-existing state through a path
				// checkWrite treats as direct (e.g. an array-of-pointer
				// element), and a write through it would then escape.
				for _, name := range x.Names {
					if obj := w.pkg.Info.Defs[name]; obj != nil && noRefComponents(obj.Type()) {
						w.alloc[obj] = true
					}
				}
			} else {
				// var a, b = f(): never an allocation.
				for _, name := range x.Names {
					bind(name, nil)
				}
			}
		}
		return true
	})
	for obj := range killed {
		delete(w.alloc, obj)
	}
}

// isAllocExpr reports whether e evaluates to storage that did not exist
// before this statement ran AND holds no references to storage that did:
// writes one level through it provably cannot reach pre-existing state.
func isAllocExpr(pkg *load.Package, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.CompositeLit:
		return freshLit(pkg, x)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			lit, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok && freshLit(pkg, lit)
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
				return b.Name() == "new" || b.Name() == "make"
			}
		}
	}
	return false
}

// freshLit reports whether a composite literal's storage contains no
// pre-existing addresses: every element must itself be a fresh allocation
// or a value with no reference components. S{p: &global} is fresh storage,
// but a write one level through it (x.p.f = 1) reaches state that predates
// the guard, so it earns no exemption.
func freshLit(pkg *load.Package, lit *ast.CompositeLit) bool {
	for _, el := range lit.Elts {
		v := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		if isAllocExpr(pkg, v) {
			continue
		}
		if t := typeOf(pkg, v); t != nil && noRefComponents(t) {
			continue
		}
		return false
	}
	return true
}

// noRefComponents reports whether values of t cannot contain a reference
// (pointer, slice, map, channel, function, interface, unsafe.Pointer)
// through which a write could reach storage outliving the value itself.
// Strings are immutable and count as reference-free.
func noRefComponents(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	case *types.Array:
		return noRefComponents(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !noRefComponents(u.Field(i).Type()) {
				return false
			}
		}
		return true
	}
	return false
}

// localTo reports whether obj is declared inside the analyzed scope.
func (w *purityWalk) localTo(obj types.Object) bool {
	return obj.Pos().IsValid() && obj.Pos() >= w.scope.Pos() && obj.Pos() < w.scope.End()
}

// checkWrite validates one assignment target: writes must land on local
// storage, and indirect writes (through pointers, slices, maps) only on
// locally allocated storage.
func (w *purityWalk) checkWrite(lhs ast.Expr) *violation {
	indirect := false
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			indirect = true
			e = x.X
		case *ast.IndexExpr:
			if t := typeOf(w.pkg, x.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Array:
					// Indexing a value array is direct storage.
				default:
					indirect = true // slice, map, pointer-to-array
				}
			} else {
				indirect = true
			}
			e = x.X
		case *ast.SelectorExpr:
			if t := typeOf(w.pkg, x.X); t != nil {
				if _, ok := t.Underlying().(*types.Pointer); ok {
					indirect = true
				}
			}
			e = x.X
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			obj := w.pkg.Info.Uses[x]
			if obj == nil {
				obj = w.pkg.Info.Defs[x]
			}
			if obj == nil {
				return &violation{pos: x.Pos(), reason: "writes through an unresolved name"}
			}
			if !w.localTo(obj) {
				return &violation{pos: lhs.Pos(), reason: "writes " + obj.Name() + ", which is declared outside the guard"}
			}
			if indirect && !w.alloc[obj] {
				return &violation{pos: lhs.Pos(), reason: "writes through " + obj.Name() + ", which may alias state outside the guard"}
			}
			return nil
		default:
			return &violation{pos: lhs.Pos(), reason: "writes through a computed reference"}
		}
	}
}

// checkCall validates one call: conversions and pure builtins pass;
// impure builtins, dynamic function values, interface methods, and callees
// without a pure summary fail.
func (w *purityWalk) checkCall(call *ast.CallExpr) *violation {
	if tv, ok := w.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				return &violation{pos: call.Pos(), reason: "may panic"}
			case "delete":
				return &violation{pos: call.Pos(), reason: "deletes a map key"}
			case "close":
				return &violation{pos: call.Pos(), reason: "closes a channel"}
			case "print", "println":
				return &violation{pos: call.Pos(), reason: "writes to standard error"}
			case "recover":
				return &violation{pos: call.Pos(), reason: "calls recover"}
			case "copy":
				if len(call.Args) > 0 {
					return w.checkWrite(call.Args[0])
				}
				return nil
			default:
				// len, cap, append, new, make, min, max, complex, real,
				// imag, unsafe.* sizes: no effect on pre-existing state.
				// (append's result must still be *stored* somewhere, and
				// the store is what checkWrite validates.)
				return nil
			}
		}
	}

	fn, _ := w.c.calleeOf(w.pkg, call)
	if fn == nil {
		// A dynamic function value. Constructor parameters proven at
		// their own call sites are assumed pure.
		if obj := calleeVar(w.pkg, call); obj != nil {
			if w.assumed[obj] {
				return nil
			}
			if w.localTo(obj) {
				// Calling a locally defined function value: resolve its
				// single-assignment initializer if we can see one.
				return &violation{pos: call.Pos(), reason: "calls the function value " + obj.Name() + ", which is not provably side-effect free"}
			}
			return &violation{pos: call.Pos(), reason: "calls the captured function value " + obj.Name() + ", which is not provably side-effect free"}
		}
		return &violation{pos: call.Pos(), reason: "calls an opaque function value"}
	}

	// Interface-dispatched methods have no single body to analyze.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) && !allowPure(fn) {
			return &violation{pos: call.Pos(), reason: "calls " + fn.Name() + " through an interface, which is not provably side-effect free"}
		}
	}

	if f := w.c.funcFact(fn); !f.pure {
		reason := f.reason
		if len(reason) > 160 {
			reason = reason[:160] + "…"
		}
		return &violation{pos: call.Pos(), reason: "calls " + fn.Name() + ", which " + reason}
	}
	return nil
}

// calleeVar returns the *types.Var behind a dynamic call's callee
// expression, if it is a plain variable reference.
func calleeVar(pkg *load.Package, call *ast.CallExpr) *types.Var {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[fun].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		} else if v, ok := pkg.Info.Uses[fun.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}
