// Package corpus is the spinvet golden corpus: each declaration below
// exercises one diagnostic class (or one deliberate silence). The
// `// want ...` comments carry regexes the test harness matches against
// diagnostics reported on that line; a line without a want comment must
// stay quiet.
package corpus

import (
	"context"
	"errors"
	"strings"
	"time"

	"spin/internal/dispatch"
	"spin/internal/rtti"
)

var mod = rtti.NewModule("Corpus")

var hits int
var events = make(chan uint64, 1)

// --- spinpurity: direct write to package-level state -----------------

var impureWrite = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.write", Module: mod, Functional: true, // want `declares FUNCTIONAL but its guard is provably impure`
		Sig: rtti.Sig(rtti.Bool, rtti.Word)},
	Fn: func(clo any, args []any) bool {
		hits++ // want `not provably FUNCTIONAL: writes hits`
		return true
	},
}

// --- spinpurity: channel operation -----------------------------------

var impureChan = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.chan", Module: mod, Functional: true, // want `declares FUNCTIONAL but its guard is provably impure`
		Sig: rtti.Sig(rtti.Bool, rtti.Word)},
	Fn: func(clo any, args []any) bool {
		events <- args[0].(uint64) // want `not provably FUNCTIONAL: sends on a channel`
		return true
	},
}

// --- spinpurity: transitive (interprocedural) impurity ----------------

func bump() {
	hits++
}

var impureCall = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.call", Module: mod, Functional: true, // want `declares FUNCTIONAL but its guard is provably impure`
		Sig: rtti.Sig(rtti.Bool, rtti.Word)},
	Fn: func(clo any, args []any) bool {
		bump() // want `not provably FUNCTIONAL: calls bump, which writes hits`
		return true
	},
}

// --- //spinvet:pure suppression ---------------------------------------

// vettedCounter would be flagged (it writes package state), but the
// escape hatch vouches for it, so its guard below must stay silent.
//
//spinvet:pure
func vettedCounter(w uint64) bool {
	hits++
	return w&1 == 0
}

var suppressed = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.vetted", Module: mod, Functional: true,
		Sig: rtti.Sig(rtti.Bool, rtti.Word)},
	Fn: func(clo any, args []any) bool {
		return vettedCounter(args[0].(uint64))
	},
}

// --- negative control: a genuinely pure guard -------------------------

var pureGuard = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.pure", Module: mod, Functional: true,
		Sig: rtti.Sig(rtti.Bool, rtti.Text)},
	Fn: func(clo any, args []any) bool {
		return strings.HasPrefix(args[0].(string), "corpus/")
	},
}

// --- spindecl: guard descriptor missing Functional ---------------------

var undeclared = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.undeclared", Module: mod, // want `does not declare Functional: true`
		Sig: rtti.Sig(rtti.Bool, rtti.Word)},
	Fn: func(clo any, args []any) bool {
		return true
	},
}

// --- spindecl: guard result contradicts the BOOLEAN contract -----------

var badResult = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.badresult", Module: mod, Functional: true,
		Sig: rtti.Sig(rtti.Word, rtti.Word)}, // want `declares result Word; guards must return BOOLEAN`
	Fn: func(clo any, args []any) bool {
		return true
	},
}

// --- spinephemeral: loop that never checks the context -----------------

var spinLoop = dispatch.Handler{
	Proc: &rtti.Proc{Name: "corpus.spinloop", Module: mod, Ephemeral: true,
		Sig: rtti.Sig(nil, rtti.Word)},
	CtxFn: func(ctx context.Context, clo any, args []any) any {
		for i := 0; i < 1<<30; i++ { // want `loop never checks ctx`
			_ = i
		}
		return nil
	},
}

// --- spinephemeral: EPHEMERAL declared, but no way to hear cancel ------

var sleepy = dispatch.Handler{
	Proc: &rtti.Proc{Name: "corpus.sleepy", Module: mod, Ephemeral: true,
		Sig: rtti.Sig(nil, rtti.Word)},
	Fn: func(clo any, args []any) any {
		time.Sleep(time.Second) // want `takes no context.Context`
		return nil
	},
}

// --- spinephemeral: unguarded blocking receive -------------------------

var recvNoGuard = dispatch.Handler{
	Proc: &rtti.Proc{Name: "corpus.recv", Module: mod, Ephemeral: true,
		Sig: rtti.Sig(nil, rtti.Word)},
	CtxFn: func(ctx context.Context, clo any, args []any) any {
		v := <-events // want `channel receive is not guarded`
		_ = v
		return nil
	},
}

// --- negative control: the cooperative form of the same handler --------

var cooperative = dispatch.Handler{
	Proc: &rtti.Proc{Name: "corpus.cooperative", Module: mod, Ephemeral: true,
		Sig: rtti.Sig(nil, rtti.Word)},
	CtxFn: func(ctx context.Context, clo any, args []any) any {
		select {
		case v := <-events:
			_ = v
		case <-ctx.Done():
		}
		return nil
	},
}

// --- spinpurity: alloc exemption dies when the name is rebound ---------

var table = make([]int, 4)

var aliasRebind = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.alias", Module: mod, Functional: true, // want `declares FUNCTIONAL but its guard is provably impure`
		Sig: rtti.Sig(rtti.Bool, rtti.Word)},
	Fn: func(clo any, args []any) bool {
		s := make([]int, 1)
		s = table
		s[0] = 42 // want `writes through s, which may alias state outside the guard`
		return s[0] == 42
	},
}

// --- spinpurity: zero value of a reference-bearing type is not exempt --

var globalInt int

var zeroSlot = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.zeroslot", Module: mod, Functional: true, // want `declares FUNCTIONAL but its guard is provably impure`
		Sig: rtti.Sig(rtti.Bool, rtti.Word)},
	Fn: func(clo any, args []any) bool {
		var slots [2]*int
		slots[0] = &globalInt
		*slots[0] = 7 // want `writes through slots, which may alias state outside the guard`
		return true
	},
}

// --- spinpurity: fresh literal carrying a pre-existing address ---------

type box struct{ p *int }

var boxedAlias = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.boxed", Module: mod, Functional: true, // want `declares FUNCTIONAL but its guard is provably impure`
		Sig: rtti.Sig(rtti.Bool, rtti.Word)},
	Fn: func(clo any, args []any) bool {
		b := box{p: &globalInt}
		*b.p = 9 // want `writes through b, which may alias state outside the guard`
		return true
	},
}

// --- negative control: fully fresh allocation graph stays exempt -------

var freshBox = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.freshbox", Module: mod, Functional: true,
		Sig: rtti.Sig(rtti.Bool, rtti.Word)},
	Fn: func(clo any, args []any) bool {
		b := box{p: new(int)}
		*b.p = 9
		return *b.p == 9
	},
}

// --- spinpurity: mixed short declaration rebinds the guard name --------

func pureEven(clo any, args []any) bool { return args[0].(uint64)&1 == 0 }

func impureCount(clo any, args []any) bool {
	hits++
	return true
}

func mixedRebind() dispatch.Guard {
	f := pureEven
	f, n := impureCount, 0
	_ = n
	return dispatch.Guard{
		Proc: &rtti.Proc{Name: "corpus.mixed", Module: mod, Functional: true, // want `declares FUNCTIONAL but its guard is provably impure`
			Sig: rtti.Sig(rtti.Bool, rtti.Word)},
		Fn: f, // want `not provably FUNCTIONAL: is an opaque function value`
	}
}

// --- spinpurity: errors.As mutates its target ---------------------------

type parseErr struct{ code int }

func (e *parseErr) Error() string { return "parse" }

var lastParse *parseErr

var errorsAs = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.errorsas", Module: mod, Functional: true, // want `declares FUNCTIONAL but its guard is provably impure`
		Sig: rtti.Sig(rtti.Bool, rtti.Word)},
	Fn: func(clo any, args []any) bool {
		err, _ := args[0].(error)
		return errors.As(err, &lastParse) // want `calls As, which has no analyzable source`
	},
}

// --- negative control: the read-only errors functions stay vouched -----

var sentinel = errors.New("corpus sentinel")

var errorsIs = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.errorsis", Module: mod, Functional: true,
		Sig: rtti.Sig(rtti.Bool, rtti.Word)},
	Fn: func(clo any, args []any) bool {
		err, _ := args[0].(error)
		return errors.Is(err, sentinel)
	},
}

// --- spinephemeral: ctx.Value does not observe cancellation ------------

var valueOnly = dispatch.Handler{
	Proc: &rtti.Proc{Name: "corpus.valueonly", Module: mod, Ephemeral: true,
		Sig: rtti.Sig(nil, rtti.Word)},
	CtxFn: func(ctx context.Context, clo any, args []any) any {
		for i := 0; i < 1<<30; i++ { // want `loop never checks ctx`
			_ = ctx.Value("seen")
		}
		return nil
	},
}

// --- spindecl: Ephemeral(...) install vs. undeclared descriptor --------

func installs(ev *dispatch.Event) {
	forgot := dispatch.Handler{
		Proc: &rtti.Proc{Name: "corpus.forgot", Module: mod, // want `installed with Ephemeral\(\.\.\.\) but does not declare Ephemeral: true`
			Sig: rtti.Sig(nil, rtti.Word)},
		Fn: func(clo any, args []any) any {
			return nil
		},
	}
	_, _ = ev.Install(forgot, dispatch.Ephemeral(time.Millisecond))
}
