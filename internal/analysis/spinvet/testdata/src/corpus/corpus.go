// Package corpus is the spinvet golden corpus: each declaration below
// exercises one diagnostic class (or one deliberate silence). The
// `// want ...` comments carry regexes the test harness matches against
// diagnostics reported on that line; a line without a want comment must
// stay quiet.
package corpus

import (
	"context"
	"strings"
	"time"

	"spin/internal/dispatch"
	"spin/internal/rtti"
)

var mod = rtti.NewModule("Corpus")

var hits int
var events = make(chan uint64, 1)

// --- spinpurity: direct write to package-level state -----------------

var impureWrite = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.write", Module: mod, Functional: true, // want `declares FUNCTIONAL but its guard is provably impure`
		Sig: rtti.Sig(rtti.Bool, rtti.Word)},
	Fn: func(clo any, args []any) bool {
		hits++ // want `not provably FUNCTIONAL: writes hits`
		return true
	},
}

// --- spinpurity: channel operation -----------------------------------

var impureChan = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.chan", Module: mod, Functional: true, // want `declares FUNCTIONAL but its guard is provably impure`
		Sig: rtti.Sig(rtti.Bool, rtti.Word)},
	Fn: func(clo any, args []any) bool {
		events <- args[0].(uint64) // want `not provably FUNCTIONAL: sends on a channel`
		return true
	},
}

// --- spinpurity: transitive (interprocedural) impurity ----------------

func bump() {
	hits++
}

var impureCall = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.call", Module: mod, Functional: true, // want `declares FUNCTIONAL but its guard is provably impure`
		Sig: rtti.Sig(rtti.Bool, rtti.Word)},
	Fn: func(clo any, args []any) bool {
		bump() // want `not provably FUNCTIONAL: calls bump, which writes hits`
		return true
	},
}

// --- //spinvet:pure suppression ---------------------------------------

// vettedCounter would be flagged (it writes package state), but the
// escape hatch vouches for it, so its guard below must stay silent.
//
//spinvet:pure
func vettedCounter(w uint64) bool {
	hits++
	return w&1 == 0
}

var suppressed = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.vetted", Module: mod, Functional: true,
		Sig: rtti.Sig(rtti.Bool, rtti.Word)},
	Fn: func(clo any, args []any) bool {
		return vettedCounter(args[0].(uint64))
	},
}

// --- negative control: a genuinely pure guard -------------------------

var pureGuard = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.pure", Module: mod, Functional: true,
		Sig: rtti.Sig(rtti.Bool, rtti.Text)},
	Fn: func(clo any, args []any) bool {
		return strings.HasPrefix(args[0].(string), "corpus/")
	},
}

// --- spindecl: guard descriptor missing Functional ---------------------

var undeclared = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.undeclared", Module: mod, // want `does not declare Functional: true`
		Sig: rtti.Sig(rtti.Bool, rtti.Word)},
	Fn: func(clo any, args []any) bool {
		return true
	},
}

// --- spindecl: guard result contradicts the BOOLEAN contract -----------

var badResult = dispatch.Guard{
	Proc: &rtti.Proc{Name: "corpus.badresult", Module: mod, Functional: true,
		Sig: rtti.Sig(rtti.Word, rtti.Word)}, // want `declares result Word; guards must return BOOLEAN`
	Fn: func(clo any, args []any) bool {
		return true
	},
}

// --- spinephemeral: loop that never checks the context -----------------

var spinLoop = dispatch.Handler{
	Proc: &rtti.Proc{Name: "corpus.spinloop", Module: mod, Ephemeral: true,
		Sig: rtti.Sig(nil, rtti.Word)},
	CtxFn: func(ctx context.Context, clo any, args []any) any {
		for i := 0; i < 1<<30; i++ { // want `loop never checks ctx`
			_ = i
		}
		return nil
	},
}

// --- spinephemeral: EPHEMERAL declared, but no way to hear cancel ------

var sleepy = dispatch.Handler{
	Proc: &rtti.Proc{Name: "corpus.sleepy", Module: mod, Ephemeral: true,
		Sig: rtti.Sig(nil, rtti.Word)},
	Fn: func(clo any, args []any) any {
		time.Sleep(time.Second) // want `takes no context.Context`
		return nil
	},
}

// --- spinephemeral: unguarded blocking receive -------------------------

var recvNoGuard = dispatch.Handler{
	Proc: &rtti.Proc{Name: "corpus.recv", Module: mod, Ephemeral: true,
		Sig: rtti.Sig(nil, rtti.Word)},
	CtxFn: func(ctx context.Context, clo any, args []any) any {
		v := <-events // want `channel receive is not guarded`
		_ = v
		return nil
	},
}

// --- negative control: the cooperative form of the same handler --------

var cooperative = dispatch.Handler{
	Proc: &rtti.Proc{Name: "corpus.cooperative", Module: mod, Ephemeral: true,
		Sig: rtti.Sig(nil, rtti.Word)},
	CtxFn: func(ctx context.Context, clo any, args []any) any {
		select {
		case v := <-events:
			_ = v
		case <-ctx.Done():
		}
		return nil
	},
}

// --- spindecl: Ephemeral(...) install vs. undeclared descriptor --------

func installs(ev *dispatch.Event) {
	forgot := dispatch.Handler{
		Proc: &rtti.Proc{Name: "corpus.forgot", Module: mod, // want `installed with Ephemeral\(\.\.\.\) but does not declare Ephemeral: true`
			Sig: rtti.Sig(nil, rtti.Word)},
		Fn: func(clo any, args []any) any {
			return nil
		},
	}
	_, _ = ev.Install(forgot, dispatch.Ephemeral(time.Millisecond))
}
