package spinvet

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"spin/internal/analysis/load"
	"spin/internal/rtti"
)

// Paths of the dispatch types the analyzer recognizes structurally.
const (
	guardTypePath   = "spin/internal/dispatch.Guard"
	handlerTypePath = "spin/internal/dispatch.Handler"
	procTypePath    = "spin/internal/rtti.Proc"
	eventInstall    = "(*spin/internal/dispatch.Event).Install"
)

// site is one obligation-carrying position found in the source: a function
// expression plus the role the API assigns it, with enough context to
// resolve local names and cross-check the paired rtti descriptor.
type site struct {
	pkg  *load.Package
	role rtti.VetRole
	// fn is the function expression at the obligation position (may need
	// local resolution; nil when only declaration checks apply).
	fn ast.Expr
	// pos anchors diagnostics when fn has no better position.
	pos token.Pos
	// encl is the function declaration lexically containing the site
	// (nil at package level); local single-assignment names resolve
	// within it.
	encl *ast.FuncDecl
	// proc is the resolved rtti.Proc composite literal paired with the
	// function, when one is syntactically reachable.
	proc *ast.CompositeLit
	// name is the descriptor's declared Name, for diagnostics.
	name string
	// ephemeral marks a context-cooperation obligation (declared
	// EPHEMERAL, installed with Ephemeral()/WithDeadline(), or a
	// CtxFn/InstallCtx registration).
	ephemeral bool
	// installedEphemeral marks that an Ephemeral(...) install option was
	// seen at the install site (for descriptor consistency checking).
	installedEphemeral bool
	// ephemeralReason names what put the site under the obligation.
	ephemeralReason string
}

// extractSites walks one package and returns every obligation position in
// it. Handler literals are indexed in c.handlerSites first so that
// Install-call processing (which attaches deadline obligations) can find
// them regardless of walk order.
func (c *checker) extractSites(pkg *load.Package) []*site {
	var sites []*site
	var calls []struct {
		call *ast.CallExpr
		encl *ast.FuncDecl
	}

	for _, file := range pkg.Files {
		walkWithEncl(file, nil, func(n ast.Node, encl *ast.FuncDecl) {
			switch x := n.(type) {
			case *ast.CompositeLit:
				switch namedPath(typeOf(pkg, x)) {
				case guardTypePath:
					if s := c.guardLiteralSite(pkg, x, encl); s != nil {
						sites = append(sites, s)
					}
				case handlerTypePath:
					if s := c.handlerLiteralSite(pkg, x, encl); s != nil {
						sites = append(sites, s)
						c.handlerSites[x] = s
					}
				}
			case *ast.CallExpr:
				calls = append(calls, struct {
					call *ast.CallExpr
					encl *ast.FuncDecl
				}{x, encl})
			}
		})
	}

	for _, cc := range calls {
		sites = append(sites, c.callSiteObligations(pkg, cc.call, cc.encl)...)
	}
	return sites
}

// walkWithEncl is a pre-order walk that reports, for each node, the
// innermost enclosing *ast.FuncDecl.
func walkWithEncl(n ast.Node, encl *ast.FuncDecl, fn func(ast.Node, *ast.FuncDecl)) {
	if n == nil {
		return
	}
	if fd, ok := n.(*ast.FuncDecl); ok {
		fn(n, fd)
		if fd.Body != nil {
			walkChildren(fd.Body, fd, fn)
		}
		return
	}
	fn(n, encl)
	walkChildren(n, encl, fn)
}

func walkChildren(n ast.Node, encl *ast.FuncDecl, fn func(ast.Node, *ast.FuncDecl)) {
	ast.Inspect(n, func(child ast.Node) bool {
		if child == nil || child == n {
			return child == n
		}
		if fd, ok := child.(*ast.FuncDecl); ok {
			walkWithEncl(fd, encl, fn)
			return false
		}
		fn(child, encl)
		return true
	})
}

// guardLiteralSite builds the site for a dispatch.Guard composite literal.
// Pred-only guards are FUNCTIONAL by construction and carry no obligation.
func (c *checker) guardLiteralSite(pkg *load.Package, lit *ast.CompositeLit, encl *ast.FuncDecl) *site {
	fnExpr := litField(lit, "Fn")
	procExpr := litField(lit, "Proc")
	if fnExpr == nil && procExpr == nil {
		return nil
	}
	s := &site{pkg: pkg, role: rtti.VetGuardFn, fn: fnExpr, pos: lit.Pos(), encl: encl}
	c.attachProc(s, procExpr)
	return s
}

// handlerLiteralSite builds the site for a dispatch.Handler composite
// literal. A CtxFn implementation, or a descriptor declaring EPHEMERAL,
// puts the handler under the context-cooperation obligation immediately;
// Ephemeral()/WithDeadline() install options are attached later by the
// Install-call pass.
func (c *checker) handlerLiteralSite(pkg *load.Package, lit *ast.CompositeLit, encl *ast.FuncDecl) *site {
	fnExpr := litField(lit, "Fn")
	ctxExpr := litField(lit, "CtxFn")
	procExpr := litField(lit, "Proc")
	if fnExpr == nil && ctxExpr == nil && procExpr == nil {
		return nil
	}
	s := &site{pkg: pkg, role: rtti.VetHandlerFn, fn: fnExpr, pos: lit.Pos(), encl: encl}
	if ctxExpr != nil {
		s.role = rtti.VetCtxHandlerFn
		s.fn = ctxExpr
		s.ephemeral = true
		s.ephemeralReason = "registered through CtxFn"
	}
	c.attachProc(s, procExpr)
	if s.proc != nil && procFlag(s.pkg, s.proc, "Ephemeral") {
		s.ephemeral = true
		if s.ephemeralReason == "" {
			s.ephemeralReason = "declared EPHEMERAL"
		}
	}
	return s
}

// attachProc resolves and records the rtti.Proc literal paired with a
// site, following address-of and single-assignment local names.
func (c *checker) attachProc(s *site, procExpr ast.Expr) {
	if procExpr == nil {
		return
	}
	lit := c.resolveProcLit(s.pkg, procExpr, s.encl)
	if lit == nil {
		return
	}
	s.proc = lit
	s.name = procString(s.pkg, lit, "Name")
}

// callSiteObligations inspects one call expression for obligations: typed
// wrapper sites from the rtti table, guard-constructor calls, and
// dispatch.Event.Install option processing.
func (c *checker) callSiteObligations(pkg *load.Package, call *ast.CallExpr, encl *ast.FuncDecl) []*site {
	fn, path := c.calleeOf(pkg, call)
	if path == "" {
		return nil
	}

	if vs, ok := c.callSites[path]; ok && vs.Arg >= 0 && vs.Arg < len(call.Args) {
		s := &site{pkg: pkg, role: vs.Role, fn: call.Args[vs.Arg], pos: call.Args[vs.Arg].Pos(), encl: encl}
		switch vs.Role {
		case rtti.VetCtxHandlerFn:
			s.ephemeral = true
			s.ephemeralReason = "registered through InstallCtx"
		case rtti.VetHandlerFn:
			c.applyInstallOpts(pkg, s, call.Args[vs.Arg+1:])
		}
		return []*site{s}
	}

	// The untyped install path: associate options with the Handler
	// literal's site.
	if path == eventInstall && len(call.Args) > 0 {
		if lit := c.resolveHandlerLit(pkg, call.Args[0], encl); lit != nil {
			if s := c.handlerSites[lit]; s != nil {
				c.applyInstallOpts(pkg, s, call.Args[1:])
			}
		}
		return nil
	}

	// The structural rule: calls to guard constructors put every
	// function-typed argument under the FUNCTIONAL obligation.
	if fn != nil && c.isGuardConstructor(fn) {
		var sites []*site
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil {
			return nil
		}
		for i, arg := range call.Args {
			if i >= sig.Params().Len() {
				break
			}
			if _, ok := sig.Params().At(i).Type().Underlying().(*types.Signature); ok {
				sites = append(sites, &site{pkg: pkg, role: rtti.VetGuardFn, fn: arg, pos: arg.Pos(), encl: encl})
			}
		}
		return sites
	}
	return nil
}

// applyInstallOpts scans install options for Ephemeral()/WithDeadline(),
// which attach the context-cooperation obligation to the handler.
func (c *checker) applyInstallOpts(pkg *load.Package, s *site, opts []ast.Expr) {
	for _, opt := range opts {
		call, ok := ast.Unparen(opt).(*ast.CallExpr)
		if !ok {
			continue
		}
		_, path := c.calleeOf(pkg, call)
		name := path[strings.LastIndexByte(path, '.')+1:]
		if !optionPackage(path) {
			continue
		}
		switch name {
		case "Ephemeral":
			s.ephemeral = true
			s.installedEphemeral = true
			if s.ephemeralReason == "" {
				s.ephemeralReason = "installed with Ephemeral(...)"
			}
		case "WithDeadline":
			s.ephemeral = true
			if s.ephemeralReason == "" {
				s.ephemeralReason = "installed with WithDeadline(...)"
			}
		}
	}
}

// optionPackage reports whether a normalized callee path belongs to the
// packages whose install options we recognize (the dispatch core and its
// spin re-exports).
func optionPackage(path string) bool {
	return strings.HasPrefix(path, "spin/internal/dispatch.") || strings.HasPrefix(path, "spin.")
}

// isGuardConstructor reports whether fn returns a dispatch.Guard — the
// structural marker for guard-building wrappers.
func (c *checker) isGuardConstructor(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if namedPath(sig.Results().At(i).Type()) == guardTypePath {
			return true
		}
	}
	return false
}

// constructorAssumedParams returns the function-typed parameters of encl
// when encl is a guard constructor: calls to them inside the constructed
// guard are assumed pure, because every call site of the constructor puts
// the corresponding arguments under the FUNCTIONAL obligation.
func (c *checker) constructorAssumedParams(pkg *load.Package, encl *ast.FuncDecl) map[*types.Var]bool {
	if encl == nil || encl.Name == nil {
		return nil
	}
	obj, ok := pkg.Info.Defs[encl.Name].(*types.Func)
	if !ok || !c.isGuardConstructor(obj) {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	assumed := make(map[*types.Var]bool)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if _, ok := p.Type().Underlying().(*types.Signature); ok {
			assumed[p] = true
		}
	}
	if len(assumed) == 0 {
		return nil
	}
	return assumed
}

// calleeOf resolves a call's static callee: a *types.Func when one exists,
// plus the normalized path used for table lookups. Package-level function
// variables (the spin package's re-exports) resolve by path only.
func (c *checker) calleeOf(pkg *load.Package, call *ast.CallExpr) (*types.Func, string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			return obj.Origin(), funcPath(obj)
		case *types.Var:
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return nil, obj.Pkg().Path() + "." + obj.Name()
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn.Origin(), funcPath(fn)
			}
			return nil, ""
		}
		// Qualified identifier: pkg.F or pkg.Var.
		switch obj := pkg.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			return obj.Origin(), funcPath(obj)
		case *types.Var:
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return nil, obj.Pkg().Path() + "." + obj.Name()
			}
		}
	case *ast.IndexExpr: // explicitly instantiated generic: F[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
				return fn.Origin(), funcPath(fn)
			}
		}
	}
	return nil, ""
}

// resolveHandlerLit finds the dispatch.Handler composite literal behind an
// expression, following single-assignment locals.
func (c *checker) resolveHandlerLit(pkg *load.Package, e ast.Expr, encl *ast.FuncDecl) *ast.CompositeLit {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.CompositeLit:
		if namedPath(typeOf(pkg, x)) == handlerTypePath {
			return x
		}
	case *ast.Ident:
		if init := resolveLocal(pkg, x, encl); init != nil {
			return c.resolveHandlerLit(pkg, init, encl)
		}
	}
	return nil
}

// resolveProcLit finds the rtti.Proc composite literal behind an
// expression (usually &rtti.Proc{...}, possibly via a local name).
func (c *checker) resolveProcLit(pkg *load.Package, e ast.Expr, encl *ast.FuncDecl) *ast.CompositeLit {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return c.resolveProcLit(pkg, x.X, encl)
		}
	case *ast.CompositeLit:
		if namedPath(typeOf(pkg, x)) == procTypePath {
			return x
		}
	case *ast.Ident:
		if init := resolveLocal(pkg, x, encl); init != nil {
			return c.resolveProcLit(pkg, init, encl)
		}
	}
	return nil
}

// resolveFuncExpr reduces a function expression to either a *ast.FuncLit
// or a *types.Func; nil, nil means the value is opaque to analysis.
func (c *checker) resolveFuncExpr(pkg *load.Package, e ast.Expr, encl *ast.FuncDecl) (*ast.FuncLit, *types.Func) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.FuncLit:
		return x, nil
	case *ast.Ident:
		switch obj := pkg.Info.Uses[x].(type) {
		case *types.Func:
			return nil, obj.Origin()
		case *types.Var:
			if init := resolveLocal(pkg, x, encl); init != nil {
				return c.resolveFuncExpr(pkg, init, encl)
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return nil, fn.Origin()
			}
			return nil, nil
		}
		if fn, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok {
			return nil, fn.Origin()
		}
	}
	return nil, nil
}

// resolveLocal returns the single initializing expression of a local
// name within encl, or nil when the name is reassigned, shadowed, or not
// locally defined.
func resolveLocal(pkg *load.Package, id *ast.Ident, encl *ast.FuncDecl) ast.Expr {
	if encl == nil || encl.Body == nil {
		return nil
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	if obj == nil {
		return nil
	}
	var init ast.Expr
	reassigned := false
	ast.Inspect(encl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if x.Tok == token.DEFINE && pkg.Info.Defs[lid] == obj {
					if len(x.Lhs) == len(x.Rhs) {
						init = x.Rhs[i]
					}
				} else if pkg.Info.Uses[lid] == obj {
					// Plain reassignment, or rebinding through a mixed
					// short declaration (f, x := ...), which records the
					// existing name in Uses with Tok == DEFINE. Either way
					// there is no single resolvable initializer.
					reassigned = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if pkg.Info.Defs[name] == obj && i < len(x.Values) {
					init = x.Values[i]
				}
			}
		}
		return true
	})
	if reassigned {
		return nil
	}
	return init
}

// litField returns the value of a named field in a keyed composite
// literal.
func litField(lit *ast.CompositeLit, name string) ast.Expr {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && key.Name == name {
			return kv.Value
		}
	}
	return nil
}

// procFlag reads a boolean descriptor field as a compile-time constant.
func procFlag(pkg *load.Package, lit *ast.CompositeLit, field string) bool {
	v := litField(lit, field)
	if v == nil {
		return false
	}
	tv, ok := pkg.Info.Types[v]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false
	}
	return constant.BoolVal(tv.Value)
}

// procString reads a string descriptor field as a compile-time constant.
func procString(pkg *load.Package, lit *ast.CompositeLit, field string) string {
	v := litField(lit, field)
	if v == nil {
		return ""
	}
	tv, ok := pkg.Info.Types[v]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return ""
	}
	return constant.StringVal(tv.Value)
}

// typeOf returns the type of an expression in pkg (nil when unchecked).
func typeOf(pkg *load.Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
