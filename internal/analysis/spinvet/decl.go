package spinvet

import (
	"go/ast"
	"go/types"

	"spin/internal/analysis/load"
	"spin/internal/rtti"
)

// checkSite runs the applicable analyzers over one obligation site. The
// same site can produce diagnostics from more than one analyzer: an
// impure guard is a spinpurity finding, and if its descriptor also
// declares FUNCTIONAL, the contradiction is a spindecl finding on top.
func (c *checker) checkSite(s *site) {
	switch s.role {
	case rtti.VetGuardFn:
		c.checkGuardSite(s)
	case rtti.VetHandlerFn, rtti.VetCtxHandlerFn:
		c.checkHandlerSite(s)
	}
}

// checkGuardSite enforces the FUNCTIONAL obligation and the descriptor
// consistency rules for one guard position.
func (c *checker) checkGuardSite(s *site) {
	label := "guard"
	if s.name != "" {
		label = "guard " + s.name
	}

	var v *violation
	if s.fn != nil {
		assumed := c.constructorAssumedParams(s.pkg, s.encl)
		v = c.exprPurity(s.pkg, s.fn, s.encl, assumed)
		if v != nil {
			c.report(PurityAnalyzer, v.pos, "%s is not provably FUNCTIONAL: %s", label, v.reason)
		}
	}

	if s.proc == nil {
		return
	}
	declared := procFlag(s.pkg, s.proc, "Functional")
	if v != nil && declared {
		c.report(DeclAnalyzer, s.proc.Pos(),
			"%s declares FUNCTIONAL but its guard is provably impure (%s)", descLabel(s), v.reason)
	}
	if !declared {
		c.report(DeclAnalyzer, s.proc.Pos(),
			"%s does not declare Functional: true; the dispatcher will reject this installation at runtime", descLabel(s))
	}
	c.checkGuardSig(s)
}

// checkHandlerSite enforces declaration consistency and, when the site is
// under a deadline, context cooperation.
func (c *checker) checkHandlerSite(s *site) {
	if s.proc != nil {
		// A handler descriptor declaring FUNCTIONAL promises a
		// side-effect-free handler; hold it to the guard standard.
		if procFlag(s.pkg, s.proc, "Functional") && s.fn != nil {
			if v := c.exprPurity(s.pkg, s.fn, s.encl, nil); v != nil {
				c.report(DeclAnalyzer, s.proc.Pos(),
					"%s declares FUNCTIONAL but the handler is provably impure (%s)", descLabel(s), v.reason)
			}
		}
		// Ephemeral(...) at install requires Ephemeral: true in the
		// descriptor, or the install fails at runtime.
		if s.installedEphemeral && !procFlag(s.pkg, s.proc, "Ephemeral") {
			c.report(DeclAnalyzer, s.proc.Pos(),
				"%s is installed with Ephemeral(...) but does not declare Ephemeral: true; the dispatcher will reject this installation at runtime", descLabel(s))
		}
	}
	if s.ephemeral {
		c.checkEphemeral(s)
	}
}

// checkGuardSig cross-checks the descriptor's declared signature against
// the guard contract: the result type must be rtti.Bool.
func (c *checker) checkGuardSig(s *site) {
	sigExpr := litField(s.proc, "Sig")
	if sigExpr == nil {
		return
	}
	var resultExpr ast.Expr
	switch x := ast.Unparen(sigExpr).(type) {
	case *ast.CallExpr:
		// rtti.Sig(result, args...)
		if fn, _ := c.calleeOf(s.pkg, x); fn != nil && fn.Name() == "Sig" && len(x.Args) > 0 {
			resultExpr = x.Args[0]
		}
	case *ast.CompositeLit:
		// rtti.Signature{Result: ...}
		if namedPath(typeOf(s.pkg, x)) == "spin/internal/rtti.Signature" {
			resultExpr = litField(x, "Result")
		}
	}
	if resultExpr == nil {
		return
	}
	resultExpr = ast.Unparen(resultExpr)
	if id, ok := resultExpr.(*ast.Ident); ok && id.Name == "nil" {
		c.report(DeclAnalyzer, resultExpr.Pos(),
			"%s declares no result type; guards must return BOOLEAN (rtti.Bool)", descLabel(s))
		return
	}
	if obj := typeVarOf(s.pkg, resultExpr); obj != nil && obj.Name() != "Bool" {
		c.report(DeclAnalyzer, resultExpr.Pos(),
			"%s declares result %s; guards must return BOOLEAN (rtti.Bool)", descLabel(s), obj.Name())
	}
}

// descLabel names a site's descriptor for diagnostics, degrading
// gracefully when the declared Name is not a compile-time constant.
func descLabel(s *site) string {
	if s.name != "" {
		return "descriptor " + s.name
	}
	return "this descriptor"
}

// typeVarOf resolves an expression referencing one of the rtti type
// variables (rtti.Bool, rtti.Word, ...) to its variable object.
func typeVarOf(pkg *load.Package, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}
