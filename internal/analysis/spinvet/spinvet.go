// Package spinvet statically verifies the two safety attributes the SPIN
// dispatcher trusts extensions to declare: FUNCTIONAL (guards are
// side-effect free, paper §2.3/§2.4) and EPHEMERAL (handlers invite
// termination, §2.6). In SPIN the Modula-3 compiler proved both before the
// dispatcher ever saw a descriptor; in this Go reproduction the rtti
// descriptors are self-declared, so without a checker a lying extension
// could smuggle an impure guard into the inlined fast path or a
// non-terminable handler past the watchdog. spinvet closes that gap at
// build time — "checks happen before installation".
//
// It is a multi-analyzer in the shape of golang.org/x/tools/go/analysis,
// built on the standard library alone (see internal/analysis/load) so it
// runs hermetically. Three analyzers share one program view and one fact
// store:
//
//   - spinpurity: every function reaching a guard position must not write
//     package-level or captured state, touch channels, mutate maps through
//     foreign references, start goroutines, panic, or call anything not
//     itself proven pure. The proof is interprocedural: callee summaries
//     are computed on demand, memoized per *types.Func, and shared across
//     packages. `//spinvet:pure` on a declaration vouches for a vetted
//     leaf the analysis cannot see through (the escape-hatch policy is
//     documented in DESIGN.md decision 14).
//
//   - spinephemeral: handlers declared EPHEMERAL, installed with
//     Ephemeral()/WithDeadline(), or registered through CtxFn/InstallCtx
//     must be context-cooperative: loops must check ctx.Err()/ctx.Done()
//     (or hand the context onward), and blocking operations — time.Sleep,
//     bare channel operations, net reads — must be guarded by the
//     invocation context.
//
//   - spindecl: declared attribute bits must not contradict what analysis
//     proves — a provably impure guard declared FUNCTIONAL is an error,
//     a guard descriptor without FUNCTIONAL or without a BOOLEAN result
//     will be rejected at runtime and is reported at build time, and an
//     Ephemeral() installation whose descriptor does not declare
//     EPHEMERAL is caught before it can fail at install.
//
// Guard positions are defined by the install-site metadata the rtti
// package exports (rtti.VetSites) plus one structural rule: any function
// returning dispatch.Guard is a guard constructor, and its function-typed
// parameters carry the FUNCTIONAL obligation at every call site.
package spinvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"spin/internal/analysis/load"
	"spin/internal/rtti"
)

// Analyzer describes one member of the multi-analyzer, mirroring the
// x/tools analysis.Analyzer surface this package would register with if it
// could depend on it.
type Analyzer struct {
	// Name is the analyzer's identifier, shown in diagnostics.
	Name string
	// Doc is the one-line description the driver prints.
	Doc string
}

// The three analyzers. Their Run logic lives on the shared checker —
// they are split here by reported category so drivers can list and filter
// them like any vet suite.
var (
	// PurityAnalyzer reports guards that are not provably side-effect
	// free.
	PurityAnalyzer = &Analyzer{
		Name: "spinpurity",
		Doc:  "report guard predicates that are not provably FUNCTIONAL (side-effect free)",
	}
	// EphemeralAnalyzer reports deadline-bounded handlers that cannot
	// cooperate with termination.
	EphemeralAnalyzer = &Analyzer{
		Name: "spinephemeral",
		Doc:  "report EPHEMERAL/deadline handlers that ignore their cancellation context",
	}
	// DeclAnalyzer reports descriptor attribute bits contradicting the
	// analysis.
	DeclAnalyzer = &Analyzer{
		Name: "spindecl",
		Doc:  "report rtti descriptor declarations contradicting what analysis proves",
	}
)

// Analyzers returns the members of the suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{PurityAnalyzer, EphemeralAnalyzer, DeclAnalyzer}
}

// Diagnostic is one finding, positioned and attributed to an analyzer.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message describes the finding.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Check runs the suite over report, with prog's packages (plus report)
// forming the interprocedural horizon. Diagnostics are returned sorted by
// position and deduplicated.
func Check(prog *load.Program, report []*load.Package) []Diagnostic {
	c := newChecker(prog, report)
	for _, pkg := range report {
		if pkg.Types == nil {
			continue
		}
		for _, s := range c.extractSites(pkg) {
			c.checkSite(s)
		}
	}
	sort.Slice(c.diags, func(i, j int) bool {
		a, b := c.diags[i], c.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	var out []Diagnostic
	seen := make(map[string]bool)
	for _, d := range c.diags {
		key := d.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	return out
}

// checker is the shared state of one Check run: the program view, the
// object→declaration index, and the purity fact store.
type checker struct {
	prog  *load.Program
	all   []*load.Package
	diags []Diagnostic

	// decls indexes every function declaration in the horizon by its
	// (origin) type object, so interprocedural analysis can cross package
	// boundaries on identical *types.Func keys.
	decls map[*types.Func]*declInfo
	// pureAnnotated records declarations carrying //spinvet:pure.
	pureAnnotated map[*types.Func]bool
	// facts memoizes purity summaries per function — the facts-based
	// cross-package summary store (x/tools "facts", in-process).
	facts map[*types.Func]*purityFact
	// inProgress marks functions currently on the analysis stack; cycles
	// are resolved optimistically (each body is still fully walked in its
	// own frame, so a violation anywhere in the cycle is found there).
	inProgress map[*types.Func]bool
	// sites is the install-site metadata from rtti, keyed by normalized
	// function path.
	callSites map[string]rtti.VetSite
	litSites  map[string]map[string]rtti.VetRole // type path -> field -> role
	// handlerSites maps a Handler composite literal node to its site so
	// Install-call processing can attach deadline obligations.
	handlerSites map[ast.Node]*site
}

// declInfo pairs a function declaration with the package it was checked
// in.
type declInfo struct {
	decl *ast.FuncDecl
	pkg  *load.Package
}

func newChecker(prog *load.Program, report []*load.Package) *checker {
	c := &checker{
		prog:          prog,
		decls:         make(map[*types.Func]*declInfo),
		pureAnnotated: make(map[*types.Func]bool),
		facts:         make(map[*types.Func]*purityFact),
		inProgress:    make(map[*types.Func]bool),
		callSites:     make(map[string]rtti.VetSite),
		litSites:      make(map[string]map[string]rtti.VetRole),
		handlerSites:  make(map[ast.Node]*site),
	}
	seen := make(map[*load.Package]bool)
	for _, pkg := range prog.Packages {
		if !seen[pkg] {
			seen[pkg] = true
			c.all = append(c.all, pkg)
		}
	}
	for _, pkg := range report {
		if !seen[pkg] {
			seen[pkg] = true
			c.all = append(c.all, pkg)
		}
	}
	for _, vs := range rtti.VetSites() {
		if vs.Field != "" {
			m := c.litSites[vs.Path]
			if m == nil {
				m = make(map[string]rtti.VetRole)
				c.litSites[vs.Path] = m
			}
			m[vs.Field] = vs.Role
		} else {
			c.callSites[vs.Path] = vs
		}
	}
	c.buildIndex()
	return c
}

// buildIndex walks every package in the horizon once, recording function
// declarations and //spinvet:pure annotations.
func (c *checker) buildIndex() {
	for _, pkg := range c.all {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				c.decls[obj] = &declInfo{decl: fd, pkg: pkg}
				if hasPureAnnotation(fd) {
					c.pureAnnotated[obj] = true
				}
			}
		}
	}
}

// hasPureAnnotation reports whether the declaration's doc comment carries
// the //spinvet:pure escape hatch.
func hasPureAnnotation(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, l := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(l.Text), "//spinvet:pure") {
			return true
		}
	}
	return false
}

func (c *checker) report(a *Analyzer, pos token.Pos, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Pos:      c.prog.Fset.Position(pos),
		Analyzer: a.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// funcPath normalizes a function or method to the site-table path form:
// package-qualified, pointer receivers as "(*T).M", generic instantiation
// brackets stripped.
func funcPath(fn *types.Func) string {
	fn = fn.Origin()
	name := fn.FullName()
	// FullName renders methods as "(pkg.T).M" or "(*pkg.T[A]).M"; strip
	// the instantiation brackets wherever they appear.
	for {
		i := strings.IndexByte(name, '[')
		if i < 0 {
			break
		}
		depth, j := 0, i
		for ; j < len(name); j++ {
			switch name[j] {
			case '[':
				depth++
			case ']':
				depth--
			}
			if depth == 0 {
				break
			}
		}
		if j >= len(name) {
			break
		}
		name = name[:i] + name[j+1:]
	}
	return name
}

// namedPath returns "pkgpath.Name" for a (possibly aliased) named type,
// or "".
func namedPath(t types.Type) string {
	t = types.Unalias(t)
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}
