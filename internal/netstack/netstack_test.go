package netstack

import (
	"bytes"
	"errors"
	"testing"

	"spin/internal/kernel"
	"spin/internal/netwire"
	"spin/internal/sched"
	"spin/internal/vtime"
)

// rig is a pair of machines on one 10Mb/s segment, the paper's §3.2 setup.
type rig struct {
	a, b   *kernel.Machine
	sa, sb *Stack
	link   *netwire.Link
}

func twoMachines(t *testing.T) *rig {
	t.Helper()
	a, err := kernel.Boot(kernel.Config{Name: "a", Metered: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := kernel.Boot(kernel.Config{Name: "b", ShareWith: a})
	if err != nil {
		t.Fatal(err)
	}
	link := netwire.NewLink(a.Sim, 0, 0)
	nicA, err := link.Attach("mac-a")
	if err != nil {
		t.Fatal(err)
	}
	nicB, err := link.Attach("mac-b")
	if err != nil {
		t.Fatal(err)
	}
	arp := map[string]string{"10.0.0.1": "mac-a", "10.0.0.2": "mac-b"}
	sa, err := New(Config{Dispatcher: a.Dispatcher, CPU: a.CPU, Sched: a.Sched,
		NIC: nicA, IP: "10.0.0.1", ARP: arp})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := New(Config{Dispatcher: b.Dispatcher, CPU: b.CPU, Sched: b.Sched,
		NIC: nicB, IP: "10.0.0.2", ARP: arp, Prefix: "B:"})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{a: a, b: b, sa: sa, sb: sb, link: link}
}

func (r *rig) run() { r.a.Sim.Run(200000) }

func TestUDPDatagramDelivery(t *testing.T) {
	r := twoMachines(t)
	src, err := r.sa.BindUDP(5000)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := r.sb.BindUDP(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Send("10.0.0.2", 7, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	r.run()
	pkt, ok := dst.Recv()
	if !ok {
		t.Fatal("no datagram delivered")
	}
	if string(pkt.Payload) != "ping" || pkt.SrcIP != "10.0.0.1" || pkt.SrcPort != 5000 {
		t.Fatalf("pkt = %+v", pkt)
	}
	if dst.Received != 1 || src.Sent != 1 {
		t.Fatal("counters wrong")
	}
	if _, ok := dst.Recv(); ok {
		t.Fatal("phantom second datagram")
	}
}

func TestUDPUnboundPortDropsViaDefaultHandler(t *testing.T) {
	r := twoMachines(t)
	src, _ := r.sa.BindUDP(5000)
	_ = src.Send("10.0.0.2", 9999, []byte("x"))
	r.run()
	if r.sb.UDPDrops != 1 {
		t.Fatalf("drops = %d", r.sb.UDPDrops)
	}
	// The layer counters still saw the packet.
	if r.sb.EtherFrames != 1 || r.sb.IPPackets != 1 {
		t.Fatalf("ether=%d ip=%d", r.sb.EtherFrames, r.sb.IPPackets)
	}
}

func TestUDPPortGuardSelectsSocket(t *testing.T) {
	r := twoMachines(t)
	src, _ := r.sa.BindUDP(5000)
	s7, _ := r.sb.BindUDP(7)
	s9, _ := r.sb.BindUDP(9)
	_ = src.Send("10.0.0.2", 9, []byte("for-9"))
	r.run()
	if s7.Pending() != 0 || s9.Pending() != 1 {
		t.Fatalf("s7=%d s9=%d", s7.Pending(), s9.Pending())
	}
}

func TestUDPBindConflictAndClose(t *testing.T) {
	r := twoMachines(t)
	sock, err := r.sa.BindUDP(7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.sa.BindUDP(7); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("err = %v", err)
	}
	if err := sock.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sock.Close(); err == nil {
		t.Fatal("double close accepted")
	}
	// Port is free again; traffic to it now drops.
	if _, err := r.sa.BindUDP(7); err != nil {
		t.Fatal(err)
	}
}

func TestUDPEchoRoundtripLatency(t *testing.T) {
	// The Table 2 baseline: an 8-byte UDP echo between two machines on a
	// 10Mb/s Ethernet, one guard installed, should cost on the order of
	// the paper's 475us.
	r := twoMachines(t)
	client, _ := r.sa.BindUDP(5000)
	server, _ := r.sb.BindUDP(7)

	serverStrand := r.b.Sched.Spawn("echo-server", 1, func(st *sched.Strand) sched.Status {
		pkt, ok := server.Recv()
		if !ok {
			server.AwaitPacket(st)
			return sched.Block
		}
		_ = server.Send(pkt.SrcIP, pkt.SrcPort, pkt.Payload)
		server.AwaitPacket(st)
		return sched.Block
	})
	_ = serverStrand

	var rtt vtime.Duration
	done := false
	start := r.a.Clock.Now()
	clientStrand := r.a.Sched.Spawn("client", 1, func(st *sched.Strand) sched.Status {
		if pkt, ok := client.Recv(); ok {
			if string(pkt.Payload) != "12345678" {
				t.Errorf("echo payload = %q", pkt.Payload)
			}
			rtt = r.a.Clock.Now().Sub(start)
			done = true
			return sched.Done
		}
		client.AwaitPacket(st)
		return sched.Block
	})
	_ = clientStrand
	_ = client.Send("10.0.0.2", 7, []byte("12345678"))
	r.run()
	if !done {
		t.Fatal("echo never completed")
	}
	us := vtime.InMicros(rtt)
	if us < 350 || us > 600 {
		t.Fatalf("roundtrip = %.0fus, want in the region of the paper's 475us", us)
	}
	t.Logf("UDP 8-byte echo roundtrip: %.1fus (paper: 475us)", us)
}

func TestTCPHandshakeAndData(t *testing.T) {
	r := twoMachines(t)
	l, err := r.sb.ListenTCP(6000)
	if err != nil {
		t.Fatal(err)
	}
	var serverConn *TCPConn
	var got bytes.Buffer
	r.b.Sched.Spawn("server", 1, func(st *sched.Strand) sched.Status {
		if serverConn == nil {
			c, ok := l.Accept()
			if !ok {
				l.AwaitConn(st)
				return sched.Block
			}
			serverConn = c
		}
		for {
			d, ok := serverConn.Recv()
			if !ok {
				break
			}
			got.Write(d)
		}
		if serverConn.EOF() {
			return sched.Done
		}
		serverConn.AwaitData(st)
		return sched.Block
	})

	conn, err := r.sa.DialTCP("10.0.0.2", 6000)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 4000) // 3 segments at MSS 1460
	sent := false
	r.a.Sched.Spawn("client", 1, func(st *sched.Strand) sched.Status {
		if !conn.Established() {
			conn.AwaitEstablished(st)
			return sched.Block
		}
		if !sent {
			sent = true
			if err := conn.Send(payload); err != nil {
				t.Errorf("send: %v", err)
			}
			_ = conn.Close()
		}
		return sched.Done
	})
	r.run()
	if !conn.Established() && !conn.Closed() {
		t.Fatal("handshake never completed")
	}
	if got.Len() != len(payload) {
		t.Fatalf("server got %d bytes, want %d", got.Len(), len(payload))
	}
	if serverConn.SegsIn < 4 { // 3 data + FIN (+ handshake ACK)
		t.Fatalf("SegsIn = %d", serverConn.SegsIn)
	}
	if conn.SegsIn < 4 { // SYN-ACK + 3 acks (+ FIN ack)
		t.Fatalf("client SegsIn = %d", conn.SegsIn)
	}
	if serverConn.BytesIn != int64(len(payload)) || conn.BytesOut != int64(len(payload)) {
		t.Fatal("byte counters wrong")
	}
}

func TestTCPSendBeforeEstablishedFails(t *testing.T) {
	r := twoMachines(t)
	conn, err := r.sa.DialTCP("10.0.0.2", 6000) // nobody listening
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send([]byte("x")); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPConnectionRefusedCountsReset(t *testing.T) {
	r := twoMachines(t)
	_, _ = r.sa.DialTCP("10.0.0.2", 4242) // no listener on B
	r.run()
	if r.sb.tcp.Resets != 1 {
		t.Fatalf("resets = %d", r.sb.tcp.Resets)
	}
}

func TestTCPListenConflictAndClose(t *testing.T) {
	r := twoMachines(t)
	l, err := r.sb.ListenTCP(80)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.sb.ListenTCP(80); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("err = %v", err)
	}
	l.Close()
	if _, err := r.sb.ListenTCP(80); err != nil {
		t.Fatal(err)
	}
	if l.Port() != 80 {
		t.Fatal("port accessor broken")
	}
}

func TestEventStatsTrackPacketCounts(t *testing.T) {
	// Table 3's counting infrastructure: event stats must reflect the
	// raise counts along the receive chain.
	r := twoMachines(t)
	src, _ := r.sa.BindUDP(5000)
	_, _ = r.sb.BindUDP(7)
	for i := 0; i < 10; i++ {
		_ = src.Send("10.0.0.2", 7, []byte("x"))
	}
	r.run()
	for _, tc := range []struct {
		name string
		want int64
	}{
		{"B:Ether.PacketArrived", 10},
		{"B:Ip.PacketArrived", 10},
		{"B:Udp.PacketArrived", 10},
		{"B:Tcp.PacketArrived", 0},
	} {
		ev, ok := r.b.Dispatcher.Lookup(tc.name)
		if !ok {
			t.Fatalf("event %s missing", tc.name)
		}
		if got := ev.Stats().Raised; got != tc.want {
			t.Errorf("%s raised = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestNoRoute(t *testing.T) {
	r := twoMachines(t)
	sock, _ := r.sa.BindUDP(5000)
	if err := sock.Send("10.9.9.9", 7, []byte("x")); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
}

func TestInjectEtherNonIP(t *testing.T) {
	r := twoMachines(t)
	r.sa.InjectEther(&Packet{EtherType: netwire.TypeARP})
	r.run()
	if r.sa.EtherFrames != 1 || r.sa.IPPackets != 0 {
		t.Fatalf("ether=%d ip=%d", r.sa.EtherFrames, r.sa.IPPackets)
	}
}

func TestPacketWireSize(t *testing.T) {
	udp := &Packet{Proto: ProtoUDP, Payload: make([]byte, 8)}
	if udp.WireSize() != 8+8+20 {
		t.Fatalf("udp wire size = %d", udp.WireSize())
	}
	tcp := &Packet{Proto: ProtoTCP, Payload: make([]byte, 100)}
	if tcp.WireSize() != 100+20+20 {
		t.Fatalf("tcp wire size = %d", tcp.WireSize())
	}
	raw := &Packet{Proto: ProtoICMP, Payload: make([]byte, 10)}
	if raw.WireSize() != 30 {
		t.Fatalf("raw wire size = %d", raw.WireSize())
	}
	if udp.RTTIType() != PacketType {
		t.Fatal("RTTIType wrong")
	}
}

func TestSmallFrameDoesNotOvertakeLargeOne(t *testing.T) {
	// The wire serializes transmissions: a FIN sent right after three
	// MSS-sized data segments must arrive after them, or the receiver
	// would see EOF before the data.
	r := twoMachines(t)
	src, _ := r.sa.BindUDP(5000)
	dst, _ := r.sb.BindUDP(7)
	_ = src.Send("10.0.0.2", 7, make([]byte, 1400)) // big, slow to serialize
	_ = src.Send("10.0.0.2", 7, []byte("s"))        // small, fast
	r.run()
	first, _ := dst.Recv()
	second, _ := dst.Recv()
	if first == nil || second == nil {
		t.Fatal("datagrams lost")
	}
	if len(first.Payload) != 1400 || len(second.Payload) != 1 {
		t.Fatalf("order inverted: %d then %d", len(first.Payload), len(second.Payload))
	}
}
