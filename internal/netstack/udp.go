package netstack

import (
	"fmt"

	"spin/internal/dispatch"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/vtime"
)

// UDPSocket is a bound UDP endpoint. Binding installs a guarded handler on
// Udp.PacketArrived — the socket is, literally, an event handler whose
// guard matches its port, which is how SPIN's application-specific
// networking attached endpoints to the stack.
type UDPSocket struct {
	stack   *Stack
	port    uint16
	binding *dispatch.Binding
	queue   []*Packet
	waiter  *sched.Strand

	// Received and Sent count datagrams through the socket.
	Received int64
	Sent     int64
}

// BindUDP binds port and installs the socket's handler. The guard is a
// HeaderGuard on the destination port.
func (s *Stack) BindUDP(port uint16) (*UDPSocket, error) {
	if _, dup := s.udpSocks[port]; dup {
		return nil, fmt.Errorf("%w: udp/%d", ErrPortInUse, port)
	}
	sock := &UDPSocket{stack: s, port: port}
	sig := rtti.Sig(nil, rtti.Word, PacketType)
	b, err := s.UDPArrived.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: fmt.Sprintf("Udp.Socket%d", port), Module: UDPModule, Sig: sig},
		Fn: func(clo any, args []any) any {
			sock.deliver(args[1].(*Packet))
			return nil
		},
	}, dispatch.WithGuard(s.PortGuard(fmt.Sprintf("Udp.Port%dGuard", port), port)))
	if err != nil {
		return nil, err
	}
	sock.binding = b
	s.udpSocks[port] = sock
	return sock, nil
}

// Port returns the bound port.
func (u *UDPSocket) Port() uint16 { return u.port }

// deliver runs in the receive chain: enqueue and wake any waiting strand.
func (u *UDPSocket) deliver(pkt *Packet) {
	u.stack.cpu.ChargeTo(vtime.AccountKernel, vtime.SocketOp)
	u.queue = append(u.queue, pkt)
	u.Received++
	if w := u.waiter; w != nil {
		u.waiter = nil
		u.stack.sched.Wakeup(w)
	}
}

// Send transmits a datagram.
func (u *UDPSocket) Send(dstIP string, dstPort uint16, payload []byte) error {
	u.stack.cpu.Charge(vtime.SocketOp)
	u.stack.cpu.Charge(vtime.ProtoLayer) // UDP header build
	u.Sent++
	return u.stack.sendIP(&Packet{
		DstIP: dstIP, Proto: ProtoUDP,
		SrcPort: u.port, DstPort: dstPort,
		Payload: payload,
	})
}

// Recv pops the next datagram, reporting false when the queue is empty.
func (u *UDPSocket) Recv() (*Packet, bool) {
	if len(u.queue) == 0 {
		return nil, false
	}
	pkt := u.queue[0]
	u.queue = u.queue[1:]
	return pkt, true
}

// AwaitPacket registers st to be woken on the next delivery; the strand
// body returns sched.Block after calling it. The usual receive loop is
//
//	pkt, ok := sock.Recv()
//	if !ok {
//	        sock.AwaitPacket(st)
//	        return sched.Block
//	}
func (u *UDPSocket) AwaitPacket(st *sched.Strand) { u.waiter = st }

// Pending reports the queue length.
func (u *UDPSocket) Pending() int { return len(u.queue) }

// Close unbinds the port and removes the socket's handler.
func (u *UDPSocket) Close() error {
	if u.stack.udpSocks[u.port] != u {
		return fmt.Errorf("netstack: udp/%d not bound to this socket", u.port)
	}
	delete(u.stack.udpSocks, u.port)
	return u.stack.UDPArrived.Uninstall(u.binding)
}
