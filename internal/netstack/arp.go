package netstack

import (
	"spin/internal/dispatch"
	"spin/internal/netwire"
	"spin/internal/rtti"
	"spin/internal/vtime"
)

// Dynamic ARP: address resolution as an extension module, in the same
// event-structured style as the rest of the stack. The ARP module installs
// a guarded handler on Ether.PacketArrived (ethertype 0x0806) and exports
// its own Arp.PacketArrived event; the stack's send path consults the
// learned table and, on a miss, queues the packet and broadcasts a
// request. Static entries from Config.ARP are honoured first, so existing
// configurations and the Table 2/Table 3 experiments are unaffected — the
// module only activates when Config.DynamicARP is set.

// ARPModule is the resolver's module descriptor.
var ARPModule = rtti.NewModule("Arp", "Arp")

// arp opcodes.
const (
	arpRequest = 1
	arpReply   = 2
)

// arpResolver is the per-stack resolver state.
type arpResolver struct {
	s       *Stack
	learned map[string]string    // ip -> mac
	waiting map[string][]*Packet // ip -> queued packets
	// Requests and Replies count protocol traffic handled.
	Requests int64
	Replies  int64
}

// ArpArrived is the resolver's event; nil when DynamicARP is off.
// (Exposed for tests and workload census inspection.)
func (s *Stack) ArpArrived() *dispatch.Event {
	if s.arpR == nil {
		return nil
	}
	return s.arpEvent
}

// ARPStats reports (requests answered, replies consumed) by the resolver.
func (s *Stack) ARPStats() (requests, replies int64) {
	if s.arpR == nil {
		return 0, 0
	}
	return s.arpR.Requests, s.arpR.Replies
}

// enableDynamicARP wires the resolver into the stack: an Ether handler
// guarded on the ARP ethertype, and the Arp.PacketArrived event it raises.
func (s *Stack) enableDynamicARP(prefix string) error {
	r := &arpResolver{s: s, learned: make(map[string]string),
		waiting: make(map[string][]*Packet)}
	sig := rtti.Sig(nil, rtti.Word, PacketType)
	ev, err := s.d.DefineEvent(prefix+"Arp.PacketArrived", sig,
		dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Arp.PacketArrived", Module: ARPModule, Sig: sig},
			Fn: func(clo any, args []any) any {
				r.input(args[1].(*Packet))
				return nil
			},
		}))
	if err != nil {
		return err
	}
	_, err = s.EtherArrived.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Arp.EtherInput", Module: ARPModule, Sig: sig},
		Fn: func(clo any, args []any) any {
			pkt := args[1].(*Packet)
			s.cpu.ChargeTo(vtime.AccountKernel, vtime.ProtoLayer)
			_, _ = ev.Raise(uint64(pkt.EtherType), pkt)
			return nil
		},
	}, dispatch.WithGuard(s.HeaderGuard("Arp.IsARP", func(word uint64, pkt *Packet) bool {
		return word == uint64(netwire.TypeARP)
	})))
	if err != nil {
		return err
	}
	s.arpR = r
	s.arpEvent = ev
	return nil
}

// lookupMAC consults static entries first, then the learned table.
func (s *Stack) lookupMAC(ip string) (string, bool) {
	if mac, ok := s.arp[ip]; ok {
		return mac, true
	}
	if s.arpR != nil {
		mac, ok := s.arpR.learned[ip]
		return mac, ok
	}
	return "", false
}

// resolveAndQueue handles a send-path miss: queue the packet and broadcast
// a who-has request. Seq carries the opcode; SrcPort/DstPort are unused.
func (r *arpResolver) resolveAndQueue(pkt *Packet) error {
	ip := pkt.DstIP
	r.waiting[ip] = append(r.waiting[ip], pkt)
	if len(r.waiting[ip]) > 1 {
		return nil // request already outstanding
	}
	r.s.cpu.ChargeTo(vtime.AccountKernel, vtime.ProtoLayer)
	return r.s.nic.Send(&netwire.Frame{
		Dst: netwire.Broadcast, EtherType: netwire.TypeARP, Size: 28,
		Payload: &Packet{
			EtherType: netwire.TypeARP,
			Seq:       arpRequest,
			SrcIP:     r.s.ip, SrcMAC: r.s.nic.Addr(),
			DstIP: ip,
		},
	})
}

// input processes one ARP packet at the resolver.
func (r *arpResolver) input(pkt *Packet) {
	switch pkt.Seq {
	case arpRequest:
		// Learn the asker opportunistically, then answer if the
		// question is for us.
		r.learn(pkt.SrcIP, pkt.SrcMAC)
		if pkt.DstIP != r.s.ip {
			return
		}
		r.Requests++
		r.s.cpu.ChargeTo(vtime.AccountKernel, vtime.ProtoLayer)
		_ = r.s.nic.Send(&netwire.Frame{
			Dst: pkt.SrcMAC, EtherType: netwire.TypeARP, Size: 28,
			Payload: &Packet{
				EtherType: netwire.TypeARP,
				Seq:       arpReply,
				SrcIP:     r.s.ip, SrcMAC: r.s.nic.Addr(),
				DstIP: pkt.SrcIP, DstMAC: pkt.SrcMAC,
			},
		})
	case arpReply:
		r.Replies++
		r.learn(pkt.SrcIP, pkt.SrcMAC)
	}
}

// learn records a mapping and flushes any packets waiting on it.
func (r *arpResolver) learn(ip, mac string) {
	if ip == "" || mac == "" {
		return
	}
	r.learned[ip] = mac
	queued := r.waiting[ip]
	delete(r.waiting, ip)
	for _, pkt := range queued {
		_ = r.s.transmit(pkt, mac)
	}
}
