package netstack

import (
	"errors"
	"testing"

	"spin/internal/kernel"
	"spin/internal/netwire"
)

// arpRig builds machines with EMPTY static ARP tables and the dynamic
// resolver loaded.
func arpRig(t *testing.T, n int) (*kernel.Machine, []*Stack, *netwire.Link) {
	t.Helper()
	first, err := kernel.Boot(kernel.Config{Name: "m0", Metered: true})
	if err != nil {
		t.Fatal(err)
	}
	link := netwire.NewLink(first.Sim, 0, 0)
	machines := []*kernel.Machine{first}
	for i := 1; i < n; i++ {
		m, err := kernel.Boot(kernel.Config{Name: "m", ShareWith: first})
		if err != nil {
			t.Fatal(err)
		}
		machines = append(machines, m)
	}
	var stacks []*Stack
	for i, m := range machines {
		nic, err := link.Attach(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		prefix := ""
		if i > 0 {
			prefix = string(rune('A'+i)) + ":"
		}
		st, err := New(Config{Dispatcher: m.Dispatcher, CPU: m.CPU, Sched: m.Sched,
			NIC: nic, IP: ipOf(i), DynamicARP: true, Prefix: prefix})
		if err != nil {
			t.Fatal(err)
		}
		stacks = append(stacks, st)
	}
	return first, stacks, link
}

func ipOf(i int) string { return "10.3.0." + string(rune('1'+i)) }

func TestDynamicARPResolvesAndDelivers(t *testing.T) {
	m, stacks, _ := arpRig(t, 2)
	src, _ := stacks[0].BindUDP(5000)
	dst, _ := stacks[1].BindUDP(7)
	// No static ARP entries anywhere: the first send triggers
	// resolution, then the queued datagram flows.
	if err := src.Send(ipOf(1), 7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	m.Sim.Run(0)
	pkt, ok := dst.Recv()
	if !ok || string(pkt.Payload) != "hello" {
		t.Fatalf("datagram lost: %v", pkt)
	}
	// The responder answered one request; the sender consumed one reply.
	reqs, _ := stacks[1].ARPStats()
	_, replies := stacks[0].ARPStats()
	if reqs != 1 || replies != 1 {
		t.Fatalf("requests=%d replies=%d", reqs, replies)
	}
	// The reverse path was learned opportunistically from the request:
	// no second resolution round.
	if err := dst.Send(ipOf(0), 5000, []byte("back")); err != nil {
		t.Fatal(err)
	}
	m.Sim.Run(0)
	if _, ok := src.Recv(); !ok {
		t.Fatal("reverse datagram lost")
	}
	reqs0, _ := stacks[0].ARPStats()
	if reqs0 != 0 {
		t.Fatalf("reverse path needed a request: %d", reqs0)
	}
}

func TestDynamicARPQueuesBurst(t *testing.T) {
	m, stacks, _ := arpRig(t, 2)
	src, _ := stacks[0].BindUDP(5000)
	dst, _ := stacks[1].BindUDP(7)
	// Three sends before any resolution completes: one request on the
	// wire, all three delivered after the reply.
	for i := 0; i < 3; i++ {
		if err := src.Send(ipOf(1), 7, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	m.Sim.Run(0)
	if dst.Pending() != 3 {
		t.Fatalf("delivered %d of 3", dst.Pending())
	}
	reqs, _ := stacks[1].ARPStats()
	if reqs != 1 {
		t.Fatalf("requests answered = %d, want 1 (burst must coalesce)", reqs)
	}
	// Order preserved through the queue.
	for i := 0; i < 3; i++ {
		pkt, _ := dst.Recv()
		if pkt.Payload[0] != byte(i) {
			t.Fatalf("reordered: got %d at %d", pkt.Payload[0], i)
		}
	}
}

func TestDynamicARPThirdPartyIgnoresForeignRequests(t *testing.T) {
	m, stacks, _ := arpRig(t, 3)
	src, _ := stacks[0].BindUDP(5000)
	_, _ = stacks[1].BindUDP(7)
	// Machine 0 resolves machine 1; machine 2 sees the broadcast but
	// must not answer. It learns the asker, though.
	if err := src.Send(ipOf(1), 7, []byte("x")); err != nil {
		t.Fatal(err)
	}
	m.Sim.Run(0)
	reqs2, _ := stacks[2].ARPStats()
	if reqs2 != 0 {
		t.Fatalf("bystander answered %d requests", reqs2)
	}
	// The bystander can now reach machine 0 without resolving.
	by, _ := stacks[2].BindUDP(9000)
	dst0, _ := stacks[0].BindUDP(9001)
	if err := by.Send(ipOf(0), 9001, []byte("learned")); err != nil {
		t.Fatal(err)
	}
	m.Sim.Run(0)
	if _, ok := dst0.Recv(); !ok {
		t.Fatal("opportunistically learned entry unusable")
	}
}

func TestDynamicARPUnresolvableHostQueuesForever(t *testing.T) {
	m, stacks, link := arpRig(t, 1)
	src, _ := stacks[0].BindUDP(5000)
	// Nobody owns 10.3.0.9: the packet queues, the request broadcast is
	// dropped (sole NIC on the wire), nothing crashes.
	if err := src.Send("10.3.0.9", 7, []byte("void")); err != nil {
		t.Fatal(err)
	}
	m.Sim.Run(0)
	if link.Dropped == 0 {
		t.Fatal("lonely broadcast should be counted dropped")
	}
}

func TestStaticEntriesTakePrecedence(t *testing.T) {
	// With a static table AND dynamic ARP, the static entry wins and no
	// request goes out.
	first, err := kernel.Boot(kernel.Config{Name: "m0", Metered: true})
	if err != nil {
		t.Fatal(err)
	}
	second, err := kernel.Boot(kernel.Config{Name: "m1", ShareWith: first})
	if err != nil {
		t.Fatal(err)
	}
	link := netwire.NewLink(first.Sim, 0, 0)
	nicA, _ := link.Attach("a")
	nicB, _ := link.Attach("b")
	arp := map[string]string{"10.3.0.1": "a", "10.3.0.2": "b"}
	sa, _ := New(Config{Dispatcher: first.Dispatcher, CPU: first.CPU,
		Sched: first.Sched, NIC: nicA, IP: "10.3.0.1", ARP: arp, DynamicARP: true})
	sb, _ := New(Config{Dispatcher: second.Dispatcher, CPU: second.CPU,
		Sched: second.Sched, NIC: nicB, IP: "10.3.0.2", ARP: arp, DynamicARP: true,
		Prefix: "B:"})
	src, _ := sa.BindUDP(5000)
	dst, _ := sb.BindUDP(7)
	_ = src.Send("10.3.0.2", 7, []byte("x"))
	first.Sim.Run(0)
	if dst.Pending() != 1 {
		t.Fatal("datagram lost")
	}
	reqs, _ := sb.ARPStats()
	if reqs != 0 {
		t.Fatalf("request sent despite static entry: %d", reqs)
	}
}

func TestWithoutDynamicARPMissStillFails(t *testing.T) {
	r := twoMachines(t)
	sock, _ := r.sa.BindUDP(5000)
	if err := sock.Send("10.9.9.9", 7, []byte("x")); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
	if r.sa.ArpArrived() != nil {
		t.Fatal("resolver loaded without DynamicARP")
	}
}

func TestArpEventCensus(t *testing.T) {
	m, stacks, _ := arpRig(t, 2)
	src, _ := stacks[0].BindUDP(5000)
	_, _ = stacks[1].BindUDP(7)
	_ = src.Send(ipOf(1), 7, []byte("x"))
	m.Sim.Run(0)
	// The responder's Arp.PacketArrived saw the request; the sender's
	// saw the reply.
	if got := stacks[1].ArpArrived().Stats().Raised; got != 1 {
		t.Fatalf("responder arp raises = %d", got)
	}
	if got := stacks[0].ArpArrived().Stats().Raised; got != 1 {
		t.Fatalf("sender arp raises = %d", got)
	}
}
