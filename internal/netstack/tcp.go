package netstack

import (
	"fmt"

	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/vtime"
)

// The TCP module. Segment demultiplexing is the intrinsic handler of
// Tcp.PacketArrived: connections are internal state, not separate event
// handlers (extensions that want per-port visibility install their own
// guarded handlers next to the intrinsic, as the OSF emulator's port
// watcher does for Table 3).
//
// The transport is deliberately simplified: there is no retransmission, no
// window management, and an unbounded send window; every data segment is
// acknowledged with a pure ACK, which keeps segment counts faithful to a
// real trace's data-plus-acks mix. The calibrated wire is lossless by
// default; under netwire fault injection the transport stays
// retransmission-free and instead enforces in-order delivery (out-of-order
// and duplicate segments are dropped and counted), leaving recovery to the
// layer above — internal/remote aborts the connection on deadline, redials,
// and relies on idempotent retry for exactly-once effects.
//
// Teardown discipline (the abrupt-peer-death audit): every terminal
// transition reaps the endpoint from the demux table and rouses parked
// strands, so a dead peer cannot strand connections, waiters, or timers.
// Segments that match no endpoint are answered with RST (except RSTs
// themselves and pure ACKs), an embryonic handshake that never completes is
// reaped by a one-shot timer, and Abort gives the layer above an immediate
// RST-and-reap teardown for deadline enforcement.

// TCP connection states.
type tcpConnState int

const (
	tcpSynSent tcpConnState = iota
	tcpSynRcvd
	tcpEstablished
	tcpClosed
)

func (s tcpConnState) String() string {
	switch s {
	case tcpSynSent:
		return "syn-sent"
	case tcpSynRcvd:
		return "syn-rcvd"
	case tcpEstablished:
		return "established"
	case tcpClosed:
		return "closed"
	}
	return "state(?)"
}

type connKey struct {
	remoteIP   string
	remotePort uint16
	localPort  uint16
}

// HandshakeTimeout bounds how long an embryonic connection (SYN sent or
// received, handshake incomplete) may sit in the demux table before being
// reaped. Generous against the calibrated network's ~475us round trip.
const HandshakeTimeout = vtime.Duration(10 * 1000 * 1000) // 10ms

type tcpState struct {
	listeners map[uint16]*TCPListener
	conns     map[connKey]*TCPConn
	nextPort  uint16
	// Resets counts segments that matched no connection or listener and
	// were answered with RST.
	Resets int64
	// OutOfOrder counts data/FIN segments dropped because their sequence
	// number did not match the expected in-order position (lost or
	// duplicated predecessors under fault injection).
	OutOfOrder int64
	// Reaped counts endpoints removed from the demux table.
	Reaped int64
}

// TCPStats is a snapshot of stack-wide TCP counters, for leak auditing and
// the remote drill's report.
type TCPStats struct {
	Conns      int
	Resets     int64
	OutOfOrder int64
	Reaped     int64
}

// TCPStats snapshots the TCP module's counters.
func (s *Stack) TCPStats() TCPStats {
	return TCPStats{
		Conns:      len(s.tcp.conns),
		Resets:     s.tcp.Resets,
		OutOfOrder: s.tcp.OutOfOrder,
		Reaped:     s.tcp.Reaped,
	}
}

// TCPConns reports the number of live endpoints in the demux table.
func (s *Stack) TCPConns() int { return len(s.tcp.conns) }

func (t *tcpState) init() {
	t.listeners = make(map[uint16]*TCPListener)
	t.conns = make(map[connKey]*TCPConn)
	t.nextPort = 32768
}

// TCPListener accepts inbound connections on a port.
type TCPListener struct {
	stack   *Stack
	port    uint16
	pending []*TCPConn
	waiter  *sched.Strand
}

// ListenTCP reserves a TCP port for inbound connections.
func (s *Stack) ListenTCP(port uint16) (*TCPListener, error) {
	if _, dup := s.tcp.listeners[port]; dup {
		return nil, fmt.Errorf("%w: tcp/%d", ErrPortInUse, port)
	}
	l := &TCPListener{stack: s, port: port}
	s.tcp.listeners[port] = l
	return l, nil
}

// Port returns the listening port.
func (l *TCPListener) Port() uint16 { return l.port }

// Accept pops an established inbound connection, reporting false when none
// is ready.
func (l *TCPListener) Accept() (*TCPConn, bool) {
	if len(l.pending) == 0 {
		return nil, false
	}
	c := l.pending[0]
	l.pending = l.pending[1:]
	return c, true
}

// Ready reports whether Accept would succeed.
func (l *TCPListener) Ready() bool { return len(l.pending) > 0 }

// AwaitConn registers st for wakeup when a connection becomes acceptable.
func (l *TCPListener) AwaitConn(st *sched.Strand) { l.waiter = st }

// Close stops listening. Established connections are unaffected.
func (l *TCPListener) Close() {
	if l.stack.tcp.listeners[l.port] == l {
		delete(l.stack.tcp.listeners, l.port)
	}
}

// TCPConnType is the rtti type of connection endpoints, so events can
// carry a *TCPConn in a typed signature (the httpd's accept event).
var TCPConnType = rtti.NewRef("TCPConn", nil)

// TCPConn is one connection endpoint.
type TCPConn struct {
	stack      *Stack
	localPort  uint16
	remotePort uint16
	remoteIP   string
	state      tcpConnState

	seq, ack uint32

	recvQ      [][]byte
	recvWaiter *sched.Strand
	connWaiter *sched.Strand
	eof        bool

	// SegsIn, SegsOut, BytesIn, BytesOut count traffic.
	SegsIn, SegsOut   int64
	BytesIn, BytesOut int64
}

// RTTIType implements rtti.Described.
func (c *TCPConn) RTTIType() rtti.Type { return TCPConnType }

// DialTCP opens a connection to dstIP:dstPort. The SYN is sent
// immediately; the caller's strand should block until Established reports
// true (use AwaitEstablished).
func (s *Stack) DialTCP(dstIP string, dstPort uint16) (*TCPConn, error) {
	port := s.tcp.nextPort
	s.tcp.nextPort++
	c := &TCPConn{stack: s, localPort: port, remotePort: dstPort, remoteIP: dstIP,
		state: tcpSynSent, seq: 1}
	s.tcp.conns[connKey{dstIP, dstPort, port}] = c
	s.armHandshakeTimer(c)
	if err := c.sendSeg(FlagSYN, nil); err != nil {
		return nil, err
	}
	return c, nil
}

// armHandshakeTimer schedules a one-shot reap of an embryonic endpoint
// whose handshake never completes — the peer died mid-open or a handshake
// segment was lost — so half-open connections cannot accumulate in the
// demux table. The timer is a no-op once the connection establishes (or is
// otherwise reaped). Without a simulator, timers are disabled and the
// audit relies on Abort alone.
func (s *Stack) armHandshakeTimer(c *TCPConn) {
	_ = s.sched.After(HandshakeTimeout, func() {
		if c.state == tcpSynSent || c.state == tcpSynRcvd {
			c.eof = true
			c.reap()
		}
	})
}

// Established reports whether the handshake has completed.
func (c *TCPConn) Established() bool { return c.state == tcpEstablished }

// Closed reports whether the connection has terminated.
func (c *TCPConn) Closed() bool { return c.state == tcpClosed }

// EOF reports whether the peer has finished sending.
func (c *TCPConn) EOF() bool { return c.eof && len(c.recvQ) == 0 }

// AwaitEstablished registers st for wakeup when the handshake completes.
func (c *TCPConn) AwaitEstablished(st *sched.Strand) { c.connWaiter = st }

// LocalPort and RemotePort identify the endpoints.
func (c *TCPConn) LocalPort() uint16  { return c.localPort }
func (c *TCPConn) RemotePort() uint16 { return c.remotePort }

// Send transmits data, segmenting at the MSS. Each segment is charged one
// socket operation plus the TCP header build; the receiver acknowledges
// each segment with a pure ACK.
func (c *TCPConn) Send(data []byte) error {
	if c.state != tcpEstablished {
		return fmt.Errorf("%w (%v)", ErrNotStarted, c.state)
	}
	for len(data) > 0 {
		n := len(data)
		if n > MSS {
			n = MSS
		}
		seg := data[:n]
		data = data[n:]
		c.stack.cpu.Charge(vtime.SocketOp)
		if err := c.sendSeg(FlagPSH|FlagACK, seg); err != nil {
			return err
		}
		c.seq += uint32(n)
		c.BytesOut += int64(n)
	}
	return nil
}

// Readable reports whether Recv would succeed or EOF has been reached.
func (c *TCPConn) Readable() bool { return len(c.recvQ) > 0 || c.eof }

// Recv pops the next received segment payload.
func (c *TCPConn) Recv() ([]byte, bool) {
	if len(c.recvQ) == 0 {
		return nil, false
	}
	d := c.recvQ[0]
	c.recvQ = c.recvQ[1:]
	return d, true
}

// AwaitData registers st for wakeup on the next delivery or EOF.
func (c *TCPConn) AwaitData(st *sched.Strand) { c.recvWaiter = st }

// Close sends FIN and marks the connection closed locally. If the peer has
// already finished sending, both directions are shut and the endpoint is
// reaped; otherwise it stays in the demux table until the peer's FIN (or
// RST) arrives.
func (c *TCPConn) Close() error {
	if c.state == tcpClosed {
		return nil
	}
	err := c.sendSeg(FlagFIN|FlagACK, nil)
	c.state = tcpClosed
	if c.eof {
		c.reap()
	}
	return err
}

// Abort tears the endpoint down immediately: an RST is sent (best effort)
// and the connection is reaped without waiting for the peer. This is the
// teardown the remote layer uses when a deadline expires on an unhealthy
// connection.
func (c *TCPConn) Abort() {
	if c.stack.tcp.conns[connKey{c.remoteIP, c.remotePort, c.localPort}] != c {
		return // already reaped
	}
	if c.state == tcpEstablished || c.state == tcpSynRcvd {
		_ = c.sendSeg(FlagRST, nil)
	}
	c.eof = true
	c.reap()
}

// reap removes the endpoint from the demux table and rouses parked
// waiters, so strands blocked on establishment or data observe the
// terminal state instead of sleeping forever.
func (c *TCPConn) reap() {
	c.state = tcpClosed
	key := connKey{c.remoteIP, c.remotePort, c.localPort}
	if c.stack.tcp.conns[key] == c {
		delete(c.stack.tcp.conns, key)
		c.stack.tcp.Reaped++
	}
	c.stack.wake(&c.connWaiter)
	c.stack.wake(&c.recvWaiter)
}

// sendSeg builds and transmits one segment.
func (c *TCPConn) sendSeg(flags uint8, payload []byte) error {
	c.stack.cpu.Charge(vtime.ProtoLayer) // TCP header build
	c.SegsOut++
	return c.stack.sendIP(&Packet{
		DstIP: c.remoteIP, Proto: ProtoTCP,
		SrcPort: c.localPort, DstPort: c.remotePort,
		Seq: c.seq, Ack: c.ack, Flags: flags,
		Payload: payload,
	})
}

// wake rouses a parked strand pointer, clearing it.
func (s *Stack) wake(w **sched.Strand) {
	if *w != nil {
		st := *w
		*w = nil
		s.sched.Wakeup(st)
	}
}

// tcpInput is the Tcp.PacketArrived intrinsic handler: segment
// demultiplexing and the connection state machine.
func (s *Stack) tcpInput(pkt *Packet) {
	s.cpu.ChargeTo(vtime.AccountKernel, vtime.SocketOp)
	key := connKey{pkt.SrcIP, pkt.SrcPort, pkt.DstPort}
	c, ok := s.tcp.conns[key]
	if !ok {
		// New inbound connection?
		if pkt.Flags&FlagSYN != 0 && pkt.Flags&FlagACK == 0 {
			l, listening := s.tcp.listeners[pkt.DstPort]
			if !listening {
				// Connection refused.
				s.tcp.Resets++
				_ = s.sendRST(pkt)
				return
			}
			c = &TCPConn{stack: s, localPort: pkt.DstPort,
				remotePort: pkt.SrcPort, remoteIP: pkt.SrcIP,
				state: tcpSynRcvd, seq: 1, ack: pkt.Seq + 1}
			s.tcp.conns[key] = c
			s.armHandshakeTimer(c)
			c.SegsIn++
			_ = c.sendSeg(FlagSYN|FlagACK, nil)
			c.seq++
			_ = l // accepted on the completing ACK below
			return
		}
		// Answer with RST so the peer's endpoint tears down promptly
		// instead of waiting out its deadline — except for RSTs themselves
		// (no RST-for-RST storms) and pure ACKs (the final ACK of a close
		// races the reap harmlessly).
		if pkt.Flags&FlagRST == 0 && (len(pkt.Payload) > 0 || pkt.Flags&(FlagSYN|FlagFIN) != 0) {
			s.tcp.Resets++
			_ = s.sendRST(pkt)
		}
		return
	}

	c.SegsIn++
	switch {
	case pkt.Flags&FlagRST != 0:
		// Peer aborted (or refused): terminal, no reply.
		c.eof = true
		c.reap()
	case c.state == tcpSynSent && pkt.Flags&(FlagSYN|FlagACK) == FlagSYN|FlagACK:
		// Active open completes: ACK the SYN-ACK.
		c.state = tcpEstablished
		c.ack = pkt.Seq + 1
		c.seq++
		_ = c.sendSeg(FlagACK, nil)
		s.wake(&c.connWaiter)

	case c.state == tcpSynRcvd && pkt.Flags&FlagACK != 0 && pkt.Flags&FlagSYN == 0:
		// Passive open completes: hand to the listener.
		c.state = tcpEstablished
		if l, ok := s.tcp.listeners[c.localPort]; ok {
			l.pending = append(l.pending, c)
			s.wake(&l.waiter)
		}
		// A completing ACK may piggyback data.
		if len(pkt.Payload) > 0 {
			c.deliverData(pkt)
		}

	case pkt.Flags&FlagFIN != 0:
		if pkt.Seq != c.ack {
			// A lost predecessor (hole) or a duplicated FIN: drop it and
			// re-assert the expected position.
			s.tcp.OutOfOrder++
			_ = c.sendSeg(FlagACK, nil)
			return
		}
		c.eof = true
		c.ack = pkt.Seq + 1
		_ = c.sendSeg(FlagACK, nil)
		s.wake(&c.recvWaiter)
		if c.state == tcpClosed {
			c.reap() // both FINs seen: full teardown
		}

	case len(pkt.Payload) > 0 && c.state == tcpEstablished:
		c.deliverData(pkt)
		_ = c.sendSeg(FlagACK, nil)

	default:
		// Pure ACK: nothing to do with an unbounded window.
	}
}

// sendRST answers a segment that matched no endpoint, echoing its
// identifiers back so the sender can match the reset to its connection.
func (s *Stack) sendRST(pkt *Packet) error {
	s.cpu.ChargeTo(vtime.AccountKernel, vtime.ProtoLayer)
	return s.sendIP(&Packet{
		DstIP: pkt.SrcIP, Proto: ProtoTCP,
		SrcPort: pkt.DstPort, DstPort: pkt.SrcPort,
		Seq: pkt.Ack, Ack: pkt.Seq, Flags: FlagRST,
	})
}

// deliverData queues an in-order data segment; a segment whose sequence
// number is not the expected next byte (a hole from a dropped predecessor,
// or a duplicate) is discarded and counted — there is no reassembly queue.
func (c *TCPConn) deliverData(pkt *Packet) {
	if pkt.Seq != c.ack {
		c.stack.tcp.OutOfOrder++
		return
	}
	c.stack.cpu.ChargeTo(vtime.AccountKernel, vtime.SocketOp)
	c.recvQ = append(c.recvQ, pkt.Payload)
	c.ack = pkt.Seq + uint32(len(pkt.Payload))
	c.BytesIn += int64(len(pkt.Payload))
	c.stack.wake(&c.recvWaiter)
}
