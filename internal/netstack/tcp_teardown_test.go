package netstack

import (
	"testing"

	"spin/internal/sched"
)

// The abrupt-peer-death audit: every path out of a TCP connection must
// empty the demux table on both machines and leave no pending simulator
// timers behind (the handshake timers are one-shot and drain with the
// run). Leaks here would accumulate across the remote layer's redials.

// drain runs the shared timeline to quiescence and asserts no events leak.
func (r *rig) drain(t *testing.T) {
	t.Helper()
	r.a.Sim.Run(500000)
	if p := r.a.Sim.Pending(); p != 0 {
		t.Fatalf("simulator still has %d pending events after quiescence", p)
	}
}

func assertNoConns(t *testing.T, r *rig) {
	t.Helper()
	if n := r.sa.TCPConns(); n != 0 {
		t.Fatalf("machine A leaked %d TCP endpoints", n)
	}
	if n := r.sb.TCPConns(); n != 0 {
		t.Fatalf("machine B leaked %d TCP endpoints", n)
	}
}

// dialEstablished runs a handshake to completion and returns both ends.
func dialEstablished(t *testing.T, r *rig, port uint16) (client, server *TCPConn) {
	t.Helper()
	l, err := r.sb.ListenTCP(port)
	if err != nil {
		t.Fatal(err)
	}
	client, err = r.sa.DialTCP("10.0.0.2", port)
	if err != nil {
		t.Fatal(err)
	}
	r.run()
	server, _ = l.Accept()
	if server == nil || !client.Established() {
		t.Fatal("handshake never completed")
	}
	return client, server
}

func TestTCPTeardownCleanCloseReapsBothEnds(t *testing.T) {
	r := twoMachines(t)
	client, server := dialEstablished(t, r, 6000)
	if err := client.Send([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	r.b.Sched.Spawn("server-close", 1, func(st *sched.Strand) sched.Status {
		for {
			if _, ok := server.Recv(); !ok {
				break
			}
		}
		if server.EOF() {
			_ = server.Close()
			return sched.Done
		}
		server.AwaitData(st)
		return sched.Block
	})
	r.drain(t)
	assertNoConns(t, r)
	if !client.Closed() || !server.Closed() {
		t.Fatal("endpoints not closed")
	}
}

func TestTCPTeardownAbortMidStreamResetsPeer(t *testing.T) {
	r := twoMachines(t)
	client, server := dialEstablished(t, r, 6001)
	if err := client.Send([]byte("first")); err != nil {
		t.Fatal(err)
	}
	client.Abort() // peer death mid-stream
	woken := false
	r.b.Sched.Spawn("server-reader", 1, func(st *sched.Strand) sched.Status {
		if server.Closed() || server.EOF() {
			woken = true
			return sched.Done
		}
		server.AwaitData(st)
		return sched.Block
	})
	r.drain(t)
	assertNoConns(t, r)
	if !server.Closed() {
		t.Fatal("RST did not close the server endpoint")
	}
	if !woken {
		t.Fatal("parked reader strand was never roused by the reset")
	}
}

func TestTCPTeardownMidHandshakePartitionReapsByTimer(t *testing.T) {
	// The peer is unreachable before the SYN even lands: the client
	// endpoint sits in syn-sent until the embryonic timer reaps it.
	r := twoMachines(t)
	_, _ = r.sb.ListenTCP(6002)
	r.link.Partition("mac-a", "mac-b")
	client, err := r.sa.DialTCP("10.0.0.2", 6002)
	if err != nil {
		t.Fatal(err)
	}
	if before := r.sa.TCPConns(); before != 1 {
		t.Fatalf("dial registered %d conns", before)
	}
	r.drain(t)
	assertNoConns(t, r)
	if !client.Closed() || !client.EOF() {
		t.Fatal("embryonic endpoint not terminal after timeout")
	}
}

func TestTCPTeardownHalfOpenServerReapsByTimer(t *testing.T) {
	// A SYN arrives from a peer that dies immediately (its address is
	// unroutable, so the SYN-ACK cannot even be sent): the server-side
	// embryonic endpoint must be reaped by the handshake timer.
	r := twoMachines(t)
	_, _ = r.sb.ListenTCP(6003)
	r.sb.tcpInput(&Packet{SrcIP: "10.0.0.9", SrcPort: 5555, DstPort: 6003,
		Proto: ProtoTCP, Seq: 1, Flags: FlagSYN})
	if n := r.sb.TCPConns(); n != 1 {
		t.Fatalf("SYN registered %d conns", n)
	}
	r.drain(t)
	assertNoConns(t, r)
	if r.sb.TCPStats().Reaped != 1 {
		t.Fatalf("stats = %+v", r.sb.TCPStats())
	}
}

func TestTCPTeardownStraySynAckDrawsReset(t *testing.T) {
	// A SYN-ACK for a connection the client no longer has (it died and
	// rebooted mid-handshake) is answered with RST, which tears down the
	// server's half-open endpoint immediately — no timer wait needed.
	r := twoMachines(t)
	_, _ = r.sb.ListenTCP(6004)
	client, err := r.sa.DialTCP("10.0.0.2", 6004)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the client dying before the SYN-ACK returns: reap its
	// endpoint directly (as a crashed stack would lose all state).
	client.reap()
	r.drain(t)
	assertNoConns(t, r)
	if r.sa.TCPStats().Resets == 0 {
		t.Fatal("stray SYN-ACK was not answered with RST")
	}
}

func TestTCPOutOfOrderSegmentsDroppedAndCounted(t *testing.T) {
	r := twoMachines(t)
	client, server := dialEstablished(t, r, 6005)
	if err := client.Send([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	r.run()
	// A duplicated segment (same seq) and a hole (seq far ahead) must
	// both be discarded without corrupting the stream.
	dup := &Packet{SrcIP: "10.0.0.1", SrcPort: client.LocalPort(), DstPort: 6005,
		Proto: ProtoTCP, Seq: 2, Flags: FlagPSH | FlagACK, Payload: []byte("abc")}
	hole := &Packet{SrcIP: "10.0.0.1", SrcPort: client.LocalPort(), DstPort: 6005,
		Proto: ProtoTCP, Seq: 999, Flags: FlagPSH | FlagACK, Payload: []byte("zzz")}
	r.sb.tcpInput(dup)
	r.sb.tcpInput(hole)
	r.drain(t)
	if server.BytesIn != 3 {
		t.Fatalf("BytesIn = %d, stream corrupted", server.BytesIn)
	}
	if got := r.sb.TCPStats().OutOfOrder; got != 2 {
		t.Fatalf("out-of-order count = %d, want 2", got)
	}
	d, _ := server.Recv()
	if string(d) != "abc" {
		t.Fatalf("payload = %q", d)
	}
}
