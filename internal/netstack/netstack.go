// Package netstack is the event-structured TCP/IP stack substrate,
// modelled on SPIN's extensible protocol architecture
// ([Fiuczynski & Bershad 96], paper §3.2): each protocol layer is a module
// that announces packet arrival through an event, and the next layer up is
// just another handler with a guard discriminating on a header field.
//
// The receive path for a frame is therefore a chain of event raises:
//
//	NIC interrupt -> Ether.PacketArrived(ethertype, pkt)
//	              -> Ip.PacketArrived(protocol, pkt)     [guard: type == IP]
//	              -> Udp.PacketArrived(dstport, pkt)     [guard: proto == UDP]
//	              -> socket handler                      [guard: port == bound]
//
// Guards "filter packets from the network by discriminating on fields in
// the protocol header (e.g., guards may discriminate on the UDP or TCP
// port destination field)" — exactly the structure Table 2 measures.
package netstack

import (
	"errors"
	"fmt"

	"spin/internal/codegen"
	"spin/internal/dispatch"
	"spin/internal/netwire"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/vtime"
)

// IP protocol numbers.
const (
	ProtoICMP = 1
	ProtoIGMP = 2
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// TCP header flags.
const (
	FlagSYN uint8 = 1 << iota
	FlagACK
	FlagFIN
	FlagPSH
	FlagRST
)

// Header sizes for wire accounting.
const (
	ipHeader  = 20
	udpHeader = 8
	tcpHeader = 20
	// MSS is the TCP maximum segment size on Ethernet.
	MSS = netwire.MTU - ipHeader - tcpHeader
)

// Module descriptors: each protocol layer is its own module and holds
// authority over its PacketArrived event.
var (
	EtherModule = rtti.NewModule("Ether", "Ether")
	IPModule    = rtti.NewModule("Ip", "Ip")
	UDPModule   = rtti.NewModule("Udp", "Udp")
	TCPModule   = rtti.NewModule("Tcp", "Tcp")
)

// PacketType is the rtti type of parsed packets.
var PacketType = rtti.NewRef("Packet", nil)

// Packet is a parsed packet view, shared by all layers. (A production
// stack would reparse headers per layer; the simulation charges the layer
// costs explicitly and keeps one struct.)
type Packet struct {
	EtherType uint16
	SrcMAC    string
	DstMAC    string

	SrcIP, DstIP string
	Proto        uint8

	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8

	Payload []byte
}

// RTTIType implements rtti.Described.
func (p *Packet) RTTIType() rtti.Type { return PacketType }

// WireSize reports the Ethernet payload size of the packet.
func (p *Packet) WireSize() int {
	switch p.Proto {
	case ProtoUDP:
		return len(p.Payload) + udpHeader + ipHeader
	case ProtoTCP:
		return len(p.Payload) + tcpHeader + ipHeader
	default:
		return len(p.Payload) + ipHeader
	}
}

// Errors.
var (
	ErrPortInUse  = errors.New("netstack: port already bound")
	ErrNoRoute    = errors.New("netstack: no ARP entry for destination")
	ErrClosed     = errors.New("netstack: connection closed")
	ErrNotStarted = errors.New("netstack: connection not established")
)

// Config assembles a stack from kernel substrates.
type Config struct {
	Dispatcher *dispatch.Dispatcher
	CPU        *vtime.CPU
	Sched      *sched.Scheduler
	NIC        *netwire.NIC
	// IP is this host's address.
	IP string
	// ARP statically maps peer IP addresses to link addresses.
	ARP map[string]string
	// Prefix namespaces the stack's event names (e.g. "B:" for the
	// second machine of a two-machine simulation, whose dispatcher is
	// distinct anyway; the prefix matters only for diagnostics).
	Prefix string
	// InlinePortGuards makes BindUDP install its port guard as an
	// inlinable ArgEq predicate instead of an out-of-line header-parsing
	// procedure. Predicate guards cost less per evaluation and are
	// eligible for the code generator's decision-tree optimization
	// (§3.2 future work; codegen.Options.EnableDecisionTree).
	InlinePortGuards bool
	// DynamicARP loads the ARP resolver module: link addresses are
	// learned from request/reply traffic over the broadcast segment, and
	// the static ARP table becomes optional (it still takes precedence
	// when present). See arp.go.
	DynamicARP bool
}

// Stack is one host's protocol stack.
type Stack struct {
	d            *dispatch.Dispatcher
	cpu          *vtime.CPU
	sched        *sched.Scheduler
	nic          *netwire.NIC
	ip           string
	arp          map[string]string
	inlineGuards bool

	// The layer events (Table 3's protocol rows).
	EtherArrived *dispatch.Event
	IPArrived    *dispatch.Event
	UDPArrived   *dispatch.Event
	TCPArrived   *dispatch.Event

	udpSocks map[uint16]*UDPSocket
	tcp      tcpState
	arpR     *arpResolver
	arpEvent *dispatch.Event

	// EtherFrames, IPPackets count traffic through each layer's
	// intrinsic handler. UDPDrops counts datagrams for unbound ports
	// (the UDP event's default handler).
	EtherFrames int64
	IPPackets   int64
	UDPDrops    int64
}

// New builds the stack and wires the receive chain. Each layer's
// PacketArrived event is defined with the layer's own intrinsic handler
// (bookkeeping); the layer above installs a guarded handler, mirroring how
// SPIN composed its protocol graph from extensions.
func New(cfg Config) (*Stack, error) {
	s := &Stack{
		d: cfg.Dispatcher, cpu: cfg.CPU, sched: cfg.Sched, nic: cfg.NIC,
		ip: cfg.IP, arp: cfg.ARP, inlineGuards: cfg.InlinePortGuards,
		udpSocks: make(map[uint16]*UDPSocket),
	}
	s.tcp.init()
	sig := rtti.Sig(nil, rtti.Word, PacketType)
	p := cfg.Prefix

	var err error
	s.EtherArrived, err = cfg.Dispatcher.DefineEvent(p+"Ether.PacketArrived", sig,
		dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Ether.PacketArrived", Module: EtherModule, Sig: sig},
			Fn:   func(clo any, args []any) any { s.EtherFrames++; return nil },
		}))
	if err != nil {
		return nil, err
	}
	s.IPArrived, err = cfg.Dispatcher.DefineEvent(p+"Ip.PacketArrived", sig,
		dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Ip.PacketArrived", Module: IPModule, Sig: sig},
			Fn:   func(clo any, args []any) any { s.IPPackets++; return nil },
		}))
	if err != nil {
		return nil, err
	}
	// Udp.PacketArrived has no intrinsic handler: bound sockets are its
	// only handlers, so the drop-counting default handler below runs
	// exactly when a datagram reaches an unbound port.
	s.UDPArrived, err = cfg.Dispatcher.DefineEvent(p+"Udp.PacketArrived", sig,
		dispatch.WithOwner(UDPModule))
	if err != nil {
		return nil, err
	}
	// Datagrams that reach UDP but match no socket are dropped; the
	// event's default handler counts them (it runs only when no socket
	// handler fired — §2.3).
	err = s.UDPArrived.SetDefaultHandler(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Udp.Drop", Module: UDPModule, Sig: sig},
		Fn:   func(clo any, args []any) any { s.UDPDrops++; return nil },
	})
	if err != nil {
		return nil, err
	}
	s.TCPArrived, err = cfg.Dispatcher.DefineEvent(p+"Tcp.PacketArrived", sig,
		dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Tcp.PacketArrived", Module: TCPModule, Sig: sig},
			Fn: func(clo any, args []any) any {
				s.tcpInput(args[1].(*Packet))
				return nil
			},
		}))
	if err != nil {
		return nil, err
	}

	// The IP module's handler on Ether, guarded on the ethertype field.
	_, err = s.EtherArrived.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Ip.EtherInput", Module: IPModule, Sig: sig},
		Fn: func(clo any, args []any) any {
			pkt := args[1].(*Packet)
			s.cpu.ChargeTo(vtime.AccountKernel, vtime.ProtoLayer)
			_, _ = s.IPArrived.Raise(uint64(pkt.Proto), pkt)
			return nil
		},
	}, dispatch.WithGuard(s.HeaderGuard("Ip.IsIP", func(word uint64, pkt *Packet) bool {
		return word == uint64(netwire.TypeIP)
	})))
	if err != nil {
		return nil, err
	}

	// UDP's and TCP's handlers on IP, guarded on the protocol field.
	_, err = s.IPArrived.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Udp.IpInput", Module: UDPModule, Sig: sig},
		Fn: func(clo any, args []any) any {
			pkt := args[1].(*Packet)
			s.cpu.ChargeTo(vtime.AccountKernel, vtime.ProtoLayer)
			_, _ = s.UDPArrived.Raise(uint64(pkt.DstPort), pkt)
			return nil
		},
	}, dispatch.WithGuard(s.HeaderGuard("Udp.IsUDP", func(word uint64, pkt *Packet) bool {
		return word == ProtoUDP
	})))
	if err != nil {
		return nil, err
	}
	_, err = s.IPArrived.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Tcp.IpInput", Module: TCPModule, Sig: sig},
		Fn: func(clo any, args []any) any {
			pkt := args[1].(*Packet)
			s.cpu.ChargeTo(vtime.AccountKernel, vtime.ProtoLayer)
			_, _ = s.TCPArrived.Raise(uint64(pkt.DstPort), pkt)
			return nil
		},
	}, dispatch.WithGuard(s.HeaderGuard("Tcp.IsTCP", func(word uint64, pkt *Packet) bool {
		return word == ProtoTCP
	})))
	if err != nil {
		return nil, err
	}

	// The NIC receive interrupt: field the interrupt, parse the frame,
	// and announce it.
	if cfg.DynamicARP {
		if err := s.enableDynamicARP(p); err != nil {
			return nil, err
		}
	}

	// Frames landing at the same virtual instant (back-to-back on the
	// wire) arrive as one RX train and enter the dispatcher through the
	// batched raise ingress. The per-frame costs are unchanged — one
	// interrupt and one Ethernet header parse each, and the metered
	// dispatcher keeps per-frame virtual-time charges identical to the
	// single-raise path — batching amortizes only the dispatch ingress.
	cfg.NIC.SetBatchReceiver(func(fs []*netwire.Frame) {
		flat := make([]any, 0, 2*len(fs))
		for _, f := range fs {
			s.cpu.ChargeTo(vtime.AccountKernel, vtime.Interrupt)
			s.cpu.ChargeTo(vtime.AccountKernel, vtime.ProtoLayer) // Ethernet header parse
			pkt, ok := f.Payload.(*Packet)
			if !ok {
				pkt = &Packet{EtherType: f.EtherType, SrcMAC: f.Src, DstMAC: f.Dst}
			}
			flat = append(flat, uint64(pkt.EtherType), pkt)
		}
		s.EtherArrived.RaiseBatch2(flat)
	})
	return s, nil
}

// IP returns the host address.
func (s *Stack) IP() string { return s.ip }

// HeaderGuard builds a FUNCTIONAL out-of-line guard over (word, packet)
// that charges the paper-calibrated header-discrimination cost. Guards of
// this shape are what Table 2 installs in quantity.
func (s *Stack) HeaderGuard(name string, pred func(word uint64, pkt *Packet) bool) dispatch.Guard {
	return dispatch.Guard{
		Proc: &rtti.Proc{Name: name, Module: UDPModule, Functional: true,
			Sig: rtti.Sig(rtti.Bool, rtti.Word, PacketType)},
		Fn: func(clo any, args []any) bool {
			s.cpu.Charge(vtime.NetGuardEval)
			return pred(args[0].(uint64), args[1].(*Packet))
		},
	}
}

// PortGuard matches the destination port. With InlinePortGuards it is an
// inlinable (and decision-tree-eligible) ArgEq predicate; otherwise an
// out-of-line header-parsing guard charged at the paper's calibrated cost.
func (s *Stack) PortGuard(name string, port uint16) dispatch.Guard {
	if s.inlineGuards {
		return dispatch.Guard{Pred: codegen.ArgEq(0, uint64(port))}
	}
	want := uint64(port)
	return s.HeaderGuard(name, func(word uint64, pkt *Packet) bool { return word == want })
}

// sendIP transmits pkt to its destination IP: builds the IP and Ethernet
// headers (one ProtoLayer each) and hands the frame to the NIC. With the
// dynamic ARP resolver loaded, an unresolved destination queues the packet
// behind a broadcast who-has request instead of failing.
func (s *Stack) sendIP(pkt *Packet) error {
	pkt.SrcIP = s.ip
	mac, ok := s.lookupMAC(pkt.DstIP)
	if !ok {
		if s.arpR != nil {
			s.cpu.ChargeTo(vtime.AccountKernel, vtime.ProtoLayer) // IP header build
			return s.arpR.resolveAndQueue(pkt)
		}
		return fmt.Errorf("%w: %s", ErrNoRoute, pkt.DstIP)
	}
	s.cpu.ChargeTo(vtime.AccountKernel, vtime.ProtoLayer) // IP header build
	return s.transmit(pkt, mac)
}

// transmit frames an IP packet for the resolved link address and hands it
// to the NIC (the Ethernet header build).
func (s *Stack) transmit(pkt *Packet, mac string) error {
	pkt.SrcMAC = s.nic.Addr()
	pkt.DstMAC = mac
	pkt.EtherType = netwire.TypeIP
	s.cpu.ChargeTo(vtime.AccountKernel, vtime.ProtoLayer)
	return s.nic.Send(&netwire.Frame{
		Dst: mac, EtherType: netwire.TypeIP, Size: pkt.WireSize(), Payload: pkt,
	})
}

// InjectEther delivers a raw (non-IP) frame into the receive path, as the
// workload driver does for ARP traffic.
func (s *Stack) InjectEther(pkt *Packet) {
	s.cpu.ChargeTo(vtime.AccountKernel, vtime.Interrupt)
	s.cpu.ChargeTo(vtime.AccountKernel, vtime.ProtoLayer)
	_, _ = s.EtherArrived.Raise(uint64(pkt.EtherType), pkt)
}
