package linker

import (
	"errors"
	"fmt"
	"testing"

	"spin/internal/rtti"
)

var (
	kernelMod = rtti.NewModule("Kernel", "MachineTrap")
	extMod    = rtti.NewModule("Extension")
	evilMod   = rtti.NewModule("Evil")
)

func kernelImage() *Image {
	iface := NewInterface("MachineTrap", kernelMod).
		Define("Syscall", "the-syscall-event").
		Define("Version", 1)
	return &Image{Name: "kernel", Module: kernelMod, Exports: []*Interface{iface}}
}

func TestLoadAndResolve(t *testing.T) {
	n := NewNexus()
	if _, err := n.Load(kernelImage()); err != nil {
		t.Fatal(err)
	}
	var got any
	ext := &Image{
		Name: "ext", Module: extMod,
		Imports: []string{"MachineTrap"},
		Init: func(ctx *Context) error {
			v, err := ctx.Interface("MachineTrap").Lookup("Syscall")
			if err != nil {
				return err
			}
			got = v
			return nil
		},
	}
	if _, err := n.Load(ext); err != nil {
		t.Fatal(err)
	}
	if got != "the-syscall-event" {
		t.Fatalf("resolved symbol = %v", got)
	}
}

func TestUnresolvedImport(t *testing.T) {
	n := NewNexus()
	_, err := n.Load(&Image{Name: "ext", Module: extMod, Imports: []string{"Nope"}})
	if !errors.Is(err, ErrUnresolved) {
		t.Fatalf("err = %v", err)
	}
	if len(n.Domains()) != 0 {
		t.Fatal("failed load left a domain behind")
	}
}

func TestLinkAuthorizerDenies(t *testing.T) {
	// §2.5: denial prevents the requester from accessing any symbols,
	// and hence events, exported by the guarded modules.
	n := NewNexus()
	dom, err := n.Load(kernelImage())
	if err != nil {
		t.Fatal(err)
	}
	err = dom.SetAuthorizer(func(req *rtti.Module, iface *Interface) bool {
		return req != evilMod
	}, kernelMod)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Load(&Image{Name: "good", Module: extMod, Imports: []string{"MachineTrap"}}); err != nil {
		t.Fatalf("legitimate extension denied: %v", err)
	}
	_, err = n.Load(&Image{Name: "evil", Module: evilMod, Imports: []string{"MachineTrap"}})
	if !errors.Is(err, ErrLinkDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestSetAuthorizerRequiresAuthority(t *testing.T) {
	n := NewNexus()
	dom, _ := n.Load(kernelImage())
	fn := func(*rtti.Module, *Interface) bool { return true }
	if err := dom.SetAuthorizer(fn, extMod); !errors.Is(err, ErrNotAuthority) {
		t.Fatalf("err = %v", err)
	}
	if err := dom.SetAuthorizer(fn, nil); !errors.Is(err, ErrNotAuthority) {
		t.Fatalf("nil proof err = %v", err)
	}
}

func TestDuplicateDomainAndInterface(t *testing.T) {
	n := NewNexus()
	if _, err := n.Load(kernelImage()); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Load(kernelImage()); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup domain err = %v", err)
	}
	clash := &Image{Name: "other", Module: extMod,
		Exports: []*Interface{NewInterface("MachineTrap", extMod)}}
	if _, err := n.Load(clash); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup interface err = %v", err)
	}
}

func TestInitFailureRollsBack(t *testing.T) {
	n := NewNexus()
	_, err := n.Load(&Image{
		Name: "broken", Module: extMod,
		Exports: []*Interface{NewInterface("Broken", extMod)},
		Init:    func(ctx *Context) error { return fmt.Errorf("init exploded") },
	})
	if !errors.Is(err, ErrInitFailed) {
		t.Fatalf("err = %v", err)
	}
	if len(n.Domains()) != 0 {
		t.Fatal("rollback did not remove the domain")
	}
	// The interface name must be reusable after rollback.
	if _, err := n.Load(&Image{Name: "fixed", Module: extMod,
		Exports: []*Interface{NewInterface("Broken", extMod)}}); err != nil {
		t.Fatalf("reload after rollback: %v", err)
	}
}

func TestExtensionExportsLinkableByOthers(t *testing.T) {
	// §2: "Once installed, other extensions may link against the
	// extension's exported interfaces."
	n := NewNexus()
	_, _ = n.Load(kernelImage())
	first := &Image{
		Name: "fs", Module: extMod,
		Imports: []string{"MachineTrap"},
		Exports: []*Interface{NewInterface("FileSystem", extMod).Define("Open", "open-event")},
	}
	if _, err := n.Load(first); err != nil {
		t.Fatal(err)
	}
	var got any
	second := &Image{
		Name: "dosfs", Module: rtti.NewModule("DosFs"),
		Imports: []string{"FileSystem"},
		Init: func(ctx *Context) error {
			got, _ = ctx.Interface("FileSystem").Lookup("Open")
			return nil
		},
	}
	if _, err := n.Load(second); err != nil {
		t.Fatal(err)
	}
	if got != "open-event" {
		t.Fatalf("got = %v", got)
	}
}

func TestInterfaceSymbols(t *testing.T) {
	i := NewInterface("I", kernelMod).Define("b", 2).Define("a", 1)
	syms := i.Symbols()
	if len(syms) != 2 || syms[0] != "a" || syms[1] != "b" {
		t.Fatalf("symbols = %v", syms)
	}
	if _, err := i.Lookup("nope"); !errors.Is(err, ErrNoSuchSymbol) {
		t.Fatalf("err = %v", err)
	}
	v, err := i.Lookup("a")
	if err != nil || v != 1 {
		t.Fatalf("lookup = %v, %v", v, err)
	}
}

func TestDomainAccessors(t *testing.T) {
	n := NewNexus()
	dom, _ := n.Load(kernelImage())
	if dom.Name() != "kernel" || dom.Module() != kernelMod {
		t.Fatal("accessors broken")
	}
	if exp := dom.Exports(); len(exp) != 1 || exp[0] != "MachineTrap" {
		t.Fatalf("exports = %v", exp)
	}
	if _, err := n.Domain("kernel"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Domain("ghost"); !errors.Is(err, ErrDomainUnknown) {
		t.Fatalf("err = %v", err)
	}
}

func TestContextPanicsOnUndeclaredImport(t *testing.T) {
	n := NewNexus()
	_, _ = n.Load(kernelImage())
	defer func() {
		if recover() == nil {
			t.Fatal("undeclared import access did not panic")
		}
	}()
	_, _ = n.Load(&Image{
		Name: "sneaky", Module: extMod,
		Init: func(ctx *Context) error {
			ctx.Interface("MachineTrap") // not in Imports
			return nil
		},
	})
}

func TestLoadRequiresModule(t *testing.T) {
	n := NewNexus()
	if _, err := n.Load(&Image{Name: "anon"}); err == nil {
		t.Fatal("image without module accepted")
	}
}

func TestQuarantineDeniesLinkage(t *testing.T) {
	n := NewNexus()
	if _, err := n.Load(kernelImage()); err != nil {
		t.Fatal(err)
	}
	if fresh, err := n.Quarantine("kernel"); err != nil || !fresh {
		t.Fatalf("quarantine: fresh=%v err=%v", fresh, err)
	}
	if !n.Quarantined("kernel") {
		t.Fatal("domain not reported quarantined")
	}
	_, err := n.Load(&Image{Name: "ext", Module: extMod, Imports: []string{"MachineTrap"}})
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("link against quarantined domain: err = %v", err)
	}
	if was, err := n.Readmit("kernel"); err != nil || !was {
		t.Fatalf("readmit: was=%v err=%v", was, err)
	}
	if _, err := n.Load(&Image{Name: "ext", Module: extMod, Imports: []string{"MachineTrap"}}); err != nil {
		t.Fatalf("link after readmission failed: %v", err)
	}
	if _, err := n.Quarantine("ghost"); !errors.Is(err, ErrDomainUnknown) {
		t.Fatalf("quarantine unknown domain: err = %v", err)
	}
}

// TestAuthorizerDenialAfterQuarantineLeavesNoDanglingState: the satellite
// scenario — a re-link attempt that is denied by the exporter's authorizer
// while (and after) a domain quarantine must roll back completely: no
// partial domain, and the quarantined exporter's registrations intact so
// readmission restores exactly the pre-quarantine linkage state.
func TestAuthorizerDenialAfterQuarantineLeavesNoDanglingState(t *testing.T) {
	n := NewNexus()
	dom, err := n.Load(kernelImage())
	if err != nil {
		t.Fatal(err)
	}
	if err := dom.SetAuthorizer(func(req *rtti.Module, _ *Interface) bool {
		return req != evilMod
	}, kernelMod); err != nil {
		t.Fatal(err)
	}

	// Quarantine the exporter, then attempt a re-link from a denied
	// module: the quarantine check fires first, and nothing registers.
	if _, err := n.Quarantine("kernel"); err != nil {
		t.Fatal(err)
	}
	evil := &Image{Name: "evil", Module: evilMod, Imports: []string{"MachineTrap"},
		Exports: []*Interface{NewInterface("EvilIface", evilMod)}}
	if _, err := n.Load(evil); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("err = %v, want ErrQuarantined", err)
	}
	if len(n.Domains()) != 1 {
		t.Fatalf("denied load left domains: %v", n.Domains())
	}

	// Readmit and retry: the authorizer now denies it. Again nothing may
	// dangle — the evil image's exports must not be registered.
	if _, err := n.Readmit("kernel"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Load(evil); !errors.Is(err, ErrLinkDenied) {
		t.Fatalf("err = %v, want ErrLinkDenied", err)
	}
	if len(n.Domains()) != 1 {
		t.Fatalf("denied load left domains: %v", n.Domains())
	}
	// The interface name the denied image tried to export is free.
	if _, err := n.Load(&Image{Name: "good", Module: extMod,
		Exports: []*Interface{NewInterface("EvilIface", extMod)}}); err != nil {
		t.Fatalf("interface name dangled after denial: %v", err)
	}
	// And the exporter's own linkage is fully restored post-readmission.
	if _, err := n.Load(&Image{Name: "client", Module: extMod, Imports: []string{"MachineTrap"}}); err != nil {
		t.Fatalf("readmitted exporter not linkable: %v", err)
	}
}
