// Package linker simulates SPIN's safe dynamic linker ([Sirer et al. 96],
// paper §2): the first phase of extension incorporation.
//
// Extensions are loaded as images into domains. The linker resolves each
// image's imports against interfaces explicitly exported by already-loaded
// domains, consulting the exporting domain's link authorizer — "when a
// module requests that it be dynamically linked against some other module,
// that module's authorizer is consulted and the linkage is permitted or
// denied. Denial prevents the requester from accessing any of the symbols,
// and hence events, exported by any of the modules governed by the
// authorizer" (§2.5).
//
// After successful resolution the image's initializer runs with access to
// the resolved interfaces; that is where the second phase — handler
// registration with the dispatcher — happens, mirroring the paper's
// two-step incorporation process.
package linker

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"spin/internal/rtti"
)

// Errors returned by the linker.
var (
	ErrUnresolved    = errors.New("linker: unresolved import")
	ErrLinkDenied    = errors.New("linker: linkage denied by authorizer")
	ErrDuplicate     = errors.New("linker: duplicate name")
	ErrNotAuthority  = errors.New("linker: module is not the domain's authority")
	ErrNoSuchSymbol  = errors.New("linker: no such symbol")
	ErrInitFailed    = errors.New("linker: extension initialization failed")
	ErrDomainUnknown = errors.New("linker: unknown domain")
	ErrQuarantined   = errors.New("linker: domain is quarantined")
)

// Interface is a named collection of symbols exported by a module — the
// unit of linkage. Symbols are arbitrary values; in practice they are
// *dispatch.Event handles and procedure values.
type Interface struct {
	Name    string
	Owner   *rtti.Module
	symbols map[string]any
}

// NewInterface builds an interface owned by m.
func NewInterface(name string, m *rtti.Module) *Interface {
	return &Interface{Name: name, Owner: m, symbols: make(map[string]any)}
}

// Define adds a symbol to the interface, replacing any previous value.
func (i *Interface) Define(sym string, v any) *Interface {
	i.symbols[sym] = v
	return i
}

// Lookup resolves a symbol.
func (i *Interface) Lookup(sym string) (any, error) {
	v, ok := i.symbols[sym]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchSymbol, i.Name, sym)
	}
	return v, nil
}

// Symbols returns the sorted symbol names, for diagnostics.
func (i *Interface) Symbols() []string {
	out := make([]string, 0, len(i.symbols))
	for s := range i.symbols {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// LinkAuthorizerFn decides whether requestor may link against an interface
// exported by the guarded domain.
type LinkAuthorizerFn func(requestor *rtti.Module, iface *Interface) bool

// Domain is a loaded unit of code: a set of exported interfaces governed by
// one module, with an optional link authorizer.
type Domain struct {
	name       string
	module     *rtti.Module
	exports    map[string]*Interface
	authorizer LinkAuthorizerFn
	// quarantined marks the domain fault-quarantined: its exports stay
	// registered (so readmission is a flag flip, with no dangling or
	// re-registration races) but resolve to ErrQuarantined until the
	// domain is readmitted. Guarded by the Nexus mutex.
	quarantined bool
}

// Name returns the domain's name.
func (d *Domain) Name() string { return d.name }

// Module returns the domain's governing module descriptor.
func (d *Domain) Module() *rtti.Module { return d.module }

// Exports returns the sorted names of exported interfaces.
func (d *Domain) Exports() []string {
	out := make([]string, 0, len(d.exports))
	for n := range d.exports {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetAuthorizer installs a link authorizer on the domain. Authority is
// demonstrated with the domain's module descriptor, exactly as for event
// authorizers.
func (d *Domain) SetAuthorizer(fn LinkAuthorizerFn, proof *rtti.Module) error {
	if proof == nil || proof != d.module {
		return fmt.Errorf("%w: %s over domain %s", ErrNotAuthority, proof.Name(), d.name)
	}
	d.authorizer = fn
	return nil
}

// Image describes an extension object file: the interfaces it exports, the
// interface names it imports, and its initializer. The initializer is the
// extension's module body (the BEGIN ... END block of Figures 2 and 3),
// which runs once linking succeeds and typically installs event handlers.
type Image struct {
	Name    string
	Module  *rtti.Module
	Exports []*Interface
	Imports []string
	Init    func(ctx *Context) error
}

// Context gives an initializer access to its resolved imports.
type Context struct {
	resolved map[string]*Interface
}

// Interface returns a resolved import by name. It panics on a name not
// listed in the image's imports: that is a programming error in the
// extension, caught deterministically.
func (c *Context) Interface(name string) *Interface {
	i, ok := c.resolved[name]
	if !ok {
		panic(fmt.Sprintf("linker: interface %s was not imported", name))
	}
	return i
}

// Nexus is the dynamic linker: the registry of loaded domains and exported
// interfaces.
type Nexus struct {
	mu      sync.Mutex
	domains map[string]*Domain
	ifaces  map[string]*Domain // interface name -> exporting domain
}

// NewNexus creates an empty linker.
func NewNexus() *Nexus {
	return &Nexus{domains: make(map[string]*Domain), ifaces: make(map[string]*Domain)}
}

// Domain returns a loaded domain by name.
func (n *Nexus) Domain(name string) (*Domain, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	d, ok := n.domains[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrDomainUnknown, name)
	}
	return d, nil
}

// Domains returns the sorted names of loaded domains.
func (n *Nexus) Domains() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.domains))
	for name := range n.domains {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Load incorporates an image: resolves imports (consulting authorizers),
// registers the new domain and its exports, and runs the initializer. On
// any failure the system is left unchanged — a denied or unresolvable
// extension does not partially load.
func (n *Nexus) Load(img *Image) (*Domain, error) {
	if img.Module == nil {
		return nil, rtti.ErrNilProc
	}
	n.mu.Lock()
	if _, dup := n.domains[img.Name]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: domain %s", ErrDuplicate, img.Name)
	}

	// Phase 1: resolve all outstanding references against explicitly
	// exported interfaces.
	resolved := make(map[string]*Interface, len(img.Imports))
	for _, want := range img.Imports {
		exporter, ok := n.ifaces[want]
		if !ok {
			n.mu.Unlock()
			return nil, fmt.Errorf("%w: %s (wanted by %s)", ErrUnresolved, want, img.Name)
		}
		if exporter.quarantined {
			// A quarantined domain's interfaces are unavailable for new
			// linkage; existing importers are handled by the dispatcher's
			// binding quarantine, not the linker.
			n.mu.Unlock()
			return nil, fmt.Errorf("%w: %s exports %s", ErrQuarantined, exporter.name, want)
		}
		iface := exporter.exports[want]
		if exporter.authorizer != nil && !exporter.authorizer(img.Module, iface) {
			n.mu.Unlock()
			return nil, fmt.Errorf("%w: %s against %s", ErrLinkDenied, img.Name, want)
		}
		resolved[want] = iface
	}

	// Register the domain and its exports.
	dom := &Domain{name: img.Name, module: img.Module, exports: make(map[string]*Interface)}
	for _, iface := range img.Exports {
		if _, dup := n.ifaces[iface.Name]; dup {
			n.mu.Unlock()
			return nil, fmt.Errorf("%w: interface %s", ErrDuplicate, iface.Name)
		}
	}
	for _, iface := range img.Exports {
		dom.exports[iface.Name] = iface
		n.ifaces[iface.Name] = dom
	}
	n.domains[img.Name] = dom
	n.mu.Unlock()

	// Phase 2: run the extension's initializer (handler registration).
	if img.Init != nil {
		if err := img.Init(&Context{resolved: resolved}); err != nil {
			n.unload(dom)
			return nil, fmt.Errorf("%w: %s: %v", ErrInitFailed, img.Name, err)
		}
	}
	return dom, nil
}

// unload rolls back a failed load.
func (n *Nexus) unload(dom *Domain) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for name := range dom.exports {
		delete(n.ifaces, name)
	}
	delete(n.domains, dom.name)
}

// Quarantine marks a domain fault-quarantined: new linkage against any of
// its exported interfaces is denied with ErrQuarantined until Readmit. The
// domain itself, its registrations, and already-linked importers are left
// intact, so readmission cannot dangle. Reports whether the domain was
// previously healthy.
func (n *Nexus) Quarantine(name string) (bool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	dom, ok := n.domains[name]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrDomainUnknown, name)
	}
	was := dom.quarantined
	dom.quarantined = true
	return !was, nil
}

// Readmit lifts a domain quarantine. Reports whether the domain was
// quarantined.
func (n *Nexus) Readmit(name string) (bool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	dom, ok := n.domains[name]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrDomainUnknown, name)
	}
	was := dom.quarantined
	dom.quarantined = false
	return was, nil
}

// Quarantined reports whether the named domain is currently quarantined.
func (n *Nexus) Quarantined(name string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	dom, ok := n.domains[name]
	return ok && dom.quarantined
}
