package httpd

import (
	"strings"
	"testing"

	"spin/internal/dispatch"
	"spin/internal/fs"
	"spin/internal/kernel"
	"spin/internal/netstack"
	"spin/internal/netwire"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/vtime"
)

// rig: server machine A with httpd + fs, client machine B.
type rig struct {
	a, b   *kernel.Machine
	sa, sb *netstack.Stack
	fsA    *fs.FS
	srv    *Server
}

func boot(t *testing.T) *rig {
	t.Helper()
	a, err := kernel.Boot(kernel.Config{Name: "a", Metered: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := kernel.Boot(kernel.Config{Name: "b", ShareWith: a})
	if err != nil {
		t.Fatal(err)
	}
	link := netwire.NewLink(a.Sim, 0, 0)
	nicA, _ := link.Attach("mac-a")
	nicB, _ := link.Attach("mac-b")
	arp := map[string]string{"10.0.0.1": "mac-a", "10.0.0.2": "mac-b"}
	sa, err := netstack.New(netstack.Config{Dispatcher: a.Dispatcher, CPU: a.CPU,
		Sched: a.Sched, NIC: nicA, IP: "10.0.0.1", ARP: arp})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := netstack.New(netstack.Config{Dispatcher: b.Dispatcher, CPU: b.CPU,
		Sched: b.Sched, NIC: nicB, IP: "10.0.0.2", ARP: arp, Prefix: "B:"})
	if err != nil {
		t.Fatal(err)
	}
	fsA, err := fs.New(a.Dispatcher, a.CPU, "")
	if err != nil {
		t.Fatal(err)
	}
	fsA.Put("/www/index.html", []byte("<h1>SPIN</h1>"))
	fsA.Put("/www/paper.ps", []byte("%!PS dynamic binding"))
	srv, err := New(a.Dispatcher, Config{Stack: sa, FS: fsA, Sched: a.Sched})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{a: a, b: b, sa: sa, sb: sb, fsA: fsA, srv: srv}
}

// fetch drives a client strand through the given paths and returns the
// parsed responses.
func (r *rig) fetch(t *testing.T, paths ...string) []Response {
	t.Helper()
	client, err := NewClient(r.sb, "10.0.0.1", 80)
	if err != nil {
		t.Fatal(err)
	}
	sent := false
	r.b.Sched.Spawn("client", 0, func(st *sched.Strand) sched.Status {
		if !client.Conn().Established() {
			client.Conn().AwaitEstablished(st)
			return sched.Block
		}
		if !sent {
			sent = true
			for _, p := range paths {
				if err := client.Get(p); err != nil {
					t.Errorf("get %s: %v", p, err)
				}
			}
		}
		client.Pump()
		if len(client.Responses) >= len(paths) {
			_ = client.Conn().Close()
			return sched.Done
		}
		client.Conn().AwaitData(st)
		return sched.Block
	})
	r.a.Sim.Run(500000)
	if len(client.Responses) != len(paths) {
		t.Fatalf("got %d responses for %d requests", len(client.Responses), len(paths))
	}
	return client.Responses
}

func TestServeFile(t *testing.T) {
	r := boot(t)
	resp := r.fetch(t, "/paper.ps")
	if resp[0].Status != 200 || string(resp[0].Body) != "%!PS dynamic binding" {
		t.Fatalf("resp = %+v", resp[0])
	}
	if r.srv.Served != 1 {
		t.Fatalf("served = %d", r.srv.Served)
	}
}

func TestRootServesIndex(t *testing.T) {
	r := boot(t)
	resp := r.fetch(t, "/")
	if resp[0].Status != 200 || !strings.Contains(string(resp[0].Body), "SPIN") {
		t.Fatalf("resp = %+v", resp[0])
	}
}

func TestNotFound(t *testing.T) {
	r := boot(t)
	resp := r.fetch(t, "/missing.html")
	if resp[0].Status != 404 {
		t.Fatalf("status = %d", resp[0].Status)
	}
	if r.srv.NotFound != 1 {
		t.Fatalf("notfound = %d", r.srv.NotFound)
	}
}

func TestMultipleRequestsOneConnection(t *testing.T) {
	r := boot(t)
	resp := r.fetch(t, "/", "/paper.ps", "/nope")
	if resp[0].Status != 200 || resp[1].Status != 200 || resp[2].Status != 404 {
		t.Fatalf("statuses = %d %d %d", resp[0].Status, resp[1].Status, resp[2].Status)
	}
	if r.srv.Served != 3 {
		t.Fatalf("served = %d", r.srv.Served)
	}
}

func TestDynamicRouteHandlerWithGuard(t *testing.T) {
	// A second extension serves /stats through a guarded handler on the
	// same event — the server itself is untouched.
	r := boot(t)
	statsMod := rtti.NewModule("Stats")
	sig := r.srv.Request.Signature()
	_, err := r.srv.Request.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Stats.Serve", Module: statsMod, Sig: sig},
		Fn: func(clo any, args []any) any {
			return &Response{Status: 200, Body: []byte("uptime: forever")}
		},
	}, dispatch.WithGuard(RouteGuard("/stats")))
	if err != nil {
		t.Fatal(err)
	}
	// Deregister the intrinsic for /stats? Not needed: the intrinsic
	// also fires and returns 404 for the unknown path — so a result
	// handler must pick the dynamic answer. Prefer the highest-status..
	// simplest: prefer the first 200.
	err = r.srv.Request.SetResultHandler(func(acc, res any, i int) any {
		a, _ := acc.(*Response)
		b, _ := res.(*Response)
		if a != nil && a.Status == 200 {
			return a
		}
		return b
	})
	if err != nil {
		t.Fatal(err)
	}
	resp := r.fetch(t, "/stats", "/paper.ps")
	if resp[0].Status != 200 || string(resp[0].Body) != "uptime: forever" {
		t.Fatalf("stats resp = %+v", resp[0])
	}
	if resp[1].Status != 200 {
		t.Fatalf("file resp = %+v", resp[1])
	}
}

func TestPathFilterComposes(t *testing.T) {
	// The MS-DOS filter idea applied to URLs: a filter uppercase-folds
	// legacy paths before the intrinsic sees them.
	r := boot(t)
	fsig := rtti.Signature{Args: []rtti.Type{rtti.Text},
		ByRef: []bool{true}, Result: ResponseType}
	_, err := r.srv.Request.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Legacy.Filter", Module: rtti.NewModule("Legacy"), Sig: fsig},
		Fn: func(clo any, args []any) any {
			if p, ok := args[0].(string); ok {
				args[0] = strings.ToLower(p)
			}
			return nil
		},
	}, dispatch.AsFilter(), dispatch.First())
	if err != nil {
		t.Fatal(err)
	}
	resp := r.fetch(t, "/PAPER.PS")
	if resp[0].Status != 200 {
		t.Fatalf("filtered path status = %d", resp[0].Status)
	}
}

func TestAccessLogAsLastHandler(t *testing.T) {
	r := boot(t)
	var logged []string
	sig := r.srv.Request.Signature()
	_, err := r.srv.Request.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Log.Access", Module: rtti.NewModule("Log"), Sig: sig},
		Fn: func(clo any, args []any) any {
			logged = append(logged, args[0].(string))
			return (*Response)(nil)
		},
	}, dispatch.Last())
	if err != nil {
		t.Fatal(err)
	}
	// The logger returns a nil *Response; the result handler must
	// prefer the real one.
	err = r.srv.Request.SetResultHandler(func(acc, res any, i int) any {
		if a, ok := acc.(*Response); ok && a != nil {
			return a
		}
		if b, ok := res.(*Response); ok && b != nil {
			return b
		}
		return acc
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = r.fetch(t, "/paper.ps", "/")
	if len(logged) != 2 || logged[0] != "/paper.ps" {
		t.Fatalf("logged = %v", logged)
	}
}

func TestBadRequest(t *testing.T) {
	r := boot(t)
	client, err := NewClient(r.sb, "10.0.0.1", 80)
	if err != nil {
		t.Fatal(err)
	}
	sent := false
	r.b.Sched.Spawn("client", 0, func(st *sched.Strand) sched.Status {
		if !client.Conn().Established() {
			client.Conn().AwaitEstablished(st)
			return sched.Block
		}
		if !sent {
			sent = true
			_ = client.Conn().Send([]byte("BREW /coffee HTCPCP/1.0\r\n"))
		}
		client.Pump()
		if len(client.Responses) >= 1 {
			return sched.Done
		}
		client.Conn().AwaitData(st)
		return sched.Block
	})
	r.a.Sim.Run(500000)
	if len(client.Responses) != 1 || client.Responses[0].Status != 400 {
		t.Fatalf("responses = %+v", client.Responses)
	}
	if r.srv.BadReqs != 1 {
		t.Fatalf("badreqs = %d", r.srv.BadReqs)
	}
}

func TestCloseStopsAccepting(t *testing.T) {
	r := boot(t)
	r.srv.Close()
	// A new connection attempt is refused (reset), so the client never
	// establishes.
	conn, err := r.sb.DialTCP("10.0.0.1", 80)
	if err != nil {
		t.Fatal(err)
	}
	r.a.Sim.Run(200000)
	if conn.Established() {
		t.Fatal("connected to a closed server")
	}
}

func TestReadTimeoutClosesIdleConnection(t *testing.T) {
	r := boot(t)
	srv2, err := New(r.a.Dispatcher, Config{Stack: r.sa, FS: r.fsA, Sched: r.a.Sched,
		Port: 81, Prefix: "T:", ReadTimeout: vtime.Micros(1000)})
	if err != nil {
		t.Fatal(err)
	}
	// Dial and establish, then send nothing: the idle timer fires and the
	// server closes the connection.
	client, err := NewClient(r.sb, "10.0.0.1", 81)
	if err != nil {
		t.Fatal(err)
	}
	r.a.Sim.Run(500000)
	if srv2.TimedOut != 1 {
		t.Fatalf("timedout = %d, want 1", srv2.TimedOut)
	}
	if !client.Conn().EOF() && !client.Conn().Closed() {
		t.Fatal("client connection still open after read timeout")
	}
}

func TestReadTimeoutSparesActiveConnection(t *testing.T) {
	r := boot(t)
	srv2, err := New(r.a.Dispatcher, Config{Stack: r.sa, FS: r.fsA, Sched: r.a.Sched,
		Port: 81, Prefix: "T:", ReadTimeout: vtime.Micros(5000)})
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(r.sb, "10.0.0.1", 81)
	if err != nil {
		t.Fatal(err)
	}
	sent := false
	r.b.Sched.Spawn("client", 0, func(st *sched.Strand) sched.Status {
		if !client.Conn().Established() {
			client.Conn().AwaitEstablished(st)
			return sched.Block
		}
		if !sent {
			sent = true
			_ = client.Get("/paper.ps")
		}
		client.Pump()
		if len(client.Responses) >= 1 {
			_ = client.Conn().Close()
			return sched.Done
		}
		client.Conn().AwaitData(st)
		return sched.Block
	})
	r.a.Sim.Run(500000)
	if len(client.Responses) != 1 || client.Responses[0].Status != 200 {
		t.Fatalf("responses = %+v", client.Responses)
	}
	if srv2.TimedOut != 0 {
		t.Fatalf("active connection timed out: %d", srv2.TimedOut)
	}
}

func TestWriteTimeoutCapsConnectionLifetime(t *testing.T) {
	r := boot(t)
	srv2, err := New(r.a.Dispatcher, Config{Stack: r.sa, FS: r.fsA, Sched: r.a.Sched,
		Port: 81, Prefix: "T:", WriteTimeout: vtime.Micros(2000)})
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(r.sb, "10.0.0.1", 81)
	if err != nil {
		t.Fatal(err)
	}
	sent := false
	r.b.Sched.Spawn("client", 0, func(st *sched.Strand) sched.Status {
		if !client.Conn().Established() {
			client.Conn().AwaitEstablished(st)
			return sched.Block
		}
		if !sent {
			sent = true
			_ = client.Get("/paper.ps")
		}
		client.Pump()
		if client.Conn().EOF() {
			_ = client.Conn().Close()
			return sched.Done
		}
		// Never close: the lifetime cap must end the connection.
		client.Conn().AwaitData(st)
		return sched.Block
	})
	r.a.Sim.Run(500000)
	if len(client.Responses) != 1 || client.Responses[0].Status != 200 {
		t.Fatalf("responses = %+v", client.Responses)
	}
	if srv2.TimedOut != 1 {
		t.Fatalf("timedout = %d, want 1", srv2.TimedOut)
	}
}

func TestShutdownDrainsConnections(t *testing.T) {
	r := boot(t)
	client, err := NewClient(r.sb, "10.0.0.1", 80)
	if err != nil {
		t.Fatal(err)
	}
	sent := false
	r.b.Sched.Spawn("client", 0, func(st *sched.Strand) sched.Status {
		if !client.Conn().Established() {
			client.Conn().AwaitEstablished(st)
			return sched.Block
		}
		if !sent {
			sent = true
			_ = client.Get("/paper.ps")
		}
		client.Pump()
		if client.Conn().EOF() {
			_ = client.Conn().Close()
			return sched.Done
		}
		// Keep-alive: hold the connection open until the server closes.
		client.Conn().AwaitData(st)
		return sched.Block
	})
	r.a.Sim.Run(500000)
	if len(client.Responses) != 1 {
		t.Fatalf("responses = %d, want 1", len(client.Responses))
	}
	if r.srv.Drained() {
		t.Fatal("drained before Shutdown")
	}

	r.srv.Shutdown()
	r.srv.Shutdown() // idempotent
	r.a.Sim.Run(500000)
	if !r.srv.Drained() {
		t.Fatal("server not drained after Shutdown")
	}
	if !client.Conn().EOF() && !client.Conn().Closed() {
		t.Fatal("client connection survived drain")
	}
	// New connection attempts are refused.
	conn, err := r.sb.DialTCP("10.0.0.1", 80)
	if err != nil {
		t.Fatal(err)
	}
	r.a.Sim.Run(200000)
	if conn.Established() {
		t.Fatal("connected to a draining server")
	}
	if r.srv.Served != 1 {
		t.Fatalf("served = %d, want 1", r.srv.Served)
	}
}
