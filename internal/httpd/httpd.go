// Package httpd is an in-kernel web server extension. The paper's §3
// inventory lists "a collection of integrated applications, including a
// distributed transaction system and a web server", and its conclusion
// points at "an Alpha workstation running SPIN with a WEB server
// extension" serving the project's home page. This package is that
// extension: a minimal HTTP/1.0 server running as strands over the
// netstack substrate, serving files from the fs substrate — and, being a
// SPIN extension, exposing its own request processing as an event that
// other extensions interpose on:
//
//	Httpd.Request(path: TEXT): Httpd.Response
//
// The intrinsic handler resolves the path against the file system.
// Filters rewrite paths (the MS-DOS filter composes here unchanged);
// guarded handlers serve dynamic routes; the event's default handler
// produces 404s. Access logging installs as a Last handler without
// touching the server.
package httpd

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"spin/internal/dispatch"
	"spin/internal/fs"
	"spin/internal/netstack"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/vtime"
)

// Module is the web server's module descriptor, authority over
// Httpd.Request.
var Module = rtti.NewModule("Httpd", "Httpd")

// ResponseType is the rtti type of HTTP responses.
var ResponseType = rtti.NewRef("Httpd.Response", nil)

// Response is what request handlers produce.
type Response struct {
	Status int
	Body   []byte
}

// RTTIType implements rtti.Described.
func (r *Response) RTTIType() rtti.Type { return ResponseType }

// statusText maps the status codes the server produces.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	}
	return "Internal Server Error"
}

// Config assembles a server.
type Config struct {
	Stack *netstack.Stack
	FS    *fs.FS
	Sched *sched.Scheduler
	// Port defaults to 80.
	Port uint16
	// DocRoot prefixes request paths in the file system; defaults to
	// "/www".
	DocRoot string
	// Prefix namespaces the event name, like the other substrates.
	Prefix string
	// ReadTimeout closes a connection that stays idle — no request bytes
	// arriving — for at least this long (enforcement is lazy: a timer
	// polls every ReadTimeout, so an idle connection closes within two
	// periods). Zero disables. Requires a simulator; in real-time mode
	// virtual timers do not exist and the setting is ignored.
	ReadTimeout vtime.Duration
	// WriteTimeout caps a connection's total lifetime. The simulated
	// stack has an unbounded send window, so response writes complete
	// immediately and a per-write deadline would never fire; what remains
	// observable is a peer that neither sends another request nor closes,
	// and WriteTimeout bounds how long such a connection may hold its
	// strand. Zero disables; ignored in real-time mode like ReadTimeout.
	WriteTimeout vtime.Duration
}

// Server is a running web server extension.
type Server struct {
	stack   *netstack.Stack
	fsys    *fs.FS
	sched   *sched.Scheduler
	port    uint16
	docRoot string

	// Request is the Httpd.Request event: raised once per parsed HTTP
	// request, with the URL path as its argument.
	Request *dispatch.Event

	// Accepted is the Httpd.Accepted event: raised once per inbound
	// connection, with the connection as its argument. The intrinsic
	// handler spawns the connection strand; extensions interpose to
	// observe or veto connections. The accept loop drains its backlog
	// into one RaiseBatch per wakeup, so a burst of simultaneous
	// connections pays the dispatch ingress once.
	Accepted *dispatch.Event

	readTimeout  vtime.Duration
	writeTimeout vtime.Duration

	listener *netstack.TCPListener
	acceptor *sched.Strand

	// draining flips once on Shutdown; connection strands observe it and
	// close after answering whatever complete requests they have
	// buffered.
	draining atomic.Bool
	// connMu guards conns, the live-connection registry Shutdown walks to
	// wake idle strands. Shutdown may be called from outside the
	// simulator goroutine (a signal handler), hence the mutex.
	connMu sync.Mutex
	conns  map[*netstack.TCPConn]*sched.Strand

	// Served counts completed responses by status.
	Served   int64
	NotFound int64
	BadReqs  int64
	// TimedOut counts connections closed by ReadTimeout or WriteTimeout.
	TimedOut int64
}

// New defines the Httpd.Request event and starts the accept loop. The
// server serves until its listener is closed.
func New(d *dispatch.Dispatcher, cfg Config) (*Server, error) {
	s := &Server{stack: cfg.Stack, fsys: cfg.FS, sched: cfg.Sched,
		port: cfg.Port, docRoot: cfg.DocRoot,
		readTimeout: cfg.ReadTimeout, writeTimeout: cfg.WriteTimeout,
		conns: make(map[*netstack.TCPConn]*sched.Strand)}
	if s.port == 0 {
		s.port = 80
	}
	if s.docRoot == "" {
		s.docRoot = "/www"
	}

	sig := rtti.Signature{Args: []rtti.Type{rtti.Text}, Result: ResponseType}
	ev, err := d.DefineEvent(cfg.Prefix+"Httpd.Request", sig,
		dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Httpd.Request", Module: Module, Sig: sig},
			Fn:   s.intrinsicRequest,
		}))
	if err != nil {
		return nil, err
	}
	s.Request = ev
	// The default handler produces 404s when the intrinsic has been
	// deregistered (an extension replaced file serving entirely) and
	// nothing else claimed the request.
	err = ev.SetDefaultHandler(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Httpd.Default", Module: Module, Sig: sig},
		Fn: func(clo any, args []any) any {
			return &Response{Status: 404, Body: []byte("not found\n")}
		},
	})
	if err != nil {
		return nil, err
	}

	acceptSig := rtti.Signature{Args: []rtti.Type{netstack.TCPConnType}}
	s.Accepted, err = d.DefineEvent(cfg.Prefix+"Httpd.Accepted", acceptSig,
		dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Httpd.Accepted", Module: Module, Sig: acceptSig},
			Fn: func(clo any, args []any) any {
				conn := args[0].(*netstack.TCPConn)
				if s.draining.Load() {
					_ = conn.Close()
					return nil
				}
				s.sched.Spawn("httpd-conn", 0, s.connHandler(conn))
				return nil
			},
		}))
	if err != nil {
		return nil, err
	}

	if s.listener, err = cfg.Stack.ListenTCP(s.port); err != nil {
		return nil, err
	}
	s.acceptor = cfg.Sched.Spawn(fmt.Sprintf("httpd:%d", s.port), 0, s.acceptLoop)
	return s, nil
}

// Close stops accepting connections. Established connections keep being
// served; use Shutdown for a graceful drain.
func (s *Server) Close() {
	s.listener.Close()
	s.sched.Kill(s.acceptor)
}

// Shutdown drains the server gracefully: the listener closes, the accept
// loop stops, and every live connection strand is woken so it answers the
// complete requests already buffered and then closes instead of waiting
// for more. Safe to call from any goroutine (a SIGTERM handler, say);
// idempotent. Poll Drained — or run the simulator to quiescence — to
// observe completion.
func (s *Server) Shutdown() {
	if !s.draining.CompareAndSwap(false, true) {
		return
	}
	s.listener.Close()
	s.sched.Kill(s.acceptor)
	s.connMu.Lock()
	for _, st := range s.conns {
		s.sched.Wakeup(st)
	}
	s.connMu.Unlock()
}

// Drained reports whether Shutdown has been called and every connection
// has closed.
func (s *Server) Drained() bool {
	if !s.draining.Load() {
		return false
	}
	s.connMu.Lock()
	n := len(s.conns)
	s.connMu.Unlock()
	return n == 0
}

// Draining reports whether Shutdown has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) track(conn *netstack.TCPConn, st *sched.Strand) {
	s.connMu.Lock()
	s.conns[conn] = st
	s.connMu.Unlock()
}

func (s *Server) untrack(conn *netstack.TCPConn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

// intrinsicRequest is the native file-serving implementation.
func (s *Server) intrinsicRequest(clo any, args []any) any {
	path, _ := args[0].(string)
	full := fs.Normalize(s.docRoot + "/" + strings.TrimPrefix(path, "/"))
	if path == "/" {
		full = fs.Normalize(s.docRoot + "/index.html")
	}
	body, ok := s.fsys.Get(full)
	if !ok {
		return &Response{Status: 404, Body: []byte("not found\n")}
	}
	return &Response{Status: 200, Body: body}
}

// acceptLoop drains the accept backlog into one batched raise of
// Httpd.Accepted per wakeup; the event's intrinsic handler spawns the
// per-connection strand.
func (s *Server) acceptLoop(st *sched.Strand) sched.Status {
	var burst []dispatch.ArgFrame
	for {
		conn, ok := s.listener.Accept()
		if !ok {
			break
		}
		burst = append(burst, dispatch.ArgFrame{conn})
	}
	if len(burst) > 0 {
		s.Accepted.RaiseBatch(burst)
	}
	s.listener.AwaitConn(st)
	return sched.Block
}

// connHandler builds the per-connection strand body: accumulate request
// bytes, answer each complete request, close on EOF, read timeout, write
// timeout, or server drain.
//
// Timer callbacks and strand steps both run on the simulator goroutine,
// so the closure state below needs no locking; in real-time mode
// Scheduler.After reports ErrNoSimulator and timeouts are disabled.
func (s *Server) connHandler(conn *netstack.TCPConn) sched.StepFunc {
	var buf []byte
	var self *sched.Strand
	gen, armedAt := 0, 0 // bytes-arrived generation; snapshot at last arm
	done, timedOut := false, false
	var idler func()
	idler = func() {
		if done {
			return
		}
		if gen == armedAt {
			// A full ReadTimeout elapsed with no request bytes.
			timedOut = true
			s.sched.Wakeup(self)
			return
		}
		armedAt = gen
		_ = s.sched.After(s.readTimeout, idler)
	}
	return func(st *sched.Strand) sched.Status {
		if self == nil {
			self = st
			s.track(conn, st)
			if s.readTimeout > 0 {
				_ = s.sched.After(s.readTimeout, idler)
			}
			if s.writeTimeout > 0 {
				_ = s.sched.After(s.writeTimeout, func() {
					if !done {
						timedOut = true
						s.sched.Wakeup(self)
					}
				})
			}
		}
		for {
			data, ok := conn.Recv()
			if !ok {
				break
			}
			gen++
			buf = append(buf, data...)
		}
		// Serve every complete request line in the buffer.
		for {
			nl := strings.IndexByte(string(buf), '\n')
			if nl < 0 {
				break
			}
			line := strings.TrimRight(string(buf[:nl]), "\r")
			buf = buf[nl+1:]
			if line == "" {
				continue // header terminator; headers are ignored
			}
			s.serve(conn, line)
		}
		if conn.EOF() || timedOut || s.draining.Load() {
			if timedOut {
				s.TimedOut++
			}
			done = true
			s.untrack(conn)
			_ = conn.Close()
			return sched.Done
		}
		conn.AwaitData(st)
		return sched.Block
	}
}

// serve parses one request line, raises Httpd.Request, and writes the
// response.
func (s *Server) serve(conn *netstack.TCPConn, line string) {
	parts := strings.Fields(line)
	var resp *Response
	if len(parts) < 2 || parts[0] != "GET" {
		s.BadReqs++
		resp = &Response{Status: 400, Body: []byte("bad request\n")}
	} else {
		res, err := s.Request.Raise(parts[1])
		if err != nil {
			resp = &Response{Status: 500, Body: []byte(err.Error() + "\n")}
		} else if r, ok := res.(*Response); ok && r != nil {
			resp = r
		} else {
			resp = &Response{Status: 500, Body: []byte("no response\n")}
		}
	}
	if resp.Status == 404 {
		s.NotFound++
	}
	s.Served++
	head := fmt.Sprintf("HTTP/1.0 %d %s\r\nContent-Length: %d\r\n\r\n",
		resp.Status, statusText(resp.Status), len(resp.Body))
	_ = conn.Send(append([]byte(head), resp.Body...))
}

// RouteGuard builds a FUNCTIONAL guard matching requests whose path has
// the given prefix, for dynamic-route handlers.
func RouteGuard(prefix string) dispatch.Guard {
	return dispatch.Guard{
		Proc: &rtti.Proc{Name: "Httpd.RouteGuard", Module: Module, Functional: true,
			Sig: rtti.Sig(rtti.Bool, rtti.Text)},
		Fn: func(clo any, args []any) bool {
			p, _ := args[0].(string)
			return strings.HasPrefix(p, prefix)
		},
	}
}

// Client is a minimal HTTP/1.0 client for driving the server inside the
// simulation (tests and examples).
type Client struct {
	conn *netstack.TCPConn
	buf  []byte
	// Responses collects parsed (status, body) pairs.
	Responses []Response
}

// NewClient dials the server.
func NewClient(stack *netstack.Stack, ip string, port uint16) (*Client, error) {
	conn, err := stack.DialTCP(ip, port)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Conn exposes the underlying connection for strand wait registration.
func (c *Client) Conn() *netstack.TCPConn { return c.conn }

// Get sends one GET request.
func (c *Client) Get(path string) error {
	return c.conn.Send([]byte("GET " + path + " HTTP/1.0\r\n\r\n"))
}

// Pump consumes received bytes and parses any complete responses.
func (c *Client) Pump() {
	for {
		data, ok := c.conn.Recv()
		if !ok {
			break
		}
		c.buf = append(c.buf, data...)
	}
	for {
		s := string(c.buf)
		headEnd := strings.Index(s, "\r\n\r\n")
		if headEnd < 0 {
			return
		}
		head := s[:headEnd]
		var status, length int
		if _, err := fmt.Sscanf(head, "HTTP/1.0 %d", &status); err != nil {
			// Malformed: drop a byte to avoid livelock.
			c.buf = c.buf[1:]
			continue
		}
		for _, ln := range strings.Split(head, "\r\n") {
			if strings.HasPrefix(ln, "Content-Length: ") {
				_, _ = fmt.Sscanf(ln, "Content-Length: %d", &length)
			}
		}
		total := headEnd + 4 + length
		if len(c.buf) < total {
			return
		}
		body := append([]byte(nil), c.buf[headEnd+4:total]...)
		c.buf = c.buf[total:]
		c.Responses = append(c.Responses, Response{Status: status, Body: body})
	}
}
