// Package x11 is the end-to-end document-preview workload of §3.2
// "Application performance": a machine running SPIN hosts an X11 server
// (on the Digital UNIX emulator); a second machine runs ghostview,
// processing a PostScript document and shipping page images over TCP to
// the X server, which renders them.
//
// Running the workload regenerates Table 3 (the major events raised, with
// counts, cumulative handling time, and handler/guard population) and the
// §3.2 time breakdown (total / idle / X11 / kernel / events).
//
// The extension population is arranged to match the paper's Table 3
// handler and guard counts: the IP stack's layer handlers, an ARP and a
// RARP watcher on Ether, ICMP/IGMP/RSVP handlers on IP, five bound UDP
// ports plus a monitor, the OSF port watcher on TCP, the Mach and OSF
// emulators plus an asynchronous per-application system call tracer on
// MachineTrap.Syscall (§2.6 mentions exactly this tracer), user-space
// thread save/restore handlers and a profiler on Strand.Run, and a select
// monitor on Events.EventNotify.
package x11

import (
	"fmt"
	"strings"

	"spin/internal/codegen"
	"spin/internal/dispatch"
	"spin/internal/emu/mach"
	"spin/internal/emu/osf"
	"spin/internal/fs"
	"spin/internal/kernel"
	"spin/internal/netstack"
	"spin/internal/netwire"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/vtime"
)

// Params tunes the preview workload. Zero values select the defaults,
// which are calibrated so the generated trace approximates the paper's
// Table 3 and §3.2 breakdown; EXPERIMENTS.md records measured-vs-paper.
type Params struct {
	// Pages is the number of page images previewed.
	Pages int
	// PageBytes is the size of one page image.
	PageBytes int
	// PageInterval is ghostview's PostScript processing time per page
	// (this is what makes the SPIN machine mostly idle).
	PageInterval vtime.Duration
	// ReplyEvery makes the X server send a small reply (X events,
	// exposure notifications) after every N data reads.
	ReplyEvery int
	// ReplyBytes is the reply size.
	ReplyBytes int
	// FontReadsPerPage is the number of font/glyph file reads the X
	// server performs per page.
	FontReadsPerPage int
	// RenderPerPage is X11-server (user account) rendering time per page.
	RenderPerPage vtime.Duration
	// DecodePerPage is in-kernel image decode/copy time per page.
	DecodePerPage vtime.Duration
	// UDPDatagrams is the number of background name-service datagrams.
	UDPDatagrams int
	// ArpFrames is the number of non-IP broadcast frames on the wire.
	ArpFrames int
	// WakeLatency is the SPIN machine's scheduler dispatch latency.
	WakeLatency vtime.Duration
	// DaemonPeriod is the background daemon strand's tick period; it
	// pads Strand.Run to the paper's scheduling-operation volume.
	DaemonPeriod vtime.Duration
}

// DefaultParams returns the calibrated workload.
func DefaultParams() Params {
	return Params{
		Pages:            12,
		PageBytes:        285_000,
		PageInterval:     vtime.Micros(1_800_000), // 1.8s of PostScript processing per page
		ReplyEvery:       16,
		ReplyBytes:       32,
		FontReadsPerPage: 25,
		RenderPerPage:    vtime.Micros(350_000),
		DecodePerPage:    vtime.Micros(540_000),
		UDPDatagrams:     24,
		ArpFrames:        7,
		WakeLatency:      vtime.Micros(5_000),
		DaemonPeriod:     vtime.Micros(1_540),
	}
}

func (p *Params) fill() {
	d := DefaultParams()
	if p.Pages == 0 {
		p.Pages = d.Pages
	}
	if p.PageBytes == 0 {
		p.PageBytes = d.PageBytes
	}
	if p.PageInterval == 0 {
		p.PageInterval = d.PageInterval
	}
	if p.ReplyEvery == 0 {
		p.ReplyEvery = d.ReplyEvery
	}
	if p.ReplyBytes == 0 {
		p.ReplyBytes = d.ReplyBytes
	}
	if p.FontReadsPerPage == 0 {
		p.FontReadsPerPage = d.FontReadsPerPage
	}
	if p.RenderPerPage == 0 {
		p.RenderPerPage = d.RenderPerPage
	}
	if p.DecodePerPage == 0 {
		p.DecodePerPage = d.DecodePerPage
	}
	if p.UDPDatagrams == 0 {
		p.UDPDatagrams = d.UDPDatagrams
	}
	if p.ArpFrames == 0 {
		p.ArpFrames = d.ArpFrames
	}
	if p.WakeLatency == 0 {
		p.WakeLatency = d.WakeLatency
	}
	if p.DaemonPeriod == 0 {
		p.DaemonPeriod = d.DaemonPeriod
	}
}

// Row is one line of the regenerated Table 3.
type Row struct {
	Event    string
	Raised   int64
	Time     vtime.Duration
	Handlers int
	Guards   int
}

// Result is the workload outcome.
type Result struct {
	// Rows are the Table 3 event rows, in the paper's order.
	Rows []Row
	// Total is the preview wall time; Idle/User/Kernel/Events partition
	// the SPIN machine's share of it (§3.2's breakdown).
	Total, Idle, User, Kernel, Events vtime.Duration
	// PagesShown counts fully rendered pages.
	PagesShown int
	// BytesReceived is the page-image volume delivered to the X server.
	BytesReceived int64
	// TracedSyscalls counts records produced by the asynchronous
	// per-application system call tracer.
	TracedSyscalls int64
}

// String renders the result in the paper's Table 3 layout plus the
// breakdown paragraph.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %7s %8s %9s %7s\n", "Event name", "raised", "time(s)", "handlers", "guards")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-28s %7d %8.2f %9d %7d\n",
			row.Event, row.Raised, float64(row.Time)/1e9, row.Handlers, row.Guards)
	}
	fmt.Fprintf(&sb, "\ntotal %.2fs: idle %.2fs, X11 server %.2fs, kernel %.2fs, events %.3fs\n",
		float64(r.Total)/1e9, float64(r.Idle)/1e9, float64(r.User)/1e9,
		float64(r.Kernel)/1e9, float64(r.Events)/1e9)
	return sb.String()
}

// world is the assembled two-machine scenario.
type world struct {
	onCollect    func(*Result)
	onDaemonTick func()
	// census holds the handler/guard population captured mid-preview;
	// Table 3 reports the population while the workload runs, and the X
	// server tears its sockets down at the end.
	census map[string][2]int

	p      Params
	spin   *kernel.Machine // machine A: SPIN + X11 server
	remote *kernel.Machine // machine B: ghostview
	sa, sb *netstack.Stack
	nicB   *netwire.NIC
	fsA    *fs.FS
	emu    *osf.Emulator

	traced int64
}

// Run executes the preview workload and reports the regenerated Table 3
// and breakdown.
func Run(p Params) (*Result, error) {
	p.fill()
	w := &world{p: p}
	if err := w.setup(); err != nil {
		return nil, err
	}
	w.startGhostview()
	w.startXServer()
	w.scheduleBackgroundTraffic()
	half := vtime.Duration(w.p.Pages) * w.p.PageInterval / 2
	w.spin.Sim.After(half, w.snapshotCensus)
	w.spin.Sim.Run(8_000_000)
	return w.collect(), nil
}

// setup boots both machines, loads the extensions, and installs the
// Table 3 handler population.
func (w *world) setup() error {
	var err error
	if w.spin, err = kernel.Boot(kernel.Config{Name: "spin", Metered: true}); err != nil {
		return err
	}
	if w.remote, err = kernel.Boot(kernel.Config{Name: "ghost", ShareWith: w.spin}); err != nil {
		return err
	}
	w.spin.Sched.WakeLatency = w.p.WakeLatency

	link := netwire.NewLink(w.spin.Sim, 0, 0)
	nicA, err := link.Attach("mac-spin")
	if err != nil {
		return err
	}
	if w.nicB, err = link.Attach("mac-ghost"); err != nil {
		return err
	}
	arp := map[string]string{"10.1.0.1": "mac-spin", "10.1.0.2": "mac-ghost"}
	if w.sa, err = netstack.New(netstack.Config{Dispatcher: w.spin.Dispatcher,
		CPU: w.spin.CPU, Sched: w.spin.Sched, NIC: nicA, IP: "10.1.0.1", ARP: arp}); err != nil {
		return err
	}
	if w.sb, err = netstack.New(netstack.Config{Dispatcher: w.remote.Dispatcher,
		CPU: w.remote.CPU, Sched: w.remote.Sched, NIC: w.nicB, IP: "10.1.0.2", ARP: arp,
		Prefix: "ghost:"}); err != nil {
		return err
	}
	if w.fsA, err = fs.New(w.spin.Dispatcher, w.spin.CPU, ""); err != nil {
		return err
	}
	// Seed the font files the X server reads while rendering.
	w.fsA.Put("/usr/lib/X11/fonts/fonts.dir", []byte("fixed.fon 7x13.fon"))
	w.fsA.Put("/usr/lib/X11/fonts/fixed.fon", make([]byte, 64*1024))

	// Load the OSF emulator (the X server's personality) and the Mach
	// emulator (present, guarded, no Mach tasks running — its guard
	// contributes to the Syscall event's population).
	w.emu = osf.New(w.spin.Trap, w.sa, w.fsA)
	if _, err = w.spin.LoadExtension(w.emu.Image()); err != nil {
		return err
	}
	if _, err = w.spin.LoadExtension(mach.Image(&mach.Emulator{})); err != nil {
		return err
	}
	return w.installPopulation()
}

// installPopulation installs the extra handlers and guards that make each
// event's handler/guard census match Table 3.
func (w *world) installPopulation() error {
	pktSig := rtti.Sig(nil, rtti.Word, netstack.PacketType)
	nop := func(any, []any) any { return nil }
	mod := rtti.NewModule("PreviewExtensions")

	install := func(ev *dispatch.Event, name string, preds ...*codegen.Pred) error {
		opts := make([]dispatch.InstallOption, 0, len(preds))
		for _, p := range preds {
			opts = append(opts, dispatch.WithGuard(dispatch.Guard{Pred: p}))
		}
		_, err := ev.Install(dispatch.Handler{
			Proc: &rtti.Proc{Name: name, Module: mod, Sig: ev.Signature()},
			Fn:   nop,
		}, opts...)
		return err
	}
	_ = pktSig

	// Ether.PacketArrived: intrinsic + IP(1g) -> add ARP and RARP
	// watchers => 4 handlers, 3 guards.
	if err := install(w.sa.EtherArrived, "Arp.EtherInput", codegen.ArgEq(0, 0x0806)); err != nil {
		return err
	}
	if err := install(w.sa.EtherArrived, "Rarp.EtherInput", codegen.ArgEq(0, 0x8035)); err != nil {
		return err
	}
	// Ip.PacketArrived: intrinsic + UDP(1g) + TCP(1g) -> add ICMP, IGMP,
	// RSVP => 6 handlers, 5 guards.
	for _, proto := range []struct {
		name string
		num  uint64
	}{{"Icmp.IpInput", 1}, {"Igmp.IpInput", 2}, {"Rsvp.IpInput", 46}} {
		if err := install(w.sa.IPArrived, proto.name, codegen.ArgEq(0, proto.num)); err != nil {
			return err
		}
	}
	// Udp.PacketArrived: the X server binds port 53 through a system
	// call; four more services bind directly; plus one unguarded
	// monitor => 6 handlers, 5 guards.
	for _, port := range []uint16{111, 512, 520, 514} {
		if _, err := w.sa.BindUDP(port); err != nil {
			return err
		}
	}
	if err := install(w.sa.UDPArrived, "UdpMon.Input"); err != nil {
		return err
	}
	// Tcp.PacketArrived: intrinsic demux + the OSF port watcher
	// => 2 handlers, 1 guard (already installed by the emulator image).

	// MachineTrap.Syscall: OSF(1g) + Mach(1g) + the asynchronous
	// per-application system call tracer (§2.6) => 3 handlers, 2 guards.
	sysEv, _ := w.spin.Dispatcher.Lookup("MachineTrap.Syscall")
	_, err := sysEv.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "UnixServer.SyscallTracer", Module: mod, Sig: sysEv.Signature()},
		Fn: func(any, []any) any {
			w.traced++
			return nil
		},
	}, dispatch.Async(), dispatch.Last())
	if err != nil {
		return err
	}

	// Strand.Run: intrinsic + user-space thread save/restore + profiler
	// => 4 handlers, 3 guards.
	runEv := w.spin.Sched.RunEvent
	if err := install(runEv, "UserThreads.Save", codegen.ArgLt(0, 1<<20)); err != nil {
		return err
	}
	if err := install(runEv, "UserThreads.Restore", codegen.ArgLt(0, 1<<20)); err != nil {
		return err
	}
	if err := install(runEv, "Profiler.Sample", codegen.ArgNe(0, 0)); err != nil {
		return err
	}
	// Events.EventNotify: intrinsic + a select monitor carrying two
	// guards => 2 handlers, 2 guards.
	if err := install(w.emu.EventNotify, "SelectMon.Notify",
		codegen.ArgNe(0, 0), codegen.ArgLt(0, 1<<20)); err != nil {
		return err
	}
	return nil
}

// scheduleBackgroundTraffic produces the workload's noise: name-service
// datagrams and ARP broadcasts spread across the preview, plus the
// background daemon strand that pads scheduling activity.
func (w *world) scheduleBackgroundTraffic() {
	total := vtime.Duration(w.p.Pages+1) * w.p.PageInterval
	udpSock, _ := w.sb.BindUDP(5353)
	for i := 0; i < w.p.UDPDatagrams; i++ {
		at := total / vtime.Duration(w.p.UDPDatagrams+1) * vtime.Duration(i+1)
		w.spin.Sim.After(at, func() {
			_ = udpSock.Send("10.1.0.1", 53, []byte("name-query"))
		})
	}
	for i := 0; i < w.p.ArpFrames; i++ {
		at := total / vtime.Duration(w.p.ArpFrames+1) * vtime.Duration(i+1)
		w.spin.Sim.After(at, func() {
			_ = w.nicB.Send(&netwire.Frame{Dst: "mac-spin", EtherType: netwire.TypeARP, Size: 28})
		})
	}
	// The daemon strand: wakes on a timer for the lifetime of the
	// preview, modelling the emulator's housekeeping threads.
	deadline := w.spin.Clock.Now().Add(total)
	w.spin.Sched.Spawn("unix-daemon", 2, func(st *sched.Strand) sched.Status {
		if w.spin.Clock.Now() >= deadline {
			return sched.Done
		}
		if w.onDaemonTick != nil {
			w.onDaemonTick()
		}
		_ = w.spin.Sched.WakeAfter(st, w.p.DaemonPeriod)
		return sched.Block
	})
}

// startGhostview runs the document producer on the remote machine.
func (w *world) startGhostview() {
	page := make([]byte, w.p.PageBytes)
	var conn *netstack.TCPConn
	sent := 0
	waiting := false
	started := false
	w.remote.Sched.Spawn("ghostview", 1, func(st *sched.Strand) sched.Status {
		if !started {
			// The user starts ghostview once the X server is up;
			// give the server time to acquire its display ports (the
			// simulated TCP does not retransmit a SYN that arrives
			// before the listener exists).
			started = true
			_ = w.remote.Sched.WakeAfter(st, vtime.Micros(50_000))
			return sched.Block
		}
		if conn == nil {
			var err error
			conn, err = w.sb.DialTCP("10.1.0.1", 6000)
			if err != nil {
				return sched.Done
			}
		}
		if !conn.Established() {
			conn.AwaitEstablished(st)
			return sched.Block
		}
		// Drain replies (X events) so they do not pile up.
		for {
			if _, ok := conn.Recv(); !ok {
				break
			}
		}
		if sent == w.p.Pages {
			_ = conn.Close()
			return sched.Done
		}
		if !waiting {
			// Process the next PostScript page, then ship it.
			waiting = true
			_ = w.remote.Sched.WakeAfter(st, w.p.PageInterval)
			return sched.Block
		}
		waiting = false
		_ = conn.Send(page)
		sent++
		return sched.Yield
	})
}

// startXServer runs the display server on the SPIN machine as an OSF task.
func (w *world) startXServer() {
	var (
		listenFDs []uint64
		connFD    uint64
		udpFD     uint64
		fontFD    uint64
		setup     bool
		pageBytes int
		reads     int
		pages     int
		received  int64
		closed    bool
	)
	e := w.emu
	var xStrand *sched.Strand
	xStrand = w.spin.Sched.Spawn("X11-server", 1, func(st *sched.Strand) sched.Status {
		if !setup {
			setup = true
			// The X server runs as a Digital UNIX process: attach it
			// to the emulator with its own address space.
			e.Attach(st, w.spin.VM.NewSpace())
			// The X server acquires its three TCP ports (display
			// transports): Table 3's three AddTcpPortHandler raises.
			for _, port := range []uint64{6000, 6001, 6002} {
				fd, _ := e.Sys(st, osf.SysSocket, nil, osf.SockStream)
				_, _ = e.Sys(st, osf.SysBind, nil, fd, port)
				_, _ = e.Sys(st, osf.SysListen, nil, fd)
				listenFDs = append(listenFDs, fd)
			}
			udpFD, _ = e.Sys(st, osf.SysSocket, nil, osf.SockDgram)
			_, _ = e.Sys(st, osf.SysBind, nil, udpFD, 53)
			fontFD, _ = e.Sys(st, osf.SysOpen, &osf.Extra{Str: "/usr/lib/X11/fonts/fixed.fon"})
		}

		// One select per dispatch: the X server's main loop.
		mask, _ := e.Sys(st, osf.SysSelect, nil, listenFDs[0], connFD, udpFD)

		if connFD == 0 {
			fd, errno := e.Sys(st, osf.SysAccept, nil, listenFDs[0])
			if errno == osf.EWOULDBLOCK {
				_ = e.AwaitReadable(st, listenFDs[0])
				return sched.Block
			}
			connFD = fd
		}

		// Drain the name-service socket when select flagged it.
		if mask&4 != 0 {
			for {
				if _, errno := e.Sys(st, osf.SysRecvFrom, &osf.Extra{}, udpFD); errno != osf.ESUCCESS {
					break
				}
			}
		}

		// Read page-image data until the socket would block.
		for {
			ex := &osf.Extra{}
			n, errno := e.Sys(st, osf.SysRead, ex, connFD, 65536)
			if errno == osf.EWOULDBLOCK {
				break
			}
			if errno != osf.ESUCCESS {
				break
			}
			if n == 0 { // EOF: ghostview finished
				if !closed {
					closed = true
					for _, fd := range listenFDs {
						_, _ = e.Sys(st, osf.SysClose, nil, fd)
					}
					_, _ = e.Sys(st, osf.SysClose, nil, connFD)
					_, _ = e.Sys(st, osf.SysClose, nil, udpFD)
				}
				return sched.Done
			}
			received += int64(n)
			pageBytes += int(n)
			reads++
			if reads%w.p.ReplyEvery == 0 {
				// X events and exposure replies back to the client.
				_, _ = e.Sys(st, osf.SysWrite,
					&osf.Extra{Buf: make([]byte, w.p.ReplyBytes)}, connFD)
			}
			if pageBytes >= w.p.PageBytes {
				pageBytes -= w.p.PageBytes
				pages++
				w.renderPage(st, fontFD)
			}
		}
		if conn, ok := e.ConnOf(st, connFD); ok && conn.EOF() && !closed {
			closed = true
			return sched.Done
		}
		_ = e.AwaitReadable(st, connFD)
		return sched.Block
	})
	_ = xStrand
	w.onCollect = func(r *Result) {
		r.PagesShown = pages
		r.BytesReceived = received
	}
}

// renderPage charges the per-page work: font file reads (kernel via fs),
// in-kernel decode, and user-space rendering.
func (w *world) renderPage(st *sched.Strand, fontFD uint64) {
	for i := 0; i < w.p.FontReadsPerPage; i++ {
		_, _ = w.emu.Sys(st, osf.SysRead, &osf.Extra{}, fontFD, 512)
	}
	w.spin.CPU.SpendTo(vtime.AccountKernel, w.p.DecodePerPage)
	w.spin.CPU.SpendTo(vtime.AccountUser, w.p.RenderPerPage)
}

// snapshotCensus records each event's handler/guard population while the
// preview is in full swing.
func (w *world) snapshotCensus() {
	w.census = make(map[string][2]int)
	for _, ev := range w.spin.Dispatcher.Events() {
		s := ev.Stats()
		w.census[ev.Name()] = [2]int{s.Handlers, s.Guards}
	}
}

// collect assembles the result after the simulation drains.
func (w *world) collect() *Result {
	r := &Result{}
	if w.onCollect != nil {
		w.onCollect(r)
	}
	names := []string{
		"Ether.PacketArrived",
		"Ip.PacketArrived",
		"Udp.PacketArrived",
		"Tcp.PacketArrived",
		"OsfNet.DelTcpPortHandler",
		"OsfNet.AddTcpPortHandler",
		"MachineTrap.Syscall",
		"Strand.Run",
		"Events.EventNotify",
	}
	for _, n := range names {
		ev, ok := w.spin.Dispatcher.Lookup(n)
		if !ok {
			continue
		}
		s := ev.Stats()
		row := Row{Event: n, Raised: s.Raised, Time: s.Time,
			Handlers: s.Handlers, Guards: s.Guards}
		if hg, ok := w.census[n]; ok {
			row.Handlers, row.Guards = hg[0], hg[1]
		}
		r.Rows = append(r.Rows, row)
	}
	r.Total = w.spin.Elapsed()
	b := w.spin.CPU.Breakdown()
	r.User = b.Of(vtime.AccountUser)
	r.Kernel = b.Of(vtime.AccountKernel)
	r.Events = b.Of(vtime.AccountEvents)
	busy := r.User + r.Kernel + r.Events
	if r.Total > busy {
		r.Idle = r.Total - busy
	}
	r.TracedSyscalls = w.traced
	return r
}
