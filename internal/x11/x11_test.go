package x11

import (
	"strings"
	"testing"

	"spin/internal/vtime"
)

// TestPreviewApproximatesTable3 runs the calibrated workload and checks
// each regenerated row lands near the paper's Table 3. Exact counts (the
// three OsfNet raises, 24 UDP datagrams, 7 ARP frames) are pinned; traffic
// and scheduling volumes are checked within bands.
func TestPreviewApproximatesTable3(t *testing.T) {
	r, err := Run(Params{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)

	rows := map[string]Row{}
	for _, row := range r.Rows {
		rows[row.Event] = row
	}
	within := func(name string, got, want, tolPct int64) {
		t.Helper()
		lo := want - want*tolPct/100
		hi := want + want*tolPct/100
		if got < lo || got > hi {
			t.Errorf("%s raised = %d, want %d +-%d%%", name, got, want, tolPct)
		}
	}
	// Paper Table 3 counts.
	within("Ether.PacketArrived", rows["Ether.PacketArrived"].Raised, 2536, 15)
	within("Ip.PacketArrived", rows["Ip.PacketArrived"].Raised, 2529, 15)
	within("Tcp.PacketArrived", rows["Tcp.PacketArrived"].Raised, 2505, 15)
	within("MachineTrap.Syscall", rows["MachineTrap.Syscall"].Raised, 3976, 25)
	within("Strand.Run", rows["Strand.Run"].Raised, 7936, 25)
	within("Events.EventNotify", rows["Events.EventNotify"].Raised, 595, 40)
	if got := rows["Udp.PacketArrived"].Raised; got != 24 {
		t.Errorf("Udp raised = %d, want 24", got)
	}
	if got := rows["OsfNet.AddTcpPortHandler"].Raised; got != 3 {
		t.Errorf("AddTcpPortHandler raised = %d, want 3", got)
	}
	if got := rows["OsfNet.DelTcpPortHandler"].Raised; got != 3 {
		t.Errorf("DelTcpPortHandler raised = %d, want 3", got)
	}

	// Handler/guard census must match the paper exactly.
	censusWant := map[string][2]int{
		"Ether.PacketArrived":      {4, 3},
		"Ip.PacketArrived":         {6, 5},
		"Udp.PacketArrived":        {6, 5},
		"Tcp.PacketArrived":        {2, 1},
		"OsfNet.DelTcpPortHandler": {1, 0},
		"OsfNet.AddTcpPortHandler": {1, 0},
		"MachineTrap.Syscall":      {3, 2},
		"Strand.Run":               {4, 3},
		"Events.EventNotify":       {2, 2},
	}
	for name, want := range censusWant {
		row := rows[name]
		if row.Handlers != want[0] || row.Guards != want[1] {
			t.Errorf("%s handlers/guards = %d/%d, want %d/%d",
				name, row.Handlers, row.Guards, want[0], want[1])
		}
	}

	// Breakdown: total ~23.5s, idle dominates, events well under 1%.
	sec := func(d vtime.Duration) float64 { return float64(d) / 1e9 }
	if got := sec(r.Total); got < 20 || got > 27 {
		t.Errorf("total = %.2fs, want ~23.5", got)
	}
	if got := sec(r.Idle); got < 10 || got > 16 {
		t.Errorf("idle = %.2fs, want ~12.5", got)
	}
	if got := sec(r.User); got < 3.3 || got > 5.1 {
		t.Errorf("user = %.2fs, want ~4.2", got)
	}
	if got := sec(r.Kernel); got < 5.4 || got > 8.2 {
		t.Errorf("kernel = %.2fs, want ~6.8", got)
	}
	if r.Events <= 0 || sec(r.Events) > 0.3 {
		t.Errorf("events = %.3fs, want small and positive", sec(r.Events))
	}

	// Workload integrity.
	if r.PagesShown != 12 {
		t.Errorf("pages shown = %d", r.PagesShown)
	}
	if r.BytesReceived != int64(12*285_000) {
		t.Errorf("bytes = %d", r.BytesReceived)
	}
	if r.TracedSyscalls == 0 {
		t.Error("async syscall tracer never ran")
	}
	if !strings.Contains(r.String(), "Ether.PacketArrived") {
		t.Error("String() missing rows")
	}
}

func TestPreviewSmallConfiguration(t *testing.T) {
	// A scaled-down preview still completes and keeps the invariant
	// Ether = Ip + ARP and Ip = Tcp + Udp.
	r, err := Run(Params{
		Pages: 2, PageBytes: 30_000, PageInterval: vtime.Micros(100_000),
		UDPDatagrams: 4, ArpFrames: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Row{}
	for _, row := range r.Rows {
		rows[row.Event] = row
	}
	ether := rows["Ether.PacketArrived"].Raised
	ip := rows["Ip.PacketArrived"].Raised
	tcp := rows["Tcp.PacketArrived"].Raised
	udp := rows["Udp.PacketArrived"].Raised
	if ether != ip+2 {
		t.Errorf("ether=%d ip=%d arp=2", ether, ip)
	}
	if ip != tcp+udp {
		t.Errorf("ip=%d tcp=%d udp=%d", ip, tcp, udp)
	}
	if r.PagesShown != 2 {
		t.Errorf("pages = %d", r.PagesShown)
	}
}
