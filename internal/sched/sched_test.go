package sched

import (
	"testing"
	"time"

	"spin/internal/dispatch"
	"spin/internal/rtti"
	"spin/internal/vtime"
)

func newRig(t *testing.T, metered bool) (*dispatch.Dispatcher, *Scheduler, *vtime.Simulator, *vtime.CPU) {
	t.Helper()
	var cpu *vtime.CPU
	var sim *vtime.Simulator
	var opts []dispatch.Option
	if metered {
		var clock vtime.Clock
		cpu = vtime.NewCPU(&clock, vtime.AlphaModel())
		sim = vtime.NewSimulator(&clock)
		opts = append(opts, dispatch.WithCPU(cpu), dispatch.WithSimulator(sim))
	}
	d := dispatch.New(opts...)
	s, err := New(d, cpu, sim)
	if err != nil {
		t.Fatal(err)
	}
	return d, s, sim, cpu
}

func TestSpawnAndRun(t *testing.T) {
	_, s, _, _ := newRig(t, false)
	steps := 0
	st := s.Spawn("worker", 1, func(st *Strand) Status {
		steps++
		if steps == 3 {
			return Done
		}
		return Yield
	})
	if st.State() != Ready || st.Name() != "worker" || st.Space() != 1 || st.ID() == 0 {
		t.Fatalf("strand = %v", st)
	}
	s.RunToCompletion(0)
	if steps != 3 {
		t.Fatalf("steps = %d", steps)
	}
	if st.State() != Dead || s.Live() != 0 {
		t.Fatalf("state=%v live=%d", st.State(), s.Live())
	}
}

func TestRoundRobinFairness(t *testing.T) {
	_, s, _, _ := newRig(t, false)
	var trace []string
	mk := func(name string, n int) StepFunc {
		count := 0
		return func(st *Strand) Status {
			trace = append(trace, name)
			count++
			if count == n {
				return Done
			}
			return Yield
		}
	}
	s.Spawn("a", 0, mk("a", 2))
	s.Spawn("b", 0, mk("b", 2))
	s.RunToCompletion(0)
	want := []string{"a", "b", "a", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestStrandRunRaisedPerSwitch(t *testing.T) {
	// Table 3: Strand.Run occurs during each scheduling operation.
	_, s, _, _ := newRig(t, false)
	s.Spawn("w", 0, func(st *Strand) Status {
		if s.Switches() >= 5 {
			return Done
		}
		return Yield
	})
	s.RunToCompletion(0)
	stats := s.RunEvent.Stats()
	if stats.Raised != s.Switches() || stats.Raised != 5 {
		t.Fatalf("raised=%d switches=%d", stats.Raised, s.Switches())
	}
}

func TestBlockAndWakeup(t *testing.T) {
	_, s, _, _ := newRig(t, false)
	phase := 0
	st := s.Spawn("sleeper", 0, func(st *Strand) Status {
		phase++
		if phase == 1 {
			return Block
		}
		return Done
	})
	s.RunToCompletion(0)
	if st.State() != Blocked || phase != 1 {
		t.Fatalf("state=%v phase=%d", st.State(), phase)
	}
	s.Wakeup(st)
	s.RunToCompletion(0)
	if st.State() != Dead || phase != 2 {
		t.Fatalf("state=%v phase=%d", st.State(), phase)
	}
	// Waking a dead strand is a no-op.
	s.Wakeup(st)
	if st.State() != Dead || s.QueueLen() != 0 {
		t.Fatal("dead strand rescheduled")
	}
}

func TestWakeAfterUsesSimulator(t *testing.T) {
	_, s, sim, cpu := newRig(t, true)
	woke := false
	st := s.Spawn("timer", 0, func(st *Strand) Status {
		if woke {
			return Done
		}
		return Block
	})
	sim.Run(0)
	if st.State() != Blocked {
		t.Fatalf("state = %v", st.State())
	}
	woke = true
	if err := s.WakeAfter(st, vtime.Micros(500)); err != nil {
		t.Fatal(err)
	}
	sim.Run(0)
	if st.State() != Dead {
		t.Fatalf("state = %v", st.State())
	}
	if got := vtime.InMicros(vtime.Duration(cpu.Now())); got < 500 {
		t.Fatalf("clock = %.1fus, want >= 500", got)
	}
}

func TestWakeAfterWithoutSimulator(t *testing.T) {
	_, s, _, _ := newRig(t, false)
	st := s.Spawn("x", 0, func(st *Strand) Status { return Block })
	if err := s.WakeAfter(st, time.Millisecond); err != ErrNoSimulator {
		t.Fatalf("err = %v", err)
	}
}

func TestKill(t *testing.T) {
	_, s, _, _ := newRig(t, false)
	ran := 0
	victim := s.Spawn("victim", 0, func(st *Strand) Status { ran++; return Yield })
	s.Kill(victim)
	s.RunToCompletion(0)
	if ran != 0 || victim.State() != Dead || s.Live() != 0 {
		t.Fatalf("ran=%d state=%v", ran, victim.State())
	}
	s.Kill(victim) // idempotent
	s.Kill(nil)
}

func TestContextSwitchHandlerSeesStrand(t *testing.T) {
	// User-space thread managers install handlers on Strand.Run to save
	// and restore state.
	_, s, _, _ := newRig(t, false)
	var seen []uint64
	proc := &rtti.Proc{Name: "Threads.Switch", Module: rtti.NewModule("Threads"),
		Sig: rtti.Sig(nil, rtti.Word, rtti.RefAny)}
	_, err := s.RunEvent.Install(dispatch.Handler{Proc: proc, Fn: func(clo any, args []any) any {
		seen = append(seen, args[0].(uint64))
		if _, ok := args[1].(*Strand); !ok {
			t.Errorf("second arg is %T", args[1])
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Spawn("w", 0, func(st *Strand) Status { return Done })
	s.RunToCompletion(0)
	if len(seen) != 1 || seen[0] != st.ID() {
		t.Fatalf("seen = %v", seen)
	}
}

func TestEphemeralSwitchHandlerTerminationKillsStrand(t *testing.T) {
	// §2.6: extensions managing user-space threads rely on EPHEMERAL
	// handlers during context switches; premature termination terminates
	// the user-space thread.
	d, s, _, _ := newRig(t, false)
	_ = d // dispatcher already wired
	threads := rtti.NewModule("Threads")
	release := make(chan struct{})
	defer close(release)
	proc := &rtti.Proc{Name: "Threads.Restore", Module: threads,
		Sig: rtti.Sig(nil, rtti.Word, rtti.RefAny), Ephemeral: true}
	b, err := s.RunEvent.Install(dispatch.Handler{Proc: proc, Fn: func(clo any, args []any) any {
		<-release // runaway restore handler
		return nil
	}}, dispatch.Ephemeral(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	st := s.Spawn("user-thread", 0, func(st *Strand) Status { ran++; return Done })
	// Supervisory policy: when the restore handler is terminated, the
	// user-space thread it serves is killed.
	go func() {
		for !b.Terminated() {
			time.Sleep(time.Millisecond)
		}
		s.Kill(st)
	}()
	s.RunToCompletion(0)
	if b.Terminations() == 0 {
		t.Fatal("restore handler was not terminated")
	}
}

func TestSchedulerChargesContextSwitch(t *testing.T) {
	_, s, sim, cpu := newRig(t, true)
	n := 0
	s.Spawn("w", 0, func(st *Strand) Status {
		n++
		if n == 10 {
			return Done
		}
		return Yield
	})
	sim.Run(0)
	perSwitch := vtime.InMicros(vtime.Duration(cpu.Now())) / 10
	// Each switch charges ContextSwitch (12us) plus the Strand.Run raise
	// (a direct call, 0.1+0.02us with two args).
	if perSwitch < 12 || perSwitch > 13 {
		t.Fatalf("per-switch cost = %.2fus", perSwitch)
	}
}

func TestStrandStringAndStates(t *testing.T) {
	_, s, _, _ := newRig(t, false)
	st := s.Spawn("w", 0, func(st *Strand) Status { return Block })
	if st.String() == "" {
		t.Fatal("empty String")
	}
	for _, state := range []State{Ready, Running, Blocked, Dead, State(99)} {
		if state.String() == "" {
			t.Fatal("empty state name")
		}
	}
	if st.RTTIType() != StrandType {
		t.Fatal("RTTIType wrong")
	}
}
