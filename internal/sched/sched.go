// Package sched provides the strand (thread) package and scheduler
// substrate. In SPIN, threads and scheduling are extensions, and the
// scheduler announces every scheduling operation by raising the Strand.Run
// event — Table 3 shows it as the most frequently raised event in the
// document-preview workload. Extensions managing user-space threads install
// EPHEMERAL handlers on it to save and restore thread state during context
// switches (§2.6).
//
// Strands are cooperative state machines: a strand's body is a StepFunc the
// scheduler calls each time the strand is dispatched; the body performs a
// bounded amount of (virtual-time-charged) work and reports whether the
// strand yielded, blocked, or finished. This continuation style keeps the
// whole simulation single-threaded and deterministic under the
// discrete-event clock; see DESIGN.md for the substitution note.
package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"spin/internal/dispatch"
	"spin/internal/rtti"
	"spin/internal/vtime"
)

// State is a strand's scheduling state.
type State int

const (
	// Ready strands are on the run queue.
	Ready State = iota
	// Running is the strand currently executing.
	Running
	// Blocked strands await a Wakeup.
	Blocked
	// Dead strands have finished or been killed.
	Dead
)

func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Dead:
		return "dead"
	}
	return "state(?)"
}

// Status is what a strand body reports after each step.
type Status int

const (
	// Yield keeps the strand runnable; it re-enters the run queue.
	Yield Status = iota
	// Block parks the strand until Wakeup.
	Block
	// Done retires the strand.
	Done
)

// StepFunc is a strand body: called once per dispatch, it performs a slice
// of work and reports the strand's disposition.
type StepFunc func(st *Strand) Status

// StrandType is the rtti reference type for strands (the paper's Strand.T).
var StrandType = rtti.NewRef("Strand.T", nil)

// Module is the strand package's module descriptor; it holds authority
// over the Strand.Run event.
var Module = rtti.NewModule("Strand", "Strand")

// Strand is a thread of control (the paper's Strand.T).
type Strand struct {
	id    uint64
	name  string
	space uint64
	sched *Scheduler
	step  StepFunc
	// state holds a State value. It is atomic because supervisory policy
	// (an EPHEMERAL-termination watchdog, which runs on its own goroutine
	// in real-time mode) may Kill a strand while the scheduler is mid-tick
	// on another.
	state atomic.Int32
	// Locals carries per-strand extension state (emulator task data,
	// socket wait registrations).
	Locals map[string]any
}

// RTTIType implements rtti.Described.
func (s *Strand) RTTIType() rtti.Type { return StrandType }

// ID returns the strand identifier (passed as the first Strand.Run
// argument, so word predicates can discriminate on it).
func (s *Strand) ID() uint64 { return s.id }

// Name returns the strand's diagnostic name.
func (s *Strand) Name() string { return s.name }

// Space returns the identifier of the address space the strand executes
// in; syscall guards discriminate on it (Figure 3).
func (s *Strand) Space() uint64 { return s.space }

// State returns the scheduling state.
func (s *Strand) State() State { return State(s.state.Load()) }

// casState atomically transitions the strand from one state to another,
// reporting whether the transition happened.
func (s *Strand) casState(from, to State) bool {
	return s.state.CompareAndSwap(int32(from), int32(to))
}

func (s *Strand) String() string {
	return fmt.Sprintf("strand %d (%s, %s)", s.id, s.name, s.State())
}

// Scheduler is a round-robin strand scheduler. Each scheduling operation
// raises Strand.Run before dispatching the chosen strand.
type Scheduler struct {
	d   *dispatch.Dispatcher
	cpu *vtime.CPU
	sim *vtime.Simulator

	// RunEvent is Strand.Run: raised with (strand-id, strand) on every
	// dispatch of a strand.
	RunEvent *dispatch.Event

	// mu guards the run queue and the pump flag. It is never held across
	// a Strand.Run raise or a strand step, so strand bodies and handlers
	// may reenter Spawn/Wakeup/Kill freely; strand state itself is atomic
	// (see Strand.state).
	mu       sync.Mutex
	runq     []*Strand
	pumping  bool
	live     atomic.Int64
	nextID   atomic.Uint64
	switches atomic.Int64

	// WakeLatency delays the first dispatch after the run queue goes
	// from empty to non-empty, modelling scheduling quantum and dispatch
	// latency on a timeshared machine. While a woken strand waits out
	// the latency, further wakeups coalesce — which is why the paper's
	// X server performs one select per several arriving packets
	// (Table 3: 595 EventNotify raises against 2505 TCP packets).
	WakeLatency vtime.Duration
}

// ErrNoSimulator is returned by Run when the scheduler was built without a
// simulator; use RunToCompletion instead.
var ErrNoSimulator = errors.New("sched: scheduler has no simulator attached")

// New builds a scheduler over the dispatcher. cpu and sim may be nil for
// unmetered, real-time use. The Strand.Run event is defined with an
// intrinsic handler (the scheduler's own bookkeeping, a no-op) so that a
// freshly booted system dispatches it as a plain procedure call.
func New(d *dispatch.Dispatcher, cpu *vtime.CPU, sim *vtime.Simulator) (*Scheduler, error) {
	s := &Scheduler{d: d, cpu: cpu, sim: sim}
	run, err := d.DefineEvent("Strand.Run",
		rtti.Sig(nil, rtti.Word, rtti.RefAny),
		dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Strand.Run", Module: Module,
				Sig: rtti.Sig(nil, rtti.Word, rtti.RefAny)},
			Fn: func(closure any, args []any) any { return nil },
		}))
	if err != nil {
		return nil, err
	}
	s.RunEvent = run
	return s, nil
}

// Spawn creates a strand in the given address space and makes it runnable.
func (s *Scheduler) Spawn(name string, space uint64, step StepFunc) *Strand {
	st := &Strand{id: s.nextID.Add(1), name: name, space: space, sched: s,
		step: step, Locals: make(map[string]any)}
	st.state.Store(int32(Ready))
	s.live.Add(1)
	s.enqueue(st, true)
	return st
}

// Simulator returns the scheduler's discrete-event simulator, or nil in
// real-time mode. Substrates use it for raw timers that must not be
// starved by strand scheduling.
func (s *Scheduler) Simulator() *vtime.Simulator { return s.sim }

// Live reports the number of non-dead strands.
func (s *Scheduler) Live() int { return int(s.live.Load()) }

// QueueLen reports the run-queue length.
func (s *Scheduler) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runq)
}

// Switches reports the number of scheduling operations performed (each one
// raised Strand.Run).
func (s *Scheduler) Switches() int64 { return s.switches.Load() }

// Wakeup makes a blocked strand runnable. Waking a dead strand is ignored;
// waking a ready or running strand is a no-op. I/O wakeups pay the
// scheduler's WakeLatency before dispatch.
func (s *Scheduler) Wakeup(st *Strand) { s.wakeup(st, false) }

func (s *Scheduler) wakeup(st *Strand, prompt bool) {
	if st == nil || !st.casState(Blocked, Ready) {
		return
	}
	s.enqueue(st, prompt)
}

// WakeAfter schedules a wakeup d into the virtual future. It requires a
// simulator. Timer wakeups dispatch promptly (the timer interrupt runs the
// scheduler), bypassing WakeLatency.
func (s *Scheduler) WakeAfter(st *Strand, d vtime.Duration) error {
	if s.sim == nil {
		return ErrNoSimulator
	}
	s.sim.After(d, func() { s.wakeup(st, true) })
	return nil
}

// After schedules fn to run d into the virtual future on the simulator
// timeline. It requires a simulator; callers that tolerate real-time mode
// (where no virtual timers exist) should treat ErrNoSimulator as "timers
// disabled". The callback runs on the simulator goroutine, serialized with
// strand steps.
func (s *Scheduler) After(d vtime.Duration, fn func()) error {
	if s.sim == nil {
		return ErrNoSimulator
	}
	s.sim.After(d, fn)
	return nil
}

// Kill retires a strand immediately. The paper's user-space thread
// managers use this when an EPHEMERAL context-switch handler is
// terminated: "premature termination results in the termination of the
// user-space thread". Kill is safe to call from any goroutine — in
// real-time mode the EPHEMERAL watchdog that motivates it runs outside
// the scheduler.
func (s *Scheduler) Kill(st *Strand) {
	if st == nil || State(st.state.Swap(int32(Dead))) == Dead {
		return
	}
	s.live.Add(-1)
	s.mu.Lock()
	for i, q := range s.runq {
		if q == st {
			s.runq = append(s.runq[:i], s.runq[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// enqueue appends to the run queue and, under a simulator, arranges for the
// scheduler to pump. Prompt enqueues (timer wakeups, fresh spawns) skip
// WakeLatency.
func (s *Scheduler) enqueue(st *Strand, prompt bool) {
	s.mu.Lock()
	wasEmpty := len(s.runq) == 0
	s.runq = append(s.runq, st)
	pump := s.sim != nil && !s.pumping
	if pump {
		s.pumping = true
	}
	s.mu.Unlock()
	if pump {
		delay := vtime.Duration(0)
		if wasEmpty && !prompt {
			delay = s.WakeLatency
		}
		s.sim.After(delay, s.tickFromSim)
	}
}

func (s *Scheduler) tickFromSim() {
	s.mu.Lock()
	s.pumping = false
	s.mu.Unlock()
	if !s.tick() {
		return
	}
	s.mu.Lock()
	pump := !s.pumping
	if pump {
		s.pumping = true
	}
	s.mu.Unlock()
	if pump {
		s.sim.After(0, s.tickFromSim)
	}
}

// tick performs one scheduling operation: raise Strand.Run, dispatch the
// strand at the head of the queue, and reinsert or retire it. It reports
// whether more runnable work remains.
func (s *Scheduler) tick() bool {
	s.mu.Lock()
	if len(s.runq) == 0 {
		s.mu.Unlock()
		return false
	}
	st := s.runq[0]
	s.runq = s.runq[1:]
	s.mu.Unlock()
	if st.State() == Dead { // killed while queued
		return s.moreRunnable()
	}
	s.switches.Add(1)
	s.cpu.Charge(vtime.ContextSwitch)
	// Announce the scheduling operation. The raise cannot fail for
	// arity reasons; a handler-installed guard rejecting everything
	// would surface ErrNoHandler, which we tolerate: the intrinsic may
	// have been deregistered by an experiment.
	_, _ = s.RunEvent.Raise(st.id, st)
	if !st.casState(Ready, Running) {
		// A context-switch handler (e.g. a terminated EPHEMERAL
		// restore handler) killed the strand during the raise, or a
		// supervisory goroutine killed it between dequeue and dispatch.
		return s.moreRunnable()
	}
	status := st.step(st)
	switch status {
	case Yield:
		// The transition fails only if the strand was killed mid-step;
		// a dead strand must not reenter the queue.
		if st.casState(Running, Ready) {
			s.mu.Lock()
			s.runq = append(s.runq, st)
			s.mu.Unlock()
		}
	case Block:
		st.casState(Running, Blocked)
	case Done:
		if State(st.state.Swap(int32(Dead))) != Dead {
			s.live.Add(-1)
		}
	}
	return s.moreRunnable()
}

// moreRunnable reports whether the run queue is non-empty.
func (s *Scheduler) moreRunnable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runq) > 0
}

// RunToCompletion drives the scheduler without a simulator until the run
// queue empties, for unmetered unit tests. It stops after limit ticks when
// limit > 0.
func (s *Scheduler) RunToCompletion(limit int) int {
	ticks := 0
	for s.tick() || s.moreRunnable() {
		ticks++
		if limit > 0 && ticks >= limit {
			break
		}
	}
	return ticks
}
