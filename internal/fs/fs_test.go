package fs

import (
	"bytes"
	"errors"
	"testing"

	"spin/internal/dispatch"
	"spin/internal/vtime"
)

func newFS(t *testing.T) (*dispatch.Dispatcher, *FS, *vtime.Simulator) {
	t.Helper()
	var clock vtime.Clock
	cpu := vtime.NewCPU(&clock, vtime.AlphaModel())
	sim := vtime.NewSimulator(&clock)
	d := dispatch.New(dispatch.WithCPU(cpu), dispatch.WithSimulator(sim))
	s, err := New(d, cpu, "")
	if err != nil {
		t.Fatal(err)
	}
	return d, s, sim
}

func TestOpenWriteReadClose(t *testing.T) {
	_, s, _ := newFS(t)
	fd, err := s.Open("/etc/motd")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(fd, []byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(fd, []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("/etc/motd")
	if !ok || string(got) != "hello world" {
		t.Fatalf("content = %q ok=%v", got, ok)
	}
	// Sequential reads through a fresh descriptor.
	fd2, _ := s.Open("/etc/motd")
	a, err := s.Read(fd2, 5)
	if err != nil || string(a) != "hello" {
		t.Fatalf("read = %q err=%v", a, err)
	}
	b, _ := s.Read(fd2, 100)
	if string(b) != " world" {
		t.Fatalf("read = %q", b)
	}
	c, _ := s.Read(fd2, 10)
	if len(c) != 0 {
		t.Fatalf("read past EOF = %q", c)
	}
	if err := s.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(fd2); err != nil {
		t.Fatal(err)
	}
}

func TestBadFD(t *testing.T) {
	_, s, _ := newFS(t)
	if err := s.Write(999, []byte("x")); !errors.Is(err, ErrBadFD) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Read(999, 1); !errors.Is(err, ErrBadFD) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemove(t *testing.T) {
	_, s, _ := newFS(t)
	s.Put("/tmp/x", []byte("data"))
	ok, err := s.Remove("/tmp/x")
	if err != nil || !ok {
		t.Fatalf("remove = %v, %v", ok, err)
	}
	if s.Exists("/tmp/x") {
		t.Fatal("file survived removal")
	}
	ok, _ = s.Remove("/tmp/x")
	if ok {
		t.Fatal("double remove reported success")
	}
	// An open file cannot be removed.
	fd, _ := s.Open("/tmp/y")
	if ok, _ := s.Remove("/tmp/y"); ok {
		t.Fatal("open file removed")
	}
	_ = s.Close(fd)
	if ok, _ := s.Remove("/tmp/y"); !ok {
		t.Fatal("closed file not removable")
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"/a/b":    "/a/b",
		"a/b":     "/a/b",
		"/a//b/":  "/a/b",
		"/./a/.":  "/a",
		"":        "/",
		"/":       "/",
		"a/./b//": "/a/b",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestList(t *testing.T) {
	_, s, _ := newFS(t)
	s.Put("/fonts/a", nil)
	s.Put("/fonts/b", nil)
	s.Put("/etc/x", nil)
	got := s.List("/fonts")
	if len(got) != 2 || got[0] != "/fonts/a" || got[1] != "/fonts/b" {
		t.Fatalf("list = %v", got)
	}
	if len(s.List("/")) != 3 {
		t.Fatal("root list wrong")
	}
}

func TestDosName(t *testing.T) {
	cases := map[string]string{
		"C:\\FONTS\\FIXED.FON": "/fonts/fixed.fon",
		"D:\\X":                "/x",
		"\\TMP\\A.TXT":         "/tmp/a.txt",
		"README.TXT":           "/readme.txt",
	}
	for in, want := range cases {
		if got := DosName(in); got != want {
			t.Errorf("DosName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDosFilterInterposesTransparently(t *testing.T) {
	// §2.3: the MS-DOS name space over a UNIX file system. The raiser
	// passes a DOS path; the intrinsic handler (and any other handler)
	// sees the converted UNIX path; the raiser's string is untouched.
	_, s, _ := newFS(t)
	if _, err := InstallDosFilter(s); err != nil {
		t.Fatal(err)
	}
	dosPath := "C:\\AUTOEXEC.BAT"
	fd, err := s.Open(dosPath)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Write(fd, []byte("@echo off"))
	_ = s.Close(fd)
	if !s.Exists("/autoexec.bat") {
		t.Fatalf("file not created under UNIX name; have %v", s.List("/"))
	}
	if dosPath != "C:\\AUTOEXEC.BAT" {
		t.Fatal("raiser's argument mutated")
	}
	// UNIX names pass through untouched.
	fd2, _ := s.Open("/etc/passwd")
	_ = s.Close(fd2)
	if !s.Exists("/etc/passwd") {
		t.Fatal("UNIX name mangled")
	}
	// Remove through the DOS name.
	ok, err := s.Remove("C:\\autoexec.bat")
	if err != nil || !ok {
		t.Fatalf("remove via DOS name = %v, %v", ok, err)
	}
}

func TestDosFilterUninstall(t *testing.T) {
	_, s, _ := newFS(t)
	bindings, err := InstallDosFilter(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 2 {
		t.Fatalf("bindings = %d", len(bindings))
	}
	for _, b := range bindings {
		if err := b.Event().Uninstall(b); err != nil {
			t.Fatal(err)
		}
	}
	fd, _ := s.Open("C:\\RAW")
	_ = s.Close(fd)
	if !s.Exists("/C:\\RAW") {
		t.Fatalf("filter still active after uninstall; have %v", s.List("/"))
	}
}

func TestLazyReplication(t *testing.T) {
	// §2.6: the write happens synchronously; replication is asynchronous.
	d, s, sim := newFS(t)
	replica, err := New(d, nil, "replica:")
	if err != nil {
		t.Fatal(err)
	}
	r, err := InstallReplicator(s, replica)
	if err != nil {
		t.Fatal(err)
	}
	fd, _ := s.Open("/data/log")
	if err := s.Write(fd, []byte("entry-1")); err != nil {
		t.Fatal(err)
	}
	// The synchronous write is visible immediately...
	if got, _ := s.Get("/data/log"); string(got) != "entry-1" {
		t.Fatalf("primary = %q", got)
	}
	// ...the replica only after the detached thread runs.
	if replica.Exists("/data/log") {
		t.Fatal("replication was synchronous")
	}
	sim.Run(0)
	if got, _ := replica.Get("/data/log"); string(got) != "entry-1" {
		t.Fatalf("replica = %q", got)
	}
	if r.Applied != 1 {
		t.Fatalf("applied = %d", r.Applied)
	}
	// Multiple writes accumulate in order.
	_ = s.Write(fd, []byte(" entry-2"))
	sim.Run(0)
	want := "entry-1 entry-2"
	if got, _ := replica.Get("/data/log"); string(got) != want {
		t.Fatalf("replica = %q, want %q", got, want)
	}
	if err := r.Uninstall(); err != nil {
		t.Fatal(err)
	}
	_ = s.Write(fd, []byte(" entry-3"))
	sim.Run(0)
	if got, _ := replica.Get("/data/log"); string(got) != want {
		t.Fatal("replication continued after uninstall")
	}
}

func TestReplicationAndDosFilterCompose(t *testing.T) {
	d, s, sim := newFS(t)
	replica, _ := New(d, nil, "replica:")
	if _, err := InstallDosFilter(s); err != nil {
		t.Fatal(err)
	}
	if _, err := InstallReplicator(s, replica); err != nil {
		t.Fatal(err)
	}
	fd, _ := s.Open("C:\\LOG.TXT")
	_ = s.Write(fd, []byte("x"))
	sim.Run(0)
	if got, _ := replica.Get("/log.txt"); !bytes.Equal(got, []byte("x")) {
		t.Fatalf("replica under DOS-filtered name = %q", got)
	}
}

func TestOpsCounter(t *testing.T) {
	_, s, _ := newFS(t)
	fd, _ := s.Open("/a")
	_ = s.Write(fd, []byte("1"))
	_, _ = s.Read(fd, 1)
	_ = s.Close(fd)
	_, _ = s.Remove("/a")
	if s.Ops != 5 {
		t.Fatalf("ops = %d", s.Ops)
	}
}
