// Package fs is the file-system substrate: an in-memory UNIX-like file
// store whose operations are announced as events, so extensions can
// interpose on them the way the paper's examples do — the MS-DOS name
// space provided "over a UNIX file system by transparently converting file
// names from one standard to the other" via a filter handler (§2.3), and
// lazy replication where "the original code should perform the write
// synchronously, but the replication can be done asynchronously" (§2.6).
//
// SPIN carried six different file systems as extensions; this package is
// the substrate they would stack on.
package fs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"spin/internal/dispatch"
	"spin/internal/rtti"
	"spin/internal/vtime"
)

// Module is the file system's module descriptor.
var Module = rtti.NewModule("Fs", "Fs")

// Errors.
var (
	ErrNotFound = errors.New("fs: no such file")
	ErrBadFD    = errors.New("fs: bad file descriptor")
	ErrIsOpen   = errors.New("fs: file is open")
)

// FileDataType is the rtti type of data buffers passed through events.
var FileDataType = rtti.NewRef("Fs.Data", nil)

// Data wraps a byte buffer for event passing.
type Data struct{ Bytes []byte }

// RTTIType implements rtti.Described.
func (d *Data) RTTIType() rtti.Type { return FileDataType }

type file struct {
	data []byte
	open int
}

type openFile struct {
	path string
	f    *file
	pos  int
}

// FS is one mounted file system instance. The exported events are:
//
//	Fs.Open(path: TEXT): WORD            - returns a descriptor
//	Fs.Write(fd: WORD, data: Fs.Data)    - append-style write
//	Fs.Read(fd: WORD, n: WORD): Fs.Data  - sequential read
//	Fs.Close(fd: WORD)
//	Fs.Remove(path: TEXT): BOOLEAN
//
// The intrinsic handler of each event is the native implementation;
// extensions interpose with filters and additional handlers.
type FS struct {
	cpu *vtime.CPU

	OpenEvent   *dispatch.Event
	WriteEvent  *dispatch.Event
	ReadEvent   *dispatch.Event
	CloseEvent  *dispatch.Event
	RemoveEvent *dispatch.Event

	files  map[string]*file
	fds    map[uint64]*openFile
	nextFD uint64

	// Ops counts intrinsic operations performed.
	Ops int64
}

// New mounts an empty file system and defines its events on d. prefix
// namespaces the event names when several file systems coexist.
func New(d *dispatch.Dispatcher, cpu *vtime.CPU, prefix string) (*FS, error) {
	s := &FS{cpu: cpu, files: make(map[string]*file), fds: make(map[uint64]*openFile), nextFD: 3}

	def := func(name string, sig rtti.Signature, fn dispatch.HandlerFn) (*dispatch.Event, error) {
		return d.DefineEvent(prefix+name, sig, dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: name, Module: Module, Sig: sig},
			Fn:   fn,
		}))
	}
	var err error
	if s.OpenEvent, err = def("Fs.Open", rtti.Sig(rtti.Word, rtti.Text), s.intrinsicOpen); err != nil {
		return nil, err
	}
	if s.WriteEvent, err = def("Fs.Write", rtti.Sig(nil, rtti.Word, FileDataType), s.intrinsicWrite); err != nil {
		return nil, err
	}
	if s.ReadEvent, err = def("Fs.Read", rtti.Sig(FileDataType, rtti.Word, rtti.Word), s.intrinsicRead); err != nil {
		return nil, err
	}
	if s.CloseEvent, err = def("Fs.Close", rtti.Sig(nil, rtti.Word), s.intrinsicClose); err != nil {
		return nil, err
	}
	if s.RemoveEvent, err = def("Fs.Remove", rtti.Sig(rtti.Bool, rtti.Text), s.intrinsicRemove); err != nil {
		return nil, err
	}
	return s, nil
}

// Normalize canonicalizes a UNIX path.
func Normalize(path string) string {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p == "" || p == "." {
			continue
		}
		out = append(out, p)
	}
	return "/" + strings.Join(out, "/")
}

// --- Intrinsic handlers (the native implementation) ---

func (s *FS) intrinsicOpen(clo any, args []any) any {
	s.cpu.ChargeTo(vtime.AccountKernel, vtime.FSOp)
	s.Ops++
	path := Normalize(args[0].(string))
	f, ok := s.files[path]
	if !ok {
		f = &file{}
		s.files[path] = f
	}
	fd := s.nextFD
	s.nextFD++
	f.open++
	s.fds[fd] = &openFile{path: path, f: f}
	return fd
}

func (s *FS) intrinsicWrite(clo any, args []any) any {
	s.cpu.ChargeTo(vtime.AccountKernel, vtime.FSOp)
	s.Ops++
	of, ok := s.fds[args[0].(uint64)]
	if !ok {
		return nil
	}
	of.f.data = append(of.f.data, args[1].(*Data).Bytes...)
	return nil
}

func (s *FS) intrinsicRead(clo any, args []any) any {
	s.cpu.ChargeTo(vtime.AccountKernel, vtime.FSOp)
	s.Ops++
	of, ok := s.fds[args[0].(uint64)]
	if !ok {
		return (*Data)(nil)
	}
	n := int(args[1].(uint64))
	if rem := len(of.f.data) - of.pos; n > rem {
		n = rem
	}
	d := &Data{Bytes: of.f.data[of.pos : of.pos+n]}
	of.pos += n
	return d
}

func (s *FS) intrinsicClose(clo any, args []any) any {
	s.cpu.ChargeTo(vtime.AccountKernel, vtime.FSOp)
	s.Ops++
	fd := args[0].(uint64)
	if of, ok := s.fds[fd]; ok {
		of.f.open--
		delete(s.fds, fd)
	}
	return nil
}

func (s *FS) intrinsicRemove(clo any, args []any) any {
	s.cpu.ChargeTo(vtime.AccountKernel, vtime.FSOp)
	s.Ops++
	path := Normalize(args[0].(string))
	f, ok := s.files[path]
	if !ok || f.open > 0 {
		return false
	}
	delete(s.files, path)
	return true
}

// --- Public API: raises the events, so interposed extensions run ---

// Open opens (creating if necessary) the file at path and returns a
// descriptor.
func (s *FS) Open(path string) (uint64, error) {
	res, err := s.OpenEvent.Raise(path)
	if err != nil {
		return 0, err
	}
	return res.(uint64), nil
}

// Write appends data to the open file.
func (s *FS) Write(fd uint64, data []byte) error {
	if _, ok := s.fds[fd]; !ok {
		return fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	_, err := s.WriteEvent.Raise(fd, &Data{Bytes: data})
	return err
}

// Read reads up to n bytes sequentially from the open file.
func (s *FS) Read(fd uint64, n int) ([]byte, error) {
	if _, ok := s.fds[fd]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	res, err := s.ReadEvent.Raise(fd, uint64(n))
	if err != nil {
		return nil, err
	}
	d, _ := res.(*Data)
	if d == nil {
		return nil, nil
	}
	return d.Bytes, nil
}

// Close releases a descriptor.
func (s *FS) Close(fd uint64) error {
	_, err := s.CloseEvent.Raise(fd)
	return err
}

// Remove deletes the file at path; it reports false for missing or open
// files.
func (s *FS) Remove(path string) (bool, error) {
	res, err := s.RemoveEvent.Raise(path)
	if err != nil {
		return false, err
	}
	b, _ := res.(bool)
	return b, nil
}

// --- Direct (non-evented) accessors for substrates and tests ---

// Put stores content at path directly, without raising events.
func (s *FS) Put(path string, content []byte) {
	path = Normalize(path)
	s.files[path] = &file{data: append([]byte(nil), content...)}
}

// Get returns a copy of the file's content.
func (s *FS) Get(path string) ([]byte, bool) {
	f, ok := s.files[Normalize(path)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

// Exists reports whether path exists.
func (s *FS) Exists(path string) bool {
	_, ok := s.files[Normalize(path)]
	return ok
}

// List returns the sorted paths under the given prefix.
func (s *FS) List(prefix string) []string {
	prefix = Normalize(prefix)
	var out []string
	for p := range s.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
