package fs

import (
	"strings"

	"spin/internal/dispatch"
	"spin/internal/rtti"
)

// This file implements the two file-system extensions the paper uses as
// running examples of filters and asynchronous handlers.

// DosModule is the MS-DOS name-space extension's module.
var DosModule = rtti.NewModule("DosFs")

// DosName converts an MS-DOS path ("C:\FONTS\FIXED.FON") to the UNIX name
// space ("/fonts/fixed.fon"): drive letter stripped, backslashes to
// slashes, case folded.
func DosName(name string) string {
	if len(name) >= 2 && name[1] == ':' {
		name = name[2:]
	}
	name = strings.ReplaceAll(name, "\\", "/")
	return Normalize(strings.ToLower(name))
}

// InstallDosFilter provides the MS-DOS file name space over the UNIX file
// system "by transparently converting file names from one standard to the
// other" (§2.3): a filter handler is installed First on the path-taking
// events, rewriting the name argument for the handlers ordered after it —
// including the intrinsic implementation.
//
// It returns the installed bindings so the extension can be unloaded.
func InstallDosFilter(s *FS) ([]*dispatch.Binding, error) {
	var installed []*dispatch.Binding
	filter := func(ev *dispatch.Event, name string) error {
		sig := ev.Signature()
		fsig := rtti.Signature{Args: sig.Args, ByRef: make([]bool, len(sig.Args)), Result: sig.Result}
		fsig.ByRef[0] = true // the path parameter is taken by reference
		b, err := ev.Install(dispatch.Handler{
			Proc: &rtti.Proc{Name: name, Module: DosModule, Sig: fsig},
			Fn: func(clo any, args []any) any {
				if p, ok := args[0].(string); ok && looksDos(p) {
					args[0] = DosName(p)
				}
				return nil
			},
		}, dispatch.AsFilter(), dispatch.First())
		if err != nil {
			return err
		}
		installed = append(installed, b)
		return nil
	}
	if err := filter(s.OpenEvent, "DosFs.OpenFilter"); err != nil {
		return nil, err
	}
	if err := filter(s.RemoveEvent, "DosFs.RemoveFilter"); err != nil {
		return nil, err
	}
	return installed, nil
}

// looksDos reports whether a path uses MS-DOS conventions.
func looksDos(p string) bool {
	return strings.Contains(p, "\\") || (len(p) >= 2 && p[1] == ':')
}

// ReplicaModule is the lazy-replication extension's module.
var ReplicaModule = rtti.NewModule("ReplFs")

// Replicator mirrors writes into a replica file system asynchronously.
type Replicator struct {
	// Replica is the backing store for replicated writes.
	Replica *FS
	// Applied counts replicated write operations.
	Applied int64
	binding *dispatch.Binding
	primary *FS
	apply   *dispatch.Event
}

// InstallReplicator extends the file system with lazy replication (§2.6):
// "the original code should perform the write synchronously, but the
// replication can be done asynchronously."
//
// The extension installs a synchronous handler on Fs.Write that resolves
// the descriptor to a path (cheap metadata work that must happen before
// the descriptor can be closed) and then raises the extension's own
// asynchronous ReplFs.Apply event carrying path and data — the bulk copy
// happens on a detached thread of control while the original writer
// proceeds.
func InstallReplicator(primary, replica *FS) (*Replicator, error) {
	r := &Replicator{Replica: replica, primary: primary}
	d := primary.WriteEvent.Dispatcher()

	applySig := rtti.Sig(nil, rtti.Text, FileDataType)
	apply, err := d.DefineEvent("ReplFs.Apply", applySig,
		dispatch.AsAsync(),
		dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "ReplFs.Apply", Module: ReplicaModule, Sig: applySig},
			Fn: func(clo any, args []any) any {
				path := args[0].(string)
				data := args[1].(*Data)
				old, _ := replica.Get(path)
				replica.Put(path, append(old, data.Bytes...))
				r.Applied++
				return nil
			},
		}))
	if err != nil {
		return nil, err
	}
	r.apply = apply

	sig := primary.WriteEvent.Signature()
	b, err := primary.WriteEvent.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "ReplFs.Write", Module: ReplicaModule, Sig: sig},
		Fn: func(clo any, args []any) any {
			fd := args[0].(uint64)
			data := args[1].(*Data)
			if of, ok := primary.fds[fd]; ok {
				_, _ = apply.Raise(of.path, data)
			}
			return nil
		},
	}, dispatch.Last())
	if err != nil {
		return nil, err
	}
	r.binding = b
	return r, nil
}

// Uninstall removes the replication handler.
func (r *Replicator) Uninstall() error {
	return r.primary.WriteEvent.Uninstall(r.binding)
}
