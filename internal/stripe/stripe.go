// Package stripe provides cache-line-padded striped counters for hot-path
// statistics. A counter is sharded across independent cache lines so
// parallel writers on one hot event do not serialize on a shared line;
// reads sum all shards. It lives in its own package so both the dispatcher
// (per-event raise/fire totals) and the code generator's specialized
// executors (per-binding fire counts, updated with a hoisted stripe index)
// share one implementation.
package stripe

import (
	"sync/atomic"
	"unsafe"
)

// numStripes is the number of independent shards in a Counter. A power of
// two so the index reduces with a mask. Eight shards cover the core counts
// the parallel-raise benchmarks sweep; beyond that, collisions only degrade
// toward single-atomic behaviour, never past it.
const numStripes = 8

// counterStripe is one shard, padded out to a 64-byte cache line so
// adjacent shards never false-share (§3's "procedure call cost" target is
// unreachable if every raise bounces a contended line between cores).
type counterStripe struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a statistics counter sharded across cache-line-padded cells.
// Hot-path increments go to a per-goroutine shard; reads sum all shards.
// Increments are atomic and never lost, so a Load that races with Adds
// returns some valid intermediate total — exactly the guarantee a single
// atomic would give.
type Counter struct {
	stripes [numStripes]counterStripe
}

// Add increments the counter on the calling goroutine's shard.
func (c *Counter) Add(delta int64) {
	c.stripes[Index()].n.Add(delta)
}

// AddAt increments the counter on shard idx, previously obtained from
// Index. The specialized dispatch executors hoist one Index call per raise
// and reuse it for every per-binding count, instead of re-hashing per
// increment.
func (c *Counter) AddAt(idx int, delta int64) {
	c.stripes[idx].n.Add(delta)
}

// AddAtN is AddAt returning the shard's new value. The dispatcher reuses
// the raise-total increment it already pays as the journal's raise-
// sampling draw (journal.SampleCount), so sampling adds no second atomic
// RMW to the raise path.
func (c *Counter) AddAtN(idx int, delta int64) int64 {
	return c.stripes[idx].n.Add(delta)
}

// Load sums the shards.
func (c *Counter) Load() int64 {
	var sum int64
	for i := range c.stripes {
		sum += c.stripes[i].n.Load()
	}
	return sum
}

// Index picks a shard for the calling goroutine. Go exposes no goroutine
// or P identity, so it hashes the address of a stack variable: goroutine
// stacks live in distinct allocations, so concurrent raisers spread across
// shards, while any single goroutine stays on one shard for a given call
// depth. The shift discards the within-frame bits (stacks are 2KiB-granular
// at minimum).
func Index() int {
	var marker byte
	p := uintptr(unsafe.Pointer(&marker))
	return int((p >> 11) & (numStripes - 1))
}
