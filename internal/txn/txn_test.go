package txn

import (
	"fmt"
	"testing"

	"spin/internal/dispatch"
	"spin/internal/kernel"
	"spin/internal/netstack"
	"spin/internal/netwire"
	"spin/internal/rtti"
	"spin/internal/vtime"
)

// rig: one coordinator machine and n participant machines on one segment.
type rig struct {
	coord  *kernel.Machine
	c      *Coordinator
	parts  []*Participant
	pmachs []*kernel.Machine
}

func boot(t *testing.T, n int) *rig {
	t.Helper()
	r := &rig{}
	var err error
	r.coord, err = kernel.Boot(kernel.Config{Name: "coord", Metered: true})
	if err != nil {
		t.Fatal(err)
	}
	link := netwire.NewLink(r.coord.Sim, 0, 0)
	arp := map[string]string{"10.2.0.1": "mac-c"}
	for i := 0; i < n; i++ {
		arp[fmt.Sprintf("10.2.0.%d", i+2)] = fmt.Sprintf("mac-p%d", i)
	}
	nicC, _ := link.Attach("mac-c")
	sc, err := netstack.New(netstack.Config{Dispatcher: r.coord.Dispatcher,
		CPU: r.coord.CPU, Sched: r.coord.Sched, NIC: nicC, IP: "10.2.0.1", ARP: arp})
	if err != nil {
		t.Fatal(err)
	}
	var peers []string
	for i := 0; i < n; i++ {
		m, err := kernel.Boot(kernel.Config{Name: fmt.Sprintf("p%d", i), ShareWith: r.coord})
		if err != nil {
			t.Fatal(err)
		}
		nic, _ := link.Attach(fmt.Sprintf("mac-p%d", i))
		ip := fmt.Sprintf("10.2.0.%d", i+2)
		stack, err := netstack.New(netstack.Config{Dispatcher: m.Dispatcher,
			CPU: m.CPU, Sched: m.Sched, NIC: nic, IP: ip, ARP: arp,
			Prefix: fmt.Sprintf("p%d:", i)})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewParticipant(m.Dispatcher, stack, m.Sched, fmt.Sprintf("p%d:", i))
		if err != nil {
			t.Fatal(err)
		}
		r.parts = append(r.parts, p)
		r.pmachs = append(r.pmachs, m)
		peers = append(peers, ip)
	}
	r.c, err = NewCoordinator(sc, r.coord.Sched, peers)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// rm installs a resource manager voting via vote() and recording applies.
func rm(t *testing.T, p *Participant, guard *dispatch.Guard, vote func(op string) bool, applied *[]string) {
	t.Helper()
	prepSig := p.Prepare.Signature()
	applySig := p.Commit.Signature()
	var opts []dispatch.InstallOption
	if guard != nil {
		opts = append(opts, dispatch.WithGuard(*guard))
	}
	_, err := p.Prepare.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "RM.Prepare", Module: Module, Sig: prepSig},
		Fn: func(clo any, args []any) any {
			return vote(args[1].(string))
		},
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Commit.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "RM.Commit", Module: Module, Sig: applySig},
		Fn: func(clo any, args []any) any {
			*applied = append(*applied, args[1].(string))
			return nil
		},
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnanimousCommit(t *testing.T) {
	r := boot(t, 2)
	var applied0, applied1 []string
	rm(t, r.parts[0], nil, func(string) bool { return true }, &applied0)
	rm(t, r.parts[1], nil, func(string) bool { return true }, &applied1)

	var outcome Outcome
	txid, err := r.c.Begin("bank:transfer 100", func(o Outcome) { outcome = o })
	if err != nil {
		t.Fatal(err)
	}
	r.coord.Sim.Run(0)
	if outcome != Committed || r.c.Outcome(txid) != Committed {
		t.Fatalf("outcome = %v", outcome)
	}
	if len(applied0) != 1 || len(applied1) != 1 || applied0[0] != "bank:transfer 100" {
		t.Fatalf("applied: %v / %v", applied0, applied1)
	}
	if r.parts[0].Voted != 1 || r.parts[0].Applied != 1 {
		t.Fatalf("participant counters: %d/%d", r.parts[0].Voted, r.parts[0].Applied)
	}
}

func TestOneNoVoteAborts(t *testing.T) {
	r := boot(t, 3)
	var a0, a1, a2 []string
	rm(t, r.parts[0], nil, func(string) bool { return true }, &a0)
	rm(t, r.parts[1], nil, func(string) bool { return false }, &a1) // refuses
	rm(t, r.parts[2], nil, func(string) bool { return true }, &a2)

	var outcome Outcome
	_, _ = r.c.Begin("bank:overdraw", func(o Outcome) { outcome = o })
	r.coord.Sim.Run(0)
	if outcome != Aborted {
		t.Fatalf("outcome = %v", outcome)
	}
	if len(a0)+len(a1)+len(a2) != 0 {
		t.Fatal("aborted transaction applied changes")
	}
}

func TestANDResultHandlerWithinParticipant(t *testing.T) {
	// Two resource managers on ONE participant: the vote is their AND.
	r := boot(t, 1)
	var applied []string
	rm(t, r.parts[0], nil, func(string) bool { return true }, &applied)
	rm(t, r.parts[0], nil, func(string) bool { return false }, &applied)
	var outcome Outcome
	_, _ = r.c.Begin("op", func(o Outcome) { outcome = o })
	r.coord.Sim.Run(0)
	if outcome != Aborted {
		t.Fatalf("AND vote: outcome = %v", outcome)
	}
}

func TestDefaultVoteWhenNoResourceManagerCares(t *testing.T) {
	// A guarded RM that ignores the operation: the default handler votes
	// yes and the transaction commits.
	r := boot(t, 1)
	var applied []string
	g := OpGuard("inventory:")
	rm(t, r.parts[0], &g, func(string) bool { return false }, &applied)
	var outcome Outcome
	_, _ = r.c.Begin("bank:deposit", func(o Outcome) { outcome = o })
	r.coord.Sim.Run(0)
	if outcome != Committed {
		t.Fatalf("default vote: outcome = %v", outcome)
	}
	if len(applied) != 0 {
		t.Fatal("guarded RM applied a foreign operation")
	}
}

func TestGuardScopesResourceManager(t *testing.T) {
	r := boot(t, 1)
	var bank, inv []string
	bg := OpGuard("bank:")
	ig := OpGuard("inventory:")
	rm(t, r.parts[0], &bg, func(string) bool { return true }, &bank)
	rm(t, r.parts[0], &ig, func(string) bool { return true }, &inv)
	_, _ = r.c.Begin("bank:credit 5", nil)
	_, _ = r.c.Begin("inventory:add widget", nil)
	r.coord.Sim.Run(0)
	if len(bank) != 1 || len(inv) != 1 {
		t.Fatalf("bank=%v inv=%v", bank, inv)
	}
	if bank[0] != "bank:credit 5" || inv[0] != "inventory:add widget" {
		t.Fatalf("misrouted: bank=%v inv=%v", bank, inv)
	}
}

func TestSilentParticipantTimesOutToAbort(t *testing.T) {
	r := boot(t, 2)
	var applied []string
	rm(t, r.parts[0], nil, func(string) bool { return true }, &applied)
	// Participant 1 "crashes": its socket stops answering.
	if err := r.parts[1].sock.Close(); err != nil {
		t.Fatal(err)
	}
	var outcome Outcome
	start := r.coord.Clock.Now()
	_, _ = r.c.Begin("op", func(o Outcome) { outcome = o })
	r.coord.Sim.Run(0)
	// The healthy participant acked the abort; the outcome decided at
	// the vote timeout.
	if outcome != Aborted {
		t.Fatalf("outcome = %v", outcome)
	}
	if len(applied) != 0 {
		t.Fatal("timed-out transaction applied")
	}
	elapsed := vtime.InMicros(r.coord.Clock.Now().Sub(start))
	if elapsed < vtime.InMicros(r.c.VoteTimeout) {
		t.Fatalf("decided before the vote timeout: %.0fus", elapsed)
	}
}

func TestSequentialTransactions(t *testing.T) {
	r := boot(t, 2)
	var a0, a1 []string
	rm(t, r.parts[0], nil, func(op string) bool { return op != "bad" }, &a0)
	rm(t, r.parts[1], nil, func(string) bool { return true }, &a1)
	outcomes := map[uint64]Outcome{}
	for i, op := range []string{"one", "bad", "three"} {
		txid, err := r.c.Begin(op, nil)
		if err != nil {
			t.Fatal(err)
		}
		r.coord.Sim.Run(0)
		outcomes[txid] = r.c.Outcome(txid)
		_ = i
	}
	if outcomes[1] != Committed || outcomes[2] != Aborted || outcomes[3] != Committed {
		t.Fatalf("outcomes = %v", outcomes)
	}
	if len(a0) != 2 || len(a1) != 2 {
		t.Fatalf("applied: %v / %v", a0, a1)
	}
	if r.c.String() == "" {
		t.Fatal("empty String")
	}
}

func TestWireCodec(t *testing.T) {
	kind, id, rest, ok := decode(encode(msgPrepare, 42, "bank:op|with|pipes"))
	if !ok || kind != msgPrepare || id != 42 || rest != "bank:op|with|pipes" {
		t.Fatalf("roundtrip: %q %d %q %v", kind, id, rest, ok)
	}
	for _, bad := range []string{"", "X", "X|notanumber|y", "X|1"} {
		if _, _, _, ok := decode([]byte(bad)); ok {
			t.Errorf("decode(%q) accepted", bad)
		}
	}
	for _, o := range []Outcome{Pending, Committed, Aborted, Outcome(9)} {
		if o.String() == "" {
			t.Error("empty outcome name")
		}
	}
}
