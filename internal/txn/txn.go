// Package txn is the distributed transaction system, the last of the
// paper's "collection of integrated applications" (§3: "including a
// distributed transaction system and a web server"). It implements
// two-phase commit between a coordinator and participants on separate
// simulated machines, communicating over the netstack's UDP.
//
// The extension structure is the point: each participant announces the
// protocol's phases as events —
//
//	Txn.Prepare(txid: WORD, op: TEXT): BOOLEAN
//	Txn.Commit(txid: WORD, op: TEXT)
//	Txn.Abort(txid: WORD, op: TEXT)
//
// Resource managers are ordinary guarded handlers on those events. A
// participant's vote is the logical AND of every resource manager's
// Prepare result — the exact dual of VM.PageFault's logical-OR result
// handler (§2.3) — and a default handler votes yes when no resource
// manager is interested in the operation. Guards keep a resource manager
// from seeing operations outside its domain, just as packet guards keep
// endpoints from seeing foreign ports.
package txn

import (
	"fmt"
	"strconv"
	"strings"

	"spin/internal/dispatch"
	"spin/internal/netstack"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/vtime"
)

// Module is the transaction system's module descriptor.
var Module = rtti.NewModule("Txn", "Txn")

// Port is the UDP port the protocol runs on.
const Port = 4099

// Outcome is a finished transaction's fate.
type Outcome int

const (
	// Pending transactions have not decided yet.
	Pending Outcome = iota
	// Committed transactions got unanimous yes votes.
	Committed
	// Aborted transactions saw a no vote or a timeout.
	Aborted
)

func (o Outcome) String() string {
	switch o {
	case Pending:
		return "pending"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	}
	return "outcome(?)"
}

// wire message kinds.
const (
	msgPrepare = "PREPARE"
	msgVote    = "VOTE"
	msgCommit  = "COMMIT"
	msgAbort   = "ABORT"
	msgAck     = "ACK"
)

// encode builds "KIND|txid|rest".
func encode(kind string, txid uint64, rest string) []byte {
	return []byte(kind + "|" + strconv.FormatUint(txid, 10) + "|" + rest)
}

// decode splits a protocol datagram.
func decode(b []byte) (kind string, txid uint64, rest string, ok bool) {
	parts := strings.SplitN(string(b), "|", 3)
	if len(parts) != 3 {
		return "", 0, "", false
	}
	id, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return "", 0, "", false
	}
	return parts[0], id, parts[2], true
}

// Participant runs the resource-manager side of 2PC on one machine.
type Participant struct {
	// Prepare, Commit and Abort are the phase events resource managers
	// handle.
	Prepare *dispatch.Event
	Commit  *dispatch.Event
	Abort   *dispatch.Event

	sock   *netstack.UDPSocket
	strand *sched.Strand

	// Voted counts prepares answered; Applied counts commits applied.
	Voted   int64
	Applied int64
}

// NewParticipant binds the protocol port and defines the phase events.
func NewParticipant(d *dispatch.Dispatcher, stack *netstack.Stack, s *sched.Scheduler, prefix string) (*Participant, error) {
	p := &Participant{}
	prepSig := rtti.Sig(rtti.Bool, rtti.Word, rtti.Text)
	applySig := rtti.Sig(nil, rtti.Word, rtti.Text)

	var err error
	p.Prepare, err = d.DefineEvent(prefix+"Txn.Prepare", prepSig, dispatch.WithOwner(Module))
	if err != nil {
		return nil, err
	}
	// The participant's vote is the logical AND of all resource
	// managers' answers.
	if err := p.Prepare.SetResultHandler(func(acc, r any, i int) any {
		b, _ := r.(bool)
		if i == 0 {
			return b
		}
		a, _ := acc.(bool)
		return a && b
	}); err != nil {
		return nil, err
	}
	// No resource manager interested: vote yes by default.
	err = p.Prepare.SetDefaultHandler(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Txn.DefaultVote", Module: Module, Sig: prepSig},
		Fn:   func(any, []any) any { return true },
	})
	if err != nil {
		return nil, err
	}
	if p.Commit, err = d.DefineEvent(prefix+"Txn.Commit", applySig, dispatch.WithOwner(Module)); err != nil {
		return nil, err
	}
	if p.Abort, err = d.DefineEvent(prefix+"Txn.Abort", applySig, dispatch.WithOwner(Module)); err != nil {
		return nil, err
	}

	if p.sock, err = stack.BindUDP(Port); err != nil {
		return nil, err
	}
	p.strand = s.Spawn("txn-participant", 0, func(st *sched.Strand) sched.Status {
		for {
			pkt, ok := p.sock.Recv()
			if !ok {
				break
			}
			p.handle(pkt)
		}
		p.sock.AwaitPacket(st)
		return sched.Block
	})
	return p, nil
}

// handle processes one protocol datagram at the participant.
func (p *Participant) handle(pkt *netstack.Packet) {
	kind, txid, rest, ok := decode(pkt.Payload)
	if !ok {
		return
	}
	reply := func(kind, rest string) {
		_ = p.sock.Send(pkt.SrcIP, pkt.SrcPort, encode(kind, txid, rest))
	}
	switch kind {
	case msgPrepare:
		res, err := p.Prepare.Raise(txid, rest)
		vote := err == nil
		if b, isBool := res.(bool); vote && isBool {
			vote = b
		}
		p.Voted++
		if vote {
			reply(msgVote, "yes")
		} else {
			reply(msgVote, "no")
		}
	case msgCommit:
		_, _ = p.Commit.Raise(txid, rest)
		p.Applied++
		reply(msgAck, "")
	case msgAbort:
		_, _ = p.Abort.Raise(txid, rest)
		reply(msgAck, "")
	}
}

// Coordinator drives 2PC from its machine.
type Coordinator struct {
	sock   *netstack.UDPSocket
	s      *sched.Scheduler
	strand *sched.Strand
	peers  []string // participant IPs
	nextID uint64

	// VoteTimeout aborts transactions whose votes do not all arrive in
	// time (a crashed participant must not wedge the system).
	VoteTimeout vtime.Duration

	pending map[uint64]*txnState
	// Decided holds finished transactions' outcomes.
	Decided map[uint64]Outcome
}

type txnState struct {
	op      string
	yes, no int
	acks    int
	outcome Outcome
	onDone  func(Outcome)
}

// NewCoordinator binds an ephemeral-style port (Port+1) on the
// coordinator machine.
func NewCoordinator(stack *netstack.Stack, s *sched.Scheduler, peers []string) (*Coordinator, error) {
	c := &Coordinator{s: s, peers: peers,
		VoteTimeout: vtime.Micros(50_000),
		pending:     make(map[uint64]*txnState),
		Decided:     make(map[uint64]Outcome)}
	var err error
	if c.sock, err = stack.BindUDP(Port + 1); err != nil {
		return nil, err
	}
	c.strand = s.Spawn("txn-coordinator", 0, func(st *sched.Strand) sched.Status {
		for {
			pkt, ok := c.sock.Recv()
			if !ok {
				break
			}
			c.handle(pkt)
		}
		c.sock.AwaitPacket(st)
		return sched.Block
	})
	return c, nil
}

// Begin starts a transaction applying op at every participant. onDone is
// called (in simulation context) when the outcome is decided and
// acknowledged.
func (c *Coordinator) Begin(op string, onDone func(Outcome)) (uint64, error) {
	c.nextID++
	txid := c.nextID
	st := &txnState{op: op, onDone: onDone}
	c.pending[txid] = st
	for _, ip := range c.peers {
		if err := c.sock.Send(ip, Port, encode(msgPrepare, txid, op)); err != nil {
			return 0, err
		}
	}
	// A vote timeout converts a silent participant into an abort: a
	// crashed machine must not wedge every transaction it touches.
	if sim := c.s.Simulator(); sim != nil {
		sim.After(c.VoteTimeout, func() {
			st, ok := c.pending[txid]
			if !ok || st.outcome != Pending {
				return
			}
			if st.yes+st.no < len(c.peers) {
				c.decide(txid, st, Aborted)
			}
		})
	}
	return txid, nil
}

// handle processes votes and acks at the coordinator.
func (c *Coordinator) handle(pkt *netstack.Packet) {
	kind, txid, rest, ok := decode(pkt.Payload)
	if !ok {
		return
	}
	st, live := c.pending[txid]
	if !live {
		return
	}
	switch kind {
	case msgVote:
		if st.outcome != Pending {
			return
		}
		if rest == "yes" {
			st.yes++
		} else {
			st.no++
		}
		if st.no > 0 {
			c.decide(txid, st, Aborted)
		} else if st.yes == len(c.peers) {
			c.decide(txid, st, Committed)
		}
	case msgAck:
		st.acks++
		if st.acks >= len(c.peers) && st.outcome != Pending {
			c.finalize(txid)
		}
	}
}

// finalize retires a decided transaction and notifies the caller. It is
// reached either by the last acknowledgement or by the ack timeout (a
// participant that never votes will not acknowledge the abort either).
func (c *Coordinator) finalize(txid uint64) {
	st, ok := c.pending[txid]
	if !ok || st.outcome == Pending {
		return
	}
	delete(c.pending, txid)
	if st.onDone != nil {
		st.onDone(st.outcome)
	}
}

// decide broadcasts the outcome and arms the ack timeout.
func (c *Coordinator) decide(txid uint64, st *txnState, o Outcome) {
	st.outcome = o
	c.Decided[txid] = o
	kind := msgCommit
	if o == Aborted {
		kind = msgAbort
	}
	for _, ip := range c.peers {
		_ = c.sock.Send(ip, Port, encode(kind, txid, st.op))
	}
	if sim := c.s.Simulator(); sim != nil {
		sim.After(c.VoteTimeout, func() { c.finalize(txid) })
	}
}

// Outcome reports a transaction's current fate.
func (c *Coordinator) Outcome(txid uint64) Outcome {
	if o, ok := c.Decided[txid]; ok {
		return o
	}
	return Pending
}

// OpGuard builds a FUNCTIONAL guard admitting only operations whose text
// has the given prefix — how a resource manager scopes itself to its own
// objects ("bank:", "inventory:", ...).
func OpGuard(prefix string) dispatch.Guard {
	return dispatch.Guard{
		Proc: &rtti.Proc{Name: "Txn.OpGuard", Module: Module, Functional: true,
			Sig: rtti.Sig(rtti.Bool, rtti.Word, rtti.Text)},
		Fn: func(clo any, args []any) bool {
			op, _ := args[1].(string)
			return strings.HasPrefix(op, prefix)
		},
	}
}

// String describes the coordinator state.
func (c *Coordinator) String() string {
	return fmt.Sprintf("txn coordinator: %d pending, %d decided", len(c.pending), len(c.Decided))
}
