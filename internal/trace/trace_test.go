package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"spin/internal/vtime"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := []struct {
		prog  uint32
		step  int
		guard int
		kind  Kind
		mode  Mode
		flags uint64
	}{
		{1, 0, 0, KindRaiseBegin, ModeSync, 0},
		{2, 7, 3, KindGuard, ModeSync, flagPass | flagInline},
		{3, 65534, 255, KindHandler, ModeEphemeral, flagPass},
		{0xFFFFFF, -1, 0, KindRaiseEnd, ModeDefault, flagAmbiguous | flagUsedDefault},
		{42, 12, 1, KindMerge, ModeAsync, 0},
	}
	for _, c := range cases {
		w := pack(c.prog, c.step, c.guard, c.kind, c.mode, c.flags)
		prog, step, guard, kind, mode, flags := unpack(w)
		if prog != c.prog || step != c.step || guard != c.guard ||
			kind != c.kind || mode != c.mode || flags != c.flags {
			t.Errorf("round trip %+v -> prog=%d step=%d guard=%d kind=%v mode=%v flags=%#x",
				c, prog, step, guard, kind, mode, flags)
		}
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	tr := New(Config{Capacity: 64})
	p := tr.Program(EventMeta{
		Event: "Test.Event",
		Steps: []StepMeta{{Name: "mod.h0", Mode: ModeSync}, {Name: "mod.h1", Mode: ModeAsync}},
	})
	raise, sampled := p.Begin()
	if !sampled {
		t.Fatal("sample rate 1 must sample every raise")
	}
	p.RaiseBegin(raise, 10, 99)
	p.Guard(raise, 0, 0, true, true, 11, 2)
	p.Handler(raise, 0, ModeSync, true, 13, 5)
	p.Guard(raise, 1, 0, false, false, 18, 2)
	p.Merge(raise, 0, 20, 1)
	p.RaiseEnd(raise, 21, 0, 1, false, false)

	spans := tr.Snapshot()
	if len(spans) != 6 {
		t.Fatalf("got %d spans, want 6: %+v", len(spans), spans)
	}
	wantKinds := []Kind{KindRaiseBegin, KindGuard, KindHandler, KindGuard, KindMerge, KindRaiseEnd}
	for i, sp := range spans {
		if sp.Kind != wantKinds[i] {
			t.Errorf("span %d kind = %v, want %v", i, sp.Kind, wantKinds[i])
		}
		if sp.Raise != raise {
			t.Errorf("span %d raise = %d, want %d", i, sp.Raise, raise)
		}
		if sp.Event != "Test.Event" {
			t.Errorf("span %d event = %q", i, sp.Event)
		}
	}
	if spans[1].Name != "mod.h0" || !spans[1].Pass || !spans[1].Inline {
		t.Errorf("guard span wrong: %+v", spans[1])
	}
	if spans[2].Name != "mod.h0" || spans[2].Mode != ModeSync || spans[2].Cost != 5 {
		t.Errorf("handler span wrong: %+v", spans[2])
	}
	if spans[3].Name != "mod.h1" || spans[3].Pass {
		t.Errorf("failed guard span wrong: %+v", spans[3])
	}
	if spans[0].Detail != 99 {
		t.Errorf("raise-begin arg0 = %d, want 99", spans[0].Detail)
	}
	if spans[5].Detail != 1 {
		t.Errorf("raise-end fired = %d, want 1", spans[5].Detail)
	}
}

func TestSampling(t *testing.T) {
	tr := New(Config{Capacity: 1024, Sample: 64})
	p := tr.Program(EventMeta{Event: "E"})
	sampled := 0
	for i := 0; i < 640; i++ {
		if _, ok := p.Begin(); ok {
			sampled++
		}
	}
	if sampled != 10 {
		t.Fatalf("1-in-64 over 640 raises sampled %d, want 10", sampled)
	}
}

func TestRingWrapDiscardsOldest(t *testing.T) {
	tr := New(Config{Capacity: 8})
	p := tr.Program(EventMeta{Event: "E"})
	for i := 0; i < 20; i++ {
		p.Handler(uint64(i+1), 0, ModeSync, true, int64(i), 0)
	}
	spans := tr.Snapshot()
	if len(spans) != 8 {
		t.Fatalf("got %d spans, want ring capacity 8", len(spans))
	}
	// Oldest surviving span must be publication #13 of 20.
	if spans[0].Seq != 13 || spans[len(spans)-1].Seq != 20 {
		t.Errorf("got seq range [%d, %d], want [13, 20]",
			spans[0].Seq, spans[len(spans)-1].Seq)
	}
	if tr.Dropped() != 12 {
		t.Errorf("Dropped() = %d, want 12", tr.Dropped())
	}
	tr.Reset()
	if got := tr.Snapshot(); len(got) != 0 {
		t.Errorf("after Reset, %d spans remain", len(got))
	}
}

func TestRejectSpan(t *testing.T) {
	tr := New(Config{Capacity: 16})
	tr.Reject("Sys.Open", RejectAuth, "rogue-ext")
	tr.Reject("Sys.Open", RejectQuota, "greedy-ext")
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Kind != KindReject || spans[0].Name != "rogue-ext" ||
		RejectReason(spans[0].Detail) != RejectAuth || spans[0].Event != "Sys.Open" {
		t.Errorf("auth reject span wrong: %+v", spans[0])
	}
	if RejectReason(spans[1].Detail) != RejectQuota || spans[1].Name != "greedy-ext" {
		t.Errorf("quota reject span wrong: %+v", spans[1])
	}
}

func TestStampMeteredVsSynthetic(t *testing.T) {
	tr := New(Config{})
	if tr.Metered(nil) {
		t.Error("nil CPU must report unmetered")
	}
	s1, s2 := tr.Stamp(nil), tr.Stamp(nil)
	if s2 <= s1 {
		t.Errorf("synthetic stamps not monotonic: %d then %d", s1, s2)
	}
	clock := &vtime.Clock{}
	cpu := vtime.NewCPU(clock, vtime.AlphaModel())
	if !tr.Metered(cpu) {
		t.Error("metered CPU must report metered")
	}
	clock.Advance(1500)
	if got := tr.Stamp(cpu); got != 1500 {
		t.Errorf("metered stamp = %d, want 1500", got)
	}
}

func TestRecordingDoesNotAllocate(t *testing.T) {
	tr := New(Config{Capacity: 256})
	p := tr.Program(EventMeta{Event: "E", Steps: []StepMeta{{Name: "h"}}})
	allocs := testing.AllocsPerRun(200, func() {
		raise, _ := p.Begin()
		p.RaiseBegin(raise, 0, 0)
		p.Guard(raise, 0, 0, true, true, 1, 1)
		p.Handler(raise, 0, ModeSync, true, 2, 3)
		p.RaiseEnd(raise, 5, 0, 1, false, false)
	})
	if allocs != 0 {
		t.Errorf("recording allocated %.1f times per raise, want 0", allocs)
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	tr := New(Config{Capacity: 128})
	p := tr.Program(EventMeta{Event: "E", Steps: []StepMeta{{Name: "h"}}})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				raise, _ := p.Begin()
				p.RaiseBegin(raise, int64(i), 0)
				p.Handler(raise, 0, ModeSync, true, int64(i), 1)
				p.RaiseEnd(raise, int64(i)+1, 0, 1, false, false)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		for _, sp := range tr.Snapshot() {
			if sp.Kind < KindRaiseBegin || sp.Kind > KindReject {
				t.Errorf("torn span leaked: %+v", sp)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestChromeExport(t *testing.T) {
	tr := New(Config{Capacity: 64})
	p := tr.Program(EventMeta{
		Event: "HTTP.Request",
		Steps: []StepMeta{{Name: "httpd.Handle", Mode: ModeSync}},
	})
	raise, _ := p.Begin()
	p.RaiseBegin(raise, 1000, 0)
	p.Guard(raise, 0, 0, true, true, 1000, 200)
	p.Handler(raise, 0, ModeSync, true, 1200, 5000)
	p.Merge(raise, 0, 6200, 100)
	p.RaiseEnd(raise, 6300, 0, 1, false, false)

	var buf bytes.Buffer
	if err := tr.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(file.TraceEvents) != 5 {
		t.Fatalf("got %d trace events, want 5", len(file.TraceEvents))
	}
	for _, ev := range file.TraceEvents {
		if ev["ph"] != "X" {
			t.Errorf("phase = %v, want X", ev["ph"])
		}
		if ev["pid"] != float64(1) {
			t.Errorf("pid = %v, want 1", ev["pid"])
		}
	}
	// Guard handler's ts must be microseconds: 1200ns -> 1.2us.
	if got := file.TraceEvents[2]["ts"].(float64); got != 1.2 {
		t.Errorf("handler ts = %v us, want 1.2", got)
	}
	if got := file.TraceEvents[2]["dur"].(float64); got != 5.0 {
		t.Errorf("handler dur = %v us, want 5.0", got)
	}
}

func TestTextExport(t *testing.T) {
	tr := New(Config{Capacity: 64})
	p := tr.Program(EventMeta{
		Event: "E", Steps: []StepMeta{{Name: "mod.handler", Mode: ModeSync}},
	})
	raise, _ := p.Begin()
	p.RaiseBegin(raise, 0, 0)
	p.Guard(raise, 0, 0, false, true, 1, 1)
	p.Handler(raise, 0, ModeSync, true, 2, 3)
	p.RaiseEnd(raise, 5, 0, 1, false, false)
	tr.Reject("E", RejectQuota, "greedy")

	var buf bytes.Buffer
	if err := tr.ExportText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"raise #1 E:", "mod.handler", "control plane:", "greedy", "quota"} {
		if !strings.Contains(out, want) {
			t.Errorf("text export missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultHandlerNameResolution(t *testing.T) {
	tr := New(Config{Capacity: 16})
	p := tr.Program(EventMeta{Event: "E", Default: "mod.fallback"})
	raise, _ := p.Begin()
	p.Handler(raise, -1, ModeDefault, true, 0, 1)
	spans := tr.Snapshot()
	if len(spans) != 1 || spans[0].Name != "mod.fallback" || spans[0].Step != -1 {
		t.Fatalf("default handler span wrong: %+v", spans)
	}
}
