// Package trace is the per-raise observability layer of the SPIN event
// dispatcher reproduction. The paper evaluates the dispatcher by measuring
// where cycles go inside a raise — guard evaluation, handler invocation,
// result merging (§3, Table 1) — but only in aggregate. This package
// reconstructs the causal structure of *one* raise: a sampled raise emits a
// span for each guard evaluation (with outcome), each handler invocation
// (sync, async, ephemeral, filter or default, with its virtual-time cost),
// and each result-merge step, plus control-plane spans for quota and
// authorization rejections.
//
// Recording is built for the dispatcher's concurrency model: spans land in
// a fixed-size ring of pre-allocated slots, written lock-free (an atomic
// ticket claims a slot; every slot word is atomic, so concurrent raises on
// many cores never serialize and the race detector stays quiet). Readers
// (Snapshot, the exporters) validate each slot's sequence word before and
// after copying and discard torn reads; under wrap pressure a span is lost,
// never corrupted into undefined behavior. The ring is pre-allocated at
// tracer construction, so recording a span allocates nothing.
//
// Tracing is compiled *into* the dispatch plan by internal/codegen — an
// event with tracing disabled executes a plan with no trace steps at all,
// so the PR 1 zero-allocation fast path is untouched when tracing is off
// (enforced by TestTracingOffZeroAlloc, not by promise). See DESIGN.md
// decision 11.
package trace

import (
	"sync"
	"sync/atomic"

	"spin/internal/vtime"
)

// Kind discriminates span records.
type Kind uint8

const (
	// KindRaiseBegin opens a raise: one per sampled raise.
	KindRaiseBegin Kind = iota + 1
	// KindGuard is one guard evaluation; Pass carries the outcome.
	KindGuard
	// KindHandler is one handler invocation (see Mode).
	KindHandler
	// KindMerge is one result-handler application.
	KindMerge
	// KindRaiseEnd closes a raise; Detail carries the fired count.
	KindRaiseEnd
	// KindReject is a control-plane rejection (quota or authorizer).
	KindReject
	// KindFault is a captured handler/guard fault (panic, deadline
	// overrun, virtual-time overrun); Detail carries the fault class.
	KindFault
	// KindQuarantine marks a binding (or module) compiled out of its
	// event's dispatch plan; Detail carries the quarantine generation.
	KindQuarantine
	// KindProbation marks a quarantined binding re-admitted under a
	// tightened budget, or restored to full health (Pass set).
	KindProbation
	// KindShed marks an asynchronous submission shed by an admission
	// queue; Detail packs the queue depth and the policy mode.
	KindShed
	// KindDegrade marks a degradation-level transition; Detail packs the
	// from and to levels, Pass marks an escalation.
	KindDegrade
	// KindBreaker marks a remote peer's circuit-breaker transition; Detail
	// packs the from and to states, Pass marks a trip (any transition into
	// the open state).
	KindBreaker
)

func (k Kind) String() string {
	switch k {
	case KindRaiseBegin:
		return "raise-begin"
	case KindGuard:
		return "guard"
	case KindHandler:
		return "handler"
	case KindMerge:
		return "merge"
	case KindRaiseEnd:
		return "raise-end"
	case KindReject:
		return "reject"
	case KindFault:
		return "fault"
	case KindQuarantine:
		return "quarantine"
	case KindProbation:
		return "probation"
	case KindShed:
		return "shed"
	case KindDegrade:
		return "degrade"
	case KindBreaker:
		return "breaker"
	}
	return "kind(?)"
}

// Mode is a handler invocation's execution mode.
type Mode uint8

const (
	// ModeSync is a synchronous in-line handler call.
	ModeSync Mode = iota
	// ModeAsync is a handler spawned on a separate thread of control.
	ModeAsync
	// ModeEphemeral is a handler run under termination supervision.
	ModeEphemeral
	// ModeFilter is an argument-rewriting filter invocation.
	ModeFilter
	// ModeDirect is the single-binding bypass (dispatcher skipped).
	ModeDirect
	// ModeDefault is the default handler, fired when nothing else did.
	ModeDefault
)

func (m Mode) String() string {
	switch m {
	case ModeSync:
		return "sync"
	case ModeAsync:
		return "async"
	case ModeEphemeral:
		return "ephemeral"
	case ModeFilter:
		return "filter"
	case ModeDirect:
		return "direct"
	case ModeDefault:
		return "default"
	}
	return "mode(?)"
}

// RejectReason labels a KindReject span.
type RejectReason uint8

const (
	// RejectQuota is a handler-quota denial at installation (§2.6).
	RejectQuota RejectReason = iota
	// RejectAuth is an authorizer denial (§2.5).
	RejectAuth
	// RejectFault is an installation denied because the installing module
	// is quarantined by the fault controller.
	RejectFault
)

func (r RejectReason) String() string {
	switch r {
	case RejectQuota:
		return "quota"
	case RejectAuth:
		return "auth"
	case RejectFault:
		return "fault"
	}
	return "reject(?)"
}

// Span is one decoded trace record.
type Span struct {
	// Seq is the global publication sequence; snapshots sort by it.
	Seq uint64
	// Raise identifies the raise this span belongs to (0 for control-
	// plane spans).
	Raise uint64
	// Event is the event's qualified name.
	Event string
	// Kind discriminates the record.
	Kind Kind
	// Step is the dispatch-plan step index the span refers to (KindGuard,
	// KindHandler), the merge index (KindMerge), or -1 when inapplicable.
	Step int
	// Guard is the guard's index within its step's guard list (KindGuard).
	Guard int
	// Name is the handler name the span refers to, the rejected installer
	// module (KindReject), or "" for raise-level spans.
	Name string
	// Mode is the handler execution mode (KindHandler).
	Mode Mode
	// Pass reports a guard's outcome, or an ephemeral handler's
	// completion (false = terminated).
	Pass bool
	// Inline reports whether a guard was evaluated inline.
	Inline bool
	// Start is the span's start instant in virtual time. On an unmetered
	// dispatcher it is a synthetic monotonic stamp that orders spans but
	// measures nothing.
	Start vtime.Time
	// Cost is the span's virtual-time cost (zero when unmetered).
	Cost vtime.Duration
	// Detail carries per-kind extras: the fired count (KindRaiseEnd), the
	// first raise argument word (KindRaiseBegin), the rejection reason
	// (KindReject).
	Detail uint64
	// Ambiguous and UsedDefault mirror the raise outcome (KindRaiseEnd).
	Ambiguous   bool
	UsedDefault bool
}

// Packed slot layout. Every word is atomic so concurrent writers and the
// snapshot reader never perform an unsynchronized access; the seq word is
// the publication flag (seqlock protocol, torn reads discarded).
type slot struct {
	seq    atomic.Uint64 // 0 = empty, ^0 = being written, else ticket
	raise  atomic.Uint64
	packed atomic.Uint64 // prog(32) | step(16) | guard(8) | kind(4) | mode(4)... see pack
	start  atomic.Int64
	cost   atomic.Int64
	detail atomic.Uint64
}

const slotWriting = ^uint64(0)

// packed word layout (low to high): kind(4) mode(4) flags(8) guard(8)
// step(16) prog(24).
const (
	flagPass uint64 = 1 << iota
	flagInline
	flagAmbiguous
	flagUsedDefault
)

const stepNone = 0xFFFF // Step == -1 sentinel

func pack(prog uint32, st, guard int, k Kind, m Mode, flags uint64) uint64 {
	step := uint64(stepNone)
	if st >= 0 && st < stepNone {
		step = uint64(st)
	}
	return uint64(k)&0xF |
		(uint64(m)&0xF)<<4 |
		(flags&0xFF)<<8 |
		(uint64(guard)&0xFF)<<16 |
		step<<24 |
		(uint64(prog)&0xFFFFFF)<<40
}

func unpack(w uint64) (prog uint32, st, guard int, k Kind, m Mode, flags uint64) {
	k = Kind(w & 0xF)
	m = Mode(w >> 4 & 0xF)
	flags = w >> 8 & 0xFF
	guard = int(w >> 16 & 0xFF)
	st = int(w >> 24 & 0xFFFF)
	if st == stepNone {
		st = -1
	}
	prog = uint32(w >> 40 & 0xFFFFFF)
	return
}

// StepMeta names one dispatch-plan step for span resolution.
type StepMeta struct {
	// Name is the handler's qualified procedure name.
	Name string
	// Mode is the step's execution mode.
	Mode Mode
}

// EventMeta is the immutable metadata registered for one traced plan: the
// event name and the handler behind each step index. Registered metadata is
// retained for the tracer's lifetime so spans recorded against a superseded
// plan (swapped out by an install) still resolve.
type EventMeta struct {
	Event string
	Steps []StepMeta
	// Default names the default handler, if one is compiled in.
	Default string
}

// Config configures a Tracer.
type Config struct {
	// Capacity is the ring size in spans, rounded up to a power of two;
	// zero selects 4096. Old spans are overwritten when the ring wraps.
	Capacity int
	// Sample records 1-in-Sample raises; values below 2 record every
	// raise. Unsampled raises execute the untraced fast path.
	Sample int
}

// Tracer owns the span ring and the traced-plan metadata registry. One
// tracer may serve many events on many dispatchers; recording is safe from
// any goroutine.
type Tracer struct {
	mask   uint64
	slots  []slot
	head   atomic.Uint64 // next publication ticket (1-based)
	raises atomic.Uint64 // raise counter, drives sampling and raise IDs
	ticks  atomic.Int64  // synthetic time source for unmetered spans
	sample uint64

	mu    sync.Mutex
	progs []EventMeta // index+1 == prog id; id 0 reserved for "unknown"
}

// New creates a tracer. The span ring is fully allocated here; recording
// never allocates.
func New(cfg Config) *Tracer {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 4096
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	sample := uint64(cfg.Sample)
	if sample < 1 {
		sample = 1
	}
	return &Tracer{mask: uint64(n - 1), slots: make([]slot, n), sample: sample}
}

// Program registers the metadata for one compiled traced plan and returns
// the recording handle the generated dispatch routine embeds.
func (t *Tracer) Program(meta EventMeta) *Program {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.progs = append(t.progs, meta)
	return &Program{t: t, id: uint32(len(t.progs))}
}

// lookup resolves a program id to its metadata. The zero id and ids beyond
// the registry resolve to an empty meta.
func (t *Tracer) lookup(id uint32) EventMeta {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id == 0 || int(id) > len(t.progs) {
		return EventMeta{}
	}
	return t.progs[id-1]
}

// Sample returns the configured 1-in-N sampling rate.
func (t *Tracer) Sample() int { return int(t.sample) }

// Capacity returns the ring capacity in spans.
func (t *Tracer) Capacity() int { return len(t.slots) }

// Recorded returns the total number of spans recorded (including spans the
// ring has since overwritten).
func (t *Tracer) Recorded() uint64 { return t.head.Load() }

// Dropped returns the number of recorded spans no longer in the ring.
func (t *Tracer) Dropped() uint64 {
	if h := t.head.Load(); h > uint64(len(t.slots)) {
		return h - uint64(len(t.slots))
	}
	return 0
}

// emit claims the next slot and publishes one encoded span.
func (t *Tracer) emit(raise, packed uint64, start int64, cost int64, detail uint64) {
	ticket := t.head.Add(1)
	s := &t.slots[(ticket-1)&t.mask]
	s.seq.Store(slotWriting)
	s.raise.Store(raise)
	s.packed.Store(packed)
	s.start.Store(start)
	s.cost.Store(cost)
	s.detail.Store(detail)
	s.seq.Store(ticket)
}

// now is the synthetic time source for unmetered recording: a monotonic
// stamp that orders spans without measuring anything.
func (t *Tracer) now() int64 { return t.ticks.Add(1) }

// Stamp returns the current instant for span timing: virtual time when the
// CPU meter has a clock, the tracer's synthetic ordering stamp otherwise.
func (t *Tracer) Stamp(cpu *vtime.CPU) int64 {
	if cpu.Clock() != nil {
		return int64(cpu.Now())
	}
	return t.now()
}

// Metered reports whether cpu provides real virtual time (versus the
// synthetic stamp), so callers can record zero cost for synthetic spans.
func (t *Tracer) Metered(cpu *vtime.CPU) bool { return cpu.Clock() != nil }

// Reject records a control-plane rejection span: a handler installation
// denied by quota accounting or by the event's authorizer.
func (t *Tracer) Reject(event string, reason RejectReason, module string) {
	p := t.Program(EventMeta{Event: event, Steps: []StepMeta{{Name: module}}})
	t.emit(0, pack(p.id, 0, 0, KindReject, ModeSync, 0), t.now(), 0, uint64(reason))
}

// Fault records a control-plane fault span: a handler or guard misbehaved
// (panicked, overran a deadline or a virtual-time budget). detail is the
// fault subsystem's kind code, recorded opaquely.
func (t *Tracer) Fault(event, handler string, detail uint64) {
	p := t.Program(EventMeta{Event: event, Steps: []StepMeta{{Name: handler}}})
	t.emit(0, pack(p.id, 0, 0, KindFault, ModeSync, 0), t.now(), 0, detail)
}

// Quarantine records a binding (or whole module) being compiled out of the
// dispatch plan; level is the quarantine generation driving the backoff.
func (t *Tracer) Quarantine(event, handler string, level int) {
	p := t.Program(EventMeta{Event: event, Steps: []StepMeta{{Name: handler}}})
	t.emit(0, pack(p.id, 0, 0, KindQuarantine, ModeSync, 0), t.now(), 0, uint64(level))
}

// Degrade records a degradation-level transition: the overload controller
// moved from level `from` to level `to` (named by name). Transitions are
// rare, so the per-call metadata registration is acceptable here; per-shed
// spans use the cached Program.Shed path instead.
func (t *Tracer) Degrade(from, to int, name string) {
	p := t.Program(EventMeta{Event: "*", Steps: []StepMeta{{Name: name}}})
	var flags uint64
	if to > from {
		flags |= flagPass // escalation
	}
	t.emit(0, pack(p.id, 0, 0, KindDegrade, ModeSync, flags), t.now(), 0,
		(uint64(from)&0xFF)<<8|uint64(to)&0xFF)
}

// Breaker records a remote peer's circuit-breaker transition, the
// quarantine-style span for a failure domain that is a machine rather
// than a handler: the peer name keys the span, Detail packs the from and
// to states, and a transition into the open state is flagged Pass (the
// trip, the span operators alert on).
func (t *Tracer) Breaker(peer string, from, to int) {
	p := t.Program(EventMeta{Event: "*", Steps: []StepMeta{{Name: peer}}})
	var flags uint64
	if to == 1 { // remote.BreakerOpen
		flags |= flagPass
	}
	t.emit(0, pack(p.id, 0, 0, KindBreaker, ModeSync, flags), t.now(), 0,
		(uint64(from)&0xFF)<<8|uint64(to)&0xFF)
}

// Probation records a quarantined binding's re-admission under a tightened
// budget; restored marks the later return to full health.
func (t *Tracer) Probation(event, handler string, restored bool) {
	p := t.Program(EventMeta{Event: event, Steps: []StepMeta{{Name: handler}}})
	var flags uint64
	if restored {
		flags |= flagPass
	}
	t.emit(0, pack(p.id, 0, 0, KindProbation, ModeSync, flags), t.now(), 0, 0)
}

// Snapshot decodes the ring's currently published spans in recording
// order. Slots being concurrently rewritten are skipped, not torn.
func (t *Tracer) Snapshot() []Span {
	spans := make([]Span, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		seq := s.seq.Load()
		if seq == 0 || seq == slotWriting {
			continue
		}
		raise := s.raise.Load()
		packed := s.packed.Load()
		start := s.start.Load()
		cost := s.cost.Load()
		detail := s.detail.Load()
		if s.seq.Load() != seq {
			continue // torn: a writer claimed the slot mid-copy
		}
		prog, step, guard, kind, mode, flags := unpack(packed)
		meta := t.lookup(prog)
		sp := Span{
			Seq:         seq,
			Raise:       raise,
			Event:       meta.Event,
			Kind:        kind,
			Step:        step,
			Guard:       guard,
			Mode:        mode,
			Pass:        flags&flagPass != 0,
			Inline:      flags&flagInline != 0,
			Ambiguous:   flags&flagAmbiguous != 0,
			UsedDefault: flags&flagUsedDefault != 0,
			Start:       vtime.Time(start),
			Cost:        vtime.Duration(cost),
			Detail:      detail,
		}
		switch kind {
		case KindGuard, KindHandler:
			if step >= 0 && step < len(meta.Steps) {
				sp.Name = meta.Steps[step].Name
			} else if mode == ModeDefault {
				sp.Name = meta.Default
			}
		case KindReject, KindFault, KindQuarantine, KindProbation, KindDegrade, KindBreaker:
			if len(meta.Steps) > 0 {
				sp.Name = meta.Steps[0].Name
			}
		}
		spans = append(spans, sp)
	}
	sortSpans(spans)
	return spans
}

// sortSpans orders by publication sequence (insertion sort is fine: the
// ring is read mostly in order already).
func sortSpans(spans []Span) {
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j-1].Seq > spans[j].Seq; j-- {
			spans[j-1], spans[j] = spans[j], spans[j-1]
		}
	}
}

// Reset clears the ring (the metadata registry is retained).
func (t *Tracer) Reset() {
	for i := range t.slots {
		t.slots[i].seq.Store(0)
	}
	t.head.Store(0)
}

// Program is the per-plan recording handle compiled into a traced dispatch
// routine. All methods are safe for concurrent use and allocation-free.
type Program struct {
	t  *Tracer
	id uint32
}

// Tracer returns the owning tracer.
func (p *Program) Tracer() *Tracer { return p.t }

// Begin draws the sampling decision for one raise. When sampled it returns
// a unique raise id; otherwise the caller runs the untraced routine.
func (p *Program) Begin() (raise uint64, sampled bool) {
	n := p.t.raises.Add(1)
	if p.t.sample > 1 && n%p.t.sample != 0 {
		return 0, false
	}
	return n, true
}

// RaiseBegin opens a sampled raise. arg0 is the first raise argument as a
// word (0 when absent or non-word), recorded for discrimination debugging.
func (p *Program) RaiseBegin(raise uint64, start int64, arg0 uint64) {
	p.t.emit(raise, pack(p.id, -1, 0, KindRaiseBegin, ModeSync, 0), start, 0, arg0)
}

// Guard records one guard evaluation.
func (p *Program) Guard(raise uint64, step, guard int, inline, pass bool, start, cost int64) {
	var flags uint64
	if pass {
		flags |= flagPass
	}
	if inline {
		flags |= flagInline
	}
	p.t.emit(raise, pack(p.id, step, guard, KindGuard, ModeSync, flags), start, cost, 0)
}

// Handler records one handler invocation. completed is false only for a
// terminated EPHEMERAL invocation.
func (p *Program) Handler(raise uint64, step int, mode Mode, completed bool, start, cost int64) {
	var flags uint64
	if completed {
		flags |= flagPass
	}
	p.t.emit(raise, pack(p.id, step, 0, KindHandler, mode, flags), start, cost, 0)
}

// Merge records one result-handler application.
func (p *Program) Merge(raise uint64, index int, start, cost int64) {
	p.t.emit(raise, pack(p.id, index, 0, KindMerge, ModeSync, 0), start, cost, 0)
}

// RaiseEnd closes a sampled raise with its outcome.
func (p *Program) RaiseEnd(raise uint64, start, cost int64, fired int, ambiguous, usedDefault bool) {
	var flags uint64
	if ambiguous {
		flags |= flagAmbiguous
	}
	if usedDefault {
		flags |= flagUsedDefault
	}
	p.t.emit(raise, pack(p.id, -1, 0, KindRaiseEnd, ModeSync, flags), start, cost, uint64(fired))
}

// Shed records one shed submission against the program's event. Unlike the
// Tracer's control-plane helpers this reuses the program's registered
// metadata, so shedding under sustained overload — the one time shed spans
// fire in volume — allocates nothing. depth is the queue depth at the shed;
// mode the admission policy's mode code.
func (p *Program) Shed(depth int, mode uint8) {
	p.t.emit(0, pack(p.id, -1, 0, KindShed, ModeSync, 0), p.t.now(), 0,
		(uint64(depth)&0xFFFFFF)<<8|uint64(mode))
}

// Stamp returns the current instant (see Tracer.Stamp).
func (p *Program) Stamp(cpu *vtime.CPU) int64 { return p.t.Stamp(cpu) }

// Metered reports whether cpu provides real virtual time.
func (p *Program) Metered(cpu *vtime.CPU) bool { return p.t.Metered(cpu) }
