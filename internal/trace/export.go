package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// chromeEvent is one record in the Chrome trace_event JSON format
// (chrome://tracing, Perfetto). Complete spans use ph "X" with ts/dur in
// fractional microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

// spanName renders the span's display name for exporters.
func spanName(sp Span) string {
	switch sp.Kind {
	case KindRaiseBegin:
		return sp.Event + " raise"
	case KindGuard:
		outcome := "fail"
		if sp.Pass {
			outcome = "pass"
		}
		name := sp.Name
		if name == "" {
			if sp.Step < 0 {
				name = "<decision-tree>"
			} else {
				name = fmt.Sprintf("step %d", sp.Step)
			}
		}
		return fmt.Sprintf("guard %s [%s]", name, outcome)
	case KindHandler:
		name := sp.Name
		if name == "" {
			name = fmt.Sprintf("step %d", sp.Step)
		}
		return fmt.Sprintf("%s (%s)", name, sp.Mode)
	case KindMerge:
		return fmt.Sprintf("merge #%d", sp.Step)
	case KindRaiseEnd:
		return sp.Event + " done"
	case KindReject:
		return fmt.Sprintf("%s rejected [%s]", sp.Name, RejectReason(sp.Detail))
	case KindFault:
		return fmt.Sprintf("%s faulted", sp.Name)
	case KindQuarantine:
		return fmt.Sprintf("%s quarantined [gen %d]", sp.Name, sp.Detail)
	case KindProbation:
		if sp.Pass {
			return fmt.Sprintf("%s restored", sp.Name)
		}
		return fmt.Sprintf("%s on probation", sp.Name)
	case KindShed:
		return fmt.Sprintf("%s shed [depth %d]", sp.Event, sp.Detail>>8)
	case KindDegrade:
		return fmt.Sprintf("degrade %d -> %d [%s]", sp.Detail>>8&0xFF, sp.Detail&0xFF, sp.Name)
	case KindBreaker:
		return fmt.Sprintf("breaker %d -> %d [%s]", sp.Detail>>8&0xFF, sp.Detail&0xFF, sp.Name)
	}
	return sp.Kind.String()
}

// ExportChrome writes the tracer's current spans as Chrome trace_event
// JSON, loadable in chrome://tracing or ui.perfetto.dev. Each raise maps
// to one tid so its guard → handler → merge structure reads as one track.
func (t *Tracer) ExportChrome(w io.Writer) error {
	return exportChrome(w, t.Snapshot())
}

func exportChrome(w io.Writer, spans []Span) error {
	file := chromeFile{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayUnit: "ns"}
	for _, sp := range spans {
		ev := chromeEvent{
			Name:  spanName(sp),
			Cat:   sp.Kind.String(),
			Phase: "X",
			TS:    float64(sp.Start) / 1e3,
			Dur:   float64(sp.Cost) / 1e3,
			PID:   1,
			TID:   sp.Raise,
			Args:  map[string]any{"seq": sp.Seq},
		}
		switch sp.Kind {
		case KindGuard:
			ev.Args["step"] = sp.Step
			ev.Args["guard"] = sp.Guard
			ev.Args["pass"] = sp.Pass
			ev.Args["inline"] = sp.Inline
		case KindHandler:
			ev.Args["step"] = sp.Step
			ev.Args["mode"] = sp.Mode.String()
			ev.Args["completed"] = sp.Pass
		case KindRaiseBegin:
			ev.Args["event"] = sp.Event
			ev.Args["arg0"] = sp.Detail
		case KindRaiseEnd:
			ev.Args["fired"] = sp.Detail
			ev.Args["ambiguous"] = sp.Ambiguous
			ev.Args["default"] = sp.UsedDefault
		case KindReject:
			ev.Args["reason"] = RejectReason(sp.Detail).String()
			ev.Args["event"] = sp.Event
		case KindFault:
			ev.Args["class"] = sp.Detail
			ev.Args["event"] = sp.Event
		case KindQuarantine:
			ev.Args["generation"] = sp.Detail
			ev.Args["event"] = sp.Event
		case KindProbation:
			ev.Args["restored"] = sp.Pass
			ev.Args["event"] = sp.Event
		case KindShed:
			ev.Args["depth"] = sp.Detail >> 8
			ev.Args["mode"] = sp.Detail & 0xFF
			ev.Args["event"] = sp.Event
		case KindDegrade:
			ev.Args["from"] = sp.Detail >> 8 & 0xFF
			ev.Args["to"] = sp.Detail & 0xFF
			ev.Args["level"] = sp.Name
			ev.Args["escalation"] = sp.Pass
		case KindBreaker:
			ev.Args["from"] = sp.Detail >> 8 & 0xFF
			ev.Args["to"] = sp.Detail & 0xFF
			ev.Args["peer"] = sp.Name
			ev.Args["trip"] = sp.Pass
		}
		file.TraceEvents = append(file.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}

// ExportText writes a human-readable rendering of the tracer's current
// spans, grouped by raise in raise order, one indented line per span.
func (t *Tracer) ExportText(w io.Writer) error {
	spans := t.Snapshot()

	// Group by raise, keeping first-seen raise order; control-plane spans
	// (raise 0) print first.
	order := make([]uint64, 0, 16)
	byRaise := make(map[uint64][]Span)
	for _, sp := range spans {
		if _, ok := byRaise[sp.Raise]; !ok {
			order = append(order, sp.Raise)
		}
		byRaise[sp.Raise] = append(byRaise[sp.Raise], sp)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	var sb strings.Builder
	for _, raise := range order {
		group := byRaise[raise]
		if raise == 0 {
			sb.WriteString("control plane:\n")
		} else {
			event := group[0].Event
			fmt.Fprintf(&sb, "raise #%d %s:\n", raise, event)
		}
		for _, sp := range group {
			fmt.Fprintf(&sb, "  %-12s %-40s start=%-12v cost=%v\n",
				sp.Kind, spanName(sp), sp.Start, sp.Cost)
		}
	}
	if dropped := t.Dropped(); dropped > 0 {
		fmt.Fprintf(&sb, "(%d older spans overwritten by ring wrap)\n", dropped)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
