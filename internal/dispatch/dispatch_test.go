package dispatch

import (
	"errors"
	"testing"

	"spin/internal/codegen"
	"spin/internal/rtti"
)

// Test fixtures: a module, events of various shapes, and handler builders.

var testModule = rtti.NewModule("TestModule", "Test")

func voidProc(name string, args ...rtti.Type) *rtti.Proc {
	return &rtti.Proc{Name: name, Module: testModule, Sig: rtti.Sig(nil, args...)}
}

func resultProc(name string, result rtti.Type, args ...rtti.Type) *rtti.Proc {
	return &rtti.Proc{Name: name, Module: testModule, Sig: rtti.Sig(result, args...)}
}

func guardProc(name string, args ...rtti.Type) *rtti.Proc {
	return &rtti.Proc{Name: name, Module: testModule, Sig: rtti.Sig(rtti.Bool, args...), Functional: true}
}

func handler(proc *rtti.Proc, fn HandlerFn) Handler {
	return Handler{Proc: proc, Fn: fn}
}

func mustDefine(t *testing.T, d *Dispatcher, name string, sig rtti.Signature, opts ...EventOption) *Event {
	t.Helper()
	e, err := d.DefineEvent(name, sig, opts...)
	if err != nil {
		t.Fatalf("DefineEvent(%s): %v", name, err)
	}
	return e
}

func TestDefineEventBasics(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil, rtti.Word))
	if e.Name() != "M.P" || e.Signature().Arity() != 1 {
		t.Fatal("event metadata wrong")
	}
	if _, ok := d.Lookup("M.P"); !ok {
		t.Fatal("Lookup missed defined event")
	}
	if _, ok := d.Lookup("M.Q"); ok {
		t.Fatal("Lookup invented an event")
	}
	if len(d.Events()) != 1 {
		t.Fatal("Events() snapshot wrong")
	}
	if _, err := d.DefineEvent("M.P", rtti.Sig(nil)); !errors.Is(err, ErrDuplicateEvent) {
		t.Fatalf("duplicate define: %v", err)
	}
}

func TestIntrinsicHandlerDispatchesAsProcedureCall(t *testing.T) {
	// Figure 1: an event with only an intrinsic handler is identical (in
	// semantics and implementation) to a procedure call.
	d := New()
	calls := 0
	e := mustDefine(t, d, "M.P", rtti.Sig(rtti.Word, rtti.Word),
		WithIntrinsic(handler(resultProc("M.P", rtti.Word, rtti.Word), func(clo any, args []any) any {
			calls++
			return args[0].(int) * 2
		})))
	if e.Plan().Direct() == nil {
		t.Fatal("intrinsic-only event must compile to a direct call")
	}
	res, err := e.Raise(21)
	if err != nil || res != 42 || calls != 1 {
		t.Fatalf("res=%v err=%v calls=%d", res, err, calls)
	}
	if e.Authority() != testModule {
		t.Fatal("authority must be the intrinsic handler's module")
	}
	if e.IntrinsicBinding() == nil {
		t.Fatal("intrinsic binding missing")
	}
}

func TestReplaceIntrinsicHandler(t *testing.T) {
	// §2.1: "A typical model for changing the implementation of a single
	// procedure within a module is to deregister the intrinsic handler
	// and then register an alternate one."
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(rtti.Text),
		WithIntrinsic(handler(resultProc("M.P", rtti.Text), func(any, []any) any { return "old" })))
	if err := e.Uninstall(e.IntrinsicBinding()); err != nil {
		t.Fatalf("deregister intrinsic: %v", err)
	}
	if e.IntrinsicBinding() != nil {
		t.Fatal("intrinsic still reported installed")
	}
	if _, err := e.Raise(); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("raise with no handlers: %v", err)
	}
	if _, err := e.Install(handler(resultProc("N.P", rtti.Text), func(any, []any) any { return "new" })); err != nil {
		t.Fatalf("install replacement: %v", err)
	}
	res, err := e.Raise()
	if err != nil || res != "new" {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestNoHandlerException(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	if _, err := e.Raise(); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v, want ErrNoHandler", err)
	}
}

func TestBadArity(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil, rtti.Word))
	if _, err := e.Raise(); !errors.Is(err, ErrBadArity) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.Raise(1, 2); !errors.Is(err, ErrBadArity) {
		t.Fatalf("err = %v", err)
	}
	if err := e.RaiseAsync(); !errors.Is(err, ErrBadArity) {
		t.Fatalf("async err = %v", err)
	}
}

func TestArgTypeCheckingInPurityMode(t *testing.T) {
	d := New(WithPurityChecking())
	e := mustDefine(t, d, "M.P", rtti.Sig(nil, rtti.Word, rtti.Text))
	_, _ = e.Install(handler(voidProc("H", rtti.Word, rtti.Text), func(any, []any) any { return nil }))
	if _, err := e.Raise(1, "ok"); err != nil {
		t.Fatalf("valid args rejected: %v", err)
	}
	if _, err := e.Raise("wrong", "ok"); !errors.Is(err, ErrBadArgType) {
		t.Fatalf("err = %v", err)
	}
}

func TestInstallTypechecking(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil, rtti.Word))
	// Wrong arity.
	if _, err := e.Install(handler(voidProc("H"), func(any, []any) any { return nil })); err == nil {
		t.Fatal("wrong-arity handler accepted")
	}
	// Wrong result.
	if _, err := e.Install(handler(resultProc("H", rtti.Word, rtti.Word), func(any, []any) any { return nil })); err == nil {
		t.Fatal("wrong-result handler accepted")
	}
	// Missing implementation and descriptor.
	if _, err := e.Install(Handler{Proc: voidProc("H", rtti.Word)}); !errors.Is(err, ErrNilHandler) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.Install(Handler{Fn: func(any, []any) any { return nil }}); !errors.Is(err, rtti.ErrNilProc) {
		t.Fatalf("err = %v", err)
	}
}

func TestClosurePassedToHandler(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil, rtti.Word))
	var got any
	proc := &rtti.Proc{Name: "H", Module: testModule,
		Sig: rtti.Signature{Args: []rtti.Type{rtti.RefAny, rtti.Word}}}
	_, err := e.Install(handler(proc, func(clo any, args []any) any {
		got = clo
		return nil
	}), WithClosure("the-closure"))
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	if _, err := e.Raise(7); err != nil {
		t.Fatalf("raise: %v", err)
	}
	if got != "the-closure" {
		t.Fatalf("closure = %v", got)
	}
}

func TestClosureTypechecking(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	// Handler with a closure must declare a closure parameter.
	noParam := voidProc("H")
	if _, err := e.Install(handler(noParam, func(any, []any) any { return nil }), WithClosure("x")); err == nil {
		t.Fatal("closure without parameter accepted")
	}
	// Closure of the wrong type must be rejected: Text is not a
	// reference type.
	wordParam := &rtti.Proc{Name: "H", Module: testModule,
		Sig: rtti.Signature{Args: []rtti.Type{rtti.Word}}}
	if _, err := e.Install(handler(wordParam, func(any, []any) any { return nil }), WithClosure("str")); err == nil {
		t.Fatal("TEXT closure accepted for WORD parameter")
	}
}

func TestSameHandlerInstalledManyTimes(t *testing.T) {
	// §2.1: the same handler can be installed many times and is invoked
	// independently for each installation.
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	n := 0
	h := handler(voidProc("H"), func(any, []any) any { n++; return nil })
	for i := 0; i < 3; i++ {
		if _, err := e.Install(h); err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
	}
	if _, err := e.Raise(); err != nil {
		t.Fatalf("raise: %v", err)
	}
	if n != 3 {
		t.Fatalf("handler fired %d times, want 3", n)
	}
}

func TestGuardsConditionDispatch(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "Trap.Syscall", rtti.Sig(nil, rtti.Word))
	var machCalls, osfCalls int
	isMach := Guard{Proc: guardProc("IsMach", rtti.Word), Fn: func(clo any, args []any) bool {
		return args[0].(int) < 100
	}}
	isOSF := Guard{Proc: guardProc("IsOSF", rtti.Word), Fn: func(clo any, args []any) bool {
		return args[0].(int) >= 100
	}}
	_, _ = e.Install(handler(voidProc("Mach.Syscall", rtti.Word), func(any, []any) any { machCalls++; return nil }), WithGuard(isMach))
	_, _ = e.Install(handler(voidProc("OSF.Syscall", rtti.Word), func(any, []any) any { osfCalls++; return nil }), WithGuard(isOSF))

	if _, err := e.Raise(42); err != nil {
		t.Fatalf("raise: %v", err)
	}
	if _, err := e.Raise(200); err != nil {
		t.Fatalf("raise: %v", err)
	}
	if machCalls != 1 || osfCalls != 1 {
		t.Fatalf("mach=%d osf=%d", machCalls, osfCalls)
	}
}

func TestGuardRejectionRaisesNoHandler(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	never := Guard{Pred: codegen.False()}
	_, _ = e.Install(handler(voidProc("H"), func(any, []any) any { return nil }), WithGuard(never))
	if _, err := e.Raise(); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v", err)
	}
}

func TestGuardClosure(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil, rtti.Word))
	gproc := &rtti.Proc{Name: "G", Module: testModule, Functional: true,
		Sig: rtti.Signature{Args: []rtti.Type{rtti.RefAny, rtti.Word}, Result: rtti.Bool}}
	var sawClosure any
	g := Guard{Proc: gproc, Closure: "guard-closure", Fn: func(clo any, args []any) bool {
		sawClosure = clo
		return true
	}}
	n := 0
	_, err := e.Install(handler(voidProc("H", rtti.Word), func(any, []any) any { n++; return nil }), WithGuard(g))
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	if _, err := e.Raise(1); err != nil {
		t.Fatalf("raise: %v", err)
	}
	if sawClosure != "guard-closure" || n != 1 {
		t.Fatalf("closure=%v n=%d", sawClosure, n)
	}
}

func TestGuardMustBeFunctional(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	impure := &rtti.Proc{Name: "G", Module: testModule, Sig: rtti.Sig(rtti.Bool)}
	g := Guard{Proc: impure, Fn: func(any, []any) bool { return true }}
	_, err := e.Install(handler(voidProc("H"), func(any, []any) any { return nil }), WithGuard(g))
	if !errors.Is(err, rtti.ErrNotFunc) {
		t.Fatalf("err = %v, want ErrNotFunc", err)
	}
}

func TestPurityMonitorCatchesMutatingGuard(t *testing.T) {
	d := New(WithPurityChecking())
	e := mustDefine(t, d, "M.P", rtti.Sig(nil, rtti.Word))
	evil := Guard{Proc: guardProc("Evil", rtti.Word), Fn: func(clo any, args []any) bool {
		args[0] = 999 // FUNCTIONAL violation
		return true
	}}
	_, _ = e.Install(handler(voidProc("H", rtti.Word), func(any, []any) any { return nil }), WithGuard(evil))
	if _, err := e.Raise(1); !errors.Is(err, ErrGuardMutatedArgs) {
		t.Fatalf("err = %v, want ErrGuardMutatedArgs", err)
	}
}

func TestResultSingleHandler(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.F", rtti.Sig(rtti.Word))
	_, _ = e.Install(handler(resultProc("H", rtti.Word), func(any, []any) any { return 7 }))
	res, err := e.Raise()
	if err != nil || res != 7 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestResultHandlerLogicalOr(t *testing.T) {
	// The paper's VM.PageFault example: the result handler returns the
	// logical-or of all the handler results.
	d := New()
	e := mustDefine(t, d, "VM.PageFault", rtti.Sig(rtti.Bool, rtti.Word))
	if err := e.SetResultHandler(func(acc, r any, i int) any {
		a, _ := acc.(bool)
		b, _ := r.(bool)
		return a || b
	}); err != nil {
		t.Fatalf("SetResultHandler: %v", err)
	}
	mk := func(v bool) Handler {
		return handler(resultProc("Pager", rtti.Bool, rtti.Word), func(any, []any) any { return v })
	}
	_, _ = e.Install(mk(false))
	_, _ = e.Install(mk(true))
	_, _ = e.Install(mk(false))
	res, err := e.Raise(0x1000)
	if err != nil || res != true {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestAmbiguousResultError(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.F", rtti.Sig(rtti.Word))
	_, _ = e.Install(handler(resultProc("H1", rtti.Word), func(any, []any) any { return 1 }))
	_, _ = e.Install(handler(resultProc("H2", rtti.Word), func(any, []any) any { return 2 }))
	if _, err := e.Raise(); !errors.Is(err, ErrAmbiguousResult) {
		t.Fatalf("err = %v", err)
	}
}

func TestDefaultHandler(t *testing.T) {
	// §2.3: a default handler executes only when no other handler fires.
	d := New()
	e := mustDefine(t, d, "VM.PageFault", rtti.Sig(rtti.Bool, rtti.Word))
	if err := e.SetDefaultHandler(handler(resultProc("DefaultPager", rtti.Bool, rtti.Word),
		func(any, []any) any { return true })); err != nil {
		t.Fatalf("SetDefaultHandler: %v", err)
	}
	res, err := e.Raise(0)
	if err != nil || res != true {
		t.Fatalf("default path: res=%v err=%v", res, err)
	}
	// Install a real handler: default must step aside.
	_, _ = e.Install(handler(resultProc("Pager", rtti.Bool, rtti.Word), func(any, []any) any { return false }))
	res, err = e.Raise(0)
	if err != nil || res != false {
		t.Fatalf("handler path: res=%v err=%v", res, err)
	}
	// Clearing restores the exception.
	_ = e.SetDefaultHandler(handler(resultProc("Pager", rtti.Bool, rtti.Word), func(any, []any) any { return false }))
	if err := e.SetDefaultHandler(Handler{}); err != nil {
		t.Fatalf("clear default: %v", err)
	}
}

func TestFilterRewritesArguments(t *testing.T) {
	// §2.3: the MS-DOS-name-space example — a filter converts file names,
	// subsequent handlers see the converted value, the raiser's value is
	// untouched.
	d := New()
	e := mustDefine(t, d, "FS.Open", rtti.Sig(nil, rtti.Text))
	fproc := &rtti.Proc{Name: "DosFilter", Module: testModule,
		Sig: rtti.Signature{Args: []rtti.Type{rtti.Text}, ByRef: []bool{true}}}
	_, err := e.Install(Handler{Proc: fproc, Fn: func(clo any, args []any) any {
		args[0] = "unix/" + args[0].(string)
		return nil
	}}, AsFilter())
	if err != nil {
		t.Fatalf("install filter: %v", err)
	}
	var seen string
	_, _ = e.Install(handler(voidProc("Open", rtti.Text), func(clo any, args []any) any {
		seen = args[0].(string)
		return nil
	}), Last())
	name := "C:\\AUTOEXEC.BAT"
	if _, err := e.Raise(name); err != nil {
		t.Fatalf("raise: %v", err)
	}
	if seen != "unix/C:\\AUTOEXEC.BAT" {
		t.Fatalf("downstream saw %q", seen)
	}
	if name != "C:\\AUTOEXEC.BAT" {
		t.Fatal("raiser's value mutated")
	}
}

func TestGuardAfterFilterSeesRewrittenArgs(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil, rtti.Word))
	fproc := &rtti.Proc{Name: "F", Module: testModule,
		Sig: rtti.Signature{Args: []rtti.Type{rtti.Word}, ByRef: []bool{true}}}
	_, _ = e.Install(Handler{Proc: fproc, Fn: func(clo any, args []any) any {
		args[0] = uint64(80)
		return nil
	}}, AsFilter())
	fired := 0
	_, _ = e.Install(handler(voidProc("H", rtti.Word), func(any, []any) any { fired++; return nil }),
		WithGuard(Guard{Pred: codegen.ArgEq(0, 80)}), Last())
	if _, err := e.Raise(uint64(9999)); err != nil {
		t.Fatalf("raise: %v", err)
	}
	if fired != 1 {
		t.Fatal("guard after filter did not see rewritten argument")
	}
}

func TestUninstall(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	n := 0
	b, _ := e.Install(handler(voidProc("H"), func(any, []any) any { n++; return nil }))
	if !b.Installed() {
		t.Fatal("binding not reported installed")
	}
	if err := e.Uninstall(b); err != nil {
		t.Fatalf("uninstall: %v", err)
	}
	if b.Installed() {
		t.Fatal("binding still reported installed")
	}
	if err := e.Uninstall(b); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("double uninstall: %v", err)
	}
	if err := e.Uninstall(nil); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("nil uninstall: %v", err)
	}
	if _, err := e.Raise(); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("raise after uninstall: %v", err)
	}
	if n != 0 {
		t.Fatal("handler fired after uninstall")
	}
}

func TestStats(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	_, _ = e.Install(handler(voidProc("H"), func(any, []any) any { return nil }),
		WithGuard(Guard{Pred: codegen.True()}))
	_, _ = e.Install(handler(voidProc("H2"), func(any, []any) any { return nil }))
	for i := 0; i < 5; i++ {
		_, _ = e.Raise()
	}
	s := e.Stats()
	if s.Raised != 5 {
		t.Errorf("Raised = %d", s.Raised)
	}
	if s.Fired != 10 {
		t.Errorf("Fired = %d", s.Fired)
	}
	if s.Handlers != 2 {
		t.Errorf("Handlers = %d", s.Handlers)
	}
	if s.Guards != 1 {
		t.Errorf("Guards = %d", s.Guards)
	}
}

func TestBindingAccessors(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	b, _ := e.Install(handler(voidProc("Mod.H"), func(any, []any) any { return nil }))
	if b.Event() != e {
		t.Error("Event() wrong")
	}
	if b.HandlerName() != "Mod.H" {
		t.Errorf("HandlerName = %q", b.HandlerName())
	}
	if b.Installer() != testModule {
		t.Error("Installer wrong")
	}
	if b.Intrinsic() || b.Async() || b.Ephemeral() || b.Filter() {
		t.Error("property flags wrong")
	}
	_, _ = e.Raise()
	if b.Fired() != 1 {
		t.Errorf("Fired = %d", b.Fired())
	}
	anon := &Binding{event: e}
	if anon.HandlerName() != "<anonymous>" || anon.Installer() != nil {
		t.Error("anonymous binding accessors wrong")
	}
}

func TestEventLookupAndPlanDisassembly(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil),
		WithIntrinsic(handler(voidProc("M.P"), func(any, []any) any { return nil })))
	if e.Plan().Disassemble() == "" {
		t.Fatal("empty disassembly")
	}
}

func TestAsyncEventDefinitionRejectsByRef(t *testing.T) {
	d := New()
	sig := rtti.Signature{Args: []rtti.Type{rtti.Word}, ByRef: []bool{true}}
	if _, err := d.DefineEvent("M.P", sig, AsAsync()); !errors.Is(err, ErrAsyncByRef) {
		t.Fatalf("err = %v", err)
	}
}

func TestInvalidSignatureRejected(t *testing.T) {
	d := New()
	bad := rtti.Signature{Args: []rtti.Type{rtti.Word}, ByRef: []bool{true, false}}
	if _, err := d.DefineEvent("M.P", bad); err == nil {
		t.Fatal("invalid signature accepted")
	}
}

func TestAccessorsAndStringers(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.Async", rtti.Sig(nil), AsAsync())
	if !e.Async() {
		t.Fatal("Async() false for async event")
	}
	if e.Dispatcher() != d {
		t.Fatal("Dispatcher() wrong")
	}
	for _, k := range []OrderKind{Unordered, OrderFirst, OrderLast, OrderBefore, OrderAfter, OrderKind(99)} {
		if k.String() == "" {
			t.Fatal("empty OrderKind name")
		}
	}
	for _, op := range []AuthOp{OpInstall, OpUninstall, OpSetDefault, OpSetResult, AuthOp(99)} {
		if op.String() == "" {
			t.Fatal("empty AuthOp name")
		}
	}
}

func TestGuardValidationErrors(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	h := handler(voidProc("H"), func(any, []any) any { return nil })
	// Guard without implementation.
	if _, err := e.Install(h, WithGuard(Guard{Proc: guardProc("G")})); err == nil {
		t.Fatal("guard without Fn accepted")
	}
	// Guard with Fn but no descriptor.
	if _, err := e.Install(h, WithGuard(Guard{Fn: func(any, []any) bool { return true }})); err == nil {
		t.Fatal("guard without Proc accepted")
	}
}

func TestImposeGuardTypecheckFailure(t *testing.T) {
	d := New()
	owner := rtti.NewModule("Owner")
	e := mustDefine(t, d, "M.P", rtti.Sig(nil, rtti.Word), WithOwner(owner))
	b, _ := e.Install(handler(voidProc("H", rtti.Word), func(any, []any) any { return nil }))
	// An imposed guard with a mismatched signature is rejected.
	bad := Guard{
		Proc: &rtti.Proc{Name: "G", Module: owner, Functional: true,
			Sig: rtti.Sig(rtti.Bool, rtti.Text)},
		Fn: func(any, []any) bool { return true },
	}
	if err := e.ImposeGuard(b, bad, owner); err == nil {
		t.Fatal("ill-typed imposed guard accepted")
	}
	// Authorizer-context imposition hits the same check.
	_ = e.InstallAuthorizer(func(req *AuthRequest) bool {
		return req.ImposeGuard(bad) == nil
	}, owner)
	if _, err := e.Install(handler(voidProc("H2", rtti.Word), func(any, []any) any { return nil })); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestSetDefaultHandlerValidation(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.F", rtti.Sig(rtti.Word))
	// Wrong signature default handler.
	bad := handler(voidProc("D"), func(any, []any) any { return nil })
	if err := e.SetDefaultHandler(bad); err == nil {
		t.Fatal("ill-typed default handler accepted")
	}
	// Missing descriptor.
	if err := e.SetDefaultHandler(Handler{Fn: func(any, []any) any { return nil }}); err == nil {
		t.Fatal("default handler without Proc accepted")
	}
}

func TestSetOrderRestoresOnBadRef(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	a, _ := e.Install(handler(voidProc("A"), func(any, []any) any { return nil }))
	b, _ := e.Install(handler(voidProc("B"), func(any, []any) any { return nil }))
	other := mustDefine(t, d, "M.Q", rtti.Sig(nil))
	foreign, _ := other.Install(handler(voidProc("X"), func(any, []any) any { return nil }))
	// Reordering against a foreign binding fails and restores position.
	if err := e.SetOrder(a, Order{Kind: OrderBefore, Ref: foreign}); !errors.Is(err, ErrOrderRef) {
		t.Fatalf("err = %v", err)
	}
	if e.Position(a) != 0 || e.Position(b) != 1 {
		t.Fatalf("positions disturbed: a=%d b=%d", e.Position(a), e.Position(b))
	}
}

func TestBindingStringIsInformative(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	b, _ := e.Install(handler(voidProc("Mod.H"), func(any, []any) any { return nil }))
	_ = b
	// Strand-style String on Order values via the binding accessors.
	if b.Order().Kind != Unordered {
		t.Fatal("fresh binding has a constraint")
	}
}
