package dispatch

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"spin/internal/admit"
	"spin/internal/trace"
	"spin/internal/vtime"
)

// AdmissionConfig configures the dispatcher's overload control (see
// internal/admit and DESIGN.md decision 13).
type AdmissionConfig struct {
	// Workers caps the shared worker pool that drains admission queues and
	// backs the default spawner; zero selects admit.DefaultWorkers().
	Workers int
	// Default, when non-nil, gives every event defined on the dispatcher a
	// bounded admission queue under this policy. Individual events override
	// it (or opt out) with Event.SetAdmission. A nil Default leaves events
	// unqueued unless they opt in.
	Default *admit.Policy
	// Levels is the degradation ladder, ordered mild to severe; empty
	// disables the degradation controller.
	Levels []admit.Level
	// Hold is the number of consecutive calm load observations before the
	// controller steps down one level; values below 1 select 1.
	Hold int
	// SampleEvery observes load every N admissions (sheds always observe);
	// zero selects 64.
	SampleEvery int
}

// WithAdmission enables overload control: asynchronous raises and handler
// invocations pass through bounded admission queues drained by the shared
// worker pool, and (when Levels is set) a degradation controller disables
// optional bindings by priority class as load crosses the configured
// thresholds. Events without a policy still execute the plain spawn path —
// admission is compiled into the dispatch plan exactly like tracing and
// fault capture, so the no-policy raise path pays one nil check.
func WithAdmission(cfg AdmissionConfig) Option {
	return func(d *Dispatcher) { d.admitCfg = &cfg }
}

// admitCtl is the dispatcher's overload controller: the bridge between the
// mechanism-free admission package (queues, pool, degradation state
// machine) and the dispatch machinery. It owns the shared worker pool —
// which also backs the default spawner — creates per-event queues, wraps
// admitted invocations in the supervised run (watchdog, panic capture,
// retry), and turns the Degrader's level transitions into plan
// recompilations published through the same atomic swap installs use.
//
// Lock order mirrors faultCtl: mu is never held while an event's mutex is
// taken. applyMu serializes level application separately so a transition
// can walk every event without holding mu across the walk.
type admitCtl struct {
	d          *Dispatcher
	pool       *admit.Pool
	defaultPol *admit.Policy
	degrader   *admit.Degrader // nil when no ladder is configured
	sampleMask uint64

	admissions atomic.Uint64 // drives sampled load observation

	mu      sync.Mutex
	queues  []*admit.Queue
	lastSub int64 // shed-rate window: submissions at last observation
	lastShd int64 // and sheds at last observation
	rng     uint64

	applyMu sync.Mutex
	level   atomic.Int32 // applied degradation level, for accessors
}

func newAdmitCtl(d *Dispatcher, cfg AdmissionConfig) *admitCtl {
	a := &admitCtl{
		d:          d,
		pool:       admit.NewPool(cfg.Workers),
		defaultPol: cfg.Default,
		rng:        uint64(time.Now().UnixNano()) | 1,
	}
	if len(cfg.Levels) > 0 {
		a.degrader = admit.NewDegrader(cfg.Levels, cfg.Hold)
	}
	every := cfg.SampleEvery
	if every <= 0 {
		every = 64
	}
	// Round the sampling interval up to a power of two so the hot-path
	// check is a mask, and observation cadence stays branch-cheap.
	n := uint64(1)
	for n < uint64(every) {
		n <<= 1
	}
	a.sampleMask = n - 1
	return a
}

// newQueue creates and registers one event's admission queue. The shed
// hook carries a pre-registered trace program, so shedding under sustained
// overload — the one time shed spans fire in volume — allocates nothing.
func (a *admitCtl) newQueue(name string, pol admit.Policy) *admit.Queue {
	q := admit.NewQueue(name, pol, a.pool)
	var prog *trace.Program
	if t := a.d.tracer; t != nil {
		prog = t.Program(trace.EventMeta{Event: name})
	}
	q.OnShed(func() {
		if prog != nil {
			prog.Shed(q.Stats().Depth, uint8(pol.Mode))
		}
		// Sheds are the load signal degradation exists for: always observe.
		a.observe()
	})
	a.mu.Lock()
	a.queues = append(a.queues, q)
	a.mu.Unlock()
	return q
}

// defaultPolicy returns the dispatcher-wide default admission policy, or
// nil when events start unqueued.
func (a *admitCtl) defaultPolicy() *admit.Policy { return a.defaultPol }

// noteAdmission samples load observation on the admission path.
func (a *admitCtl) noteAdmission() {
	if a.degrader == nil {
		return
	}
	if a.admissions.Add(1)&a.sampleMask == 0 {
		a.observe()
	}
}

// noteAdmissionN accounts n admissions at once (the batched raise path),
// observing load if the sampling window boundary was crossed anywhere in
// the batch — the same cadence n individual noteAdmission calls produce.
func (a *admitCtl) noteAdmissionN(n int) {
	if a.degrader == nil || n <= 0 {
		return
	}
	after := a.admissions.Add(uint64(n))
	if (after-uint64(n))&^a.sampleMask != after&^a.sampleMask {
		a.observe()
	}
}

// nextRand is an xorshift64* word for retry jitter.
func (a *admitCtl) nextRand() uint64 {
	a.mu.Lock()
	x := a.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	a.rng = x
	a.mu.Unlock()
	return x * 0x2545F4914F6CDD1D
}

// observe feeds one load sample (aggregate queue depth, shed rate over the
// window since the previous observation) to the degradation controller and
// applies any level transition it decides.
func (a *admitCtl) observe() {
	if a.degrader == nil {
		return
	}
	a.mu.Lock()
	var depth int
	var submitted, shed int64
	for _, q := range a.queues {
		s := q.Stats()
		depth += s.Depth
		submitted += s.Submitted
		shed += s.Shed
	}
	dSub := submitted - a.lastSub
	dShd := shed - a.lastShd
	a.lastSub, a.lastShd = submitted, shed
	rate := 0.0
	if dSub > 0 {
		rate = float64(dShd) / float64(dSub)
	}
	from, to, changed := a.degrader.Observe(depth, rate)
	var name string
	if changed {
		name = a.degrader.LevelName(to)
	}
	a.mu.Unlock()
	if changed {
		a.applyLevel(from, to, name)
	}
}

// applyLevel carries out a degradation transition: bindings whose priority
// class is disabled at the now-current level are compiled out of their
// events' plans, previously disabled classes that the level re-admits are
// compiled back in. The minimum disabled priority is re-read under mu at
// apply time, so racing transitions each apply the controller's current
// truth and the last application wins.
func (a *admitCtl) applyLevel(from, to int, name string) {
	a.applyMu.Lock()
	defer a.applyMu.Unlock()
	a.mu.Lock()
	minPri := a.degrader.MinPriority()
	cur := a.degrader.Level()
	a.mu.Unlock()
	a.level.Store(int32(cur))
	for _, e := range a.d.Events() {
		e.mu.Lock()
		changed := false
		for _, b := range e.bindings {
			want := minPri > 0 && b.priority >= minPri
			if b.degraded.Load() != want {
				b.degraded.Store(want)
				changed = true
			}
		}
		if changed {
			e.recompile(false)
		}
		e.mu.Unlock()
	}
	if t := a.d.tracer; t != nil {
		t.Degrade(from, to, name)
	}
	a.d.journalDegrade(from, to, name)
}

// supervised wraps one admitted handler invocation as pool work: panic
// capture into the fault ledger, a wall-clock watchdog with cooperative
// cancellation, watchdog survival for the pool (Abandon raises the worker
// cap while the invocation squats a worker, Reclaim lowers it if the
// invocation ever returns), and jittered exponential-backoff retry for
// transiently failing (panicking) runs, bounded by the policy's Retry
// count. Every failed attempt is charged against the binding's fault
// budget, so a handler that fails its way through retries still marches
// toward quarantine.
func (a *admitCtl) supervised(q *admit.Queue, b *Binding, invoke func(context.Context) any, attempt int) admit.Work {
	return func() bool {
		d := a.d
		deadline := d.faults.asyncDeadline(b)
		ctx := context.Background()
		var cancel context.CancelFunc
		var timer *time.Timer
		// state is the watchdog handshake: 0 running, 1 completed, 2
		// abandoned. Exactly one side wins the CAS, so a completion racing
		// the watchdog cannot double-account (or leak pool capacity).
		var state atomic.Int32
		if deadline > 0 {
			ctx, cancel = context.WithCancel(ctx)
			timer = time.AfterFunc(deadline, func() {
				if !state.CompareAndSwap(0, 2) {
					return
				}
				if b != nil {
					b.terminations.Add(1)
					b.terminated.Store(true)
				}
				d.faults.deadline(b, deadline)
				cancel()
				a.pool.Abandon()
			})
		}
		_, ok, val, stack := runProtected(ctx, invoke)
		if timer != nil {
			timer.Stop()
			cancel()
			if !state.CompareAndSwap(0, 1) {
				// The watchdog abandoned this invocation and a replacement
				// worker may have started; hand the extra capacity back.
				a.pool.Reclaim()
				return true
			}
		}
		if ok {
			return true
		}
		if b != nil {
			b.terminations.Add(1)
		}
		d.faults.handlerPanic(b, val, stack)
		pol := q.Policy()
		if attempt >= pol.Retry {
			return true // out of retries: final outcome
		}
		next := a.supervised(q, b, invoke, attempt+1)
		delay := pol.Backoff(attempt+1, a.nextRand())
		d.afterFunc(delay, func() { q.Requeue(next) })
		return false // stays charged to the queue until the retry settles
	}
}

// submitHandler is the Env.SubmitHandler hook: one asynchronous handler
// invocation, admitted through the event's compiled-in queue instead of
// spawned unconditionally. Under the simulator the queue is inactive —
// a single-threaded simulation cannot overload itself, and determinism
// matters more than backpressure there — so the invocation takes the plain
// supervised spawn path.
func (d *Dispatcher) submitHandler(q *admit.Queue, tag any, arity int, invoke func(context.Context) any) {
	if d.sim != nil {
		d.spawnHandler(tag, arity, invoke)
		return
	}
	// The submission stands for the thread spawn the raiser pays for.
	d.cpu.ChargeTo(vtime.AccountKernel, vtime.ThreadSpawnBase)
	d.cpu.ChargeNTo(vtime.AccountKernel, vtime.ThreadSpawnArg, arity)
	b, _ := tag.(*Binding)
	d.admit.noteAdmission()
	// The raiser has already proceeded (fire-and-forget): a shed here is
	// accounted in the queue's stats and trace span, not returned.
	_ = q.Submit(context.Background(), tag, d.admit.supervised(q, b, invoke, 0))
}

// submitRaise admits one whole asynchronous raise: the plan executes on a
// pool worker instead of a dedicated goroutine, and the raiser gets the
// overload verdict synchronously (nil, or an error wrapping
// admit.ErrOverload). Coalesce-mode queues merge pending raises of the
// same event.
func (d *Dispatcher) submitRaise(q *admit.Queue, e *Event, args []any) error {
	d.cpu.ChargeTo(vtime.AccountKernel, vtime.ThreadSpawnBase)
	d.cpu.ChargeNTo(vtime.AccountKernel, vtime.ThreadSpawnArg, len(args))
	d.admit.noteAdmission()
	return q.Submit(context.Background(), e, func() bool {
		_, _ = e.raiseSync(args)
		return true
	})
}

// submitRaiseBatch admits a whole batch of asynchronous raises in one
// ledger transaction: the spawn costs are charged for every frame (the
// work still runs), admission is sampled once for the batch, and the
// queue's lock is taken once. Coalesce-mode queues may merge the entire
// batch into one pending raise of the same event.
func (d *Dispatcher) submitRaiseBatch(q *admit.Queue, e *Event, frames []ArgFrame) admit.BatchStats {
	n := len(frames)
	d.cpu.ChargeNTo(vtime.AccountKernel, vtime.ThreadSpawnBase, n)
	d.cpu.ChargeNTo(vtime.AccountKernel, vtime.ThreadSpawnArg, n*e.sig.Arity())
	d.admit.noteAdmissionN(n)
	runs := make([]admit.Work, n)
	for i := range frames {
		args := frames[i]
		runs[i] = func() bool {
			_, _ = e.raiseSync(args)
			return true
		}
	}
	return q.SubmitBatch(context.Background(), e, runs)
}

// AdmissionPool returns a snapshot of the shared worker pool backing
// admission queues and the default spawner.
func (d *Dispatcher) AdmissionPool() admit.PoolStats { return d.admit.pool.Stats() }

// AdmissionQueues returns a snapshot of every admission queue created on
// the dispatcher, in creation order.
func (d *Dispatcher) AdmissionQueues() []*admit.Queue {
	d.admit.mu.Lock()
	defer d.admit.mu.Unlock()
	return append([]*admit.Queue(nil), d.admit.queues...)
}

// AdmissionLevel returns the overload controller's applied degradation
// level (0 = normal) and its name.
func (d *Dispatcher) AdmissionLevel() (int, string) {
	lvl := int(d.admit.level.Load())
	a := d.admit
	if a.degrader == nil {
		return 0, "normal"
	}
	a.mu.Lock()
	name := a.degrader.LevelName(lvl)
	a.mu.Unlock()
	return lvl, name
}

// ObserveAdmission forces one load observation, for operators and
// deterministic tests; the sampled cadence on the admission path does the
// same thing on its own under load.
func (d *Dispatcher) ObserveAdmission() { d.admit.observe() }
