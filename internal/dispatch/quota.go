package dispatch

import (
	"errors"
	"fmt"
	"sync"

	"spin/internal/rtti"
)

// Resource accounting for handler installations — the paper's §2.6 "Too
// many handlers": "events having more than one handler or guard consume
// some amount of kernel memory. Consequently, an extension could exhaust
// the system's memory by installing a large number of handlers on an
// event. Presently, SPIN denies additional installations when memory is
// low ... We are currently experimenting with different strategies for
// accounting and resource reclamation."
//
// This implements the strategy the paper was experimenting toward:
// explicit accounting. Installations are charged to the installing module
// (the handler procedure's defining module); a per-module quota and a
// global ceiling bound the kernel memory any extension — or all of them
// together — can consume through the dispatcher. Either limit at zero is
// unlimited, and intrinsic handlers are exempt (they are the procedures
// the system was built from, not dynamically added state).

// ErrQuotaExceeded reports a denied installation under resource
// accounting.
var ErrQuotaExceeded = errors.New("dispatch: handler installation quota exceeded")

// ErrAdmitQuota reports an asynchronous handler installation denied by the
// installing module's declared admission quota (rtti.Module.WithAsyncQuota).
var ErrAdmitQuota = errors.New("dispatch: module async admission quota exceeded")

// quotas tracks per-module and global binding counts for one dispatcher.
type quotas struct {
	mu        sync.Mutex
	perModule int // max bindings per installing module; 0 = unlimited
	global    int // max bindings across all modules; 0 = unlimited
	counts    map[*rtti.Module]int
	total     int
	// asyncCounts tracks installed asynchronous bindings per module, for
	// the admission quotas modules declare on their rtti descriptors.
	asyncCounts map[*rtti.Module]int
}

// WithHandlerQuota bounds the number of simultaneously installed handlers
// per installing module. Zero means unlimited.
func WithHandlerQuota(perModule int) Option {
	return func(d *Dispatcher) { d.quota.perModule = perModule }
}

// WithHandlerLimit bounds the total number of simultaneously installed
// handlers across the dispatcher — the analog of denying installations
// when kernel memory runs low. Zero means unlimited.
func WithHandlerLimit(global int) Option {
	return func(d *Dispatcher) { d.quota.global = global }
}

// charge accounts one installation to m, denying it if a limit would be
// exceeded. Anonymous handlers (nil module) count only against the global
// ceiling.
func (q *quotas) charge(m *rtti.Module) error {
	// Accounting is always on and the limits are read under the lock:
	// SetQuotas can change them at runtime (journaled; see journalctl.go),
	// so counts must be accurate even for bindings installed while no
	// limit was set. Installation is control-plane work that can afford
	// the mutex.
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.global > 0 && q.total >= q.global {
		return fmt.Errorf("%w: dispatcher limit %d reached", ErrQuotaExceeded, q.global)
	}
	if m != nil {
		if q.counts == nil {
			q.counts = make(map[*rtti.Module]int)
		}
		if q.perModule > 0 && q.counts[m] >= q.perModule {
			return fmt.Errorf("%w: module %s at its quota of %d",
				ErrQuotaExceeded, m.Name(), q.perModule)
		}
		q.counts[m]++
	}
	q.total++
	return nil
}

// release returns one installation's accounting, on uninstall.
func (q *quotas) release(m *rtti.Module) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.total > 0 {
		q.total--
	}
	if m != nil && q.counts[m] > 0 {
		q.counts[m]--
	}
}

// chargeAsync accounts one asynchronous handler installation against the
// module's declared admission quota. Unlike the memory quotas above, the
// limit lives on the rtti descriptor: a module that wants to install
// unbounded async handlers must say so in its published identity.
func (q *quotas) chargeAsync(m *rtti.Module) error {
	limit := m.AsyncQuota()
	if limit <= 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.asyncCounts == nil {
		q.asyncCounts = make(map[*rtti.Module]int)
	}
	if q.asyncCounts[m] >= limit {
		return fmt.Errorf("%w: module %s at its quota of %d",
			ErrAdmitQuota, m.Name(), limit)
	}
	q.asyncCounts[m]++
	return nil
}

// releaseAsync returns one asynchronous installation's accounting.
func (q *quotas) releaseAsync(m *rtti.Module) {
	if m.AsyncQuota() <= 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.asyncCounts[m] > 0 {
		q.asyncCounts[m]--
	}
}

// Installed reports the current accounting: total bindings and the given
// module's share.
func (d *Dispatcher) Installed(m *rtti.Module) (total, module int) {
	d.quota.mu.Lock()
	defer d.quota.mu.Unlock()
	return d.quota.total, d.quota.counts[m]
}
