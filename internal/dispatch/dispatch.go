// Package dispatch implements the SPIN event dispatcher, the primary
// contribution of "Dynamic Binding for an Extensible System" (Pardyak &
// Bershad, OSDI 1996).
//
// Events are procedure signatures; raising an event is a conditional
// invocation of the handlers installed on it. The dispatcher provides:
//
//   - dynamic installation and removal of handlers, with deterministic
//     ordering constraints (First/Last/Before/After, §2.3);
//   - guards: side-effect-free predicates that filter handler invocations,
//     installable by the handler's installer and imposable by the event's
//     authority (§2.2, §2.5);
//   - closures passed to handlers and guards at invocation (§2.1);
//   - filters: handlers that take parameters by reference and rewrite the
//     arguments seen by later handlers (§2.3);
//   - result handlers, default handlers, and the no-handler exception
//     (§2.3 "Handling results");
//   - asynchronous events and handlers, and EPHEMERAL handler termination
//     (§2.6 "Denial of service");
//   - access control through authorities, authorizers, and imposed guards
//     (§2.5);
//   - installation-time typechecking against the rtti signatures (§2.4).
//
// Performance structure (§3): an event whose only binding is the unguarded
// intrinsic handler is dispatched as a direct procedure call, bypassing the
// dispatcher. Richer events execute a specialized dispatch plan generated
// by internal/codegen; installs regenerate the plan and publish it with a
// single atomic store, so raises never take the installation lock.
package dispatch

import (
	"context"
	"errors"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"spin/internal/codegen"
	"spin/internal/fault"
	"spin/internal/journal"
	"spin/internal/trace"
	"spin/internal/vtime"
)

// Errors surfaced by the dispatcher. ErrNoHandler is the Go rendering of
// the paper's "runtime exception thrown at the point the event is raised"
// when no handler fires and no default handler is installed.
var (
	ErrNoHandler            = errors.New("dispatch: no handler fired for event")
	ErrAmbiguousResult      = errors.New("dispatch: multiple results without a result handler")
	ErrBadArity             = errors.New("dispatch: wrong number of raise arguments")
	ErrBadArgType           = errors.New("dispatch: raise argument has wrong type")
	ErrDuplicateEvent       = errors.New("dispatch: event already defined")
	ErrNotAuthority         = errors.New("dispatch: module is not the event's authority")
	ErrDenied               = errors.New("dispatch: operation denied by the event's authorizer")
	ErrAsyncByRef           = errors.New("dispatch: asynchronous execution illegal with by-reference arguments")
	ErrAsyncNeedsDefault    = errors.New("dispatch: asynchronous raise of a result event requires a default handler")
	ErrNotEphemeralProc     = errors.New("dispatch: handler procedure is not declared EPHEMERAL")
	ErrNotInstalled         = errors.New("dispatch: binding is not installed")
	ErrOrderRef             = errors.New("dispatch: ordering constraint references a binding on a different event")
	ErrNilHandler           = errors.New("dispatch: handler has no implementation")
	ErrGuardMutatedArgs     = errors.New("dispatch: FUNCTIONAL guard mutated its arguments")
	ErrIntrinsicNotDeferred = errors.New("dispatch: event already has an intrinsic handler")
	ErrModuleQuarantined    = errors.New("dispatch: module is quarantined")
)

// Dispatcher oversees event-based communication for one kernel instance.
// All handler-list manipulation serializes on the dispatcher; event raises
// are lock-free against the published plans.
type Dispatcher struct {
	mu     sync.Mutex
	events map[string]*Event

	cpu     *vtime.CPU
	sim     *vtime.Simulator
	cgOpts  codegen.Options
	purity  bool
	spawner func(fn func())
	quota   quotas
	tracer  *trace.Tracer

	// admit is the overload controller: always present, since its worker
	// pool backs the default spawner; admission queues and degradation are
	// configured with WithAdmission. pooledSpawn records that the default
	// (pool-backed) spawner is in use, so async watchdogs know abandoning
	// a stuck invocation must also raise the pool's capacity.
	admit       *admitCtl
	admitCfg    *AdmissionConfig
	pooledSpawn bool

	// faults is the fault controller: always present so every recovered
	// panic is recorded, enforcing (quarantine, deadlines, budgets) only
	// when a policy was installed with WithFaultPolicy.
	faults      *faultCtl
	faultPolicy *fault.Policy

	// jrnl is the lifecycle journal (WithJournal); nil dispatchers journal
	// nothing and compile plans without a journal field. jseq issues the
	// journal binding IDs install records define; jmuted suppresses
	// lifecycle emission while boot replay re-drives history through the
	// normal control plane (see journalctl.go).
	jrnl   *journal.Journal
	jseq   atomic.Uint64
	jmuted atomic.Bool
}

// Option configures a Dispatcher.
type Option func(*Dispatcher)

// WithCPU meters all dispatch activity on cpu, enabling the virtual-time
// benchmarks. A nil cpu leaves the dispatcher unmetered.
func WithCPU(cpu *vtime.CPU) Option {
	return func(d *Dispatcher) { d.cpu = cpu }
}

// WithSimulator runs asynchronous handlers and events on the discrete-event
// simulator instead of real goroutines, keeping metered runs deterministic.
func WithSimulator(sim *vtime.Simulator) Option {
	return func(d *Dispatcher) { d.sim = sim }
}

// WithCodegenOptions overrides the code generator's optimization switches,
// used by the ablation benchmarks.
func WithCodegenOptions(opts codegen.Options) Option {
	return func(d *Dispatcher) { d.cgOpts = opts }
}

// WithPurityChecking makes the dispatcher verify, on every evaluation, that
// out-of-line FUNCTIONAL guards did not mutate their arguments. This is the
// runtime stand-in for Modula-3's compiler-verified FUNCTIONAL attribute;
// it is meant for testing, not production dispatch.
func WithPurityChecking() Option {
	return func(d *Dispatcher) { d.purity = true }
}

// WithSpawner overrides how real-mode asynchronous invocations obtain a
// thread of control. The default runs each on the dispatcher's shared
// size-capped worker pool, which bounds how many asynchronous invocations
// run at once (excess work queues; nothing is shed) — an escape hatch for
// callers who need the old unbounded behaviour is
// WithSpawner(func(fn func()) { go fn() }). Admission-governed
// invocations (WithAdmission, Event.SetAdmission) always drain on the
// pool; this option governs only unqueued spawns.
func WithSpawner(spawn func(fn func())) Option {
	return func(d *Dispatcher) { d.spawner = spawn }
}

// WithTracer enables dispatch tracing for every event defined on the
// dispatcher: each event's plan is compiled with trace recording steps
// targeting t, and raises are sampled at t's configured rate. Individual
// events can still opt out (or a tracerless dispatcher's events opt in)
// with Event.Trace.
func WithTracer(t *trace.Tracer) Option {
	return func(d *Dispatcher) { d.tracer = t }
}

// Tracer returns the dispatcher-wide tracer, or nil.
func (d *Dispatcher) Tracer() *trace.Tracer { return d.tracer }

// WithFaultPolicy enables fault enforcement: every event's dispatch plan
// is compiled with fault capture, recovered panics and deadline overruns
// are charged against the policy's budgets, and bindings that exhaust a
// budget are quarantined — compiled out of their event's plan, re-admitted
// on probation after exponential backoff (see internal/fault and DESIGN.md
// decision 12). Without this option the dispatcher still records faults
// from its supervised paths (EPHEMERAL and asynchronous handlers, the
// purity monitor) into a record-only ledger, but never quarantines and
// compiles no recovery barriers into synchronous dispatch.
func WithFaultPolicy(p fault.Policy) Option {
	return func(d *Dispatcher) { d.faultPolicy = &p }
}

// New creates a dispatcher.
func New(opts ...Option) *Dispatcher {
	d := &Dispatcher{events: make(map[string]*Event)}
	for _, o := range opts {
		o(d)
	}
	acfg := AdmissionConfig{}
	if d.admitCfg != nil {
		acfg = *d.admitCfg
	}
	d.admit = newAdmitCtl(d, acfg)
	if d.spawner == nil {
		d.spawner = d.admit.pool.Go
		d.pooledSpawn = true
	}
	pol := fault.Policy{}
	if d.faultPolicy != nil {
		pol = *d.faultPolicy
	}
	d.faults = newFaultCtl(d, pol)
	return d
}

// FaultLedger returns the dispatcher's fault ledger. It always exists;
// without WithFaultPolicy it records faults but never quarantines.
func (d *Dispatcher) FaultLedger() *fault.Ledger { return d.faults.ledger }

// CPU returns the dispatcher's meter (nil when unmetered).
func (d *Dispatcher) CPU() *vtime.CPU { return d.cpu }

// Simulator returns the attached simulator, or nil.
func (d *Dispatcher) Simulator() *vtime.Simulator { return d.sim }

// Lookup returns the named event, if defined.
func (d *Dispatcher) Lookup(name string) (*Event, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.events[name]
	return e, ok
}

// Events returns a snapshot of all defined events, in no particular order.
func (d *Dispatcher) Events() []*Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Event, 0, len(d.events))
	for _, e := range d.events {
		out = append(out, e)
	}
	return out
}

// spawn runs fn on a separate thread of control, charging the raiser the
// thread-creation latency the paper reports for asynchronous events
// (38-90us depending on the number of arguments). In simulator mode the
// invocation is scheduled as a discrete event so metered runs stay
// deterministic and single-threaded; otherwise a goroutine is used.
func (d *Dispatcher) spawn(arity int, fn func()) {
	// Thread creation is kernel work, not dispatch overhead: attribute
	// it to the kernel account so the §3.2 events share stays honest.
	d.cpu.ChargeTo(vtime.AccountKernel, vtime.ThreadSpawnBase)
	d.cpu.ChargeNTo(vtime.AccountKernel, vtime.ThreadSpawnArg, arity)
	if d.sim != nil {
		d.sim.After(0, fn)
		return
	}
	d.spawner(fn)
}

// afterFunc schedules fn after dur: as a discrete event in simulator mode
// (deterministic; fires when the simulation reaches that time), on a
// wall-clock timer otherwise. Quarantine backoff and probation timers run
// through here so fault recovery works identically in both modes.
func (d *Dispatcher) afterFunc(dur time.Duration, fn func()) {
	if d.sim != nil {
		d.sim.After(vtime.Duration(dur), fn)
		return
	}
	time.AfterFunc(dur, fn)
}

// runEphemeral supervises an EPHEMERAL handler invocation (§2.6 "Runaway
// handlers"). In real-time mode the handler runs on its own goroutine with
// a watchdog; if the deadline passes, the invocation is abandoned — the
// dispatcher returns to the raiser, the handler's eventual result is
// discarded, the invocation's context is cancelled so a cooperative handler
// can stop early, and the binding's termination counter advances. A
// panicking handler is likewise treated as terminated. Go cannot destroy a
// thread, so abandonment-plus-cancellation substitutes for SPIN's
// termination; see DESIGN.md. Panics and deadline overruns are recorded in
// the fault ledger and, under an enforcing policy, charged against the
// binding's budget.
//
// In simulator mode handler bodies execute instantly in wall-clock terms,
// so the watchdog cannot fire; the supervisor still recovers panics.
func (d *Dispatcher) runEphemeral(tag any, deadline time.Duration, invoke func(context.Context) any) (any, bool) {
	b, _ := tag.(*Binding)
	if d.sim != nil || deadline <= 0 {
		res, ok, val, stack := runProtected(context.Background(), invoke)
		if !ok {
			if b != nil {
				b.terminations.Add(1)
			}
			d.faults.handlerPanic(b, val, stack)
		}
		return res, ok
	}
	ctx, cancel := context.WithCancel(context.Background())
	type reply struct {
		res any
		ok  bool
	}
	done := make(chan reply, 1)
	go func() {
		defer cancel()
		res, ok, val, stack := runProtected(ctx, invoke)
		if !ok {
			d.faults.handlerPanic(b, val, stack)
		}
		done <- reply{res, ok}
	}()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case r := <-done:
		if !r.ok && b != nil {
			b.terminations.Add(1)
		}
		return r.res, r.ok
	case <-timer.C:
		cancel()
		if b != nil {
			b.terminations.Add(1)
			b.terminated.Store(true)
		}
		d.faults.deadline(b, deadline)
		return nil, false
	}
}

// spawnHandler supervises one asynchronous handler invocation: the handler
// runs on its own thread of control (via spawn) behind a recovery barrier,
// so a panicking asynchronous handler is recorded as a fault instead of
// crashing the process. When the binding (or the fault policy) carries an
// asynchronous deadline and the dispatcher runs in real time, a wall-clock
// watchdog cancels the invocation's context and records a deadline fault;
// as with EPHEMERAL handlers, cancellation is cooperative.
func (d *Dispatcher) spawnHandler(tag any, arity int, invoke func(context.Context) any) {
	b, _ := tag.(*Binding)
	deadline := d.faults.asyncDeadline(b)
	d.spawn(arity, func() {
		ctx := context.Background()
		var cancel context.CancelFunc
		var timer *time.Timer
		// state is the watchdog handshake: 0 running, 1 completed, 2
		// abandoned. Exactly one side wins the CAS, so an invocation
		// completing as its watchdog fires cannot be double-accounted as
		// both a deadline fault and a clean completion — and on the pooled
		// spawner the watchdog hands the squatted worker's capacity back
		// (Abandon) so stuck invocations cannot starve the pool, with the
		// eventual return reclaiming it.
		var state atomic.Int32
		if deadline > 0 && d.sim == nil {
			ctx, cancel = context.WithCancel(ctx)
			timer = time.AfterFunc(deadline, func() {
				if !state.CompareAndSwap(0, 2) {
					return
				}
				if b != nil {
					b.terminations.Add(1)
					b.terminated.Store(true)
				}
				d.faults.deadline(b, deadline)
				cancel()
				if d.pooledSpawn {
					d.admit.pool.Abandon()
				}
			})
		}
		_, ok, val, stack := runProtected(ctx, invoke)
		if timer != nil {
			timer.Stop()
			cancel()
			if !state.CompareAndSwap(0, 1) {
				if d.pooledSpawn {
					d.admit.pool.Reclaim()
				}
				return // already accounted as a deadline termination
			}
		}
		if !ok {
			if b != nil {
				b.terminations.Add(1)
			}
			d.faults.handlerPanic(b, val, stack)
		}
	})
}

// runProtected runs invoke, converting a panic into a termination and
// handing back the panic value and stack for the fault ledger.
func runProtected(ctx context.Context, invoke func(context.Context) any) (res any, ok bool, val any, stack []byte) {
	defer func() {
		if ok {
			return
		}
		res = nil
		if val = recover(); val != nil {
			stack = debug.Stack()
		}
	}()
	res = invoke(ctx)
	ok = true
	return
}
