package dispatch

import (
	"errors"
	"sync"
	"testing"
	"time"

	"spin/internal/rtti"
	"spin/internal/vtime"
)

// syncSpawner runs spawned work inline, making real-mode async tests
// deterministic.
func syncSpawner() Option {
	return WithSpawner(func(fn func()) { fn() })
}

func TestAsyncEventDetachesRaiser(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil, rtti.Word), AsAsync())
	done := make(chan int, 1)
	_, _ = e.Install(handler(voidProc("H", rtti.Word), func(clo any, args []any) any {
		done <- args[0].(int)
		return nil
	}))
	res, err := e.Raise(42)
	if err != nil || res != nil {
		t.Fatalf("res=%v err=%v", res, err)
	}
	select {
	case v := <-done:
		if v != 42 {
			t.Fatalf("handler saw %d", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("async handler never ran")
	}
}

func TestAsyncRaiseOfResultEventRequiresDefault(t *testing.T) {
	// §2.6: "an attempt to raise an event asynchronously that returns a
	// result will raise an exception unless a default handler is
	// installed."
	d := New(syncSpawner())
	e := mustDefine(t, d, "M.F", rtti.Sig(rtti.Word))
	_, _ = e.Install(handler(resultProc("H", rtti.Word), func(any, []any) any { return 1 }))
	if err := e.RaiseAsync(); !errors.Is(err, ErrAsyncNeedsDefault) {
		t.Fatalf("err = %v", err)
	}
	_ = e.SetDefaultHandler(handler(resultProc("Def", rtti.Word), func(any, []any) any { return 0 }))
	if err := e.RaiseAsync(); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestAsyncRaiseByRefIllegal(t *testing.T) {
	d := New(syncSpawner())
	sig := rtti.Signature{Args: []rtti.Type{rtti.Word}, ByRef: []bool{true}}
	e := mustDefine(t, d, "M.P", sig)
	_, _ = e.Install(Handler{
		Proc: &rtti.Proc{Name: "H", Module: testModule, Sig: sig},
		Fn:   func(any, []any) any { return nil },
	})
	if err := e.RaiseAsync(1); !errors.Is(err, ErrAsyncByRef) {
		t.Fatalf("err = %v", err)
	}
	// Installing an asynchronous handler on a by-ref event is likewise
	// illegal.
	_, err := e.Install(Handler{
		Proc: &rtti.Proc{Name: "H2", Module: testModule, Sig: sig},
		Fn:   func(any, []any) any { return nil },
	}, Async())
	if !errors.Is(err, ErrAsyncByRef) {
		t.Fatalf("install err = %v", err)
	}
}

func TestAsyncHandlerAmongSyncOnes(t *testing.T) {
	// §2.6's lazy-replication example: the original write is synchronous,
	// the replication handler is asynchronous.
	d := New(syncSpawner())
	e := mustDefine(t, d, "FS.Write", rtti.Sig(nil, rtti.Word))
	var order []string
	var mu sync.Mutex
	mark := func(label string) HandlerFn {
		return func(any, []any) any {
			mu.Lock()
			order = append(order, label)
			mu.Unlock()
			return nil
		}
	}
	_, _ = e.Install(handler(voidProc("Write", rtti.Word), mark("write")))
	_, err := e.Install(handler(voidProc("Replicate", rtti.Word), mark("replicate")), Async())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Raise(1); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestAsyncRaiseChargesThreadSpawn(t *testing.T) {
	// §3.1: asynchronous events introduce 38-90us of additional latency,
	// spent creating the thread.
	var clock vtime.Clock
	cpu := vtime.NewCPU(&clock, vtime.AlphaModel())
	sim := vtime.NewSimulator(&clock)
	d := New(WithCPU(cpu), WithSimulator(sim))
	e := mustDefine(t, d, "M.P", rtti.Sig(nil, rtti.Word, rtti.Word))
	ran := false
	_, _ = e.Install(handler(voidProc("H", rtti.Word, rtti.Word), func(any, []any) any {
		ran = true
		return nil
	}))

	before := clock.Now()
	if err := e.RaiseAsync(uint64(1), uint64(2)); err != nil {
		t.Fatal(err)
	}
	raiseLatency := vtime.InMicros(clock.Now().Sub(before))
	if raiseLatency < 38 || raiseLatency > 90 {
		t.Fatalf("async raise latency %.1fus outside the paper's 38-90us band", raiseLatency)
	}
	if ran {
		t.Fatal("handler ran synchronously in simulator mode")
	}
	sim.Run(0)
	if !ran {
		t.Fatal("handler never ran")
	}
}

func TestEphemeralRequiresDeclaredProc(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	plain := handler(voidProc("H"), func(any, []any) any { return nil })
	if _, err := e.Install(plain, Ephemeral(time.Millisecond)); !errors.Is(err, ErrNotEphemeralProc) {
		t.Fatalf("err = %v", err)
	}
}

func ephemeralHandler(name string, fn HandlerFn) Handler {
	return Handler{
		Proc: &rtti.Proc{Name: name, Module: testModule, Sig: rtti.Sig(nil), Ephemeral: true},
		Fn:   fn,
	}
}

func TestEphemeralHandlerCompletesNormally(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	ran := false
	b, err := e.Install(ephemeralHandler("Fast", func(any, []any) any { ran = true; return nil }),
		Ephemeral(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Raise(); err != nil {
		t.Fatal(err)
	}
	if !ran || b.Terminations() != 0 || b.Terminated() {
		t.Fatalf("ran=%v terms=%d", ran, b.Terminations())
	}
}

func TestEphemeralHandlerTerminatedOnOverrun(t *testing.T) {
	// §2.6: handlers that execute beyond the allowed period are
	// terminated; the raiser continues. Go cannot destroy a goroutine,
	// so the invocation is abandoned — same observable behaviour for the
	// raiser (see DESIGN.md).
	d := New()
	e := mustDefine(t, d, "Net.Intr", rtti.Sig(nil))
	release := make(chan struct{})
	b, err := e.Install(ephemeralHandler("Slow", func(any, []any) any {
		<-release
		return nil
	}), Ephemeral(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := e.Raise(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("raiser blocked %v on a runaway handler", elapsed)
	}
	if b.Terminations() != 1 || !b.Terminated() {
		t.Fatalf("terminations = %d", b.Terminations())
	}
	close(release)
}

func TestEphemeralPanicIsTermination(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	b, err := e.Install(ephemeralHandler("Panics", func(any, []any) any {
		panic("ephemeral gone wrong")
	}), Ephemeral(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Raise(); err != nil {
		t.Fatalf("raiser must survive a panicking EPHEMERAL handler: %v", err)
	}
	if b.Terminations() != 1 {
		t.Fatalf("terminations = %d", b.Terminations())
	}
}

func TestEphemeralTerminationDoesNotBlockOtherHandlers(t *testing.T) {
	// A terminated handler must not prevent other handlers from running:
	// "a terminated handler in this case simply causes a packet to be
	// lost".
	d := New()
	e := mustDefine(t, d, "Net.PacketArrived", rtti.Sig(nil))
	release := make(chan struct{})
	defer close(release)
	_, _ = e.Install(ephemeralHandler("Stuck", func(any, []any) any {
		<-release
		return nil
	}), Ephemeral(2*time.Millisecond))
	delivered := 0
	_, _ = e.Install(handler(voidProc("Deliver"), func(any, []any) any { delivered++; return nil }))
	if _, err := e.Raise(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatal("handler after the runaway one did not run")
	}
}

func TestEphemeralResultDroppedOnTermination(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.F", rtti.Sig(rtti.Word))
	release := make(chan struct{})
	defer close(release)
	eph := Handler{
		Proc: &rtti.Proc{Name: "Slow", Module: testModule, Sig: rtti.Sig(rtti.Word), Ephemeral: true},
		Fn: func(any, []any) any {
			<-release
			return 99
		},
	}
	_, _ = e.Install(eph, Ephemeral(2*time.Millisecond))
	_, _ = e.Install(handler(resultProc("Live", rtti.Word), func(any, []any) any { return 7 }))
	res, err := e.Raise()
	if err != nil || res != 7 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestEphemeralInSimulatorModeRecoversPanics(t *testing.T) {
	var clock vtime.Clock
	cpu := vtime.NewCPU(&clock, vtime.AlphaModel())
	sim := vtime.NewSimulator(&clock)
	d := New(WithCPU(cpu), WithSimulator(sim))
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	b, _ := e.Install(ephemeralHandler("Panics", func(any, []any) any { panic("boom") }),
		Ephemeral(time.Second))
	if _, err := e.Raise(); err != nil {
		t.Fatal(err)
	}
	if b.Terminations() != 1 {
		t.Fatalf("terminations = %d", b.Terminations())
	}
}

func TestDispatcherAccessors(t *testing.T) {
	var clock vtime.Clock
	cpu := vtime.NewCPU(&clock, vtime.AlphaModel())
	sim := vtime.NewSimulator(&clock)
	d := New(WithCPU(cpu), WithSimulator(sim))
	if d.CPU() != cpu || d.Simulator() != sim {
		t.Fatal("accessors broken")
	}
}
