package dispatch

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spin/internal/admit"
	"spin/internal/rtti"
	"spin/internal/trace"
	"spin/internal/vtime"
)

// waitDrained polls until the queue has settled every submission or the
// deadline passes.
func waitDrained(t *testing.T, q *admit.Queue, timeout time.Duration) admit.QueueStats {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		s := q.Stats()
		if s.Drained() {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue %s never drained: %+v", q.Name(), s)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverloadSoak hammers an asynchronous event at roughly 10x its drain
// rate under each admission policy, asserting two invariants the subsystem
// exists for: the goroutine count stays bounded by the pool (no unbounded
// go-per-raise), and the queue ledger stays consistent — every submission
// ends as exactly one of completed, shed, or coalesced. Half the producers
// submit through the batched ingress (RaiseBatch) while a churn goroutine
// recompiles the plan underneath them — installs and uninstalls a
// priority-classed handler, toggles tracing, and forces degradation-level
// observations — so batched submission is soaked against every form of
// concurrent plan swap. Run with -race.
func TestOverloadSoak(t *testing.T) {
	const (
		workers   = 4
		producers = 8
		perProd   = 250
		batchLen  = 25 // batched producers submit perProd frames as 10 batches
	)
	policies := map[string]admit.Policy{
		"block":     {Mode: admit.Block, Depth: 16, BlockTimeout: time.Millisecond},
		"shed":      {Mode: admit.Shed, Depth: 16},
		"shedOld":   {Mode: admit.ShedOldest, Depth: 16},
		"coalesce":  {Mode: admit.Coalesce, Depth: 16},
		"defDepth0": {Mode: admit.Shed}, // zero depth selects DefaultDepth
	}
	for name, pol := range policies {
		pol := pol
		t.Run(name, func(t *testing.T) {
			d := New(WithAdmission(AdmissionConfig{
				Workers: workers,
				Default: &pol,
				Levels:  []admit.Level{{Name: "brownout", QueueDepth: 8, MinPriority: 2}},
				Hold:    1,
			}))
			e := mustDefine(t, d, "Load.Spin", rtti.Sig(nil, rtti.Word), AsAsync())
			var ran atomic.Int64
			_, err := e.Install(handler(voidProc("H", rtti.Word), func(any, []any) any {
				time.Sleep(100 * time.Microsecond) // drain rate ~ workers/100us
				ran.Add(1)
				return nil
			}))
			if err != nil {
				t.Fatal(err)
			}
			base := runtime.NumGoroutine()
			var maxG atomic.Int64
			var shedSeen atomic.Int64
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				batched := p%2 == 1
				go func() {
					defer wg.Done()
					if batched {
						// Batched ingress: the same perProd raises, submitted
						// as trains through the vectorized path.
						for b := 0; b < perProd/batchLen; b++ {
							frames := make([]ArgFrame, batchLen)
							for i := range frames {
								frames[i] = ArgFrame{b*batchLen + i}
							}
							out := e.RaiseBatch(frames)
							if out.Rejected != 0 {
								t.Errorf("batch rejected %d frames: %v", out.Rejected, out.Err())
								return
							}
							shedSeen.Add(int64(out.Shed))
							if g := int64(runtime.NumGoroutine()); g > maxG.Load() {
								maxG.Store(g)
							}
						}
						return
					}
					for i := 0; i < perProd; i++ {
						if err := e.RaiseAsync(i); err != nil {
							if !errors.Is(err, admit.ErrOverload) {
								t.Errorf("raise: %v", err)
								return
							}
							shedSeen.Add(1)
						}
						if g := int64(runtime.NumGoroutine()); g > maxG.Load() {
							maxG.Store(g)
						}
					}
				}()
			}
			// Plan churn concurrent with the producers: recompilations from
			// handler install/uninstall, trace toggling, and degradation
			// observations (queue depth crosses the brownout threshold under
			// this load, so levels genuinely move) — every raise and batch
			// must land on some valid plan generation.
			churnDone := make(chan struct{})
			churnStopped := make(chan struct{})
			go func() {
				defer close(churnStopped)
				tr := trace.New(trace.Config{Capacity: 1024})
				extra := handler(voidProc("Churn", rtti.Word), func(any, []any) any {
					return nil
				})
				for i := 0; ; i++ {
					select {
					case <-churnDone:
						return
					default:
					}
					b, err := e.Install(extra, WithPriority(2))
					if err != nil {
						t.Errorf("churn install: %v", err)
						return
					}
					if i%2 == 0 {
						e.Trace(tr)
					} else {
						e.Trace(nil)
					}
					d.ObserveAdmission()
					time.Sleep(50 * time.Microsecond)
					if err := e.Uninstall(b); err != nil {
						t.Errorf("churn uninstall: %v", err)
						return
					}
				}
			}()
			wg.Wait()
			close(churnDone)
			<-churnStopped
			e.Trace(nil)
			s := waitDrained(t, e.AdmissionQueue(), 10*time.Second)

			// The soak offers ~10x what the pool drains; without admission
			// control this spawns thousands of goroutines. Bound: producers
			// + pool workers + generous slack for timers and runtime
			// housekeeping.
			limit := int64(base + producers + workers + 32)
			if g := maxG.Load(); g > limit {
				t.Fatalf("goroutines peaked at %d (limit %d): admission is not bounding spawn", g, limit)
			}
			if s.Submitted != int64(producers*perProd) {
				t.Fatalf("submitted = %d, want %d", s.Submitted, producers*perProd)
			}
			if got := s.Completed + s.Shed + s.Coalesced; got != s.Submitted {
				t.Fatalf("ledger leak: completed %d + shed %d + coalesced %d = %d != submitted %d",
					s.Completed, s.Shed, s.Coalesced, got, s.Submitted)
			}
			switch pol.Mode {
			case admit.Shed, admit.Block:
				// Rejections and timeouts surface to the raiser.
				if s.Shed != shedSeen.Load() {
					t.Fatalf("queue counted %d sheds, raisers saw %d", s.Shed, shedSeen.Load())
				}
			default:
				// ShedOldest drops a pending victim and Coalesce merges;
				// the submitter itself is always admitted.
				if shedSeen.Load() != 0 {
					t.Fatalf("raisers saw %d sheds under %v", shedSeen.Load(), pol.Mode)
				}
			}
			if ran.Load() != s.Completed {
				t.Fatalf("handler ran %d times, queue completed %d", ran.Load(), s.Completed)
			}
		})
	}
}

// TestShedReturnsTypedOverloadError: a shed RaiseAsync reports the typed
// error synchronously, with the queue identified.
func TestShedReturnsTypedOverloadError(t *testing.T) {
	pol := admit.Policy{Mode: admit.Shed, Depth: 1}
	d := New(WithAdmission(AdmissionConfig{Workers: 1, Default: &pol}))
	e := mustDefine(t, d, "Load.Spin", rtti.Sig(nil, rtti.Word), AsAsync())
	gate := make(chan struct{})
	_, _ = e.Install(handler(voidProc("H", rtti.Word), func(any, []any) any {
		<-gate
		return nil
	}))
	// Saturate: one raise occupies the worker, one fills the queue, the
	// rest must shed.
	var overloaded *admit.OverloadError
	var sheds int
	for i := 0; i < 10; i++ {
		if err := e.RaiseAsync(i); err != nil {
			if !errors.As(err, &overloaded) {
				t.Fatalf("err = %v, want *OverloadError", err)
			}
			sheds++
		}
	}
	if sheds == 0 {
		t.Fatal("no raise was shed at 10x capacity")
	}
	if overloaded.Queue != "Load.Spin" || !errors.Is(overloaded, admit.ErrOverload) {
		t.Fatalf("overload error = %+v", overloaded)
	}
	close(gate)
	waitDrained(t, e.AdmissionQueue(), 5*time.Second)
}

// TestBlockPolicyWaitsForSpace: a Block-mode raise parks until the queue
// has room instead of shedding.
func TestBlockPolicyWaitsForSpace(t *testing.T) {
	pol := admit.Policy{Mode: admit.Block, Depth: 1}
	d := New(WithAdmission(AdmissionConfig{Workers: 1, Default: &pol}))
	e := mustDefine(t, d, "Load.Spin", rtti.Sig(nil, rtti.Word), AsAsync())
	gate := make(chan struct{})
	_, _ = e.Install(handler(voidProc("H", rtti.Word), func(any, []any) any {
		<-gate
		return nil
	}))
	if err := e.RaiseAsync(0); err != nil { // occupies the worker
		t.Fatal(err)
	}
	if err := e.RaiseAsync(1); err != nil { // fills the queue
		t.Fatal(err)
	}
	unblocked := make(chan error, 1)
	go func() { unblocked <- e.RaiseAsync(2) }()
	select {
	case err := <-unblocked:
		t.Fatalf("full-queue raise returned immediately: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(gate) // drain; the parked raise is granted the freed slot
	if err := <-unblocked; err != nil {
		t.Fatalf("blocked raise failed: %v", err)
	}
	s := waitDrained(t, e.AdmissionQueue(), 5*time.Second)
	if s.Shed != 0 || s.Completed != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestSetAdmissionPerEvent: one event opts into a policy on a dispatcher
// with no default; others keep the plain spawn path; removing the policy
// restores it.
func TestSetAdmissionPerEvent(t *testing.T) {
	d := New(WithAdmission(AdmissionConfig{Workers: 1}))
	e := mustDefine(t, d, "Load.Spin", rtti.Sig(nil, rtti.Word), AsAsync())
	plain := mustDefine(t, d, "Load.Plain", rtti.Sig(nil, rtti.Word), AsAsync())
	var ran atomic.Int64
	fn := func(any, []any) any { ran.Add(1); return nil }
	_, _ = e.Install(handler(voidProc("H", rtti.Word), fn))
	_, _ = plain.Install(handler(voidProc("H2", rtti.Word), fn))

	if e.AdmissionQueue() != nil || plain.AdmissionQueue() != nil {
		t.Fatal("no-default dispatcher compiled queues in")
	}
	e.SetAdmission(&admit.Policy{Mode: admit.Shed, Depth: 2})
	if e.AdmissionQueue() == nil {
		t.Fatal("SetAdmission did not compile the queue into the plan")
	}
	if plain.AdmissionQueue() != nil {
		t.Fatal("policy leaked to another event")
	}
	if err := e.RaiseAsync(1); err != nil {
		t.Fatal(err)
	}
	waitDrained(t, e.AdmissionQueue(), 5*time.Second)
	e.SetAdmission(nil)
	if e.AdmissionQueue() != nil {
		t.Fatal("SetAdmission(nil) left the queue compiled in")
	}
}

// TestRetryBackoffRecoversTransientFailure: a panicking async handler is
// requeued with backoff and eventually succeeds, with the attempts counted
// on the queue ledger and charged to the fault ledger.
func TestRetryBackoffRecoversTransientFailure(t *testing.T) {
	pol := admit.Policy{Mode: admit.Shed, Depth: 8,
		Retry: 3, RetryBackoff: time.Millisecond}
	d := New(WithAdmission(AdmissionConfig{Workers: 1, Default: &pol}))
	e := mustDefine(t, d, "Flaky.Tick", rtti.Sig(nil, rtti.Word))
	var attempts atomic.Int64
	done := make(chan struct{})
	_, err := e.Install(handler(voidProc("H", rtti.Word), func(any, []any) any {
		if attempts.Add(1) <= 2 {
			panic("transient")
		}
		close(done)
		return nil
	}), Async())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Raise(7); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("handler never succeeded (attempts=%d)", attempts.Load())
	}
	s := waitDrained(t, e.AdmissionQueue(), 5*time.Second)
	if attempts.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", attempts.Load())
	}
	if s.Retried != 2 {
		t.Fatalf("retried = %d, want 2", s.Retried)
	}
}

// TestRetryExhaustionIsFinal: a handler that never stops panicking gives up
// after the policy's retry budget.
func TestRetryExhaustionIsFinal(t *testing.T) {
	pol := admit.Policy{Mode: admit.Shed, Depth: 8,
		Retry: 2, RetryBackoff: time.Millisecond}
	d := New(WithAdmission(AdmissionConfig{Workers: 1, Default: &pol}))
	e := mustDefine(t, d, "Flaky.Tick", rtti.Sig(nil, rtti.Word))
	var attempts atomic.Int64
	_, _ = e.Install(handler(voidProc("H", rtti.Word), func(any, []any) any {
		attempts.Add(1)
		panic("permanent")
	}), Async())
	if _, err := e.Raise(7); err != nil {
		t.Fatal(err)
	}
	s := waitDrained(t, e.AdmissionQueue(), 5*time.Second)
	if got := attempts.Load(); got != 3 { // first run + 2 retries
		t.Fatalf("attempts = %d, want 3", got)
	}
	if s.Completed != 1 || s.Retried != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestModuleAsyncQuota: a module descriptor's async admission quota bounds
// its Async() installations; uninstalling releases the slot.
func TestModuleAsyncQuota(t *testing.T) {
	d := New(syncSpawner())
	e := mustDefine(t, d, "M.P", rtti.Sig(nil, rtti.Word))
	mod := rtti.NewModule("Greedy").WithAsyncQuota(1)
	h := func(name string) Handler {
		return Handler{
			Proc: &rtti.Proc{Name: name, Module: mod, Sig: rtti.Sig(nil, rtti.Word)},
			Fn:   func(any, []any) any { return nil },
		}
	}
	b1, err := e.Install(h("H1"), Async())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Install(h("H2"), Async()); !errors.Is(err, ErrAdmitQuota) {
		t.Fatalf("second async install err = %v, want ErrAdmitQuota", err)
	}
	// Synchronous installations are not charged against the async quota.
	if _, err := e.Install(h("H3")); err != nil {
		t.Fatal(err)
	}
	if err := e.Uninstall(b1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Install(h("H4"), Async()); err != nil {
		t.Fatalf("install after release: %v", err)
	}
}

// TestDegradationLevels walks the controller deterministically: a gated
// worker builds real queue depth, one forced observation escalates, the
// optional (priority-classed) binding is compiled out of its event's plan,
// and calm observations step back down and compile it back in.
func TestDegradationLevels(t *testing.T) {
	pol := admit.Policy{Mode: admit.Shed, Depth: 8}
	d := New(WithAdmission(AdmissionConfig{
		Workers: 1,
		Default: &pol,
		Levels: []admit.Level{
			{Name: "brownout", QueueDepth: 4, MinPriority: 2},
		},
		Hold: 2,
	}))
	load := mustDefine(t, d, "Load.Spin", rtti.Sig(nil, rtti.Word), AsAsync())
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	_, _ = load.Install(handler(voidProc("H", rtti.Word), func(any, []any) any {
		once.Do(func() { close(started) })
		<-gate
		return nil
	}))

	render := mustDefine(t, d, "App.Render", rtti.Sig(nil, rtti.Word))
	var essential, optional atomic.Int64
	_, err := render.Install(handler(voidProc("Essential", rtti.Word), func(any, []any) any {
		essential.Add(1)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = render.Install(handler(voidProc("Optional", rtti.Word), func(any, []any) any {
		optional.Add(1)
		return nil
	}), WithPriority(2))
	if err != nil {
		t.Fatal(err)
	}

	// Build real depth: one raise occupies the gated worker, five queue.
	for i := 0; i < 6; i++ {
		if err := load.RaiseAsync(i); err != nil {
			t.Fatal(err)
		}
	}
	<-started
	d.ObserveAdmission()
	if lvl, name := d.AdmissionLevel(); lvl != 1 || name != "brownout" {
		t.Fatalf("level = %d %q, want 1 brownout", lvl, name)
	}
	if _, err := render.Raise(1); err != nil {
		t.Fatal(err)
	}
	if essential.Load() != 1 || optional.Load() != 0 {
		t.Fatalf("degraded raise: essential=%d optional=%d", essential.Load(), optional.Load())
	}

	// Drain, then hold calm observations to step back down.
	close(gate)
	waitDrained(t, load.AdmissionQueue(), 5*time.Second)
	for i := 0; i < 3; i++ {
		d.ObserveAdmission()
	}
	if lvl, _ := d.AdmissionLevel(); lvl != 0 {
		t.Fatalf("level after calm = %d, want 0", lvl)
	}
	if _, err := render.Raise(2); err != nil {
		t.Fatal(err)
	}
	if essential.Load() != 2 || optional.Load() != 1 {
		t.Fatalf("recovered raise: essential=%d optional=%d", essential.Load(), optional.Load())
	}
}

// TestDegradationEmitsTraceSpans: level transitions record KindDegrade
// spans.
func TestDegradationEmitsTraceSpans(t *testing.T) {
	pol := admit.Policy{Mode: admit.Shed, Depth: 4}
	tr := trace.New(trace.Config{Capacity: 256})
	d := New(
		WithTracer(tr),
		WithAdmission(AdmissionConfig{
			Workers: 1,
			Default: &pol,
			Levels:  []admit.Level{{Name: "brownout", QueueDepth: 2, MinPriority: 2}},
			Hold:    1,
		}))
	load := mustDefine(t, d, "Load.Spin", rtti.Sig(nil, rtti.Word), AsAsync())
	gate := make(chan struct{})
	_, _ = load.Install(handler(voidProc("H", rtti.Word), func(any, []any) any {
		<-gate
		return nil
	}))
	for i := 0; i < 4; i++ {
		_ = load.RaiseAsync(i)
	}
	d.ObserveAdmission()
	close(gate)
	waitDrained(t, load.AdmissionQueue(), 5*time.Second)
	d.ObserveAdmission()
	d.ObserveAdmission()

	var ups, downs int
	for _, sp := range tr.Snapshot() {
		if sp.Kind.String() == "degrade" {
			if sp.Name == "brownout" {
				ups++
			} else {
				downs++
			}
		}
	}
	if ups == 0 || downs == 0 {
		t.Fatalf("degrade spans: up=%d down=%d, want both", ups, downs)
	}
}

// TestPooledSpawnerWatchdogRecoversCapacity exercises the spawnHandler
// bugfix: an async invocation abandoned by its deadline watchdog while
// squatting a pooled worker must hand capacity back (Abandon), and its
// eventual return must reclaim it — never double-count.
func TestPooledSpawnerWatchdogRecoversCapacity(t *testing.T) {
	d := New() // default spawner: the shared admission pool
	e := mustDefine(t, d, "M.Slow", rtti.Sig(nil, rtti.Word))
	release := make(chan struct{})
	h := Handler{
		Proc: &rtti.Proc{Name: "Slow", Module: testModule, Sig: rtti.Sig(nil, rtti.Word)},
		Fn: func(any, []any) any {
			<-release // uncooperative: ignores the watchdog's cancel
			return nil
		},
	}
	b, err := e.Install(h, Async(), WithDeadline(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Raise(1); err != nil {
		t.Fatal(err)
	}
	// The watchdog fires and abandons the squatted worker.
	deadline := time.Now().Add(5 * time.Second)
	for d.AdmissionPool().Extra != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never abandoned: %+v", d.AdmissionPool())
		}
		time.Sleep(time.Millisecond)
	}
	if d.AdmissionPool().Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1", d.AdmissionPool().Abandoned)
	}
	if b.Terminations() != 1 {
		t.Fatalf("terminations = %d, want 1", b.Terminations())
	}
	// The invocation finally returns: the extra capacity is reclaimed and
	// the completion is not double-counted as a success.
	close(release)
	for d.AdmissionPool().Extra != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("capacity never reclaimed: %+v", d.AdmissionPool())
		}
		time.Sleep(time.Millisecond)
	}
	if b.Terminations() != 1 {
		t.Fatalf("terminations after return = %d, want 1", b.Terminations())
	}
}

// TestAdmissionInactiveUnderSimulator: metered dispatchers keep the
// deterministic inline async path; the queue is compiled in but bypassed.
func TestAdmissionInactiveUnderSimulator(t *testing.T) {
	pol := admit.Policy{Mode: admit.Shed, Depth: 1}
	var clock vtime.Clock
	cpu := vtime.NewCPU(&clock, vtime.AlphaModel())
	sim := vtime.NewSimulator(&clock)
	d := New(WithCPU(cpu), WithSimulator(sim),
		WithAdmission(AdmissionConfig{Workers: 1, Default: &pol}))
	e := mustDefine(t, d, "Load.Spin", rtti.Sig(nil, rtti.Word), AsAsync())
	var ran atomic.Int64
	_, _ = e.Install(handler(voidProc("H", rtti.Word), func(any, []any) any {
		ran.Add(1)
		return nil
	}))
	// Far beyond the queue depth: nothing sheds under the simulator.
	for i := 0; i < 10; i++ {
		if err := e.RaiseAsync(i); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run(0)
	if ran.Load() != 10 {
		t.Fatalf("ran = %d, want 10", ran.Load())
	}
	if s := e.AdmissionQueue().Stats(); s.Submitted != 0 {
		t.Fatalf("simulator path touched the queue: %+v", s)
	}
}

// TestAdmissionEnabledNoPolicyZeroAlloc: compiling the admission
// subsystem into the dispatcher must cost the synchronous fast path
// nothing when no policy applies to an event — the no-policy raise pays
// one nil check, never an allocation. This is the third standing 0-alloc
// invariant (alongside tracing-off and fault-policy-on) gated by
// `make alloccheck`.
func TestAdmissionEnabledNoPolicyZeroAlloc(t *testing.T) {
	d := New(WithAdmission(AdmissionConfig{Workers: 1}))
	ev, err := d.DefineEvent("Load.NoPolicy", fastSig(1), WithIntrinsic(fastHandler(1)))
	if err != nil {
		t.Fatal(err)
	}
	if ev.AdmissionQueue() != nil {
		t.Fatal("no-policy event compiled an admission queue in")
	}
	if n := testing.AllocsPerRun(1000, func() { _, _ = ev.Raise1(uint64(7)) }); n != 0 {
		t.Errorf("admission enabled, no policy: %v allocs/raise, want 0", n)
	}
}
