package dispatch

import (
	"sync"
	"time"

	"spin/internal/fault"
	"spin/internal/journal"
	"spin/internal/rtti"
	"spin/internal/vtime"
)

// faultCtl is the dispatcher's fault controller: the bridge between the
// mechanism-free fault ledger (internal/fault) and the dispatch machinery
// that carries its decisions out. It implements codegen.FaultHook, so a
// plan compiled with protection delivers recovered panics and metered
// handler costs here; the controller turns the ledger's verdicts into plan
// recompilations (quarantine, readmission) published through the same
// atomic swap installs use.
//
// Lock order: the ledger's mutex is never held while an event's mutex is
// taken — Observe returns an Action and the controller acts on it
// afterwards. Readmission and probation timers run through
// Dispatcher.afterFunc, so the whole lifecycle is deterministic under the
// simulator.
type faultCtl struct {
	d       *Dispatcher
	ledger  *fault.Ledger
	policy  fault.Policy // normalized copy, read-only after construction
	enforce bool

	mu       sync.Mutex
	qModules map[*rtti.Module]bool // modules denied new installations
}

func newFaultCtl(d *Dispatcher, pol fault.Policy) *faultCtl {
	ledger := fault.NewLedger(pol)
	return &faultCtl{
		d:        d,
		ledger:   ledger,
		policy:   ledger.Policy(),
		enforce:  pol.Enforcing(),
		qModules: make(map[*rtti.Module]bool),
	}
}

// HandlerPanic implements codegen.FaultHook for synchronous handler,
// filter, and default-handler panics recovered inside a protected plan.
func (f *faultCtl) HandlerPanic(tag, val any, stack []byte) {
	b, _ := tag.(*Binding)
	f.observe(b, fault.Record{
		Kind:   fault.KindPanic,
		Origin: fault.OriginHandler,
		Value:  val,
		Stack:  stack,
	})
}

// GuardPanic implements codegen.FaultHook for out-of-line guard panics.
// The purity monitor reports a mutating FUNCTIONAL guard by panicking
// ErrGuardMutatedArgs; that is a raiser-visible contract violation, not an
// extension fault, so it is re-panicked to surface at the raise point.
func (f *faultCtl) GuardPanic(tag, val any, stack []byte) {
	if val == ErrGuardMutatedArgs {
		panic(val)
	}
	b, _ := tag.(*Binding)
	f.observe(b, fault.Record{
		Kind:   fault.KindPanic,
		Origin: fault.OriginGuard,
		Value:  val,
		Stack:  stack,
	})
}

// SyncCost implements codegen.FaultHook: the metered virtual-time cost of
// one synchronous handler invocation. Costs above the policy's SyncBudget
// are budgeted overrun faults.
func (f *faultCtl) SyncCost(tag any, cost vtime.Duration) {
	if f.policy.SyncBudget <= 0 || cost <= f.policy.SyncBudget {
		return
	}
	b, _ := tag.(*Binding)
	f.observe(b, fault.Record{
		Kind:   fault.KindOverrun,
		Origin: fault.OriginHandler,
		Cost:   cost,
	})
}

// handlerPanic records a panic recovered by a supervisor (EPHEMERAL or
// asynchronous invocation) rather than by a protected plan.
func (f *faultCtl) handlerPanic(b *Binding, val any, stack []byte) {
	f.observe(b, fault.Record{
		Kind:   fault.KindPanic,
		Origin: fault.OriginHandler,
		Value:  val,
		Stack:  stack,
	})
}

// deadline records a watchdog termination.
func (f *faultCtl) deadline(b *Binding, d time.Duration) {
	f.observe(b, fault.Record{
		Kind:   fault.KindDeadline,
		Origin: fault.OriginHandler,
		Cost:   vtime.Duration(d),
	})
}

// asyncDeadline resolves the watchdog deadline for an asynchronous
// invocation of b: the binding's own (WithDeadline), else the policy-wide
// AsyncDeadline, else none.
func (f *faultCtl) asyncDeadline(b *Binding) time.Duration {
	if b != nil && b.deadline > 0 {
		return b.deadline
	}
	return f.policy.AsyncDeadline
}

// observe stamps the record with the binding's identity, charges it
// against the ledger, and carries out whatever action the ledger returns.
func (f *faultCtl) observe(b *Binding, r fault.Record) {
	var key, modKey any
	var mod *rtti.Module
	if b != nil {
		key = b
		r.Event = b.event.name
		r.Handler = b.HandlerName()
		if mod = b.Installer(); mod != nil {
			r.Module = mod.Name()
			modKey = mod
		}
	}
	if t := f.d.tracer; t != nil {
		t.Fault(r.Event, r.Handler, uint64(r.Kind))
	}
	act := f.ledger.Observe(key, modKey, r)
	if b == nil {
		return
	}
	if act.Module && mod != nil {
		f.quarantineModule(mod, act)
		return
	}
	if act.Quarantine {
		f.quarantine(b, act)
	}
}

// quarantine compiles b out of its event's plan and schedules probation
// after the action's backoff.
func (f *faultCtl) quarantine(b *Binding, act fault.Action) {
	e := b.event
	e.mu.Lock()
	already := b.quarantined.Swap(true)
	if !already {
		e.recompile(false)
	}
	e.mu.Unlock()
	if already {
		return
	}
	if t := f.d.tracer; t != nil {
		t.Quarantine(e.name, b.HandlerName(), act.Level)
	}
	f.d.journalBinding(journal.KindQuarantine, b, int64(act.Level))
	f.d.afterFunc(act.Backoff, func() { f.readmit(b) })
}

// readmit moves a quarantined binding to probation: its entry is compiled
// back into the plan with a tightened budget, and a clean probation period
// restores it to full health. A binding uninstalled while quarantined has
// been forgotten by the ledger, so the timer finds nothing to do.
func (f *faultCtl) readmit(b *Binding) {
	if !f.ledger.Readmit(b) {
		return
	}
	e := b.event
	e.mu.Lock()
	if b.quarantined.Swap(false) {
		e.recompile(false)
	}
	e.mu.Unlock()
	if t := f.d.tracer; t != nil {
		t.Probation(e.name, b.HandlerName(), false)
	}
	f.d.journalBinding(journal.KindProbation, b, 0)
	f.d.afterFunc(f.policy.Probation, func() { f.restore(b) })
}

// restore ends a clean probation period.
func (f *faultCtl) restore(b *Binding) {
	if f.ledger.Restore(b) {
		if t := f.d.tracer; t != nil {
			t.Probation(b.event.name, b.HandlerName(), true)
		}
		f.d.journalBinding(journal.KindRestore, b, 0)
	}
}

// moduleQuarantined reports whether m is currently denied installations.
func (f *faultCtl) moduleQuarantined(m *rtti.Module) bool {
	if m == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.qModules[m]
}

// quarantineModule is the ledger-triggered module quarantine: the module's
// fault budget ran out, so every binding it installed is compiled out and
// readmission is scheduled after the action's backoff.
func (f *faultCtl) quarantineModule(m *rtti.Module, act fault.Action) {
	f.d.QuarantineModule(m)
	if t := f.d.tracer; t != nil {
		t.Quarantine("*", m.Name(), act.Level)
	}
	f.d.afterFunc(act.Backoff, func() {
		f.d.ReadmitModule(m)
		f.d.afterFunc(f.policy.Probation, func() { f.ledger.Restore(m) })
	})
}

// QuarantineModule compiles every binding installed by m out of its
// event's plan and denies the module new installations until
// ReadmitModule. It returns the number of bindings quarantined. Kernels
// call this when a linker domain is quarantined; the fault controller
// calls it when a module exhausts its module-level fault budget.
func (d *Dispatcher) QuarantineModule(m *rtti.Module) int {
	if m == nil {
		return 0
	}
	d.faults.mu.Lock()
	d.faults.qModules[m] = true
	d.faults.mu.Unlock()
	// Journaled as effects, not intents: one module marker (the
	// install-denial set) plus a per-binding record for every binding the
	// operation actually flips, so replay never re-derives the walk.
	d.journalModule(journal.KindModuleQuarantine, m, 0)
	n := 0
	for _, e := range d.Events() {
		e.mu.Lock()
		changed := false
		for _, b := range e.bindings {
			if b.Installer() == m && !b.quarantined.Swap(true) {
				n++
				changed = true
				d.journalBinding(journal.KindQuarantine, b, 0)
			}
		}
		if changed {
			e.recompile(false)
		}
		e.mu.Unlock()
	}
	return n
}

// ReadmitModule lifts a module quarantine: the module may install handlers
// again and its quarantined bindings are compiled back into their events'
// plans. Bindings individually quarantined by their own fault budget are
// governed by their own probation timers and stay out.
func (d *Dispatcher) ReadmitModule(m *rtti.Module) int {
	if m == nil {
		return 0
	}
	d.faults.mu.Lock()
	delete(d.faults.qModules, m)
	d.faults.mu.Unlock()
	// Move the module's ledger entry (if the module budget put it there)
	// to probation, so a relapse can re-quarantine at the next level.
	d.faults.ledger.Readmit(m)
	d.journalModule(journal.KindModuleReadmit, m, 0)
	n := 0
	for _, e := range d.Events() {
		e.mu.Lock()
		changed := false
		for _, b := range e.bindings {
			if b.Installer() != m || !b.quarantined.Load() {
				continue
			}
			if d.faults.ledger.State(b) == fault.Quarantined {
				continue // individual quarantine outlives the module's
			}
			b.quarantined.Store(false)
			n++
			changed = true
			d.journalBinding(journal.KindRestore, b, 0)
		}
		if changed {
			e.recompile(false)
		}
		e.mu.Unlock()
	}
	return n
}

// ModuleQuarantined reports whether m is currently under module-level
// quarantine.
func (d *Dispatcher) ModuleQuarantined(m *rtti.Module) bool {
	return d.faults.moduleQuarantined(m)
}
