package dispatch

import (
	"errors"
	"math/rand"
	"testing"

	"spin/internal/rtti"
)

// orderRig builds an event whose handlers append their label to a trace,
// so dispatch order is observable.
type orderRig struct {
	e     *Event
	trace []string
}

func newOrderRig(t *testing.T) *orderRig {
	t.Helper()
	d := New()
	r := &orderRig{}
	r.e = mustDefine(t, d, "M.P", rtti.Sig(nil))
	return r
}

func (r *orderRig) install(t *testing.T, label string, opts ...InstallOption) *Binding {
	t.Helper()
	b, err := r.e.Install(handler(voidProc("H."+label), func(any, []any) any {
		r.trace = append(r.trace, label)
		return nil
	}), opts...)
	if err != nil {
		t.Fatalf("install %s: %v", label, err)
	}
	return b
}

func (r *orderRig) raise(t *testing.T) []string {
	t.Helper()
	r.trace = nil
	if _, err := r.e.Raise(); err != nil {
		t.Fatalf("raise: %v", err)
	}
	return r.trace
}

func sameOrder(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOrderDefaultAppend(t *testing.T) {
	r := newOrderRig(t)
	r.install(t, "a")
	r.install(t, "b")
	r.install(t, "c")
	if got := r.raise(t); !sameOrder(got, []string{"a", "b", "c"}) {
		t.Fatalf("order = %v", got)
	}
}

func TestOrderFirstLast(t *testing.T) {
	r := newOrderRig(t)
	r.install(t, "b")
	r.install(t, "a", First())
	r.install(t, "c", Last())
	r.install(t, "a0", First())
	if got := r.raise(t); !sameOrder(got, []string{"a0", "a", "b", "c"}) {
		t.Fatalf("order = %v", got)
	}
}

func TestOrderBeforeAfter(t *testing.T) {
	r := newOrderRig(t)
	a := r.install(t, "a")
	c := r.install(t, "c")
	r.install(t, "b", Before(c))
	r.install(t, "a2", After(a))
	if got := r.raise(t); !sameOrder(got, []string{"a", "a2", "b", "c"}) {
		t.Fatalf("order = %v", got)
	}
}

func TestOrderBeforeForeignBindingRejected(t *testing.T) {
	r := newOrderRig(t)
	other := newOrderRig(t)
	foreign := other.install(t, "x")
	_, err := r.e.Install(handler(voidProc("H"), func(any, []any) any { return nil }), Before(foreign))
	if !errors.Is(err, ErrOrderRef) {
		t.Fatalf("err = %v", err)
	}
	_, err = r.e.Install(handler(voidProc("H"), func(any, []any) any { return nil }), Before(nil))
	if !errors.Is(err, ErrOrderRef) {
		t.Fatalf("nil ref err = %v", err)
	}
}

func TestOrderAfterUninstalledRejected(t *testing.T) {
	r := newOrderRig(t)
	a := r.install(t, "a")
	if err := r.e.Uninstall(a); err != nil {
		t.Fatal(err)
	}
	_, err := r.e.Install(handler(voidProc("H"), func(any, []any) any { return nil }), After(a))
	if !errors.Is(err, ErrOrderRef) {
		t.Fatalf("err = %v", err)
	}
}

func TestSetOrderRepositions(t *testing.T) {
	// §2.3: ordering constraints can be queried and dynamically changed.
	r := newOrderRig(t)
	a := r.install(t, "a")
	r.install(t, "b")
	r.install(t, "c")
	if err := r.e.SetOrder(a, Order{Kind: OrderLast}); err != nil {
		t.Fatalf("SetOrder: %v", err)
	}
	if got := r.raise(t); !sameOrder(got, []string{"b", "c", "a"}) {
		t.Fatalf("order = %v", got)
	}
	if a.Order().Kind != OrderLast {
		t.Fatalf("queried order = %v", a.Order().Kind)
	}
	if err := r.e.SetOrder(a, Order{Kind: OrderFirst}); err != nil {
		t.Fatalf("SetOrder: %v", err)
	}
	if got := r.raise(t); !sameOrder(got, []string{"a", "b", "c"}) {
		t.Fatalf("order = %v", got)
	}
}

func TestSetOrderSelfReferenceRejected(t *testing.T) {
	r := newOrderRig(t)
	a := r.install(t, "a")
	if err := r.e.SetOrder(a, Order{Kind: OrderBefore, Ref: a}); !errors.Is(err, ErrOrderRef) {
		t.Fatalf("err = %v", err)
	}
}

func TestSetOrderErrors(t *testing.T) {
	r := newOrderRig(t)
	a := r.install(t, "a")
	_ = r.e.Uninstall(a)
	if err := r.e.SetOrder(a, Order{Kind: OrderFirst}); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("uninstalled SetOrder err = %v", err)
	}
	if err := r.e.SetOrder(nil, Order{Kind: OrderFirst}); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("nil SetOrder err = %v", err)
	}
}

func TestPositionTracksOrder(t *testing.T) {
	r := newOrderRig(t)
	a := r.install(t, "a")
	b := r.install(t, "b", First())
	if r.e.Position(b) != 0 || r.e.Position(a) != 1 {
		t.Fatalf("positions: b=%d a=%d", r.e.Position(b), r.e.Position(a))
	}
	if r.e.Position(&Binding{}) != -1 {
		t.Fatal("foreign binding position must be -1")
	}
}

// Property: for random sequences of install operations, First-installed
// handlers precede previously present ones, Last-installed follow them, and
// Before/After land adjacent to their reference at insertion time.
func TestOrderInsertionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		r := newOrderRig(t)
		var installed []*Binding
		labels := map[*Binding]string{}
		for i := 0; i < 12; i++ {
			label := string(rune('a' + i))
			var b *Binding
			switch choice := rng.Intn(4); {
			case choice == 0 || len(installed) == 0:
				b = r.install(t, label)
			case choice == 1:
				b = r.install(t, label, First())
				if r.e.Position(b) != 0 {
					t.Fatalf("First landed at %d", r.e.Position(b))
				}
			case choice == 2:
				ref := installed[rng.Intn(len(installed))]
				b = r.install(t, label, Before(ref))
				if r.e.Position(b) != r.e.Position(ref)-1 {
					t.Fatalf("Before(%s) landed at %d, ref at %d",
						labels[ref], r.e.Position(b), r.e.Position(ref))
				}
			default:
				ref := installed[rng.Intn(len(installed))]
				b = r.install(t, label, After(ref))
				if r.e.Position(b) != r.e.Position(ref)+1 {
					t.Fatalf("After(%s) landed at %d, ref at %d",
						labels[ref], r.e.Position(b), r.e.Position(ref))
				}
			}
			installed = append(installed, b)
			labels[b] = label
		}
		// The trace must match the binding list exactly.
		got := r.raise(t)
		want := make([]string, 0, len(installed))
		for _, b := range r.e.Bindings() {
			want = append(want, labels[b])
		}
		if !sameOrder(got, want) {
			t.Fatalf("trace %v != binding order %v", got, want)
		}
	}
}
