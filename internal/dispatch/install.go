package dispatch

import (
	"fmt"
	"time"

	"spin/internal/journal"
	"spin/internal/rtti"
	"spin/internal/trace"
)

// DefaultEphemeralDeadline bounds EPHEMERAL handler execution when the
// installer does not specify a deadline. The paper leaves the period to the
// event's authority; 10ms of real time is generous for handlers that are
// expected to "return quickly".
const DefaultEphemeralDeadline = 10 * time.Millisecond

// InstallOption configures a handler installation.
type InstallOption func(*installCfg) error

type installCfg struct {
	guards     []Guard
	closure    any
	hasClosure bool
	order      Order
	async      bool
	ephemeral  bool
	deadline   time.Duration
	filter     bool
	credential any
	priority   int
}

// WithGuard attaches a guard predicate to the installation; the handler
// fires only if every attached guard evaluates true. May be repeated.
func WithGuard(g Guard) InstallOption {
	return func(c *installCfg) error {
		c.guards = append(c.guards, g)
		return nil
	}
}

// WithClosure attaches an opaque closure, passed as the handler's leading
// argument at each invocation (§2.1).
func WithClosure(closure any) InstallOption {
	return func(c *installCfg) error {
		c.closure = closure
		c.hasClosure = true
		return nil
	}
}

// First places the handler at the beginning of the handler list at
// installation time.
func First() InstallOption {
	return func(c *installCfg) error { c.order = Order{Kind: OrderFirst}; return nil }
}

// Last places the handler at the end of the handler list at installation
// time.
func Last() InstallOption {
	return func(c *installCfg) error { c.order = Order{Kind: OrderLast}; return nil }
}

// Before places the handler immediately before ref.
func Before(ref *Binding) InstallOption {
	return func(c *installCfg) error { c.order = Order{Kind: OrderBefore, Ref: ref}; return nil }
}

// After places the handler immediately after ref.
func After(ref *Binding) InstallOption {
	return func(c *installCfg) error { c.order = Order{Kind: OrderAfter, Ref: ref}; return nil }
}

// Async makes this handler execute asynchronously on each firing; the
// raiser does not wait for it and its result is not returned (§2.6).
func Async() InstallOption {
	return func(c *installCfg) error { c.async = true; return nil }
}

// Ephemeral installs the handler as terminable with the given real-time
// deadline (zero selects DefaultEphemeralDeadline). The handler's
// procedure must be declared EPHEMERAL (§2.6).
func Ephemeral(deadline time.Duration) InstallOption {
	return func(c *installCfg) error {
		c.ephemeral = true
		c.deadline = deadline
		return nil
	}
}

// AsFilter installs the handler as a filter: it may take parameters by
// reference and rewrite the argument values seen by handlers and guards
// ordered after it (§2.3 "Passing arguments").
func AsFilter() InstallOption {
	return func(c *installCfg) error { c.filter = true; return nil }
}

// WithCredential attaches an opaque reference that is passed to the
// event's authorizer, bootstrapping richer authorization protocols such as
// password-based ones (§2.5).
func WithCredential(cred any) InstallOption {
	return func(c *installCfg) error { c.credential = cred; return nil }
}

// WithDeadline attaches a wall-clock watchdog deadline to an asynchronous
// handler: an invocation still running when the deadline passes has its
// context cancelled and is recorded as a deadline fault. For EPHEMERAL
// handlers the deadline passed to Ephemeral governs; this option is for
// Async handlers, which the paper otherwise leaves unbounded.
func WithDeadline(deadline time.Duration) InstallOption {
	return func(c *installCfg) error { c.deadline = deadline; return nil }
}

// WithPriority assigns the handler a degradation priority class: 0 (the
// default) is essential and never disabled; higher classes are more
// optional and are compiled out of the dispatch plan first when the
// overload controller steps through its degradation levels (see
// WithAdmission). Negative classes are treated as 0.
func WithPriority(class int) InstallOption {
	return func(c *installCfg) error {
		if class < 0 {
			class = 0
		}
		c.priority = class
		return nil
	}
}

// checkHandlerImpl validates that a handler has an implementation and a
// descriptor.
func checkHandlerImpl(h Handler) error {
	if h.Fn == nil && h.CtxFn == nil && h.Inline == nil {
		return ErrNilHandler
	}
	if h.Proc == nil {
		return rtti.ErrNilProc
	}
	return nil
}

// checkGuard validates one guard against the event signature.
func (e *Event) checkGuard(g Guard) error {
	if g.Pred != nil {
		return nil // predicates are FUNCTIONAL by construction
	}
	if g.Fn == nil {
		return fmt.Errorf("dispatch: guard on %s has no implementation", e.name)
	}
	if g.Proc == nil {
		return fmt.Errorf("%w: out-of-line guard on %s requires a descriptor", rtti.ErrNilProc, e.name)
	}
	var cloType rtti.Type
	if g.Closure != nil {
		cloType = rtti.TypeOf(g.Closure)
	}
	return g.Proc.CheckGuard(e.sig, cloType)
}

// Install registers h as a handler on the event (§2.2's
// Dispatcher.InstallHandler). The installation is typechecked, submitted
// to the event's authorizer, inserted according to its ordering
// constraint, and the event's dispatch code is regenerated.
func (e *Event) Install(h Handler, opts ...InstallOption) (*Binding, error) {
	var cfg installCfg
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if err := checkHandlerImpl(h); err != nil {
		return nil, err
	}

	// Typechecking (§2.4): handler signature must match the event's,
	// with an optional leading closure parameter accepting the closure's
	// type.
	var cloType rtti.Type
	if cfg.hasClosure {
		cloType = rtti.TypeOf(cfg.closure)
	}
	if err := h.Proc.CheckHandler(e.sig, cloType); err != nil {
		return nil, err
	}
	for _, g := range cfg.guards {
		if err := e.checkGuard(g); err != nil {
			return nil, err
		}
	}
	if cfg.ephemeral && !h.Proc.Ephemeral {
		return nil, fmt.Errorf("%w: %s", ErrNotEphemeralProc, h.Proc.Name)
	}
	if cfg.async && e.sig.HasByRef() {
		return nil, fmt.Errorf("%w: handler %s", ErrAsyncByRef, h.Proc.Name)
	}
	if cfg.filter && cfg.async {
		return nil, fmt.Errorf("%w: filter %s cannot be asynchronous", ErrAsyncByRef, h.Proc.Name)
	}

	b := &Binding{
		event:      e,
		handler:    h,
		closure:    cfg.closure,
		guards:     cfg.guards,
		order:      cfg.order,
		async:      cfg.async,
		ephemeral:  cfg.ephemeral,
		deadline:   cfg.deadline,
		filter:     cfg.filter,
		credential: cfg.credential,
		priority:   cfg.priority,
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	// A module under fault quarantine may not install new handlers until
	// it is re-admitted (see faultctl.go).
	if e.d.faults.moduleQuarantined(b.Installer()) {
		e.traceRejectLocked(trace.RejectFault, b)
		return nil, fmt.Errorf("%w: %s", ErrModuleQuarantined, b.Installer().Name())
	}
	// Resource accounting (§2.6 "Too many handlers"): the installation
	// is charged to the installing module before the authorizer sees it.
	if err := e.d.quota.charge(b.Installer()); err != nil {
		e.traceRejectLocked(trace.RejectQuota, b)
		return nil, err
	}
	// Admission accounting: a module that declared an async quota on its
	// rtti descriptor may not hold more asynchronous bindings than it
	// promised (§2.6's resource accounting extended to threads of control).
	if b.async {
		if err := e.d.quota.chargeAsync(b.Installer()); err != nil {
			e.d.quota.release(b.Installer())
			e.traceRejectLocked(trace.RejectQuota, b)
			return nil, err
		}
	}
	if err := e.authorizeLocked(OpInstall, b); err != nil {
		e.releaseQuotasLocked(b)
		e.traceRejectLocked(trace.RejectAuth, b)
		return nil, err
	}
	if err := e.insertLocked(b); err != nil {
		e.releaseQuotasLocked(b)
		return nil, err
	}
	b.installed = true
	e.recompile(true)
	e.d.journalInstall(e, b)
	return b, nil
}

// releaseQuotasLocked returns b's installation and admission accounting.
func (e *Event) releaseQuotasLocked(b *Binding) {
	e.d.quota.release(b.Installer())
	if b.async {
		e.d.quota.releaseAsync(b.Installer())
	}
}

// traceRejectLocked records a control-plane rejection span for a denied
// installation, labelled with the rejected handler's installing module.
// Caller holds e.mu.
func (e *Event) traceRejectLocked(reason trace.RejectReason, b *Binding) {
	if e.tracer == nil {
		return
	}
	module := b.HandlerName()
	if m := b.Installer(); m != nil {
		module = m.Name()
	}
	e.tracer.Reject(e.name, reason, module)
}

// insertLocked places b into the handler list per its ordering constraint.
func (e *Event) insertLocked(b *Binding) error {
	switch b.order.Kind {
	case OrderFirst:
		e.bindings = append([]*Binding{b}, e.bindings...)
	case Unordered, OrderLast:
		e.bindings = append(e.bindings, b)
	case OrderBefore, OrderAfter:
		ref := b.order.Ref
		if ref == nil || ref.event != e {
			return fmt.Errorf("%w: event %s", ErrOrderRef, e.name)
		}
		i := e.positionLocked(ref)
		if i < 0 {
			return fmt.Errorf("%w: reference binding removed from %s", ErrOrderRef, e.name)
		}
		if b.order.Kind == OrderAfter {
			i++
		}
		e.bindings = append(e.bindings, nil)
		copy(e.bindings[i+1:], e.bindings[i:])
		e.bindings[i] = b
	default:
		return fmt.Errorf("dispatch: unknown ordering constraint %v", b.order.Kind)
	}
	return nil
}

// Uninstall removes a binding from its event. Removing the intrinsic
// binding is the paper's idiom for replacing a procedure's implementation:
// deregister the intrinsic handler, then register an alternate one (§2.1).
func (e *Event) Uninstall(b *Binding) error {
	if b == nil || b.event != e {
		return ErrNotInstalled
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !b.installed {
		return ErrNotInstalled
	}
	if err := e.authorizeLocked(OpUninstall, b); err != nil {
		return err
	}
	i := e.positionLocked(b)
	if i < 0 {
		return ErrNotInstalled
	}
	e.bindings = append(e.bindings[:i], e.bindings[i+1:]...)
	b.installed = false
	if !b.intrinsic {
		e.releaseQuotasLocked(b)
	}
	// Drop the binding's fault-ledger entry: a pending readmission timer
	// finds the entry gone and does nothing.
	e.d.faults.ledger.Forget(b)
	e.recompile(true)
	e.d.journalBinding(journal.KindUninstall, b, 0)
	return nil
}

// SetOrder dynamically changes a binding's ordering constraint and
// repositions it (§2.3: "the dispatcher allows the ordering constraints
// associated with a given handler to be queried and dynamically changed").
func (e *Event) SetOrder(b *Binding, o Order) error {
	if b == nil || b.event != e {
		return ErrNotInstalled
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !b.installed {
		return ErrNotInstalled
	}
	if (o.Kind == OrderBefore || o.Kind == OrderAfter) && o.Ref == b {
		return fmt.Errorf("%w: binding ordered against itself", ErrOrderRef)
	}
	i := e.positionLocked(b)
	if i < 0 {
		return ErrNotInstalled
	}
	e.bindings = append(e.bindings[:i], e.bindings[i+1:]...)
	b.order = o
	if err := e.insertLocked(b); err != nil {
		// Restore the previous position on failure.
		e.bindings = append(e.bindings, nil)
		copy(e.bindings[i+1:], e.bindings[i:])
		e.bindings[i] = b
		return err
	}
	e.recompile(true)
	e.d.journalSetOrder(e, b)
	return nil
}

// SetDefaultHandler installs the handler that executes only when no other
// handler fires (§2.3). Passing a Handler with a nil Fn and nil Inline
// clears the default handler. The operation is submitted to the event's
// authorizer.
func (e *Event) SetDefaultHandler(h Handler) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if h.Fn == nil && h.CtxFn == nil && h.Inline == nil {
		if err := e.authorizeLocked(OpSetDefault, nil); err != nil {
			return err
		}
		old := e.defaultB
		e.defaultB = nil
		e.recompile(true)
		if old != nil {
			e.d.journalBinding(journal.KindUninstall, old, 0)
		}
		return nil
	}
	if err := checkHandlerImpl(h); err != nil {
		return err
	}
	if err := h.Proc.CheckHandler(e.sig, nil); err != nil {
		return err
	}
	b := &Binding{event: e, handler: h, isDefault: true, installed: true}
	if err := e.authorizeLocked(OpSetDefault, b); err != nil {
		return err
	}
	old := e.defaultB
	e.defaultB = b
	e.recompile(true)
	if old != nil {
		e.d.journalBinding(journal.KindUninstall, old, 0)
	}
	e.d.journalInstall(e, b)
	return nil
}

// SetResultHandler installs the function that merges multiple handler
// results; it is called separately for each result (§2.3 "Handling
// results"). A nil fn clears it.
func (e *Event) SetResultHandler(fn ResultFn) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.authorizeLocked(OpSetResult, nil); err != nil {
		return err
	}
	e.resultFn = fn
	e.recompile(true)
	return nil
}
