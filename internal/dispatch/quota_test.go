package dispatch

import (
	"errors"
	"testing"

	"spin/internal/codegen"
	"spin/internal/rtti"
)

func TestPerModuleQuota(t *testing.T) {
	d := New(WithHandlerQuota(2))
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	h := handler(voidProc("H"), func(any, []any) any { return nil })

	b1, err := e.Install(h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Install(h); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Install(h); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third install: %v", err)
	}
	// Accounting is per module: another module still has headroom.
	other := rtti.NewModule("Other")
	oh := Handler{Proc: &rtti.Proc{Name: "O.H", Module: other, Sig: rtti.Sig(nil)},
		Fn: func(any, []any) any { return nil }}
	if _, err := e.Install(oh); err != nil {
		t.Fatalf("other module denied: %v", err)
	}
	// Uninstalling releases the quota.
	if err := e.Uninstall(b1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Install(h); err != nil {
		t.Fatalf("install after release: %v", err)
	}
	total, mine := d.Installed(testModule)
	if total != 3 || mine != 2 {
		t.Fatalf("accounting: total=%d mine=%d", total, mine)
	}
}

func TestQuotaSpansEvents(t *testing.T) {
	// The quota bounds a module's installations across ALL events — the
	// §2.6 concern is total kernel memory, not per-event counts.
	d := New(WithHandlerQuota(2))
	e1 := mustDefine(t, d, "M.P1", rtti.Sig(nil))
	e2 := mustDefine(t, d, "M.P2", rtti.Sig(nil))
	h := handler(voidProc("H"), func(any, []any) any { return nil })
	if _, err := e1.Install(h); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Install(h); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Install(h); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestGlobalHandlerLimit(t *testing.T) {
	d := New(WithHandlerLimit(3))
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	mods := []*rtti.Module{rtti.NewModule("A"), rtti.NewModule("B"),
		rtti.NewModule("C"), rtti.NewModule("D")}
	installed := 0
	var lastErr error
	for _, m := range mods {
		h := Handler{Proc: &rtti.Proc{Name: "H", Module: m, Sig: rtti.Sig(nil)},
			Fn: func(any, []any) any { return nil }}
		if _, err := e.Install(h); err != nil {
			lastErr = err
		} else {
			installed++
		}
	}
	if installed != 3 || !errors.Is(lastErr, ErrQuotaExceeded) {
		t.Fatalf("installed=%d err=%v", installed, lastErr)
	}
}

func TestIntrinsicExemptFromQuota(t *testing.T) {
	d := New(WithHandlerQuota(1), WithHandlerLimit(1))
	// Defining events with intrinsic handlers never hits the quota.
	for _, name := range []string{"M.P1", "M.P2", "M.P3"} {
		_, err := d.DefineEvent(name, rtti.Sig(nil), WithIntrinsic(handler(
			voidProc(name), func(any, []any) any { return nil })))
		if err != nil {
			t.Fatalf("intrinsic define hit quota: %v", err)
		}
	}
	total, _ := d.Installed(testModule)
	if total != 0 {
		t.Fatalf("intrinsics were accounted: total=%d", total)
	}
}

func TestDeniedInstallDoesNotLeakQuota(t *testing.T) {
	d := New(WithHandlerQuota(1))
	e := mustDefine(t, d, "M.P", rtti.Sig(nil), WithOwner(testModule))
	_ = e.InstallAuthorizer(func(req *AuthRequest) bool { return false }, testModule)
	h := handler(voidProc("H"), func(any, []any) any { return nil })
	if _, err := e.Install(h); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
	// The denied installation must not consume the quota.
	_ = e.InstallAuthorizer(func(req *AuthRequest) bool { return true }, testModule)
	if _, err := e.Install(h); err != nil {
		t.Fatalf("quota leaked by denied install: %v", err)
	}
}

func TestUnlimitedByDefault(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	h := handler(voidProc("H"), func(any, []any) any { return nil })
	for i := 0; i < 200; i++ {
		if _, err := e.Install(h); err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
	}
}

func TestGuardReorderingShortCircuits(t *testing.T) {
	// §2.3: guard purity lets the dispatcher reorder evaluation. A cheap
	// inline predicate installed AFTER an expensive out-of-line guard
	// still evaluates first; when it fails, the expensive guard is never
	// called.
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil, rtti.Word))
	expensiveCalls := 0
	expensive := Guard{
		Proc: &rtti.Proc{Name: "Slow", Module: testModule, Functional: true,
			Sig: rtti.Sig(rtti.Bool, rtti.Word)},
		Fn: func(any, []any) bool { expensiveCalls++; return true },
	}
	cheap := Guard{Pred: codegen.ArgEq(0, 80)}
	_, err := e.Install(handler(voidProc("H", rtti.Word), func(any, []any) any { return nil }),
		WithGuard(expensive), WithGuard(cheap))
	if err != nil {
		t.Fatal(err)
	}
	// Non-matching raise: the predicate fails first, sparing the call.
	_, _ = e.Raise(uint64(443))
	if expensiveCalls != 0 {
		t.Fatalf("expensive guard called %d times despite failing predicate", expensiveCalls)
	}
	// Matching raise: both evaluate, handler fires.
	if _, err := e.Raise(uint64(80)); err != nil {
		t.Fatal(err)
	}
	if expensiveCalls != 1 {
		t.Fatalf("expensive guard calls = %d", expensiveCalls)
	}
}
