package dispatch

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"spin/internal/admit"
	"spin/internal/codegen"
	"spin/internal/fault"
	"spin/internal/rtti"
	"spin/internal/trace"
)

// Differential harness for the batched raise ingress: under every
// optimizer configuration and across batch sizes, RaiseBatch must be
// observably identical to a loop of single Raise calls — same handlers
// fired in the same order, same statistics, same results fold, same trace
// spans, same fault and admission ledgers — including plan churn in the
// middle of a batch.

// batchConfigs sweeps the code generator's optimization space: every
// configuration selects a different executor tier (flat shape-specialized
// batch executor, generic-shape executor, per-step interpreter, decision
// tree, out-of-line everything).
var batchConfigs = []struct {
	name string
	opts codegen.Options
}{
	{"default", codegen.Options{}},
	{"tree", codegen.Options{EnableDecisionTree: true}},
	{"outofline", codegen.Options{DisableInline: true, DisableBypass: true, DisablePeephole: true}},
	{"interp", codegen.Options{DisableSpecialize: true}},
	{"genshape", codegen.Options{DisableShapeSpecialize: true}},
	{"incremental", codegen.Options{IncrementalInstall: true}},
}

// batchSizes are the batch lengths the differential tests sweep; 1 and 2
// cover the degenerate ends, 8 and 64 the chunked fast path (64 is one
// full pooled chunk), 1000 crosses many chunk boundaries.
var batchSizes = []int{1, 2, 8, 64, 1000}

// installBatchPopulation installs a deterministic mixed handler
// population: unguarded handlers, an inline ArgEq predicate guard, an
// out-of-line functional guard, and a second predicate guard (so the
// decision-tree config has a hashable run). Each firing appends the
// handler's id to *log.
func installBatchPopulation(t *testing.T, e *Event, log *[]int) {
	t.Helper()
	add := func(id int, opts ...InstallOption) {
		_, err := e.Install(handler(voidProc(fmt.Sprintf("H%d", id), rtti.Word),
			func(clo any, args []any) any {
				*log = append(*log, id)
				return nil
			}), opts...)
		if err != nil {
			t.Fatalf("install %d: %v", id, err)
		}
	}
	add(0)
	add(1, WithGuard(Guard{Pred: codegen.ArgEq(0, 1)}))
	add(2, WithGuard(Guard{
		Proc: guardProc("G.Lt3", rtti.Word),
		Fn:   func(clo any, args []any) bool { return args[0].(uint64) < 3 },
	}))
	add(3, WithGuard(Guard{Pred: codegen.ArgEq(0, 2)}))
	add(4)
}

// batchTestFrames builds n one-word frames cycling the argument through
// 0..4, so every guard in the population passes on some frames and fails
// on others.
func batchTestFrames(n int) []ArgFrame {
	frames := make([]ArgFrame, n)
	for i := range frames {
		frames[i] = ArgFrame{uint64(i % 5)}
	}
	return frames
}

// normalizeSpans prepares a tracer snapshot for differential comparison:
// spans sort by publication sequence, then the fields that legitimately
// differ between the batch and loop runs — sequence numbers, raise ids,
// and time stamps — are cleared. Everything else (kind, event, step,
// guard index, handler name, pass/inline flags, detail words, outcome
// flags) must match exactly.
func normalizeSpans(spans []trace.Span) []trace.Span {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Seq < spans[j].Seq })
	for i := range spans {
		spans[i].Seq = 0
		spans[i].Raise = 0
		spans[i].Start = 0
		spans[i].Cost = 0
	}
	return spans
}

// TestRaiseBatchMatchesLoop is the core differential test: for every
// optimizer configuration, traced and untraced, at every batch size, a
// RaiseBatch and a loop of Raise calls over identical twin dispatchers
// must fire the same handlers in the same order, report the same event
// statistics, produce an equivalent BatchOutcome, and (traced, at
// sample=1) record identical span streams.
func TestRaiseBatchMatchesLoop(t *testing.T) {
	for _, cfg := range batchConfigs {
		for _, traced := range []bool{false, true} {
			for _, n := range batchSizes {
				name := fmt.Sprintf("%s/n=%d", cfg.name, n)
				if traced {
					name += "/traced"
				}
				t.Run(name, func(t *testing.T) {
					db := New(WithCodegenOptions(cfg.opts))
					dl := New(WithCodegenOptions(cfg.opts))
					eb := mustDefine(t, db, "Batch.E", rtti.Sig(nil, rtti.Word))
					el := mustDefine(t, dl, "Batch.E", rtti.Sig(nil, rtti.Word))
					var logB, logL []int
					installBatchPopulation(t, eb, &logB)
					installBatchPopulation(t, el, &logL)
					var trB, trL *trace.Tracer
					if traced {
						trB = trace.New(trace.Config{Capacity: 32768, Sample: 1})
						trL = trace.New(trace.Config{Capacity: 32768, Sample: 1})
						eb.Trace(trB)
						el.Trace(trL)
					}
					frames := batchTestFrames(n)

					out := eb.RaiseBatch(frames)
					for i := range frames {
						if _, err := el.Raise(frames[i]...); err != nil {
							t.Fatalf("loop raise %d: %v", i, err)
						}
					}

					if !reflect.DeepEqual(logB, logL) {
						t.Fatalf("fired sequences diverge:\nbatch %v\nloop  %v", logB, logL)
					}
					if out.Raised != n || out.Fired != int64(len(logL)) {
						t.Fatalf("outcome = %+v, want Raised=%d Fired=%d", out, n, len(logL))
					}
					if out.Rejected+out.Shed+out.Coalesced+out.NoHandler+out.Defaulted+out.Ambiguous != 0 {
						t.Fatalf("spurious dispositions in %+v", out)
					}
					if err := out.Err(); err != nil {
						t.Fatalf("batch err = %v", err)
					}
					sb, sl := eb.Stats(), el.Stats()
					if sb.Raised != sl.Raised || sb.Fired != sl.Fired {
						t.Fatalf("stats diverge: batch %+v loop %+v", sb, sl)
					}
					if traced {
						spansB := normalizeSpans(trB.Snapshot())
						spansL := normalizeSpans(trL.Snapshot())
						if !reflect.DeepEqual(spansB, spansL) {
							t.Fatalf("span streams diverge: batch %d spans, loop %d spans",
								len(spansB), len(spansL))
						}
					}

					// Second pass through the arity-specialized flat entry
					// point: identical again, on top of the first pass's
					// totals.
					flat := make([]any, n)
					for i := range flat {
						flat[i] = uint64(i % 5)
					}
					logB, logL = nil, nil
					out = eb.RaiseBatch1(flat)
					for i := range flat {
						if _, err := el.Raise1(flat[i]); err != nil {
							t.Fatalf("loop Raise1 %d: %v", i, err)
						}
					}
					if !reflect.DeepEqual(logB, logL) {
						t.Fatalf("RaiseBatch1 fired sequences diverge:\nbatch %v\nloop  %v", logB, logL)
					}
					if out.Raised != n || out.Fired != int64(len(logL)) {
						t.Fatalf("RaiseBatch1 outcome = %+v, want Raised=%d Fired=%d", out, n, len(logL))
					}
					sb, sl = eb.Stats(), el.Stats()
					if sb.Raised != sl.Raised || sb.Fired != sl.Fired {
						t.Fatalf("stats diverge after Raise1 pass: batch %+v loop %+v", sb, sl)
					}
				})
			}
		}
	}
}

// TestRaiseBatchResultFoldDefaultAndErrors covers the outcome-folding
// surfaces the main differential's void event cannot reach: result
// merging, the default handler, no-handler frames, ambiguous results, and
// mixed-arity rejection.
func TestRaiseBatchResultFoldDefaultAndErrors(t *testing.T) {
	for _, n := range batchSizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			frames := batchTestFrames(n)

			// Result fold: two result handlers, results summed by the fold.
			mkFold := func(t *testing.T) *Event {
				d := New()
				e := mustDefine(t, d, "Batch.R", rtti.Sig(rtti.Word, rtti.Word))
				for id := 1; id <= 2; id++ {
					k := uint64(id)
					_, err := e.Install(Handler{
						Proc: resultProc(fmt.Sprintf("R%d", id), rtti.Word, rtti.Word),
						Fn:   func(clo any, args []any) any { return args[0].(uint64)*10 + k },
					})
					if err != nil {
						t.Fatal(err)
					}
				}
				if err := e.SetResultHandler(func(acc, res any, idx int) any {
					if acc == nil {
						return res
					}
					return acc.(uint64) + res.(uint64)
				}); err != nil {
					t.Fatal(err)
				}
				return e
			}
			eb, el := mkFold(t), mkFold(t)
			out := eb.RaiseBatch(frames)
			var last any
			for i := range frames {
				res, err := el.Raise(frames[i]...)
				if err != nil {
					t.Fatalf("loop raise: %v", err)
				}
				last = res
			}
			if out.Raised != n || out.Result != last {
				t.Fatalf("fold outcome %+v, want Raised=%d Result=%v", out, n, last)
			}
			if sb, sl := eb.Stats(), el.Stats(); sb.Raised != sl.Raised || sb.Fired != sl.Fired {
				t.Fatalf("fold stats diverge: %+v vs %+v", sb, sl)
			}

			// Default handler: the only handler is guarded on arg==1, so
			// every other frame falls to the default.
			mkDef := func(t *testing.T) (*Event, *int) {
				d := New()
				e := mustDefine(t, d, "Batch.D", rtti.Sig(nil, rtti.Word))
				defaulted := new(int)
				if _, err := e.Install(handler(voidProc("H", rtti.Word),
					func(any, []any) any { return nil }),
					WithGuard(Guard{Pred: codegen.ArgEq(0, 1)})); err != nil {
					t.Fatal(err)
				}
				if err := e.SetDefaultHandler(handler(voidProc("Def", rtti.Word),
					func(any, []any) any { *defaulted++; return nil })); err != nil {
					t.Fatal(err)
				}
				return e, defaulted
			}
			eb2, defB := mkDef(t)
			el2, defL := mkDef(t)
			out = eb2.RaiseBatch(frames)
			for i := range frames {
				if _, err := el2.Raise(frames[i]...); err != nil {
					t.Fatalf("loop raise: %v", err)
				}
			}
			if *defB != *defL || out.Defaulted != *defL {
				t.Fatalf("defaulted: batch counter %d outcome %d, loop %d", *defB, out.Defaulted, *defL)
			}

			// No handler fires and no default exists: the loop form errors
			// per frame; the batch counts the frames and reports the same
			// sentinel once.
			mkBare := func(t *testing.T) *Event {
				d := New()
				e := mustDefine(t, d, "Batch.N", rtti.Sig(nil, rtti.Word))
				if _, err := e.Install(handler(voidProc("H", rtti.Word),
					func(any, []any) any { return nil }),
					WithGuard(Guard{Pred: codegen.ArgEq(0, 1)})); err != nil {
					t.Fatal(err)
				}
				return e
			}
			eb3, el3 := mkBare(t), mkBare(t)
			out = eb3.RaiseBatch(frames)
			misses := 0
			for i := range frames {
				if _, err := el3.Raise(frames[i]...); errors.Is(err, ErrNoHandler) {
					misses++
				}
			}
			if out.NoHandler != misses {
				t.Fatalf("NoHandler = %d, loop saw %d", out.NoHandler, misses)
			}
			if misses > 0 && !errors.Is(out.Err(), ErrNoHandler) {
				t.Fatalf("batch err = %v, want ErrNoHandler", out.Err())
			}

			// Ambiguous: two result handlers, no fold.
			mkAmb := func(t *testing.T) *Event {
				d := New()
				e := mustDefine(t, d, "Batch.A", rtti.Sig(rtti.Word, rtti.Word))
				for id := 1; id <= 2; id++ {
					k := uint64(id)
					if _, err := e.Install(Handler{
						Proc: resultProc(fmt.Sprintf("A%d", id), rtti.Word, rtti.Word),
						Fn:   func(clo any, args []any) any { return k },
					}); err != nil {
						t.Fatal(err)
					}
				}
				return e
			}
			eb4, el4 := mkAmb(t), mkAmb(t)
			out = eb4.RaiseBatch(frames)
			ambs := 0
			for i := range frames {
				if _, err := el4.Raise(frames[i]...); errors.Is(err, ErrAmbiguousResult) {
					ambs++
				}
			}
			if out.Ambiguous != ambs || ambs != n {
				t.Fatalf("Ambiguous = %d, loop saw %d (n=%d)", out.Ambiguous, ambs, n)
			}
			if !errors.Is(out.Err(), ErrAmbiguousResult) {
				t.Fatalf("batch err = %v, want ErrAmbiguousResult", out.Err())
			}

			// Mixed arity: one malformed frame drops the batch to the loop
			// path, which rejects exactly the bad frames.
			if n >= 2 {
				d := New()
				e := mustDefine(t, d, "Batch.M", rtti.Sig(nil, rtti.Word))
				fired := 0
				if _, err := e.Install(handler(voidProc("H", rtti.Word),
					func(any, []any) any { fired++; return nil })); err != nil {
					t.Fatal(err)
				}
				bad := batchTestFrames(n)
				bad[n/2] = ArgFrame{uint64(0), uint64(1)} // wrong arity
				out = e.RaiseBatch(bad)
				if out.Rejected != 1 || out.Raised != n-1 || fired != n-1 {
					t.Fatalf("mixed arity: %+v fired=%d, want Rejected=1 Raised=%d", out, fired, n-1)
				}
				if !errors.Is(out.Err(), ErrBadArity) {
					t.Fatalf("batch err = %v, want ErrBadArity", out.Err())
				}
			}
		})
	}
}

// TestRaiseBatchAritySpecialized checks the remaining specialized entry
// points (RaiseBatch0 and the multi-word flat layouts) against their loop
// twins.
func TestRaiseBatchAritySpecialized(t *testing.T) {
	// Arity 0 through RaiseBatch0 (no frames materialize at all).
	db, dl := New(), New()
	eb := mustDefine(t, db, "Batch.Z", rtti.Sig(nil))
	el := mustDefine(t, dl, "Batch.Z", rtti.Sig(nil))
	cb, cl := 0, 0
	if _, err := eb.Install(handler(voidProc("H"), func(any, []any) any { cb++; return nil })); err != nil {
		t.Fatal(err)
	}
	if _, err := el.Install(handler(voidProc("H"), func(any, []any) any { cl++; return nil })); err != nil {
		t.Fatal(err)
	}
	const n = 100
	out := eb.RaiseBatch0(n)
	for i := 0; i < n; i++ {
		if _, err := el.Raise0(); err != nil {
			t.Fatal(err)
		}
	}
	if cb != cl || out.Raised != n || out.Fired != int64(cl) {
		t.Fatalf("RaiseBatch0: batch fired %d (outcome %+v), loop fired %d", cb, out, cl)
	}

	// Arity 3 through the row-major flat layout.
	db3, dl3 := New(), New()
	sig := rtti.Sig(nil, rtti.Word, rtti.Word, rtti.Word)
	eb3 := mustDefine(t, db3, "Batch.W3", sig)
	el3 := mustDefine(t, dl3, "Batch.W3", sig)
	var sumB, sumL uint64
	mk := func(sum *uint64) Handler {
		return handler(voidProc("H", rtti.Word, rtti.Word, rtti.Word),
			func(clo any, args []any) any {
				*sum += args[0].(uint64) + 2*args[1].(uint64) + 3*args[2].(uint64)
				return nil
			})
	}
	if _, err := eb3.Install(mk(&sumB), WithGuard(Guard{Pred: codegen.ArgEq(2, 1)})); err != nil {
		t.Fatal(err)
	}
	if _, err := el3.Install(mk(&sumL), WithGuard(Guard{Pred: codegen.ArgEq(2, 1)})); err != nil {
		t.Fatal(err)
	}
	flat := make([]any, 0, 3*64)
	for i := 0; i < 64; i++ {
		flat = append(flat, uint64(i), uint64(i+1), uint64(i%2))
	}
	out = eb3.RaiseBatch3(flat)
	misses := 0
	for i := 0; i < 64; i++ {
		if _, err := el3.Raise3(flat[3*i], flat[3*i+1], flat[3*i+2]); err != nil {
			if !errors.Is(err, ErrNoHandler) {
				t.Fatal(err)
			}
			misses++ // guard fails on every other row; no default installed
		}
	}
	if sumB != sumL || out.Raised != 64 || out.NoHandler != misses {
		t.Fatalf("RaiseBatch3: batch sum %d, loop sum %d (misses %d), outcome %+v",
			sumB, sumL, misses, out)
	}

	// A ragged tail is rejected as one malformed frame; the full rows
	// still dispatch.
	out = eb3.RaiseBatch3(flat[:3*4+1])
	if out.Raised != 4 || out.Rejected != 1 {
		t.Fatalf("ragged tail: %+v, want Raised=4 Rejected=1", out)
	}
}

// TestRaiseBatchMidBatchUninstall arms a saboteur handler that uninstalls
// a victim binding from inside the dispatch of one mid-batch frame. The
// executing frame must still fire the victim (pre-raise plan snapshot),
// and every subsequent frame must dispatch on the swapped plan — exactly
// the loop form's visibility rule.
func TestRaiseBatchMidBatchUninstall(t *testing.T) {
	for _, cfg := range batchConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			run := func(batched bool) ([]int, Stats) {
				d := New(WithCodegenOptions(cfg.opts))
				e := mustDefine(t, d, "Batch.S", rtti.Sig(nil, rtti.Word))
				var log []int
				var victim *Binding
				_, err := e.Install(handler(voidProc("Saboteur", rtti.Word),
					func(clo any, args []any) any {
						log = append(log, 100)
						if victim != nil {
							if uerr := e.Uninstall(victim); uerr != nil {
								t.Errorf("mid-batch uninstall: %v", uerr)
							}
							victim = nil
						}
						return nil
					}), WithGuard(Guard{Pred: codegen.ArgEq(0, 7)}))
				if err != nil {
					t.Fatal(err)
				}
				victim, err = e.Install(handler(voidProc("Victim", rtti.Word),
					func(any, []any) any { log = append(log, 200); return nil }))
				if err != nil {
					t.Fatal(err)
				}
				if _, err = e.Install(handler(voidProc("Bystander", rtti.Word),
					func(any, []any) any { log = append(log, 300); return nil })); err != nil {
					t.Fatal(err)
				}
				frames := make([]ArgFrame, 64)
				for i := range frames {
					w := uint64(i % 3)
					if i == 40 {
						w = 7 // the saboteur fires here and tears out the victim
					}
					frames[i] = ArgFrame{w}
				}
				if batched {
					out := e.RaiseBatch(frames)
					if out.Raised != len(frames) {
						t.Fatalf("outcome %+v, want Raised=%d", out, len(frames))
					}
				} else {
					for i := range frames {
						if _, err := e.Raise(frames[i]...); err != nil {
							t.Fatal(err)
						}
					}
				}
				return log, e.Stats()
			}
			logB, statsB := run(true)
			logL, statsL := run(false)
			if !reflect.DeepEqual(logB, logL) {
				t.Fatalf("fired sequences diverge:\nbatch %v\nloop  %v", logB, logL)
			}
			if statsB.Raised != statsL.Raised || statsB.Fired != statsL.Fired {
				t.Fatalf("stats diverge: batch %+v loop %+v", statsB, statsL)
			}
		})
	}
}

// TestRaiseBatchFaultLedgerParity runs a batch over a dispatcher with an
// enforcing fault policy: a handler that panics on one argument value
// marches through its fault budget and is quarantined in the middle of
// the batch (a plan swap the batch executors must observe). The fired
// sequence, ledger record counts, and terminal quarantine state must
// match the loop form exactly.
func TestRaiseBatchFaultLedgerParity(t *testing.T) {
	run := func(batched bool) ([]int, int, fault.State) {
		d := New(WithFaultPolicy(fault.DefaultPolicy()))
		e := mustDefine(t, d, "Batch.F", rtti.Sig(nil, rtti.Word))
		var log []int
		bad, err := e.Install(handler(voidProc("Bad", rtti.Word),
			func(clo any, args []any) any {
				if args[0].(uint64) == 4 {
					panic("batch boom")
				}
				log = append(log, 1)
				return nil
			}))
		if err != nil {
			t.Fatal(err)
		}
		if _, err = e.Install(handler(voidProc("Good", rtti.Word),
			func(any, []any) any { log = append(log, 2); return nil })); err != nil {
			t.Fatal(err)
		}
		frames := make([]ArgFrame, 64)
		for i := range frames {
			frames[i] = ArgFrame{uint64(i % 8)} // arg 4 recurs: 8 panic frames offered
		}
		if batched {
			e.RaiseBatch(frames)
		} else {
			for i := range frames {
				if _, rerr := e.Raise(frames[i]...); rerr != nil {
					t.Fatalf("raise %d: %v", i, rerr)
				}
			}
		}
		panics := 0
		for _, r := range d.FaultLedger().Records() {
			if r.Kind == fault.KindPanic {
				panics++
			}
		}
		return log, panics, bad.FaultState()
	}
	logB, panicsB, stateB := run(true)
	logL, panicsL, stateL := run(false)
	if !reflect.DeepEqual(logB, logL) {
		t.Fatalf("fired sequences diverge:\nbatch %v\nloop  %v", logB, logL)
	}
	if panicsB != panicsL {
		t.Fatalf("fault ledgers diverge: batch %d panics, loop %d", panicsB, panicsL)
	}
	if stateB != stateL || stateB != fault.Quarantined {
		t.Fatalf("terminal states diverge: batch %v, loop %v (want Quarantined)", stateB, stateL)
	}
}

// TestRaiseBatchAdmissionLedger drives the asynchronous batch path into a
// deterministically saturated admission queue under each policy mode: a
// gate event occupies the single pool worker, so the target queue's
// disposition of a 10-frame batch is exact. The terminal ledger must be
// identical to a loop of RaiseAsync calls, and the BatchOutcome must
// agree with the errors the loop form surfaced.
func TestRaiseBatchAdmissionLedger(t *testing.T) {
	modes := map[string]admit.Policy{
		"shed":     {Mode: admit.Shed, Depth: 4},
		"shedOld":  {Mode: admit.ShedOldest, Depth: 4},
		"coalesce": {Mode: admit.Coalesce, Depth: 4},
		"block":    {Mode: admit.Block, Depth: 4, BlockTimeout: 5 * time.Millisecond},
	}
	const frames = 10
	type result struct {
		stats    admit.QueueStats
		admitted int
		shed     int
		coal     int
	}
	for name, pol := range modes {
		pol := pol
		t.Run(name, func(t *testing.T) {
			run := func(batched bool) result {
				d := New(WithAdmission(AdmissionConfig{Workers: 1}))
				gatePol := admit.Policy{Mode: admit.Shed, Depth: 1}
				gate := mustDefine(t, d, "Batch.Gate", rtti.Sig(nil), AsAsync())
				gate.SetAdmission(&gatePol)
				started := make(chan struct{})
				release := make(chan struct{})
				if _, err := gate.Install(handler(voidProc("Gate"), func(any, []any) any {
					started <- struct{}{}
					<-release
					return nil
				})); err != nil {
					t.Fatal(err)
				}
				e := mustDefine(t, d, "Batch.Async", rtti.Sig(nil, rtti.Word), AsAsync())
				e.SetAdmission(&pol)
				if _, err := e.Install(handler(voidProc("H", rtti.Word),
					func(any, []any) any { return nil })); err != nil {
					t.Fatal(err)
				}
				if err := gate.RaiseAsync(); err != nil {
					t.Fatal(err)
				}
				<-started // the one worker is now parked; the queue is ours

				var res result
				if batched {
					fs := batchTestFrames(frames)
					out := e.RaiseBatch(fs)
					res.admitted, res.shed, res.coal = out.Raised, out.Shed, out.Coalesced
					if got := out.Raised + out.Shed + out.Coalesced + out.Rejected; got != frames {
						t.Fatalf("dispositions sum to %d, want %d: %+v", got, frames, out)
					}
				} else {
					for i := 0; i < frames; i++ {
						err := e.RaiseAsync(uint64(i % 5))
						switch {
						case err == nil:
							res.admitted++ // admitted or coalesced; split below
						case errors.Is(err, admit.ErrOverload):
							res.shed++
						default:
							t.Fatalf("RaiseAsync: %v", err)
						}
					}
				}
				close(release)
				res.stats = waitDrained(t, e.AdmissionQueue(), 10*time.Second)
				waitDrained(t, gate.AdmissionQueue(), 10*time.Second)
				if res.stats.Submitted != frames {
					t.Fatalf("submitted = %d, want %d", res.stats.Submitted, frames)
				}
				if got := res.stats.Completed + res.stats.Shed + res.stats.Coalesced; got != res.stats.Submitted {
					t.Fatalf("ledger leak: %+v", res.stats)
				}
				return res
			}
			b := run(true)
			l := run(false)
			if b.stats.Completed != l.stats.Completed || b.stats.Shed != l.stats.Shed ||
				b.stats.Coalesced != l.stats.Coalesced {
				t.Fatalf("terminal ledgers diverge:\nbatch %+v\nloop  %+v", b.stats, l.stats)
			}
			// Raiser-visible dispositions must match between batch and loop.
			// The loop cannot distinguish an admitted submit from a coalesced
			// one (both return nil), so compare their sum.
			if b.admitted+b.coal != l.admitted || b.shed != l.shed {
				t.Fatalf("raiser-visible dispositions diverge: batch adm %d coal %d shed %d, loop adm %d shed %d",
					b.admitted, b.coal, b.shed, l.admitted, l.shed)
			}
			// Where sheds are raiser-visible (Shed, Block, Coalesce), the
			// BatchOutcome must agree with the queue's ledger. Under
			// ShedOldest the victims are shed from the queue head after
			// admission, so the raiser sees every submit succeed.
			if pol.Mode == admit.ShedOldest {
				if b.shed != 0 || int64(b.admitted) != b.stats.Submitted {
					t.Fatalf("ShedOldest outcome (adm %d shed %d) not raiser-invisible: %+v",
						b.admitted, b.shed, b.stats)
				}
			} else if int64(b.admitted) != b.stats.Completed || int64(b.shed) != b.stats.Shed ||
				int64(b.coal) != b.stats.Coalesced {
				t.Fatalf("BatchOutcome (adm %d shed %d coal %d) disagrees with ledger %+v",
					b.admitted, b.shed, b.coal, b.stats)
			}
		})
	}
}

// TestRaiseBatchZeroAlloc asserts the batched fast path performs zero
// heap allocations per frame at batch >= 8 under the three standing CI
// invariants: tracing off, fault policy on, and admission enabled with no
// policy on the event. The flat argument vector is built once outside the
// measured region, as a steady-state producer would hold it.
func TestRaiseBatchZeroAlloc(t *testing.T) {
	const n = 64
	flat := make([]any, n)
	for i := range flat {
		flat[i] = uint64(i % 5) // small words box allocation-free
	}
	cases := []struct {
		name string
		mk   func() *Dispatcher
	}{
		{"tracingOff", func() *Dispatcher { return New() }},
		{"faultPolicyOn", func() *Dispatcher { return New(WithFaultPolicy(fault.DefaultPolicy())) }},
		{"admissionNoPolicy", func() *Dispatcher {
			return New(WithAdmission(AdmissionConfig{Workers: 1}))
		}},
	}
	var cell atomic.Uint64
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.mk()
			e := mustDefine(t, d, "Batch.ZA", fastSig(1))
			for i := 0; i < 5; i++ {
				if _, err := e.Install(fastHandler(1),
					WithGuard(Guard{Pred: codegen.GlobalEq(&cell, 0)})); err != nil {
					t.Fatal(err)
				}
			}
			if allocs := testing.AllocsPerRun(200, func() {
				out := e.RaiseBatch1(flat)
				if out.Raised != n {
					t.Fatalf("outcome %+v", out)
				}
			}); allocs != 0 {
				t.Errorf("%s: %v allocs per %d-frame batch, want 0", tc.name, allocs, n)
			}
		})
	}
}
