package dispatch

import (
	"runtime/debug"
	"sync/atomic"
	"time"

	"spin/internal/codegen"
	"spin/internal/fault"
	"spin/internal/rtti"
)

// HandlerFn is the handler calling convention: the installation closure
// (nil when none) and the raise arguments. Void handlers return nil.
type HandlerFn = codegen.HandlerFn

// CtxHandlerFn is the cancellation-aware handler calling convention: the
// context is cancelled when a supervising watchdog (EPHEMERAL or
// asynchronous deadline) abandons the invocation, so a cooperative handler
// can stop early. For synchronous, unsupervised invocations the context is
// context.Background().
type CtxHandlerFn = codegen.CtxHandlerFn

// GuardFn is the guard calling convention; guards must be side-effect free.
type GuardFn = codegen.GuardFn

// ResultFn folds handler results, called separately for each result
// produced during a raise (§2.3 "Handling results").
type ResultFn = codegen.ResultFn

// Handler describes a procedure offered as an event handler: its rtti
// descriptor (signature, module, attributes), its implementation, and an
// optional inlinable body for the code generator.
type Handler struct {
	// Proc is the procedure descriptor used for installation-time
	// typechecking and authority decisions. Required.
	Proc *rtti.Proc
	// Fn is the out-of-line implementation. Required unless Inline or
	// CtxFn is set.
	Fn HandlerFn
	// CtxFn is a cancellation-aware implementation, preferred over Fn
	// when both are set. Handlers that may run under a deadline watchdog
	// (EPHEMERAL or asynchronous with WithDeadline) should use CtxFn and
	// honor context cancellation.
	CtxFn CtxHandlerFn
	// Inline, when non-nil, allows the code generator to inline the
	// handler body into the dispatch routine.
	Inline *codegen.Body
}

// Guard pairs a predicate with its descriptor. Exactly one of Pred and Fn
// drives evaluation: a Pred is declaratively FUNCTIONAL and inlinable; an
// Fn is opaque and must carry a FUNCTIONAL Proc descriptor.
type Guard struct {
	// Proc describes an out-of-line guard; it must be FUNCTIONAL with a
	// BOOLEAN result (§2.3 "Evaluating guards"). Ignored for Pred
	// guards, which are functional by construction.
	Proc *rtti.Proc
	// Fn is the out-of-line predicate.
	Fn GuardFn
	// Pred is an inlinable predicate.
	Pred *codegen.Pred
	// Closure is passed as the guard's leading argument when non-nil.
	Closure any
}

// OrderKind enumerates the paper's handler ordering constraints (§2.3
// "Ordering handlers").
type OrderKind int

const (
	// Unordered handlers append after previously installed handlers.
	Unordered OrderKind = iota
	// OrderFirst places the handler at the beginning of the handler list
	// at the time it is installed.
	OrderFirst
	// OrderLast places the handler at the end of the handler list at the
	// time it is installed.
	OrderLast
	// OrderBefore places the handler immediately before Ref.
	OrderBefore
	// OrderAfter places the handler immediately after Ref.
	OrderAfter
)

func (k OrderKind) String() string {
	switch k {
	case Unordered:
		return "Unordered"
	case OrderFirst:
		return "First"
	case OrderLast:
		return "Last"
	case OrderBefore:
		return "Before"
	case OrderAfter:
		return "After"
	}
	return "Order(?)"
}

// Order is an ordering constraint, optionally relative to another binding.
type Order struct {
	Kind OrderKind
	Ref  *Binding
}

// Binding represents one installed handler on one event. The same handler
// may be installed many times, on the same or different events; each
// installation is an independent Binding (§2.1).
type Binding struct {
	event   *Event
	handler Handler
	closure any
	guards  []Guard // installer-supplied guards
	imposed []Guard // authority-imposed guards (§2.5)
	order   Order

	async      bool
	ephemeral  bool
	deadline   time.Duration // EPHEMERAL or async watchdog deadline
	filter     bool
	intrinsic  bool
	isDefault  bool
	credential any
	// priority is the binding's degradation priority class: 0 (the
	// default) is essential and never disabled; higher numbers are more
	// optional and are disabled first as the overload controller steps
	// through its degradation levels.
	priority int

	installed bool
	// journalID is the binding's identity in the lifecycle journal,
	// assigned by the install record that defined it (or adopted from the
	// replayed record at boot). Zero on unjournaled dispatchers. Guarded
	// by the event's mutex like installed.
	journalID uint64
	// quarantined marks a binding compiled out of its event's plan by the
	// fault controller; recompile skips it until probation re-admits it.
	// Atomic because the readmission timer flips it off-lock-order with
	// fault observation (see faultctl.go).
	quarantined atomic.Bool
	// degraded marks a binding compiled out of its event's plan by the
	// overload controller (its priority class is disabled at the current
	// degradation level). Atomic for the same reason quarantined is: the
	// controller flips it while walking events off the fault lock order.
	degraded atomic.Bool
	// fired is striped: it is incremented on every firing of a hot
	// binding, potentially from many cores at once (see stripe.go).
	fired        stripedCounter
	terminations atomic.Int64
	terminated   atomic.Bool
}

// Event returns the event this binding is installed on.
func (b *Binding) Event() *Event { return b.event }

// Handler returns the binding's handler: descriptor, implementation, and
// inline body. Immutable after installation; the shard router's move
// protocol uses it to reinstall the binding on another dispatcher.
func (b *Binding) Handler() Handler { return b.handler }

// Closure returns the installation closure (nil when none was attached).
func (b *Binding) Closure() any { return b.closure }

// Guards returns a snapshot of the installer-supplied guards.
func (b *Binding) Guards() []Guard {
	b.event.mu.Lock()
	defer b.event.mu.Unlock()
	return append([]Guard(nil), b.guards...)
}

// Deadline returns the EPHEMERAL or asynchronous watchdog deadline (zero
// when the installation carries none).
func (b *Binding) Deadline() time.Duration { return b.deadline }

// Credential returns the opaque credential attached at installation, for
// re-submission to an authorizer (nil when none).
func (b *Binding) Credential() any { return b.credential }

// HandlerName returns the handler procedure's qualified name.
func (b *Binding) HandlerName() string {
	if b.handler.Proc == nil {
		return "<anonymous>"
	}
	return b.handler.Proc.Name
}

// Installer returns the module that offered the handler (the handler
// procedure's defining module).
func (b *Binding) Installer() *rtti.Module {
	if b.handler.Proc == nil {
		return nil
	}
	return b.handler.Proc.Module
}

// JournalID returns the binding's identity in the lifecycle journal
// (zero on an unjournaled dispatcher).
func (b *Binding) JournalID() uint64 {
	b.event.mu.Lock()
	defer b.event.mu.Unlock()
	return b.journalID
}

// Intrinsic reports whether this is the event's intrinsic handler.
func (b *Binding) Intrinsic() bool { return b.intrinsic }

// Async reports whether the handler executes asynchronously.
func (b *Binding) Async() bool { return b.async }

// Ephemeral reports whether the handler invited termination.
func (b *Binding) Ephemeral() bool { return b.ephemeral }

// Filter reports whether the handler was installed as a filter.
func (b *Binding) Filter() bool { return b.filter }

// Fired reports how many times the handler has fired.
func (b *Binding) Fired() int64 { return b.fired.Load() }

// Terminations reports how many invocations were terminated (EPHEMERAL
// deadline overruns and panics).
func (b *Binding) Terminations() int64 { return b.terminations.Load() }

// Terminated reports whether a watchdog termination has occurred; a
// cooperative EPHEMERAL handler may poll it to stop early.
func (b *Binding) Terminated() bool { return b.terminated.Load() }

// Quarantined reports whether the fault controller has compiled the
// binding out of its event's dispatch plan.
func (b *Binding) Quarantined() bool { return b.quarantined.Load() }

// Priority returns the binding's degradation priority class (0 =
// essential).
func (b *Binding) Priority() int { return b.priority }

// Degraded reports whether the overload controller has compiled the
// binding out of its event's dispatch plan at the current degradation
// level.
func (b *Binding) Degraded() bool { return b.degraded.Load() }

// FaultState returns the binding's state in the dispatcher's fault ledger
// (Healthy for a binding that has never exhausted a budget).
func (b *Binding) FaultState() fault.State {
	return b.event.d.faults.ledger.State(b)
}

// Installed reports whether the binding is currently on its event's
// handler list.
func (b *Binding) Installed() bool {
	b.event.mu.Lock()
	defer b.event.mu.Unlock()
	return b.installed
}

// Order returns the binding's current ordering constraint.
func (b *Binding) Order() Order {
	b.event.mu.Lock()
	defer b.event.mu.Unlock()
	return b.order
}

// ImposedGuards returns a snapshot of the authority-imposed guards.
func (b *Binding) ImposedGuards() []Guard {
	b.event.mu.Lock()
	defer b.event.mu.Unlock()
	return append([]Guard(nil), b.imposed...)
}

// compile converts the binding to the code generator's representation.
// Caller holds the event lock.
func (b *Binding) compile(d *Dispatcher) *codegen.Binding {
	cb := &codegen.Binding{
		Fn:        b.handler.Fn,
		CtxFn:     b.handler.CtxFn,
		Closure:   b.closure,
		Inline:    b.handler.Inline,
		Async:     b.async,
		Ephemeral: b.ephemeral,
		Filter:    b.filter,
		Tag:       b,
		Name:      b.HandlerName(),
		FireCount: &b.fired,
	}
	for _, g := range b.guards {
		cb.Guards = append(cb.Guards, d.compileGuard(b, g))
	}
	for _, g := range b.imposed {
		cb.Guards = append(cb.Guards, d.compileGuard(b, g))
	}
	return cb
}

// compileGuard lowers one guard, wrapping out-of-line guards with the
// purity monitor when enabled.
func (d *Dispatcher) compileGuard(b *Binding, g Guard) codegen.Guard {
	cg := codegen.Guard{Closure: g.Closure, Pred: g.Pred}
	if g.Pred != nil {
		return cg
	}
	fn := g.Fn
	if d.purity {
		inner := fn
		fn = func(closure any, args []any) bool {
			snap := make([]any, len(args))
			copy(snap, args)
			r := inner(closure, args)
			for i := range snap {
				if !d.looselyEqual(b, snap[i], args[i]) {
					panic(ErrGuardMutatedArgs)
				}
			}
			return r
		}
	}
	cg.Fn = fn
	return cg
}

// looselyEqual compares two argument values, treating uncomparable values
// as equal (in-place mutation through a shared reference is invisible to a
// shallow snapshot either way). A recovered comparison panic is recorded
// in the fault ledger as an observational KindCompare record — not charged
// against any budget — instead of vanishing silently.
func (d *Dispatcher) looselyEqual(b *Binding, x, y any) (eq bool) {
	defer func() {
		if v := recover(); v != nil {
			eq = true
			r := fault.Record{
				Kind:   fault.KindCompare,
				Origin: fault.OriginGuard,
				Value:  v,
				Stack:  debug.Stack(),
			}
			if b != nil {
				r.Event = b.event.name
				r.Handler = b.HandlerName()
				if m := b.Installer(); m != nil {
					r.Module = m.Name()
				}
			}
			d.faults.ledger.Note(r)
		}
	}()
	return x == y
}

// countGuards reports the number of guards (installer plus imposed) on the
// binding. Caller holds the event lock.
func (b *Binding) countGuards() int { return len(b.guards) + len(b.imposed) }
