package dispatch

import (
	"fmt"

	"spin/internal/journal"
)

// This file is the dispatcher's migration surface: the operator-path
// primitives the shard router (internal/shard) composes into its move
// protocol when online resharding transfers an event from one dispatcher
// shard to another. Like QuarantineBinding/ReadmitBinding they bypass the
// event's authorizer — a shard move is infrastructure relocating state it
// already holds, not a module requesting new rights — but they journal
// through the normal emission paths so each shard's journal remains
// independently replayable.

// DefaultBinding returns the event's default-handler binding, or nil when
// no default handler is installed.
func (e *Event) DefaultBinding() *Binding {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.defaultB
}

// MigrateControls copies the authority wiring — result handler and
// authorizer — from src onto e and republishes e's plan. Authority wiring
// is code, not journaled state (see journalctl.go); a shard move carries
// it across dispatchers directly.
func (e *Event) MigrateControls(src *Event) {
	src.mu.Lock()
	rf, auth := src.resultFn, src.authorizer
	src.mu.Unlock()
	e.mu.Lock()
	e.resultFn = rf
	e.authorizer = auth
	e.recompile(false)
	e.mu.Unlock()
}

// MigrateImposedGuards attaches authority-imposed guards to b without an
// authority proof: the move protocol re-imposes on the destination binding
// exactly what the authority had imposed on the source binding, so a shard
// move cannot shed restrictions the authority placed. Uncharged, like the
// other operator recompiles.
func (e *Event) MigrateImposedGuards(b *Binding, gs []Guard) error {
	if b == nil || b.event != e {
		return ErrNotInstalled
	}
	if len(gs) == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !b.installed {
		return ErrNotInstalled
	}
	b.imposed = append(b.imposed, gs...)
	e.recompile(false)
	return nil
}

// RemoveEvent retires a defined event: every binding (intrinsic, regular,
// default) is uninstalled with its quotas released and fault-ledger entry
// dropped, the uninstalls are journaled, and the name is freed for
// redefinition. It is the source half of a shard move (the destination
// re-defines the event); there is no authorization check, matching the
// operator overrides. The event's last compiled plan deliberately stays
// published: a raise that resolved its route before the move finishes on
// the handlers it targeted — the shard router's dual-route window — just
// as raises in flight across any plan swap finish on the plan they
// loaded.
func (d *Dispatcher) RemoveEvent(name string) error {
	d.mu.Lock()
	e, ok := d.events[name]
	if ok {
		delete(d.events, name)
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("dispatch: remove of undefined event %s", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, b := range e.bindings {
		b.installed = false
		if !b.intrinsic {
			e.releaseQuotasLocked(b)
		}
		d.faults.ledger.Forget(b)
		d.journalBinding(journal.KindUninstall, b, 0)
	}
	e.bindings = nil
	e.intrinsic = nil
	if old := e.defaultB; old != nil {
		e.defaultB = nil
		d.journalBinding(journal.KindUninstall, old, 0)
	}
	return nil
}

// JournalShardMove emits the resharding audit marker: event moved from
// shard A to shard B. The router records it on both the source and the
// destination shard's journal, bracketing the uninstalls and re-installs
// the move itself emits, so each journal explains why a population of
// bindings departed or arrived.
func (d *Dispatcher) JournalShardMove(event string, from, to int) {
	if !d.journalOn() {
		return
	}
	d.jrnl.Record(journal.Record{
		Kind:  journal.KindShardMove,
		Event: event,
		A:     int64(from),
		B:     int64(to),
	})
}
