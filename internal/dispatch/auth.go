package dispatch

import (
	"fmt"

	"spin/internal/rtti"
)

// AuthOp identifies the operation an authorizer is asked to approve. The
// dispatcher calls back into the authorization procedure every time the set
// of handlers and guards associated with the event is manipulated (§2.5).
type AuthOp int

const (
	// OpInstall is a handler installation request.
	OpInstall AuthOp = iota
	// OpUninstall is a handler removal request.
	OpUninstall
	// OpSetDefault is a default-handler change request.
	OpSetDefault
	// OpSetResult is a result-handler change request.
	OpSetResult
)

func (op AuthOp) String() string {
	switch op {
	case OpInstall:
		return "install"
	case OpUninstall:
		return "uninstall"
	case OpSetDefault:
		return "set-default"
	case OpSetResult:
		return "set-result"
	}
	return "op(?)"
}

// AuthRequest describes a pending operation to an event's authorizer: the
// operation, context describing the requestor, and the opaque credential
// the requestor passed in (§2.5). While evaluating the request the
// authorizer may impose additional guards on the binding and adjust its
// ordering — the "execution properties" of the paper.
type AuthRequest struct {
	// Event is the event being manipulated.
	Event *Event
	// Op is the requested operation.
	Op AuthOp
	// Binding is the binding being installed or removed (nil for
	// result-handler manipulation and default-handler clears).
	Binding *Binding
	// Requestor is the module offering the handler (the handler
	// procedure's defining module), or nil for anonymous handlers.
	Requestor *rtti.Module
	// Credential is the opaque reference supplied via WithCredential,
	// available to bootstrap richer authorization protocols.
	Credential any
}

// ImposeGuard attaches a guard to the binding under authorization. Imposed
// guards behave exactly like installer guards — they must evaluate true for
// the handler to execute — but only the event's authority controls them
// (§2.5, Figure 3). The guard is typechecked against the event.
func (r *AuthRequest) ImposeGuard(g Guard) error {
	if r.Binding == nil {
		return fmt.Errorf("dispatch: no binding to impose a guard on (%v)", r.Op)
	}
	if err := r.Event.checkGuard(g); err != nil {
		return err
	}
	r.Binding.imposed = append(r.Binding.imposed, g)
	return nil
}

// SetOrder overrides the binding's ordering constraint, letting an
// authorizer "apply some execution property, such as ordering constraints,
// onto the handler to ensure that previously installed handlers continue
// to operate as expected" (§2.5).
func (r *AuthRequest) SetOrder(o Order) error {
	if r.Binding == nil {
		return fmt.Errorf("dispatch: no binding to order (%v)", r.Op)
	}
	r.Binding.order = o
	return nil
}

// IsEphemeral reports whether the handler under authorization is declared
// EPHEMERAL, letting an authorizer refuse non-terminable handlers (§2.6).
func (r *AuthRequest) IsEphemeral() bool {
	return r.Binding != nil && r.Binding.handler.Proc != nil && r.Binding.handler.Proc.Ephemeral
}

// AuthorizerFn evaluates an authorization request, returning true to allow
// the operation.
type AuthorizerFn func(req *AuthRequest) bool

// InstallAuthorizer registers fn as the event's authorization procedure.
// The caller demonstrates authority by presenting the descriptor of the
// module that defines the event's intrinsic handler — the paper's
// THIS_MODULE() protocol (Figure 3). Without a matching descriptor the
// request fails with ErrNotAuthority.
func (e *Event) InstallAuthorizer(fn AuthorizerFn, proof *rtti.Module) error {
	if err := e.checkAuthority(proof); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.authorizer = fn
	return nil
}

// ImposeGuard lets the event's authority attach a guard to an existing
// binding outside of an authorization callback; imposed guards can be
// added (and removed via RemoveImposedGuards) dynamically (§2.5).
func (e *Event) ImposeGuard(b *Binding, g Guard, proof *rtti.Module) error {
	if err := e.checkAuthority(proof); err != nil {
		return err
	}
	if b == nil || b.event != e {
		return ErrNotInstalled
	}
	if err := e.checkGuard(g); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !b.installed {
		return ErrNotInstalled
	}
	b.imposed = append(b.imposed, g)
	e.recompile(true)
	return nil
}

// RemoveImposedGuards clears all guards the authority imposed on b.
func (e *Event) RemoveImposedGuards(b *Binding, proof *rtti.Module) error {
	if err := e.checkAuthority(proof); err != nil {
		return err
	}
	if b == nil || b.event != e {
		return ErrNotInstalled
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !b.installed {
		return ErrNotInstalled
	}
	b.imposed = nil
	e.recompile(true)
	return nil
}

// checkAuthority verifies the presented module descriptor is the event's
// authority. Descriptor identity is pointer identity: a module that keeps
// its descriptor unexported is the only code able to present it.
func (e *Event) checkAuthority(proof *rtti.Module) error {
	if e.authority == nil || proof != e.authority {
		return fmt.Errorf("%w: %s over event %s", ErrNotAuthority, proof.Name(), e.name)
	}
	return nil
}

// authorizeLocked submits an operation to the event's authorizer. Caller
// holds e.mu. Events without an authorizer allow everything, matching the
// paper's default-open posture within a linked domain (link-time
// authorization is the outer gate; see internal/linker).
func (e *Event) authorizeLocked(op AuthOp, b *Binding) error {
	if e.authorizer == nil {
		return nil
	}
	req := &AuthRequest{Event: e, Op: op, Binding: b}
	if b != nil {
		req.Requestor = b.Installer()
		req.Credential = b.credential
	}
	if !e.authorizer(req) {
		return fmt.Errorf("%w: %v on %s", ErrDenied, op, e.name)
	}
	return nil
}
