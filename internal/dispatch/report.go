package dispatch

import "spin/internal/codegen"

// RaiseReport is the structured outcome of one raise, for callers that
// need more than the (any, error) contract — the remote-raise receiver
// acks the sender with the handler count and the ambiguity/no-handler
// distinction instead of collapsing them into an error it would then have
// to re-parse.
type RaiseReport struct {
	// Fired counts handlers that ran, excluding the default handler.
	Fired int
	// UsedDefault is set when no handler fired and the default supplied
	// the result.
	UsedDefault bool
	// Ambiguous is set when multiple handlers produced results with no
	// result handler to merge them; the effects happened, the result is
	// unusable.
	Ambiguous bool
	// Async is set when the event is asynchronous: the raise was handed
	// off and Fired is necessarily zero (handlers run later, on their own
	// thread of control).
	Async bool
	// Result is the merged result (meaningful only for synchronous raises
	// with Fired > 0 or UsedDefault).
	Result any
}

// RaiseReport raises the event like Raise but returns the outcome
// structurally. A raise that fires no handler and has no default is NOT
// an error here — it returns a zero report — so a remote receiver can
// distinguish "dispatched, nobody listening" from a failed dispatch.
// Errors are reserved for argument validation and purity rejections.
func (e *Event) RaiseReport(args ...any) (RaiseReport, error) {
	if e.async {
		err := e.RaiseAsync(args...)
		return RaiseReport{Async: true}, err
	}
	out, err := e.raiseOut(e.plan.Load(), args)
	if err != nil {
		return RaiseReport{}, err
	}
	return reportFromOutcome(out), nil
}

func reportFromOutcome(out codegen.Outcome) RaiseReport {
	return RaiseReport{
		Fired:       out.Fired,
		UsedDefault: out.UsedDefault,
		Ambiguous:   out.Ambiguous,
		Result:      out.Result,
	}
}
