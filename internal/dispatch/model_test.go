package dispatch

import (
	"math/rand"
	"testing"
	"time"

	"spin/internal/codegen"
	"spin/internal/rtti"
)

// Model-based property test: the dispatcher — with all generator
// optimizations enabled, including the decision tree — must agree with a
// naive reference implementation (a plain ordered list with linear guard
// evaluation) across random sequences of installs, uninstalls, reorders
// and raises.

// refBinding is the reference model's view of one installation.
type refBinding struct {
	id    int
	guard func(word uint64) bool // nil = unguarded
}

// refModel is the naive dispatcher.
type refModel struct {
	bindings []*refBinding
}

func (m *refModel) raise(word uint64) []int {
	var fired []int
	for _, b := range m.bindings {
		if b.guard == nil || b.guard(word) {
			fired = append(fired, b.id)
		}
	}
	return fired
}

func (m *refModel) insertFirst(b *refBinding) { m.bindings = append([]*refBinding{b}, m.bindings...) }
func (m *refModel) insertLast(b *refBinding)  { m.bindings = append(m.bindings, b) }

func (m *refModel) remove(id int) {
	for i, b := range m.bindings {
		if b.id == id {
			m.bindings = append(m.bindings[:i], m.bindings[i+1:]...)
			return
		}
	}
}

func TestDispatcherAgreesWithReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 30; trial++ {
		d := New(WithCodegenOptions(codegen.Options{
			EnableDecisionTree: true,
		}))
		e := mustDefine(t, d, "Model.E", rtti.Sig(nil, rtti.Word))
		ref := &refModel{}

		var fired []int
		nextID := 0
		live := map[int]*Binding{}

		mkHandler := func(id int) Handler {
			return handler(voidProc("H", rtti.Word), func(clo any, args []any) any {
				fired = append(fired, id)
				return nil
			})
		}
		mkGuard := func(rng *rand.Rand) (Guard, func(uint64) bool) {
			switch rng.Intn(3) {
			case 0: // inline equality predicate (decision-tree eligible)
				k := uint64(rng.Intn(4))
				return Guard{Pred: codegen.ArgEq(0, k)},
					func(w uint64) bool { return w == k }
			case 1: // out-of-line range guard
				k := uint64(rng.Intn(4))
				return Guard{
						Proc: &rtti.Proc{Name: "G", Module: testModule, Functional: true,
							Sig: rtti.Sig(rtti.Bool, rtti.Word)},
						Fn: func(clo any, args []any) bool { return args[0].(uint64) < k },
					},
					func(w uint64) bool { return w < k }
			default: // unguarded
				return Guard{}, nil
			}
		}

		for op := 0; op < 60; op++ {
			switch rng.Intn(4) {
			case 0, 1: // install
				id := nextID
				nextID++
				g, refG := mkGuard(rng)
				var opts []InstallOption
				rb := &refBinding{id: id, guard: refG}
				if g.Pred != nil || g.Fn != nil {
					opts = append(opts, WithGuard(g))
				}
				if rng.Intn(4) == 0 {
					opts = append(opts, First())
					ref.insertFirst(rb)
				} else {
					ref.insertLast(rb)
				}
				b, err := e.Install(mkHandler(id), opts...)
				if err != nil {
					t.Fatalf("trial %d op %d install: %v", trial, op, err)
				}
				live[id] = b
			case 2: // uninstall a random live binding
				if len(live) == 0 {
					continue
				}
				for id, b := range live { // first map key: randomized by Go
					if err := e.Uninstall(b); err != nil {
						t.Fatalf("uninstall: %v", err)
					}
					ref.remove(id)
					delete(live, id)
					break
				}
			case 3: // raise and compare
				w := uint64(rng.Intn(5))
				fired = nil
				_, err := e.Raise(w)
				want := ref.raise(w)
				if err != nil && len(want) != 0 {
					t.Fatalf("trial %d: raise errored (%v) but model fired %v", trial, err, want)
				}
				if err == nil && len(want) == 0 {
					t.Fatalf("trial %d: raise succeeded but model fired nothing", trial)
				}
				if len(fired) != len(want) {
					t.Fatalf("trial %d word %d: fired %v, model %v", trial, w, fired, want)
				}
				for i := range want {
					if fired[i] != want[i] {
						t.Fatalf("trial %d word %d: order %v, model %v", trial, w, fired, want)
					}
				}
			}
		}
	}
}

// TestDispatcherAgreesWithReferenceModelMixedModes extends the property
// test beyond sync guarded bindings: async and ephemeral handlers are mixed
// into the population, and some raises uninstall a live binding from inside
// a handler mid-raise. An inline spawner makes async execution synchronous
// and ordered, so the reference model's sequence prediction stays exact;
// ephemeral handlers run under real supervision (goroutine + watchdog) with
// a deadline generous enough that they always complete. A raise in flight
// must dispatch per its immutable pre-raise plan even when a handler churns
// the binding list under it (plan-snapshot semantics), and subsequent
// raises must see the churn.
func TestDispatcherAgreesWithReferenceModelMixedModes(t *testing.T) {
	rng := rand.New(rand.NewSource(2027))
	ephProc := func(name string) *rtti.Proc {
		return &rtti.Proc{Name: name, Module: testModule, Ephemeral: true,
			Sig: rtti.Sig(nil, rtti.Word)}
	}
	for trial := 0; trial < 20; trial++ {
		d := New(
			WithCodegenOptions(codegen.Options{EnableDecisionTree: true}),
			WithSpawner(func(fn func()) { fn() }), // async handlers run inline, in order
		)
		e := mustDefine(t, d, "Model.M", rtti.Sig(nil, rtti.Word))
		ref := &refModel{}

		var fired []int
		nextID := 0
		live := map[int]*Binding{}

		// The saboteur: an always-firing sync handler that, when armed,
		// uninstalls the victim binding from inside the raise. It is
		// tracked by the reference model but kept out of `live`, so the
		// random uninstall op never removes it and arming is always safe.
		var victim *Binding
		sabID := nextID
		nextID++
		_, err := e.Install(handler(voidProc("Saboteur", rtti.Word), func(any, []any) any {
			fired = append(fired, sabID)
			if victim != nil {
				if err := e.Uninstall(victim); err != nil {
					t.Errorf("mid-raise uninstall: %v", err)
				}
				victim = nil
			}
			return nil
		}))
		if err != nil {
			t.Fatalf("trial %d: install saboteur: %v", trial, err)
		}
		ref.insertLast(&refBinding{id: sabID})

		mkGuard := func() (Guard, func(uint64) bool) {
			switch rng.Intn(3) {
			case 0: // inline equality predicate (decision-tree eligible)
				k := uint64(rng.Intn(4))
				return Guard{Pred: codegen.ArgEq(0, k)},
					func(w uint64) bool { return w == k }
			case 1: // out-of-line range guard
				k := uint64(rng.Intn(4))
				return Guard{
						Proc: &rtti.Proc{Name: "G", Module: testModule, Functional: true,
							Sig: rtti.Sig(rtti.Bool, rtti.Word)},
						Fn: func(clo any, args []any) bool { return args[0].(uint64) < k },
					},
					func(w uint64) bool { return w < k }
			default: // unguarded
				return Guard{}, nil
			}
		}

		compare := func(w uint64, want []int, err error) {
			t.Helper()
			if err != nil && len(want) != 0 {
				t.Fatalf("trial %d: raise errored (%v) but model fired %v", trial, err, want)
			}
			if err == nil && len(want) == 0 {
				t.Fatalf("trial %d: raise succeeded but model fired nothing", trial)
			}
			if len(fired) != len(want) {
				t.Fatalf("trial %d word %d: fired %v, model %v", trial, w, fired, want)
			}
			for i := range want {
				if fired[i] != want[i] {
					t.Fatalf("trial %d word %d: order %v, model %v", trial, w, fired, want)
				}
			}
		}

		for op := 0; op < 60; op++ {
			switch rng.Intn(6) {
			case 0, 1: // install a sync, async, or ephemeral handler
				id := nextID
				nextID++
				fn := func(clo any, args []any) any {
					fired = append(fired, id)
					return nil
				}
				var h Handler
				var opts []InstallOption
				switch rng.Intn(3) {
				case 0:
					h = handler(voidProc("Sync", rtti.Word), fn)
				case 1:
					h = handler(voidProc("Async", rtti.Word), fn)
					opts = append(opts, Async())
				default:
					h = handler(ephProc("Eph"), fn)
					opts = append(opts, Ephemeral(time.Second))
				}
				g, refG := mkGuard()
				if g.Pred != nil || g.Fn != nil {
					opts = append(opts, WithGuard(g))
				}
				rb := &refBinding{id: id, guard: refG}
				if rng.Intn(4) == 0 {
					opts = append(opts, First())
					ref.insertFirst(rb)
				} else {
					ref.insertLast(rb)
				}
				b, err := e.Install(h, opts...)
				if err != nil {
					t.Fatalf("trial %d op %d install: %v", trial, op, err)
				}
				live[id] = b
			case 2: // uninstall a random live binding between raises
				if len(live) == 0 {
					continue
				}
				for id, b := range live { // first map key: randomized by Go
					if err := e.Uninstall(b); err != nil {
						t.Fatalf("uninstall: %v", err)
					}
					ref.remove(id)
					delete(live, id)
					break
				}
			case 3, 4: // raise and compare
				w := uint64(rng.Intn(5))
				fired = nil
				_, err := e.Raise(w)
				compare(w, ref.raise(w), err)
			case 5: // raise with a mid-raise uninstall
				if len(live) == 0 {
					continue
				}
				var vid int
				for id, b := range live {
					vid, victim = id, b
					break
				}
				w := uint64(rng.Intn(5))
				// Pre-raise snapshot: the victim still fires this raise
				// (if its guard passes) even though the saboteur tears it
				// out partway through.
				want := ref.raise(w)
				fired = nil
				_, err := e.Raise(w)
				compare(w, want, err)
				if victim != nil {
					t.Fatalf("trial %d: saboteur did not disarm (victim %d)", trial, vid)
				}
				ref.remove(vid)
				delete(live, vid)
				// The next raise must dispatch per the post-churn plan.
				fired = nil
				_, err = e.Raise(w)
				compare(w, ref.raise(w), err)
			}
		}
	}
}

// TestPlanVersionsAreIndependent verifies that every recompile yields an
// independent plan: raises against a stale plan (captured before churn)
// behave per the old population, while fresh raises see the new one.
func TestPlanVersionsAreIndependent(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	n1 := 0
	b1, _ := e.Install(handler(voidProc("H1"), func(any, []any) any { n1++; return nil }))
	oldPlan := e.Plan()

	n2 := 0
	_, _ = e.Install(handler(voidProc("H2"), func(any, []any) any { n2++; return nil }))
	_ = e.Uninstall(b1)

	// The stale plan still dispatches to H1 only.
	env := &codegen.Env{}
	out := oldPlan.Execute(env, nil)
	if out.Fired != 1 || n1 != 1 || n2 != 0 {
		t.Fatalf("stale plan: fired=%d n1=%d n2=%d", out.Fired, n1, n2)
	}
	// The live event dispatches to H2 only.
	if _, err := e.Raise(); err != nil {
		t.Fatal(err)
	}
	if n1 != 1 || n2 != 1 {
		t.Fatalf("fresh raise: n1=%d n2=%d", n1, n2)
	}
}
