package dispatch

import (
	"errors"
	"testing"

	"spin/internal/codegen"
	"spin/internal/rtti"
)

// The authorization tests reproduce Figure 3: MachineTrap installs an
// authorizer over its Syscall event which imposes a per-address-space
// guard on every handler installation.

var (
	trapModule  = rtti.NewModule("MachineTrap", "MachineTrap")
	emuModule   = rtti.NewModule("MachEmulator")
	spaceType   = rtti.NewRef("AddressSpace", nil)
	syscallSig  = rtti.Sig(nil, rtti.Word, rtti.Word) // (space-id, syscall-number)
	trapHandler = func(any, []any) any { return nil }
)

type space struct{ id uint64 }

func (s *space) RTTIType() rtti.Type { return spaceType }

func defineSyscallEvent(t *testing.T, d *Dispatcher) *Event {
	t.Helper()
	e, err := d.DefineEvent("MachineTrap.Syscall", syscallSig,
		WithIntrinsic(Handler{
			Proc: &rtti.Proc{Name: "MachineTrap.Syscall", Module: trapModule, Sig: syscallSig},
			Fn:   trapHandler,
		}))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestInstallAuthorizerRequiresAuthority(t *testing.T) {
	d := New()
	e := defineSyscallEvent(t, d)
	auth := func(req *AuthRequest) bool { return true }
	if err := e.InstallAuthorizer(auth, emuModule); !errors.Is(err, ErrNotAuthority) {
		t.Fatalf("foreign module accepted as authority: %v", err)
	}
	if err := e.InstallAuthorizer(auth, nil); !errors.Is(err, ErrNotAuthority) {
		t.Fatalf("nil proof accepted: %v", err)
	}
	if err := e.InstallAuthorizer(auth, trapModule); err != nil {
		t.Fatalf("rightful authority rejected: %v", err)
	}
}

func TestAuthorizerDeniesInstall(t *testing.T) {
	d := New()
	e := defineSyscallEvent(t, d)
	denied := 0
	_ = e.InstallAuthorizer(func(req *AuthRequest) bool {
		if req.Op == OpInstall && req.Requestor != trapModule {
			denied++
			return false
		}
		return true
	}, trapModule)
	h := Handler{Proc: &rtti.Proc{Name: "Emu.Syscall", Module: emuModule, Sig: syscallSig}, Fn: trapHandler}
	if _, err := e.Install(h); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
	if denied != 1 {
		t.Fatal("authorizer not consulted")
	}
}

func TestAuthorizerSeesRequestContext(t *testing.T) {
	d := New()
	e := defineSyscallEvent(t, d)
	var got *AuthRequest
	_ = e.InstallAuthorizer(func(req *AuthRequest) bool { got = req; return true }, trapModule)
	h := Handler{Proc: &rtti.Proc{Name: "Emu.Syscall", Module: emuModule, Sig: syscallSig}, Fn: trapHandler}
	if _, err := e.Install(h, WithCredential("password:xyzzy")); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Op != OpInstall || got.Event != e {
		t.Fatalf("request = %+v", got)
	}
	if got.Requestor != emuModule {
		t.Fatalf("requestor = %v", got.Requestor)
	}
	if got.Credential != "password:xyzzy" {
		t.Fatalf("credential = %v", got.Credential)
	}
}

func TestImposedGuardConfinesHandler(t *testing.T) {
	// Figure 3: the authorizer imposes a guard ensuring the handler only
	// sees system calls from its own address space.
	d := New()
	e := defineSyscallEvent(t, d)
	installingSpace := uint64(7)
	_ = e.InstallAuthorizer(func(req *AuthRequest) bool {
		if req.Op != OpInstall {
			return true
		}
		// ImposedSyscallGuard: Space(strand) = validSpace, with the
		// installing space passed as the guard's closure.
		gproc := &rtti.Proc{
			Name: "MachineTrap.ImposedSyscallGuard", Module: trapModule, Functional: true,
			Sig: rtti.Signature{Args: []rtti.Type{rtti.RefAny, rtti.Word, rtti.Word}, Result: rtti.Bool},
		}
		err := req.ImposeGuard(Guard{
			Proc:    gproc,
			Closure: installingSpace,
			Fn: func(validSpace any, args []any) bool {
				return args[0].(uint64) == validSpace.(uint64)
			},
		})
		return err == nil
	}, trapModule)

	fired := 0
	h := Handler{Proc: &rtti.Proc{Name: "Emu.Syscall", Module: emuModule, Sig: syscallSig},
		Fn: func(any, []any) any { fired++; return nil }}
	b, err := e.Install(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.ImposedGuards()) != 1 {
		t.Fatalf("imposed guards = %d", len(b.ImposedGuards()))
	}

	// A syscall from space 7 reaches the handler; one from space 9 does
	// not (and since the intrinsic also fires, no ErrNoHandler).
	if _, err := e.Raise(uint64(7), uint64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Raise(uint64(9), uint64(1)); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("handler fired %d times, want 1", fired)
	}
}

func TestAuthorizerAppliesOrderingConstraint(t *testing.T) {
	// §2.5: the authorizer may apply execution properties such as
	// ordering constraints to protect previously installed handlers.
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil), WithOwner(trapModule))
	_ = e.InstallAuthorizer(func(req *AuthRequest) bool {
		if req.Op == OpInstall {
			_ = req.SetOrder(Order{Kind: OrderFirst})
		}
		return true
	}, trapModule)
	var trace []string
	mk := func(label string) Handler {
		return handler(voidProc("H."+label), func(any, []any) any {
			trace = append(trace, label)
			return nil
		})
	}
	_, _ = e.Install(mk("a"))
	_, _ = e.Install(mk("b"), Last()) // authorizer overrides to First
	if _, err := e.Raise(); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 || trace[0] != "b" {
		t.Fatalf("trace = %v", trace)
	}
}

func TestAuthorizerConsultedOnUninstall(t *testing.T) {
	d := New()
	e := defineSyscallEvent(t, d)
	locked := false
	_ = e.InstallAuthorizer(func(req *AuthRequest) bool {
		return !(req.Op == OpUninstall && locked)
	}, trapModule)
	h := Handler{Proc: &rtti.Proc{Name: "Emu.Syscall", Module: emuModule, Sig: syscallSig}, Fn: trapHandler}
	b, err := e.Install(h)
	if err != nil {
		t.Fatal(err)
	}
	locked = true
	if err := e.Uninstall(b); !errors.Is(err, ErrDenied) {
		t.Fatalf("uninstall err = %v", err)
	}
	locked = false
	if err := e.Uninstall(b); err != nil {
		t.Fatalf("uninstall: %v", err)
	}
}

func TestAuthorizerConsultedOnDefaultAndResult(t *testing.T) {
	d := New()
	e, _ := d.DefineEvent("M.F", rtti.Sig(rtti.Bool), WithOwner(trapModule))
	denyAll := func(req *AuthRequest) bool { return false }
	_ = e.InstallAuthorizer(denyAll, trapModule)
	h := handler(resultProc("Def", rtti.Bool), func(any, []any) any { return true })
	if err := e.SetDefaultHandler(h); !errors.Is(err, ErrDenied) {
		t.Fatalf("default err = %v", err)
	}
	if err := e.SetResultHandler(func(a, r any, i int) any { return r }); !errors.Is(err, ErrDenied) {
		t.Fatalf("result err = %v", err)
	}
}

func TestImposeGuardOutsideAuthorizer(t *testing.T) {
	d := New()
	e := defineSyscallEvent(t, d)
	h := Handler{Proc: &rtti.Proc{Name: "Emu.Syscall", Module: emuModule, Sig: syscallSig}, Fn: trapHandler}
	b, err := e.Install(h)
	if err != nil {
		t.Fatal(err)
	}
	g := Guard{Pred: codegen.False()}
	// Only the authority may impose.
	if err := e.ImposeGuard(b, g, emuModule); !errors.Is(err, ErrNotAuthority) {
		t.Fatalf("foreign impose err = %v", err)
	}
	if err := e.ImposeGuard(b, g, trapModule); err != nil {
		t.Fatalf("impose: %v", err)
	}
	// The imposed guard now blocks the handler; only the intrinsic fires.
	if _, err := e.Raise(uint64(1), uint64(2)); err != nil {
		t.Fatal(err)
	}
	if b.Fired() != 0 {
		t.Fatal("imposed guard did not confine handler")
	}
	// And the authority can lift it again.
	if err := e.RemoveImposedGuards(b, trapModule); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Raise(uint64(1), uint64(2)); err != nil {
		t.Fatal(err)
	}
	if b.Fired() != 1 {
		t.Fatal("imposed guard not removed")
	}
	if err := e.RemoveImposedGuards(b, emuModule); !errors.Is(err, ErrNotAuthority) {
		t.Fatalf("foreign remove err = %v", err)
	}
}

func TestImposeGuardErrors(t *testing.T) {
	d := New()
	e := defineSyscallEvent(t, d)
	g := Guard{Pred: codegen.True()}
	if err := e.ImposeGuard(nil, g, trapModule); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("nil binding err = %v", err)
	}
	other := mustDefine(t, d, "Other.E", rtti.Sig(nil))
	ob, _ := other.Install(handler(voidProc("H"), func(any, []any) any { return nil }))
	if err := e.ImposeGuard(ob, g, trapModule); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("foreign binding err = %v", err)
	}
	if err := e.RemoveImposedGuards(nil, trapModule); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("nil remove err = %v", err)
	}
}

func TestAuthorizerEphemeralInspection(t *testing.T) {
	// §2.6: an authorizer can determine whether a handler is EPHEMERAL
	// and refuse installation if it is not.
	d := New()
	e := mustDefine(t, d, "Net.PacketArrived", rtti.Sig(nil, rtti.Word), WithOwner(trapModule))
	_ = e.InstallAuthorizer(func(req *AuthRequest) bool {
		return req.Op != OpInstall || req.IsEphemeral()
	}, trapModule)

	plain := handler(voidProc("Plain", rtti.Word), func(any, []any) any { return nil })
	if _, err := e.Install(plain); !errors.Is(err, ErrDenied) {
		t.Fatalf("non-ephemeral accepted: %v", err)
	}
	eph := Handler{
		Proc: &rtti.Proc{Name: "Eph", Module: emuModule, Sig: rtti.Sig(nil, rtti.Word), Ephemeral: true},
		Fn:   func(any, []any) any { return nil },
	}
	if _, err := e.Install(eph, Ephemeral(0)); err != nil {
		t.Fatalf("ephemeral rejected: %v", err)
	}
}

func TestEventWithoutAuthorityRejectsAuthorizer(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	err := e.InstallAuthorizer(func(req *AuthRequest) bool { return true }, trapModule)
	if !errors.Is(err, ErrNotAuthority) {
		t.Fatalf("err = %v", err)
	}
}

func TestAuthRequestHelpersWithoutBinding(t *testing.T) {
	r := &AuthRequest{Op: OpSetResult}
	if err := r.ImposeGuard(Guard{Pred: codegen.True()}); err == nil {
		t.Fatal("ImposeGuard without binding accepted")
	}
	if err := r.SetOrder(Order{Kind: OrderFirst}); err == nil {
		t.Fatal("SetOrder without binding accepted")
	}
	if r.IsEphemeral() {
		t.Fatal("IsEphemeral without binding must be false")
	}
}
