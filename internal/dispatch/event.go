package dispatch

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"spin/internal/admit"
	"spin/internal/codegen"
	"spin/internal/rtti"
	"spin/internal/stripe"
	"spin/internal/trace"
	"spin/internal/vtime"
)

// maxPooledArity bounds the arity the pooled raise buffers cover; wider
// events fall back to the allocating variadic path.
const maxPooledArity = 8

// argPool recycles raise argument vectors for the arity-specialized
// entry points (Raise0..Raise5), so a steady-state raise performs no heap
// allocation. Buffers are returned only when the executed plan cannot
// retain the argument slice past the raise (see Plan.RetainsArgs).
var argPool = sync.Pool{
	New: func() any {
		b := make([]any, 0, maxPooledArity)
		return &b
	},
}

// Event is a dynamically bindable procedure name (§2.1 "Defining events").
// Raising the event conditionally invokes the handlers installed on it; an
// event with only its unguarded intrinsic handler dispatches as a direct
// procedure call.
type Event struct {
	d         *Dispatcher
	name      string
	sig       rtti.Signature
	authority *rtti.Module
	async     bool

	mu         sync.Mutex
	bindings   []*Binding
	intrinsic  *Binding
	defaultB   *Binding
	resultFn   ResultFn
	authorizer AuthorizerFn
	// tracer, when non-nil, makes recompile emit traced plans targeting
	// it. Guarded by mu; the published plan carries the decision, so
	// raises never read this field.
	tracer *trace.Tracer
	// admitQ, when non-nil, makes recompile emit plans whose asynchronous
	// steps pass through the bounded admission queue. Guarded by mu for
	// the same reason tracer is: the published plan carries the decision.
	admitQ *admit.Queue

	plan atomic.Pointer[codegen.Plan]

	// env is the event's execution environment, built once at definition
	// time: its hooks capture only the event, so a single immutable value
	// serves every raise (the per-raise construction it replaces was three
	// heap allocations on the hot path).
	env *codegen.Env

	// Dispatch statistics are sharded across cache-line-padded stripes so
	// parallel raises of one hot event do not serialize on a shared line;
	// Stats aggregates them lazily.
	raised     stripedCounter
	firedTotal stripedCounter
	timeNanos  stripedCounter
}

// EventOption configures an event at definition time.
type EventOption func(*eventCfg)

type eventCfg struct {
	intrinsic *Handler
	owner     *rtti.Module
	async     bool
}

// WithIntrinsic installs h as the event's intrinsic handler: the procedure
// with the same name as the event, invoked whenever the event is raised
// unless explicitly deregistered. The intrinsic handler's module becomes
// the event's authority (§2.5).
func WithIntrinsic(h Handler) EventOption {
	return func(c *eventCfg) { c.intrinsic = &h }
}

// WithOwner assigns an authority to an event defined without an intrinsic
// handler (a pure announcement event).
func WithOwner(m *rtti.Module) EventOption {
	return func(c *eventCfg) { c.owner = m }
}

// AsAsync makes every raise of the event asynchronous: all handlers execute
// on a separate thread of control and the raiser proceeds without blocking
// (§2.6).
func AsAsync() EventOption {
	return func(c *eventCfg) { c.async = true }
}

// DefineEvent declares an event with the given qualified name and
// signature. Every procedure in SPIN is implicitly an event; in this
// reproduction modules declare the events they export, which is where the
// implicit becomes explicit.
func (d *Dispatcher) DefineEvent(name string, sig rtti.Signature, opts ...EventOption) (*Event, error) {
	if err := sig.Validate(); err != nil {
		return nil, err
	}
	var cfg eventCfg
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.async && sig.HasByRef() {
		// §2.6: asynchronous threads execute on different stacks, so
		// by-reference arguments may be destroyed before going out of
		// scope; defining such an event asynchronous is illegal.
		return nil, fmt.Errorf("%w: event %s", ErrAsyncByRef, name)
	}
	e := &Event{d: d, name: name, sig: sig, async: cfg.async, authority: cfg.owner}
	e.tracer = d.tracer
	if pol := d.admit.defaultPolicy(); pol != nil {
		e.admitQ = d.admit.newQueue(name, *pol)
	}
	e.env = e.newEnv()

	if cfg.intrinsic != nil {
		h := *cfg.intrinsic
		if err := checkHandlerImpl(h); err != nil {
			return nil, err
		}
		if err := h.Proc.CheckHandler(sig, nil); err != nil {
			return nil, err
		}
		if h.Proc.Module != nil {
			e.authority = h.Proc.Module
		}
		e.intrinsic = &Binding{event: e, handler: h, intrinsic: true, installed: true}
		e.bindings = append(e.bindings, e.intrinsic)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.events[name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateEvent, name)
	}
	d.events[name] = e
	// Intrinsic handlers — most procedures in the system — are defined
	// without any runtime overhead (§3.1), so the initial plan compiles
	// uncharged.
	e.recompile(false)
	if e.intrinsic != nil {
		// The intrinsic binding is journaled like any install (marked
		// FlagIntrinsic); replay binds its ID to the binding DefineEvent
		// creates instead of re-installing.
		d.journalInstall(e, e.intrinsic)
	}
	return e, nil
}

// Name returns the event's qualified name.
func (e *Event) Name() string { return e.name }

// Dispatcher returns the dispatcher the event is defined on.
func (e *Event) Dispatcher() *Dispatcher { return e.d }

// Signature returns the event's procedure signature.
func (e *Event) Signature() rtti.Signature { return e.sig }

// Authority returns the module with authority over the event (the module
// defining the intrinsic handler), or nil for an unowned event.
func (e *Event) Authority() *rtti.Module { return e.authority }

// Async reports whether the event was defined asynchronous.
func (e *Event) Async() bool { return e.async }

// IntrinsicBinding returns the intrinsic handler's binding if it is still
// installed.
func (e *Event) IntrinsicBinding() *Binding {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.intrinsic != nil && e.intrinsic.installed {
		return e.intrinsic
	}
	return nil
}

// Bindings returns a snapshot of the installed bindings in dispatch order.
func (e *Event) Bindings() []*Binding {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*Binding(nil), e.bindings...)
}

// Position reports the binding's index in dispatch order, or -1.
func (e *Event) Position(b *Binding) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.positionLocked(b)
}

func (e *Event) positionLocked(b *Binding) int {
	for i, x := range e.bindings {
		if x == b {
			return i
		}
	}
	return -1
}

// Plan returns the currently published dispatch plan (for tests and
// disassembly).
func (e *Event) Plan() *codegen.Plan { return e.plan.Load() }

// Trace enables or disables tracing for this event: the dispatch plan is
// recompiled with trace recording steps targeting t (or without any when t
// is nil) and published with the same atomic swap installations use, so
// raises in flight finish on the plan they loaded and the toggle never
// blocks a raise. A nil t restores the untraced routine, returning the hot
// path to its zero-extra-cost form.
func (e *Event) Trace(t *trace.Tracer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tracer == t {
		return
	}
	e.tracer = t
	// Uncharged: toggling observability is operator tooling, not the
	// paper's installation workload.
	e.recompile(false)
}

// Tracer returns the event's current tracer, or nil when untraced.
func (e *Event) Tracer() *trace.Tracer {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tracer
}

// recompile regenerates and publishes the dispatch plan. The caller holds
// e.mu (or is the defining call, before the event escapes). When charge is
// true the O(n) regeneration cost is metered, accumulating to the paper's
// O(n^2) total installation overhead.
func (e *Event) recompile(charge bool) {
	specs := make([]*codegen.Binding, 0, len(e.bindings))
	for _, b := range e.bindings {
		if b.quarantined.Load() || b.degraded.Load() {
			// Quarantined and degraded bindings stay on the handler list
			// (their installation is intact) but are compiled out of the
			// plan, so the hot path pays nothing for them (DESIGN.md 12,
			// 13).
			continue
		}
		specs = append(specs, b.compile(e.d))
	}
	var def *codegen.Binding
	if e.defaultB != nil && !e.defaultB.quarantined.Load() {
		def = e.defaultB.compile(e.d)
	}
	info := codegen.EventInfo{Name: e.name, Arity: e.sig.Arity(), HasResult: e.sig.HasResult()}
	opts := e.d.cgOpts
	opts.Trace = e.tracer
	opts.Admit = e.admitQ
	opts.Journal = e.d.jrnl
	if e.d.faults.enforce {
		opts.Protect = e.d.faults
	}
	plan := codegen.Compile(info, specs, e.resultFn, def, opts)
	if charge {
		cpu := e.d.cpu
		cpu.Begin(vtime.AccountEvents)
		cpu.Charge(vtime.PlanCompileBase)
		if !e.d.cgOpts.IncrementalInstall {
			// Full regeneration: cost linear in the bindings present,
			// O(n^2) for n installs (§3.1 "Installation overhead").
			cpu.ChargeN(vtime.PlanCompileBinding, len(e.bindings))
		}
		// Incremental installation (the paper's anticipated "more
		// incremental (and economical) approach") appends one
		// pre-generated stub and patches the dispatch chain, so only
		// the base cost is paid regardless of population.
		cpu.End()
	}
	e.plan.Store(plan)
}

// Raise announces the event. All installed handlers whose guards evaluate
// true execute; the merged result (for result events) is returned. If no
// handler fires and no default handler is installed, ErrNoHandler is
// returned — the paper's runtime exception at the raise point.
//
// For events defined asynchronous, Raise behaves as RaiseAsync and the
// result is always nil.
func (e *Event) Raise(args ...any) (any, error) {
	if e.async {
		return nil, e.RaiseAsync(args...)
	}
	return e.raiseSync(args)
}

// RaiseAsync raises the event asynchronously: handlers run on a separate
// thread of control and the raiser proceeds immediately. Raising an event
// that returns a result asynchronously is an error unless a default
// handler is installed (§2.6).
//
// On an event with an admission policy (WithAdmission's Default, or
// SetAdmission) the raise passes through the event's bounded queue: the
// plan executes on a pool worker, and under overload the policy decides —
// a shed raise returns an error wrapping admit.ErrOverload, a Block-mode
// raise waits (bounded by the policy's BlockTimeout), a Coalesce-mode
// raise may merge into a pending raise of the same event. Under the
// simulator admission is inactive: a single-threaded simulation cannot
// overload itself.
func (e *Event) RaiseAsync(args ...any) error {
	if err := e.checkArgs(args); err != nil {
		return err
	}
	if e.sig.HasResult() {
		e.mu.Lock()
		hasDefault := e.defaultB != nil
		e.mu.Unlock()
		if !hasDefault {
			return fmt.Errorf("%w: %s", ErrAsyncNeedsDefault, e.name)
		}
	}
	if e.sig.HasByRef() {
		return fmt.Errorf("%w: %s", ErrAsyncByRef, e.name)
	}
	if q := e.plan.Load().AdmitQueue(); q != nil && e.d.sim == nil {
		e.d.cpu.Begin(vtime.AccountEvents)
		err := e.d.submitRaise(q, e, args)
		e.d.cpu.End()
		return err
	}
	e.d.cpu.Begin(vtime.AccountEvents)
	e.d.spawn(e.sig.Arity(), func() {
		_, _ = e.raiseSync(args)
	})
	e.d.cpu.End()
	return nil
}

// SetAdmission gives the event a bounded admission queue under pol (or
// removes it with nil): asynchronous raises and asynchronous handler
// invocations pass through the queue, drained by the dispatcher's shared
// worker pool. The decision is compiled into the dispatch plan and
// published with the same atomic swap installs use, so raises in flight
// finish on the plan they loaded and the toggle never blocks a raise.
func (e *Event) SetAdmission(pol *admit.Policy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if pol == nil {
		if e.admitQ == nil {
			return
		}
		e.admitQ = nil
	} else {
		e.admitQ = e.d.admit.newQueue(e.name, *pol)
	}
	// Uncharged, like Trace: toggling overload control is operator
	// tooling, not the paper's installation workload.
	e.recompile(false)
}

// AdmissionQueue returns the admission queue compiled into the event's
// current plan, or nil when the event is unqueued.
func (e *Event) AdmissionQueue() *admit.Queue { return e.plan.Load().AdmitQueue() }

// newEnv builds the event's cached execution environment. Every hook
// captures only the event, so the value is immutable across recompiles and
// shared by all raises.
func (e *Event) newEnv() *codegen.Env {
	return &codegen.Env{
		CPU:           e.d.cpu,
		Spawn:         e.d.spawn,
		SpawnHandler:  e.d.spawnHandler,
		SubmitHandler: e.d.submitHandler,
		RunEphemeral: func(tag any, invoke func(context.Context) any) (any, bool) {
			b, _ := tag.(*Binding)
			var deadline = DefaultEphemeralDeadline
			if b != nil && b.deadline > 0 {
				deadline = b.deadline
			}
			return e.d.runEphemeral(tag, deadline, invoke)
		},
		OnFire: func(tag any) {
			e.firedTotal.Add(1)
			if b, ok := tag.(*Binding); ok && b != nil {
				b.fired.Add(1)
			}
		},
		// Batched statistics for the specialized executors: per-binding
		// counts go straight to Binding.fired (codegen.Binding.FireCount)
		// and the event total lands here once per raise, all through one
		// hoisted stripe index — same totals as OnFire, a fraction of the
		// atomic RMWs and shard hashes.
		FiredTotal: &e.firedTotal,
	}
}

func (e *Event) raiseSync(args []any) (any, error) {
	return e.raiseWith(e.plan.Load(), args)
}

// raiseWith executes one synchronous raise against a specific plan. The
// arity-specialized entry points pass the plan they inspected for argument
// retention, so a concurrent plan swap cannot invalidate their decision to
// recycle the argument buffer.
func (e *Event) raiseWith(plan *codegen.Plan, args []any) (any, error) {
	out, err := e.raiseOut(plan, args)
	if err != nil {
		return nil, err
	}
	return e.finishRaise(out)
}

// raiseOut is raiseWith before the outcome mapping: it validates, counts,
// and executes one raise, returning the raw plan outcome. The error covers
// argument validation and purity-monitor rejections — the cases a loop of
// raises rejects before dispatch; finishRaise maps the outcome itself. The
// batch fallback loop (raiseBatchLoop) calls it per frame so it can fold
// outcomes without re-deriving them from the (any, error) contract.
func (e *Event) raiseOut(plan *codegen.Plan, args []any) (codegen.Outcome, error) {
	if err := e.checkArgs(args); err != nil {
		return codegen.Outcome{}, err
	}
	// One stripe shard hash serves every striped counter this raise
	// touches: the raised total here, the per-binding fire counts and the
	// fired total inside the specialized executor. The increment's shard
	// value doubles as the journal's raise-sampling draw below.
	idx := stripe.Index()
	raised := e.raised.AddAtN(idx, 1)
	if e.d.purity {
		// Purity checking installs guard monitors that report a mutating
		// FUNCTIONAL guard by panicking inside plan execution; only then
		// does the raise need a recover barrier. The production path below
		// carries none.
		return e.raiseOutMonitored(plan, args)
	}

	var out codegen.Outcome
	if cpu := e.d.cpu; cpu == nil {
		// Unmetered: skip all virtual-time accounting up front instead of
		// paying a nil check per meter call inside the plan. Specialized
		// plans — flattened guard trees, shape-selected executor, batched
		// statistics — hoist past the interpreter entirely; this is the
		// bypass tier for guard-constant and single-inline-guard plans
		// (GuardedBypass) as well as every other flat-eligible shape.
		if fe := plan.FastExec(); fe != nil {
			out = fe(plan, e.env, args, idx)
		} else {
			out = plan.Execute(e.env, args)
		}
	} else {
		cpu.Begin(vtime.AccountEvents)
		start := cpu.Now()
		out = plan.Execute(e.env, args)
		e.timeNanos.Add(int64(cpu.Now().Sub(start)))
		cpu.End()
	}
	// Sampled raise journaling, compiled into the plan like tracing: a
	// journal-off plan pays one nil check; an off-sample draw is one mask
	// test on the striped raise total already advanced above.
	if jr := plan.Journal(); jr != nil && jr.SampleCount(uint64(raised)) {
		jr.SampleHit(e.name, out.Fired)
	}
	return out, nil
}

// raiseOutMonitored is raiseOut's purity-checking tail: identical execution
// behind a recover barrier that surfaces the monitor's ErrGuardMutatedArgs
// panic as an error at the raise point.
func (e *Event) raiseOutMonitored(plan *codegen.Plan, args []any) (out codegen.Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			if r == ErrGuardMutatedArgs {
				out, err = codegen.Outcome{}, fmt.Errorf("%w: event %s", ErrGuardMutatedArgs, e.name)
				return
			}
			panic(r)
		}
	}()
	if cpu := e.d.cpu; cpu == nil {
		out = plan.Execute(e.env, args)
	} else {
		cpu.Begin(vtime.AccountEvents)
		start := cpu.Now()
		out = plan.Execute(e.env, args)
		e.timeNanos.Add(int64(cpu.Now().Sub(start)))
		cpu.End()
	}
	return out, nil
}

// finishRaise maps a plan outcome to the raise result and error contract.
func (e *Event) finishRaise(out codegen.Outcome) (any, error) {
	if out.Fired == 0 && !out.UsedDefault {
		return nil, fmt.Errorf("%w: %s", ErrNoHandler, e.name)
	}
	if out.Ambiguous {
		return out.Result, fmt.Errorf("%w: %s", ErrAmbiguousResult, e.name)
	}
	return out.Result, nil
}

// raisePooled runs a synchronous raise over a pooled argument buffer,
// falling back to a private copy when the plan may retain the slice past
// the raise (asynchronous or ephemeral handlers).
func (e *Event) raisePooled(bp *[]any) (any, error) {
	args := *bp
	plan := e.plan.Load()
	if plan.RetainsArgs() {
		// A spawned handler may still read args after the raise returns;
		// give it a private copy and recycle the buffer immediately.
		private := make([]any, len(args))
		copy(private, args)
		clear(args)
		*bp = args[:0]
		argPool.Put(bp)
		return e.raiseWith(plan, private)
	}
	res, err := e.raiseWith(plan, args)
	clear(args) // drop references so the pool does not pin arguments
	*bp = args[:0]
	argPool.Put(bp)
	return res, err
}

// Raise0 raises a no-parameter event without allocating. It is the
// arity-specialized fast path the typed Event0 wrapper uses; semantics are
// identical to Raise().
func (e *Event) Raise0() (any, error) {
	if e.async {
		return nil, e.RaiseAsync()
	}
	return e.raiseSync(nil)
}

// Raise1 raises the event with one argument through a pooled argument
// frame; a steady-state raise performs no heap allocation. Semantics are
// identical to Raise(a1).
func (e *Event) Raise1(a1 any) (any, error) {
	if e.async {
		return nil, e.RaiseAsync(a1)
	}
	bp := argPool.Get().(*[]any)
	*bp = append((*bp)[:0], a1)
	return e.raisePooled(bp)
}

// Raise2 raises the event with two arguments through a pooled argument
// frame. Semantics are identical to Raise(a1, a2).
func (e *Event) Raise2(a1, a2 any) (any, error) {
	if e.async {
		return nil, e.RaiseAsync(a1, a2)
	}
	bp := argPool.Get().(*[]any)
	*bp = append((*bp)[:0], a1, a2)
	return e.raisePooled(bp)
}

// Raise3 raises the event with three arguments through a pooled argument
// frame. Semantics are identical to Raise(a1, a2, a3).
func (e *Event) Raise3(a1, a2, a3 any) (any, error) {
	if e.async {
		return nil, e.RaiseAsync(a1, a2, a3)
	}
	bp := argPool.Get().(*[]any)
	*bp = append((*bp)[:0], a1, a2, a3)
	return e.raisePooled(bp)
}

// Raise4 raises the event with four arguments through a pooled argument
// frame. Semantics are identical to Raise(a1, a2, a3, a4).
func (e *Event) Raise4(a1, a2, a3, a4 any) (any, error) {
	if e.async {
		return nil, e.RaiseAsync(a1, a2, a3, a4)
	}
	bp := argPool.Get().(*[]any)
	*bp = append((*bp)[:0], a1, a2, a3, a4)
	return e.raisePooled(bp)
}

// Raise5 raises the event with five arguments through a pooled argument
// frame — the widest shape Table 1 sweeps. Semantics are identical to
// Raise(a1, a2, a3, a4, a5).
func (e *Event) Raise5(a1, a2, a3, a4, a5 any) (any, error) {
	if e.async {
		return nil, e.RaiseAsync(a1, a2, a3, a4, a5)
	}
	bp := argPool.Get().(*[]any)
	*bp = append((*bp)[:0], a1, a2, a3, a4, a5)
	return e.raisePooled(bp)
}

// checkArgs validates the raise argument vector: arity always, dynamic
// types when the dispatcher runs with purity checking (the stand-in for
// Modula-3's static call-site checking, which the typed spin wrappers
// restore at compile time).
func (e *Event) checkArgs(args []any) error {
	if len(args) != e.sig.Arity() {
		return fmt.Errorf("%w: event %s got %d, want %d", ErrBadArity, e.name, len(args), e.sig.Arity())
	}
	if e.d.purity {
		for i, a := range args {
			if !e.sig.Args[i].AssignableFrom(rtti.TypeOf(a)) {
				return fmt.Errorf("%w: event %s arg %d: %v not assignable to %v",
					ErrBadArgType, e.name, i, rtti.TypeOf(a), e.sig.Args[i])
			}
		}
	}
	return nil
}

// Stats is a snapshot of an event's dispatch statistics, the data behind
// Table 3.
type Stats struct {
	// Raised counts raises of the event.
	Raised int64
	// Fired counts handler invocations (across all handlers).
	Fired int64
	// Time is the cumulative virtual time spent handling the event
	// (dispatch plus handler bodies), in metered configurations.
	Time vtime.Duration
	// Handlers and Guards count currently installed handlers and guards
	// (installer plus imposed), as reported in Table 3's last columns.
	Handlers int
	Guards   int
}

// Stats returns a snapshot of the event's statistics.
func (e *Event) Stats() Stats {
	e.mu.Lock()
	handlers := len(e.bindings)
	guards := 0
	for _, b := range e.bindings {
		guards += b.countGuards()
	}
	e.mu.Unlock()
	return Stats{
		Raised:   e.raised.Load(),
		Fired:    e.firedTotal.Load(),
		Time:     vtime.Duration(e.timeNanos.Load()),
		Handlers: handlers,
		Guards:   guards,
	}
}
