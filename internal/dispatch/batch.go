package dispatch

import (
	"fmt"
	"sync"

	"spin/internal/admit"
	"spin/internal/codegen"
	"spin/internal/stripe"
	"spin/internal/vtime"
)

// Batched raise ingress: the vectorized entry points high-rate producers
// (the netstack's RX packet trains, the httpd's accept bursts) use to pay
// the per-raise fixed costs once per batch instead of once per frame. A
// batch is observably identical to a loop of single raises — same fire
// counts and order, same results fold, same counter totals, same admission
// ledger — including under mid-batch plan churn: the batch executors stop
// at a plan swap and the loop here reloads and continues, so an uninstall
// between frames is visible to the next frame exactly as it is to the next
// iteration of a raise loop. See DESIGN.md decision 16.

// ArgFrame is one raise's argument vector within a batch.
type ArgFrame = codegen.ArgFrame

// batchChunk is the number of frame headers the pooled chunks behind the
// arity-specialized RaiseBatch0..RaiseBatch5 entry points carry; larger
// batches are processed in chunks of this size over one pooled buffer.
const batchChunk = 64

// frameChunkPool recycles frame-header chunks for the arity-specialized
// batch entry points. The headers must live on the heap — they pass
// through the executor's function-pointer call, which defeats escape
// analysis — but pooling makes the steady state allocation free. Only the
// headers are pooled; the argument words stay in the caller's flat slice.
var frameChunkPool = sync.Pool{
	New: func() any {
		b := make([]ArgFrame, batchChunk)
		return &b
	},
}

// BatchOutcome reports how one RaiseBatch's frames were disposed. Every
// frame ends in exactly one of Raised (dispatched to the plan), Rejected
// (failed argument validation), Shed, or Coalesced (async admission), so
// the counts always sum to the number of frames offered.
type BatchOutcome struct {
	// Raised counts frames dispatched to the plan (for async batches:
	// admitted to the queue or handed to the spawner).
	Raised int
	// Fired counts handler invocations across all dispatched frames,
	// excluding default-handler firings.
	Fired int64
	// Defaulted counts frames handled by the default handler; NoHandler
	// counts frames on which nothing fired (ErrNoHandler in loop form);
	// Ambiguous counts frames with multiple unmerged results.
	Defaulted int
	NoHandler int
	Ambiguous int
	// Rejected counts frames that failed argument validation (arity, and
	// dynamic types under purity checking) or async-raise legality.
	Rejected int
	// Shed and Coalesced count async frames the admission policy shed or
	// merged into a pending raise.
	Shed      int
	Coalesced int
	// Result is the last dispatched frame's merged result (synchronous
	// batches on result events).
	Result any
}

// fold accumulates one single-raise outcome (the per-frame fallback path).
func (o *BatchOutcome) fold(u codegen.Outcome) {
	o.Raised++
	o.Fired += int64(u.Fired)
	switch {
	case u.UsedDefault:
		o.Defaulted++
	case u.Fired == 0:
		o.NoHandler++
	}
	if u.Ambiguous {
		o.Ambiguous++
	}
	o.Result = u.Result
}

// foldBatch accumulates one executor call's outcome covering n frames.
func (o *BatchOutcome) foldBatch(b codegen.BatchOutcome, n int) {
	if n == 0 {
		return
	}
	o.Raised += n
	o.Fired += b.Fired
	o.Defaulted += b.Defaulted
	o.NoHandler += b.NoHandler
	o.Ambiguous += b.Ambiguous
	o.Result = b.Result
}

// Merge folds another outcome — a later chunk of the same logical batch —
// into this one.
func (o *BatchOutcome) Merge(p BatchOutcome) {
	o.Fired += p.Fired
	o.Defaulted += p.Defaulted
	o.NoHandler += p.NoHandler
	o.Ambiguous += p.Ambiguous
	o.Rejected += p.Rejected
	o.Shed += p.Shed
	o.Coalesced += p.Coalesced
	if p.Raised > 0 {
		o.Result = p.Result
	}
	o.Raised += p.Raised
}

// Err summarizes the batch under the single-raise error contract, built
// lazily so the all-success path never constructs an error. Severity
// order: rejection (the raise never dispatched), overload shed, no
// handler, ambiguous result. errors.Is works against the usual sentinels.
func (o BatchOutcome) Err() error {
	n := o.Raised + o.Rejected + o.Shed + o.Coalesced
	switch {
	case o.Rejected > 0:
		return fmt.Errorf("%w: %d of %d frames rejected", ErrBadArity, o.Rejected, n)
	case o.Shed > 0:
		return fmt.Errorf("%w: %d of %d frames shed", admit.ErrOverload, o.Shed, n)
	case o.NoHandler > 0:
		return fmt.Errorf("%w: %d of %d frames unhandled", ErrNoHandler, o.NoHandler, n)
	case o.Ambiguous > 0:
		return fmt.Errorf("%w: %d of %d frames ambiguous", ErrAmbiguousResult, o.Ambiguous, n)
	}
	return nil
}

// RaiseBatch announces the event once per frame through the vectorized
// ingress tier: the plan is loaded once, one stripe shard index and (for
// traced plans) one sampling decision serve the whole batch, and the
// specialized executors run the frame loop inside the stenciled body.
// Semantics are those of a loop of Raise calls — same handlers in the same
// order per frame, same counter totals, and plan churn between frames
// (uninstall, quarantine, trace toggle) is honored mid-batch via the
// atomic plan swap.
//
// The batch does not copy frames; as with Raise(args...), a plan with
// asynchronous or ephemeral handlers may retain each frame past the call.
// Metered dispatchers and purity-checking dispatchers take the per-frame
// fallback so virtual-time charges and monitor semantics stay
// byte-identical to the loop form.
func (e *Event) RaiseBatch(frames []ArgFrame) BatchOutcome {
	var out BatchOutcome
	if len(frames) == 0 {
		return out
	}
	if e.async {
		return e.raiseBatchAsync(frames)
	}
	if e.d.purity || e.d.cpu != nil {
		return e.raiseBatchLoop(frames)
	}
	arity := e.sig.Arity()
	for i := range frames {
		if len(frames[i]) != arity {
			// Mixed-arity batch: the loop form rejects exactly the bad
			// frames and dispatches the rest; fall back to it.
			return e.raiseBatchLoop(frames)
		}
	}
	e.raiseBatchFrames(&out, frames)
	return out
}

// raiseBatchFrames is the vectorized synchronous core: one raised-counter
// add and one stripe index for the batch, then the plan's batch executor,
// reloading and continuing on the new plan whenever the executor reports
// it was superseded mid-batch. Argument validity (arity) must be
// pre-checked by the caller.
func (e *Event) raiseBatchFrames(out *BatchOutcome, frames []ArgFrame) {
	idx := stripe.Index()
	e.raised.AddAt(idx, int64(len(frames)))
	plan := e.plan.Load()
	done := 0
	for done < len(frames) {
		b, k := plan.ExecuteBatch(e.env, frames[done:], idx, &e.plan)
		out.foldBatch(b, k)
		done += k
		if done < len(frames) {
			plan = e.plan.Load()
		}
	}
}

// raiseBatchLoop dispatches frames one at a time through the exact
// single-raise path: the fallback for metered dispatchers (byte-identical
// virtual-time charge sequences), purity checking (per-frame monitor
// barriers), and mixed-arity batches (per-frame rejection).
func (e *Event) raiseBatchLoop(frames []ArgFrame) BatchOutcome {
	var out BatchOutcome
	for i := range frames {
		u, err := e.raiseOut(e.plan.Load(), frames[i])
		if err != nil {
			out.Rejected++
			continue
		}
		out.fold(u)
	}
	return out
}

// raiseBatchAsync is RaiseBatch for asynchronous events. Event-level
// legality (result-needs-default, by-reference arguments) is hoisted once
// per batch; invalid frames are rejected per frame as the loop form would
// reject them. On a queued event the whole batch is admitted in a single
// ledger transaction (admit.Queue.SubmitBatch); unqueued events spawn one
// thread of control that drains the batch in order, preserving per-event
// FIFO — and amortizing the spawn, which is the point of batching the
// async path (the loop form spawns per raise; see DESIGN.md decision 16).
func (e *Event) raiseBatchAsync(frames []ArgFrame) BatchOutcome {
	var out BatchOutcome
	n := len(frames)
	if e.sig.HasResult() {
		e.mu.Lock()
		hasDefault := e.defaultB != nil
		e.mu.Unlock()
		if !hasDefault {
			out.Rejected = n
			return out
		}
	}
	if e.sig.HasByRef() {
		out.Rejected = n
		return out
	}
	work := frames
	arity := e.sig.Arity()
	bad := 0
	for i := range frames {
		if e.checkArgs(frames[i]) != nil {
			bad++
		}
	}
	if bad > 0 {
		out.Rejected = bad
		work = make([]ArgFrame, 0, n-bad)
		for i := range frames {
			if e.checkArgs(frames[i]) == nil {
				work = append(work, frames[i])
			}
		}
		if len(work) == 0 {
			return out
		}
	}
	if q := e.plan.Load().AdmitQueue(); q != nil && e.d.sim == nil {
		e.d.cpu.Begin(vtime.AccountEvents)
		st := e.d.submitRaiseBatch(q, e, work)
		e.d.cpu.End()
		out.Raised = st.Admitted
		out.Shed = st.Shed
		out.Coalesced = st.Coalesced
		return out
	}
	e.d.cpu.Begin(vtime.AccountEvents)
	e.d.spawn(arity, func() {
		for i := range work {
			_, _ = e.raiseSync(work[i])
		}
	})
	e.d.cpu.End()
	out.Raised = len(work)
	return out
}

// RaiseBatch0 raises a no-parameter event n times through the batched
// ingress tier without allocating.
func (e *Event) RaiseBatch0(n int) BatchOutcome {
	var out BatchOutcome
	if n <= 0 {
		return out
	}
	if e.async || e.d.purity || e.d.cpu != nil || e.sig.Arity() != 0 {
		return e.RaiseBatch(make([]ArgFrame, n))
	}
	bp := frameChunkPool.Get().(*[]ArgFrame)
	frames := *bp
	for j := range frames {
		frames[j] = nil
	}
	for off := 0; off < n; off += batchChunk {
		k := n - off
		if k > batchChunk {
			k = batchChunk
		}
		e.raiseBatchFrames(&out, frames[:k])
	}
	frameChunkPool.Put(bp)
	return out
}

// RaiseBatch1 raises the event once per element of flat (one argument per
// frame) through pooled frame headers; a steady-state batch performs no
// heap allocation. Semantics are identical to a loop of Raise1 calls.
func (e *Event) RaiseBatch1(flat []any) BatchOutcome { return e.raiseBatchFlat(flat, 1) }

// RaiseBatch2 raises the event with two arguments per frame, laid out
// row-major in flat: frame i is flat[2i], flat[2i+1].
func (e *Event) RaiseBatch2(flat []any) BatchOutcome { return e.raiseBatchFlat(flat, 2) }

// RaiseBatch3 raises the event with three arguments per frame, row-major.
func (e *Event) RaiseBatch3(flat []any) BatchOutcome { return e.raiseBatchFlat(flat, 3) }

// RaiseBatch4 raises the event with four arguments per frame, row-major.
func (e *Event) RaiseBatch4(flat []any) BatchOutcome { return e.raiseBatchFlat(flat, 4) }

// RaiseBatch5 raises the event with five arguments per frame, row-major —
// the widest specialized shape.
func (e *Event) RaiseBatch5(flat []any) BatchOutcome { return e.raiseBatchFlat(flat, 5) }

// raiseBatchFlat carves width-sized frames out of flat (row-major) and
// dispatches them in pooled chunks. Frames are zero-copy subslices while
// the published plan cannot retain them; if a plan with asynchronous or
// ephemeral handlers is (or becomes) published, the remaining frames get
// private copies, exactly as raisePooled decides per raise. A ragged tail
// (len(flat) not a multiple of width) is rejected as one malformed frame.
func (e *Event) raiseBatchFlat(flat []any, width int) BatchOutcome {
	var out BatchOutcome
	n := len(flat) / width
	if len(flat)%width != 0 {
		out.Rejected++
	}
	if n == 0 {
		return out
	}
	if e.async || e.d.purity || e.d.cpu != nil || e.sig.Arity() != width {
		frames := make([]ArgFrame, n)
		for i := range frames {
			frames[i] = flat[i*width : (i+1)*width : (i+1)*width]
		}
		sub := e.RaiseBatch(frames)
		out.Merge(sub)
		return out
	}
	bp := frameChunkPool.Get().(*[]ArgFrame)
	frames := *bp
	done := 0
	for done < n {
		plan := e.plan.Load()
		if plan.RetainsArgs() {
			// A spawned handler may hold each frame past the raise: give
			// the remaining frames private copies through the single-raise
			// path (retaining plans are off the zero-alloc fast path
			// anyway, exactly as in raisePooled).
			for ; done < n; done++ {
				private := make([]any, width)
				copy(private, flat[done*width:(done+1)*width])
				u, err := e.raiseOut(e.plan.Load(), private)
				if err != nil {
					out.Rejected++
					continue
				}
				out.fold(u)
			}
			break
		}
		k := n - done
		if k > batchChunk {
			k = batchChunk
		}
		for j := 0; j < k; j++ {
			at := (done + j) * width
			frames[j] = flat[at : at+width : at+width]
		}
		idx := stripe.Index()
		b, m := plan.ExecuteBatch(e.env, frames[:k], idx, &e.plan)
		// Count raised after the fact: frames beyond m re-dispatch on the
		// reloaded plan next iteration, so counting m (not k) keeps the
		// raised total exact.
		e.raised.AddAt(idx, int64(m))
		out.foldBatch(b, m)
		done += m
	}
	for j := range frames {
		frames[j] = nil
	}
	frameChunkPool.Put(bp)
	return out
}
