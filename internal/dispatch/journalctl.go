package dispatch

import (
	"fmt"
	"time"

	"spin/internal/journal"
	"spin/internal/rtti"
)

// This file is the dispatcher's journal controller: the bridge between
// the mechanism-free journal (internal/journal) and the dispatch
// machinery, mirroring faultctl.go and admitctl.go. Lifecycle transitions
// — installs, uninstalls, ordering changes, quarantine and readmission,
// degradation-level transitions, quota changes — are emitted as journal
// records at the point the dispatcher commits them (under the event's
// mutex, so journal order matches commit order per event); sampled raise
// records are drawn on the hot path through the journal compiled into
// each plan. Boot-time replay re-drives a sealed journal through the
// normal control plane (ReplayApplier), reconstructing the full
// binding/quarantine/quota/degradation state.
//
// What is deliberately NOT journaled: result handlers, authorizers, and
// imposed guards. Those are authority wiring — code the event's owning
// module runs at boot — not dynamic state; journaling them would record
// function identities the journal cannot resolve. Construction-time
// options (WithHandlerQuota, the admission ladder) are configuration the
// boot image already carries; only the runtime SetQuotas override is
// journaled.

// WithJournal attaches a lifecycle journal to the dispatcher: every
// binding lifecycle transition is recorded, and each event's dispatch
// plan is compiled with the journal's sampled raise hook. Without this
// option no journal field is compiled into plans and the raise path is
// untouched (the zero-cost-off contract tracing, fault capture, and
// admission share; TestJournalOffZeroAlloc enforces it).
func WithJournal(j *journal.Journal) Option {
	return func(d *Dispatcher) { d.jrnl = j }
}

// Journal returns the dispatcher's lifecycle journal, or nil.
func (d *Dispatcher) Journal() *journal.Journal { return d.jrnl }

// journalOn reports whether lifecycle emission is active: a journal is
// attached and boot replay is not currently re-driving history (replayed
// operations are already in the journal being replayed; re-emitting them
// would duplicate records with fresh IDs).
func (d *Dispatcher) journalOn() bool { return d.jrnl != nil && !d.jmuted.Load() }

// journalFlags encodes b's shape and ordering constraint into install
// flags. dispatch.OrderKind values coincide with the journal's ordering
// encoding (0 unordered, 1 first, 2 last, 3 before, 4 after).
func journalFlags(b *Binding) uint32 {
	var f uint32
	if b.async {
		f |= journal.FlagAsync
	}
	if b.ephemeral {
		f |= journal.FlagEphemeral
	}
	if b.filter {
		f |= journal.FlagFilter
	}
	if b.intrinsic {
		f |= journal.FlagIntrinsic
	}
	if b.isDefault {
		f |= journal.FlagDefault
	}
	f |= uint32(b.order.Kind) << journal.OrderShift
	return f
}

// journalInstall assigns b its journal ID and emits the install record.
// Caller holds the event's mutex, or the binding has not escaped yet
// (DefineEvent's intrinsic).
func (d *Dispatcher) journalInstall(e *Event, b *Binding) {
	if !d.journalOn() {
		return
	}
	if b.journalID == 0 {
		b.journalID = d.jseq.Add(1)
	}
	rec := journal.Record{
		Kind:     journal.KindInstall,
		ID:       b.journalID,
		Event:    e.name,
		Handler:  b.HandlerName(),
		Flags:    journalFlags(b),
		Priority: int32(b.priority),
		A:        int64(b.deadline),
	}
	if m := b.Installer(); m != nil {
		rec.Module = m.Name()
	}
	if ref := b.order.Ref; ref != nil {
		rec.RefID = ref.journalID
	}
	d.jrnl.Record(rec)
}

// journalBinding emits one binding-referencing lifecycle record
// (uninstall, quarantine, probation, restore).
func (d *Dispatcher) journalBinding(kind journal.Kind, b *Binding, a int64) {
	if !d.journalOn() || b.journalID == 0 {
		return
	}
	rec := journal.Record{
		Kind:    kind,
		ID:      b.journalID,
		Event:   b.event.name,
		Handler: b.HandlerName(),
		A:       a,
	}
	if m := b.Installer(); m != nil {
		rec.Module = m.Name()
	}
	d.jrnl.Record(rec)
}

// journalSetOrder emits a dynamic ordering change for b, capturing the
// new constraint the way install records do. Caller holds e.mu.
func (d *Dispatcher) journalSetOrder(e *Event, b *Binding) {
	if !d.journalOn() || b.journalID == 0 {
		return
	}
	rec := journal.Record{
		Kind:  journal.KindSetOrder,
		ID:    b.journalID,
		Event: e.name,
		Flags: uint32(b.order.Kind) << journal.OrderShift,
	}
	if ref := b.order.Ref; ref != nil {
		rec.RefID = ref.journalID
	}
	d.jrnl.Record(rec)
}

// journalModule emits a module-level quarantine marker. The journal
// records effects, not intents: the marker carries only the
// install-denial set change, and the per-binding flips a module operation
// caused are emitted as individual KindQuarantine/KindRestore records, so
// replay never re-derives which bindings a module operation touched.
func (d *Dispatcher) journalModule(kind journal.Kind, m *rtti.Module, a int64) {
	if !d.journalOn() || m == nil {
		return
	}
	d.jrnl.Record(journal.Record{Kind: kind, Module: m.Name(), A: a})
}

// journalDegrade emits a degradation-level transition.
func (d *Dispatcher) journalDegrade(from, to int, name string) {
	if !d.journalOn() {
		return
	}
	d.jrnl.Record(journal.Record{
		Kind:  journal.KindDegrade,
		Event: name,
		A:     int64(from),
		B:     int64(to),
	})
}

// journalQuota emits a runtime quota change.
func (d *Dispatcher) journalQuota(perModule, global int) {
	if !d.journalOn() {
		return
	}
	d.jrnl.Record(journal.Record{
		Kind: journal.KindQuota,
		A:    int64(perModule),
		B:    int64(global),
	})
}

// SetQuotas changes the installation quotas at runtime (zero disables a
// limit) and journals the change, so a replayed boot re-establishes the
// same resource-accounting regime before replaying the installs it
// governed. Construction-time quotas (WithHandlerQuota, WithHandlerLimit)
// are boot configuration and are not journaled.
func (d *Dispatcher) SetQuotas(perModule, global int) {
	d.quota.mu.Lock()
	d.quota.perModule = perModule
	d.quota.global = global
	d.quota.mu.Unlock()
	d.journalQuota(perModule, global)
}

// Quotas returns the current installation quota limits (zero =
// unlimited).
func (d *Dispatcher) Quotas() (perModule, global int) {
	d.quota.mu.Lock()
	defer d.quota.mu.Unlock()
	return d.quota.perModule, d.quota.global
}

// QuarantineBinding compiles b out of its event's dispatch plan without
// involving the fault ledger: the operator (and replay) override. Unlike
// fault-driven quarantine no probation timer is armed; the binding stays
// out until ReadmitBinding. Returns false if b was already quarantined.
func (d *Dispatcher) QuarantineBinding(b *Binding) bool {
	if b == nil {
		return false
	}
	e := b.event
	e.mu.Lock()
	already := b.quarantined.Swap(true)
	if !already {
		e.recompile(false)
		d.journalBinding(journal.KindQuarantine, b, 0)
	}
	e.mu.Unlock()
	return !already
}

// ReadmitBinding compiles a quarantined binding back into its event's
// plan, clearing any fault- or operator-driven quarantine. Returns false
// if b was not quarantined.
func (d *Dispatcher) ReadmitBinding(b *Binding) bool {
	if b == nil {
		return false
	}
	e := b.event
	e.mu.Lock()
	was := b.quarantined.Swap(false)
	if was {
		e.recompile(false)
		d.journalBinding(journal.KindRestore, b, 0)
	}
	e.mu.Unlock()
	return was
}

// ForceDegradationLevel pins the overload controller at level (0 =
// normal), applying the binding changes and journaling the transition the
// same way load-driven transitions do. It is the operator override and
// the replay path for KindDegrade records; subsequent load observations
// resume normal escalation from the forced level. Returns the transition;
// changed is false when no degradation ladder is configured or the level
// is already current.
func (d *Dispatcher) ForceDegradationLevel(level int) (from, to int, changed bool) {
	a := d.admit
	if a.degrader == nil {
		return 0, 0, false
	}
	a.mu.Lock()
	from, to, changed = a.degrader.Force(level)
	var name string
	if changed {
		name = a.degrader.LevelName(to)
	}
	a.mu.Unlock()
	if changed {
		a.applyLevel(from, to, name)
	}
	return from, to, changed
}

// setModuleDenied is the replay path for module quarantine markers: it
// changes only the install-denial set. The per-binding compile-outs a
// module operation caused are replayed from their own records.
func (d *Dispatcher) setModuleDenied(m *rtti.Module, denied bool) {
	d.faults.mu.Lock()
	if denied {
		d.faults.qModules[m] = true
	} else {
		delete(d.faults.qModules, m)
	}
	d.faults.mu.Unlock()
}

// JournalResolve maps a journaled (module, handler) name pair back to
// live handler code for boot-time replay. Handlers are code: the journal
// records identity, not implementation, so the boot image supplies the
// resolver. The returned options should carry only what the journal
// cannot: guards, closures, credentials. Shape (async/ephemeral/filter),
// ordering, priority, and deadlines are reconstructed from the record and
// appended after the resolver's options.
type JournalResolve func(module, handler string) (Handler, []InstallOption, bool)

// ReplayApplier re-drives journal records through the dispatcher's normal
// control plane: installs go through Event.Install (typechecking, quotas,
// authorization, plan recompilation — the same path live installs take),
// quarantines through the operator overrides, degradation through the
// forced-level path. It implements journal.Applier.
type ReplayApplier struct {
	d        *Dispatcher
	resolve  JournalResolve
	mods     map[string]*rtti.Module
	bindings map[uint64]*Binding
}

// NewReplayApplier builds an applier over d. Use Dispatcher.ReplayJournal
// for the common whole-journal case; the applier is exported for tests
// and tools that drive journal.Replay themselves.
func NewReplayApplier(d *Dispatcher, resolve JournalResolve) *ReplayApplier {
	return &ReplayApplier{
		d:        d,
		resolve:  resolve,
		mods:     make(map[string]*rtti.Module),
		bindings: make(map[uint64]*Binding),
	}
}

// Binding returns the live binding a replayed journal ID mapped to, for
// tests and tools.
func (ra *ReplayApplier) Binding(id uint64) *Binding { return ra.bindings[id] }

// module resolves a module name to its live descriptor, scanning the
// dispatcher's events (authorities and installers) on a miss.
func (ra *ReplayApplier) module(name string) (*rtti.Module, bool) {
	if m, ok := ra.mods[name]; ok {
		return m, true
	}
	for _, e := range ra.d.Events() {
		if m := e.Authority(); m != nil {
			ra.mods[m.Name()] = m
		}
		for _, b := range e.Bindings() {
			if m := b.Installer(); m != nil {
				ra.mods[m.Name()] = m
			}
		}
	}
	m, ok := ra.mods[name]
	return m, ok
}

// noteID advances the dispatcher's journal ID counter past id, so
// bindings installed after replay never collide with replayed IDs.
func (ra *ReplayApplier) noteID(id uint64) {
	for {
		cur := ra.d.jseq.Load()
		if cur >= id || ra.d.jseq.CompareAndSwap(cur, id) {
			return
		}
	}
}

// Apply implements journal.Applier.
func (ra *ReplayApplier) Apply(rec journal.Record) error {
	d := ra.d
	switch rec.Kind {
	case journal.KindInstall:
		return ra.applyInstall(rec)
	case journal.KindUninstall:
		b := ra.bindings[rec.ID]
		if b == nil {
			return fmt.Errorf("uninstall of unknown binding %d", rec.ID)
		}
		delete(ra.bindings, rec.ID)
		if b.isDefault {
			return b.event.SetDefaultHandler(Handler{})
		}
		return b.event.Uninstall(b)
	case journal.KindSetOrder:
		b := ra.bindings[rec.ID]
		if b == nil {
			return fmt.Errorf("set-order of unknown binding %d", rec.ID)
		}
		o := Order{Kind: OrderKind(journal.OrderKind(rec.Flags))}
		if o.Kind == OrderBefore || o.Kind == OrderAfter {
			ref := ra.bindings[rec.RefID]
			if ref == nil {
				return fmt.Errorf("set-order of %d against unknown binding %d", rec.ID, rec.RefID)
			}
			o.Ref = ref
		}
		return b.event.SetOrder(b, o)
	case journal.KindQuarantine:
		b := ra.bindings[rec.ID]
		if b == nil {
			return fmt.Errorf("quarantine of unknown binding %d", rec.ID)
		}
		d.QuarantineBinding(b)
		return nil
	case journal.KindProbation, journal.KindRestore:
		b := ra.bindings[rec.ID]
		if b == nil {
			return fmt.Errorf("%s of unknown binding %d", rec.Kind, rec.ID)
		}
		d.ReadmitBinding(b)
		return nil
	case journal.KindModuleQuarantine, journal.KindModuleReadmit:
		m, ok := ra.module(rec.Module)
		if !ok {
			return fmt.Errorf("unknown module %q", rec.Module)
		}
		d.setModuleDenied(m, rec.Kind == journal.KindModuleQuarantine)
		return nil
	case journal.KindDegrade:
		if d.admit.degrader == nil {
			if rec.B == 0 {
				return nil
			}
			return fmt.Errorf("journaled degradation level %d but no ladder configured", rec.B)
		}
		d.ForceDegradationLevel(int(rec.B))
		return nil
	case journal.KindQuota:
		d.SetQuotas(int(rec.A), int(rec.B))
		return nil
	case journal.KindRaise:
		return nil // statistical; nothing to re-drive
	case journal.KindShardMove:
		// An audit marker: the departures and arrivals it explains are
		// replayed from their own uninstall/install records.
		return nil
	}
	return fmt.Errorf("unexpected record kind %v", rec.Kind)
}

// applyInstall replays one install record: intrinsic installs bind the
// journal ID to the binding DefineEvent already created; default and
// regular installs resolve the handler and re-drive the live install
// path.
func (ra *ReplayApplier) applyInstall(rec journal.Record) error {
	d := ra.d
	e, ok := d.Lookup(rec.Event)
	if !ok {
		return fmt.Errorf("unknown event %q", rec.Event)
	}
	ra.noteID(rec.ID)
	if rec.Flags&journal.FlagIntrinsic != 0 {
		b := e.IntrinsicBinding()
		if b == nil {
			return fmt.Errorf("event %q has no intrinsic binding", rec.Event)
		}
		if b.journalID == 0 {
			b.journalID = rec.ID
		}
		ra.bindings[rec.ID] = b
		return nil
	}
	h, ropts, ok := ra.resolve(rec.Module, rec.Handler)
	if !ok {
		return fmt.Errorf("no handler for %s.%s (resolver)", rec.Module, rec.Handler)
	}
	if rec.Flags&journal.FlagDefault != 0 {
		if err := e.SetDefaultHandler(h); err != nil {
			return err
		}
		e.mu.Lock()
		b := e.defaultB
		if b != nil && b.journalID == 0 {
			b.journalID = rec.ID
		}
		e.mu.Unlock()
		ra.bindings[rec.ID] = b
		return nil
	}
	opts := append([]InstallOption(nil), ropts...)
	if rec.Flags&journal.FlagAsync != 0 {
		opts = append(opts, Async())
		if rec.A > 0 && rec.Flags&journal.FlagEphemeral == 0 {
			opts = append(opts, WithDeadline(time.Duration(rec.A)))
		}
	}
	if rec.Flags&journal.FlagEphemeral != 0 {
		opts = append(opts, Ephemeral(time.Duration(rec.A)))
	}
	if rec.Flags&journal.FlagFilter != 0 {
		opts = append(opts, AsFilter())
	}
	if rec.Priority != 0 {
		opts = append(opts, WithPriority(int(rec.Priority)))
	}
	switch journal.OrderKind(rec.Flags) {
	case int(OrderFirst):
		opts = append(opts, First())
	case int(OrderLast):
		opts = append(opts, Last())
	case int(OrderBefore), int(OrderAfter):
		ref := ra.bindings[rec.RefID]
		if ref == nil {
			return fmt.Errorf("install %d orders against unknown binding %d", rec.ID, rec.RefID)
		}
		if journal.OrderKind(rec.Flags) == int(OrderBefore) {
			opts = append(opts, Before(ref))
		} else {
			opts = append(opts, After(ref))
		}
	}
	b, err := e.Install(h, opts...)
	if err != nil {
		return err
	}
	if b.journalID == 0 {
		b.journalID = rec.ID
	}
	ra.bindings[rec.ID] = b
	return nil
}

// ReplayJournal reconstructs the dispatcher's binding, quarantine, quota,
// and degradation state from a journal byte snapshot: sealed records are
// re-driven in order through the normal control plane, with lifecycle
// emission muted so replayed operations are not re-journaled. Only the
// sealed (fsynced, chain-verified) prefix is applied; an unsealed crash
// tail is reported in the summary but never trusted. The returned applier
// maps journal IDs to the live bindings replay created.
func (d *Dispatcher) ReplayJournal(data []byte, resolve JournalResolve) (*ReplayApplier, journal.Summary, error) {
	ra := NewReplayApplier(d, resolve)
	d.jmuted.Store(true)
	defer d.jmuted.Store(false)
	sum, err := journal.Replay(data, ra)
	return ra, sum, err
}
