package dispatch

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"spin/internal/codegen"
	"spin/internal/rtti"
)

// Tests for the zero-allocation, multicore-scalable raise fast path: the
// cached per-event Env, the arity-specialized Raise0..Raise5 entry points
// with pooled argument frames, and the striped statistics counters.

var fastMod = rtti.NewModule("RaiseFast")

func fastSig(n int) rtti.Signature {
	ts := make([]rtti.Type, n)
	for i := range ts {
		ts[i] = rtti.Word
	}
	return rtti.Sig(nil, ts...)
}

func fastHandler(n int) Handler {
	return Handler{
		Proc: &rtti.Proc{Name: "RaiseFast.H", Module: fastMod, Sig: fastSig(n)},
		Fn:   func(any, []any) any { return nil },
	}
}

// TestRaiseUnmeteredDispatcher is the nil-CPU consistency check: a raise on
// a dispatcher without a meter must work, keep counting statistics, and
// accumulate no virtual time.
func TestRaiseUnmeteredDispatcher(t *testing.T) {
	d := New() // no WithCPU: d.cpu is nil
	if d.CPU() != nil {
		t.Fatal("expected unmetered dispatcher")
	}
	ev, err := d.DefineEvent("Fast.Unmetered", fastSig(1),
		WithIntrinsic(fastHandler(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ev.Raise(uint64(i)); err != nil {
			t.Fatalf("raise %d: %v", i, err)
		}
	}
	if _, err := ev.Raise1(uint64(9)); err != nil {
		t.Fatalf("Raise1: %v", err)
	}
	st := ev.Stats()
	if st.Raised != 6 || st.Fired != 6 {
		t.Fatalf("stats = %+v, want Raised=6 Fired=6", st)
	}
	if st.Time != 0 {
		t.Fatalf("unmetered event accumulated virtual time %v", st.Time)
	}
}

// TestRaiseBypassZeroAllocs asserts the single-intrinsic bypass raises with
// zero heap allocations, both through the generic variadic path (with a
// caller-owned argument vector) and through the arity-specialized path.
func TestRaiseBypassZeroAllocs(t *testing.T) {
	d := New()
	ev, err := d.DefineEvent("Fast.Bypass", fastSig(2), WithIntrinsic(fastHandler(2)))
	if err != nil {
		t.Fatal(err)
	}
	av := []any{uint64(1), uint64(2)}
	if n := testing.AllocsPerRun(1000, func() { _, _ = ev.Raise(av...) }); n != 0 {
		t.Errorf("bypass Raise(av...) allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { _, _ = ev.Raise2(uint64(1), uint64(2)) }); n != 0 {
		t.Errorf("bypass Raise2 allocates %v/op, want 0", n)
	}
}

// TestRaiseInlinePlanZeroAllocs asserts a guarded fully-inline dispatch
// plan (the Table 1 inline configuration) raises with zero heap
// allocations.
func TestRaiseInlinePlanZeroAllocs(t *testing.T) {
	d := New(WithCodegenOptions(codegen.Options{DisableBypass: true}))
	ev, err := d.DefineEvent("Fast.Inline", fastSig(2))
	if err != nil {
		t.Fatal(err)
	}
	var cell atomic.Uint64
	for i := 0; i < 5; i++ {
		if _, err := ev.Install(Handler{
			Proc:   &rtti.Proc{Name: "RaiseFast.I", Module: fastMod, Sig: fastSig(2)},
			Inline: codegen.Nop(),
		}, WithGuard(Guard{Pred: codegen.GlobalEq(&cell, 0)})); err != nil {
			t.Fatal(err)
		}
	}
	av := []any{uint64(1), uint64(2)}
	if n := testing.AllocsPerRun(1000, func() { _, _ = ev.Raise(av...) }); n != 0 {
		t.Errorf("inline plan Raise(av...) allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { _, _ = ev.Raise2(uint64(1), uint64(2)) }); n != 0 {
		t.Errorf("inline plan Raise2 allocates %v/op, want 0", n)
	}
	st := ev.Stats()
	if st.Fired == 0 {
		t.Fatal("handlers never fired")
	}
}

// TestRaiseOutOfLinePlanZeroAllocs asserts the out-of-line (no-inline)
// unrolled loop also raises without allocation: synchronous handlers are
// called directly, not through a per-step closure.
func TestRaiseOutOfLinePlanZeroAllocs(t *testing.T) {
	d := New(WithCodegenOptions(codegen.Options{DisableBypass: true}))
	ev, err := d.DefineEvent("Fast.OutOfLine", fastSig(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ev.Install(fastHandler(1)); err != nil {
			t.Fatal(err)
		}
	}
	av := []any{uint64(7)}
	if n := testing.AllocsPerRun(1000, func() { _, _ = ev.Raise(av...) }); n != 0 {
		t.Errorf("out-of-line Raise(av...) allocates %v/op, want 0", n)
	}
}

// TestSpecializedExecutorZeroAllocs asserts the remaining specialized
// executor shapes raise with zero heap allocations: the guarded bypass
// (single guarded straight-line step), result folding over out-of-line
// handlers, a default-handler firing, and the arity-any executor beyond
// the shape-specialized range.
func TestSpecializedExecutorZeroAllocs(t *testing.T) {
	d := New(WithCodegenOptions(codegen.Options{DisableBypass: true}))

	// Guarded bypass: one guarded inline handler.
	gb, err := d.DefineEvent("Fast.GuardedBypass", fastSig(1))
	if err != nil {
		t.Fatal(err)
	}
	var cell atomic.Uint64
	if _, err := gb.Install(Handler{
		Proc:   &rtti.Proc{Name: "RaiseFast.GB", Module: fastMod, Sig: fastSig(1)},
		Inline: codegen.Nop(),
	}, WithGuard(Guard{Pred: codegen.GlobalEq(&cell, 0)})); err != nil {
		t.Fatal(err)
	}
	if !gb.Plan().GuardedBypass() {
		t.Fatal("single guarded inline handler should compile to the guarded bypass")
	}
	if n := testing.AllocsPerRun(1000, func() { _, _ = gb.Raise1(uint64(1)) }); n != 0 {
		t.Errorf("guarded bypass allocates %v/op, want 0", n)
	}

	// Result fold over out-of-line handlers.
	rf, err := d.DefineEvent("Fast.ResultFold", rtti.Sig(rtti.Word, rtti.Word))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		v := uint64(i)
		if _, err := rf.Install(Handler{
			Proc: &rtti.Proc{Name: "RaiseFast.RF", Module: fastMod, Sig: rtti.Sig(rtti.Word, rtti.Word)},
			Fn:   func(any, []any) any { return v },
		}, WithGuard(Guard{Pred: codegen.GlobalEq(&cell, 0)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := rf.SetResultHandler(func(acc, res any, index int) any {
		if index == 0 {
			return res
		}
		return acc.(uint64) + res.(uint64)
	}); err != nil {
		t.Fatal(err)
	}
	if !rf.Plan().Specialized() {
		t.Fatal("result-fold plan should specialize")
	}
	if n := testing.AllocsPerRun(1000, func() { _, _ = rf.Raise1(uint64(1)) }); n != 0 {
		t.Errorf("result fold allocates %v/op, want 0", n)
	}
	if res, err := rf.Raise1(uint64(1)); err != nil || res != uint64(0+1+2) {
		t.Fatalf("result fold = %v, %v; want 3", res, err)
	}

	// Arity-any executor: arity 6 exceeds the shape-specialized range.
	wide, err := d.DefineEvent("Fast.Wide", fastSig(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := wide.Install(Handler{
			Proc:   &rtti.Proc{Name: "RaiseFast.W", Module: fastMod, Sig: fastSig(6)},
			Inline: codegen.Nop(),
		}, WithGuard(Guard{Pred: codegen.GlobalEq(&cell, 0)})); err != nil {
			t.Fatal(err)
		}
	}
	if !wide.Plan().Specialized() {
		t.Fatal("arity-6 plan should specialize to the arity-any executor")
	}
	av := []any{uint64(1), uint64(2), uint64(3), uint64(4), uint64(5), uint64(6)}
	if n := testing.AllocsPerRun(1000, func() { _, _ = wide.Raise(av...) }); n != 0 {
		t.Errorf("arity-any executor allocates %v/op, want 0", n)
	}
}

// TestArityRaiseSemantics checks every arity entry point against the
// variadic path: same argument values delivered, same errors surfaced.
func TestArityRaiseSemantics(t *testing.T) {
	for arity := 0; arity <= 5; arity++ {
		t.Run(fmt.Sprintf("arity=%d", arity), func(t *testing.T) {
			d := New()
			var got []any
			ev, err := d.DefineEvent("Fast.Arity", fastSig(arity),
				WithIntrinsic(Handler{
					Proc: &rtti.Proc{Name: "RaiseFast.A", Module: fastMod, Sig: fastSig(arity)},
					Fn: func(_ any, args []any) any {
						got = append([]any(nil), args...)
						return nil
					},
				}))
			if err != nil {
				t.Fatal(err)
			}
			want := make([]any, arity)
			for i := range want {
				want[i] = uint64(100 + i)
			}
			switch arity {
			case 0:
				_, err = ev.Raise0()
			case 1:
				_, err = ev.Raise1(want[0])
			case 2:
				_, err = ev.Raise2(want[0], want[1])
			case 3:
				_, err = ev.Raise3(want[0], want[1], want[2])
			case 4:
				_, err = ev.Raise4(want[0], want[1], want[2], want[3])
			case 5:
				_, err = ev.Raise5(want[0], want[1], want[2], want[3], want[4])
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != arity {
				t.Fatalf("handler saw %d args, want %d", len(got), arity)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("arg %d = %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestArityRaiseWrongArity confirms the specialized entry points still
// enforce the signature arity like the variadic path does.
func TestArityRaiseWrongArity(t *testing.T) {
	d := New()
	ev, err := d.DefineEvent("Fast.WrongArity", fastSig(2), WithIntrinsic(fastHandler(2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Raise1(uint64(1)); err == nil {
		t.Fatal("Raise1 on a two-argument event should fail")
	}
	if _, err := ev.Raise3(uint64(1), uint64(2), uint64(3)); err == nil {
		t.Fatal("Raise3 on a two-argument event should fail")
	}
}

// TestArityRaiseAsyncEvent confirms the fast path routes asynchronous
// events through RaiseAsync, exactly as the variadic Raise does.
func TestArityRaiseAsyncEvent(t *testing.T) {
	ran := make(chan []any, 1)
	d := New(WithSpawner(func(fn func()) { fn() }))
	ev, err := d.DefineEvent("Fast.AsyncEvent", fastSig(1), AsAsync(),
		WithIntrinsic(Handler{
			Proc: &rtti.Proc{Name: "RaiseFast.AE", Module: fastMod, Sig: fastSig(1)},
			Fn: func(_ any, args []any) any {
				ran <- append([]any(nil), args...)
				return nil
			},
		}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Raise1(uint64(42)); err != nil {
		t.Fatal(err)
	}
	got := <-ran
	if len(got) != 1 || got[0] != uint64(42) {
		t.Fatalf("async handler saw %v, want [42]", got)
	}
}

// TestArityRaiseAsyncHandlerRetainsArgs is the pooled-buffer safety
// property: when the plan contains an asynchronous handler, the argument
// slice may be read after the raise returns, so the fast path must hand it
// a private copy instead of recycling the pooled frame. A deferred spawner
// maximizes the window between raise completion and handler execution.
func TestArityRaiseAsyncHandlerRetainsArgs(t *testing.T) {
	var pending []func()
	d := New(WithSpawner(func(fn func()) { pending = append(pending, fn) }))
	ev, err := d.DefineEvent("Fast.Retain", fastSig(1), WithIntrinsic(fastHandler(1)))
	if err != nil {
		t.Fatal(err)
	}
	var seen []uint64
	if _, err := ev.Install(Handler{
		Proc: &rtti.Proc{Name: "RaiseFast.R", Module: fastMod, Sig: fastSig(1)},
		Fn: func(_ any, args []any) any {
			seen = append(seen, args[0].(uint64))
			return nil
		},
	}, Async()); err != nil {
		t.Fatal(err)
	}
	if !ev.Plan().RetainsArgs() {
		t.Fatal("plan with an async handler must report RetainsArgs")
	}
	const rounds = 16
	for i := 0; i < rounds; i++ {
		if _, err := ev.Raise1(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Only now run the detached handlers: had the fast path recycled the
	// buffers, later raises would have overwritten or cleared the args.
	for _, fn := range pending {
		fn()
	}
	if len(seen) != rounds {
		t.Fatalf("async handler ran %d times, want %d", len(seen), rounds)
	}
	for i, v := range seen {
		if v != uint64(i) {
			t.Fatalf("async handler %d saw %d, want %d", i, v, i)
		}
	}
}

// TestStripedCountersAggregate checks Stats sums the counter stripes: many
// goroutines raising concurrently must account for every raise and firing.
func TestStripedCountersAggregate(t *testing.T) {
	d := New()
	ev, err := d.DefineEvent("Fast.Stripes", fastSig(0), WithIntrinsic(fastHandler(0)))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := ev.Raise0(); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	st := ev.Stats()
	if st.Raised != workers*perWorker {
		t.Fatalf("Raised = %d, want %d", st.Raised, workers*perWorker)
	}
	if st.Fired != workers*perWorker {
		t.Fatalf("Fired = %d, want %d", st.Fired, workers*perWorker)
	}
	if got := ev.IntrinsicBinding().Fired(); got != workers*perWorker {
		t.Fatalf("binding Fired = %d, want %d", got, workers*perWorker)
	}
}

// TestConcurrentRaiseInstallStats hammers one event with parallel raises,
// installation churn, and statistics snapshots; under -race it proves the
// striped counters and the atomic plan swap stay safe together.
func TestConcurrentRaiseInstallStats(t *testing.T) {
	d := New()
	ev, err := d.DefineEvent("Fast.Hammer", fastSig(1), WithIntrinsic(fastHandler(1)))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	raisers := runtime.GOMAXPROCS(0)
	if raisers < 2 {
		raisers = 2
	}
	for w := 0; w < raisers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ev.Raise1(uint64(i)); err != nil {
					panic(err)
				}
			}
		}()
	}
	// Installation churn: repeatedly add and remove a guarded handler,
	// regenerating and republishing the plan under the raisers' feet.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := fastHandler(1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			bd, err := ev.Install(h, WithGuard(Guard{Pred: codegen.ArgEq(0, uint64(i%3))}))
			if err != nil {
				panic(err)
			}
			if err := ev.Uninstall(bd); err != nil {
				panic(err)
			}
		}
	}()
	// Statistics snapshots concurrent with both.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := ev.Stats()
			if st.Raised < last {
				panic(fmt.Sprintf("Raised went backwards: %d -> %d", last, st.Raised))
			}
			last = st.Raised
		}
	}()

	for i := 0; i < 2000; i++ {
		if _, err := ev.Raise1(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if st := ev.Stats(); st.Raised < 2000 {
		t.Fatalf("Raised = %d, want >= 2000", st.Raised)
	}
}

// TestCachedEnvSurvivesRecompile ensures the per-event Env built at
// definition time keeps feeding statistics after installs replace the
// plan.
func TestCachedEnvSurvivesRecompile(t *testing.T) {
	d := New()
	ev, err := d.DefineEvent("Fast.Recompile", fastSig(0), WithIntrinsic(fastHandler(0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Raise0(); err != nil {
		t.Fatal(err)
	}
	bd, err := ev.Install(fastHandler(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Raise0(); err != nil {
		t.Fatal(err)
	}
	st := ev.Stats()
	if st.Raised != 2 || st.Fired != 3 {
		t.Fatalf("stats = %+v, want Raised=2 Fired=3", st)
	}
	if bd.Fired() != 1 {
		t.Fatalf("new binding fired %d, want 1", bd.Fired())
	}
}
