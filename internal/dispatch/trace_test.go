package dispatch

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"spin/internal/codegen"
	"spin/internal/rtti"
	"spin/internal/trace"
)

// Tests for the dispatch tracing layer: tracing compiled out of the plan
// must cost zero allocations on every fast path (even after a
// enable/disable cycle, which exercises the recompile), sampled tracing
// must export valid Chrome trace_event JSON with the guard -> handler ->
// merge causal structure, and concurrent trace toggling must be safe
// against raises and installation churn.

// TestTracingOffZeroAlloc is the zero-cost-off property: after tracing is
// enabled and then disabled again, the bypass, inline-plan, and sync-step
// raise paths must all run with zero heap allocations — the recompiled
// untraced plan is indistinguishable from one that was never traced.
func TestTracingOffZeroAlloc(t *testing.T) {
	tracer := trace.New(trace.Config{Capacity: 256})

	cycle := func(t *testing.T, ev *Event, raise func()) {
		t.Helper()
		// Enable: the plan recompiles with trace steps; raises record.
		ev.Trace(tracer)
		if !ev.Plan().Traced() {
			t.Fatal("plan not traced after Trace(tracer)")
		}
		raise()
		// Disable: the plan recompiles without them.
		ev.Trace(nil)
		if ev.Plan().Traced() {
			t.Fatal("plan still traced after Trace(nil)")
		}
		if n := testing.AllocsPerRun(1000, raise); n != 0 {
			t.Errorf("tracing off: %v allocs/raise, want 0", n)
		}
	}

	t.Run("bypass", func(t *testing.T) {
		d := New()
		ev, err := d.DefineEvent("TraceOff.Bypass", fastSig(2), WithIntrinsic(fastHandler(2)))
		if err != nil {
			t.Fatal(err)
		}
		cycle(t, ev, func() { _, _ = ev.Raise2(uint64(1), uint64(2)) })
	})
	t.Run("inline-plan", func(t *testing.T) {
		d := New(WithCodegenOptions(codegen.Options{DisableBypass: true}))
		ev, err := d.DefineEvent("TraceOff.Inline", fastSig(2))
		if err != nil {
			t.Fatal(err)
		}
		var cell atomic.Uint64
		for i := 0; i < 5; i++ {
			if _, err := ev.Install(Handler{
				Proc:   &rtti.Proc{Name: "TraceOff.I", Module: fastMod, Sig: fastSig(2)},
				Inline: codegen.Nop(),
			}, WithGuard(Guard{Pred: codegen.GlobalEq(&cell, 0)})); err != nil {
				t.Fatal(err)
			}
		}
		cycle(t, ev, func() { _, _ = ev.Raise2(uint64(1), uint64(2)) })
	})
	t.Run("sync-step", func(t *testing.T) {
		d := New(WithCodegenOptions(codegen.Options{DisableBypass: true}))
		ev, err := d.DefineEvent("TraceOff.Steps", fastSig(1))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := ev.Install(fastHandler(1)); err != nil {
				t.Fatal(err)
			}
		}
		cycle(t, ev, func() { _, _ = ev.Raise1(uint64(7)) })
	})
}

// TestTracedSamplingExportsChromeJSON is the acceptance check for sampled
// tracing: with 1-in-64 sampling, 640 raises of a guarded multi-handler
// result event record exactly 10 raises, and the Chrome export is valid
// trace_event JSON whose spans carry the guard -> handler -> merge causal
// structure of each raise.
func TestTracedSamplingExportsChromeJSON(t *testing.T) {
	tracer := trace.New(trace.Config{Capacity: 2048, Sample: 64})
	d := New(WithTracer(tracer))
	sig := rtti.Signature{Args: []rtti.Type{rtti.Word}, Result: rtti.Word}
	ev, err := d.DefineEvent("Traced.Request", sig)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) Handler {
		return Handler{
			Proc: &rtti.Proc{Name: name, Module: fastMod, Sig: sig},
			Fn:   func(_ any, args []any) any { return args[0] },
		}
	}
	if _, err := ev.Install(mk("Route.Serve"), WithGuard(Guard{
		Proc: &rtti.Proc{Name: "Route.Match", Module: fastMod, Functional: true,
			Sig: rtti.Sig(rtti.Bool, rtti.Word)},
		Fn: func(any, []any) bool { return true },
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Install(mk("Log.Access"), Last()); err != nil {
		t.Fatal(err)
	}
	if err := ev.SetResultHandler(func(acc, res any, i int) any { return res }); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 640; i++ {
		if _, err := ev.Raise1(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}

	spans := tracer.Snapshot()
	raises := map[uint64]bool{}
	kinds := map[string]int{}
	for _, sp := range spans {
		raises[sp.Raise] = true
		kinds[sp.Kind.String()]++
	}
	if len(raises) != 10 {
		t.Fatalf("1-in-64 over 640 raises sampled %d raises, want 10", len(raises))
	}
	// Per sampled raise: raise-begin, one guard, two handlers, two merges,
	// raise-end.
	for kind, want := range map[string]int{
		"raise-begin": 10, "guard": 10, "handler": 20, "merge": 20, "raise-end": 10,
	} {
		if kinds[kind] != want {
			t.Errorf("%d %q spans, want %d (all: %v)", kinds[kind], kind, want, kinds)
		}
	}

	var buf bytes.Buffer
	if err := tracer.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Cat   string  `json:"cat"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			PID   int     `json:"pid"`
			TID   uint64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(spans) {
		t.Fatalf("exported %d events for %d spans", len(doc.TraceEvents), len(spans))
	}
	var allNames []string
	for _, te := range doc.TraceEvents {
		if te.Phase != "X" {
			t.Fatalf("event phase %q, want complete-event X", te.Phase)
		}
		if te.PID != 1 || te.TID == 0 {
			t.Fatalf("event pid/tid = %d/%d, want 1/<raise>", te.PID, te.TID)
		}
		allNames = append(allNames, te.Name)
	}
	// The exporter decorates names with kind and outcome; check the causal
	// structure survives: the guard evaluation, the guarded handler, the
	// trailing logger, and the merges.
	joined := strings.Join(allNames, "\n")
	for _, want := range []string{
		"guard Route.Serve [pass]", "Route.Serve (sync)", "Log.Access (sync)", "merge #",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("Chrome export is missing a span named %q", want)
		}
	}
}

// TestConcurrentTraceToggleHammer races trace enable/disable against
// parallel raises, installation churn, and snapshot readers; under -race
// it proves the traced-plan swap shares the untraced swap's safety: a
// raise in flight finishes on the plan it loaded, traced or not.
func TestConcurrentTraceToggleHammer(t *testing.T) {
	tracer := trace.New(trace.Config{Capacity: 512, Sample: 4})
	d := New()
	ev, err := d.DefineEvent("Trace.Hammer", fastSig(1), WithIntrinsic(fastHandler(1)))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	raisers := runtime.GOMAXPROCS(0)
	if raisers < 2 {
		raisers = 2
	}
	for w := 0; w < raisers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ev.Raise1(uint64(i)); err != nil {
					panic(err)
				}
			}
		}()
	}
	// The toggler: flips tracing on and off, recompiling and republishing
	// the plan under the raisers' feet.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				ev.Trace(tracer)
			} else {
				ev.Trace(nil)
			}
		}
	}()
	// Installation churn concurrent with the toggling.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := fastHandler(1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			bd, err := ev.Install(h, WithGuard(Guard{Pred: codegen.ArgEq(0, uint64(i%3))}))
			if err != nil {
				panic(err)
			}
			if err := ev.Uninstall(bd); err != nil {
				panic(err)
			}
		}
	}()
	// Snapshot reader concurrent with recording.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sp := range tracer.Snapshot() {
				if sp.Kind == 0 {
					panic("snapshot returned a zero-kind span")
				}
			}
		}
	}()

	for i := 0; i < 2000; i++ {
		if _, err := ev.Raise1(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
