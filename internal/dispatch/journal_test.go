package dispatch

import (
	"fmt"
	"testing"

	"spin/internal/journal"
	"spin/internal/rtti"
)

// Differential tests for the lifecycle journal: the zero-cost-off
// contract, the lifecycle-only sampling-off raise path, and boot-time
// replay checked three ways against each other — the live source
// dispatcher, a fresh dispatcher reconstructed by ReplayJournal, and the
// journal package's symbolic State oracle.

// TestJournalOffZeroAlloc pins the zero-cost-off contract: a dispatcher
// constructed without WithJournal compiles no journal reference into any
// plan, and the raise path allocates nothing. This is the fourth standing
// 0-alloc invariant (alongside tracing-off, fault-policy-on, and
// admission-no-policy) gated by `make alloccheck`.
func TestJournalOffZeroAlloc(t *testing.T) {
	d := New()
	direct := mustDefine(t, d, "J.Off", rtti.Sig(nil, rtti.Word),
		WithIntrinsic(handler(voidProc("D", rtti.Word), func(any, []any) any { return nil })))
	multi := mustDefine(t, d, "J.OffMulti", rtti.Sig(nil, rtti.Word))
	for _, name := range []string{"H1", "H2"} {
		if _, err := multi.Install(handler(voidProc(name, rtti.Word), func(any, []any) any { return nil })); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		name string
		e    *Event
	}{{"direct", direct}, {"multi", multi}} {
		if tc.e.Plan().Journal() != nil {
			t.Fatalf("%s: journal-off dispatcher compiled a journal into the plan", tc.name)
		}
		if allocs := testing.AllocsPerRun(1000, func() { _, _ = tc.e.Raise1(uint64(7)) }); allocs != 0 {
			t.Errorf("%s: journal-off raise allocates %.1f/op, want 0", tc.name, allocs)
		}
	}
}

// TestJournalLifecycleOnlyRaiseDoesNotAllocate: attaching a journal with
// raise sampling disabled (SampleRaises: 0, lifecycle records only) must
// leave the raise path allocation-free — the compiled-in hook is one nil
// check plus a mask test that never passes. Sampling-on rates are covered
// by `spinbench -table journal` (allocs/op stays 0 there too, but the
// worker goroutine makes AllocsPerRun nondeterministic, so the alloc gate
// pins only the sampling-off shapes).
func TestJournalLifecycleOnlyRaiseDoesNotAllocate(t *testing.T) {
	sink := journal.NewMemSink()
	j := journal.New(journal.Config{Sink: sink, FlushInterval: -1})
	defer j.Close()
	d := New(WithJournal(j))
	e := mustDefine(t, d, "J.On", rtti.Sig(nil, rtti.Word),
		WithIntrinsic(handler(voidProc("D", rtti.Word), func(any, []any) any { return nil })))
	if e.Plan().Journal() != j {
		t.Fatal("journaled dispatcher did not compile the journal into the plan")
	}
	if allocs := testing.AllocsPerRun(1000, func() { _, _ = e.Raise1(uint64(7)) }); allocs != 0 {
		t.Errorf("lifecycle-only journaled raise allocates %.1f/op, want 0", allocs)
	}
}

// liveOrder returns an event's installed bindings' journal IDs in
// dispatch order, the sequence the State oracle's Bindings must match.
func liveOrder(e *Event) []uint64 {
	var ids []uint64
	for _, b := range e.Bindings() {
		ids = append(ids, b.JournalID())
	}
	return ids
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestJournalReplayRoundTrip drives a journaled dispatcher through every
// replayable lifecycle shape — intrinsic, ordered installs (first,
// before), priorities, uninstall, operator quarantine, dynamic
// reordering, default handler, quota change — then replays the sealed
// journal into a fresh dispatcher and requires the twin to agree with
// the source on dispatch order (by firing both), quarantine state, and
// quotas, and both to agree with the symbolic State oracle.
func TestJournalReplayRoundTrip(t *testing.T) {
	sink := journal.NewMemSink()
	jA := journal.New(journal.Config{Sink: sink, FlushInterval: -1})
	dA := New(WithJournal(jA))

	var logA []string
	recA := func(name string) Handler {
		return handler(voidProc(name, rtti.Word), func(any, []any) any {
			logA = append(logA, name)
			return nil
		})
	}

	intrA := mustDefine(t, dA, "J.Intr", rtti.Sig(nil, rtti.Word), WithIntrinsic(recA("I")))
	hookA := mustDefine(t, dA, "J.Hook", rtti.Sig(nil, rtti.Word))
	defA := mustDefine(t, dA, "J.Def", rtti.Sig(nil, rtti.Word))

	b1, err := hookA.Install(recA("H1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hookA.Install(recA("H2"), First()); err != nil {
		t.Fatal(err)
	}
	b3, err := hookA.Install(recA("H3"), Before(b1), WithPriority(2))
	if err != nil {
		t.Fatal(err)
	}
	b4, err := hookA.Install(recA("H4"))
	if err != nil {
		t.Fatal(err)
	}
	b5, err := hookA.Install(recA("H5"))
	if err != nil {
		t.Fatal(err)
	}

	dA.SetQuotas(8, 64)
	if err := hookA.Uninstall(b4); err != nil {
		t.Fatal(err)
	}
	if !dA.QuarantineBinding(b5) {
		t.Fatal("QuarantineBinding(b5) = false")
	}
	if err := hookA.SetOrder(b1, Order{Kind: OrderLast}); err != nil {
		t.Fatal(err)
	}
	if err := defA.SetDefaultHandler(recA("D")); err != nil {
		t.Fatal(err)
	}

	jA.Flush()
	data := sink.Bytes()
	if _, err := journal.Verify(data); err != nil {
		t.Fatalf("source journal does not verify: %v", err)
	}

	// Symbolic oracle.
	st := journal.NewState()
	if _, err := journal.Replay(data, st); err != nil {
		t.Fatalf("State replay: %v", err)
	}

	// Live twin.
	dB := New()
	var logB []string
	recB := func(name string) Handler {
		return handler(voidProc(name, rtti.Word), func(any, []any) any {
			logB = append(logB, name)
			return nil
		})
	}
	intrB := mustDefine(t, dB, "J.Intr", rtti.Sig(nil, rtti.Word), WithIntrinsic(recB("I")))
	hookB := mustDefine(t, dB, "J.Hook", rtti.Sig(nil, rtti.Word))
	defB := mustDefine(t, dB, "J.Def", rtti.Sig(nil, rtti.Word))
	resolve := func(module, hname string) (Handler, []InstallOption, bool) {
		if module != testModule.Name() {
			return Handler{}, nil, false
		}
		return recB(hname), nil, true
	}
	ra, sum, err := dB.ReplayJournal(data, resolve)
	if err != nil {
		t.Fatalf("ReplayJournal: %v (summary %+v)", err, sum)
	}
	if sum.Tail != 0 || sum.Damaged {
		t.Fatalf("flushed journal replayed with tail=%d damaged=%v", sum.Tail, sum.Damaged)
	}

	// Dispatch order: journal IDs must agree live-A == live-B == oracle.
	idsA, idsB, idsO := liveOrder(hookA), liveOrder(hookB), st.Bindings("J.Hook")
	if !equalIDs(idsA, idsB) || !equalIDs(idsB, idsO) {
		t.Fatalf("binding order diverged: live A %v, replayed B %v, oracle %v", idsA, idsB, idsO)
	}

	// Fired-handler sequence: raise every event on both dispatchers.
	logA, logB = nil, nil
	for _, e := range []*Event{hookA, intrA, defA} {
		if _, err := e.Raise1(uint64(1)); err != nil {
			t.Fatalf("raise %s on A: %v", e.Name(), err)
		}
	}
	for _, e := range []*Event{hookB, intrB, defB} {
		if _, err := e.Raise1(uint64(1)); err != nil {
			t.Fatalf("raise %s on B: %v", e.Name(), err)
		}
	}
	if fmt.Sprint(logA) != fmt.Sprint(logB) {
		t.Fatalf("fired sequence diverged: live A %v, replayed B %v", logA, logB)
	}

	// Quotas, quarantine, uninstall, and identity mapping.
	if pm, g := dB.Quotas(); pm != 8 || g != 64 {
		t.Fatalf("replayed quotas = (%d,%d), want (8,64)", pm, g)
	}
	if pm, g := st.Quotas(); pm != 8 || g != 64 {
		t.Fatalf("oracle quotas = (%d,%d), want (8,64)", pm, g)
	}
	q5 := ra.Binding(b5.JournalID())
	if q5 == nil || !q5.Quarantined() {
		t.Fatal("replayed twin lost b5's quarantine")
	}
	if _, oq, ok := st.Binding(b5.JournalID()); !ok || !oq {
		t.Fatal("oracle lost b5's quarantine")
	}
	if ra.Binding(b4.JournalID()) != nil {
		t.Fatal("uninstalled b4 survived replay")
	}
	if got := ra.Binding(intrA.IntrinsicBinding().JournalID()); got != intrB.IntrinsicBinding() {
		t.Fatal("intrinsic install did not map to B's intrinsic binding")
	}
	if p3 := ra.Binding(b3.JournalID()); p3 == nil || p3.Priority() != 2 {
		t.Fatal("replayed twin lost b3's priority class")
	}
}

// FuzzJournalReplay drives a journaled dispatcher through a fuzzer-chosen
// lifecycle op sequence, replays the sealed journal into a fresh
// dispatcher, and requires live source, replayed twin, and symbolic
// oracle to agree on binding order, per-binding quarantine state, and
// quotas. It then flips one fuzzer-chosen byte of the sealed journal and
// requires Verify to reject it (every byte is covered by a record CRC or
// the seal's Merkle root). Wired into `make fuzz-smoke`.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x41, 0x82, 0xc3})
	f.Add([]byte{0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef})
	f.Add([]byte{0x05, 0x00, 0x02, 0x00, 0x03, 0x00, 0x04, 0x00, 0x05})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 48 {
			ops = ops[:48]
		}
		sink := journal.NewMemSink()
		jA := journal.New(journal.Config{Sink: sink, BatchRecords: 4, FlushInterval: -1})
		dA := New(WithJournal(jA))
		nop := func(any, []any) any { return nil }
		eA := mustDefine(t, dA, "J.Fuzz", rtti.Sig(nil, rtti.Word))

		var installed []*Binding
		pick := func(op byte) *Binding { return installed[int(op>>3)%len(installed)] }
		for _, op := range ops {
			switch op % 6 {
			case 0, 1: // install, with a fuzzer-chosen shape
				name := fmt.Sprintf("H%d", int(op>>3)&7)
				var opts []InstallOption
				switch op >> 6 {
				case 1:
					opts = append(opts, First())
				case 2:
					opts = append(opts, Last())
				case 3:
					opts = append(opts, WithPriority(int(op&3)))
				}
				if b, err := eA.Install(handler(voidProc(name, rtti.Word), nop), opts...); err == nil {
					installed = append(installed, b)
				}
			case 2: // uninstall (keep `installed` to live bindings only, so
				// quarantine ops never reference a dead journal ID)
				if len(installed) > 0 {
					i := int(op>>3) % len(installed)
					if err := eA.Uninstall(installed[i]); err == nil {
						installed = append(installed[:i], installed[i+1:]...)
					}
				}
			case 3:
				if len(installed) > 0 {
					dA.QuarantineBinding(pick(op))
				}
			case 4:
				if len(installed) > 0 {
					dA.ReadmitBinding(pick(op))
				}
			case 5:
				dA.SetQuotas(int(op&15), int(op))
			}
		}
		jA.Flush()
		data := sink.Bytes()
		if _, err := journal.Verify(data); err != nil {
			t.Fatalf("flushed journal does not verify: %v", err)
		}

		st := journal.NewState()
		if _, err := journal.Replay(data, st); err != nil {
			t.Fatalf("State replay: %v", err)
		}

		dB := New()
		eB := mustDefine(t, dB, "J.Fuzz", rtti.Sig(nil, rtti.Word))
		resolve := func(module, hname string) (Handler, []InstallOption, bool) {
			if module != testModule.Name() {
				return Handler{}, nil, false
			}
			return handler(voidProc(hname, rtti.Word), nop), nil, true
		}
		ra, sum, err := dB.ReplayJournal(data, resolve)
		if err != nil {
			t.Fatalf("ReplayJournal: %v (summary %+v)", err, sum)
		}

		idsA, idsB, idsO := liveOrder(eA), liveOrder(eB), st.Bindings("J.Fuzz")
		if !equalIDs(idsA, idsB) || !equalIDs(idsB, idsO) {
			t.Fatalf("binding order diverged: live A %v, replayed B %v, oracle %v", idsA, idsB, idsO)
		}
		for _, b := range eA.Bindings() {
			id := b.JournalID()
			twin := ra.Binding(id)
			if twin == nil {
				t.Fatalf("binding %d missing from replayed twin", id)
			}
			if twin.Quarantined() != b.Quarantined() {
				t.Fatalf("binding %d quarantine: live %v, twin %v", id, b.Quarantined(), twin.Quarantined())
			}
			if _, oq, ok := st.Binding(id); !ok || oq != b.Quarantined() {
				t.Fatalf("binding %d quarantine: live %v, oracle %v (known %v)", id, b.Quarantined(), oq, ok)
			}
		}
		apm, ag := dA.Quotas()
		if bpm, bg := dB.Quotas(); bpm != apm || bg != ag {
			t.Fatalf("quotas: live (%d,%d), twin (%d,%d)", apm, ag, bpm, bg)
		}
		if opm, og := st.Quotas(); opm != apm || og != ag {
			t.Fatalf("quotas: live (%d,%d), oracle (%d,%d)", apm, ag, opm, og)
		}
		jA.Close()

		// Tamper-evidence: any single-byte flip in the sealed journal must
		// fail verification.
		if len(data) > 0 {
			pos := 0
			if len(ops) > 0 {
				pos = int(ops[0]) % len(data)
			}
			mut := append([]byte(nil), data...)
			mut[pos] ^= 0x40
			if _, err := journal.Verify(mut); err == nil {
				t.Fatalf("flip of byte %d went undetected by Verify", pos)
			}
		}
	})
}
