package dispatch

import "spin/internal/stripe"

// stripedCounter is the dispatcher's statistics counter, sharded across
// cache-line-padded cells; see internal/stripe. It moved to its own package
// so the code generator's specialized executors can update per-binding fire
// counts through the same stripes (codegen.Binding.FireCount) with one
// hoisted shard index per raise.
type stripedCounter = stripe.Counter
