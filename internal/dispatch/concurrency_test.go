package dispatch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spin/internal/rtti"
)

// TestConcurrentInstallRaise exercises the atomic plan swap: handler lists
// are updated "atomically with respect to event dispatch by using a single
// memory access to replace the old list with the new one" (§3). Raises run
// lock-free against installs; a raise must always observe a consistent
// plan — never a partially updated one.
func TestConcurrentInstallRaise(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil),
		WithIntrinsic(handler(voidProc("M.P"), func(any, []any) any { return nil })))

	var stop atomic.Bool
	var raises atomic.Int64
	var wg sync.WaitGroup

	// Raisers: every raise must succeed — the intrinsic handler is never
	// removed, so ErrNoHandler would mean a torn plan was observed.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := e.Raise(); err != nil {
					t.Errorf("raise during install: %v", err)
					return
				}
				raises.Add(1)
			}
		}()
	}

	// Installer: churns bindings.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			b, err := e.Install(handler(voidProc("H"), func(any, []any) any { return nil }))
			if err != nil {
				t.Errorf("install: %v", err)
				return
			}
			if err := e.Uninstall(b); err != nil {
				t.Errorf("uninstall: %v", err)
				return
			}
		}
	}()

	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if raises.Load() == 0 {
		t.Fatal("no raises completed")
	}
}

// TestInstallDoesNotDisruptInFlightDispatch pins the paper's claim that a
// handler can be added or removed "dynamically and without disrupting
// on-going interactions": a dispatch that started before an uninstall
// completes with the plan it loaded.
func TestInstallDoesNotDisruptInFlightDispatch(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))

	entered := make(chan struct{})
	proceed := make(chan struct{})
	var secondRan atomic.Int64

	var once sync.Once
	_, _ = e.Install(handler(voidProc("Slow"), func(any, []any) any {
		// Block only on the first invocation; the verification raise at
		// the end of the test passes straight through.
		first := false
		once.Do(func() { first = true })
		if first {
			close(entered)
			<-proceed
		}
		return nil
	}))
	b2, _ := e.Install(handler(voidProc("Second"), func(any, []any) any {
		secondRan.Add(1)
		return nil
	}))

	done := make(chan error, 1)
	go func() {
		_, err := e.Raise()
		done <- err
	}()
	<-entered
	// Remove the second handler while the raise is between handlers.
	if err := e.Uninstall(b2); err != nil {
		t.Fatal(err)
	}
	close(proceed)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The in-flight dispatch ran against the plan current at raise time,
	// which still contained the second handler.
	if secondRan.Load() != 1 {
		t.Fatalf("in-flight dispatch lost a handler: ran=%d", secondRan.Load())
	}
	// A fresh raise uses the new plan.
	if _, err := e.Raise(); err != nil {
		t.Fatal(err)
	}
	if secondRan.Load() != 1 {
		t.Fatal("uninstalled handler fired on a fresh raise")
	}
}

// TestConcurrentDefines exercises the dispatcher-level registry lock.
func TestConcurrentDefines(t *testing.T) {
	d := New()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				name := string(rune('A'+i)) + "." + string(rune('a'+j))
				if _, err := d.DefineEvent(name, rtti.Sig(nil)); err != nil {
					errs <- err
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := len(d.Events()); got != 64 {
		t.Fatalf("events = %d, want 64", got)
	}
}

// TestConcurrentRaisesIndependentEvents verifies raises on distinct events
// share no dispatcher state that would serialize or corrupt them.
func TestConcurrentRaisesIndependentEvents(t *testing.T) {
	d := New()
	const n = 8
	events := make([]*Event, n)
	var counters [n]atomic.Int64
	for i := 0; i < n; i++ {
		i := i
		events[i] = mustDefine(t, d, "E."+string(rune('a'+i)), rtti.Sig(nil))
		_, _ = events[i].Install(handler(voidProc("H"), func(any, []any) any {
			counters[i].Add(1)
			return nil
		}))
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if _, err := events[i].Raise(); err != nil {
					t.Errorf("raise: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if counters[i].Load() != 1000 {
			t.Fatalf("event %d fired %d times", i, counters[i].Load())
		}
	}
}

// TestStatsUnderConcurrency verifies counters are race-free and exact.
func TestStatsUnderConcurrency(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	_, _ = e.Install(handler(voidProc("H"), func(any, []any) any { return nil }))
	var wg sync.WaitGroup
	const goroutines, per = 8, 500
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				_, _ = e.Raise()
			}
		}()
	}
	wg.Wait()
	s := e.Stats()
	if s.Raised != goroutines*per || s.Fired != goroutines*per {
		t.Fatalf("stats = %+v", s)
	}
}
