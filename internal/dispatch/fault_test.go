package dispatch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spin/internal/fault"
	"spin/internal/rtti"
	"spin/internal/vtime"
)

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// hasRecord reports whether the ledger ring holds a record of the given
// kind for the given handler name ("" matches any handler).
func hasRecord(l *fault.Ledger, kind fault.Kind, handler string) bool {
	for _, r := range l.Records() {
		if r.Kind == kind && (handler == "" || r.Handler == handler) {
			return true
		}
	}
	return false
}

// TestQuarantineProbationRelapse is the subsystem's acceptance drill, run
// under -race by `make faultcheck`: repeated injected panics in one
// handler under concurrent raises quarantine its binding (the plan is
// recompiled without it; the healthy handler keeps firing and no raise
// fails), probation re-admits it after backoff, a relapse re-quarantines
// it at the next level, and a clean probation restores it.
func TestQuarantineProbationRelapse(t *testing.T) {
	// The dispatcher runs in simulator mode, so the lifecycle timers
	// (backoff, probation) are virtual-time events that fire only when the
	// test steps the simulator: each state is held exactly until asserted,
	// however slow the host. Only the fault storm itself is real
	// concurrency.
	pol := fault.Policy{
		Budget:          3,
		ProbationBudget: 1,
		Backoff:         300 * time.Millisecond,
		Probation:       300 * time.Millisecond,
	}
	sim := vtime.NewSimulator(&vtime.Clock{})
	d := New(WithFaultPolicy(pol), WithSimulator(sim))
	e := mustDefine(t, d, "M.P", rtti.Sig(nil, rtti.Word))

	var good atomic.Int64
	if _, err := e.Install(handler(voidProc("Good", rtti.Word), func(any, []any) any {
		good.Add(1)
		return nil
	})); err != nil {
		t.Fatal(err)
	}

	// The bad handler panics on every invocation while failing is set,
	// through the deterministic injection harness.
	inj := fault.NewInjector().PanicEvery("M.P/bad", 1, 0)
	var failing atomic.Bool
	failing.Store(true)
	inner := func(any, []any) any { return nil }
	wrapped := inj.Handler("M.P/bad", inner)
	bad, err := e.Install(handler(voidProc("Bad", rtti.Word), func(clo any, args []any) any {
		if failing.Load() {
			return wrapped(clo, args)
		}
		return inner(clo, args)
	}))
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: concurrent raises until the bad binding is quarantined.
	// No raise may fail — the panics are absorbed as faults and the good
	// handler always fires.
	var raiseErrs atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.Raise1(7); err != nil {
					raiseErrs.Add(1)
					return
				}
			}
		}()
	}
	waitFor(t, bad.Quarantined, "bad binding quarantine")
	g0 := good.Load()
	waitFor(t, func() bool { return good.Load() > g0 }, "good handler to keep firing after quarantine")
	close(stop)
	wg.Wait()
	if n := raiseErrs.Load(); n != 0 {
		t.Fatalf("%d raises failed during fault storm", n)
	}
	if !hasRecord(d.FaultLedger(), fault.KindPanic, "Bad") {
		t.Error("no panic record for the bad handler in the ledger")
	}
	// With the raisers stopped, the binding sits in quarantine until the
	// backoff event runs: the published plan was recompiled without it.
	if st := bad.FaultState(); st != fault.Quarantined {
		t.Fatalf("state after storm = %v, want Quarantined", st)
	}
	if got := e.Plan().Steps(); got != 1 {
		t.Errorf("plan carries %d bindings after quarantine, want 1", got)
	}

	// Phase 2: the backoff timer re-admits the binding on probation and
	// recompiles it back in, synchronously within the simulator step.
	if !sim.Step() {
		t.Fatal("no readmission timer queued after quarantine")
	}
	if st := bad.FaultState(); st != fault.Probation {
		t.Fatalf("state after backoff = %v, want Probation", st)
	}
	if bad.Quarantined() {
		t.Error("binding still flagged quarantined on probation")
	}
	if got := e.Plan().Steps(); got != 2 {
		t.Errorf("plan carries %d bindings on probation, want 2", got)
	}

	// Phase 3: a single faulting invocation during probation relapses at
	// the next quarantine level (ProbationBudget 1).
	if _, err := e.Raise1(7); err != nil {
		t.Fatalf("probation raise failed: %v", err)
	}
	if st := bad.FaultState(); st != fault.Quarantined {
		t.Fatalf("state after probation fault = %v, want Quarantined", st)
	}
	if lvl := d.FaultLedger().Level(bad); lvl != 1 {
		t.Errorf("relapse level = %d, want 1", lvl)
	}

	// Phase 4: the handler is fixed; the doubled backoff expires (stepping
	// past the first probation's now-stale restore timer, a no-op against a
	// re-quarantined binding), the second probation passes cleanly, and the
	// binding is restored to full health.
	failing.Store(false)
	for i := 0; bad.FaultState() != fault.Probation; i++ {
		if i > 4 || !sim.Step() {
			t.Fatalf("binding never re-entered probation; state = %v", bad.FaultState())
		}
	}
	if _, err := e.Raise1(7); err != nil {
		t.Fatalf("clean probation raise failed: %v", err)
	}
	sim.Run(10)
	if st := bad.FaultState(); st != fault.Healthy {
		t.Fatalf("final state = %v, want Healthy", st)
	}
}

// TestFaultPolicyOnZeroAlloc proves the recovery barriers compiled into a
// protected plan keep the no-fault raise path allocation-free, on the
// bypass, plan, and guarded shapes alike.
func TestFaultPolicyOnZeroAlloc(t *testing.T) {
	d := New(WithFaultPolicy(fault.DefaultPolicy()))

	direct := mustDefine(t, d, "M.Direct", rtti.Sig(nil, rtti.Word),
		WithIntrinsic(handler(voidProc("D", rtti.Word), func(any, []any) any { return nil })))

	multi := mustDefine(t, d, "M.Multi", rtti.Sig(nil, rtti.Word))
	for _, name := range []string{"H1", "H2"} {
		if _, err := multi.Install(handler(voidProc(name, rtti.Word), func(any, []any) any { return nil })); err != nil {
			t.Fatal(err)
		}
	}

	guarded := mustDefine(t, d, "M.Guarded", rtti.Sig(nil, rtti.Word))
	g := Guard{Proc: guardProc("G", rtti.Word), Fn: func(any, []any) bool { return true }}
	if _, err := guarded.Install(handler(voidProc("H", rtti.Word), func(any, []any) any { return nil }), WithGuard(g)); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		e    *Event
	}{{"direct", direct}, {"multi", multi}, {"guarded", guarded}} {
		if !tc.e.Plan().Protected() {
			t.Fatalf("%s: plan not compiled with protection", tc.name)
		}
		if allocs := testing.AllocsPerRun(200, func() { _, _ = tc.e.Raise1(7) }); allocs != 0 {
			t.Errorf("%s: protected raise allocates %.1f/op, want 0", tc.name, allocs)
		}
	}
}

// TestEphemeralDeadlineCancellation: an EPHEMERAL handler overrunning its
// deadline is abandoned, its context is cancelled so it can stop
// cooperatively, and the overrun lands in the ledger as a deadline fault.
func TestEphemeralDeadlineCancellation(t *testing.T) {
	d := New(WithFaultPolicy(fault.Policy{Budget: 100, Backoff: time.Hour}))
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	proc := &rtti.Proc{Name: "Slow", Module: testModule, Sig: rtti.Sig(nil), Ephemeral: true}
	cancelled := make(chan struct{})
	h := Handler{Proc: proc, CtxFn: func(ctx context.Context, _ any, _ []any) any {
		<-ctx.Done()
		close(cancelled)
		return nil
	}}
	b, err := e.Install(h, Ephemeral(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Raise(); err != nil {
		t.Fatalf("raise of abandoned ephemeral failed: %v", err)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("handler context never cancelled after deadline")
	}
	if b.Terminations() == 0 || !b.Terminated() {
		t.Error("termination not accounted on the binding")
	}
	waitFor(t, func() bool { return hasRecord(d.FaultLedger(), fault.KindDeadline, "Slow") },
		"deadline fault record")
}

// TestAsyncPanicRecorded: an asynchronous handler panic is recovered by
// the spawn supervisor and recorded even in record-only mode (no policy),
// instead of crashing the process.
func TestAsyncPanicRecorded(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	if _, err := e.Install(handler(voidProc("Boom"), func(any, []any) any { panic("async boom") }), Async()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Raise(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return hasRecord(d.FaultLedger(), fault.KindPanic, "Boom") },
		"async panic record")
	recs := d.FaultLedger().Records()
	for _, r := range recs {
		if r.Kind == fault.KindPanic && r.Handler == "Boom" {
			if r.Value != "async boom" || r.Event != "M.P" || r.Module != testModule.Name() {
				t.Errorf("panic record misattributed: %+v", r)
			}
			if len(r.Stack) == 0 {
				t.Error("panic record carries no stack")
			}
		}
	}
}

// TestAsyncDeadlineWatchdog: WithDeadline arms a wall-clock watchdog on an
// asynchronous handler; overrun cancels the context and records the fault.
func TestAsyncDeadlineWatchdog(t *testing.T) {
	d := New(WithFaultPolicy(fault.Policy{Budget: 100, Backoff: time.Hour}))
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	cancelled := make(chan struct{})
	proc := voidProc("SlowAsync")
	h := Handler{Proc: proc, CtxFn: func(ctx context.Context, _ any, _ []any) any {
		<-ctx.Done()
		close(cancelled)
		return nil
	}}
	b, err := e.Install(h, Async(), WithDeadline(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Raise(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("async handler context never cancelled")
	}
	waitFor(t, func() bool { return hasRecord(d.FaultLedger(), fault.KindDeadline, "SlowAsync") },
		"async deadline record")
	waitFor(t, b.Terminated, "binding terminated flag")
}

// TestGuardPanicEvaluatesFalse: under enforcement a panicking out-of-line
// guard evaluates false (its handler is skipped), the raise proceeds, and
// the panic is recorded with guard origin.
func TestGuardPanicEvaluatesFalse(t *testing.T) {
	d := New(WithFaultPolicy(fault.Policy{Budget: 100, Backoff: time.Hour}))
	e := mustDefine(t, d, "M.P", rtti.Sig(nil, rtti.Word))
	var guardedRan, plainRan atomic.Int64
	g := Guard{Proc: guardProc("BadGuard", rtti.Word), Fn: func(any, []any) bool { panic("guard boom") }}
	if _, err := e.Install(handler(voidProc("Guarded", rtti.Word), func(any, []any) any {
		guardedRan.Add(1)
		return nil
	}), WithGuard(g)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Install(handler(voidProc("Plain", rtti.Word), func(any, []any) any {
		plainRan.Add(1)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Raise1(1); err != nil {
		t.Fatalf("raise failed despite healthy second handler: %v", err)
	}
	if guardedRan.Load() != 0 || plainRan.Load() != 1 {
		t.Errorf("guarded ran %d (want 0), plain ran %d (want 1)", guardedRan.Load(), plainRan.Load())
	}
	recs := d.FaultLedger().Records()
	found := false
	for _, r := range recs {
		if r.Kind == fault.KindPanic && r.Origin == fault.OriginGuard {
			found = true
		}
	}
	if !found {
		t.Error("guard panic not recorded with guard origin")
	}
}

// TestPurityMonitorSurvivesEnforcement: the purity monitor's
// ErrGuardMutatedArgs panic must re-propagate through the fault hook to
// the raise point instead of being swallowed as an extension fault.
func TestPurityMonitorSurvivesEnforcement(t *testing.T) {
	d := New(WithPurityChecking(), WithFaultPolicy(fault.DefaultPolicy()))
	e := mustDefine(t, d, "M.P", rtti.Sig(nil, rtti.RefAny))
	g := Guard{Proc: guardProc("Mutator", rtti.RefAny), Fn: func(_ any, args []any) bool {
		args[0] = "mutated"
		return true
	}}
	if _, err := e.Install(handler(voidProc("H", rtti.RefAny), func(any, []any) any { return nil }), WithGuard(g)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Raise("original"); !errors.Is(err, ErrGuardMutatedArgs) {
		t.Fatalf("err = %v, want ErrGuardMutatedArgs", err)
	}
}

// TestSyncBudgetOverrun: on a metered dispatcher, a synchronous handler
// whose virtual-time cost exceeds SyncBudget is an overrun fault; with
// Budget 1 it quarantines immediately.
func TestSyncBudgetOverrun(t *testing.T) {
	clock := &vtime.Clock{}
	cpu := vtime.NewCPU(clock, vtime.AlphaModel())
	d := New(WithCPU(cpu), WithFaultPolicy(fault.Policy{
		Budget:     1,
		SyncBudget: vtime.Micros(1),
		Backoff:    time.Hour,
	}))
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	var other atomic.Int64
	if _, err := e.Install(handler(voidProc("Cheap"), func(any, []any) any {
		other.Add(1)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	b, err := e.Install(handler(voidProc("Expensive"), func(any, []any) any {
		cpu.ChargeN(vtime.ThreadSpawnBase, 100) // far beyond 1us
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Raise(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, b.Quarantined, "overrun quarantine")
	if !hasRecord(d.FaultLedger(), fault.KindOverrun, "Expensive") {
		t.Error("no overrun record in ledger")
	}
	if _, err := e.Raise(); err != nil {
		t.Fatalf("raise after quarantine failed: %v", err)
	}
	if other.Load() != 2 {
		t.Errorf("cheap handler fired %d times, want 2", other.Load())
	}
}

// TestModuleBudgetQuarantinesModule: exhausting the module-level budget
// quarantines every binding the module installed and denies it new
// installations until readmission.
func TestModuleBudgetQuarantinesModule(t *testing.T) {
	rogue := rtti.NewModule("Rogue", "R")
	d := New(WithFaultPolicy(fault.Policy{
		Budget:       100, // per-binding budget out of reach
		ModuleBudget: 2,
		Backoff:      30 * time.Millisecond,
		Probation:    30 * time.Millisecond,
	}))
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	if _, err := e.Install(handler(voidProc("Good"), func(any, []any) any { return nil })); err != nil {
		t.Fatal(err)
	}
	boomProc := &rtti.Proc{Name: "R.Boom", Module: rogue, Sig: rtti.Sig(nil)}
	otherProc := &rtti.Proc{Name: "R.Other", Module: rogue, Sig: rtti.Sig(nil)}
	bad, err := e.Install(Handler{Proc: boomProc, Fn: func(any, []any) any { panic("x") }})
	if err != nil {
		t.Fatal(err)
	}
	sibling, err := e.Install(Handler{Proc: otherProc, Fn: func(any, []any) any { return nil }})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		if _, err := e.Raise(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return d.ModuleQuarantined(rogue) }, "module quarantine")
	if !bad.Quarantined() || !sibling.Quarantined() {
		t.Error("module quarantine did not cover all of the module's bindings")
	}
	// New installations from the quarantined module are denied.
	if _, err := e.Install(Handler{Proc: &rtti.Proc{Name: "R.New", Module: rogue, Sig: rtti.Sig(nil)},
		Fn: func(any, []any) any { return nil }}); !errors.Is(err, ErrModuleQuarantined) {
		t.Fatalf("install under module quarantine: err = %v, want ErrModuleQuarantined", err)
	}
	// Backoff passes; the module is readmitted, its bindings recompiled
	// back in, and installation rights return.
	waitFor(t, func() bool { return !d.ModuleQuarantined(rogue) }, "module readmission")
	waitFor(t, func() bool { return !sibling.Quarantined() }, "sibling binding readmitted")
	if _, err := e.Install(Handler{Proc: &rtti.Proc{Name: "R.New2", Module: rogue, Sig: rtti.Sig(nil)},
		Fn: func(any, []any) any { return nil }}); err != nil {
		t.Fatalf("install after readmission failed: %v", err)
	}
}

// TestUninstallForgetsLedgerEntry: uninstalling a quarantined binding
// drops its ledger entry, so the pending readmission timer is a no-op.
func TestUninstallForgetsLedgerEntry(t *testing.T) {
	d := New(WithFaultPolicy(fault.Policy{Budget: 1, Backoff: 10 * time.Millisecond}))
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	if _, err := e.Install(handler(voidProc("Good"), func(any, []any) any { return nil })); err != nil {
		t.Fatal(err)
	}
	b, err := e.Install(handler(voidProc("Bad"), func(any, []any) any { panic("x") }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Raise(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, b.Quarantined, "quarantine")
	if err := e.Uninstall(b); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // readmission timer fires into the void
	if st := d.FaultLedger().State(b); st != fault.Healthy {
		t.Errorf("ledger state after uninstall = %v, want Healthy (forgotten)", st)
	}
	if e.Plan().Steps() != 1 {
		t.Error("uninstalled binding leaked back into the plan")
	}
}

// TestRecordOnlyModeDoesNotProtectPlans: without a policy the dispatcher
// compiles unprotected plans (zero-cost-off) and never quarantines.
func TestRecordOnlyModeDoesNotProtectPlans(t *testing.T) {
	d := New()
	e := mustDefine(t, d, "M.P", rtti.Sig(nil))
	if _, err := e.Install(handler(voidProc("H"), func(any, []any) any { return nil })); err != nil {
		t.Fatal(err)
	}
	if e.Plan().Protected() {
		t.Error("record-only dispatcher compiled a protected plan")
	}
	if d.FaultLedger().Policy().Enforcing() {
		t.Error("record-only ledger claims to be enforcing")
	}
}
