package shard_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"spin/internal/dispatch"
	"spin/internal/remote"
	"spin/internal/rtti"
	"spin/internal/shard"
	"spin/internal/vtime"
)

// TestRemoteShardRaiseOverWire places shard 1 of a two-shard plane behind
// the PR-9 simulated wire: control-plane operations (define, install) land
// on machine B's dispatcher directly, while raises through the routed
// handle cross the wire with the peer's failure-domain machinery. The
// handle API is unchanged — only the route differs.
func TestRemoteShardRaiseOverWire(t *testing.T) {
	rig, err := remote.NewBenchRig()
	if err != nil {
		t.Fatal(err)
	}
	r, err := shard.NewRouter(shard.Config{Shards: 2, NewShard: func(int) *dispatch.Dispatcher {
		return dispatch.New()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AttachRemote(1, &shard.RemoteShard{
		Peer:    rig.Peer(),
		Control: rig.RemoteDispatcher(),
		Prefix:  rig.RemotePrefix(),
	}); err != nil {
		t.Fatal(err)
	}

	// Scan for names the ring routes to each slot.
	var remoteName, localName string
	for i := 0; remoteName == "" || localName == ""; i++ {
		n := fmt.Sprintf("Wire.Evt.%03d", i)
		if r.Owner(n) == 1 && remoteName == "" {
			remoteName = n
		}
		if r.Owner(n) == 0 && localName == "" {
			localName = n
		}
	}

	sig := rtti.Sig(nil, rtti.Word)
	mod := rtti.NewModule("WireTest")
	var hits atomic.Int64
	re, err := r.DefineEvent(remoteName, sig)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Shard().Remote() {
		t.Fatal("event not routed to the remote shard")
	}
	if _, err := re.Install(dispatch.Handler{
		Proc: &rtti.Proc{Name: "Wire.H", Module: mod, Sig: sig},
		Fn:   func(any, []any) any { hits.Add(1); return nil },
	}); err != nil {
		t.Fatal(err)
	}
	// The control plane defined the event under the serving receiver's
	// prefix on machine B.
	if _, ok := rig.RemoteDispatcher().Lookup(rig.RemotePrefix() + remoteName); !ok {
		t.Fatalf("%s%s not defined on the remote control dispatcher", rig.RemotePrefix(), remoteName)
	}

	const raises = 12
	for k := 0; k < raises; k++ {
		if _, err := re.Raise1(uint64(k)); err != nil {
			t.Fatalf("remote raise %d: %v", k, err)
		}
		rig.RunFor(vtime.Micros(10_000))
	}
	if got := hits.Load(); got != raises {
		t.Fatalf("remote handler fired %d times, want %d", got, raises)
	}

	// The local slot keeps the in-process fast path.
	le, err := r.DefineEvent(localName, sig,
		dispatch.WithIntrinsic(dispatch.Handler{
			Proc: &rtti.Proc{Name: "Wire.L", Module: mod, Sig: sig},
			Fn:   func(any, []any) any { return nil },
		}))
	if err != nil {
		t.Fatal(err)
	}
	if le.Shard().Remote() {
		t.Fatal("local event routed remotely")
	}
	if _, err := le.Raise1(uint64(1)); err != nil {
		t.Fatal(err)
	}
	if st := le.Stats(); st.Raised != 1 {
		t.Fatalf("local stats %+v", st)
	}
}
