package shard

import (
	"fmt"
	"sort"

	"spin/internal/dispatch"
	"spin/internal/fault"
)

// Online resharding. Reshard(n) rebuilds the ring for n shards and
// migrates exactly the events whose owner changed — the consistent-hash
// guarantee: growth moves only events captured by the new shards' virtual
// nodes, shrinkage only the departing shards' population.
//
// The move protocol for one event, under the handle's control mutex (so
// it excludes installs, never raises):
//
//  1. snapshot the source: signature, intrinsic/owner, bindings in
//     dispatch order with their full installation shape, default handler,
//     admission policy;
//  2. journal a KindShardMove marker on both shards, bracketing what
//     follows;
//  3. re-define the event on the destination and reinstall every binding
//     through the normal install path (journaled, quota-charged,
//     typechecked on the destination), re-imposing authority guards,
//     re-quarantining what was quarantined, and transferring each
//     binding's fault-ledger entry so budgets survive the move;
//  4. carry the authority wiring (result handler, authorizer) over;
//  5. publish the new route with one atomic store — the dual-route
//     window: raises that already resolved the old route finish on the
//     source's still-published plan;
//  6. retire the source event (journaled uninstalls, quotas released).
//
// What does not survive a move, by design: admission-queue ledgers (the
// destination queue starts empty — the ledger is per-shard state, which
// is the point of sharding), degradation flags (the destination's own
// overload controller re-derives them from its load), and pending
// probation timers (the transferred fault entry re-arms on the next
// fault).

// Reshard grows or shrinks the plane to n shards, migrating the events
// whose ring owner changed, in name order (deterministic journals). It
// returns the number of events moved.
func (r *Router) Reshard(n int) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("shard: reshard to %d shards", n)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for id := len(r.shards); id < n; id++ {
		d := r.newShard(id)
		if d == nil {
			return 0, fmt.Errorf("shard: NewShard(%d) returned nil", id)
		}
		r.shards = append(r.shards, &Shard{id: id, d: d})
	}
	next := buildRing(n, r.replicas)

	names := make([]string, 0, len(r.events))
	for name := range r.events {
		names = append(names, name)
	}
	sort.Strings(names)

	moved := 0
	for _, name := range names {
		e := r.events[name]
		from := e.loadRoute().s
		to := r.shards[next.owner(name)]
		if to == from {
			continue
		}
		if err := moveEvent(e, from, to); err != nil {
			// The ring keeps its old shape: unmoved events still route
			// where they live. The failed event itself was not swapped.
			return moved, fmt.Errorf("shard: moving %s from %d to %d: %w", name, from.id, to.id, err)
		}
		moved++
		r.moves++
	}
	r.ring = next
	if n < len(r.shards) {
		// Departing shards are empty now; drop them from the plane. Their
		// dispatchers retain only retired events' drained plans.
		r.shards = r.shards[:n]
	}
	return moved, nil
}

// moveEvent migrates one event between shards. Caller holds the router
// mutex; the handle's control mutex is taken here, so concurrent installs
// either complete before the snapshot or land on the destination.
func moveEvent(e *Event, from, to *Shard) error {
	e.ctlMu.Lock()
	defer e.ctlMu.Unlock()

	src := e.loadRoute().ctl
	fromD, toD := from.Dispatcher(), to.Dispatcher()
	fromD.JournalShardMove(e.name, from.id, to.id)
	toD.JournalShardMove(e.name, from.id, to.id)

	// Snapshot and re-define. The intrinsic handler travels as a define
	// option so the destination event keeps intrinsic semantics (bypass
	// plan, authority from the defining module).
	bindings := src.Bindings()
	intrinsic := src.IntrinsicBinding()
	var defOpts []dispatch.EventOption
	if intrinsic != nil {
		defOpts = append(defOpts, dispatch.WithIntrinsic(intrinsic.Handler()))
	} else if m := src.Authority(); m != nil {
		defOpts = append(defOpts, dispatch.WithOwner(m))
	}
	if src.Async() {
		defOpts = append(defOpts, dispatch.AsAsync())
	}
	dst, err := defineOn(to, e.name, src.Signature(), defOpts...)
	if err != nil {
		return err
	}

	// Reinstall in dispatch order. The intrinsic binding already sits on
	// the destination list; earlier bindings insert before it, later ones
	// append, reproducing the snapshot order positionally.
	newIntrinsic := dst.IntrinsicBinding()
	beforeIntrinsic := intrinsic != nil
	for _, ob := range bindings {
		if ob == intrinsic {
			beforeIntrinsic = false
			e.remapLocked(ob, newIntrinsic, fromD, toD)
			continue
		}
		opts := installOptions(ob)
		if beforeIntrinsic {
			opts = append(opts, dispatch.Before(newIntrinsic))
		}
		nb, err := dst.Install(ob.Handler(), opts...)
		if err != nil {
			return err
		}
		if imp := ob.ImposedGuards(); len(imp) > 0 {
			if err := dst.MigrateImposedGuards(nb, imp); err != nil {
				return err
			}
		}
		if ob.Quarantined() {
			toD.QuarantineBinding(nb)
		}
		e.remapLocked(ob, nb, fromD, toD)
	}
	if db := src.DefaultBinding(); db != nil {
		if err := dst.SetDefaultHandler(db.Handler()); err != nil {
			return err
		}
		e.remapLocked(db, dst.DefaultBinding(), fromD, toD)
	}
	if q := src.AdmissionQueue(); q != nil {
		pol := q.Policy()
		dst.SetAdmission(&pol)
	}
	// Authority wiring last, so the destination authorizer cannot veto
	// the reinstallation of bindings the source authorizer already
	// admitted.
	dst.MigrateControls(src)

	// Fold the source residency's counters into the handle's base, swap
	// the route, and retire the source. Raises that resolved the old
	// route drain on the source's still-published plan (their counts land
	// in the striped counters already folded — quiesce before comparing
	// ledgers, as the differential tests do).
	st := src.Stats()
	e.base.Raised += st.Raised
	e.base.Fired += st.Fired
	e.base.Time += st.Time
	e.storeRoute(to, dst)
	return fromD.RemoveEvent(src.Name())
}

// remapLocked re-points a front binding handle at its reinstalled twin and
// moves the fault-ledger entry with it. Caller holds e.ctlMu.
func (e *Event) remapLocked(ob, nb *dispatch.Binding, fromD, toD *dispatch.Dispatcher) {
	fault.Transfer(fromD.FaultLedger(), toD.FaultLedger(), ob, nb)
	wb, ok := e.binds[ob]
	if !ok || nb == nil {
		return
	}
	delete(e.binds, ob)
	wb.baseFired += ob.Fired()
	wb.cur.Store(nb)
	e.binds[nb] = wb
}

// installOptions reconstructs the installation shape of an existing
// binding for reinstallation on another dispatcher. Ordering is handled
// positionally by the caller; quarantine, imposed guards, and fault state
// are re-applied separately.
func installOptions(ob *dispatch.Binding) []dispatch.InstallOption {
	var opts []dispatch.InstallOption
	if clo := ob.Closure(); clo != nil {
		opts = append(opts, dispatch.WithClosure(clo))
	}
	for _, g := range ob.Guards() {
		opts = append(opts, dispatch.WithGuard(g))
	}
	if ob.Async() {
		opts = append(opts, dispatch.Async())
		if d := ob.Deadline(); d > 0 && !ob.Ephemeral() {
			opts = append(opts, dispatch.WithDeadline(d))
		}
	}
	if ob.Ephemeral() {
		opts = append(opts, dispatch.Ephemeral(ob.Deadline()))
	}
	if ob.Filter() {
		opts = append(opts, dispatch.AsFilter())
	}
	if c := ob.Credential(); c != nil {
		opts = append(opts, dispatch.WithCredential(c))
	}
	if p := ob.Priority(); p != 0 {
		opts = append(opts, dispatch.WithPriority(p))
	}
	return opts
}
