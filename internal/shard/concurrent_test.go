package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"spin/internal/dispatch"
	"spin/internal/rtti"
)

// TestShardConcurrentInstallRaiseReshard is the shardcheck -race soak:
// raisers hammer every event while installers churn bindings and the main
// goroutine reshards the plane back and forth. Raises must never fail and
// never observe a torn route; afterwards the plane quiesces with
// conserved counters — every raise either fired the stable handler or
// predated its install.
func TestShardConcurrentInstallRaiseReshard(t *testing.T) {
	const (
		nEvents  = 24
		raisers  = 4
		perRaise = 400
	)
	r := mustRouter(t, 2)
	events := make([]*Event, nEvents)
	var stable [nEvents]atomic.Int64
	for i := range events {
		e := mustDefine(t, r, fmt.Sprintf("Soak.%02d", i))
		i := i
		if _, err := e.Install(dispatch.Handler{Proc: proc("stable"), Fn: func(any, []any) any {
			stable[i].Add(1)
			return nil
		}}); err != nil {
			t.Fatal(err)
		}
		events[i] = e
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var raised atomic.Int64

	for g := 0; g < raisers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perRaise; k++ {
				e := events[(g+k)%nEvents]
				if _, err := e.Raise1(uintptr(k)); err != nil {
					t.Errorf("raise %s: %v", e.Name(), err)
					return
				}
				raised.Add(1)
			}
		}(g)
	}
	// Churn installs/uninstalls concurrently with raises and reshards.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			e := events[k%nEvents]
			b, err := e.Install(dispatch.Handler{Proc: proc("churn"), Fn: func(any, []any) any { return nil }})
			if err != nil {
				t.Errorf("churn install: %v", err)
				return
			}
			if err := e.Uninstall(b); err != nil && !errors.Is(err, dispatch.ErrNotInstalled) {
				t.Errorf("churn uninstall: %v", err)
				return
			}
		}
	}()
	for _, n := range []int{4, 1, 3, 2, 5, 2} {
		if _, err := r.Reshard(n); err != nil {
			t.Fatalf("reshard(%d): %v", n, err)
		}
	}
	close(stop)
	wg.Wait()

	var fired int64
	for i := range events {
		fired += stable[i].Load()
	}
	if fired != raised.Load() {
		t.Fatalf("stable handlers fired %d, raises %d", fired, raised.Load())
	}
	var statRaised int64
	for _, e := range events {
		statRaised += e.Stats().Raised
	}
	if statRaised != raised.Load() {
		t.Fatalf("per-event stats count %d raises across residencies, want %d", statRaised, raised.Load())
	}
	for _, e := range events {
		if e.Shard().ID() != r.Owner(e.Name()) {
			t.Fatalf("%s route %d disagrees with ring %d after churn", e.Name(), e.Shard().ID(), r.Owner(e.Name()))
		}
	}
}

// TestConcurrentDefineAndRaise: definitions on fresh names proceed while
// other events are being raised; routing stays stable (an event's owner
// never changes without a reshard).
func TestConcurrentDefineAndRaise(t *testing.T) {
	r := mustRouter(t, 4)
	base := mustDefine(t, r, "Stable.Base",
		dispatch.WithIntrinsic(dispatch.Handler{Proc: proc("i"), Fn: func(any, []any) any { return nil }}))
	owner := base.Shard().ID()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for k := 0; k < 2000; k++ {
			if _, err := base.Raise1(uintptr(k)); err != nil {
				t.Errorf("raise: %v", err)
				return
			}
			if base.Shard().ID() != owner {
				t.Error("pinned route changed without a reshard")
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for k := 0; k < 200; k++ {
			if _, err := r.DefineEvent(fmt.Sprintf("Stable.New.%03d", k), rtti.Sig(nil, rtti.Word)); err != nil {
				t.Errorf("define: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if got := base.Stats().Raised; got != 2000 {
		t.Fatalf("raised %d, want 2000", got)
	}
}
