package shard

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"spin/internal/admit"
	"spin/internal/dispatch"
	"spin/internal/rtti"
)

var testModule = rtti.NewModule("ShardTest", "Test")

func sig1() rtti.Signature { return rtti.Sig(nil, rtti.Word) }

func proc(name string) *rtti.Proc {
	return &rtti.Proc{Name: name, Module: testModule, Sig: sig1()}
}

func rec(name string, log *[]string) dispatch.Handler {
	return dispatch.Handler{Proc: proc(name), Fn: func(any, []any) any {
		*log = append(*log, name)
		return nil
	}}
}

func mustRouter(t *testing.T, n int) *Router {
	t.Helper()
	r, err := NewRouter(Config{Shards: n})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustDefine(t *testing.T, r *Router, name string, opts ...dispatch.EventOption) *Event {
	t.Helper()
	e, err := r.DefineEvent(name, sig1(), opts...)
	if err != nil {
		t.Fatalf("DefineEvent(%s): %v", name, err)
	}
	return e
}

// TestRouterDefinesOnRingOwner: the handle's pinned shard is the ring's
// assignment, the underlying event lives on that shard's dispatcher and
// nowhere else, and raises through the handle fire handlers installed
// through it.
func TestRouterDefinesOnRingOwner(t *testing.T) {
	r := mustRouter(t, 4)
	var log []string
	seen := make(map[int]int)
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("Route.%03d", i)
		e := mustDefine(t, r, name)
		if got, want := e.Shard().ID(), r.Owner(name); got != want {
			t.Fatalf("%s pinned to shard %d, ring says %d", name, got, want)
		}
		seen[e.Shard().ID()]++
		for id := 0; id < 4; id++ {
			_, ok := r.Shard(id).Dispatcher().Lookup(name)
			if ok != (id == e.Shard().ID()) {
				t.Fatalf("%s present=%v on shard %d, owner %d", name, ok, id, e.Shard().ID())
			}
		}
		if _, err := e.Install(rec(name, &log)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Raise1(uintptr(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(log) != 32 {
		t.Fatalf("fired %d handlers, want 32", len(log))
	}
	if len(seen) < 2 {
		t.Fatalf("32 events all landed on %d shard(s)", len(seen))
	}
	if _, err := r.DefineEvent("Route.000", sig1()); !errors.Is(err, dispatch.ErrDuplicateEvent) {
		t.Fatalf("duplicate define: %v", err)
	}
	if e, ok := r.Lookup("Route.007"); !ok || e.Name() != "Route.007" {
		t.Fatal("Lookup missed a defined event")
	}
	if len(r.Events()) != 32 {
		t.Fatalf("Events() = %d, want 32", len(r.Events()))
	}
}

// TestRouterControlPlanePerEvent: default handlers, result handlers,
// uninstall, and stats work through the routed handle.
func TestRouterControlPlanePerEvent(t *testing.T) {
	r := mustRouter(t, 3)
	e := mustDefine(t, r, "Ctl.A")
	var log []string
	if err := e.SetDefaultHandler(rec("dflt", &log)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Raise1(uintptr(1)); err != nil {
		t.Fatal(err)
	}
	b, err := e.Install(rec("h1", &log))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Raise1(uintptr(2)); err != nil {
		t.Fatal(err)
	}
	if !b.Installed() || b.Fired() != 1 {
		t.Fatalf("installed=%v fired=%d", b.Installed(), b.Fired())
	}
	if err := e.Uninstall(b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Raise1(uintptr(3)); err != nil {
		t.Fatal(err)
	}
	want := []string{"dflt", "h1", "dflt"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("log %v, want %v", log, want)
	}
	if st := e.Stats(); st.Raised != 3 || st.Fired != 3 {
		t.Fatalf("stats %+v", st)
	}
}

// TestRouterAdmissionIdentity: per-shard admission ledgers satisfy the
// conservation law independently, and so does the plane-wide sum — the
// per-shard fault/admission domain invariant shardcheck gates on.
func TestRouterAdmissionIdentity(t *testing.T) {
	r := mustRouter(t, 4)
	events := make([]*Event, 12)
	for i := range events {
		e := mustDefine(t, r, fmt.Sprintf("Admit.%02d", i), dispatch.AsAsync())
		if _, err := e.Install(dispatch.Handler{Proc: proc("h"), Fn: func(any, []any) any { return nil }}); err != nil {
			t.Fatal(err)
		}
		e.SetAdmission(&admit.Policy{Mode: admit.Shed, Depth: 4})
		events[i] = e
	}
	for round := 0; round < 50; round++ {
		for _, e := range events {
			err := e.RaiseAsync(uintptr(round))
			if err != nil && !errors.Is(err, admit.ErrOverload) {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := r.Admission(); s.Drained() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("plane never drained: %+v", r.Admission())
		}
		time.Sleep(time.Millisecond)
	}
	total := admit.QueueStats{}
	for i := 0; i < r.Shards(); i++ {
		s := r.Shard(i).Admission()
		if !s.Identity() {
			t.Fatalf("shard %d ledger violates conservation: %+v", i, s)
		}
		total = total.Add(s)
	}
	if !total.Identity() {
		t.Fatalf("plane ledger violates conservation: %+v", total)
	}
	if total.Submitted != 600 {
		t.Fatalf("plane submitted %d, want 600", total.Submitted)
	}
	if plane := r.Admission(); plane != total {
		t.Fatalf("Router.Admission %+v != shard sum %+v", plane, total)
	}
}

// TestAttachRemoteRejectsOccupiedSlot: converting a slot that owns events
// would invalidate pinned local routes; the router refuses.
func TestAttachRemoteRejectsOccupiedSlot(t *testing.T) {
	r := mustRouter(t, 2)
	e := mustDefine(t, r, "Occupied.A")
	rs := &RemoteShard{Peer: nopRaiser{}, Control: dispatch.New(), Prefix: "X:"}
	if err := r.AttachRemote(e.Shard().ID(), rs); err == nil {
		t.Fatal("AttachRemote replaced a shard that owns events")
	}
	other := 1 - e.Shard().ID()
	empty := true
	for _, ev := range r.Events() {
		if ev.Shard().ID() == other {
			empty = false
		}
	}
	if empty {
		if err := r.AttachRemote(other, rs); err != nil {
			t.Fatalf("AttachRemote on empty slot: %v", err)
		}
		if !r.Shard(other).Remote() {
			t.Fatal("slot not marked remote")
		}
	}
}

type nopRaiser struct{}

func (nopRaiser) Raise(string, ...any) error { return nil }

// TestShardRoutedBypassRaiseZeroAlloc: the 0-alloc invariant the
// alloccheck gate pins — a synchronous bypass (intrinsic-only) raise
// through the router, with multiple shards resident, allocates nothing.
// The routed path adds one atomic route load and a nil check over the
// dispatcher's own pooled fast path.
func TestShardRoutedBypassRaiseZeroAlloc(t *testing.T) {
	r := mustRouter(t, 4)
	events := make([]*Event, 8)
	for i := range events {
		events[i] = mustDefine(t, r, fmt.Sprintf("Zero.%02d", i),
			dispatch.WithIntrinsic(dispatch.Handler{
				Proc: proc("intr"),
				Fn:   func(any, []any) any { return nil },
			}))
	}
	for _, e := range events {
		e := e
		if allocs := testing.AllocsPerRun(1000, func() {
			if _, err := e.Raise1(uintptr(7)); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s: routed bypass raise allocates %.1f/op, want 0", e.Name(), allocs)
		}
	}
}

// TestShardScalingGate: the acceptance floor for the tentpole — 4 shards
// sustain at least 3x the 1-shard aggregate raise throughput under the
// install/raise churn workload, measured in deterministic virtual time.
func TestShardScalingGate(t *testing.T) {
	pts, err := MeasureScalingSweep([]int{1, 4}, ScalingConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := pts[1].Speedup; got < 3.0 {
		t.Fatalf("4-shard speedup %.2fx, want >= 3.0x (balance %.2f)", got, pts[1].Balance)
	}
	for _, p := range pts {
		if p.Installs == 0 || p.Raises == 0 || p.Makespan <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}
