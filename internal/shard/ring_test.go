package shard

import (
	"fmt"
	"testing"
)

func keyNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("Ring.Key.%04d", i)
	}
	return out
}

// TestRingDeterministicOwnership: ownership is a pure function of (name,
// shard count, replicas) — two independently built rings agree on every
// key, which is what makes routing reproducible across boots.
func TestRingDeterministicOwnership(t *testing.T) {
	a := buildRing(4, 0)
	b := buildRing(4, 0)
	for _, name := range keyNames(512) {
		if a.owner(name) != b.owner(name) {
			t.Fatalf("rings disagree on %s: %d vs %d", name, a.owner(name), b.owner(name))
		}
	}
}

// TestRingConsistencyOnGrowth: the defining consistent-hash property —
// growing N to N+1 may move a key only onto the new shard, never between
// surviving shards. pointFor depends only on (shard, replica), so the
// larger ring contains the smaller ring's points unchanged.
func TestRingConsistencyOnGrowth(t *testing.T) {
	names := keyNames(2048)
	for n := 1; n < 8; n++ {
		small, big := buildRing(n, 0), buildRing(n+1, 0)
		moved := 0
		for _, name := range names {
			was, is := small.owner(name), big.owner(name)
			if was == is {
				continue
			}
			if is != n {
				t.Fatalf("grow %d->%d moved %s from %d to %d (not the new shard)", n, n+1, name, was, is)
			}
			moved++
		}
		// Expected capture is ~1/(n+1) of the space; allow a wide band.
		frac := float64(moved) / float64(len(names))
		lo, hi := 0.3/float64(n+1), 2.0/float64(n+1)
		if frac < lo || frac > hi {
			t.Fatalf("grow %d->%d captured %.3f of keys, want within [%.3f, %.3f]", n, n+1, frac, lo, hi)
		}
	}
}

// TestRingBalance: with DefaultReplicas virtual nodes the per-shard key
// population stays within the band the scaling table's speedup depends on.
func TestRingBalance(t *testing.T) {
	r := buildRing(4, 0)
	counts := make([]int, 4)
	for _, name := range keyNames(256) {
		counts[r.owner(name)]++
	}
	min, max := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 || float64(min)/float64(max) < 0.5 {
		t.Fatalf("per-shard key counts %v too skewed", counts)
	}
}
