// Package shard partitions the event space across N dispatcher shards —
// the ROADMAP's "structural unlock": every install, quota charge, fault
// observation, and journal append serializes per shard instead of on one
// dispatcher, while the data plane keeps the single-dispatcher contract
// (lock-free raises against atomically published plans, 0-alloc bypass).
//
// Events are placed by consistent hashing with virtual nodes, so growing
// or shrinking the shard count moves only the events landing on the new
// (or departing) shard's ring points. The Router front preserves the
// Event-handle API: route resolution is pinned into the handle at
// definition time as one atomic pointer, never recomputed per raise, and
// online resharding republishes that pointer with the same swap
// discipline dispatch plans use (see DESIGN.md decision 19).
package shard

import "sort"

// DefaultReplicas is the virtual-node count per shard. 256 points per
// shard keeps the per-shard population near uniform at the shard counts
// the scaling table sweeps (1..8) — measured min/max event balance 0.81
// for 256 events on 4 shards — while the ring stays small enough to
// rebuild on every reshard.
const DefaultReplicas = 256

// point is one virtual node: a hash position owned by a shard.
type point struct {
	hash  uint64
	shard int32
}

// ring is an immutable consistent-hash ring over shards 0..shards-1. A
// reshard builds a new ring; lookups run against whichever ring the caller
// holds, so the structure itself needs no locking.
type ring struct {
	points   []point
	shards   int
	replicas int
}

// fnv64 is FNV-1a over the event name — stable, dependency-free, and fast
// enough for the control plane (routes are resolved at definition time,
// never per raise).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix is the splitmix64 finalizer. Virtual-node positions are derived from
// sequential (shard, replica) indices and key positions from FNV of short
// names; both need a full-avalanche finish to spread uniformly.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// pointFor positions one virtual node. It depends only on (shard,
// replica), which is what makes the hash consistent: a ring with more
// shards contains the smaller ring's points unchanged, so growing N moves
// only the keys the new shard's points capture.
func pointFor(shard, replica int) uint64 {
	return mix(uint64(shard)<<20 | uint64(replica))
}

// buildRing constructs the ring for a shard count.
func buildRing(shards, replicas int) *ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	pts := make([]point, 0, shards*replicas)
	for s := 0; s < shards; s++ {
		for r := 0; r < replicas; r++ {
			pts = append(pts, point{hash: pointFor(s, r), shard: int32(s)})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		// Hash ties (vanishingly rare) break toward the lower shard so
		// ownership stays deterministic across rebuilds.
		return pts[i].shard < pts[j].shard
	})
	return &ring{points: pts, shards: shards, replicas: replicas}
}

// owner returns the shard owning a key: the first virtual node at or after
// the key's position, wrapping at the top of the hash space.
func (r *ring) owner(name string) int {
	h := mix(fnv64(name))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return int(r.points[i].shard)
}
