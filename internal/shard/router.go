package shard

import (
	"fmt"
	"sync"

	"spin/internal/admit"
	"spin/internal/dispatch"
	"spin/internal/rtti"
)

// Raiser carries raises to a remote machine. remote.Peer satisfies it; the
// indirection keeps this package importable from the kernel (internal/remote
// boots kernel machines for its drill rig, so importing it here would
// cycle).
type Raiser interface {
	Raise(event string, args ...any) error
}

// Config assembles a Router.
type Config struct {
	// Shards is the initial shard count (minimum 1).
	Shards int
	// Replicas is the virtual-node count per shard on the hash ring; 0
	// selects DefaultReplicas.
	Replicas int
	// NewShard constructs the dispatcher for shard id. Each call must
	// return a distinct dispatcher — the shard's own admission pool, fault
	// ledger, quota accounting, and (if configured) journal stream are
	// whatever the returned dispatcher owns. Nil selects dispatch.New()
	// with no options. Reshard growth calls it for each new id.
	NewShard func(id int) *dispatch.Dispatcher
}

// RemoteShard places a shard behind a PR-9 peer: raises cross the
// simulated wire with the peer's full failure-domain machinery (retries,
// dedup, circuit breaker, heartbeat partition detection), while
// control-plane operations go to the remote machine's dispatcher directly
// — the simulation's stand-in for the linker loading extensions on that
// machine.
type RemoteShard struct {
	// Peer carries raises to the remote machine (typically *remote.Peer).
	Peer Raiser
	// Control is the remote machine's dispatcher, where the shard's
	// events live.
	Control *dispatch.Dispatcher
	// Prefix namespaces the shard's event names on Control, matching the
	// serving receiver's EventPrefix; wire raises carry the bare name.
	Prefix string
}

// Shard is one slot of the routing plane: a local dispatcher or a remote
// adapter, each its own failure and contention domain.
type Shard struct {
	id int
	d  *dispatch.Dispatcher // nil when remote
	rs *RemoteShard         // nil when local
}

// ID returns the shard's slot index.
func (s *Shard) ID() int { return s.id }

// Remote reports whether the shard lives behind a peer.
func (s *Shard) Remote() bool { return s.rs != nil }

// Dispatcher returns the shard's control-plane dispatcher: its own for a
// local shard, the remote machine's for a remote shard.
func (s *Shard) Dispatcher() *dispatch.Dispatcher {
	if s.rs != nil {
		return s.rs.Control
	}
	return s.d
}

// prefix returns the shard's event-name prefix ("" for local shards).
func (s *Shard) prefix() string {
	if s.rs != nil {
		return s.rs.Prefix
	}
	return ""
}

// Admission aggregates the shard's admission-queue ledgers.
func (s *Shard) Admission() admit.QueueStats {
	var sum admit.QueueStats
	for _, q := range s.Dispatcher().AdmissionQueues() {
		sum = sum.Add(q.Stats())
	}
	return sum
}

// Router is the routing plane: it consistent-hashes event names onto
// shards and hands out Event front handles whose routes are pinned at
// definition time. All Router methods are control plane (they serialize on
// the router mutex); raises go through the handles and never touch the
// router.
type Router struct {
	mu       sync.Mutex
	replicas int
	newShard func(id int) *dispatch.Dispatcher
	ring     *ring
	shards   []*Shard
	events   map[string]*Event
	moves    int64
}

// NewRouter builds the routing plane with cfg.Shards local shards.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: router needs at least 1 shard, got %d", cfg.Shards)
	}
	mk := cfg.NewShard
	if mk == nil {
		mk = func(int) *dispatch.Dispatcher { return dispatch.New() }
	}
	r := &Router{
		replicas: cfg.Replicas,
		newShard: mk,
		ring:     buildRing(cfg.Shards, cfg.Replicas),
		events:   make(map[string]*Event),
	}
	for i := 0; i < cfg.Shards; i++ {
		d := mk(i)
		if d == nil {
			return nil, fmt.Errorf("shard: NewShard(%d) returned nil", i)
		}
		r.shards = append(r.shards, &Shard{id: i, d: d})
	}
	return r, nil
}

// AttachRemote replaces shard id's local dispatcher with a remote adapter.
// Only an empty slot may be converted: events already routed there hold
// pinned local routes that a silent transport change would invalidate —
// grow first, then attach, and let the ring (or a Reshard) place events on
// it.
func (r *Router) AttachRemote(id int, rs *RemoteShard) error {
	if rs == nil || rs.Peer == nil || rs.Control == nil {
		return fmt.Errorf("shard: remote shard needs a peer and a control dispatcher")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id < 0 || id >= len(r.shards) {
		return fmt.Errorf("shard: no shard %d (have %d)", id, len(r.shards))
	}
	for name, e := range r.events {
		if e.loadRoute().s.id == id {
			return fmt.Errorf("shard: shard %d still owns event %s; reshard before attaching", id, name)
		}
	}
	r.shards[id] = &Shard{id: id, rs: rs}
	return nil
}

// Shards returns the current shard count.
func (r *Router) Shards() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.shards)
}

// Shard returns slot i's handle.
func (r *Router) Shard(i int) *Shard {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shards[i]
}

// Owner reports which shard the ring currently assigns a name to.
func (r *Router) Owner(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.owner(name)
}

// Moves reports how many event migrations resharding has performed.
func (r *Router) Moves() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.moves
}

// Admission aggregates every shard's admission ledger into the plane-wide
// view; the conservation law (QueueStats.Identity) survives the sum
// because shard ledgers are disjoint.
func (r *Router) Admission() admit.QueueStats {
	r.mu.Lock()
	shards := append([]*Shard(nil), r.shards...)
	r.mu.Unlock()
	var sum admit.QueueStats
	for _, s := range shards {
		sum = sum.Add(s.Admission())
	}
	return sum
}

// DefineEvent declares an event on the shard the ring assigns its name to
// and returns the routed front handle. Options are the dispatcher's own
// (WithIntrinsic, WithOwner, AsAsync).
func (r *Router) DefineEvent(name string, sig rtti.Signature, opts ...dispatch.EventOption) (*Event, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.events[name]; dup {
		return nil, fmt.Errorf("%w: %s", dispatch.ErrDuplicateEvent, name)
	}
	s := r.shards[r.ring.owner(name)]
	de, err := defineOn(s, name, sig, opts...)
	if err != nil {
		return nil, err
	}
	e := &Event{r: r, name: name, binds: make(map[*dispatch.Binding]*Binding)}
	e.storeRoute(s, de)
	r.events[name] = e
	return e, nil
}

// Lookup returns the routed handle for a defined event.
func (r *Router) Lookup(name string) (*Event, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.events[name]
	return e, ok
}

// Events returns a snapshot of the defined event handles, in no particular
// order.
func (r *Router) Events() []*Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Event, 0, len(r.events))
	for _, e := range r.events {
		out = append(out, e)
	}
	return out
}

// defineOn declares the underlying event on one shard, applying the
// shard's name prefix for remote control planes.
func defineOn(s *Shard, name string, sig rtti.Signature, opts ...dispatch.EventOption) (*dispatch.Event, error) {
	return s.Dispatcher().DefineEvent(s.prefix()+name, sig, opts...)
}
