package shard

import (
	"fmt"

	"spin/internal/dispatch"
	"spin/internal/rtti"
	"spin/internal/vtime"
)

// Scaling measurement for the spinbench shard table. The host machine's
// core count is irrelevant here: each shard meters its own virtual clock
// (the same Alpha-calibrated model every other spinbench table uses), so
// the measurement captures what sharding changes structurally — the
// serialization domain of installs and raises — rather than whatever
// parallelism the build machine happens to offer. A shard's clock advances
// only by the work routed to it; the plane's makespan is the
// slowest-shard clock, exactly the completion time of N dispatchers
// draining their partitions concurrently.

var benchModule = rtti.NewModule("ShardBench")

// ScalingConfig shapes the install/raise churn workload.
type ScalingConfig struct {
	// Events is the number of events defined across the plane.
	Events int
	// Rounds is the number of install-then-raise rounds per event; each
	// round adds one binding, so installs see the paper's §3.1 quadratic
	// recompile growth.
	Rounds int
	// RaisesPerInstall is the number of synchronous raises after each
	// install.
	RaisesPerInstall int
	// Replicas overrides the ring's virtual-node count (0 = default).
	Replicas int
}

func (c ScalingConfig) withDefaults() ScalingConfig {
	if c.Events == 0 {
		c.Events = 256
	}
	if c.Rounds == 0 {
		c.Rounds = 8
	}
	if c.RaisesPerInstall == 0 {
		c.RaisesPerInstall = 32
	}
	return c
}

// ScalingPoint is one row of the shard scaling table.
type ScalingPoint struct {
	// Shards is the plane width.
	Shards int
	// Events is the event population.
	Events int
	// Installs and Raises count the operations the workload performed.
	Installs int64
	Raises   int64
	// Makespan is the slowest shard's virtual clock at quiescence — the
	// plane's completion time.
	Makespan vtime.Duration
	// Throughput is aggregate raises per virtual second (raises over
	// makespan; installs ride inside the same window, which is the point:
	// raise throughput under install churn).
	Throughput float64
	// Speedup is this point's throughput over the 1-shard baseline's;
	// filled by MeasureScalingSweep, 0 from MeasureScaling alone.
	Speedup float64
	// Balance is the min/max ratio of per-shard event populations (1.0 =
	// perfectly uniform).
	Balance float64
}

// MeasureScaling runs the churn workload against an n-shard plane and
// reports the aggregate point. Deterministic: same inputs, same row.
func MeasureScaling(n int, cfg ScalingConfig) (ScalingPoint, error) {
	cfg = cfg.withDefaults()
	clocks := make([]*vtime.Clock, n)
	r, err := NewRouter(Config{
		Shards:   n,
		Replicas: cfg.Replicas,
		NewShard: func(id int) *dispatch.Dispatcher {
			clock := &vtime.Clock{}
			clocks[id] = clock
			return dispatch.New(dispatch.WithCPU(vtime.NewCPU(clock, vtime.AlphaModel())))
		},
	})
	if err != nil {
		return ScalingPoint{}, err
	}

	sig := rtti.Sig(nil, rtti.Word)
	events := make([]*Event, cfg.Events)
	perShard := make([]int, n)
	for i := range events {
		name := fmt.Sprintf("Shard.Churn.%03d", i)
		e, err := r.DefineEvent(name, sig)
		if err != nil {
			return ScalingPoint{}, err
		}
		events[i] = e
		perShard[e.Shard().ID()]++
	}

	h := dispatch.Handler{
		Proc: &rtti.Proc{Name: "ShardBench.H", Module: benchModule, Sig: sig},
		Fn:   func(any, []any) any { return nil },
	}
	pt := ScalingPoint{Shards: n, Events: cfg.Events}
	for round := 0; round < cfg.Rounds; round++ {
		for _, e := range events {
			if _, err := e.Install(h); err != nil {
				return ScalingPoint{}, err
			}
			pt.Installs++
			for k := 0; k < cfg.RaisesPerInstall; k++ {
				if _, err := e.Raise1(uintptr(k)); err != nil {
					return ScalingPoint{}, err
				}
				pt.Raises++
			}
		}
	}

	for _, c := range clocks {
		if d := vtime.Duration(c.Now()); d > pt.Makespan {
			pt.Makespan = d
		}
	}
	if pt.Makespan > 0 {
		pt.Throughput = float64(pt.Raises) / (float64(pt.Makespan) / 1e9)
	}
	minEv, maxEv := perShard[0], perShard[0]
	for _, c := range perShard[1:] {
		if c < minEv {
			minEv = c
		}
		if c > maxEv {
			maxEv = c
		}
	}
	if maxEv > 0 {
		pt.Balance = float64(minEv) / float64(maxEv)
	}
	return pt, nil
}

// MeasureScalingSweep measures each shard count and fills Speedup relative
// to the first point (conventionally 1 shard).
func MeasureScalingSweep(counts []int, cfg ScalingConfig) ([]ScalingPoint, error) {
	pts := make([]ScalingPoint, 0, len(counts))
	for _, n := range counts {
		pt, err := MeasureScaling(n, cfg)
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	if len(pts) > 0 && pts[0].Throughput > 0 {
		for i := range pts {
			pts[i].Speedup = pts[i].Throughput / pts[0].Throughput
		}
	}
	return pts, nil
}
