package shard

import (
	"sync"
	"sync/atomic"

	"spin/internal/admit"
	"spin/internal/dispatch"
	"spin/internal/rtti"
)

// route is an Event's pinned placement, published atomically the way
// dispatch plans are: a raise loads it once and commits — a concurrent
// move cannot strand it halfway. ctl is the underlying dispatch event
// (the control-plane target, and the data plane too when the shard is
// local); local is ctl for local shards and nil for remote ones, so the
// raise fast path is one load and one nil check before delegating to the
// dispatcher's own 0-alloc entry points.
type route struct {
	s     *Shard
	ctl   *dispatch.Event
	local *dispatch.Event
}

// Event is the routed front handle: the same raise/install surface as
// dispatch.Event, with the owning shard resolved at definition time and
// re-pinned only by resharding. Raises are lock-free against the published
// route; control-plane operations serialize on the handle's mutex, which
// is also what a move holds while it migrates the event — so installs
// observed by a move are complete, and installs after it land on the new
// shard.
type Event struct {
	r    *Router
	name string

	route atomic.Pointer[route]

	// ctlMu orders control-plane operations against moves. Never taken on
	// a raise.
	ctlMu sync.Mutex
	// binds maps the live underlying bindings to their front handles so a
	// move can re-point every handle at its reinstalled twin. Guarded by
	// ctlMu.
	binds map[*dispatch.Binding]*Binding
	// base accumulates dispatch statistics from previous shard
	// residencies; Stats() adds the current shard's on top. Guarded by
	// ctlMu.
	base dispatch.Stats
}

// Binding is the routed front handle for one installation. It follows its
// event across shard moves: the underlying dispatch.Binding is republished
// atomically when a move reinstalls it on the destination.
type Binding struct {
	ev        *Event
	cur       atomic.Pointer[dispatch.Binding]
	baseFired int64 // firings on previous shards; guarded by ev.ctlMu
}

// Raw returns the current underlying binding. It is only stable while no
// reshard runs; control-plane callers composing dispatch options (Before,
// After) should do so and install within one control-plane call sequence.
func (b *Binding) Raw() *dispatch.Binding { return b.cur.Load() }

// HandlerName returns the handler procedure's qualified name.
func (b *Binding) HandlerName() string { return b.cur.Load().HandlerName() }

// Installed reports whether the binding is on its event's handler list.
func (b *Binding) Installed() bool { return b.cur.Load().Installed() }

// Quarantined reports whether the binding is compiled out of the plan.
func (b *Binding) Quarantined() bool { return b.cur.Load().Quarantined() }

// Fired reports the handler's firings across every shard residency.
func (b *Binding) Fired() int64 {
	b.ev.ctlMu.Lock()
	defer b.ev.ctlMu.Unlock()
	return b.baseFired + b.cur.Load().Fired()
}

func (e *Event) loadRoute() *route { return e.route.Load() }

func (e *Event) storeRoute(s *Shard, ctl *dispatch.Event) {
	rt := &route{s: s, ctl: ctl}
	if s.rs == nil {
		rt.local = ctl
	}
	e.route.Store(rt)
}

// Name returns the event's router-level name (unprefixed).
func (e *Event) Name() string { return e.name }

// Signature returns the event's procedure signature.
func (e *Event) Signature() rtti.Signature { return e.loadRoute().ctl.Signature() }

// Shard returns the shard currently owning the event.
func (e *Event) Shard() *Shard { return e.loadRoute().s }

// Underlying returns the current underlying dispatch event, for tests and
// tools; like Binding.Raw it is stable only while no reshard runs.
func (e *Event) Underlying() *dispatch.Event { return e.loadRoute().ctl }

// Raise announces the event on its shard. Local shards dispatch in
// process with full result semantics; on a remote shard the raise enters
// the peer's pipeline (retries, dedup, breaker) and the result is nil —
// remote raise verdicts are asynchronous, as in internal/remote.
func (e *Event) Raise(args ...any) (any, error) {
	rt := e.route.Load()
	if rt.local != nil {
		return rt.local.Raise(args...)
	}
	return nil, rt.s.rs.Peer.Raise(e.name, args...)
}

// RaiseAsync raises the event asynchronously (remote raises already are).
func (e *Event) RaiseAsync(args ...any) error {
	rt := e.route.Load()
	if rt.local != nil {
		return rt.local.RaiseAsync(args...)
	}
	return rt.s.rs.Peer.Raise(e.name, args...)
}

// Raise0 raises a no-parameter event through the shard's 0-alloc path.
func (e *Event) Raise0() (any, error) {
	rt := e.route.Load()
	if rt.local != nil {
		return rt.local.Raise0()
	}
	return nil, rt.s.rs.Peer.Raise(e.name)
}

// Raise1 raises the event with one argument; on a local shard this is the
// dispatcher's pooled 0-alloc fast path with one extra atomic load for the
// pinned route.
func (e *Event) Raise1(a1 any) (any, error) {
	rt := e.route.Load()
	if rt.local != nil {
		return rt.local.Raise1(a1)
	}
	return nil, rt.s.rs.Peer.Raise(e.name, a1)
}

// Raise2 raises the event with two arguments.
func (e *Event) Raise2(a1, a2 any) (any, error) {
	rt := e.route.Load()
	if rt.local != nil {
		return rt.local.Raise2(a1, a2)
	}
	return nil, rt.s.rs.Peer.Raise(e.name, a1, a2)
}

// Raise3 raises the event with three arguments.
func (e *Event) Raise3(a1, a2, a3 any) (any, error) {
	rt := e.route.Load()
	if rt.local != nil {
		return rt.local.Raise3(a1, a2, a3)
	}
	return nil, rt.s.rs.Peer.Raise(e.name, a1, a2, a3)
}

// Raise4 raises the event with four arguments.
func (e *Event) Raise4(a1, a2, a3, a4 any) (any, error) {
	rt := e.route.Load()
	if rt.local != nil {
		return rt.local.Raise4(a1, a2, a3, a4)
	}
	return nil, rt.s.rs.Peer.Raise(e.name, a1, a2, a3, a4)
}

// Raise5 raises the event with five arguments.
func (e *Event) Raise5(a1, a2, a3, a4, a5 any) (any, error) {
	rt := e.route.Load()
	if rt.local != nil {
		return rt.local.Raise5(a1, a2, a3, a4, a5)
	}
	return nil, rt.s.rs.Peer.Raise(e.name, a1, a2, a3, a4, a5)
}

// RaiseBatch1 announces the event once per element of flat through the
// shard's vectorized ingress; a remote shard degrades to per-frame peer
// raises (the wire pipeline is the batch amortization there).
func (e *Event) RaiseBatch1(flat []any) dispatch.BatchOutcome {
	rt := e.route.Load()
	if rt.local != nil {
		return rt.local.RaiseBatch1(flat)
	}
	var out dispatch.BatchOutcome
	for _, a := range flat {
		if err := rt.s.rs.Peer.Raise(e.name, a); err != nil {
			out.Shed++
		} else {
			out.Raised++
		}
	}
	return out
}

// Install registers a handler on the event's current shard. The options
// are the dispatcher's own; ordering references (Before/After) must name
// raw bindings obtained from handles of this same event.
func (e *Event) Install(h dispatch.Handler, opts ...dispatch.InstallOption) (*Binding, error) {
	e.ctlMu.Lock()
	defer e.ctlMu.Unlock()
	db, err := e.loadRoute().ctl.Install(h, opts...)
	if err != nil {
		return nil, err
	}
	return e.adoptLocked(db), nil
}

// adoptLocked wraps an underlying binding, registering it for re-pointing
// on moves. Caller holds ctlMu.
func (e *Event) adoptLocked(db *dispatch.Binding) *Binding {
	if wb, ok := e.binds[db]; ok {
		return wb
	}
	wb := &Binding{ev: e}
	wb.cur.Store(db)
	e.binds[db] = wb
	return wb
}

// Uninstall removes a binding installed through this handle.
func (e *Event) Uninstall(b *Binding) error {
	e.ctlMu.Lock()
	defer e.ctlMu.Unlock()
	db := b.cur.Load()
	if err := e.loadRoute().ctl.Uninstall(db); err != nil {
		return err
	}
	delete(e.binds, db)
	return nil
}

// IntrinsicBinding returns the routed handle for the event's intrinsic
// binding, or nil if none is installed.
func (e *Event) IntrinsicBinding() *Binding {
	e.ctlMu.Lock()
	defer e.ctlMu.Unlock()
	db := e.loadRoute().ctl.IntrinsicBinding()
	if db == nil {
		return nil
	}
	return e.adoptLocked(db)
}

// SetDefaultHandler installs (or, with an empty Handler, clears) the
// event's default handler on its current shard.
func (e *Event) SetDefaultHandler(h dispatch.Handler) error {
	e.ctlMu.Lock()
	defer e.ctlMu.Unlock()
	return e.loadRoute().ctl.SetDefaultHandler(h)
}

// SetResultHandler installs the result-merging function.
func (e *Event) SetResultHandler(fn dispatch.ResultFn) error {
	e.ctlMu.Lock()
	defer e.ctlMu.Unlock()
	return e.loadRoute().ctl.SetResultHandler(fn)
}

// SetAdmission gives the event a bounded admission queue on its current
// shard (moves re-create the queue, with a fresh ledger, on the
// destination).
func (e *Event) SetAdmission(pol *admit.Policy) {
	e.ctlMu.Lock()
	defer e.ctlMu.Unlock()
	e.loadRoute().ctl.SetAdmission(pol)
}

// InstallAuthorizer installs the event's authorizer; moves carry it to the
// destination shard.
func (e *Event) InstallAuthorizer(fn dispatch.AuthorizerFn, proof *rtti.Module) error {
	e.ctlMu.Lock()
	defer e.ctlMu.Unlock()
	return e.loadRoute().ctl.InstallAuthorizer(fn, proof)
}

// Stats reports the event's dispatch statistics accumulated across every
// shard residency: counters from shards the event has departed are folded
// into a base the current shard's live counters add to.
func (e *Event) Stats() dispatch.Stats {
	e.ctlMu.Lock()
	defer e.ctlMu.Unlock()
	st := e.loadRoute().ctl.Stats()
	st.Raised += e.base.Raised
	st.Fired += e.base.Fired
	st.Time += e.base.Time
	return st
}

// AdmissionQueue returns the admission queue compiled into the event's
// current plan, or nil.
func (e *Event) AdmissionQueue() *admit.Queue {
	return e.loadRoute().ctl.AdmissionQueue()
}
