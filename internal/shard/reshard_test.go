package shard

import (
	"fmt"
	"testing"
	"time"

	"spin/internal/dispatch"
	"spin/internal/fault"
	"spin/internal/journal"
	"spin/internal/rtti"
)

// TestReshardMovesOnlyCapturedEvents: growth migrates exactly the events
// the new shards' virtual nodes capture — surviving shards keep their
// populations — and every handle still raises correctly afterwards.
func TestReshardMovesOnlyCapturedEvents(t *testing.T) {
	r := mustRouter(t, 2)
	var log []string
	owners := make(map[string]int)
	for i := 0; i < 48; i++ {
		name := fmt.Sprintf("Grow.%03d", i)
		e := mustDefine(t, r, name)
		if _, err := e.Install(rec(name, &log)); err != nil {
			t.Fatal(err)
		}
		owners[name] = e.Shard().ID()
	}
	moved, err := r.Reshard(4)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("growth to 4 shards moved nothing")
	}
	if r.Moves() != int64(moved) {
		t.Fatalf("Moves() = %d, want %d", r.Moves(), moved)
	}
	for _, e := range r.Events() {
		was, is := owners[e.Name()], e.Shard().ID()
		if was != is && is < 2 {
			t.Fatalf("%s moved %d -> %d: between surviving shards", e.Name(), was, is)
		}
		if is != r.Owner(e.Name()) {
			t.Fatalf("%s pinned to %d, ring says %d", e.Name(), is, r.Owner(e.Name()))
		}
		if _, err := e.Raise1(uintptr(1)); err != nil {
			t.Fatalf("%s post-move raise: %v", e.Name(), err)
		}
	}
	if len(log) != 48 {
		t.Fatalf("post-move raises fired %d handlers, want 48", len(log))
	}
}

// reshardScript drives one deterministic install/raise/uninstall workload
// against any event provider, recording handler firings (with event, name,
// and argument) and raise results. Running it against the router with
// reshards interleaved and against one plain dispatcher must produce
// identical traces — the differential oracle for move fidelity.
type scriptEvent interface {
	Install(dispatch.Handler, ...dispatch.InstallOption) (interface{ Fired() int64 }, error)
	SetDefaultHandler(dispatch.Handler) error
	Raise1(any) (any, error)
}

type routedScriptEvent struct{ e *Event }

func (r routedScriptEvent) Install(h dispatch.Handler, opts ...dispatch.InstallOption) (interface{ Fired() int64 }, error) {
	return r.e.Install(h, opts...)
}
func (r routedScriptEvent) SetDefaultHandler(h dispatch.Handler) error { return r.e.SetDefaultHandler(h) }
func (r routedScriptEvent) Raise1(a any) (any, error)                 { return r.e.Raise1(a) }

type plainScriptEvent struct{ e *dispatch.Event }

func (p plainScriptEvent) Install(h dispatch.Handler, opts ...dispatch.InstallOption) (interface{ Fired() int64 }, error) {
	return p.e.Install(h, opts...)
}
func (p plainScriptEvent) SetDefaultHandler(h dispatch.Handler) error { return p.e.SetDefaultHandler(h) }
func (p plainScriptEvent) Raise1(a any) (any, error)                  { return p.e.Raise1(a) }

func runReshardScript(t *testing.T, define func(name string) scriptEvent, checkpoint func(batch int)) (trace []string, fired map[string]int64) {
	t.Helper()
	events := make(map[string]scriptEvent)
	handles := make(map[string]interface{ Fired() int64 })
	logf := func(format string, args ...any) {
		trace = append(trace, fmt.Sprintf(format, args...))
	}
	handler := func(ev, name string, closured bool) dispatch.Handler {
		sig := rtti.Sig(nil, rtti.Word)
		if closured {
			// A closure travels as a declared leading reference parameter.
			sig = rtti.Signature{Args: []rtti.Type{rtti.RefAny, rtti.Word}}
		}
		p := &rtti.Proc{Name: name, Module: testModule, Sig: sig}
		return dispatch.Handler{Proc: p, Fn: func(clo any, args []any) any {
			logf("fire %s %s clo=%v arg=%v", ev, name, clo, args[0])
			return nil
		}}
	}
	guard := func(name string, pass func(uintptr) bool) dispatch.Guard {
		p := &rtti.Proc{Name: name, Module: testModule, Functional: true, Sig: rtti.Sig(rtti.Bool, rtti.Word)}
		return dispatch.Guard{Proc: p, Fn: func(clo any, args []any) bool { return pass(args[0].(uintptr)) }}
	}

	for batch := 0; batch < 4; batch++ {
		// Define a fresh cohort and extend older events.
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("Diff.%d.%02d", batch, i)
			e := define(name)
			events[name] = e
			hn := name + ".h0"
			h, err := e.Install(handler(name, hn, false))
			if err != nil {
				t.Fatalf("%s install: %v", name, err)
			}
			handles[hn] = h
			if i%3 == 0 {
				if err := e.SetDefaultHandler(handler(name, name+".dflt", false)); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Layer guarded, prioritized, and closured handlers on batch 0's
		// events so later moves carry every installation shape.
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("Diff.0.%02d", i)
			hn := fmt.Sprintf("%s.b%d", name, batch)
			h, err := events[name].Install(handler(name, hn, true),
				dispatch.WithGuard(guard(hn+".g", func(a uintptr) bool { return a%2 == 0 })),
				dispatch.WithPriority(batch%3),
				dispatch.WithClosure(fmt.Sprintf("clo-%d", batch)))
			if err != nil {
				t.Fatalf("%s install: %v", name, err)
			}
			handles[hn] = h
		}
		// Raise everything defined so far with both guard-passing and
		// guard-failing arguments.
		for b := 0; b <= batch; b++ {
			for i := 0; i < 8; i++ {
				name := fmt.Sprintf("Diff.%d.%02d", b, i)
				for _, arg := range []uintptr{uintptr(2 * batch), uintptr(2*batch + 1)} {
					res, err := events[name].Raise1(arg)
					logf("raise %s arg=%d res=%v err=%v", name, arg, res, err)
				}
			}
		}
		checkpoint(batch)
	}
	fired = make(map[string]int64, len(handles))
	for hn, h := range handles {
		fired[hn] = h.Fired()
	}
	return trace, fired
}

// TestReshardDifferentialVsSingleDispatcherOracle: the same scripted
// workload runs against (a) a routed plane resharded 1->3->5->2 between
// batches and (b) one plain dispatcher. Fire order within each raise,
// raise results, and cumulative per-binding fire counts must be identical
// — resharding is invisible to dispatch semantics.
func TestReshardDifferentialVsSingleDispatcherOracle(t *testing.T) {
	r := mustRouter(t, 1)
	routedTrace, routedFired := runReshardScript(t,
		func(name string) scriptEvent {
			e, err := r.DefineEvent(name, rtti.Sig(nil, rtti.Word))
			if err != nil {
				t.Fatal(err)
			}
			return routedScriptEvent{e}
		},
		func(batch int) {
			if _, err := r.Reshard([]int{3, 5, 2, 4}[batch]); err != nil {
				t.Fatalf("reshard after batch %d: %v", batch, err)
			}
		})

	d := dispatch.New()
	oracleTrace, oracleFired := runReshardScript(t,
		func(name string) scriptEvent {
			e, err := d.DefineEvent(name, rtti.Sig(nil, rtti.Word))
			if err != nil {
				t.Fatal(err)
			}
			return plainScriptEvent{e}
		},
		func(int) {})

	if len(routedTrace) != len(oracleTrace) {
		t.Fatalf("trace lengths differ: routed %d, oracle %d", len(routedTrace), len(oracleTrace))
	}
	for i := range routedTrace {
		if routedTrace[i] != oracleTrace[i] {
			t.Fatalf("trace diverges at %d:\n  routed: %s\n  oracle: %s", i, routedTrace[i], oracleTrace[i])
		}
	}
	for hn, n := range oracleFired {
		if routedFired[hn] != n {
			t.Fatalf("%s fired %d routed vs %d oracle", hn, routedFired[hn], n)
		}
	}
}

// TestReshardPreservesFaultState: a binding quarantined by fault
// enforcement stays quarantined across a move, and its transferred ledger
// entry keeps the exhausted budget — resharding cannot launder faults.
func TestReshardPreservesFaultState(t *testing.T) {
	// A long backoff keeps quarantines from lifting mid-test.
	pol := fault.Policy{Budget: 2, Backoff: time.Hour}
	r, err := NewRouter(Config{Shards: 1, NewShard: func(int) *dispatch.Dispatcher {
		return dispatch.New(dispatch.WithFaultPolicy(pol))
	}})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for i := 0; i < 24; i++ {
		names = append(names, fmt.Sprintf("Fault.%02d", i))
	}
	var log []string
	events := make(map[string]*Event)
	bad := make(map[string]*Binding)
	for _, name := range names {
		e, err := r.DefineEvent(name, sig1())
		if err != nil {
			t.Fatal(err)
		}
		events[name] = e
		b, err := e.Install(dispatch.Handler{Proc: proc(name + ".bad"), Fn: func(any, []any) any {
			panic("injected")
		}})
		if err != nil {
			t.Fatal(err)
		}
		bad[name] = b
		if _, err := e.Install(rec(name+".good", &log)); err != nil {
			t.Fatal(err)
		}
	}
	// Exhaust each bad binding's panic budget: enforcement quarantines it.
	for _, name := range names {
		for i := 0; i < 2; i++ {
			_, _ = events[name].Raise1(uintptr(i))
		}
		if !bad[name].Quarantined() {
			t.Fatalf("%s not quarantined after budget exhaustion", name)
		}
	}
	if _, err := r.Reshard(4); err != nil {
		t.Fatal(err)
	}
	if r.Moves() == 0 {
		t.Fatal("reshard moved nothing; test proves nothing")
	}
	log = log[:0]
	for _, name := range names {
		if !bad[name].Quarantined() {
			t.Fatalf("%s quarantine lost across move", name)
		}
		if _, err := events[name].Raise1(uintptr(9)); err != nil {
			t.Fatalf("%s post-move raise: %v", name, err)
		}
	}
	if len(log) != len(names) {
		t.Fatalf("post-move raises fired %d good handlers, want %d", len(log), len(names))
	}
	// The transferred ledger entries live on the destination shards now:
	// each bad binding's fault level survived the move.
	for _, name := range names {
		led := events[name].Shard().Dispatcher().FaultLedger()
		if led.State(bad[name].Raw()) != fault.Quarantined {
			t.Fatalf("%s: destination ledger lost the quarantine entry", name)
		}
	}
}

// TestReshardJournalMarkers: with a journal stream per shard, a move
// brackets its uninstalls and re-installs with KindShardMove markers on
// both journals, each journal stays independently replayable through the
// symbolic oracle, and the oracle counts the moves.
func TestReshardJournalMarkers(t *testing.T) {
	sinks := make(map[int]*journal.MemSink)
	jrnls := make(map[int]*journal.Journal)
	mk := func(id int) *dispatch.Dispatcher {
		sink := journal.NewMemSink()
		j := journal.New(journal.Config{Sink: sink, FlushInterval: -1})
		sinks[id] = sink
		jrnls[id] = j
		return dispatch.New(dispatch.WithJournal(j))
	}
	r, err := NewRouter(Config{Shards: 1, NewShard: mk})
	if err != nil {
		t.Fatal(err)
	}
	var log []string
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("Jrnl.%02d", i)
		e := mustDefine(t, r, name)
		if _, err := e.Install(rec(name, &log)); err != nil {
			t.Fatal(err)
		}
	}
	moved, err := r.Reshard(3)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("reshard moved nothing")
	}
	for id, j := range jrnls {
		if err := j.Close(); err != nil {
			t.Fatalf("journal %d close: %v", id, err)
		}
	}
	totalMoves := 0
	for id, sink := range sinks {
		st := journal.NewState()
		if _, err := journal.Replay(sink.Bytes(), st); err != nil {
			t.Fatalf("journal %d replay: %v", id, err)
		}
		totalMoves += st.Moves()
	}
	// Each move marks both the source and destination journal.
	if totalMoves != 2*moved {
		t.Fatalf("journals record %d move markers, want %d (2 per move)", totalMoves, 2*moved)
	}
	// Shard 0's journal must replay into a live dispatcher without
	// stumbling on the markers (ReplayApplier treats them as annotations).
	twin := dispatch.New()
	resolve := func(module, handler string) (dispatch.Handler, []dispatch.InstallOption, bool) {
		return dispatch.Handler{Proc: &rtti.Proc{Name: handler, Module: testModule, Sig: sig1()},
			Fn: func(any, []any) any { return nil }}, nil, true
	}
	for _, e := range r.Events() {
		if _, err := twin.DefineEvent(e.Name(), sig1()); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := twin.ReplayJournal(sinks[0].Bytes(), resolve); err != nil {
		t.Fatalf("replay with shard-move markers: %v", err)
	}
}

// TestReshardShrink: shrinking the plane drains the departing shards'
// whole population back onto the survivors and drops the empty slots.
func TestReshardShrink(t *testing.T) {
	r := mustRouter(t, 4)
	var log []string
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("Shrink.%03d", i)
		e := mustDefine(t, r, name)
		if _, err := e.Install(rec(name, &log)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Reshard(2); err != nil {
		t.Fatal(err)
	}
	if r.Shards() != 2 {
		t.Fatalf("Shards() = %d after shrink, want 2", r.Shards())
	}
	for _, e := range r.Events() {
		if id := e.Shard().ID(); id > 1 {
			t.Fatalf("%s still on departed shard %d", e.Name(), id)
		}
		if _, err := e.Raise1(uintptr(1)); err != nil {
			t.Fatal(err)
		}
	}
	if len(log) != 32 {
		t.Fatalf("post-shrink raises fired %d, want 32", len(log))
	}
}
