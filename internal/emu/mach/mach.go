// Package mach is the Mach system-call emulator extension, reproducing the
// paper's Figure 2: a handler installed on MachineTrap.Syscall with a
// guard (IsMachTask) that recognises threads executing as part of Mach
// tasks, dispatching on the saved v0 register to the Mach VM primitives.
//
// It is loaded as a linker image (the two-phase protocol of §2): phase one
// links it against the MachineTrap and VM interfaces; phase two — its
// module body — installs the syscall handler through the dispatcher.
package mach

import (
	"fmt"

	"spin/internal/dispatch"
	"spin/internal/linker"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/trap"
	"spin/internal/vm"
)

// Module is the MachEmulator's module descriptor.
var Module = rtti.NewModule("MachEmulator", "Mach")

// Mach trap numbers arrive in v0 as negative values (Figure 2's
// "CASE ms.v0 OF | -65 => vm_allocate"). The saved register is unsigned;
// the emulator reinterprets it.
const (
	TrapVMAllocate   = -65
	TrapVMDeallocate = -66
	TrapTaskSelf     = -28
	TrapThreadSelf   = -27
)

// Errno values written back into the saved state.
const (
	KernSuccess        = 0
	KernInvalidArg     = 4
	KernInvalidAddress = 1
)

// taskKey marks a strand as belonging to a Mach task in its Locals.
const taskKey = "mach.task"

// Task is the per-strand Mach task state.
type Task struct {
	// Space is the task's address space.
	Space *vm.AddressSpace
	// NextVA is the allocation cursor for vm_allocate.
	NextVA uint64
}

// Emulator is the loaded extension instance.
type Emulator struct {
	vmsvc *vm.VM
	// Binding is the installed syscall handler's binding.
	Binding *dispatch.Binding
	// Syscalls counts Mach system calls handled.
	Syscalls int64
}

// MakeTask registers a strand as a Mach task over the given address space.
func (e *Emulator) MakeTask(st *sched.Strand, space *vm.AddressSpace) *Task {
	t := &Task{Space: space, NextVA: 0x10000000}
	st.Locals[taskKey] = t
	return t
}

// TaskOf returns the Mach task a strand belongs to, if any.
func TaskOf(st *sched.Strand) (*Task, bool) {
	t, ok := st.Locals[taskKey].(*Task)
	return t, ok
}

// Image builds the extension's linker image. On load it installs the
// Syscall handler with the IsMachTask guard, exactly as Figure 2's module
// initialization block does.
func Image(e *Emulator) *linker.Image {
	return &linker.Image{
		Name:    "mach-emulator",
		Module:  Module,
		Imports: []string{"MachineTrap", "VM"},
		Init: func(ctx *linker.Context) error {
			sysSym, err := ctx.Interface("MachineTrap").Lookup("Syscall")
			if err != nil {
				return err
			}
			vmSym, err := ctx.Interface("VM").Lookup("VM")
			if err != nil {
				return err
			}
			e.vmsvc = vmSym.(*vm.VM)
			ev := sysSym.(*dispatch.Event)

			// (* installation of the syscall handler *)
			// Dispatcher.InstallHandler(MachineTrap.Syscall,
			//                           SyscallGuard, Syscall);
			b, err := ev.Install(dispatch.Handler{
				Proc: &rtti.Proc{Name: "MachEmulator.Syscall", Module: Module, Sig: trap.SyscallSig},
				Fn:   e.syscall,
			}, dispatch.WithGuard(dispatch.Guard{
				Proc: &rtti.Proc{Name: "MachEmulator.SyscallGuard", Module: Module,
					Functional: true,
					Sig:        rtti.Sig(rtti.Bool, sched.StrandType, trap.SavedStateType)},
				Fn: func(clo any, args []any) bool {
					// RETURN IsMachTask(strand)
					_, ok := TaskOf(args[0].(*sched.Strand))
					return ok
				},
			}))
			if err != nil {
				return err
			}
			e.Binding = b
			return nil
		},
	}
}

// syscall is the Mach extension's system call routine (Figure 2).
func (e *Emulator) syscall(clo any, args []any) any {
	st := args[0].(*sched.Strand)
	ms := args[1].(*trap.SavedState)
	task, ok := TaskOf(st)
	if !ok {
		return nil // guard should have filtered; be defensive
	}
	e.Syscalls++
	ms.Handled = true
	switch int64(ms.V0) {
	case TrapVMAllocate:
		e.vmAllocate(task, ms)
	case TrapVMDeallocate:
		e.vmDeallocate(task, ms)
	case TrapTaskSelf:
		ms.Result = task.Space.ID()
		ms.Errno = KernSuccess
	case TrapThreadSelf:
		ms.Result = st.ID()
		ms.Errno = KernSuccess
	default:
		ms.Errno = KernInvalidArg
	}
	return nil
}

// vmAllocate implements vm_allocate: reserve a region and touch its pages
// in via the VM substrate.
func (e *Emulator) vmAllocate(task *Task, ms *trap.SavedState) {
	size := ms.A[0]
	if size == 0 {
		ms.Errno = KernInvalidArg
		return
	}
	base := task.NextVA
	pages := (size + vm.PageSize - 1) / vm.PageSize
	task.NextVA += pages * vm.PageSize
	for p := uint64(0); p < pages; p++ {
		if err := task.Space.Touch(base + p*vm.PageSize); err != nil {
			ms.Errno = KernInvalidAddress
			return
		}
	}
	ms.Result = base
	ms.Errno = KernSuccess
}

// vmDeallocate implements vm_deallocate.
func (e *Emulator) vmDeallocate(task *Task, ms *trap.SavedState) {
	base, size := ms.A[0], ms.A[1]
	if size == 0 {
		ms.Errno = KernInvalidArg
		return
	}
	for addr := base; addr < base+size; addr += vm.PageSize {
		task.Space.Unmap(addr)
	}
	ms.Errno = KernSuccess
}

// Uint64 reinterprets a Mach trap number for storing into SavedState.V0.
func Uint64(trapNo int64) uint64 { return uint64(trapNo) }

// String describes the emulator state.
func (e *Emulator) String() string {
	return fmt.Sprintf("mach emulator: %d syscalls handled", e.Syscalls)
}
