package mach

import (
	"errors"
	"testing"

	"spin/internal/dispatch"
	"spin/internal/kernel"
	"spin/internal/sched"
	"spin/internal/trap"
	"spin/internal/vm"
)

func boot(t *testing.T) (*kernel.Machine, *Emulator) {
	t.Helper()
	m, err := kernel.Boot(kernel.Config{Metered: true})
	if err != nil {
		t.Fatal(err)
	}
	e := &Emulator{}
	if _, err := m.LoadExtension(Image(e)); err != nil {
		t.Fatal(err)
	}
	return m, e
}

func idleStrand(m *kernel.Machine) *sched.Strand {
	return m.Sched.Spawn("task", 1, func(*sched.Strand) sched.Status { return sched.Done })
}

func TestMachTaskGuardFiltersNonMachStrands(t *testing.T) {
	m, e := boot(t)
	outsider := idleStrand(m)
	ms := &trap.SavedState{V0: Uint64(TrapTaskSelf)}
	// No handler fires for a non-Mach strand: the trap is unhandled.
	err := m.Trap.RaiseSyscall(outsider, ms)
	if !errors.Is(err, dispatch.ErrNoHandler) {
		t.Fatalf("err = %v", err)
	}
	if e.Syscalls != 0 || ms.Handled {
		t.Fatal("emulator ran for a non-Mach strand")
	}
}

func TestTaskSelfAndThreadSelf(t *testing.T) {
	m, e := boot(t)
	st := idleStrand(m)
	task := e.MakeTask(st, m.VM.NewSpace())

	ms := &trap.SavedState{V0: Uint64(TrapTaskSelf)}
	if err := m.Trap.RaiseSyscall(st, ms); err != nil {
		t.Fatal(err)
	}
	if ms.Errno != KernSuccess || ms.Result != task.Space.ID() {
		t.Fatalf("task_self = %d errno=%d", ms.Result, ms.Errno)
	}

	ms = &trap.SavedState{V0: Uint64(TrapThreadSelf)}
	_ = m.Trap.RaiseSyscall(st, ms)
	if ms.Result != st.ID() {
		t.Fatalf("thread_self = %d", ms.Result)
	}
	if e.Syscalls != 2 {
		t.Fatalf("syscalls = %d", e.Syscalls)
	}
}

func TestVMAllocateMapsPages(t *testing.T) {
	m, e := boot(t)
	st := idleStrand(m)
	task := e.MakeTask(st, m.VM.NewSpace())

	ms := &trap.SavedState{V0: Uint64(TrapVMAllocate)}
	ms.A[0] = 3 * vm.PageSize
	if err := m.Trap.RaiseSyscall(st, ms); err != nil {
		t.Fatal(err)
	}
	if ms.Errno != KernSuccess {
		t.Fatalf("errno = %d", ms.Errno)
	}
	base := ms.Result
	for p := uint64(0); p < 3; p++ {
		if !task.Space.Mapped(base + p*vm.PageSize) {
			t.Fatalf("page %d not mapped", p)
		}
	}
	if task.Space.Faults != 3 {
		t.Fatalf("faults = %d", task.Space.Faults)
	}
	// A second allocation lands in a disjoint region.
	ms2 := &trap.SavedState{V0: Uint64(TrapVMAllocate)}
	ms2.A[0] = vm.PageSize
	_ = m.Trap.RaiseSyscall(st, ms2)
	if ms2.Result < base+3*vm.PageSize {
		t.Fatalf("regions overlap: %#x vs %#x", ms2.Result, base)
	}
}

func TestVMAllocateZeroSize(t *testing.T) {
	m, e := boot(t)
	st := idleStrand(m)
	e.MakeTask(st, m.VM.NewSpace())
	ms := &trap.SavedState{V0: Uint64(TrapVMAllocate)}
	_ = m.Trap.RaiseSyscall(st, ms)
	if ms.Errno != KernInvalidArg {
		t.Fatalf("errno = %d", ms.Errno)
	}
}

func TestVMDeallocate(t *testing.T) {
	m, e := boot(t)
	st := idleStrand(m)
	task := e.MakeTask(st, m.VM.NewSpace())
	ms := &trap.SavedState{V0: Uint64(TrapVMAllocate)}
	ms.A[0] = 2 * vm.PageSize
	_ = m.Trap.RaiseSyscall(st, ms)
	base := ms.Result

	ms2 := &trap.SavedState{V0: Uint64(TrapVMDeallocate)}
	ms2.A[0], ms2.A[1] = base, 2*vm.PageSize
	_ = m.Trap.RaiseSyscall(st, ms2)
	if ms2.Errno != KernSuccess {
		t.Fatalf("errno = %d", ms2.Errno)
	}
	if task.Space.Mapped(base) || task.Space.Mapped(base+vm.PageSize) {
		t.Fatal("pages still mapped after vm_deallocate")
	}
	// Zero-size deallocate is invalid.
	ms3 := &trap.SavedState{V0: Uint64(TrapVMDeallocate)}
	_ = m.Trap.RaiseSyscall(st, ms3)
	if ms3.Errno != KernInvalidArg {
		t.Fatalf("errno = %d", ms3.Errno)
	}
}

func TestUnknownMachTrap(t *testing.T) {
	m, e := boot(t)
	st := idleStrand(m)
	e.MakeTask(st, m.VM.NewSpace())
	ms := &trap.SavedState{V0: Uint64(-999)}
	if err := m.Trap.RaiseSyscall(st, ms); err != nil {
		t.Fatal(err)
	}
	if ms.Errno != KernInvalidArg || !ms.Handled {
		t.Fatalf("errno = %d handled=%v", ms.Errno, ms.Handled)
	}
	if e.String() == "" {
		t.Fatal("empty String")
	}
}

func TestTaskOf(t *testing.T) {
	m, e := boot(t)
	st := idleStrand(m)
	if _, ok := TaskOf(st); ok {
		t.Fatal("phantom task")
	}
	task := e.MakeTask(st, m.VM.NewSpace())
	got, ok := TaskOf(st)
	if !ok || got != task {
		t.Fatal("TaskOf broken")
	}
}
