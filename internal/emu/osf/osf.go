// Package osf is the Digital UNIX (OSF/1) emulator extension — the second
// of the paper's two operating system emulators and the one that supports
// the X11 document-preview workload of §3.2. It installs a guarded handler
// on MachineTrap.Syscall, implements a UNIX-ish system call interface over
// the netstack and fs substrates, and defines the OsfNet port-management
// events and the Events.EventNotify event that Table 3 reports:
//
//	OsfNet.AddTcpPortHandler  - raised when an application acquires a
//	                            TCP port (e.g. the X server listening)
//	OsfNet.DelTcpPortHandler  - raised when the port is released
//	Events.EventNotify        - raised by the emulator's implementation
//	                            of the UNIX select system call
package osf

import (
	"fmt"

	"spin/internal/dispatch"
	"spin/internal/fs"
	"spin/internal/linker"
	"spin/internal/netstack"
	"spin/internal/rtti"
	"spin/internal/sched"
	"spin/internal/trap"
	"spin/internal/vm"
)

// Module is the OSF emulator's module descriptor.
var Module = rtti.NewModule("OsfEmulator", "OsfNet", "Events")

// OSF/1 system call numbers (the subset the workload exercises).
const (
	SysRead     = 3
	SysWrite    = 4
	SysOpen     = 45
	SysClose    = 6
	SysSelect   = 93
	SysSocket   = 97
	SysConnect  = 98
	SysAccept   = 99
	SysBind     = 104
	SysListen   = 106
	SysRecvFrom = 125
	SysSendTo   = 133
	SysGetPID   = 20
)

// Errno values.
const (
	ESUCCESS    = 0
	EBADF       = 9
	EINVAL      = 22
	EWOULDBLOCK = 35
	ENOSYS      = 78
)

// Socket types for SysSocket.
const (
	SockStream = 1 // TCP
	SockDgram  = 2 // UDP
)

const taskKey = "osf.task"
const extraKey = "osf.extra"

// Extra is the side-channel carrying non-word system call arguments — the
// emulator's stand-in for copying buffers in and out of user memory.
type Extra struct {
	Str  string
	Buf  []byte
	Out  []byte
	Addr string
	Pkt  *netstack.Packet
}

type fdKind int

const (
	fdFile fdKind = iota
	fdUDP
	fdTCPConn
	fdTCPListener
)

type fdEntry struct {
	kind fdKind
	file uint64 // fs descriptor
	udp  *netstack.UDPSocket
	conn *netstack.TCPConn
	lst  *netstack.TCPListener
	port uint16
}

// Task is the per-strand OSF task state: an address space and a
// descriptor table.
type Task struct {
	Space  *vm.AddressSpace
	fds    map[uint64]*fdEntry
	nextFD uint64
}

// TaskOf returns a strand's OSF task, if any.
func TaskOf(st *sched.Strand) (*Task, bool) {
	t, ok := st.Locals[taskKey].(*Task)
	return t, ok
}

// Emulator is the loaded extension instance.
type Emulator struct {
	trap  *trap.Trap
	stack *netstack.Stack
	fs    *fs.FS

	// AddTcpPortHandler, DelTcpPortHandler and EventNotify are the
	// emulator's exported events (Table 3 rows).
	AddTcpPortHandler *dispatch.Event
	DelTcpPortHandler *dispatch.Event
	EventNotify       *dispatch.Event

	// Syscalls counts system calls handled; TcpWatched counts packets
	// seen by the emulator's per-port TCP watcher.
	Syscalls   int64
	TcpWatched int64
	// ports tracks TCP ports the emulator's applications hold.
	ports map[uint16]bool
}

// New builds the emulator over its substrates. Call Image and load the
// result to wire it in.
func New(tr *trap.Trap, stack *netstack.Stack, filesys *fs.FS) *Emulator {
	return &Emulator{trap: tr, stack: stack, fs: filesys, ports: make(map[uint16]bool)}
}

// Attach registers a strand as an OSF task over the given address space.
func (e *Emulator) Attach(st *sched.Strand, space *vm.AddressSpace) *Task {
	t := &Task{Space: space, fds: make(map[uint64]*fdEntry), nextFD: 3}
	st.Locals[taskKey] = t
	return t
}

// Image builds the extension's linker image: it imports MachineTrap and
// Core, defines the OsfNet and Events events, installs the guarded syscall
// handler, and installs the per-port TCP watcher next to the TCP module's
// intrinsic demultiplexer.
func (e *Emulator) Image() *linker.Image {
	return &linker.Image{
		Name:    "osf-emulator",
		Module:  Module,
		Imports: []string{"MachineTrap", "Core"},
		Init: func(ctx *linker.Context) error {
			dSym, err := ctx.Interface("Core").Lookup("Dispatcher")
			if err != nil {
				return err
			}
			d := dSym.(*dispatch.Dispatcher)

			portSig := rtti.Sig(nil, rtti.Word)
			mk := func(name string) (*dispatch.Event, error) {
				return d.DefineEvent(name, portSig, dispatch.WithIntrinsic(dispatch.Handler{
					Proc: &rtti.Proc{Name: name, Module: Module, Sig: portSig},
					Fn:   func(any, []any) any { return nil },
				}))
			}
			if e.AddTcpPortHandler, err = mk("OsfNet.AddTcpPortHandler"); err != nil {
				return err
			}
			if e.DelTcpPortHandler, err = mk("OsfNet.DelTcpPortHandler"); err != nil {
				return err
			}
			notifySig := rtti.Sig(nil, rtti.Word)
			e.EventNotify, err = d.DefineEvent("Events.EventNotify", notifySig,
				dispatch.WithIntrinsic(dispatch.Handler{
					Proc: &rtti.Proc{Name: "Events.EventNotify", Module: Module, Sig: notifySig},
					Fn:   func(any, []any) any { return nil },
				}))
			if err != nil {
				return err
			}

			// The syscall handler, guarded on task membership just as
			// the Mach emulator's is (Figure 2).
			sysSym, err := ctx.Interface("MachineTrap").Lookup("Syscall")
			if err != nil {
				return err
			}
			_, err = sysSym.(*dispatch.Event).Install(dispatch.Handler{
				Proc: &rtti.Proc{Name: "OsfEmulator.Syscall", Module: Module, Sig: trap.SyscallSig},
				Fn:   e.syscall,
			}, dispatch.WithGuard(dispatch.Guard{
				Proc: &rtti.Proc{Name: "OsfEmulator.SyscallGuard", Module: Module,
					Functional: true,
					Sig:        rtti.Sig(rtti.Bool, sched.StrandType, trap.SavedStateType)},
				Fn: func(clo any, args []any) bool {
					_, ok := TaskOf(args[0].(*sched.Strand))
					return ok
				},
			}))
			if err != nil {
				return err
			}

			// The per-port TCP watcher: a handler beside the TCP
			// intrinsic, guarded on the emulator's port set (this is
			// Table 3's second Tcp.PacketArrived handler).
			if e.stack != nil {
				_, err = e.stack.TCPArrived.Install(dispatch.Handler{
					Proc: &rtti.Proc{Name: "OsfNet.TcpWatch", Module: Module,
						Sig: rtti.Sig(nil, rtti.Word, netstack.PacketType)},
					Fn: func(clo any, args []any) any {
						e.TcpWatched++
						return nil
					},
				}, dispatch.WithGuard(e.stack.HeaderGuard("OsfNet.PortOwned",
					func(word uint64, pkt *netstack.Packet) bool {
						return e.ports[uint16(word)]
					})))
				if err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// Sys performs one emulated system call from the given strand: the saved
// state is assembled, the trap is raised, and the result registers are
// returned. This is the workload's "libc".
func (e *Emulator) Sys(st *sched.Strand, num uint64, extra *Extra, args ...uint64) (uint64, uint64) {
	// Errno defaults to ENOSYS: if no emulator claims the call (the
	// strand is not an attached task), the caller must not read success.
	ms := &trap.SavedState{V0: num, Errno: ENOSYS}
	copy(ms.A[:], args)
	if extra != nil {
		st.Locals[extraKey] = extra
	}
	if err := e.trap.RaiseSyscall(st, ms); err != nil {
		return 0, ENOSYS
	}
	delete(st.Locals, extraKey)
	return ms.Result, ms.Errno
}

// syscall is the emulator's MachineTrap.Syscall handler.
func (e *Emulator) syscall(clo any, args []any) any {
	st := args[0].(*sched.Strand)
	ms := args[1].(*trap.SavedState)
	task, ok := TaskOf(st)
	if !ok {
		return nil
	}
	e.Syscalls++
	ms.Handled = true
	ms.Errno = ESUCCESS
	extra, _ := st.Locals[extraKey].(*Extra)
	switch ms.V0 {
	case SysGetPID:
		ms.Result, ms.Errno = st.ID(), ESUCCESS
	case SysOpen:
		e.sysOpen(task, ms, extra)
	case SysClose:
		e.sysClose(task, ms)
	case SysRead:
		e.sysRead(task, ms, extra)
	case SysWrite:
		e.sysWrite(task, ms, extra)
	case SysSocket:
		e.sysSocket(task, ms)
	case SysBind:
		e.sysBind(task, ms)
	case SysListen:
		e.sysListen(task, ms)
	case SysAccept:
		e.sysAccept(task, ms)
	case SysConnect:
		e.sysConnect(task, ms, extra)
	case SysRecvFrom:
		e.sysRecvFrom(task, ms, extra)
	case SysSendTo:
		e.sysSendTo(task, ms, extra)
	case SysSelect:
		e.sysSelect(st, task, ms)
	default:
		ms.Errno = ENOSYS
	}
	return nil
}

func (t *Task) alloc(entry *fdEntry) uint64 {
	fd := t.nextFD
	t.nextFD++
	t.fds[fd] = entry
	return fd
}

func (e *Emulator) sysOpen(task *Task, ms *trap.SavedState, extra *Extra) {
	if e.fs == nil || extra == nil {
		ms.Errno = EINVAL
		return
	}
	ffd, err := e.fs.Open(extra.Str)
	if err != nil {
		ms.Errno = EINVAL
		return
	}
	ms.Result, ms.Errno = task.alloc(&fdEntry{kind: fdFile, file: ffd}), ESUCCESS
}

func (e *Emulator) sysClose(task *Task, ms *trap.SavedState) {
	fd := ms.A[0]
	ent, ok := task.fds[fd]
	if !ok {
		ms.Errno = EBADF
		return
	}
	switch ent.kind {
	case fdFile:
		_ = e.fs.Close(ent.file)
	case fdUDP:
		_ = ent.udp.Close()
	case fdTCPConn:
		_ = ent.conn.Close()
	case fdTCPListener:
		ent.lst.Close()
		delete(e.ports, ent.port)
		_, _ = e.DelTcpPortHandler.Raise(uint64(ent.port))
	}
	delete(task.fds, fd)
	ms.Errno = ESUCCESS
}

func (e *Emulator) sysRead(task *Task, ms *trap.SavedState, extra *Extra) {
	ent, ok := task.fds[ms.A[0]]
	if !ok {
		ms.Errno = EBADF
		return
	}
	n := int(ms.A[1])
	switch ent.kind {
	case fdFile:
		data, err := e.fs.Read(ent.file, n)
		if err != nil {
			ms.Errno = EINVAL
			return
		}
		if extra != nil {
			extra.Out = data
		}
		ms.Result, ms.Errno = uint64(len(data)), ESUCCESS
	case fdTCPConn:
		data, ok := ent.conn.Recv()
		if !ok {
			if ent.conn.EOF() {
				ms.Result, ms.Errno = 0, ESUCCESS
				return
			}
			ms.Errno = EWOULDBLOCK
			return
		}
		if extra != nil {
			extra.Out = data
		}
		ms.Result, ms.Errno = uint64(len(data)), ESUCCESS
	default:
		ms.Errno = EINVAL
	}
}

func (e *Emulator) sysWrite(task *Task, ms *trap.SavedState, extra *Extra) {
	ent, ok := task.fds[ms.A[0]]
	if !ok {
		ms.Errno = EBADF
		return
	}
	if extra == nil {
		ms.Errno = EINVAL
		return
	}
	switch ent.kind {
	case fdFile:
		if err := e.fs.Write(ent.file, extra.Buf); err != nil {
			ms.Errno = EINVAL
			return
		}
	case fdTCPConn:
		if err := ent.conn.Send(extra.Buf); err != nil {
			ms.Errno = EINVAL
			return
		}
	default:
		ms.Errno = EINVAL
		return
	}
	ms.Result, ms.Errno = uint64(len(extra.Buf)), ESUCCESS
}

func (e *Emulator) sysSocket(task *Task, ms *trap.SavedState) {
	switch ms.A[0] {
	case SockStream:
		ms.Result, ms.Errno = task.alloc(&fdEntry{kind: fdTCPConn}), ESUCCESS
	case SockDgram:
		ms.Result, ms.Errno = task.alloc(&fdEntry{kind: fdUDP}), ESUCCESS
	default:
		ms.Errno = EINVAL
	}
}

func (e *Emulator) sysBind(task *Task, ms *trap.SavedState) {
	ent, ok := task.fds[ms.A[0]]
	if !ok {
		ms.Errno = EBADF
		return
	}
	port := uint16(ms.A[1])
	switch ent.kind {
	case fdUDP:
		sock, err := e.stack.BindUDP(port)
		if err != nil {
			ms.Errno = EINVAL
			return
		}
		ent.udp = sock
	case fdTCPConn:
		ent.port = port // bound, listen() activates it
	default:
		ms.Errno = EINVAL
		return
	}
	ms.Errno = ESUCCESS
}

func (e *Emulator) sysListen(task *Task, ms *trap.SavedState) {
	ent, ok := task.fds[ms.A[0]]
	if !ok || ent.kind != fdTCPConn || ent.port == 0 {
		ms.Errno = EBADF
		return
	}
	lst, err := e.stack.ListenTCP(ent.port)
	if err != nil {
		ms.Errno = EINVAL
		return
	}
	ent.kind = fdTCPListener
	ent.lst = lst
	e.ports[ent.port] = true
	_, _ = e.AddTcpPortHandler.Raise(uint64(ent.port))
	ms.Errno = ESUCCESS
}

func (e *Emulator) sysAccept(task *Task, ms *trap.SavedState) {
	ent, ok := task.fds[ms.A[0]]
	if !ok || ent.kind != fdTCPListener {
		ms.Errno = EBADF
		return
	}
	conn, ready := ent.lst.Accept()
	if !ready {
		ms.Errno = EWOULDBLOCK
		return
	}
	ms.Result = task.alloc(&fdEntry{kind: fdTCPConn, conn: conn, port: conn.LocalPort()})
	ms.Errno = ESUCCESS
}

func (e *Emulator) sysConnect(task *Task, ms *trap.SavedState, extra *Extra) {
	ent, ok := task.fds[ms.A[0]]
	if !ok || ent.kind != fdTCPConn || extra == nil {
		ms.Errno = EBADF
		return
	}
	conn, err := e.stack.DialTCP(extra.Addr, uint16(ms.A[1]))
	if err != nil {
		ms.Errno = EINVAL
		return
	}
	ent.conn = conn
	ms.Errno = ESUCCESS
}

func (e *Emulator) sysRecvFrom(task *Task, ms *trap.SavedState, extra *Extra) {
	ent, ok := task.fds[ms.A[0]]
	if !ok || ent.kind != fdUDP || ent.udp == nil {
		ms.Errno = EBADF
		return
	}
	pkt, ready := ent.udp.Recv()
	if !ready {
		ms.Errno = EWOULDBLOCK
		return
	}
	if extra != nil {
		extra.Out = pkt.Payload
		extra.Pkt = pkt
	}
	ms.Result, ms.Errno = uint64(len(pkt.Payload)), ESUCCESS
}

func (e *Emulator) sysSendTo(task *Task, ms *trap.SavedState, extra *Extra) {
	ent, ok := task.fds[ms.A[0]]
	if !ok || ent.kind != fdUDP || ent.udp == nil || extra == nil {
		ms.Errno = EBADF
		return
	}
	if err := ent.udp.Send(extra.Addr, uint16(ms.A[1]), extra.Buf); err != nil {
		ms.Errno = EINVAL
		return
	}
	ms.Result, ms.Errno = uint64(len(extra.Buf)), ESUCCESS
}

// sysSelect implements the UNIX select call: it raises Events.EventNotify
// (Table 3: "Event.EventNotify is raised by our implementation of the Unix
// select system call") and reports a readiness bitmask over the descriptor
// numbers passed in A[0..2] (0 terminates the list).
func (e *Emulator) sysSelect(st *sched.Strand, task *Task, ms *trap.SavedState) {
	_, _ = e.EventNotify.Raise(st.ID())
	var mask uint64
	for i, fd := range ms.A[:3] {
		if fd == 0 {
			break
		}
		if e.readable(task, fd) {
			mask |= 1 << uint(i)
		}
	}
	ms.Result, ms.Errno = mask, ESUCCESS
}

func (e *Emulator) readable(task *Task, fd uint64) bool {
	ent, ok := task.fds[fd]
	if !ok {
		return false
	}
	switch ent.kind {
	case fdUDP:
		return ent.udp != nil && ent.udp.Pending() > 0
	case fdTCPConn:
		return ent.conn != nil && ent.conn.Readable()
	case fdTCPListener:
		return ent.lst.Ready()
	}
	return false
}

// AwaitReadable registers st for wakeup when the descriptor becomes
// readable; the strand returns sched.Block after calling it.
func (e *Emulator) AwaitReadable(st *sched.Strand, fd uint64) error {
	task, ok := TaskOf(st)
	if !ok {
		return fmt.Errorf("osf: strand %d is not an OSF task", st.ID())
	}
	ent, ok := task.fds[fd]
	if !ok {
		return fmt.Errorf("osf: bad fd %d", fd)
	}
	switch ent.kind {
	case fdUDP:
		ent.udp.AwaitPacket(st)
	case fdTCPConn:
		ent.conn.AwaitData(st)
	case fdTCPListener:
		ent.lst.AwaitConn(st)
	default:
		return fmt.Errorf("osf: fd %d not waitable", fd)
	}
	return nil
}

// ConnOf exposes the TCP connection behind a descriptor (for workload
// bookkeeping).
func (e *Emulator) ConnOf(st *sched.Strand, fd uint64) (*netstack.TCPConn, bool) {
	task, ok := TaskOf(st)
	if !ok {
		return nil, false
	}
	ent, ok := task.fds[fd]
	if !ok || ent.kind != fdTCPConn {
		return nil, false
	}
	return ent.conn, ent.conn != nil
}
