package osf

import (
	"testing"

	"spin/internal/fs"
	"spin/internal/kernel"
	"spin/internal/netstack"
	"spin/internal/netwire"
	"spin/internal/sched"
)

// rig boots two machines with stacks and loads the OSF emulator on A.
type rig struct {
	a, b   *kernel.Machine
	sa, sb *netstack.Stack
	fsA    *fs.FS
	emu    *Emulator
}

func boot(t *testing.T) *rig {
	t.Helper()
	a, err := kernel.Boot(kernel.Config{Name: "a", Metered: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := kernel.Boot(kernel.Config{Name: "b", ShareWith: a})
	if err != nil {
		t.Fatal(err)
	}
	link := netwire.NewLink(a.Sim, 0, 0)
	nicA, _ := link.Attach("mac-a")
	nicB, _ := link.Attach("mac-b")
	arp := map[string]string{"10.0.0.1": "mac-a", "10.0.0.2": "mac-b"}
	sa, err := netstack.New(netstack.Config{Dispatcher: a.Dispatcher, CPU: a.CPU,
		Sched: a.Sched, NIC: nicA, IP: "10.0.0.1", ARP: arp})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := netstack.New(netstack.Config{Dispatcher: b.Dispatcher, CPU: b.CPU,
		Sched: b.Sched, NIC: nicB, IP: "10.0.0.2", ARP: arp, Prefix: "B:"})
	if err != nil {
		t.Fatal(err)
	}
	fsA, err := fs.New(a.Dispatcher, a.CPU, "")
	if err != nil {
		t.Fatal(err)
	}
	emu := New(a.Trap, sa, fsA)
	if _, err := a.LoadExtension(emu.Image()); err != nil {
		t.Fatal(err)
	}
	return &rig{a: a, b: b, sa: sa, sb: sb, fsA: fsA, emu: emu}
}

func (r *rig) task(t *testing.T) *sched.Strand {
	st := r.a.Sched.Spawn("osf-task", 1, func(*sched.Strand) sched.Status { return sched.Done })
	r.emu.Attach(st, r.a.VM.NewSpace())
	return st
}

func TestGetPID(t *testing.T) {
	r := boot(t)
	st := r.task(t)
	pid, errno := r.emu.Sys(st, SysGetPID, nil)
	if errno != ESUCCESS || pid != st.ID() {
		t.Fatalf("pid=%d errno=%d", pid, errno)
	}
	if r.emu.Syscalls != 1 {
		t.Fatalf("syscalls = %d", r.emu.Syscalls)
	}
}

func TestFileSyscalls(t *testing.T) {
	r := boot(t)
	st := r.task(t)
	r.fsA.Put("/etc/fonts.dir", []byte("fixed.fon"))

	fd, errno := r.emu.Sys(st, SysOpen, &Extra{Str: "/etc/fonts.dir"})
	if errno != ESUCCESS {
		t.Fatalf("open errno = %d", errno)
	}
	ex := &Extra{}
	n, errno := r.emu.Sys(st, SysRead, ex, fd, 100)
	if errno != ESUCCESS || string(ex.Out) != "fixed.fon" || n != 9 {
		t.Fatalf("read = %q n=%d errno=%d", ex.Out, n, errno)
	}
	if _, errno := r.emu.Sys(st, SysWrite, &Extra{Buf: []byte(" extra")}, fd); errno != ESUCCESS {
		t.Fatalf("write errno = %d", errno)
	}
	if _, errno := r.emu.Sys(st, SysClose, nil, fd); errno != ESUCCESS {
		t.Fatalf("close errno = %d", errno)
	}
	if got, _ := r.fsA.Get("/etc/fonts.dir"); string(got) != "fixed.fon extra" {
		t.Fatalf("content = %q", got)
	}
	// Bad fd after close.
	if _, errno := r.emu.Sys(st, SysRead, &Extra{}, fd, 1); errno != EBADF {
		t.Fatalf("errno = %d", errno)
	}
}

func TestUDPSyscalls(t *testing.T) {
	r := boot(t)
	st := r.task(t)
	fd, errno := r.emu.Sys(st, SysSocket, nil, SockDgram)
	if errno != ESUCCESS {
		t.Fatal("socket failed")
	}
	if _, errno := r.emu.Sys(st, SysBind, nil, fd, 53); errno != ESUCCESS {
		t.Fatal("bind failed")
	}
	// Nothing pending yet.
	if _, errno := r.emu.Sys(st, SysRecvFrom, &Extra{}, fd); errno != EWOULDBLOCK {
		t.Fatalf("errno = %d", errno)
	}
	// Peer sends a datagram.
	peer, _ := r.sb.BindUDP(5000)
	_ = peer.Send("10.0.0.1", 53, []byte("query"))
	r.a.Sim.Run(0)
	ex := &Extra{}
	n, errno := r.emu.Sys(st, SysRecvFrom, ex, fd)
	if errno != ESUCCESS || n != 5 || string(ex.Out) != "query" {
		t.Fatalf("recvfrom = %q errno=%d", ex.Out, errno)
	}
	// Reply.
	if _, errno := r.emu.Sys(st, SysSendTo, &Extra{Addr: ex.Pkt.SrcIP, Buf: []byte("answer")}, fd, uint64(ex.Pkt.SrcPort)); errno != ESUCCESS {
		t.Fatal("sendto failed")
	}
	r.a.Sim.Run(0)
	got, ok := peer.Recv()
	if !ok || string(got.Payload) != "answer" {
		t.Fatalf("peer got %v", got)
	}
}

func TestTCPServerSyscallsAndPortEvents(t *testing.T) {
	r := boot(t)
	st := r.task(t)

	// socket/bind/listen: listen raises OsfNet.AddTcpPortHandler.
	fd, _ := r.emu.Sys(st, SysSocket, nil, SockStream)
	if _, errno := r.emu.Sys(st, SysBind, nil, fd, 6000); errno != ESUCCESS {
		t.Fatal("bind failed")
	}
	if _, errno := r.emu.Sys(st, SysListen, nil, fd); errno != ESUCCESS {
		t.Fatal("listen failed")
	}
	if got := r.emu.AddTcpPortHandler.Stats().Raised; got != 1 {
		t.Fatalf("AddTcpPortHandler raised = %d", got)
	}

	// Nothing to accept yet.
	if _, errno := r.emu.Sys(st, SysAccept, nil, fd); errno != EWOULDBLOCK {
		t.Fatal("phantom accept")
	}

	// Peer dials in and sends data.
	conn, err := r.sb.DialTCP("10.0.0.1", 6000)
	if err != nil {
		t.Fatal(err)
	}
	r.a.Sim.Run(0)
	cfd, errno := r.emu.Sys(st, SysAccept, nil, fd)
	if errno != ESUCCESS {
		t.Fatalf("accept errno = %d", errno)
	}
	if !conn.Established() {
		t.Fatal("handshake incomplete")
	}
	_ = conn.Send([]byte("XOpenDisplay"))
	r.a.Sim.Run(0)
	ex := &Extra{}
	n, errno := r.emu.Sys(st, SysRead, ex, cfd, 1024)
	if errno != ESUCCESS || string(ex.Out) != "XOpenDisplay" || n != 12 {
		t.Fatalf("read = %q errno=%d", ex.Out, errno)
	}
	// Server replies through write.
	if _, errno := r.emu.Sys(st, SysWrite, &Extra{Buf: []byte("ok")}, cfd); errno != ESUCCESS {
		t.Fatal("write failed")
	}
	r.a.Sim.Run(0)
	if d, ok := conn.Recv(); !ok || string(d) != "ok" {
		t.Fatalf("peer got %q", d)
	}

	// The OsfNet TCP watcher saw the inbound packets on the owned port.
	if r.emu.TcpWatched == 0 {
		t.Fatal("TCP port watcher never fired")
	}

	// Closing the listener raises DelTcpPortHandler.
	if _, errno := r.emu.Sys(st, SysClose, nil, fd); errno != ESUCCESS {
		t.Fatal("close failed")
	}
	if got := r.emu.DelTcpPortHandler.Stats().Raised; got != 1 {
		t.Fatalf("DelTcpPortHandler raised = %d", got)
	}
}

func TestSelectRaisesEventNotify(t *testing.T) {
	r := boot(t)
	st := r.task(t)
	fd, _ := r.emu.Sys(st, SysSocket, nil, SockDgram)
	_, _ = r.emu.Sys(st, SysBind, nil, fd, 53)

	mask, errno := r.emu.Sys(st, SysSelect, nil, fd)
	if errno != ESUCCESS || mask != 0 {
		t.Fatalf("select = %#x errno=%d", mask, errno)
	}
	peer, _ := r.sb.BindUDP(5000)
	_ = peer.Send("10.0.0.1", 53, []byte("x"))
	r.a.Sim.Run(0)
	mask, _ = r.emu.Sys(st, SysSelect, nil, fd)
	if mask != 1 {
		t.Fatalf("select after delivery = %#x", mask)
	}
	if got := r.emu.EventNotify.Stats().Raised; got != 2 {
		t.Fatalf("EventNotify raised = %d", got)
	}
}

func TestSyscallFromNonTaskIsUnhandled(t *testing.T) {
	r := boot(t)
	st := r.a.Sched.Spawn("stranger", 1, func(*sched.Strand) sched.Status { return sched.Done })
	if _, errno := r.emu.Sys(st, SysGetPID, nil); errno != ENOSYS {
		t.Fatalf("errno = %d", errno)
	}
	if r.emu.Syscalls != 0 {
		t.Fatal("emulator handled a stranger's syscall")
	}
}

func TestUnknownSyscall(t *testing.T) {
	r := boot(t)
	st := r.task(t)
	if _, errno := r.emu.Sys(st, 9999, nil); errno != ENOSYS {
		t.Fatalf("errno = %d", errno)
	}
}

func TestAwaitReadable(t *testing.T) {
	r := boot(t)
	received := ""
	var emuTask *Task
	serverDone := false
	st := r.a.Sched.Spawn("server", 1, func(st *sched.Strand) sched.Status {
		if emuTask == nil {
			t.Fatal("task not attached")
		}
		fd := uint64(3) // first allocated descriptor
		ex := &Extra{}
		n, errno := r.emu.Sys(st, SysRecvFrom, ex, fd)
		if errno == EWOULDBLOCK {
			if err := r.emu.AwaitReadable(st, fd); err != nil {
				t.Error(err)
				return sched.Done
			}
			return sched.Block
		}
		if errno == ESUCCESS && n > 0 {
			received = string(ex.Out)
			serverDone = true
		}
		return sched.Done
	})
	emuTask = r.emu.Attach(st, r.a.VM.NewSpace())
	// Bind the socket before the strand first runs.
	fd, _ := r.emu.Sys(st, SysSocket, nil, SockDgram)
	if fd != 3 {
		t.Fatalf("fd = %d", fd)
	}
	_, _ = r.emu.Sys(st, SysBind, nil, fd, 53)

	peer, _ := r.sb.BindUDP(5000)
	r.b.Sched.Spawn("peer", 1, func(st *sched.Strand) sched.Status {
		_ = peer.Send("10.0.0.1", 53, []byte("wake-up"))
		return sched.Done
	})
	r.a.Sim.Run(0)
	if !serverDone || received != "wake-up" {
		t.Fatalf("received = %q done=%v", received, serverDone)
	}
}

// TestSyscallErrorPaths sweeps the emulator's failure branches: bad
// descriptors, wrong descriptor kinds, and missing side-channel buffers.
func TestSyscallErrorPaths(t *testing.T) {
	r := boot(t)
	st := r.task(t)

	// Bad descriptors everywhere.
	for _, num := range []uint64{SysClose, SysRead, SysWrite, SysBind,
		SysListen, SysAccept, SysConnect, SysRecvFrom, SysSendTo} {
		if _, errno := r.emu.Sys(st, num, &Extra{Buf: []byte("x"), Addr: "10.0.0.2"}, 999); errno != EBADF {
			t.Errorf("syscall %d on bad fd: errno = %d, want EBADF", num, errno)
		}
	}

	// Socket with an unknown type.
	if _, errno := r.emu.Sys(st, SysSocket, nil, 77); errno != EINVAL {
		t.Errorf("bad socket type errno = %d", errno)
	}

	// A TCP socket is not a UDP socket.
	tcpFD, _ := r.emu.Sys(st, SysSocket, nil, SockStream)
	if _, errno := r.emu.Sys(st, SysRecvFrom, &Extra{}, tcpFD); errno != EBADF {
		t.Errorf("recvfrom on tcp fd errno = %d", errno)
	}
	if _, errno := r.emu.Sys(st, SysSendTo, &Extra{Buf: []byte("x"), Addr: "10.0.0.2"}, tcpFD, 7); errno != EBADF {
		t.Errorf("sendto on tcp fd errno = %d", errno)
	}
	// Listen before bind.
	if _, errno := r.emu.Sys(st, SysListen, nil, tcpFD); errno != EBADF {
		t.Errorf("listen before bind errno = %d", errno)
	}
	// Accept on a non-listener.
	if _, errno := r.emu.Sys(st, SysAccept, nil, tcpFD); errno != EBADF {
		t.Errorf("accept on conn fd errno = %d", errno)
	}
	// Write with no buffer side channel.
	fileFD, _ := r.emu.Sys(st, SysOpen, &Extra{Str: "/tmp/x"})
	if _, errno := r.emu.Sys(st, SysWrite, nil, fileFD); errno != EINVAL {
		t.Errorf("write without extra errno = %d", errno)
	}
	// Read on a UDP fd (not a stream).
	udpFD, _ := r.emu.Sys(st, SysSocket, nil, SockDgram)
	if _, errno := r.emu.Sys(st, SysRead, &Extra{}, udpFD, 10); errno != EINVAL {
		t.Errorf("read on udp fd errno = %d", errno)
	}
	// Open without a string.
	if _, errno := r.emu.Sys(st, SysOpen, nil); errno != EINVAL {
		t.Errorf("open without extra errno = %d", errno)
	}
	// Connect without an address.
	fd2, _ := r.emu.Sys(st, SysSocket, nil, SockStream)
	if _, errno := r.emu.Sys(st, SysConnect, nil, fd2, 80); errno != EBADF {
		t.Errorf("connect without extra errno = %d", errno)
	}
	// Bind a UDP port twice (conflict surfaces as EINVAL).
	u1, _ := r.emu.Sys(st, SysSocket, nil, SockDgram)
	u2, _ := r.emu.Sys(st, SysSocket, nil, SockDgram)
	if _, errno := r.emu.Sys(st, SysBind, nil, u1, 99); errno != ESUCCESS {
		t.Fatalf("first bind failed")
	}
	if _, errno := r.emu.Sys(st, SysBind, nil, u2, 99); errno != EINVAL {
		t.Errorf("conflicting bind errno = %d", errno)
	}
	// Bind on a file descriptor.
	if _, errno := r.emu.Sys(st, SysBind, nil, fileFD, 100); errno != EINVAL {
		t.Errorf("bind on file fd errno = %d", errno)
	}
}

func TestConnectSyscall(t *testing.T) {
	r := boot(t)
	st := r.task(t)
	lst, err := r.sb.ListenTCP(7777)
	if err != nil {
		t.Fatal(err)
	}
	fd, _ := r.emu.Sys(st, SysSocket, nil, SockStream)
	if _, errno := r.emu.Sys(st, SysConnect, &Extra{Addr: "10.0.0.2"}, fd, 7777); errno != ESUCCESS {
		t.Fatalf("connect errno = %d", errno)
	}
	r.a.Sim.Run(0)
	if _, ok := lst.Accept(); !ok {
		t.Fatal("server never saw the connection")
	}
	conn, ok := r.emu.ConnOf(st, fd)
	if !ok || !conn.Established() {
		t.Fatal("client connection not established")
	}
	// write/read over the connected socket.
	if _, errno := r.emu.Sys(st, SysWrite, &Extra{Buf: []byte("hi")}, fd); errno != ESUCCESS {
		t.Fatal("write failed")
	}
}

func TestConnOfAndAwaitErrors(t *testing.T) {
	r := boot(t)
	st := r.task(t)
	if _, ok := r.emu.ConnOf(st, 999); ok {
		t.Fatal("ConnOf on bad fd")
	}
	stranger := r.a.Sched.Spawn("x", 0, func(*sched.Strand) sched.Status { return sched.Done })
	if _, ok := r.emu.ConnOf(stranger, 3); ok {
		t.Fatal("ConnOf on non-task strand")
	}
	if err := r.emu.AwaitReadable(stranger, 3); err == nil {
		t.Fatal("AwaitReadable on non-task strand")
	}
	if err := r.emu.AwaitReadable(st, 999); err == nil {
		t.Fatal("AwaitReadable on bad fd")
	}
	fileFD, _ := r.emu.Sys(st, SysOpen, &Extra{Str: "/f"})
	if err := r.emu.AwaitReadable(st, fileFD); err == nil {
		t.Fatal("AwaitReadable on file fd")
	}
}

func TestSelectOnListenerAndConn(t *testing.T) {
	r := boot(t)
	st := r.task(t)
	fd, _ := r.emu.Sys(st, SysSocket, nil, SockStream)
	_, _ = r.emu.Sys(st, SysBind, nil, fd, 6000)
	_, _ = r.emu.Sys(st, SysListen, nil, fd)
	mask, _ := r.emu.Sys(st, SysSelect, nil, fd)
	if mask != 0 {
		t.Fatalf("idle listener readable: %#x", mask)
	}
	_, _ = r.sb.DialTCP("10.0.0.1", 6000)
	r.a.Sim.Run(0)
	mask, _ = r.emu.Sys(st, SysSelect, nil, fd)
	if mask != 1 {
		t.Fatalf("pending listener mask = %#x", mask)
	}
	cfd, errno := r.emu.Sys(st, SysAccept, nil, fd)
	if errno != ESUCCESS {
		t.Fatal("accept failed")
	}
	mask, _ = r.emu.Sys(st, SysSelect, nil, cfd)
	if mask != 0 {
		t.Fatalf("idle conn readable: %#x", mask)
	}
}
