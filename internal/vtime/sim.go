package vtime

import (
	"container/heap"
	"fmt"
)

// Simulator is a discrete-event scheduler over a virtual clock. Substrates
// that need to act "later" in virtual time — wire delivery in netwire,
// timer expiry in the scheduler, asynchronous event raises in metered mode —
// enqueue callbacks at future instants; Run drains the queue, advancing the
// clock to each event's time before invoking it.
//
// The simulator is deliberately single-threaded: one goroutine calls Run (or
// Step) and all callbacks execute on it. This mirrors the paper's
// measurement setup, where the two machines in the UDP experiment alternate
// between processing and idling on the wire, and it makes virtual-time
// accounting deterministic.
type Simulator struct {
	clock *Clock
	queue eventHeap
	seq   uint64
	// idleSink, when non-nil, receives the duration of every clock jump
	// performed by the simulator while dequeuing (time during which no
	// code executed). The document-preview workload points this at its
	// CPU meter so idle time shows up in the §3.2 breakdown.
	idleSink *CPU
}

// NewSimulator creates a simulator over clock.
func NewSimulator(clock *Clock) *Simulator {
	return &Simulator{clock: clock}
}

// Clock returns the simulator's clock.
func (s *Simulator) Clock() *Clock { return s.clock }

// AccountIdleTo directs clock jumps (gaps with nothing scheduled to run) to
// cpu's idle account.
func (s *Simulator) AccountIdleTo(cpu *CPU) { s.idleSink = cpu }

// At schedules fn to run at instant t. Scheduling in the past (before the
// current clock reading) panics: it would require time travel and always
// indicates a substrate bug.
func (s *Simulator) At(t Time, fn func()) {
	if fn == nil {
		panic("vtime: Simulator.At with nil callback")
	}
	if t < s.clock.Now() {
		panic(fmt.Sprintf("vtime: event scheduled at %v, before now %v", t, s.clock.Now()))
	}
	s.seq++
	heap.Push(&s.queue, &simEvent{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current instant.
func (s *Simulator) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.clock.Now().Add(d), fn)
}

// Pending reports the number of scheduled, not-yet-run events.
func (s *Simulator) Pending() int { return s.queue.Len() }

// Step runs the single earliest pending event, advancing the clock to its
// scheduled time first. It reports whether an event ran.
func (s *Simulator) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*simEvent)
	if gap := ev.at.Sub(s.clock.Now()); gap > 0 {
		s.idleSink.Idle(gap)
	}
	s.clock.AdvanceTo(ev.at)
	ev.fn()
	return true
}

// Run drains the event queue. Callbacks may schedule further events; Run
// returns only when nothing remains. The limit guards against runaway
// simulations: Run panics after limit steps if limit > 0.
func (s *Simulator) Run(limit int) {
	steps := 0
	for s.Step() {
		steps++
		if limit > 0 && steps >= limit {
			panic(fmt.Sprintf("vtime: simulation exceeded %d steps", limit))
		}
	}
}

// RunUntil drains events scheduled at or before deadline, leaving later
// events queued. It returns the number of events run.
func (s *Simulator) RunUntil(deadline Time) int {
	n := 0
	for s.queue.Len() > 0 && s.queue[0].at <= deadline {
		s.Step()
		n++
	}
	if gap := deadline.Sub(s.clock.Now()); gap > 0 {
		s.idleSink.Idle(gap)
		s.clock.AdvanceTo(deadline)
	}
	return n
}

type simEvent struct {
	at  Time
	seq uint64 // FIFO tiebreak for simultaneous events
	fn  func()
}

type eventHeap []*simEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*simEvent)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
