// Package vtime provides the virtual-time substrate for the SPIN event
// system reproduction: a virtual clock, a discrete-event simulator, and a
// cost model calibrated to the DEC Alpha AXP 3000/400 measurements reported
// in the paper (OSDI '96, §3.1).
//
// The paper reports dispatch latencies in microseconds on 1996 hardware.
// Native Go benchmarks on modern hardware cannot reproduce those absolute
// numbers, so the simulation layers of this repository execute against a
// virtual clock: every architectural operation (procedure call, indirect
// call, guard evaluation, thread spawn, wire transmission, ...) charges a
// calibrated cost to a CPU meter, advancing virtual time. The benchmark
// harness then reports virtual microseconds side by side with natively
// measured nanoseconds; the former regenerate the paper's tables in their
// original units, the latter confirm the shapes on real hardware.
package vtime

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Time is an instant of virtual time, expressed in nanoseconds since the
// start of the simulation ("boot").
type Time int64

// Duration is re-exported from package time; virtual durations use the same
// representation as wall-clock durations so they format naturally.
type Duration = time.Duration

// Micros converts a microsecond quantity (the unit used throughout the
// paper) into a Duration. It accepts fractional microseconds: the paper's
// finest-grained constant is a 0.008 us per-argument charge.
func Micros(us float64) Duration {
	return Duration(us * float64(time.Microsecond))
}

// InMicros reports d in fractional microseconds, the paper's unit.
func InMicros(d Duration) float64 {
	return float64(d) / float64(time.Microsecond)
}

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between two instants.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the instant as a duration since boot.
func (t Time) String() string { return Duration(t).String() }

// Clock is a monotonically advancing virtual clock. It is safe for
// concurrent use; in the single-threaded discrete-event simulations used by
// the benchmark harness only one goroutine advances it, but unit tests and
// the real-time dispatcher configurations may read it from several.
type Clock struct {
	now atomic.Int64
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return Time(c.now.Load()) }

// Advance moves the clock forward by d and returns the new time. Advancing
// by a negative duration panics: virtual time, like the paper's measured
// time, never runs backwards.
func (c *Clock) Advance(d Duration) Time {
	if d < 0 {
		panic(fmt.Sprintf("vtime: clock advanced by negative duration %v", d))
	}
	return Time(c.now.Add(int64(d)))
}

// AdvanceTo moves the clock forward to t if t is in the future; it never
// moves the clock backwards. It returns the (possibly unchanged) current
// time.
func (c *Clock) AdvanceTo(t Time) Time {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return Time(cur)
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}
