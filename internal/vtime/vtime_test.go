package vtime

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestMicrosRoundTrip(t *testing.T) {
	cases := []float64{0, 0.008, 0.1, 1, 38, 150, 475, 30000}
	for _, us := range cases {
		d := Micros(us)
		if got := InMicros(d); got < us-1e-9 || got > us+1e-9 {
			t.Errorf("InMicros(Micros(%v)) = %v", us, got)
		}
	}
}

func TestMicrosFractional(t *testing.T) {
	if Micros(0.5) != 500*time.Nanosecond {
		t.Errorf("Micros(0.5) = %v, want 500ns", Micros(0.5))
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("fresh clock reads %v, want 0", c.Now())
	}
	c.Advance(Micros(10))
	if got := c.Now(); got != Time(10*time.Microsecond) {
		t.Fatalf("after Advance(10us) clock reads %v", got)
	}
	c.Advance(0) // zero advance is legal
	if got := c.Now(); got != Time(10*time.Microsecond) {
		t.Fatalf("zero advance moved clock to %v", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	var c Clock
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	c.Advance(-1)
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.Advance(Micros(100))
	was := c.Now()
	if got := c.AdvanceTo(Time(Micros(50))); got != was {
		t.Fatalf("AdvanceTo(past) moved clock: %v", got)
	}
	if got := c.AdvanceTo(Time(Micros(200))); got != Time(Micros(200)) {
		t.Fatalf("AdvanceTo(future) = %v", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(Micros(10))
	b := a.Add(Micros(5))
	if b.Sub(a) != Micros(5) {
		t.Fatalf("Sub = %v, want 5us", b.Sub(a))
	}
}

// Property: advancing a clock by any sequence of non-negative durations
// yields a final reading equal to their sum, and Now is monotone.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		var c Clock
		var sum Duration
		last := c.Now()
		for _, s := range steps {
			d := Duration(s) * time.Nanosecond
			sum += d
			c.Advance(d)
			now := c.Now()
			if now < last {
				return false
			}
			last = now
		}
		return c.Now() == Time(sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModelCosts(t *testing.T) {
	m := AlphaModel()
	if got := m.Cost(CallDirect); got != Micros(0.10) {
		t.Errorf("CallDirect = %v, want 0.10us", got)
	}
	if got := m.Cost(ThreadSpawnBase); got != Micros(38) {
		t.Errorf("ThreadSpawnBase = %v, want 38us", got)
	}
	var nilModel *Model
	if nilModel.Cost(CallDirect) != 0 {
		t.Error("nil model should cost zero")
	}
}

func TestModelWithCost(t *testing.T) {
	m := AlphaModel()
	m2 := m.WithCost(CallDirect, Micros(1))
	if m2.Cost(CallDirect) != Micros(1) {
		t.Error("WithCost did not override")
	}
	if m.Cost(CallDirect) != Micros(0.10) {
		t.Error("WithCost mutated the original model")
	}
	if m2.Cost(DispatchEntry) != m.Cost(DispatchEntry) {
		t.Error("WithCost dropped other costs")
	}
}

// The calibration must reproduce Table 1's no-inline slope: cost of one
// indirect guard+handler pair is ~0.231us.
func TestCalibrationTable1Slope(t *testing.T) {
	m := AlphaModel()
	pair := m.Cost(GuardIndirect) + m.Cost(HandlerIndirect)
	if us := InMicros(pair); us < 0.22 || us > 0.24 {
		t.Errorf("indirect binding pair = %.3fus, want ~0.231", us)
	}
	inl := m.Cost(GuardInline) + m.Cost(HandlerInline)
	if us := InMicros(inl); us < 0.04 || us > 0.05 {
		t.Errorf("inline binding pair = %.3fus, want ~0.046", us)
	}
}

// The calibration must reproduce the installation overhead narrative:
// one install ~150us, 100 installs on one event ~30ms total.
func TestCalibrationInstallOverhead(t *testing.T) {
	m := AlphaModel()
	var total Duration
	for n := 0; n < 100; n++ {
		total += m.Cost(PlanCompileBase) + m.Cost(PlanCompileBinding)*Duration(n)
	}
	ms := float64(total) / 1e6
	if ms < 25 || ms > 35 {
		t.Errorf("100 installs cost %.1fms, want ~30ms", ms)
	}
	one := InMicros(m.Cost(PlanCompileBase))
	if one < 140 || one > 160 {
		t.Errorf("single install = %.0fus, want ~150us", one)
	}
}

// Asynchronous raise overhead must fall in the paper's 38-90us band for
// 0..5 arguments.
func TestCalibrationAsyncRange(t *testing.T) {
	m := AlphaModel()
	for args := 0; args <= 5; args++ {
		d := m.Cost(ThreadSpawnBase) + m.Cost(ThreadSpawnArg)*Duration(args)
		us := InMicros(d)
		if us < 38-1e-9 || us > 90+1e-9 {
			t.Errorf("async overhead with %d args = %.1fus, outside [38,90]", args, us)
		}
	}
}

func TestCPUChargeAndAccounts(t *testing.T) {
	var clock Clock
	cpu := NewCPU(&clock, AlphaModel())
	cpu.Charge(CallDirect)
	if got := clock.Now(); got != Time(Micros(0.10)) {
		t.Fatalf("clock after CallDirect = %v", got)
	}
	cpu.Begin(AccountEvents)
	cpu.ChargeN(GuardIndirect, 10)
	cpu.End()
	if got := cpu.Total(AccountEvents); got != Micros(0.115)*10 {
		t.Fatalf("events account = %v", got)
	}
	if got := cpu.Total(AccountKernel); got != Micros(0.10) {
		t.Fatalf("kernel account = %v", got)
	}
}

func TestCPUNestedAccounts(t *testing.T) {
	var clock Clock
	cpu := NewCPU(&clock, AlphaModel())
	cpu.Begin(AccountUser)
	cpu.Charge(CallDirect)
	cpu.Begin(AccountEvents)
	cpu.Charge(CallDirect)
	cpu.End()
	cpu.Charge(CallDirect)
	cpu.End()
	if got := cpu.Total(AccountUser); got != 2*Micros(0.10) {
		t.Fatalf("user = %v", got)
	}
	if got := cpu.Total(AccountEvents); got != Micros(0.10) {
		t.Fatalf("events = %v", got)
	}
}

func TestCPUUnbalancedEndPanics(t *testing.T) {
	cpu := NewCPU(&Clock{}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced End did not panic")
		}
	}()
	cpu.End()
}

func TestNilCPUIsSafe(t *testing.T) {
	var cpu *CPU
	cpu.Charge(CallDirect)
	cpu.ChargeN(GuardInline, 5)
	cpu.Spend(Micros(1))
	cpu.Begin(AccountUser)
	cpu.End()
	cpu.Idle(Micros(1))
	if cpu.Now() != 0 || cpu.Total(AccountUser) != 0 {
		t.Fatal("nil CPU must be inert")
	}
	if cpu.Clock() != nil || cpu.Model() != nil {
		t.Fatal("nil CPU accessors must return nil")
	}
	_ = cpu.Breakdown()
}

func TestBreakdownString(t *testing.T) {
	var clock Clock
	cpu := NewCPU(&clock, AlphaModel())
	cpu.Begin(AccountUser)
	cpu.Spend(Micros(100))
	cpu.End()
	cpu.Idle(Micros(300))
	b := cpu.Breakdown()
	if b.Sum() != Micros(400) {
		t.Fatalf("sum = %v", b.Sum())
	}
	if b.Of(AccountIdle) != Micros(300) {
		t.Fatalf("idle = %v", b.Of(AccountIdle))
	}
	s := b.String()
	if s == "" {
		t.Fatal("empty breakdown string")
	}
}

func TestSimulatorOrdering(t *testing.T) {
	var clock Clock
	sim := NewSimulator(&clock)
	var order []int
	sim.After(Micros(30), func() { order = append(order, 3) })
	sim.After(Micros(10), func() { order = append(order, 1) })
	sim.After(Micros(20), func() { order = append(order, 2) })
	sim.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if clock.Now() != Time(Micros(30)) {
		t.Fatalf("clock = %v", clock.Now())
	}
}

func TestSimulatorFIFOAtSameInstant(t *testing.T) {
	var clock Clock
	sim := NewSimulator(&clock)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		sim.At(Time(Micros(5)), func() { order = append(order, i) })
	}
	sim.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events ran out of order: %v", order)
		}
	}
}

func TestSimulatorNestedScheduling(t *testing.T) {
	var clock Clock
	sim := NewSimulator(&clock)
	hits := 0
	sim.After(Micros(1), func() {
		hits++
		sim.After(Micros(1), func() { hits++ })
	})
	sim.Run(0)
	if hits != 2 {
		t.Fatalf("hits = %d", hits)
	}
	if clock.Now() != Time(Micros(2)) {
		t.Fatalf("clock = %v", clock.Now())
	}
}

func TestSimulatorPastSchedulePanics(t *testing.T) {
	var clock Clock
	clock.Advance(Micros(10))
	sim := NewSimulator(&clock)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	sim.At(Time(Micros(5)), func() {})
}

func TestSimulatorRunLimit(t *testing.T) {
	var clock Clock
	sim := NewSimulator(&clock)
	var reschedule func()
	reschedule = func() { sim.After(Micros(1), reschedule) }
	sim.After(Micros(1), reschedule)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway simulation did not hit the step limit")
		}
	}()
	sim.Run(100)
}

func TestSimulatorIdleAccounting(t *testing.T) {
	var clock Clock
	cpu := NewCPU(&clock, AlphaModel())
	sim := NewSimulator(&clock)
	sim.AccountIdleTo(cpu)
	sim.After(Micros(100), func() {})
	sim.Run(0)
	if got := cpu.Total(AccountIdle); got != Micros(100) {
		t.Fatalf("idle = %v, want 100us", got)
	}
}

func TestSimulatorRunUntil(t *testing.T) {
	var clock Clock
	sim := NewSimulator(&clock)
	ran := 0
	sim.After(Micros(10), func() { ran++ })
	sim.After(Micros(50), func() { ran++ })
	n := sim.RunUntil(Time(Micros(20)))
	if n != 1 || ran != 1 {
		t.Fatalf("RunUntil ran %d events (%d callbacks)", n, ran)
	}
	if sim.Pending() != 1 {
		t.Fatalf("pending = %d", sim.Pending())
	}
	if clock.Now() != Time(Micros(20)) {
		t.Fatalf("clock should land on the deadline, got %v", clock.Now())
	}
	sim.Run(0)
	if ran != 2 {
		t.Fatalf("remaining event did not run")
	}
}

// Property: however events are scheduled, the simulator runs them in
// non-decreasing time order.
func TestSimulatorOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		var clock Clock
		sim := NewSimulator(&clock)
		var seen []Time
		for _, d := range delays {
			sim.After(Duration(d)*time.Nanosecond, func() {
				seen = append(seen, clock.Now())
			})
		}
		sim.Run(0)
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
