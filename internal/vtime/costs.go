package vtime

// Kind identifies an architectural operation with a calibrated virtual-time
// cost. The constants are derived from the paper's measured tables; each
// derivation is documented next to its value in AlphaModel below.
type Kind int

const (
	// CallDirect is a direct (statically bound) procedure call: the
	// paper's "Modula-3 procedure call" column, i.e. an event dispatched
	// through its intrinsic handler with the dispatcher bypassed.
	CallDirect Kind = iota
	// CallDirectArg is the incremental per-argument cost of a direct call.
	CallDirectArg
	// DispatchEntry is the fixed cost of entering a generated dispatch
	// routine: saving the raise site, loading the current plan, and
	// setting up the argument vector.
	DispatchEntry
	// DispatchEntryArg is the per-argument cost of marshalling raise
	// arguments into the dispatch argument vector.
	DispatchEntryArg
	// InlineEntry is the fixed cost of entering a fully inlined dispatch
	// routine; it replaces DispatchEntry when every guard and handler on
	// the event was inlined by the code generator (the "inline" columns
	// of Table 1).
	InlineEntry
	// GuardIndirect is the cost of evaluating one guard through an
	// indirect procedure call (the "no inline" configuration).
	GuardIndirect
	// HandlerIndirect is the cost of invoking one handler through an
	// indirect procedure call (the "no inline" configuration).
	HandlerIndirect
	// BindingIndirectArg is the incremental per-argument, per-binding cost
	// of passing arguments along an indirect guard+handler pair.
	BindingIndirectArg
	// GuardInline is the cost of evaluating one guard whose body the
	// code generator has inlined into the dispatch routine.
	GuardInline
	// HandlerInline is the cost of running one handler whose body the
	// code generator has inlined into the dispatch routine.
	HandlerInline
	// BindingInlineArg is the per-argument, per-binding cost in the
	// inlined configuration.
	BindingInlineArg
	// ResultMerge is the cost of one result-handler application.
	ResultMerge
	// ArgCopy is the cost of copying one argument word, charged per
	// argument on entry to an inlined dispatch routine and when the
	// dispatcher snapshots arguments ahead of a filter or pure-guard
	// check. Calibrated from the inline 5-argument column of Table 1:
	// (0.42 - 0.184 - 0.046*1)/5 ~= 0.025 with the inline entry at 0.184.
	ArgCopy
	// PlanCompileBase is the fixed cost of regenerating the dispatch
	// code for an event (one handler installation or removal).
	PlanCompileBase
	// PlanCompileBinding is the per-existing-binding cost of plan
	// regeneration; installation of n handlers therefore costs O(n^2)
	// total, matching §3.1 "Installation overhead".
	PlanCompileBinding
	// ThreadSpawnBase is the fixed cost of creating the thread that backs
	// an asynchronous event raise or an asynchronous handler.
	ThreadSpawnBase
	// ThreadSpawnArg is the per-argument cost of copying arguments onto
	// the new thread's stack for an asynchronous invocation.
	ThreadSpawnArg
	// ContextSwitch is the cost of one scheduler context switch
	// (Strand.Run raise plus register save/restore handlers).
	ContextSwitch
	// SyscallTrap is the machine-dependent cost of taking a system call
	// trap and saving thread state, before MachineTrap.Syscall is raised.
	SyscallTrap
	// Interrupt is the cost of fielding a device interrupt (network
	// receive) before the Ether.PacketArrived event is raised.
	Interrupt
	// NetGuardEval is the cost of evaluating one packet-discriminating
	// guard on the network receive path. These guards parse protocol
	// header fields, so they are costlier than the trivial
	// compare-global-to-constant guards of Table 1.
	NetGuardEval
	// ProtoLayer is the per-layer protocol processing cost (checksum,
	// header parse/build) charged by each of ether/ip/udp/tcp.
	ProtoLayer
	// SocketOp is the cost of a socket-layer operation (enqueue to a
	// socket buffer, wakeup of a blocked strand).
	SocketOp
	// PageFaultEntry is the machine cost of taking a translation fault
	// before VM.PageFault is raised.
	PageFaultEntry
	// FSOp is the cost of a basic file-system operation on the in-memory
	// file system, excluding event dispatch.
	FSOp
	numKinds
)

var kindNames = [numKinds]string{
	"CallDirect", "CallDirectArg", "DispatchEntry", "DispatchEntryArg",
	"InlineEntry",
	"GuardIndirect", "HandlerIndirect", "BindingIndirectArg",
	"GuardInline", "HandlerInline", "BindingInlineArg",
	"ResultMerge", "ArgCopy", "PlanCompileBase", "PlanCompileBinding",
	"ThreadSpawnBase", "ThreadSpawnArg", "ContextSwitch", "SyscallTrap",
	"Interrupt", "NetGuardEval", "ProtoLayer", "SocketOp",
	"PageFaultEntry", "FSOp",
}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "Kind(?)"
}

// Model maps operation kinds to virtual durations. A nil *Model is valid
// and charges nothing, so unmetered configurations pay no overhead.
type Model struct {
	costs [numKinds]Duration
}

// NewModel builds a model from an explicit table. Kinds absent from the
// table cost zero.
func NewModel(table map[Kind]Duration) *Model {
	m := &Model{}
	for k, d := range table {
		m.costs[k] = d
	}
	return m
}

// Cost returns the cost of one operation of kind k. A nil model reports
// zero for every kind.
func (m *Model) Cost(k Kind) Duration {
	if m == nil {
		return 0
	}
	return m.costs[k]
}

// WithCost returns a copy of m with the cost of k replaced; used by
// ablation benchmarks to perturb a single constant.
func (m *Model) WithCost(k Kind, d Duration) *Model {
	var out Model
	if m != nil {
		out = *m
	}
	out.costs[k] = d
	return &out
}

// AlphaModel returns the cost model calibrated to the paper's DEC Alpha
// AXP 3000/400 (133 MHz, 74 SPECint92) measurements. Derivations, with all
// paper numbers in microseconds:
//
//   - Table 1 "Modula-3 procedure call": 0.10 (0 args), 0.13 (1), 0.14 (5).
//     CallDirect = 0.10; the per-argument increment is ~0.01 with the first
//     argument slightly costlier; we use CallDirectArg = 0.01.
//   - Table 1 no-inline, 0 args: 0.37 (1 handler) -> 11.69 (50 handlers).
//     Slope (11.69-0.37)/49 = 0.231 per binding, split evenly into
//     GuardIndirect = 0.115 and HandlerIndirect = 0.116. Intercept
//     0.37 - 0.231 = 0.139, so DispatchEntry = 0.14.
//   - Table 1 no-inline, 5 args: slope (14.45-0.97)/49 = 0.275; the extra
//     0.044 over the 0-arg slope across 5 args gives
//     BindingIndirectArg = 0.009. Intercept 0.97 - 0.275 = 0.695; the
//     0.55 of per-raise argument marshalling over DispatchEntry across 5
//     args gives DispatchEntryArg = 0.11.
//   - Table 1 inline, 0 args: 0.23 -> 2.48. Slope (2.48-0.23)/49 = 0.046,
//     split into GuardInline = 0.023 and HandlerInline = 0.023. Intercept
//     0.23 - 0.046 = 0.184; inlined dispatch still pays DispatchEntry-like
//     setup, and we model the remainder (0.184 - 0.14) as cheaper argument
//     handling: in the inline configuration DispatchEntryArg is not
//     charged; instead BindingInlineArg = 0.012 (from the 5-arg inline
//     slope (5.65-0.42)/49 = 0.107: (0.107-0.046)/5 = 0.012) plus an
//     entry adjustment of 0.009/arg folded into ArgCopy.
//   - §3.1: asynchronous events add 38-90 us; ThreadSpawnBase = 38 and
//     ThreadSpawnArg = 10.4 reproduce the range over 0-5 arguments.
//   - §3.1 Installation overhead: one install is ~150 us and 100 installs
//     on one event take ~30 ms. Sum over n=0..99 of (base + c*n) =
//     100*150 + 4950*c us = 30 ms at c = 3.03; so
//     PlanCompileBase = 150 and PlanCompileBinding = 3.03.
//   - Table 2: UDP roundtrip 475 us with one guard rising to 530 with 50.
//     Slope (530-475)/49 = 1.12 per guard per roundtrip; each roundtrip
//     evaluates the guard list twice (once per direction at the receiving
//     machine), so NetGuardEval = 0.56. The 475 us base is assembled from
//     wire time (see netwire), Interrupt = 35, ProtoLayer = 18,
//     SocketOp = 12, ContextSwitch = 12 and SyscallTrap = 6; see
//     EXPERIMENTS.md for the full budget.
//   - Table 3 / §3.2: the preview workload's kernel share uses the same
//     constants; FSOp = 4 and PageFaultEntry = 8 are set so that the
//     simulated breakdown lands near the paper's 6.8 s kernel /
//     0.12 s events split.
func AlphaModel() *Model {
	return NewModel(map[Kind]Duration{
		CallDirect:         Micros(0.10),
		CallDirectArg:      Micros(0.01),
		DispatchEntry:      Micros(0.14),
		DispatchEntryArg:   Micros(0.11),
		InlineEntry:        Micros(0.184),
		GuardIndirect:      Micros(0.115),
		HandlerIndirect:    Micros(0.116),
		BindingIndirectArg: Micros(0.009),
		GuardInline:        Micros(0.023),
		HandlerInline:      Micros(0.023),
		BindingInlineArg:   Micros(0.012),
		ResultMerge:        Micros(0.08),
		ArgCopy:            Micros(0.025),
		PlanCompileBase:    Micros(150),
		PlanCompileBinding: Micros(3.03),
		ThreadSpawnBase:    Micros(38),
		ThreadSpawnArg:     Micros(10.4),
		ContextSwitch:      Micros(12),
		SyscallTrap:        Micros(6),
		Interrupt:          Micros(35),
		NetGuardEval:       Micros(0.445),
		ProtoLayer:         Micros(14),
		SocketOp:           Micros(12),
		PageFaultEntry:     Micros(8),
		FSOp:               Micros(4),
	})
}
