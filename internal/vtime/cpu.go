package vtime

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Account labels a category of CPU time for end-to-end breakdowns, matching
// the categories the paper reports for the document-preview workload
// (§3.2): idle, X11 server, kernel, and — within kernel time — event
// raising and dispatching.
type Account int

const (
	// AccountIdle is time spent with no runnable strand.
	AccountIdle Account = iota
	// AccountUser is time executing application (X11 server) code.
	AccountUser
	// AccountKernel is time executing kernel and extension code other
	// than the event dispatcher itself.
	AccountKernel
	// AccountEvents is time spent raising and dispatching events: the
	// dispatcher entry/exit, guard evaluation, handler call overhead and
	// plan bookkeeping, but not the useful work done inside handlers.
	AccountEvents
	numAccounts
)

var accountNames = [numAccounts]string{"idle", "user", "kernel", "events"}

func (a Account) String() string {
	if a >= 0 && int(a) < len(accountNames) {
		return accountNames[a]
	}
	return "account(?)"
}

// CPU meters virtual execution time against a cost model. Costs are charged
// to the clock and attributed to the currently active account. A nil *CPU
// is valid everywhere a meter is accepted and charges nothing, so code paths
// shared between metered simulation and native benchmarking pay only a nil
// check when unmetered.
type CPU struct {
	clock *Clock
	model *Model

	mu      sync.Mutex
	current Account
	stack   []Account
	totals  [numAccounts]Duration
}

// NewCPU creates a meter over clock and model. The initial account is
// AccountKernel.
func NewCPU(clock *Clock, model *Model) *CPU {
	return &CPU{clock: clock, model: model, current: AccountKernel}
}

// Clock returns the underlying virtual clock, or nil for a nil CPU.
func (c *CPU) Clock() *Clock {
	if c == nil {
		return nil
	}
	return c.clock
}

// Model returns the cost model, or nil for a nil CPU.
func (c *CPU) Model() *Model {
	if c == nil {
		return nil
	}
	return c.model
}

// Now returns the current virtual time, or zero for a nil CPU.
func (c *CPU) Now() Time {
	if c == nil || c.clock == nil {
		return 0
	}
	return c.clock.Now()
}

// Charge advances virtual time by the cost of one operation of kind k.
//
// Charging is exempt from the guard-purity analysis: advancing virtual
// time is the simulation's analog of the wall clock moving while code
// executes, and the paper's FUNCTIONAL guards consume CPU time too
// (Table 2 prices them). It mutates only the meter, never state a guard
// or handler can branch on.
//
//spinvet:pure
func (c *CPU) Charge(k Kind) {
	if c == nil {
		return
	}
	c.spend(c.model.Cost(k))
}

// ChargeN advances virtual time by the cost of n operations of kind k.
//
//spinvet:pure (see Charge)
func (c *CPU) ChargeN(k Kind, n int) {
	if c == nil || n <= 0 {
		return
	}
	c.spend(c.model.Cost(k) * Duration(n))
}

// ChargeTo charges one operation of kind k to account a regardless of the
// active account. Handlers that do real work inside an event raise use it
// so their work is attributed to the kernel or user account while the
// dispatcher's own overhead stays in the events account (§3.2's
// breakdown separates "raising and dispatching events" from the useful
// work done in handlers).
func (c *CPU) ChargeTo(a Account, k Kind) {
	if c == nil {
		return
	}
	c.Begin(a)
	c.Charge(k)
	c.End()
}

// ChargeNTo charges n operations of kind k to account a.
func (c *CPU) ChargeNTo(a Account, k Kind, n int) {
	if c == nil || n <= 0 {
		return
	}
	c.Begin(a)
	c.ChargeN(k, n)
	c.End()
}

// SpendTo charges an explicit duration to account a.
func (c *CPU) SpendTo(a Account, d Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.Begin(a)
	c.Spend(d)
	c.End()
}

// Spend charges an explicit duration, used for costs that are data
// dependent rather than per-operation (wire serialization time, declared
// handler work).
func (c *CPU) Spend(d Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.spend(d)
}

func (c *CPU) spend(d Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.totals[c.current] += d
	c.mu.Unlock()
	if c.clock != nil {
		c.clock.Advance(d)
	}
}

// Begin switches attribution to account a until the matching End. Begin/End
// pairs nest; the typical pattern is
//
//	cpu.Begin(vtime.AccountEvents)
//	defer cpu.End()
func (c *CPU) Begin(a Account) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.stack = append(c.stack, c.current)
	c.current = a
	c.mu.Unlock()
}

// End pops the account pushed by the matching Begin. Unbalanced End calls
// panic: they indicate a bookkeeping bug in a substrate.
func (c *CPU) End() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.stack) == 0 {
		panic("vtime: CPU.End without matching Begin")
	}
	c.current = c.stack[len(c.stack)-1]
	c.stack = c.stack[:len(c.stack)-1]
}

// Idle attributes d to the idle account without changing the active
// account; schedulers call it when the run queue is empty and the clock
// jumps to the next simulator event.
func (c *CPU) Idle(d Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.mu.Lock()
	c.totals[AccountIdle] += d
	c.mu.Unlock()
	// The clock itself is advanced by the simulator when it dequeues the
	// next event; Idle only attributes the gap.
}

// Total reports the time attributed to account a so far.
func (c *CPU) Total(a Account) Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totals[a]
}

// Breakdown is a snapshot of per-account totals.
type Breakdown struct {
	Totals [numAccounts]Duration
}

// Breakdown returns a snapshot of the per-account totals.
func (c *CPU) Breakdown() Breakdown {
	var b Breakdown
	if c == nil {
		return b
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b.Totals = c.totals
	return b
}

// Sum returns the total time across all accounts.
func (b Breakdown) Sum() Duration {
	var s Duration
	for _, d := range b.Totals {
		s += d
	}
	return s
}

// Of returns the time attributed to a.
func (b Breakdown) Of(a Account) Duration { return b.Totals[a] }

// String renders the breakdown as one line per account, largest first,
// with percentages of the total — the format used by cmd/spindoc to mirror
// the paper's §3.2 narrative.
func (b Breakdown) String() string {
	total := b.Sum()
	type row struct {
		a Account
		d Duration
	}
	rows := make([]row, 0, numAccounts)
	for a := Account(0); a < numAccounts; a++ {
		rows = append(rows, row{a, b.Totals[a]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
	var sb strings.Builder
	fmt.Fprintf(&sb, "total %.2fs\n", float64(total)/1e9)
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.d) / float64(total)
		}
		fmt.Fprintf(&sb, "  %-7s %8.2fs  %5.1f%%\n", r.a, float64(r.d)/1e9, pct)
	}
	return sb.String()
}
