package codegen

import (
	"fmt"
	"sync/atomic"
)

// BodyOp enumerates the handler bodies the code generator can inline. SPIN
// inlined "small guards and handlers directly into the dispatch routine"
// (§3); the realistic small handlers are counters, constant results, and
// argument echoes, which is exactly the set Table 1's benchmark handlers
// ("return without performing any work") draws from.
type BodyOp int

const (
	// BodyNop does nothing and produces no result.
	BodyNop BodyOp = iota
	// BodyReturnConst produces the constant V.
	BodyReturnConst
	// BodyAddWord adds K to the word in Cell and produces no result.
	BodyAddWord
	// BodyReturnArg produces raise argument Arg.
	BodyReturnArg
)

// Body is an inlinable handler body: a handler registered with a non-nil
// Body executes inside the generated dispatch routine without an indirect
// call when the plan is compiled with inlining enabled.
type Body struct {
	Op   BodyOp
	V    any
	Cell *atomic.Uint64
	K    uint64
	Arg  int
}

// Nop returns the empty body.
func Nop() *Body { return &Body{Op: BodyNop} }

// ReturnConst returns a body producing v.
func ReturnConst(v any) *Body { return &Body{Op: BodyReturnConst, V: v} }

// AddWord returns a body adding k to cell.
func AddWord(cell *atomic.Uint64, k uint64) *Body {
	return &Body{Op: BodyAddWord, Cell: cell, K: k}
}

// ReturnArg returns a body producing raise argument i.
func ReturnArg(i int) *Body { return &Body{Op: BodyReturnArg, Arg: i} }

// Run executes the body over the raise arguments, returning the produced
// result (nil for void bodies).
func (b *Body) Run(args []any) any {
	switch b.Op {
	case BodyNop:
		return nil
	case BodyReturnConst:
		return b.V
	case BodyAddWord:
		if b.Cell != nil {
			b.Cell.Add(b.K)
		}
		return nil
	case BodyReturnArg:
		if b.Arg >= 0 && b.Arg < len(args) {
			return args[b.Arg]
		}
		return nil
	}
	return nil
}

// String renders the body for plan disassembly.
func (b *Body) String() string {
	if b == nil {
		return "<call>"
	}
	switch b.Op {
	case BodyNop:
		return "nop"
	case BodyReturnConst:
		return fmt.Sprintf("return %v", b.V)
	case BodyAddWord:
		return fmt.Sprintf("*cell += %d", b.K)
	case BodyReturnArg:
		return fmt.Sprintf("return arg%d", b.Arg)
	}
	return "body(?)"
}
