package codegen

import (
	"sync/atomic"
	"testing"

	"spin/internal/stripe"
	"spin/internal/vtime"
)

// nopFaultHook satisfies FaultHook for eligibility tests.
type nopFaultHook struct{}

func (nopFaultHook) HandlerPanic(any, any, []byte) {}
func (nopFaultHook) GuardPanic(any, any, []byte)   {}
func (nopFaultHook) SyncCost(any, vtime.Duration)  {}

// guardedBindings builds n bindings each guarded by an always-true global
// comparison, the canonical flat-eligible shape.
func guardedBindings(n int, count *int) []*Binding {
	cell := new(atomic.Uint64)
	bs := make([]*Binding, n)
	for i := range bs {
		bs[i] = &Binding{
			Guards: []Guard{{Pred: GlobalEq(cell, 0)}},
			Fn:     countingHandler(count, nil),
		}
	}
	return bs
}

func TestSpecializeEligibility(t *testing.T) {
	n := 0
	mkPlan := func(mut func(*Binding), opts Options) *Plan {
		bs := guardedBindings(2, &n)
		if mut != nil {
			mut(bs[0])
		}
		return Compile(info(1, false), bs, nil, nil, opts)
	}

	if !mkPlan(nil, Options{}).Specialized() {
		t.Error("guarded multi-binding plan must specialize")
	}
	if mkPlan(nil, Options{DisableSpecialize: true}).Specialized() {
		t.Error("DisableSpecialize must keep the interpreter")
	}
	if !mkPlan(nil, Options{DisableShapeSpecialize: true}).Specialized() {
		t.Error("DisableShapeSpecialize still flattens (generic shape)")
	}
	if mkPlan(func(b *Binding) { b.Async = true }, Options{}).Specialized() {
		t.Error("async step must stay on the interpreter")
	}
	if mkPlan(func(b *Binding) { b.Ephemeral = true }, Options{}).Specialized() {
		t.Error("ephemeral step must stay on the interpreter")
	}
	if mkPlan(func(b *Binding) { b.Filter = true }, Options{}).Specialized() {
		t.Error("filter step must stay on the interpreter")
	}
	if mkPlan(nil, Options{Protect: nopFaultHook{}}).Specialized() {
		t.Error("fault-protected plan must stay on the interpreter")
	}

	// An unguarded single binding compiles to the direct bypass, not a
	// flat executor; a guarded single binding compiles to the guarded
	// bypass (single straight-line flat step).
	single := &Binding{Fn: countingHandler(&n, nil)}
	p := Compile(info(0, false), []*Binding{single}, nil, nil, Options{})
	if p.Direct() == nil || p.Specialized() {
		t.Error("unguarded single binding must use the direct bypass")
	}
	gb := Compile(info(1, false),
		guardedBindings(1, &n), nil, nil, Options{})
	if gb.Direct() != nil || !gb.GuardedBypass() {
		t.Errorf("guarded single binding must use the guarded bypass (direct=%v specialized=%v)",
			gb.Direct() != nil, gb.Specialized())
	}

	// A decision-tree run stays on the interpreter's hashed lookup.
	tree := make([]*Binding, treeThreshold)
	for i := range tree {
		tree[i] = &Binding{
			Guards: []Guard{{Pred: ArgEq(0, uint64(i))}},
			Fn:     countingHandler(&n, nil),
		}
	}
	tp := Compile(info(1, false), tree, nil, nil, Options{EnableDecisionTree: true})
	if tp.Specialized() {
		t.Error("decision-tree plan must stay on the interpreter")
	}
}

func TestSpecializedExecutesIdentically(t *testing.T) {
	cell := new(atomic.Uint64)
	fired := []string{}
	mark := func(name string) HandlerFn {
		return func(any, []any) any { fired = append(fired, name); return name }
	}
	bs := []*Binding{
		{Guards: []Guard{{Pred: ArgEq(0, 80)}}, Fn: mark("http")},
		{Guards: []Guard{{Pred: And(GlobalEq(cell, 0), ArgEq(0, 443))}}, Fn: mark("https")},
		{Guards: []Guard{{Fn: func(_ any, args []any) bool { return true }}}, Fn: mark("all")},
	}
	run := func(opts Options, args ...any) ([]string, Outcome) {
		p := Compile(info(1, true), bs, nil, nil, opts)
		fired = nil
		out := p.Execute(&Env{}, args)
		return fired, out
	}
	for _, args := range [][]any{{uint64(80)}, {uint64(443)}, {uint64(7)}} {
		want, wantOut := run(Options{DisableSpecialize: true}, args...)
		for _, opts := range []Options{{}, {DisableShapeSpecialize: true}} {
			got, gotOut := run(opts, args...)
			if len(got) != len(want) {
				t.Fatalf("opts %+v args %v: fired %v, interpreter %v", opts, args, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("opts %+v args %v: order %v, interpreter %v", opts, args, got, want)
				}
			}
			if gotOut != wantOut {
				t.Fatalf("opts %+v args %v: outcome %+v, interpreter %+v", opts, args, gotOut, wantOut)
			}
		}
	}
}

func TestSpecializedDefaultHandler(t *testing.T) {
	n := 0
	d := &Binding{Fn: func(any, []any) any { return "default" }}
	p := Compile(info(1, true), guardedBindings(1, &n), nil, d, Options{})
	if !p.Specialized() {
		t.Fatal("plan with default handler should still specialize")
	}
	// Guard cell is 0 -> handler fires, no default.
	out := p.Execute(&Env{}, []any{uint64(1)})
	if out.Fired != 1 || out.UsedDefault {
		t.Fatalf("fired=%d usedDefault=%v", out.Fired, out.UsedDefault)
	}
	// Fail the guard: the default must fire and be counted batched.
	cell2 := new(atomic.Uint64)
	cell2.Store(9)
	bs := []*Binding{{
		Guards: []Guard{{Pred: GlobalEq(cell2, 0)}},
		Fn:     countingHandler(&n, nil),
	}}
	p2 := Compile(info(1, true), bs, nil, d, Options{})
	var total stripe.Counter
	out = p2.Execute(&Env{FiredTotal: &total}, []any{uint64(1)})
	if out.Fired != 0 || !out.UsedDefault || out.Result != "default" {
		t.Fatalf("default not applied: %+v", out)
	}
	if total.Load() != 1 {
		t.Fatalf("batched total %d after default firing, want 1", total.Load())
	}
}

// TestMeteredChargeParity pins the zero-cost-off contract for metering:
// a metered raise must charge the identical virtual-time sequence whether
// or not the plan carries a specialized executor, because metered raises
// always run the interpreter.
func TestMeteredChargeParity(t *testing.T) {
	n := 0
	args := []any{uint64(1)}
	costs := make(map[bool]vtime.Duration)
	for _, disable := range []bool{false, true} {
		p := Compile(info(1, false), guardedBindings(3, &n), nil, nil,
			Options{DisableSpecialize: disable})
		if p.Specialized() == disable {
			t.Fatalf("DisableSpecialize=%v: Specialized()=%v", disable, p.Specialized())
		}
		costs[disable] = meteredExec(p, args)
	}
	if costs[false] != costs[true] {
		t.Fatalf("metered cost diverges with specialization: on=%v off=%v",
			costs[false], costs[true])
	}
}

// TestSpecializedStatsFallback pins the per-fire OnFire contract for
// direct codegen users: without Env.FiredTotal the specialized executor
// reports each firing through OnFire exactly like the interpreter.
func TestSpecializedStatsFallback(t *testing.T) {
	n := 0
	bs := guardedBindings(3, &n)
	for i, b := range bs {
		b.Tag = i
	}
	p := Compile(info(1, false), bs, nil, nil, Options{})
	if !p.Specialized() {
		t.Fatal("expected specialized plan")
	}
	var tags []any
	p.Execute(&Env{OnFire: func(tag any) { tags = append(tags, tag) }}, []any{uint64(1)})
	if len(tags) != 3 || tags[0] != 0 || tags[1] != 1 || tags[2] != 2 {
		t.Fatalf("OnFire fallback tags: %v", tags)
	}
}
