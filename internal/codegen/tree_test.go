package codegen

import (
	"math/rand"
	"strings"
	"testing"

	"spin/internal/vtime"
)

// portBindings builds n bindings guarded on ArgEq(0, basePort+i), each
// recording its port into fired when run.
func portBindings(n int, fired *[]uint64) []*Binding {
	bs := make([]*Binding, n)
	for i := 0; i < n; i++ {
		port := uint64(1000 + i)
		bs[i] = &Binding{
			Guards: []Guard{{Pred: ArgEq(0, port)}},
			Fn: func(any, []any) any {
				*fired = append(*fired, port)
				return nil
			},
		}
	}
	return bs
}

func TestTreeBuiltAboveThreshold(t *testing.T) {
	var fired []uint64
	p := Compile(info(1, false), portBindings(10, &fired), nil, nil,
		Options{EnableDecisionTree: true, DisableBypass: true})
	units, covered := p.TreeUnits()
	if units != 1 || covered != 10 {
		t.Fatalf("units=%d covered=%d", units, covered)
	}
}

func TestTreeNotBuiltBelowThreshold(t *testing.T) {
	var fired []uint64
	p := Compile(info(1, false), portBindings(3, &fired), nil, nil,
		Options{EnableDecisionTree: true, DisableBypass: true})
	if units, _ := p.TreeUnits(); units != 0 {
		t.Fatalf("tree built for %d bindings (threshold %d)", 3, treeThreshold)
	}
}

func TestTreeDisabledByDefault(t *testing.T) {
	var fired []uint64
	p := Compile(info(1, false), portBindings(10, &fired), nil, nil,
		Options{DisableBypass: true})
	if units, _ := p.TreeUnits(); units != 0 {
		t.Fatal("tree built without EnableDecisionTree")
	}
}

func TestTreeDispatchSelectsCorrectBinding(t *testing.T) {
	var fired []uint64
	p := Compile(info(1, false), portBindings(20, &fired), nil, nil,
		Options{EnableDecisionTree: true, DisableBypass: true})
	out := p.Execute(&Env{}, []any{uint64(1007)})
	if out.Fired != 1 || len(fired) != 1 || fired[0] != 1007 {
		t.Fatalf("fired=%v out=%+v", fired, out)
	}
	// A miss fires nothing.
	fired = nil
	out = p.Execute(&Env{}, []any{uint64(9999)})
	if out.Fired != 0 || len(fired) != 0 {
		t.Fatalf("miss fired %v", fired)
	}
	// A non-word argument fires nothing rather than crashing.
	out = p.Execute(&Env{}, []any{"not-a-word"})
	if out.Fired != 0 {
		t.Fatal("non-word argument dispatched")
	}
}

func TestTreeDuplicateConstantsPreserveOrder(t *testing.T) {
	var fired []uint64
	bs := portBindings(6, &fired)
	// Two more bindings on an existing port; they must fire after the
	// original, in installation order.
	extra1 := &Binding{Guards: []Guard{{Pred: ArgEq(0, 1002)}},
		Fn: func(any, []any) any { fired = append(fired, 111); return nil }}
	extra2 := &Binding{Guards: []Guard{{Pred: ArgEq(0, 1002)}},
		Fn: func(any, []any) any { fired = append(fired, 222); return nil }}
	bs = append(bs, extra1, extra2)
	p := Compile(info(1, false), bs, nil, nil,
		Options{EnableDecisionTree: true, DisableBypass: true})
	p.Execute(&Env{}, []any{uint64(1002)})
	if len(fired) != 3 || fired[0] != 1002 || fired[1] != 111 || fired[2] != 222 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestTreeBreaksOnIneligibleStep(t *testing.T) {
	var fired []uint64
	bs := portBindings(4, &fired)
	// An unguarded binding in the middle splits the runs.
	mid := &Binding{Fn: func(any, []any) any { fired = append(fired, 7); return nil }}
	bs = append(bs[:2], append([]*Binding{mid}, portBindings(4, &fired)...)...)
	p := Compile(info(1, false), bs, nil, nil,
		Options{EnableDecisionTree: true, DisableBypass: true})
	units, covered := p.TreeUnits()
	// Runs of 2 and 4: only the 4-run collapses.
	if units != 1 || covered != 4 {
		t.Fatalf("units=%d covered=%d", units, covered)
	}
}

func TestTreeExcludesFilters(t *testing.T) {
	var fired []uint64
	bs := portBindings(5, &fired)
	bs[2].Filter = true
	p := Compile(info(1, false), bs, nil, nil,
		Options{EnableDecisionTree: true, DisableBypass: true})
	if _, covered := p.TreeUnits(); covered >= 5 {
		t.Fatal("filter binding joined a decision tree")
	}
}

// Property: for random binding populations mixing tree-eligible and
// general steps, tree-enabled and tree-disabled plans fire the same
// handlers in the same order.
func TestTreeEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(20) + 1
		// The same generator seed drives both plan builds, so linear and
		// tree rigs carry identical binding populations.
		seed := rng.Int63()
		build := func(log *[]int, tree bool) *Plan {
			r2 := rand.New(rand.NewSource(seed))
			bs := make([]*Binding, n)
			for i := 0; i < n; i++ {
				id := i
				var g []Guard
				switch r2.Intn(3) {
				case 0:
					g = []Guard{{Pred: ArgEq(0, uint64(r2.Intn(5)))}}
				case 1:
					g = []Guard{{Pred: ArgLt(0, uint64(r2.Intn(5)))}}
				}
				bs[i] = &Binding{Guards: g, Fn: func(any, []any) any {
					*log = append(*log, id)
					return nil
				}}
			}
			return Compile(info(1, false), bs, nil, nil,
				Options{EnableDecisionTree: tree, DisableBypass: true})
		}
		var linLog, treeLog []int
		lin := build(&linLog, false)
		tr := build(&treeLog, true)
		arg := uint64(rng.Intn(6))
		lin.Execute(&Env{}, []any{arg})
		tr.Execute(&Env{}, []any{arg})
		if len(linLog) != len(treeLog) {
			t.Fatalf("trial %d arg %d: linear fired %v, tree fired %v", trial, arg, linLog, treeLog)
		}
		for i := range linLog {
			if linLog[i] != treeLog[i] {
				t.Fatalf("trial %d arg %d: order diverged: %v vs %v", trial, arg, linLog, treeLog)
			}
		}
	}
}

// TestTreeFlattensGuardCost pins the performance claim: with the tree, the
// virtual cost of a raise is independent of the number of guarded
// endpoints; without it, cost grows linearly.
func TestTreeFlattensGuardCost(t *testing.T) {
	measure := func(n int, tree bool) float64 {
		var fired []uint64
		p := Compile(info(1, false), portBindings(n, &fired), nil, nil,
			Options{EnableDecisionTree: tree, DisableBypass: true})
		var clock vtime.Clock
		cpu := vtime.NewCPU(&clock, vtime.AlphaModel())
		p.Execute(&Env{CPU: cpu}, []any{uint64(1000)})
		return vtime.InMicros(vtime.Duration(clock.Now()))
	}
	lin10, lin50 := measure(10, false), measure(50, false)
	tree10, tree50 := measure(10, true), measure(50, true)
	if lin50-lin10 < 0.5 {
		t.Fatalf("linear scan should grow: %.3f -> %.3f", lin10, lin50)
	}
	if diff := tree50 - tree10; diff > 0.01 {
		t.Fatalf("tree dispatch should be flat: %.3f -> %.3f", tree10, tree50)
	}
	if tree50 >= lin50 {
		t.Fatalf("tree (%.3f) not cheaper than linear (%.3f) at 50 endpoints", tree50, lin50)
	}
}

func TestTreeDisassembly(t *testing.T) {
	var fired []uint64
	p := Compile(info(1, false), portBindings(6, &fired), nil, nil,
		Options{EnableDecisionTree: true, DisableBypass: true})
	d := p.Disassemble()
	if !strings.Contains(d, "switch arg0") || !strings.Contains(d, "decision tree over 6 bindings") {
		t.Fatalf("disassembly missing tree:\n%s", d)
	}
}
