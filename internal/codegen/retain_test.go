package codegen

import (
	"testing"
)

// Tests for Plan.RetainsArgs, the property the dispatcher's pooled
// argument frames rely on, and for the allocation-free execution of the
// synchronous unrolled loop.

func TestRetainsArgs(t *testing.T) {
	info := EventInfo{Name: "T", Arity: 1}
	sync := &Binding{Fn: func(any, []any) any { return nil }}
	async := &Binding{Fn: func(any, []any) any { return nil }, Async: true}
	eph := &Binding{Fn: func(any, []any) any { return nil }, Ephemeral: true}
	deadAsync := &Binding{
		Fn:     func(any, []any) any { return nil },
		Async:  true,
		Guards: []Guard{{Pred: False()}},
	}

	cases := []struct {
		name     string
		bindings []*Binding
		want     bool
	}{
		{"sync-only", []*Binding{sync, sync}, false},
		{"async", []*Binding{sync, async}, true},
		{"ephemeral", []*Binding{eph}, true},
		{"dead-async-eliminated", []*Binding{sync, deadAsync}, false},
		{"empty", nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Compile(info, tc.bindings, nil, nil, Options{})
			if got := p.RetainsArgs(); got != tc.want {
				t.Fatalf("RetainsArgs() = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestExecuteSyncStepsZeroAllocs pins the direct-call structure of the
// unrolled loop: executing inline and out-of-line synchronous steps must
// not allocate (the old per-step invoker closure did).
func TestExecuteSyncStepsZeroAllocs(t *testing.T) {
	info := EventInfo{Name: "T", Arity: 1}
	env := &Env{}
	args := []any{uint64(1)}

	inline := Compile(info, []*Binding{
		{Guards: []Guard{{Pred: ArgEq(0, 1)}}, Inline: Nop()},
		{Guards: []Guard{{Pred: ArgEq(0, 2)}}, Inline: Nop()},
	}, nil, nil, Options{DisableBypass: true})
	if n := testing.AllocsPerRun(1000, func() { inline.Execute(env, args) }); n != 0 {
		t.Errorf("inline plan Execute allocates %v/op, want 0", n)
	}

	outline := Compile(info, []*Binding{
		{Fn: func(any, []any) any { return nil }},
		{Fn: func(any, []any) any { return nil }},
	}, nil, nil, Options{DisableBypass: true})
	if n := testing.AllocsPerRun(1000, func() { outline.Execute(env, args) }); n != 0 {
		t.Errorf("out-of-line plan Execute allocates %v/op, want 0", n)
	}

	direct := Compile(info, []*Binding{
		{Fn: func(any, []any) any { return nil }},
	}, nil, nil, Options{})
	if direct.Direct() == nil {
		t.Fatal("expected single-binding bypass")
	}
	if n := testing.AllocsPerRun(1000, func() { direct.Execute(env, args) }); n != 0 {
		t.Errorf("bypass Execute allocates %v/op, want 0", n)
	}
}
