package codegen

import (
	"context"
	"sync/atomic"
)

// Batched executor entry points — the vectorized ingress tier over the
// ahead-of-time specialized shapes (flat.go). A single raise already runs
// straight-line code, but a producer delivering N frames (a packet train,
// an accept burst) still pays the per-raise fixed costs N times: the plan
// load, the stripe shard hash, the trace sampling decision, the
// fired-total flush. The batch executors move the frame loop INSIDE the
// stenciled body, so those costs are paid once per batch:
//
//   - one executor invocation serves the whole batch; the guard walk and
//     lowered bodies run per frame with the loop around them, not around
//     the call;
//   - the caller's hoisted stripe shard index serves every striped counter
//     every frame touches;
//   - the event-level fired total accumulates in a register across the
//     batch and is flushed with one striped add at the end;
//   - per-binding fire counts keep one striped add per firing (identical
//     totals to the loop-of-raises protocol).
//
// Loop equivalence under churn: a loop of single raises loads the plan
// fresh per raise, so an uninstall (or quarantine, or trace toggle)
// between frames is visible to the next frame. The batch executors
// preserve exactly that: before every frame except the first they compare
// the live plan pointer against the plan they are running and return early
// when it moved, reporting how many frames they processed; the dispatcher
// reloads and continues the remainder on the new plan. One atomic load and
// compare per frame is all the staleness check costs — the amortized
// savings (plan load is a load+branch here versus a load, shard hash,
// sampling draw, and flush per raise there) remain.

// ArgFrame is one raise's argument vector within a batch.
type ArgFrame []any

// BatchOutcome folds per-frame Outcomes over one executor call.
type BatchOutcome struct {
	// Fired counts handler invocations across all frames, excluding
	// default-handler firings.
	Fired int64
	// Defaulted counts frames handled by the default handler.
	Defaulted int
	// NoHandler counts frames on which no handler fired and no default was
	// installed (the frames a loop of raises would report ErrNoHandler).
	NoHandler int
	// Ambiguous counts frames that produced multiple unmerged results.
	Ambiguous int
	// Result is the last dispatched frame's merged result.
	Result any
}

// Add folds one frame's outcome into the batch outcome.
func (b *BatchOutcome) Add(o Outcome) {
	b.Fired += int64(o.Fired)
	switch {
	case o.UsedDefault:
		b.Defaulted++
	case o.Fired == 0:
		b.NoHandler++
	}
	if o.Ambiguous {
		b.Ambiguous++
	}
	b.Result = o.Result
}

// BatchExecFn is a compiled batch executor: selected once per plan, called
// once per batch. live, when non-nil, is the event's published-plan cell;
// the executor stops before the first frame that would run on a stale plan
// and reports how many frames it processed, so a churning batch remains
// observably identical to a loop of single raises. stripeIdx is the
// caller's hoisted stripe shard index, shared by every striped counter the
// batch touches.
type BatchExecFn func(p *Plan, env *Env, frames []ArgFrame, stripeIdx int, live *atomic.Pointer[Plan]) (BatchOutcome, int)

// ExecuteBatch dispatches a batch of frames against this plan, drawing the
// per-raise fixed costs once: one trace sampling decision, one specialized
// executor entry (or one interpreter loop), one fired-total flush. Returns
// the folded outcome and the number of frames processed — fewer than
// len(frames) only when live reports the plan was superseded mid-batch,
// in which case the caller reloads and continues. Always processes at
// least one frame of a non-empty batch.
//
// Metered plans (env.CPU != nil) take the per-frame interpreter below so
// the virtual-time charge sequence stays byte-identical to a loop of
// single raises.
func (p *Plan) ExecuteBatch(env *Env, frames []ArgFrame, stripeIdx int, live *atomic.Pointer[Plan]) (BatchOutcome, int) {
	var out BatchOutcome
	if len(frames) == 0 {
		return out, 0
	}
	if p.prog != nil {
		// Tracing compiled in: one sampling decision covers the batch. An
		// unsampled draw runs the whole batch untraced — the amortization
		// this tier exists for; at Sample<2 (record everything) the traced
		// path below re-draws per frame, so every frame still records.
		if raise, sampled := p.prog.Begin(); sampled {
			return p.executeBatchTraced(env, frames, raise, live)
		}
	}
	if env.CPU == nil {
		if p.direct != nil && p.protect == nil {
			return p.executeDirectBatch(env, frames, stripeIdx, live)
		}
		if p.flatBatchExec != nil {
			return p.flatBatchExec(p, env, frames, stripeIdx, live)
		}
	}
	for i := range frames {
		if i > 0 && live != nil && live.Load() != p {
			return out, i
		}
		out.Add(p.execute(env, frames[i]))
	}
	return out, len(frames)
}

// executeBatchTraced runs a sampled batch: the first frame uses the raise
// id the batch's sampling draw produced; every subsequent frame draws its
// own decision (and id), so a tracer recording every raise sees one span
// group per frame, exactly as a loop of single raises would produce.
func (p *Plan) executeBatchTraced(env *Env, frames []ArgFrame, raise uint64, live *atomic.Pointer[Plan]) (BatchOutcome, int) {
	var out BatchOutcome
	for i := range frames {
		if i > 0 {
			if live != nil && live.Load() != p {
				return out, i
			}
			r, sampled := p.prog.Begin()
			if !sampled {
				out.Add(p.execute(env, frames[i]))
				continue
			}
			raise = r
		}
		out.Add(p.executeTraced(env, frames[i], raise))
	}
	return out, len(frames)
}

// executeDirectBatch is the batch tier of the single-binding bypass: the
// frame loop wrapped directly around the handler call. Where the loop form
// pays a per-fire OnFire callback (two striped adds, each hashing its own
// shard), the batch uses the specialized executors' amortized protocol —
// per-frame adds through the caller's hoisted stripe index and one
// event-total flush at the end. The counter totals are identical.
func (p *Plan) executeDirectBatch(env *Env, frames []ArgFrame, idx int, live *atomic.Pointer[Plan]) (BatchOutcome, int) {
	b := p.direct
	onFire := env.OnFire
	fired := env.FiredTotal
	batched := fired != nil
	var out BatchOutcome
	done := len(frames)
	for i := range frames {
		if i > 0 && live != nil && live.Load() != p {
			done = i
			break
		}
		out.Result = p.runBinding(b, frames[i])
		if batched {
			if b.FireCount != nil {
				b.FireCount.AddAt(idx, 1)
			}
		} else if onFire != nil {
			onFire(b.Tag)
		}
	}
	out.Fired = int64(done)
	if batched && done > 0 {
		fired.AddAt(idx, int64(done))
	}
	return out, done
}

// FastBatchExec returns the plan's specialized batch executor when a batch
// can run without per-batch branching beyond the executor itself — the
// batch analog of FastExec. Returns nil when the caller must use
// ExecuteBatch (traced or interpreter-only plans).
func (p *Plan) FastBatchExec() BatchExecFn {
	if p.prog != nil {
		return nil
	}
	return p.flatBatchExec
}

// execFlatBatch is the one batch executor body behind every specialized
// shape: execFlat's guard walk and lowered bodies with the frame loop
// inside the stenciled instantiation. See execFlat for the shape-marker
// mechanics; the batch variants differ only in the loop placement and the
// statistics protocol (the event-level fired total accumulates across the
// batch and flushes once, through the caller's hoisted stripe index).
func execFlatBatch[A aritySpec, R resultSpec, G guardSpec](p *Plan, env *Env, frames []ArgFrame, idx int, live *atomic.Pointer[Plan]) (BatchOutcome, int) {
	var aSpec A
	var rSpec R
	var gSpec G
	_ = aSpec.arity()
	hasResult := rSpec.hasResult()
	useGuards := gSpec.guarded()

	onFire := env.OnFire
	fired := env.FiredTotal
	batched := fired != nil
	preds := p.flatPreds
	flat := p.flat
	var bout BatchOutcome
	var total int64 // event-level fired count, flushed once per batch
	done := len(frames)
frameLoop:
	for fi := range frames {
		if fi > 0 && live != nil && live.Load() != p {
			done = fi
			break frameLoop
		}
		args := []any(frames[fi])
		var out Outcome
		var haveResult bool
	steps:
		for i := range flat {
			s := &flat[i]
			if useGuards {
				pr := &s.g0
				j := s.p0
				for {
					switch pr.op {
					case PredGlobalEq:
						if pr.cell.Load() != pr.k {
							continue steps
						}
					case PredGlobalNe:
						if pr.cell.Load() == pr.k {
							continue steps
						}
					case PredArgEq:
						if w, ok := argWord(args, pr.arg); !ok || w != pr.k {
							continue steps
						}
					case PredArgNe:
						if w, ok := argWord(args, pr.arg); !ok || w == pr.k {
							continue steps
						}
					case PredArgLt:
						if w, ok := argWord(args, pr.arg); !ok || w >= pr.k {
							continue steps
						}
					case PredFalse:
						continue steps
					case predOpTree:
						if !pr.tree.Eval(args) {
							continue steps
						}
					case predOpCall:
						if !pr.fn(pr.clo, args) {
							continue steps
						}
					}
					if j >= s.p1 {
						break
					}
					pr = &preds[j]
					j++
				}
			}
			var res any
			if s.inline {
				switch s.bop {
				case BodyReturnConst:
					res = s.bv
				case BodyAddWord:
					if s.bcell != nil {
						s.bcell.Add(s.bk)
					}
				case BodyReturnArg:
					if s.barg >= 0 && s.barg < len(args) {
						res = args[s.barg]
					}
				}
			} else if s.ctxFn != nil {
				res = s.ctxFn(context.Background(), s.clo, args)
			} else {
				res = s.fn(s.clo, args)
			}
			out.Fired++
			if batched {
				if s.fire != nil {
					s.fire.AddAt(idx, 1)
				}
			} else if onFire != nil {
				onFire(s.tag)
			}
			if hasResult {
				if p.resultFn != nil {
					out.Result = p.resultFn(out.Result, res, out.Fired-1)
				} else {
					if haveResult {
						out.Ambiguous = true
					}
					out.Result = res
					haveResult = true
				}
			}
		}
		if out.Fired == 0 && p.flatDefault != nil {
			d := p.flatDefault
			out.Result = runFlatBody(d, args)
			out.UsedDefault = true
			if batched {
				if d.fire != nil {
					d.fire.AddAt(idx, 1)
				}
			} else if onFire != nil {
				onFire(d.tag)
			}
		}
		if batched {
			total += int64(out.Fired)
			if out.UsedDefault {
				total++
			}
		}
		bout.Add(out)
	}
	if batched && total > 0 {
		fired.AddAt(idx, total)
	}
	return bout, done
}

// flatBatchExecs is the batch selection table, mirroring flatExecs:
// [arity 0..5, any][void, result-fold][unguarded, guarded].
var flatBatchExecs = [7][2][2]BatchExecFn{
	{
		{execFlatBatch[arity0, resultVoid, unguarded], execFlatBatch[arity0, resultVoid, guarded]},
		{execFlatBatch[arity0, resultFold, unguarded], execFlatBatch[arity0, resultFold, guarded]},
	},
	{
		{execFlatBatch[arity1, resultVoid, unguarded], execFlatBatch[arity1, resultVoid, guarded]},
		{execFlatBatch[arity1, resultFold, unguarded], execFlatBatch[arity1, resultFold, guarded]},
	},
	{
		{execFlatBatch[arity2, resultVoid, unguarded], execFlatBatch[arity2, resultVoid, guarded]},
		{execFlatBatch[arity2, resultFold, unguarded], execFlatBatch[arity2, resultFold, guarded]},
	},
	{
		{execFlatBatch[arity3, resultVoid, unguarded], execFlatBatch[arity3, resultVoid, guarded]},
		{execFlatBatch[arity3, resultFold, unguarded], execFlatBatch[arity3, resultFold, guarded]},
	},
	{
		{execFlatBatch[arity4, resultVoid, unguarded], execFlatBatch[arity4, resultVoid, guarded]},
		{execFlatBatch[arity4, resultFold, unguarded], execFlatBatch[arity4, resultFold, guarded]},
	},
	{
		{execFlatBatch[arity5, resultVoid, unguarded], execFlatBatch[arity5, resultVoid, guarded]},
		{execFlatBatch[arity5, resultFold, unguarded], execFlatBatch[arity5, resultFold, guarded]},
	},
	{
		{execFlatBatch[arityAny, resultVoid, unguarded], execFlatBatch[arityAny, resultVoid, guarded]},
		{execFlatBatch[arityAny, resultFold, unguarded], execFlatBatch[arityAny, resultFold, guarded]},
	},
}
