package codegen

import (
	"context"

	"spin/internal/trace"
	"spin/internal/vtime"
)

// executeTraced is the traced twin of Plan.Execute: the routine the
// generator emits when Options.Trace is set, with a span-recording step
// interleaved after every guard evaluation, handler invocation and result
// merge. It exists as a separate routine — rather than branches inside
// Execute — so the untraced plan carries no tracing instructions at all;
// recompiling with tracing on swaps this routine in through the same
// atomic plan publication installs use.
//
// Span timing uses virtual time when the raise is metered (costs are then
// the same numbers the §3 tables aggregate); on an unmetered dispatcher
// span starts degrade to a synthetic ordering stamp and costs are zero.
func (p *Plan) executeTraced(env *Env, args []any, raise uint64) Outcome {
	cpu := env.CPU
	prog := p.prog
	metered := prog.Metered(cpu)
	stamp := func() int64 { return prog.Stamp(cpu) }
	// cost measures the virtual time a span consumed; unmetered spans
	// record zero cost rather than meaningless tick deltas.
	cost := func(start int64) int64 {
		if metered {
			return int64(cpu.Now()) - start
		}
		return 0
	}

	begin := stamp()
	arg0, _ := argWord(args, 0)
	prog.RaiseBegin(raise, begin, arg0)

	if p.direct != nil {
		s := stamp()
		cpu.Charge(vtime.CallDirect)
		cpu.ChargeN(vtime.CallDirectArg, p.info.Arity)
		b := p.direct
		var res any
		completed := true
		if p.protect != nil {
			res, completed = p.runBindingProtected(cpu, b, args)
		} else {
			res = p.runBinding(b, args)
		}
		if env.OnFire != nil {
			env.OnFire(b.Tag)
		}
		prog.Handler(raise, 0, trace.ModeDirect, completed, s, cost(s))
		prog.RaiseEnd(raise, stamp(), cost(begin), 1, false, false)
		return Outcome{Result: res, Fired: 1}
	}

	if p.allInline {
		cpu.Charge(vtime.InlineEntry)
		cpu.ChargeN(vtime.ArgCopy, p.info.Arity)
	} else {
		cpu.Charge(vtime.DispatchEntry)
		cpu.ChargeN(vtime.DispatchEntryArg, p.info.Arity)
	}
	if p.hasFilter {
		cpu.ChargeN(vtime.ArgCopy, p.info.Arity)
	}

	var out Outcome
	var haveResult bool
	execStep := func(st *step) {
		b := st.b
		if b.Filter {
			s := stamp()
			p.chargeHandler(cpu, st)
			completed := true
			if p.protect != nil {
				_, completed = p.callProtected(cpu, st, args)
			} else {
				_ = st.call(args)
			}
			prog.Handler(raise, st.idx, trace.ModeFilter, completed, s, cost(s))
			if env.OnFire != nil {
				env.OnFire(b.Tag)
			}
			return
		}
		if b.Async {
			// The span covers the spawn the raiser pays for; the handler
			// body runs on its own thread of control afterwards.
			s := stamp()
			p.chargeHandler(cpu, st)
			inv := p.invoker(st, args)
			if p.admitQ != nil && env.SubmitHandler != nil {
				env.SubmitHandler(p.admitQ, b.Tag, p.info.Arity, inv)
			} else if env.SpawnHandler != nil {
				env.SpawnHandler(b.Tag, p.info.Arity, inv)
			} else {
				env.Spawn(p.info.Arity, func() { _ = inv(context.Background()) })
			}
			prog.Handler(raise, st.idx, trace.ModeAsync, true, s, cost(s))
			out.Fired++
			if env.OnFire != nil {
				env.OnFire(b.Tag)
			}
			return
		}
		var res any
		completed := true
		s := stamp()
		if b.Ephemeral {
			p.chargeHandler(cpu, st)
			res, completed = env.RunEphemeral(b.Tag, p.invoker(st, args))
			prog.Handler(raise, st.idx, trace.ModeEphemeral, completed, s, cost(s))
		} else {
			p.chargeHandler(cpu, st)
			if p.protect != nil {
				res, completed = p.callProtected(cpu, st, args)
			} else {
				res = st.call(args)
			}
			prog.Handler(raise, st.idx, trace.ModeSync, completed, s, cost(s))
		}
		out.Fired++
		if env.OnFire != nil {
			env.OnFire(b.Tag)
		}
		if !p.info.HasResult || !completed {
			return
		}
		if p.resultFn != nil {
			s := stamp()
			cpu.Charge(vtime.ResultMerge)
			out.Result = p.resultFn(out.Result, res, out.Fired-1)
			prog.Merge(raise, out.Fired-1, s, cost(s))
		} else {
			if haveResult {
				out.Ambiguous = true
			}
			out.Result = res
			haveResult = true
		}
	}

	for i := range p.units {
		u := &p.units[i]
		if u.single != nil {
			if !p.evalGuardsTraced(cpu, u.single, args, raise, metered) {
				continue
			}
			execStep(u.single)
			continue
		}
		// Decision tree: the single hashed lookup stands in for the whole
		// run's guard evaluations, so it records as one guard span (step
		// -1) whose outcome is whether any branch matched.
		s := stamp()
		cpu.Charge(vtime.GuardInline)
		w, ok := argWord(args, u.treeArg)
		var branch []step
		if ok {
			branch = u.branches[w]
		}
		prog.Guard(raise, -1, 0, true, len(branch) > 0, s, cost(s))
		for j := range branch {
			execStep(&branch[j])
		}
	}

	if out.Fired == 0 && p.defaultB != nil {
		b := p.defaultB
		s := stamp()
		cpu.Charge(vtime.HandlerIndirect)
		var res any
		completed := true
		if p.protect != nil {
			res, completed = p.runBindingProtected(cpu, b, args)
		} else {
			res = p.runBinding(b, args)
		}
		prog.Handler(raise, -1, trace.ModeDefault, completed, s, cost(s))
		if env.OnFire != nil {
			env.OnFire(b.Tag)
		}
		out.Result = res
		out.UsedDefault = true
	}
	prog.RaiseEnd(raise, stamp(), cost(begin), out.Fired, out.Ambiguous, out.UsedDefault)
	return out
}

// evalGuardsTraced is evalGuards with a span per evaluation: guard index,
// inline-versus-indirect, and outcome. Evaluation stops at the first
// failing guard, whose failure span closes the step.
func (p *Plan) evalGuardsTraced(cpu *vtime.CPU, st *step, args []any, raise uint64, metered bool) bool {
	prog := p.prog
	for i := range st.guards {
		g := &st.guards[i]
		s := prog.Stamp(cpu)
		inline := g.Pred != nil && !p.opts.DisableInline
		var pass bool
		if inline {
			cpu.Charge(vtime.GuardInline)
			pass = g.Pred.Eval(args)
		} else {
			cpu.Charge(vtime.GuardIndirect)
			if g.Pred != nil {
				pass = g.Pred.Eval(args)
			} else if p.protect != nil {
				pass = p.guardProtected(g, st.b.Tag, args)
			} else {
				pass = g.Fn(g.Closure, args)
			}
		}
		var c int64
		if metered {
			c = int64(cpu.Now()) - s
		}
		prog.Guard(raise, st.idx, i, inline, pass, s, c)
		if !pass {
			return false
		}
	}
	return true
}
