package codegen

import (
	"runtime/debug"

	"spin/internal/vtime"
)

// Protected execution helpers: the recovery barriers compiled into a plan
// when Options.Protect is set. Each barrier is an open-coded defer of a
// method call (not a closure), so the no-fault path through a protected
// plan stays allocation-free — the acceptance property
// TestFaultPolicyOnZeroAlloc enforces. The stack capture allocates only on
// the panic path, where an unwind has already blown the cost budget.

// callProtected runs one synchronous (or filter) step behind the fault
// hook. ok is false when the handler panicked: the step counts as fired
// with no result, mirroring a terminated EPHEMERAL invocation.
func (p *Plan) callProtected(cpu *vtime.CPU, st *step, args []any) (res any, ok bool) {
	defer p.captureHandler(st.b.Tag, &ok)
	if cpu != nil {
		start := cpu.Now()
		res = st.call(args)
		p.protect.SyncCost(st.b.Tag, cpu.Now().Sub(start))
	} else {
		res = st.call(args)
	}
	ok = true
	return
}

// runBindingProtected is callProtected for non-step bindings (the direct
// bypass and the default handler).
func (p *Plan) runBindingProtected(cpu *vtime.CPU, b *Binding, args []any) (res any, ok bool) {
	defer p.captureHandler(b.Tag, &ok)
	if cpu != nil {
		start := cpu.Now()
		res = p.runBinding(b, args)
		p.protect.SyncCost(b.Tag, cpu.Now().Sub(start))
	} else {
		res = p.runBinding(b, args)
	}
	ok = true
	return
}

// captureHandler is the deferred recovery barrier for handler invocations.
func (p *Plan) captureHandler(tag any, ok *bool) {
	if *ok {
		return
	}
	if v := recover(); v != nil {
		p.protect.HandlerPanic(tag, v, debug.Stack())
	}
}

// guardProtected evaluates one out-of-line guard behind the fault hook; a
// panicking guard evaluates false.
func (p *Plan) guardProtected(g *Guard, tag any, args []any) (pass bool) {
	defer p.captureGuard(tag, &pass)
	return g.Fn(g.Closure, args)
}

// captureGuard is the deferred recovery barrier for guard evaluations. The
// hook may re-panic (the dispatcher's purity monitor does, to surface
// ErrGuardMutatedArgs at the raise point); the re-panic propagates past the
// recovered frame.
func (p *Plan) captureGuard(tag any, pass *bool) {
	if v := recover(); v != nil {
		*pass = false
		p.protect.GuardPanic(tag, v, debug.Stack())
	}
}
