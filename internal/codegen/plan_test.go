package codegen

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"spin/internal/vtime"
)

func countingHandler(count *int, result any) HandlerFn {
	return func(closure any, args []any) any {
		*count++
		return result
	}
}

func info(arity int, hasResult bool) EventInfo {
	return EventInfo{Name: "Test.Event", Arity: arity, HasResult: hasResult}
}

func exec(p *Plan, args ...any) Outcome {
	return p.Execute(&Env{}, args)
}

func TestSingleBindingBypass(t *testing.T) {
	n := 0
	b := &Binding{Fn: countingHandler(&n, nil)}
	p := Compile(info(0, false), []*Binding{b}, nil, nil, Options{})
	if p.Direct() == nil {
		t.Fatal("single unguarded binding must compile to a direct call")
	}
	out := exec(p)
	if n != 1 || out.Fired != 1 {
		t.Fatalf("n=%d fired=%d", n, out.Fired)
	}
}

func TestBypassDisabledByOptions(t *testing.T) {
	n := 0
	b := &Binding{Fn: countingHandler(&n, nil)}
	p := Compile(info(0, false), []*Binding{b}, nil, nil, Options{DisableBypass: true})
	if p.Direct() != nil {
		t.Fatal("bypass must honour DisableBypass")
	}
	if out := exec(p); out.Fired != 1 || n != 1 {
		t.Fatal("routine dispatch broken without bypass")
	}
}

func TestNoBypassWithGuardsOrProperties(t *testing.T) {
	n := 0
	mk := func(mut func(*Binding)) *Plan {
		b := &Binding{Fn: countingHandler(&n, nil)}
		mut(b)
		return Compile(info(0, false), []*Binding{b}, nil, nil, Options{})
	}
	if mk(func(b *Binding) { b.Guards = []Guard{{Pred: ArgEq(0, 1)}} }).Direct() != nil {
		t.Error("guarded binding bypassed")
	}
	if mk(func(b *Binding) { b.Async = true }).Direct() != nil {
		t.Error("async binding bypassed")
	}
	if mk(func(b *Binding) { b.Ephemeral = true }).Direct() != nil {
		t.Error("ephemeral binding bypassed")
	}
	if mk(func(b *Binding) { b.Filter = true }).Direct() != nil {
		t.Error("filter binding bypassed")
	}
	// Default or result handler present: the routine must stay.
	b := &Binding{Fn: countingHandler(&n, nil)}
	d := &Binding{Fn: countingHandler(&n, nil)}
	if Compile(info(0, false), []*Binding{b}, nil, d, Options{}).Direct() != nil {
		t.Error("bypassed despite default handler")
	}
}

func TestGuardsFilterHandlers(t *testing.T) {
	fired := []string{}
	mark := func(name string) HandlerFn {
		return func(any, []any) any { fired = append(fired, name); return nil }
	}
	bs := []*Binding{
		{Guards: []Guard{{Pred: ArgEq(0, 80)}}, Fn: mark("http")},
		{Guards: []Guard{{Pred: ArgEq(0, 443)}}, Fn: mark("https")},
		{Fn: mark("all")},
	}
	p := Compile(info(1, false), bs, nil, nil, Options{})
	out := p.Execute(&Env{}, []any{uint64(443)})
	if out.Fired != 2 {
		t.Fatalf("fired = %d, want 2", out.Fired)
	}
	if len(fired) != 2 || fired[0] != "https" || fired[1] != "all" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestIndirectGuardCalled(t *testing.T) {
	calls := 0
	g := Guard{Fn: func(closure any, args []any) bool {
		calls++
		if closure != "clo" {
			t.Errorf("closure = %v", closure)
		}
		return false
	}, Closure: "clo"}
	n := 0
	bs := []*Binding{{Guards: []Guard{g}, Fn: countingHandler(&n, nil)}, {Fn: countingHandler(&n, nil)}}
	p := Compile(info(0, false), bs, nil, nil, Options{})
	out := exec(p)
	if calls != 1 || n != 1 || out.Fired != 1 {
		t.Fatalf("calls=%d n=%d fired=%d", calls, n, out.Fired)
	}
}

func TestPeepholeElidesTrueGuards(t *testing.T) {
	n := 0
	b := &Binding{
		Guards: []Guard{{Pred: And(True(), True())}},
		Fn:     countingHandler(&n, nil),
	}
	p := Compile(info(0, false), []*Binding{b}, nil, nil, Options{})
	// After peephole the binding has no guards and becomes the bypass.
	if p.Direct() == nil {
		t.Fatal("constant-true guard not elided")
	}
}

func TestPeepholeRemovesDeadBindings(t *testing.T) {
	n := 0
	bs := []*Binding{
		{Guards: []Guard{{Pred: And(False(), ArgEq(0, 1))}}, Fn: countingHandler(&n, nil)},
		{Fn: countingHandler(&n, nil)},
	}
	p := Compile(info(0, false), bs, nil, nil, Options{})
	if p.Bindings != 1 {
		t.Fatalf("dead binding survived: %d live", p.Bindings)
	}
	if p.Direct() == nil {
		t.Fatal("surviving binding should become the bypass")
	}
}

func TestPeepholeDisabled(t *testing.T) {
	n := 0
	b := &Binding{Guards: []Guard{{Pred: True()}}, Fn: countingHandler(&n, nil)}
	p := Compile(info(0, false), []*Binding{b}, nil, nil, Options{DisablePeephole: true})
	if p.Direct() != nil {
		t.Fatal("guard kept under DisablePeephole must block bypass")
	}
	if out := exec(p); out.Fired != 1 {
		t.Fatal("true guard must still pass")
	}
}

func TestResultSingleHandlerMimicsProcedureCall(t *testing.T) {
	b := &Binding{Fn: func(any, []any) any { return 42 }}
	p := Compile(info(0, true), []*Binding{b}, nil, nil, Options{DisableBypass: true})
	out := exec(p)
	if out.Result != 42 || out.Ambiguous || out.Fired != 1 {
		t.Fatalf("out = %+v", out)
	}
}

func TestResultHandlerFoldsAll(t *testing.T) {
	// The paper's VM.PageFault example: result handler returns the
	// logical OR of all handler results.
	or := func(acc, r any, i int) any {
		b, _ := r.(bool)
		a, _ := acc.(bool)
		return a || b
	}
	bs := []*Binding{
		{Fn: func(any, []any) any { return false }},
		{Fn: func(any, []any) any { return true }},
		{Fn: func(any, []any) any { return false }},
	}
	p := Compile(info(0, true), bs, or, nil, Options{})
	out := exec(p)
	if out.Result != true || out.Ambiguous {
		t.Fatalf("out = %+v", out)
	}
	if out.Fired != 3 {
		t.Fatalf("fired = %d", out.Fired)
	}
}

func TestAmbiguousResultFlagged(t *testing.T) {
	bs := []*Binding{
		{Fn: func(any, []any) any { return 1 }},
		{Fn: func(any, []any) any { return 2 }},
	}
	p := Compile(info(0, true), bs, nil, nil, Options{})
	out := exec(p)
	if !out.Ambiguous {
		t.Fatal("two results without a result handler must be ambiguous")
	}
	if out.Result != 2 {
		t.Fatalf("ambiguous result should hold the last value, got %v", out.Result)
	}
}

func TestDefaultHandlerRunsOnlyWhenNothingFires(t *testing.T) {
	defCalls := 0
	def := &Binding{Fn: countingHandler(&defCalls, "default")}
	n := 0
	guarded := &Binding{
		Guards: []Guard{{Pred: ArgEq(0, 1)}},
		Fn:     countingHandler(&n, "real"),
	}
	p := Compile(info(1, true), []*Binding{guarded}, nil, def, Options{})

	out := p.Execute(&Env{}, []any{uint64(9)})
	if !out.UsedDefault || out.Result != "default" || defCalls != 1 {
		t.Fatalf("default path broken: %+v calls=%d", out, defCalls)
	}
	out = p.Execute(&Env{}, []any{uint64(1)})
	if out.UsedDefault || out.Result != "real" || defCalls != 1 {
		t.Fatalf("default ran despite a firing handler: %+v", out)
	}
}

func TestNoHandlerNoDefault(t *testing.T) {
	p := Compile(info(0, true), nil, nil, nil, Options{})
	out := exec(p)
	if out.Fired != 0 || out.UsedDefault {
		t.Fatalf("out = %+v", out)
	}
}

func TestFiltersMutateDownstreamArgs(t *testing.T) {
	// The paper's MS-DOS-over-UNIX name conversion: a filter rewrites an
	// argument, later handlers see the new value.
	var seen string
	filter := &Binding{
		Filter: true,
		Fn: func(closure any, args []any) any {
			args[0] = strings.ToLower(args[0].(string))
			return nil
		},
	}
	reader := &Binding{Fn: func(closure any, args []any) any {
		seen = args[0].(string)
		return nil
	}}
	p := Compile(info(1, false), []*Binding{filter, reader}, nil, nil, Options{})
	args := []any{"README.TXT"}
	p.Execute(&Env{}, args)
	if seen != "readme.txt" {
		t.Fatalf("downstream handler saw %q", seen)
	}
}

func TestAsyncHandlerSpawns(t *testing.T) {
	spawned := 0
	ran := 0
	env := &Env{Spawn: func(arity int, fn func()) {
		spawned++
		fn()
	}}
	bs := []*Binding{
		{Async: true, Fn: func(any, []any) any { ran++; return "dropped" }},
		{Fn: func(any, []any) any { return "sync" }},
	}
	p := Compile(info(0, true), bs, nil, nil, Options{})
	out := p.Execute(env, nil)
	if spawned != 1 || ran != 1 {
		t.Fatalf("spawned=%d ran=%d", spawned, ran)
	}
	if out.Fired != 2 {
		t.Fatalf("fired = %d", out.Fired)
	}
	if out.Result != "sync" || out.Ambiguous {
		t.Fatalf("async result leaked into the merge: %+v", out)
	}
}

func TestEphemeralHandlerSupervised(t *testing.T) {
	term := 0
	env := &Env{RunEphemeral: func(tag any, invoke func(context.Context) any) (any, bool) {
		term++
		if tag != "tag" {
			t.Errorf("tag = %v", tag)
		}
		return nil, false // simulate termination
	}}
	live := &Binding{Fn: func(any, []any) any { return true }}
	eph := &Binding{Ephemeral: true, Tag: "tag", Fn: func(any, []any) any { return false }}
	p := Compile(info(0, true), []*Binding{eph, live}, nil, nil, Options{})
	out := p.Execute(env, nil)
	if term != 1 {
		t.Fatalf("supervisor calls = %d", term)
	}
	// The terminated handler fired but contributed no result.
	if out.Fired != 2 || out.Result != true || out.Ambiguous {
		t.Fatalf("out = %+v", out)
	}
}

func TestOnFireReportsTags(t *testing.T) {
	var tags []any
	env := &Env{OnFire: func(tag any) { tags = append(tags, tag) }}
	bs := []*Binding{
		{Tag: "a", Fn: func(any, []any) any { return nil }},
		{Tag: "b", Guards: []Guard{{Pred: False()}}, Fn: func(any, []any) any { return nil }},
		{Tag: "c", Fn: func(any, []any) any { return nil }},
	}
	p := Compile(info(0, false), bs, nil, nil, Options{DisablePeephole: true, DisableBypass: true})
	p.Execute(env, nil)
	if len(tags) != 2 || tags[0] != "a" || tags[1] != "c" {
		t.Fatalf("tags = %v", tags)
	}
}

func TestInlinePlanDetection(t *testing.T) {
	var cell atomic.Uint64
	inline := &Binding{
		Guards: []Guard{{Pred: GlobalEq(&cell, 0)}},
		Inline: Nop(),
		Fn:     func(any, []any) any { return nil },
	}
	p := Compile(info(0, false), []*Binding{inline, inline}, nil, nil, Options{})
	if !p.FullyInline() {
		t.Fatal("plan with only inlinable bindings must be fully inline")
	}
	opaque := &Binding{Fn: func(any, []any) any { return nil }}
	p2 := Compile(info(0, false), []*Binding{inline, opaque}, nil, nil, Options{DisableBypass: true})
	if p2.FullyInline() {
		t.Fatal("opaque handler must break full inlining")
	}
	p3 := Compile(info(0, false), []*Binding{inline, inline}, nil, nil, Options{DisableInline: true})
	if p3.FullyInline() {
		t.Fatal("DisableInline must disable inlining")
	}
}

func TestInlineBodiesExecuteInline(t *testing.T) {
	var counter atomic.Uint64
	b := &Binding{Inline: AddWord(&counter, 1), Fn: func(any, []any) any {
		t.Error("out-of-line handler called for inline body")
		return nil
	}}
	b2 := &Binding{Inline: AddWord(&counter, 10), Fn: nil}
	p := Compile(info(0, false), []*Binding{b, b2}, nil, nil, Options{DisableBypass: true})
	p.Execute(&Env{}, nil)
	if counter.Load() != 11 {
		t.Fatalf("counter = %d", counter.Load())
	}
}

func TestDisableInlineFallsBackToFn(t *testing.T) {
	called := 0
	b := &Binding{Inline: ReturnConst(1), Fn: func(any, []any) any { called++; return 2 }}
	p := Compile(info(0, true), []*Binding{b}, nil, nil, Options{DisableInline: true, DisableBypass: true})
	out := exec(p)
	if called != 1 || out.Result != 2 {
		t.Fatalf("called=%d out=%+v", called, out)
	}
}

// Virtual-time cost tests: the generated code's charge structure is what
// regenerates Table 1, so it is pinned here.

func meteredExec(p *Plan, args []any) vtime.Duration {
	var clock vtime.Clock
	cpu := vtime.NewCPU(&clock, vtime.AlphaModel())
	p.Execute(&Env{CPU: cpu}, args)
	return vtime.Duration(clock.Now())
}

func TestCostBypassIsDirectCall(t *testing.T) {
	b := &Binding{Fn: func(any, []any) any { return nil }}
	p := Compile(info(0, false), []*Binding{b}, nil, nil, Options{})
	got := meteredExec(p, nil)
	if got != vtime.Micros(0.10) {
		t.Fatalf("bypass cost = %v, want 0.10us", got)
	}
}

func TestCostNoInlineMatchesTable1(t *testing.T) {
	model := vtime.AlphaModel()
	mkGuard := func() Guard {
		return Guard{Fn: func(any, []any) bool { return true }}
	}
	for _, tc := range []struct {
		args, handlers    int
		wantLow, wantHigh float64 // paper Table 1 value +-15%
	}{
		{0, 1, 0.31, 0.43},  // paper 0.37
		{0, 50, 9.9, 13.5},  // paper 11.69
		{5, 1, 0.82, 1.12},  // paper 0.97
		{5, 50, 12.3, 16.6}, // paper 14.45
	} {
		bs := make([]*Binding, tc.handlers)
		for i := range bs {
			bs[i] = &Binding{Guards: []Guard{mkGuard()}, Fn: func(any, []any) any { return nil }}
		}
		p := Compile(info(tc.args, false), bs, nil, nil, Options{DisableBypass: true})
		args := make([]any, tc.args)
		for i := range args {
			args[i] = uint64(i)
		}
		var clock vtime.Clock
		cpu := vtime.NewCPU(&clock, model)
		p.Execute(&Env{CPU: cpu}, args)
		us := vtime.InMicros(vtime.Duration(clock.Now()))
		if us < tc.wantLow || us > tc.wantHigh {
			t.Errorf("no-inline args=%d handlers=%d: %.3fus outside [%.2f,%.2f]",
				tc.args, tc.handlers, us, tc.wantLow, tc.wantHigh)
		}
	}
}

func TestCostInlineMatchesTable1(t *testing.T) {
	var cell atomic.Uint64
	for _, tc := range []struct {
		args, handlers    int
		wantLow, wantHigh float64
	}{
		{0, 1, 0.20, 0.27}, // paper 0.23
		{0, 50, 2.1, 2.9},  // paper 2.48
		{5, 1, 0.35, 0.49}, // paper 0.42
		{5, 50, 4.8, 6.5},  // paper 5.65
	} {
		bs := make([]*Binding, tc.handlers)
		for i := range bs {
			bs[i] = &Binding{
				Guards: []Guard{{Pred: GlobalEq(&cell, 0)}},
				Inline: Nop(),
			}
		}
		p := Compile(info(tc.args, false), bs, nil, nil, Options{DisableBypass: true})
		if !p.FullyInline() {
			t.Fatal("expected fully inline plan")
		}
		args := make([]any, tc.args)
		for i := range args {
			args[i] = uint64(i)
		}
		us := vtime.InMicros(meteredExec(p, args))
		if us < tc.wantLow || us > tc.wantHigh {
			t.Errorf("inline args=%d handlers=%d: %.3fus outside [%.2f,%.2f]",
				tc.args, tc.handlers, us, tc.wantLow, tc.wantHigh)
		}
	}
}

func TestDisassemble(t *testing.T) {
	var cell atomic.Uint64
	bs := []*Binding{
		{Guards: []Guard{{Pred: GlobalEq(&cell, 0)}}, Inline: Nop()},
		{Fn: func(any, []any) any { return nil }, Async: true},
		{Fn: func(any, []any) any { return nil }, Ephemeral: true, Filter: true},
	}
	def := &Binding{Fn: func(any, []any) any { return nil }}
	p := Compile(info(2, true), bs, func(a, r any, i int) any { return r }, def, Options{})
	d := p.Disassemble()
	for _, want := range []string{"step 0", "[inline]", "async", "ephemeral", "filter", "default handler", "result handler"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
	direct := Compile(info(0, false), []*Binding{{Fn: func(any, []any) any { return nil }}}, nil, nil, Options{})
	if !strings.Contains(direct.Disassemble(), "direct call") {
		t.Error("bypass plan disassembly missing direct call marker")
	}
}
