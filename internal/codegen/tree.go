package codegen

// Decision-tree guard optimization — the paper's stated future work:
// "we presently do not optimize the guard decision tree, which would be
// effective for the port comparison required by this example. We are
// currently working on a strategy by which this type of guard
// optimization can be easily expressed" (§3.2).
//
// The strategy implemented here: during plan compilation, a consecutive
// run of bindings whose entire guard list is a single ArgEq predicate on
// the same argument index collapses into one decision-tree unit. At
// dispatch time the argument word is extracted once and hashed to the
// matching bindings, so evaluation cost is O(1) in the number of guarded
// endpoints instead of O(n) — Table 2's per-guard slope disappears.
//
// Correctness: ArgEq guards on the same argument with different constants
// are mutually exclusive, so regrouping them cannot change which handlers
// fire; bindings sharing a constant keep their relative order inside the
// branch; and only *consecutive* runs collapse, so ordering against
// non-tree bindings interleaved in the handler list is preserved. The
// transformation relies on guards being FUNCTIONAL: evaluation can be
// skipped entirely for non-matching branches only because guards cannot
// have side effects (§2.3 "Evaluating guards").
//
// The optimization is off by default, matching the paper's system;
// Options.EnableDecisionTree turns it on (the ablation benchmarks compare
// both).

// treeThreshold is the minimum run length worth a tree; below it the
// linear scan is cheaper than the setup.
const treeThreshold = 4

// unit is one dispatch step after tree grouping: either a single linear
// step or a decision tree over an argument word.
type unit struct {
	single *step
	// tree fields; used when single is nil.
	treeArg  int
	branches map[uint64][]step
	// treeSize is the number of bindings folded into the tree, for
	// disassembly and tests.
	treeSize int
}

// treeKey reports whether a step is eligible to join a decision tree, and
// on which (argument, constant) it discriminates.
func treeKey(st *step) (arg int, k uint64, ok bool) {
	if len(st.guards) != 1 || st.guards[0].Pred == nil {
		return 0, 0, false
	}
	p := st.guards[0].Pred
	if p.Op != PredArgEq {
		return 0, 0, false
	}
	// Async and ephemeral bindings are fine (the tree only replaces
	// guard evaluation), but filters are not: a filter can rewrite the
	// discriminated argument for later bindings, and the tree extracts
	// the word once.
	if st.b.Filter {
		return 0, 0, false
	}
	return p.Arg, p.K, true
}

// buildUnits groups a compiled step list into dispatch units, collapsing
// eligible consecutive runs into decision trees.
func buildUnits(steps []step, enable bool) []unit {
	var units []unit
	i := 0
	for i < len(steps) {
		if !enable {
			units = append(units, unit{single: &steps[i]})
			i++
			continue
		}
		arg, _, ok := treeKey(&steps[i])
		if !ok {
			units = append(units, unit{single: &steps[i]})
			i++
			continue
		}
		// Extend the run of steps discriminating on the same argument.
		j := i + 1
		for j < len(steps) {
			a2, _, ok2 := treeKey(&steps[j])
			if !ok2 || a2 != arg {
				break
			}
			j++
		}
		if j-i < treeThreshold {
			for ; i < j; i++ {
				units = append(units, unit{single: &steps[i]})
			}
			continue
		}
		u := unit{treeArg: arg, branches: make(map[uint64][]step), treeSize: j - i}
		for _, st := range steps[i:j] {
			_, k, _ := treeKey(&st)
			// Inside a branch the guard is already decided; strip it
			// so execution charges no per-binding guard cost.
			st.guards = nil
			u.branches[k] = append(u.branches[k], st)
		}
		units = append(units, u)
		i = j
	}
	return units
}
