package codegen

import (
	"context"
	"fmt"
	"strings"

	"spin/internal/admit"
	"spin/internal/journal"
	"spin/internal/stripe"
	"spin/internal/trace"
	"spin/internal/vtime"
)

// GuardFn is the out-of-line guard calling convention: closure (nil when
// none was supplied at installation) plus the raise arguments.
type GuardFn func(closure any, args []any) bool

// HandlerFn is the out-of-line handler calling convention. Void handlers
// return nil.
type HandlerFn func(closure any, args []any) any

// CtxHandlerFn is the cancellation-aware handler calling convention: the
// context is cancelled when a watchdog deadline expires, so a cooperative
// EPHEMERAL or asynchronous handler can stop early instead of running
// abandoned (§2.6 "Runaway handlers"). Synchronous invocations receive
// context.Background().
type CtxHandlerFn func(ctx context.Context, closure any, args []any) any

// FaultHook receives structured fault captures from protected plan
// execution. It is implemented by the dispatcher's fault controller; the
// generator only calls it from plans compiled with Options.Protect.
type FaultHook interface {
	// HandlerPanic reports a recovered panic in a handler body; the
	// handler counts as fired with no result.
	HandlerPanic(tag any, val any, stack []byte)
	// GuardPanic reports a recovered panic in an out-of-line guard; the
	// guard counts as failed.
	GuardPanic(tag any, val any, stack []byte)
	// SyncCost reports the virtual-time cost of one synchronous handler
	// invocation on a metered dispatcher (for overrun budgets).
	SyncCost(tag any, cost vtime.Duration)
}

// ResultFn folds handler results: it is called separately for each result
// produced during a raise, receiving the accumulator (nil initially), the
// new result, and the zero-based index of the result (paper §2.3 "Handling
// results").
type ResultFn func(acc any, result any, index int) any

// Guard pairs an evaluable guard with its installation closure. A non-nil
// Pred marks the guard as inlinable: the generator evaluates it inside the
// dispatch routine. Otherwise Fn is called indirectly.
type Guard struct {
	Fn      GuardFn
	Closure any
	Pred    *Pred
}

// Binding is the code generator's view of one installed handler: its guard
// list (installer guards followed by authorizer-imposed guards), the
// handler itself, and the execution properties that shape the generated
// code.
type Binding struct {
	Guards  []Guard
	Fn      HandlerFn
	Closure any
	// CtxFn is the cancellation-aware implementation, used instead of Fn
	// when non-nil. Synchronous calls pass context.Background(); the
	// ephemeral and async supervisors pass their watchdog context.
	CtxFn CtxHandlerFn
	// Inline, when non-nil, lets the generator inline the handler body.
	Inline *Body
	// Async handlers execute on a separate thread of control via
	// Env.Spawn; their results are not returned to the raiser.
	Async bool
	// Ephemeral handlers run under Env.RunEphemeral, which may terminate
	// them (paper §2.6 "Runaway handlers").
	Ephemeral bool
	// Filter marks a handler that takes parameters by reference and may
	// rewrite them for subsequent handlers and guards.
	Filter bool
	// Tag is an opaque back-pointer for the dispatcher (statistics,
	// termination reporting). The generator never inspects it.
	Tag any
	// FireCount, when non-nil, is the binding's striped fire counter. The
	// specialized executors (flat.go) increment it directly through one
	// hoisted stripe shard index per raise instead of calling Env.OnFire
	// per firing; the interpreter ignores it and keeps the OnFire contract.
	FireCount *stripe.Counter
	// Name is the handler's qualified procedure name, used only to label
	// trace spans; the generated code never inspects it.
	Name string
}

// fullyInline reports whether the generator can execute the binding without
// any indirect call.
func (b *Binding) fullyInline() bool {
	if b.Inline == nil || b.Async || b.Ephemeral {
		return false
	}
	for _, g := range b.Guards {
		if g.Pred == nil {
			return false
		}
	}
	return true
}

// EventInfo carries the event attributes the generator specializes on.
type EventInfo struct {
	Name      string
	Arity     int
	HasResult bool
}

// Options disable individual generator optimizations, for the ablation
// benchmarks. The zero value enables everything SPIN's generator did,
// and nothing it did not.
type Options struct {
	// DisableInline forces every guard and handler out of line, the
	// "no inline" configuration of Table 1.
	DisableInline bool
	// DisableBypass keeps the dispatch routine in place even for a
	// single unguarded synchronous binding.
	DisableBypass bool
	// DisablePeephole skips plan simplification.
	DisablePeephole bool
	// EnableDecisionTree turns on the guard decision-tree optimization
	// the paper names as future work (§3.2): consecutive bindings whose
	// only guard is an ArgEq predicate on the same argument dispatch
	// through a hash on the argument word instead of a linear guard
	// scan. Off by default, matching the measured system; see tree.go.
	EnableDecisionTree bool
	// DisableSpecialize keeps every plan on the per-step interpreter,
	// disabling the ahead-of-time flattened, shape-specialized executors
	// (flat.go) — the "interpreter" row of the specialization ablation.
	DisableSpecialize bool
	// DisableShapeSpecialize keeps the flattened guard/body lowering but
	// always selects the one generic-shape executor instead of the
	// compile-time (arity × result × guarded) variant — the ablation's
	// middle tier, isolating flattening from shape selection.
	DisableShapeSpecialize bool
	// IncrementalInstall switches handler installation from full plan
	// regeneration (cost linear in the bindings present; O(n^2) for n
	// installs, §3.1) to an incremental append (constant cost per
	// install) — the "more incremental (and economical) approach to
	// installation" the paper anticipates needing. The generated plan
	// is identical; only the installation cost model changes.
	IncrementalInstall bool
	// Trace, when non-nil, compiles trace recording steps into the plan:
	// the generated routine registers its step layout with the tracer and
	// sampled raises execute a traced twin of the dispatch loop. A nil
	// Trace compiles a plan with no tracing code at all, so a disabled
	// tracer costs nothing on the hot path (the zero-cost-off property
	// TestTracingOffZeroAlloc enforces).
	Trace *trace.Tracer
	// Protect, when non-nil, compiles fault capture into the plan: every
	// handler invocation and out-of-line guard evaluation runs behind a
	// recover barrier that routes panics (and virtual-time overruns) to
	// the hook instead of the raiser. A panicking handler counts as fired
	// with no result; a panicking guard counts as failed. Plans compiled
	// without Protect carry no recovery code at all — the same
	// zero-cost-off contract tracing has (DESIGN.md decision 12).
	Protect FaultHook
	// Admit, when non-nil, compiles the event's admission queue into the
	// plan: asynchronous handler invocations are submitted to the bounded
	// queue (via Env.SubmitHandler) instead of spawned directly, and
	// asynchronous raises of the event pass through the same queue. A nil
	// Admit compiles the unqueued spawn path, so an event without an
	// admission policy pays one nil check per async step and nothing else
	// — the same zero-cost-off contract tracing and fault capture have
	// (DESIGN.md decision 13).
	Admit *admit.Queue
	// Journal, when non-nil, compiles lifecycle journaling into the plan:
	// the raise path draws from the journal's striped sampler after
	// execution (one pointer load and, off-sample, one masked counter
	// increment). A nil Journal compiles a plan with no journal field at
	// all, so a journal-off dispatcher's raise path is byte-identical to
	// the unjournaled build — the same zero-cost-off contract tracing,
	// fault capture, and admission have (DESIGN.md decision 17).
	Journal *journal.Journal
}

// step is one unrolled dispatch step.
type step struct {
	guards []Guard
	b      *Binding
	inline bool // binding executes fully inline
	// idx is the step's index in the live plan, assigned at compile time.
	// Decision-tree branches copy steps out of plan order, so the index is
	// carried on the step itself for trace-span attribution.
	idx int
}

// Plan is an immutable compiled dispatch routine. The dispatcher publishes
// a new plan with a single atomic pointer store on every installation or
// removal, so raises in flight keep executing the old plan — the paper's
// "handler lists are updated atomically with respect to event dispatch by
// using a single memory access".
type Plan struct {
	info      EventInfo
	opts      Options
	steps     []step
	units     []unit
	direct    *Binding // non-nil: single-binding bypass, dispatcher skipped
	resultFn  ResultFn
	defaultB  *Binding
	allInline bool
	hasFilter bool
	// retains is set when some live binding (asynchronous or ephemeral)
	// may hold the raise argument slice past the raise, so callers must
	// not recycle it. Dispatcher fast paths consult RetainsArgs before
	// reusing pooled argument buffers.
	retains bool
	// Bindings is the number of live bindings compiled into the plan,
	// used by the dispatcher to charge the O(n) regeneration cost.
	Bindings int
	// prog is the plan's trace recording handle, non-nil only when the
	// plan was compiled with Options.Trace. Untraced plans pay a single
	// nil check per raise and nothing else.
	prog *trace.Program
	// protect is the fault hook compiled into the plan (Options.Protect);
	// nil plans execute with no recovery barriers at all.
	protect FaultHook
	// admitQ is the admission queue compiled into the plan
	// (Options.Admit); nil plans spawn asynchronous work unqueued.
	admitQ *admit.Queue
	// jrnl is the lifecycle journal compiled into the plan
	// (Options.Journal); nil plans raise with no journal check beyond one
	// nil test.
	jrnl *journal.Journal
	// Ahead-of-time specialization (flat.go): the flattened step array, the
	// shared guard-leaf pool its steps index into, the lowered default
	// handler, and the shape-specialized executor selected at compile time.
	// All nil/empty when the plan stays on the interpreter.
	flat        []flatStep
	flatPreds   []flatPred
	flatDefault *flatStep
	flatExec    ExecFn
	// flatBatchExec is the batch-shaped twin of flatExec (flatbatch.go):
	// the same stenciled guard walk and lowered bodies with the frame loop
	// inside the executor, selected by the same shape indices.
	flatBatchExec BatchExecFn
}

// Env supplies the execution hooks the generated routine needs from the
// dispatcher: a CPU meter (nil when unmetered), a spawner for asynchronous
// handlers, an ephemeral supervisor, and a statistics callback.
type Env struct {
	CPU *vtime.CPU
	// Spawn runs fn on a separate thread of control; arity is the number
	// of arguments that must be copied to the new thread (it determines
	// the spawn cost). Required if any binding is Async and SpawnHandler
	// is nil.
	Spawn func(arity int, fn func())
	// SpawnHandler, when non-nil, supersedes Spawn for asynchronous
	// handler invocations: the dispatcher supervises the spawned
	// invocation (panic capture, wall-clock watchdog, cooperative
	// cancellation through the context).
	SpawnHandler func(tag any, arity int, invoke func(context.Context) any)
	// SubmitHandler, when non-nil, supersedes SpawnHandler for plans
	// compiled with an admission queue: the supervised invocation is
	// submitted to the bounded queue (and may be shed) instead of
	// spawned unconditionally.
	SubmitHandler func(q *admit.Queue, tag any, arity int, invoke func(context.Context) any)
	// RunEphemeral runs invoke under termination supervision, returning
	// its result and whether it ran to completion; the context is
	// cancelled if the watchdog abandons the invocation. Required if any
	// binding is Ephemeral.
	RunEphemeral func(tag any, invoke func(context.Context) any) (any, bool)
	// OnFire, if non-nil, is called with the binding tag each time a
	// handler fires (including default handlers).
	OnFire func(tag any)
	// FiredTotal, if non-nil, switches the specialized executors to
	// batched statistics: per-binding counts go directly to
	// Binding.FireCount and the number of handlers that fired (including a
	// default-handler firing) is added to FiredTotal once per raise, all
	// through the caller's hoisted stripe shard index. The interpreter and
	// the traced twin ignore it and keep the per-fire OnFire contract; a
	// raise produces the same counter totals either way.
	FiredTotal *stripe.Counter
}

// Outcome reports what a raise did.
type Outcome struct {
	// Result is the merged result (meaningful only when the event has a
	// result and Fired > 0 or UsedDefault).
	Result any
	// Fired counts handlers that ran, excluding the default handler.
	Fired int
	// Ambiguous is set when multiple handlers produced results but no
	// result handler was installed to merge them; Result then holds the
	// last result, and the dispatcher surfaces an error.
	Ambiguous bool
	// UsedDefault is set when no handler fired and the default handler
	// supplied the result.
	UsedDefault bool
}

// Compile generates the dispatch routine for the given binding list. The
// returned plan is immutable; the dispatcher swaps it in atomically.
func Compile(info EventInfo, bindings []*Binding, resultFn ResultFn, defaultB *Binding, opts Options) *Plan {
	p := &Plan{info: info, opts: opts, resultFn: resultFn, defaultB: defaultB,
		protect: opts.Protect, admitQ: opts.Admit, jrnl: opts.Journal}
	for _, b := range bindings {
		st, live := compileBinding(b, opts)
		if !live {
			continue
		}
		st.idx = len(p.steps)
		p.steps = append(p.steps, st)
		p.Bindings++
		if b.Filter {
			p.hasFilter = true
		}
		if b.Async || b.Ephemeral {
			p.retains = true
		}
	}
	p.allInline = !opts.DisableInline && len(p.steps) > 0
	for _, st := range p.steps {
		if !st.inline {
			p.allInline = false
		}
	}
	// Single-binding bypass: one live synchronous unguarded non-filter
	// binding dispatches as a direct procedure call (Figure 1's "an event
	// with only an intrinsic handler is identical to a procedure call").
	if !opts.DisableBypass && len(p.steps) == 1 && defaultB == nil && resultFn == nil {
		st := p.steps[0]
		if len(st.guards) == 0 && !st.b.Async && !st.b.Ephemeral && !st.b.Filter {
			p.direct = st.b
		}
	}
	p.units = buildUnits(p.steps, opts.EnableDecisionTree)
	p.compileFlat()
	if opts.Trace != nil {
		// Register the plan's step layout with the tracer: span records
		// carry only (program, step) indices, and the registry resolves
		// them to names at export time, keeping the recording path
		// allocation free. The registry retains metadata for superseded
		// plans, so spans recorded against a swapped-out plan still
		// resolve.
		meta := trace.EventMeta{Event: info.Name,
			Steps: make([]trace.StepMeta, len(p.steps))}
		for i := range p.steps {
			b := p.steps[i].b
			meta.Steps[i] = trace.StepMeta{Name: b.Name, Mode: bindingMode(b)}
		}
		if defaultB != nil {
			meta.Default = defaultB.Name
		}
		p.prog = opts.Trace.Program(meta)
	}
	return p
}

// bindingMode maps a binding's execution properties to its trace mode.
func bindingMode(b *Binding) trace.Mode {
	switch {
	case b.Filter:
		return trace.ModeFilter
	case b.Async:
		return trace.ModeAsync
	case b.Ephemeral:
		return trace.ModeEphemeral
	}
	return trace.ModeSync
}

// Traced reports whether trace recording is compiled into the plan.
func (p *Plan) Traced() bool { return p.prog != nil }

// Protected reports whether fault capture is compiled into the plan.
func (p *Plan) Protected() bool { return p.protect != nil }

// AdmitQueue returns the admission queue compiled into the plan, or nil
// when asynchronous work spawns unqueued. The dispatcher's async raise path
// consults it on the plan it loaded, so a policy toggle publishes through
// the same atomic swap installs use.
func (p *Plan) AdmitQueue() *admit.Queue { return p.admitQ }

// Journal returns the lifecycle journal compiled into the plan, or nil
// when the dispatcher runs unjournaled. The raise path consults it on the
// plan it loaded, so enabling journaling publishes through the same
// atomic swap installs use.
func (p *Plan) Journal() *journal.Journal { return p.jrnl }

// TreeUnits reports the number of decision-tree units in the plan and the
// total bindings they cover (for tests and disassembly).
func (p *Plan) TreeUnits() (units, covered int) {
	for _, u := range p.units {
		if u.single == nil {
			units++
			covered += u.treeSize
		}
	}
	return units, covered
}

// compileBinding simplifies one binding's guard list. The second result is
// false when peephole proved the binding can never fire.
func compileBinding(b *Binding, opts Options) (step, bool) {
	st := step{b: b}
	for _, g := range b.Guards {
		if g.Pred != nil && !opts.DisablePeephole {
			s := g.Pred.Simplify()
			switch s.Op {
			case PredTrue:
				continue // elide constant-true guard
			case PredFalse:
				return step{}, false // dead binding
			}
			g = Guard{Pred: s}
		}
		st.guards = append(st.guards, g)
	}
	if !opts.DisablePeephole {
		st.guards = reorderGuards(st.guards)
	}
	st.inline = !opts.DisableInline && (&Binding{
		Guards: st.guards, Inline: b.Inline,
		Async: b.Async, Ephemeral: b.Ephemeral,
	}).fullyInline()
	return st, true
}

// reorderGuards moves inline predicates ahead of out-of-line guards,
// preserving relative order within each class (a stable partition). §2.3:
// guards are FUNCTIONAL, which "allows the dispatcher to reorder or
// short-circuit guard execution entirely in order to improve performance"
// — a cheap failing predicate now spares the indirect calls behind it.
func reorderGuards(gs []Guard) []Guard {
	if len(gs) < 2 {
		return gs
	}
	out := make([]Guard, 0, len(gs))
	for _, g := range gs {
		if g.Pred != nil {
			out = append(out, g)
		}
	}
	cheap := len(out)
	for _, g := range gs {
		if g.Pred == nil {
			out = append(out, g)
		}
	}
	if cheap == 0 || cheap == len(out) {
		return gs // single class: keep the original slice
	}
	return out
}

// Direct returns the bypass binding, or nil when the event dispatches
// through the generated routine. The dispatcher uses it to skip plan
// execution entirely.
func (p *Plan) Direct() *Binding { return p.direct }

// RetainsArgs reports whether executing the plan may retain the raise
// argument slice beyond the raise itself: an asynchronous handler runs on
// another thread of control after the raiser proceeds, and an abandoned
// EPHEMERAL handler keeps executing past its deadline. Callers that pool
// argument buffers must pass such plans a private copy.
func (p *Plan) RetainsArgs() bool { return p.retains }

// Steps reports the number of live dispatch steps (for tests and
// disassembly).
func (p *Plan) Steps() int { return len(p.steps) }

// FullyInline reports whether the whole plan executes without indirect
// calls.
func (p *Plan) FullyInline() bool { return p.allInline }

// Execute runs the generated dispatch routine. args is the dispatcher's
// private per-raise argument vector: filters mutate it in place, which is
// visible to subsequent steps but never to the raiser.
func (p *Plan) Execute(env *Env, args []any) Outcome {
	if p.prog != nil {
		// Tracing compiled in: draw the sampling decision and run the
		// traced twin of the routine for sampled raises. Untraced plans
		// pay only the nil check above.
		if raise, sampled := p.prog.Begin(); sampled {
			return p.executeTraced(env, args, raise)
		}
	}
	return p.execute(env, args)
}

// execute is Execute past the sampling decision: the untraced routine. The
// batch entry points call it per frame after drawing one decision for the
// whole batch.
func (p *Plan) execute(env *Env, args []any) Outcome {
	cpu := env.CPU
	if p.flatExec != nil && cpu == nil {
		// Unmetered raise on a specialized plan: straight-line executor.
		// Metered raises stay on the interpreter below so the virtual-time
		// charge sequence is byte-identical with specialization on or off.
		// (The dispatcher normally calls the executor directly via FastExec
		// with its own hoisted stripe index; this route serves direct
		// codegen users and the unsampled raises of traced plans.)
		return p.flatExec(p, env, args, stripe.Index())
	}
	if p.direct != nil {
		cpu.Charge(vtime.CallDirect)
		cpu.ChargeN(vtime.CallDirectArg, p.info.Arity)
		b := p.direct
		var res any
		if p.protect != nil {
			res, _ = p.runBindingProtected(cpu, b, args)
		} else {
			res = p.runBinding(b, args)
		}
		if env.OnFire != nil {
			env.OnFire(b.Tag)
		}
		return Outcome{Result: res, Fired: 1}
	}

	if p.allInline {
		cpu.Charge(vtime.InlineEntry)
		cpu.ChargeN(vtime.ArgCopy, p.info.Arity)
	} else {
		cpu.Charge(vtime.DispatchEntry)
		cpu.ChargeN(vtime.DispatchEntryArg, p.info.Arity)
	}
	if p.hasFilter {
		// Snapshot cost for preserving the raiser's view of arguments
		// ahead of the first filter (§2.4 Typechecking).
		cpu.ChargeN(vtime.ArgCopy, p.info.Arity)
	}

	var out Outcome
	var haveResult bool
	// execStep runs one step whose guards have already passed. Synchronous
	// handlers are called directly — routing them through invoker's
	// deferred-call closure would heap-allocate on every raise; only the
	// async and ephemeral paths, which genuinely need a detachable
	// invocation, pay for one.
	execStep := func(st *step) {
		b := st.b
		if b.Filter {
			// Filters transform arguments for downstream handlers;
			// they neither produce results nor count as the event
			// having been handled (§2.3 "Passing arguments").
			p.chargeHandler(cpu, st)
			if p.protect != nil {
				_, _ = p.callProtected(cpu, st, args)
			} else {
				_ = st.call(args)
			}
			if env.OnFire != nil {
				env.OnFire(b.Tag)
			}
			return
		}
		if b.Async {
			p.chargeHandler(cpu, st)
			inv := p.invoker(st, args)
			if p.admitQ != nil && env.SubmitHandler != nil {
				// Admission compiled in: the invocation passes through
				// the bounded queue and may be shed under overload.
				env.SubmitHandler(p.admitQ, b.Tag, p.info.Arity, inv)
			} else if env.SpawnHandler != nil {
				env.SpawnHandler(b.Tag, p.info.Arity, inv)
			} else {
				env.Spawn(p.info.Arity, func() { _ = inv(context.Background()) })
			}
			out.Fired++
			if env.OnFire != nil {
				env.OnFire(b.Tag)
			}
			return
		}
		var res any
		completed := true
		if b.Ephemeral {
			p.chargeHandler(cpu, st)
			res, completed = env.RunEphemeral(b.Tag, p.invoker(st, args))
		} else {
			p.chargeHandler(cpu, st)
			if p.protect != nil {
				res, completed = p.callProtected(cpu, st, args)
			} else {
				res = st.call(args)
			}
		}
		out.Fired++
		if env.OnFire != nil {
			env.OnFire(b.Tag)
		}
		if !p.info.HasResult || !completed {
			return
		}
		if p.resultFn != nil {
			cpu.Charge(vtime.ResultMerge)
			out.Result = p.resultFn(out.Result, res, out.Fired-1)
		} else {
			if haveResult {
				out.Ambiguous = true
			}
			out.Result = res
			haveResult = true
		}
	}

	for i := range p.units {
		u := &p.units[i]
		if u.single != nil {
			if !p.evalGuards(cpu, u.single, args) {
				continue
			}
			execStep(u.single)
			continue
		}
		// Decision tree: one inline comparison-equivalent lookup
		// replaces the whole run's guard evaluations (§3.2 future
		// work; see tree.go).
		cpu.Charge(vtime.GuardInline)
		w, ok := argWord(args, u.treeArg)
		if !ok {
			continue
		}
		branch := u.branches[w]
		for j := range branch {
			execStep(&branch[j])
		}
	}

	if out.Fired == 0 && p.defaultB != nil {
		b := p.defaultB
		cpu.Charge(vtime.HandlerIndirect)
		var res any
		if p.protect != nil {
			res, _ = p.runBindingProtected(cpu, b, args)
		} else {
			res = p.runBinding(b, args)
		}
		if env.OnFire != nil {
			env.OnFire(b.Tag)
		}
		out.Result = res
		out.UsedDefault = true
	}
	return out
}

// evalGuards evaluates one step's guard list, charging per the generated
// configuration.
func (p *Plan) evalGuards(cpu *vtime.CPU, st *step, args []any) bool {
	for i := range st.guards {
		g := &st.guards[i]
		if g.Pred != nil && !p.opts.DisableInline {
			cpu.Charge(vtime.GuardInline)
			if !g.Pred.Eval(args) {
				return false
			}
			continue
		}
		cpu.Charge(vtime.GuardIndirect)
		var pass bool
		if g.Pred != nil {
			// Inlining disabled: the generator emitted an
			// out-of-line call to the predicate.
			pass = g.Pred.Eval(args)
		} else if p.protect != nil {
			pass = p.guardProtected(g, st.b.Tag, args)
		} else {
			pass = g.Fn(g.Closure, args)
		}
		if !pass {
			return false
		}
	}
	return true
}

// chargeHandler charges the handler-invocation cost for one step.
func (p *Plan) chargeHandler(cpu *vtime.CPU, st *step) {
	if st.inline {
		cpu.Charge(vtime.HandlerInline)
		cpu.ChargeN(vtime.BindingInlineArg, p.info.Arity)
	} else {
		cpu.Charge(vtime.HandlerIndirect)
		cpu.ChargeN(vtime.BindingIndirectArg, p.info.Arity)
	}
}

// call invokes the step's handler synchronously — the "direct procedure
// call" the unrolled routine makes — with no intermediate closure.
func (st *step) call(args []any) any {
	b := st.b
	if st.inline {
		return b.Inline.Run(args)
	}
	if b.CtxFn != nil {
		return b.CtxFn(context.Background(), b.Closure, args)
	}
	return b.Fn(b.Closure, args)
}

// runBinding invokes a non-step binding (direct bypass, default handler).
func (p *Plan) runBinding(b *Binding, args []any) any {
	if b.Inline != nil && !p.opts.DisableInline {
		return b.Inline.Run(args)
	}
	if b.CtxFn != nil {
		return b.CtxFn(context.Background(), b.Closure, args)
	}
	return b.Fn(b.Closure, args)
}

// invoker returns the handler invocation closure for a step, used by the
// asynchronous and ephemeral paths whose invocations outlive the loop
// iteration. The context parameter carries watchdog cancellation to
// cooperative (CtxFn) handlers.
func (p *Plan) invoker(st *step, args []any) func(context.Context) any {
	b := st.b
	if st.inline {
		return func(context.Context) any { return b.Inline.Run(args) }
	}
	if b.CtxFn != nil {
		return func(ctx context.Context) any { return b.CtxFn(ctx, b.Closure, args) }
	}
	return func(context.Context) any { return b.Fn(b.Closure, args) }
}

// Disassemble renders the plan as pseudo-code, the analog of dumping the
// generated stub. Used by tests and the spinbench -disasm flag.
func (p *Plan) Disassemble() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan %s/%d", p.info.Name, p.info.Arity)
	if p.info.HasResult {
		sb.WriteString(" -> result")
	}
	sb.WriteByte('\n')
	if p.direct != nil {
		sb.WriteString("  direct call (dispatcher bypassed)\n")
		return sb.String()
	}
	if p.flatExec != nil {
		if p.GuardedBypass() {
			sb.WriteString("  specialized: guarded bypass (single straight-line step)\n")
		} else {
			fmt.Fprintf(&sb, "  specialized: flattened executor (%d steps, %d guard leaves)\n",
				len(p.flat), len(p.flatPreds))
		}
	}
	writeStep := func(indent string, i int, st *step) {
		fmt.Fprintf(&sb, "%sstep %d:", indent, i)
		if st.inline {
			sb.WriteString(" [inline]")
		}
		for _, g := range st.guards {
			if g.Pred != nil {
				fmt.Fprintf(&sb, " if %s", g.Pred)
			} else {
				sb.WriteString(" if <call guard>")
			}
		}
		fmt.Fprintf(&sb, " do %s", st.b.Inline)
		if st.b.Async {
			sb.WriteString(" async")
		}
		if st.b.Ephemeral {
			sb.WriteString(" ephemeral")
		}
		if st.b.Filter {
			sb.WriteString(" filter")
		}
		sb.WriteByte('\n')
	}
	n := 0
	for i := range p.units {
		u := &p.units[i]
		if u.single != nil {
			writeStep("  ", n, u.single)
			n++
			continue
		}
		fmt.Fprintf(&sb, "  switch arg%d { // decision tree over %d bindings\n",
			u.treeArg, u.treeSize)
		for k := range u.branches {
			fmt.Fprintf(&sb, "  case %d:\n", k)
			branch := u.branches[k]
			for j := range branch {
				writeStep("    ", n, &branch[j])
				n++
			}
		}
		sb.WriteString("  }\n")
	}
	if p.defaultB != nil {
		sb.WriteString("  default handler installed\n")
	}
	if p.resultFn != nil {
		sb.WriteString("  result handler installed\n")
	}
	return sb.String()
}
