package codegen

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPredConstants(t *testing.T) {
	if !True().Eval(nil) {
		t.Error("True() must pass")
	}
	if False().Eval(nil) {
		t.Error("False() must fail")
	}
}

func TestPredGlobal(t *testing.T) {
	var cell atomic.Uint64
	cell.Store(7)
	if !GlobalEq(&cell, 7).Eval(nil) {
		t.Error("GlobalEq miss")
	}
	if GlobalEq(&cell, 8).Eval(nil) {
		t.Error("GlobalEq false positive")
	}
	if !GlobalNe(&cell, 8).Eval(nil) {
		t.Error("GlobalNe miss")
	}
	if GlobalNe(&cell, 7).Eval(nil) {
		t.Error("GlobalNe false positive")
	}
	// Nil cells must evaluate false, not crash: guards are untrusted.
	if (&Pred{Op: PredGlobalEq}).Eval(nil) {
		t.Error("nil cell evaluated true")
	}
}

func TestPredArgs(t *testing.T) {
	args := []any{uint64(80), 443, "tcp"}
	if !ArgEq(0, 80).Eval(args) || ArgEq(0, 81).Eval(args) {
		t.Error("ArgEq broken")
	}
	if !ArgEq(1, 443).Eval(args) {
		t.Error("ArgEq must handle int args")
	}
	if !ArgNe(0, 81).Eval(args) || ArgNe(0, 80).Eval(args) {
		t.Error("ArgNe broken")
	}
	if !ArgLt(0, 81).Eval(args) || ArgLt(0, 80).Eval(args) {
		t.Error("ArgLt broken")
	}
	// Non-word and out-of-range arguments evaluate false, never panic.
	if ArgEq(2, 0).Eval(args) {
		t.Error("string arg treated as word")
	}
	if ArgEq(9, 0).Eval(args) || ArgEq(-1, 0).Eval(args) {
		t.Error("out-of-range arg evaluated true")
	}
}

func TestPredBoolean(t *testing.T) {
	args := []any{uint64(1)}
	tr, fa := ArgEq(0, 1), ArgEq(0, 2)
	if !And(tr, tr).Eval(args) || And(tr, fa).Eval(args) {
		t.Error("And broken")
	}
	if !Or(fa, tr).Eval(args) || Or(fa, fa).Eval(args) {
		t.Error("Or broken")
	}
	if !Not(fa).Eval(args) || Not(tr).Eval(args) {
		t.Error("Not broken")
	}
}

func TestAsWord(t *testing.T) {
	good := []any{uint64(1), int(1), uint(1), int64(1), int32(1), uint32(1),
		int16(1), uint16(1), int8(1), uint8(1), uintptr(1)}
	for _, v := range good {
		if w, ok := AsWord(v); !ok || w != 1 {
			t.Errorf("AsWord(%T) = %v,%v", v, w, ok)
		}
	}
	for _, v := range []any{"x", 3.14, nil, struct{}{}} {
		if _, ok := AsWord(v); ok {
			t.Errorf("AsWord(%T) accepted", v)
		}
	}
}

func TestSimplifyFoldsConstants(t *testing.T) {
	x := ArgEq(0, 1)
	cases := []struct {
		in   *Pred
		want *Pred
	}{
		{And(True(), x), x},
		{And(x, True()), x},
		{And(False(), x), False()},
		{And(x, False()), False()},
		{Or(True(), x), True()},
		{Or(x, True()), True()},
		{Or(False(), x), x},
		{Or(x, False()), x},
		{Not(True()), False()},
		{Not(False()), True()},
		{Not(Not(x)), x},
		{And(True(), And(True(), x)), x},
		{x, x},
	}
	for i, c := range cases {
		got := c.in.Simplify()
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: Simplify(%s) = %s, want %s", i, c.in, got, c.want)
		}
	}
	var nilPred *Pred
	if nilPred.Simplify() != nil {
		t.Error("nil Simplify must return nil")
	}
}

// Property: simplification never changes a predicate's value on random
// word-argument vectors.
func TestSimplifyEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var gen func(depth int) *Pred
	gen = func(depth int) *Pred {
		if depth == 0 {
			switch rng.Intn(4) {
			case 0:
				return True()
			case 1:
				return False()
			case 2:
				return ArgEq(rng.Intn(3), uint64(rng.Intn(3)))
			default:
				return ArgLt(rng.Intn(3), uint64(rng.Intn(4)))
			}
		}
		switch rng.Intn(3) {
		case 0:
			return And(gen(depth-1), gen(depth-1))
		case 1:
			return Or(gen(depth-1), gen(depth-1))
		default:
			return Not(gen(depth - 1))
		}
	}
	for trial := 0; trial < 200; trial++ {
		p := gen(rng.Intn(4) + 1)
		s := p.Simplify()
		args := []any{uint64(rng.Intn(3)), uint64(rng.Intn(3)), uint64(rng.Intn(3))}
		if p.Eval(args) != s.Eval(args) {
			t.Fatalf("simplification changed semantics: %s vs %s on %v", p, s, args)
		}
	}
}

func TestPredString(t *testing.T) {
	var cell atomic.Uint64
	preds := []*Pred{True(), False(), GlobalEq(&cell, 1), GlobalNe(&cell, 1),
		ArgEq(0, 2), ArgNe(1, 3), ArgLt(2, 4), And(True(), False()),
		Or(True(), False()), Not(True()), nil}
	for _, p := range preds {
		if p.String() == "" {
			t.Errorf("empty String for %#v", p)
		}
	}
}

func TestBodyOps(t *testing.T) {
	if Nop().Run(nil) != nil {
		t.Error("Nop produced a result")
	}
	if got := ReturnConst(42).Run(nil); got != 42 {
		t.Errorf("ReturnConst = %v", got)
	}
	var cell atomic.Uint64
	b := AddWord(&cell, 3)
	if b.Run(nil) != nil {
		t.Error("AddWord produced a result")
	}
	b.Run(nil)
	if cell.Load() != 6 {
		t.Errorf("cell = %d, want 6", cell.Load())
	}
	if got := ReturnArg(1).Run([]any{"a", "b"}); got != "b" {
		t.Errorf("ReturnArg = %v", got)
	}
	if ReturnArg(5).Run([]any{"a"}) != nil {
		t.Error("out-of-range ReturnArg must produce nil")
	}
	if (&Body{Op: BodyAddWord}).Run(nil) != nil {
		t.Error("nil-cell AddWord must be inert")
	}
}

func TestBodyString(t *testing.T) {
	var cell atomic.Uint64
	for _, b := range []*Body{Nop(), ReturnConst(1), AddWord(&cell, 1), ReturnArg(0), nil} {
		if b.String() == "" {
			t.Errorf("empty String for %#v", b)
		}
	}
}

// Property: AsWord round-trips any uint64 passed through the arg vector.
func TestAsWordProperty(t *testing.T) {
	f := func(w uint64) bool {
		got, ok := AsWord(any(w))
		return ok && got == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
